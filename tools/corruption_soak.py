#!/usr/bin/env python3
"""Randomized-corruption soak: hammer the framed transport across N seeds.

Usage:
  corruption_soak.py BUILD_DIR [--seeds 25] [--start 1]
                     [--drop P] [--dup P] [--reorder P]
                     [--truncate P] [--bitflip P] [--delay P]
                     [--json-out FILE]

For every seed the seeded soak test (RetryLayer.SeededSoakGcSessionNeverCrashes
in test_failure_injection) runs a full garbled-circuit session over a
FramedChannel with the fault injector driven by PRIMER_FAULT_* — each run
must either recover the exact result or surface a typed ProtocolError;
crashes, hangs, and silent wrong answers fail the soak.

The probabilities default to the test's built-in mix (drop/dup/reorder 0.1,
truncate/bitflip 0.03, delay 0.05); pass flags to override.  Deterministic
per seed, so a failing seed reproduces with:
  PRIMER_FAULT_SEED=<seed> ./test_failure_injection \
      --gtest_filter='RetryLayer.SeededSoakGcSessionNeverCrashes'
"""

import argparse
import sys

import soaklib

TOOL = "corruption_soak"
TEST_BINARY = "test_failure_injection"
TEST_FILTER = "RetryLayer.SeededSoakGcSessionNeverCrashes"
PER_RUN_TIMEOUT_S = 120  # a hung retry loop must fail the soak, not the CI job


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir")
    ap.add_argument("--seeds", type=int, default=25)
    ap.add_argument("--start", type=int, default=1)
    for knob in ("drop", "dup", "reorder", "truncate", "bitflip", "delay"):
        ap.add_argument(f"--{knob}", type=float, default=None)
    ap.add_argument("--json-out", default=None,
                    help="write a machine-readable JSON summary artifact here")
    args = ap.parse_args()

    binary = soaklib.find_binary(args.build_dir, TEST_BINARY, TOOL)
    if binary is None:
        return 1

    # The test falls back to its built-in mix only when NO fault knob is
    # set, so a partial override must pin the rest of the mix explicitly.
    overrides = {k: getattr(args, k)
                 for k in ("drop", "dup", "reorder", "truncate", "bitflip",
                           "delay")
                 if getattr(args, k) is not None}
    if overrides:
        mix = {"drop": 0.1, "dup": 0.1, "reorder": 0.1,
               "truncate": 0.03, "bitflip": 0.03, "delay": 0.05}
        mix.update(overrides)
    else:
        mix = {}  # let the test use its built-in defaults

    failures = []
    runs = []
    for seed in range(args.start, args.start + args.seeds):
        env = {"PRIMER_FAULT_SEED": str(seed)}
        for knob, p in mix.items():
            env[f"PRIMER_FAULT_{knob.upper()}"] = str(p)
        record = {"seed": seed, "ok": False}
        result = soaklib.run_cell(binary, TEST_FILTER, env,
                                  timeout_s=PER_RUN_TIMEOUT_S)
        if not result.ok:
            soaklib.dump_failure(TOOL, f"seed {seed}", result)
            record["error"] = result.error
            failures.append(seed)
        else:
            record["ok"] = True
        runs.append(record)

    if args.json_out:
        soaklib.write_json(TOOL, args.json_out, {
            "start": args.start,
            "seeds_run": args.seeds,
            "mix": mix or "built-in",
            "seeds_failed": failures,
            "runs": runs,
        })
    return soaklib.finish(
        TOOL, args.seeds, failures,
        f"all {args.seeds} seeds passed (start={args.start}, "
        f"mix={'overridden' if mix else 'built-in'})")


if __name__ == "__main__":
    sys.exit(main())
