"""Shared plumbing for the soak drivers (chaos_soak, corruption_soak,
server_chaos_soak, crash_soak).

Every soak follows the same shape: locate a gtest binary in the build dir,
run one env-parameterized cell per point/seed with a hard timeout, collect
per-run records, optionally write a machine-readable JSON artifact, and
exit nonzero if anything failed.  This module owns that shape so the
drivers only contain their scheduling logic (what to run at which frame or
seed) and their probe parsing.
"""

import json
import os
import random
import re
import subprocess
import sys


class CellResult:
    """Outcome of one gtest-cell subprocess."""

    def __init__(self, ok, error, returncode, stdout, stderr):
        self.ok = ok
        self.error = error  # None | "timeout" | "exit N" | "signal N"
        self.returncode = returncode  # None on timeout
        self.stdout = stdout
        self.stderr = stderr


def find_binary(build_dir, name, tool):
    """Path to a test binary, or None (with a stderr message) if missing."""
    path = os.path.join(build_dir, name)
    if not os.path.exists(path):
        print(f"{tool}: {path} not found (build it first)", file=sys.stderr)
        return None
    return path


def run_cell(binary, gtest_filter, env_overrides=None, timeout_s=300,
             brief=True, expect_signal=None):
    """Runs one gtest cell as a subprocess.

    ok means: exit 0, or — when expect_signal is set — death by exactly
    that signal (the crash soak *wants* its child SIGKILLed).  A timeout is
    always a failure: a hung recovery must fail the soak, not the CI job.
    """
    env = dict(os.environ)
    env.update(env_overrides or {})
    cmd = [binary, f"--gtest_filter={gtest_filter}"]
    if brief:
        cmd.append("--gtest_brief=1")
    try:
        proc = subprocess.run(cmd, env=env, capture_output=True, text=True,
                              timeout=timeout_s)
    except subprocess.TimeoutExpired:
        return CellResult(False, "timeout", None, "", "")
    rc = proc.returncode
    if expect_signal is not None:
        if rc == -expect_signal:
            return CellResult(True, None, rc, proc.stdout, proc.stderr)
        error = (f"exit {rc}" if rc >= 0 else f"signal {-rc}") + \
            f" (expected signal {expect_signal})"
        return CellResult(False, error, rc, proc.stdout, proc.stderr)
    if rc != 0:
        error = f"exit {rc}" if rc >= 0 else f"signal {-rc}"
        return CellResult(False, error, rc, proc.stdout, proc.stderr)
    return CellResult(True, None, rc, proc.stdout, proc.stderr)


def dump_failure(tool, label, result):
    """Standard stderr report for one failed cell."""
    print(f"{tool}: {label}: FAILED ({result.error})", file=sys.stderr)
    sys.stderr.write(result.stdout)
    sys.stderr.write(result.stderr)


def parse_probe(stdout, tool):
    """Parses the CHAOS probe lines a probe cell prints.

    Returns (phases, total, extras): phases is [(name, end_frame)]
    ascending, total the final frame count, extras every other
    "CHAOS key=value" line keyed by key.  Raises on a probe that printed
    nothing usable.
    """
    phases = []
    total = None
    extras = {}
    for line in stdout.splitlines():
        m = re.match(r"CHAOS phase=(\S+) end_frame=(\d+)", line)
        if m:
            phases.append((m.group(1), int(m.group(2))))
            continue
        m = re.match(r"CHAOS total_frames=(\d+)", line)
        if m:
            total = int(m.group(1))
            continue
        m = re.match(r"CHAOS (\w+)=(\S+)", line)
        if m:
            extras[m.group(1)] = m.group(2)
    if total is None or not phases:
        raise RuntimeError(f"{tool}: probe printed no CHAOS lines")
    return phases, total, extras


def pick_points(phases, total, want, seed):
    """Kill offsets covering every phase segment, `want` points minimum.

    Segments lie between consecutive checkpoint boundaries, plus the tail
    up to the final frame (frame indices are 1-based).  Every segment
    contributes its first and last frame — boundary kills are the nastiest,
    right before/after a checkpoint is persisted — then seeded random fill
    proportional to segment size until the target count is met.
    """
    bounds = [0] + [end for _, end in phases] + [total]
    names = ["handshake+" + phases[0][0]] + \
            [f"after_{p}" for p, _ in phases[:-1]] + ["tail"]
    segments = []
    for i in range(len(bounds) - 1):
        lo, hi = bounds[i] + 1, bounds[i + 1]
        if lo <= hi:
            segments.append((names[i], lo, hi))

    rng = random.Random(seed)
    points = set()
    for _, lo, hi in segments:
        points.add(lo)
        points.add(hi)
    frames_total = sum(hi - lo + 1 for _, lo, hi in segments)
    for _, lo, hi in segments:
        share = max(1, round(want * (hi - lo + 1) / frames_total))
        for _ in range(share):
            points.add(rng.randint(lo, hi))
    while len(points) < want:
        _, lo, hi = segments[rng.randrange(len(segments))]
        points.add(rng.randint(lo, hi))
    return sorted(points), segments


def write_json(tool, path, payload):
    """Writes {"tool": tool, **payload} as the JSON artifact at `path`."""
    doc = {"tool": tool}
    doc.update(payload)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"{tool}: wrote {path}")


def finish(tool, n, failures, ok_message):
    """Final verdict: 0 if nothing failed, 1 (with a summary) otherwise."""
    if failures:
        print(f"{tool}: {len(failures)}/{n} failed: {failures}",
              file=sys.stderr)
        return 1
    print(f"{tool}: {ok_message}")
    return 0
