#!/usr/bin/env python3
"""Process-kill / stall chaos soak: crash one party at seeded wire-frame
offsets spanning every protocol phase and assert bit-identical recovery.

Usage:
  chaos_soak.py BUILD_DIR [--points 50] [--stall-every 10] [--seed 1]
                [--json-out FILE]

The harness first runs the probe cell (SessionChaos.ProbeTotalFrames with
PRIMER_CHAOS_PROBE=1), which prints every checkpoint boundary's wire-frame
index and the total frame count:

  CHAOS phase=key_transfer end_frame=48
  ...
  CHAOS total_frames=329

It then picks >= --points kill offsets that cover every phase segment
(each segment gets a proportional share, and at least its boundary's first
and last frame), and for each offset runs SessionChaos.KillRecovery with
PRIMER_FAULT_KILL_AFTER=<offset>.  Every --stall-every'th point runs
SessionChaos.StallRecovery instead: a 300-simulated-second stall against a
60 s phase deadline, which must surface as DeadlineExceeded and resume.
Each cell re-runs the full two-party inference, restarts the killed party,
resumes from the last common checkpoint, and asserts the logits equal the
plaintext reference bit for bit.

A failing offset reproduces with:
  PRIMER_FAULT_KILL_AFTER=<offset> ./test_session_resume \
      --gtest_filter='SessionChaos.KillRecovery'
"""

import argparse
import sys

import soaklib

TOOL = "chaos_soak"
TEST_BINARY = "test_session_resume"
PROBE_FILTER = "SessionChaos.ProbeTotalFrames"
KILL_FILTER = "SessionChaos.KillRecovery"
STALL_FILTER = "SessionChaos.StallRecovery"
PER_RUN_TIMEOUT_S = 300  # a hung resume must fail the soak, not the CI job


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir")
    ap.add_argument("--points", type=int, default=50)
    ap.add_argument("--stall-every", type=int, default=10,
                    help="every Nth point stalls instead of kills (0 = never)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--json-out", default=None,
                    help="write a machine-readable JSON summary artifact here")
    args = ap.parse_args()

    binary = soaklib.find_binary(args.build_dir, TEST_BINARY, TOOL)
    if binary is None:
        return 1

    probe = soaklib.run_cell(binary, PROBE_FILTER,
                             {"PRIMER_CHAOS_PROBE": "1"},
                             timeout_s=PER_RUN_TIMEOUT_S, brief=False)
    if not probe.ok:
        soaklib.dump_failure(TOOL, "probe", probe)
        return 1
    phases, total, _ = soaklib.parse_probe(probe.stdout, TOOL)
    points, segments = soaklib.pick_points(phases, total, args.points,
                                           args.seed)
    seg_desc = ", ".join(f"{name}[{lo}..{hi}]" for name, lo, hi in segments)
    print(f"{TOOL}: {total} wire frames, segments: {seg_desc}")
    print(f"{TOOL}: {len(points)} kill/stall points: {points}")

    failures = []
    runs = []
    for i, frame in enumerate(points):
        stall = (args.stall_every > 0 and
                 i % args.stall_every == args.stall_every - 1)
        if stall:
            env = {"PRIMER_FAULT_STALL_AFTER": str(frame),
                   "PRIMER_FAULT_STALL_S": "300",
                   "PRIMER_PHASE_DEADLINE_S": "60"}
            gfilter = STALL_FILTER
        else:
            env = {"PRIMER_FAULT_KILL_AFTER": str(frame)}
            gfilter = KILL_FILTER
        kind = "stall" if stall else "kill"
        record = {"kind": kind, "frame": frame, "ok": False}
        result = soaklib.run_cell(binary, gfilter, env,
                                  timeout_s=PER_RUN_TIMEOUT_S)
        if not result.ok:
            soaklib.dump_failure(TOOL, f"{kind}@{frame}", result)
            record["error"] = result.error
            failures.append((kind, frame))
        else:
            record["ok"] = True
        runs.append(record)

    n = len(points)
    if args.json_out:
        soaklib.write_json(TOOL, args.json_out, {
            "seed": args.seed,
            "total_frames": total,
            "segments": [{"name": name, "lo": lo, "hi": hi}
                         for name, lo, hi in segments],
            "points_run": n,
            "failures": [{"kind": k, "frame": fr} for k, fr in failures],
            "runs": runs,
        })
    return soaklib.finish(
        TOOL, n, failures,
        f"all {n} points recovered bit-identical "
        f"(seed={args.seed}, stall_every={args.stall_every})")


if __name__ == "__main__":
    sys.exit(main())
