#!/usr/bin/env python3
"""Process-kill / stall chaos soak: crash one party at seeded wire-frame
offsets spanning every protocol phase and assert bit-identical recovery.

Usage:
  chaos_soak.py BUILD_DIR [--points 50] [--stall-every 10] [--seed 1]
                [--json-out FILE]

The harness first runs the probe cell (SessionChaos.ProbeTotalFrames with
PRIMER_CHAOS_PROBE=1), which prints every checkpoint boundary's wire-frame
index and the total frame count:

  CHAOS phase=key_transfer end_frame=48
  ...
  CHAOS total_frames=329

It then picks >= --points kill offsets that cover every phase segment
(each segment gets a proportional share, and at least its boundary's first
and last frame), and for each offset runs SessionChaos.KillRecovery with
PRIMER_FAULT_KILL_AFTER=<offset>.  Every --stall-every'th point runs
SessionChaos.StallRecovery instead: a 300-simulated-second stall against a
60 s phase deadline, which must surface as DeadlineExceeded and resume.
Each cell re-runs the full two-party inference, restarts the killed party,
resumes from the last common checkpoint, and asserts the logits equal the
plaintext reference bit for bit.

A failing offset reproduces with:
  PRIMER_FAULT_KILL_AFTER=<offset> ./test_session_resume \
      --gtest_filter='SessionChaos.KillRecovery'
"""

import argparse
import json
import os
import random
import re
import subprocess
import sys

TEST_BINARY = "test_session_resume"
PROBE_FILTER = "SessionChaos.ProbeTotalFrames"
KILL_FILTER = "SessionChaos.KillRecovery"
STALL_FILTER = "SessionChaos.StallRecovery"
PER_RUN_TIMEOUT_S = 300  # a hung resume must fail the soak, not the CI job


def run_probe(binary):
    env = dict(os.environ)
    env["PRIMER_CHAOS_PROBE"] = "1"
    cmd = [binary, f"--gtest_filter={PROBE_FILTER}"]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True,
                          timeout=PER_RUN_TIMEOUT_S)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        raise RuntimeError("chaos_soak: probe run failed")
    phases = []  # (phase_name, end_frame), ascending
    total = None
    for line in proc.stdout.splitlines():
        m = re.match(r"CHAOS phase=(\S+) end_frame=(\d+)", line)
        if m:
            phases.append((m.group(1), int(m.group(2))))
        m = re.match(r"CHAOS total_frames=(\d+)", line)
        if m:
            total = int(m.group(1))
    if total is None or not phases:
        raise RuntimeError("chaos_soak: probe printed no CHAOS lines")
    return phases, total


def pick_points(phases, total, want, seed):
    """Kill offsets covering every phase segment, `want` points minimum."""
    # Segments between consecutive checkpoint boundaries, plus the tail up
    # to the final frame.  Frame indices are 1-based.
    bounds = [0] + [end for _, end in phases] + [total]
    names = ["handshake+" + phases[0][0]] + \
            [f"after_{p}" for p, _ in phases[:-1]] + ["tail"]
    segments = []
    for i in range(len(bounds) - 1):
        lo, hi = bounds[i] + 1, bounds[i + 1]
        if lo <= hi:
            segments.append((names[i], lo, hi))

    rng = random.Random(seed)
    points = set()
    # Every segment contributes its first and last frame (boundary kills are
    # the nastiest: right before/after a checkpoint is persisted)...
    for _, lo, hi in segments:
        points.add(lo)
        points.add(hi)
    # ...then proportional random fill until the target count is met.
    frames_total = sum(hi - lo + 1 for _, lo, hi in segments)
    for _, lo, hi in segments:
        share = max(1, round(want * (hi - lo + 1) / frames_total))
        for _ in range(share):
            points.add(rng.randint(lo, hi))
    while len(points) < want:
        _, lo, hi = segments[rng.randrange(len(segments))]
        points.add(rng.randint(lo, hi))
    return sorted(points), segments


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir")
    ap.add_argument("--points", type=int, default=50)
    ap.add_argument("--stall-every", type=int, default=10,
                    help="every Nth point stalls instead of kills (0 = never)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--json-out", default=None,
                    help="write a machine-readable JSON summary artifact here")
    args = ap.parse_args()

    binary = os.path.join(args.build_dir, TEST_BINARY)
    if not os.path.exists(binary):
        print(f"chaos_soak: {binary} not found (build it first)",
              file=sys.stderr)
        return 1

    phases, total = run_probe(binary)
    points, segments = pick_points(phases, total, args.points, args.seed)
    seg_desc = ", ".join(f"{name}[{lo}..{hi}]" for name, lo, hi in segments)
    print(f"chaos_soak: {total} wire frames, segments: {seg_desc}")
    print(f"chaos_soak: {len(points)} kill/stall points: {points}")

    failures = []
    runs = []
    for i, frame in enumerate(points):
        stall = args.stall_every > 0 and i % args.stall_every == args.stall_every - 1
        env = dict(os.environ)
        if stall:
            env["PRIMER_FAULT_STALL_AFTER"] = str(frame)
            env["PRIMER_FAULT_STALL_S"] = "300"
            env["PRIMER_PHASE_DEADLINE_S"] = "60"
            gfilter = STALL_FILTER
        else:
            env["PRIMER_FAULT_KILL_AFTER"] = str(frame)
            gfilter = KILL_FILTER
        cmd = [binary, f"--gtest_filter={gfilter}", "--gtest_brief=1"]
        kind = "stall" if stall else "kill"
        record = {"kind": kind, "frame": frame, "ok": False}
        try:
            proc = subprocess.run(cmd, env=env, capture_output=True,
                                  text=True, timeout=PER_RUN_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            print(f"chaos_soak: {kind}@{frame}: TIMEOUT "
                  f"(>{PER_RUN_TIMEOUT_S}s)", file=sys.stderr)
            record["error"] = "timeout"
            failures.append((kind, frame))
            runs.append(record)
            continue
        if proc.returncode != 0:
            print(f"chaos_soak: {kind}@{frame}: FAILED "
                  f"(exit {proc.returncode})", file=sys.stderr)
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            record["error"] = f"exit {proc.returncode}"
            failures.append((kind, frame))
        else:
            record["ok"] = True
        runs.append(record)

    n = len(points)
    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump({"tool": "chaos_soak", "seed": args.seed,
                       "total_frames": total,
                       "segments": [{"name": name, "lo": lo, "hi": hi}
                                    for name, lo, hi in segments],
                       "points_run": n,
                       "failures": [{"kind": k, "frame": fr}
                                    for k, fr in failures],
                       "runs": runs}, f, indent=2)
            f.write("\n")
        print(f"chaos_soak: wrote {args.json_out}")
    if failures:
        print(f"chaos_soak: {len(failures)}/{n} points failed: {failures}",
              file=sys.stderr)
        return 1
    print(f"chaos_soak: all {n} points recovered bit-identical "
          f"(seed={args.seed}, stall_every={args.stall_every})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
