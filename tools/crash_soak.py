#!/usr/bin/env python3
"""Real-process-death crash soak: SIGKILL a live inference at seeded wire
frames and assert a FRESHLY EXEC'D process recovers bit-identical output
from the durable on-disk session store.

Usage:
  crash_soak.py BUILD_DIR [--points 12] [--seed 1] [--keep-stores]
                [--json-out FILE]

Unlike chaos_soak.py — which injects an in-process throw and lets the same
process retry — every point here is two real processes:

  1. CrashRun: a child inference (DurableChaos.CrashRun in test_session_fs)
     checkpointing into a scratch DurableSessionStore, with
     PRIMER_FAULT_KILL_MODE=sigkill arming a genuine SIGKILL at wire frame
     PRIMER_FAULT_KILL_AFTER.  The child must die by signal 9 — no atexit
     handlers, no destructors, no flushing.  Whatever the store's atomic
     write protocol had committed is all that survives.
  2. RecoverRun: a brand-new process over the same directory.  Its recovery
     scan adopts the surviving blobs (quarantining any torn debris), the
     resume handshake picks the last common epoch, the checkpointed prefix
     — multi-MB key material included — replays at zero wire cost, and the
     finished logits must equal the probe's bit for bit.

Kill points are seeded and cover every phase segment (each segment
contributes at least its boundary frames).  A failing point reproduces
with:
  PRIMER_STORE_DIR=<dir> PRIMER_FAULT_KILL_MODE=sigkill \
      PRIMER_FAULT_KILL_AFTER=<frame> \
      ./test_session_fs --gtest_filter='DurableChaos.CrashRun'
  PRIMER_STORE_DIR=<dir> ./test_session_fs \
      --gtest_filter='DurableChaos.RecoverRun'
"""

import argparse
import re
import shutil
import signal
import sys
import tempfile

import soaklib

TOOL = "crash_soak"
TEST_BINARY = "test_session_fs"
PROBE_FILTER = "DurableChaos.Probe"
CRASH_FILTER = "DurableChaos.CrashRun"
RECOVER_FILTER = "DurableChaos.RecoverRun"
PER_RUN_TIMEOUT_S = 300


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir")
    ap.add_argument("--points", type=int, default=12)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--keep-stores", action="store_true",
                    help="keep each point's store directory for post-mortem")
    ap.add_argument("--json-out", default=None,
                    help="write a machine-readable JSON summary artifact here")
    args = ap.parse_args()

    binary = soaklib.find_binary(args.build_dir, TEST_BINARY, TOOL)
    if binary is None:
        return 1

    probe = soaklib.run_cell(binary, PROBE_FILTER,
                             {"PRIMER_CHAOS_PROBE": "1"},
                             timeout_s=PER_RUN_TIMEOUT_S, brief=False)
    if not probe.ok:
        soaklib.dump_failure(TOOL, "probe", probe)
        return 1
    phases, total, extras = soaklib.parse_probe(probe.stdout, TOOL)
    ref_logits = extras.get("logits")
    if not ref_logits:
        print(f"{TOOL}: probe printed no reference logits", file=sys.stderr)
        return 1
    points, segments = soaklib.pick_points(phases, total, args.points,
                                           args.seed)
    # A kill past the last frame never fires: the child would exit 0, not
    # die, and the point would test nothing.
    points = [p for p in points if p < total]
    seg_desc = ", ".join(f"{name}[{lo}..{hi}]" for name, lo, hi in segments)
    print(f"{TOOL}: {total} wire frames, segments: {seg_desc}")
    print(f"{TOOL}: {len(points)} SIGKILL points: {points}")

    failures = []
    runs = []
    for frame in points:
        store = tempfile.mkdtemp(prefix=f"crash_soak_{frame}_")
        record = {"frame": frame, "store": store, "ok": False}

        def fail(stage, result):
            soaklib.dump_failure(TOOL, f"kill@{frame} [{stage}]", result)
            record["error"] = f"{stage}: {result.error}"
            failures.append(frame)

        # Stage 1: the child must die by a real SIGKILL at the seeded frame.
        crash = soaklib.run_cell(
            binary, CRASH_FILTER,
            {"PRIMER_STORE_DIR": store,
             "PRIMER_FAULT_KILL_AFTER": str(frame),
             "PRIMER_FAULT_KILL_MODE": "sigkill"},
            timeout_s=PER_RUN_TIMEOUT_S, expect_signal=signal.SIGKILL)
        if not crash.ok:
            fail("crash", crash)
            runs.append(record)
            continue

        # Stage 2: a fresh process recovers from whatever hit the disk.
        result_file = f"{store}/recovery.txt"
        recover = soaklib.run_cell(
            binary, RECOVER_FILTER,
            {"PRIMER_STORE_DIR": store,
             "PRIMER_CRASH_RESULT_FILE": result_file},
            timeout_s=PER_RUN_TIMEOUT_S)
        if not recover.ok:
            fail("recover", recover)
            runs.append(record)
            continue

        try:
            with open(result_file) as f:
                text = f.read().strip()
        except OSError:
            recover.error = "no recovery result file"
            fail("recover", recover)
            runs.append(record)
            continue
        m = re.match(r"resumed_epoch=(\d+) replayed_bytes=(\d+) logits=(\S+)",
                     text)
        if m is None or m.group(3) != ref_logits:
            recover.error = f"recovery output mismatch: {text!r}"
            fail("verify", recover)
            runs.append(record)
            continue
        record.update(ok=True, resumed_epoch=int(m.group(1)),
                      replayed_bytes=int(m.group(2)))
        print(f"{TOOL}: kill@{frame}: recovered bit-identical "
              f"(resumed_epoch={record['resumed_epoch']} "
              f"replayed_bytes={record['replayed_bytes']})")
        runs.append(record)

    if not args.keep_stores:
        for r in runs:
            shutil.rmtree(r.pop("store"), ignore_errors=True)

    n = len(points)
    if args.json_out:
        soaklib.write_json(TOOL, args.json_out, {
            "seed": args.seed,
            "total_frames": total,
            "segments": [{"name": name, "lo": lo, "hi": hi}
                         for name, lo, hi in segments],
            "points_run": n,
            "points_failed": failures,
            "runs": runs,
        })
    return soaklib.finish(
        TOOL, n, failures,
        f"all {n} SIGKILLed processes recovered bit-identical "
        f"(seed={args.seed})")


if __name__ == "__main__":
    sys.exit(main())
