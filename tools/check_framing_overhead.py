#!/usr/bin/env python3
"""Gate: transport framing overhead must stay under 2% of end-to-end cost.

Usage:
  check_framing_overhead.py BENCH.jsonl [--max-ratio 0.02]

Reads bench_he_micro output (raw; lines starting with "JSON " are parsed)
and checks every "framing_overhead" record:

  * e2e_overhead_ratio  — CPU cost of framing (CRC32C + header handling,
    measured as the raw-vs-framed channel delta) projected over a live nano
    inference's traffic, divided by that run's end-to-end (compute +
    modeled network) time — must stay under --max-ratio.
  * byte_overhead_ratio — the 24-byte header's share of a
    ciphertext-sized message — must stay under --max-ratio too (it is
    ~0.04%, so this arm only trips if the header balloons).
  * session_e2e_overhead_ratio — the session-resilience layer's cost on an
    unfaulted run (two resume-handshake frames over the modeled network plus
    checkpoint serialization on both parties) against the same end-to-end
    time — must also stay under --max-ratio.  Deterministic by construction:
    the handshake bytes and checkpoint count come from a live resilient run,
    the network seconds from the paper's fixed testbed model.
  * session_durable_overhead_ratio — the same bound with every checkpoint
    persisted through the crash-consistent DurableSessionStore (serialize +
    atomic temp/fsync/rename/dir-fsync write, micro-measured with real
    fsyncs), i.e. the full price of surviving SIGKILL rather than just an
    in-process throw.  Must also stay under --max-ratio, and the durable
    run's fsync/byte counters must be nonzero or the arm measured nothing.

A file with no framing_overhead record FAILS: the gate would otherwise be
green while checking nothing (e.g. after a bench rename).
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_output")
    ap.add_argument("--max-ratio", type=float, default=0.02)
    args = ap.parse_args()

    records = []
    try:
        with open(args.bench_output) as f:
            for line in f:
                if not line.startswith("JSON "):
                    continue
                try:
                    rec = json.loads(line[len("JSON "):])
                except json.JSONDecodeError:
                    continue
                if rec.get("bench") == "framing_overhead":
                    records.append(rec)
    except OSError as e:
        print(f"check_framing_overhead: cannot read {args.bench_output}: {e}",
              file=sys.stderr)
        return 1

    if not records:
        print("check_framing_overhead: FAIL: no framing_overhead record in "
              f"{args.bench_output} — the gate is checking nothing",
              file=sys.stderr)
        return 1

    ok = True
    for rec in records:
        e2e = rec.get("e2e_overhead_ratio")
        byte = rec.get("byte_overhead_ratio")
        session = rec.get("session_e2e_overhead_ratio")
        durable = rec.get("session_durable_overhead_ratio")
        label = rec.get("label", "?")
        if e2e is None or byte is None or session is None or durable is None:
            print(f"check_framing_overhead: FAIL [{label}]: record is "
                  f"missing ratio fields: {rec}", file=sys.stderr)
            ok = False
            continue
        for field in ("session_checkpoints", "session_handshake_bytes",
                      "durable_fsyncs", "durable_bytes_written"):
            if not rec.get(field):
                print(f"check_framing_overhead: FAIL [{label}]: {field} is "
                      f"missing or zero — the resilient run measured nothing",
                      file=sys.stderr)
                ok = False
        status = "ok"
        if (e2e >= args.max_ratio or byte >= args.max_ratio
                or session >= args.max_ratio or durable >= args.max_ratio):
            status = "FAIL"
            ok = False
        print(f"check_framing_overhead: {status} [{label}] "
              f"e2e_overhead={100 * e2e:.3f}% "
              f"byte_overhead={100 * byte:.4f}% "
              f"session_overhead={100 * session:.3f}% "
              f"durable_overhead={100 * durable:.3f}% "
              f"(limit {100 * args.max_ratio:.1f}%)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
