#!/usr/bin/env python3
"""Gate the GC batched-kernel speedup over the scalar reference path.

Usage:
  check_gc_speedup.py GC.jsonl [--min-garble 3.0] [--min-eval 3.0]

The input is raw bench_gc_micro output; any line starting with "JSON " is
parsed, everything else ignored.  Run the bench several times and
concatenate the output — more samples make the gate more robust.

For every circuit label the script pairs gc_garble with gc_garble_ref (and
gc_eval with gc_eval_ref) from the SAME bench invocation: the i-th
occurrence of the batched bench is divided by the i-th occurrence of the
scalar reference.  Absolute throughput gates across machines are
meaningless, and on shared/virtualized runners even the two sides of a
ratio drift apart when they run minutes apart — but within one invocation
the batched and scalar benches for a circuit run back to back, so the
per-invocation ratio cancels both the hardware and most of the
interference.  The per-circuit ratio is the median over invocations
(robust to an unlucky sample on either side), and the gate fails unless
the geometric mean of the per-circuit medians clears the thresholds for
both directions.

The defaults (3.0x garble, 2.5x eval) reflect the VAES-512 kernel tier.
Eval gates lower than garble: once the AND hashes are batched ~3.5x, the
free-XOR sweep (~3 XOR gates per AND) is exposed as serial time the scalar
reference hides under its AES latency, and the 512-bit path pays AVX-512
frequency licensing that the 128-bit baseline does not — measured eval
speedup is typically 2.8-3.0x against a 3.2-3.5x garble.  On a runner
without VAES the dispatcher falls back to the fused SSE tier and CI passes
a lower floor instead (see the GC speedup gate step in ci.yml).
"""

import argparse
import json
import math
import statistics
import sys


def load(path):
    runs = {}
    try:
        f = open(path)
    except OSError as e:
        print(f"check_gc_speedup: cannot read {path}: {e}", file=sys.stderr)
        return None
    with f:
        for line in f:
            line = line.strip()
            if not line.startswith("JSON "):
                continue
            rec = json.loads(line[5:])
            key = (rec["bench"], rec.get("label", ""))
            runs.setdefault(key, []).append(rec["ops_per_s"])
    return runs


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("jsonl")
    ap.add_argument("--min-garble", type=float, default=3.0)
    ap.add_argument("--min-eval", type=float, default=2.5)
    args = ap.parse_args()

    runs = load(args.jsonl)
    if runs is None or not runs:
        print("check_gc_speedup: input missing or has no JSON benchmark "
              "lines; refusing to pass an empty gate", file=sys.stderr)
        return 2

    ratios = {"garble": [], "eval": []}
    print(f"{'circuit':<12} {'direction':<8} {'batched':>12} {'scalar':>12} "
          f"{'ratio':>7} {'runs':>5}")
    for direction in ("garble", "eval"):
        opt_name, ref_name = f"gc_{direction}", f"gc_{direction}_ref"
        labels = sorted(lab for (b, lab) in runs if b == opt_name)
        for lab in labels:
            ref_key = (ref_name, lab)
            if ref_key not in runs:
                print(f"check_gc_speedup: no scalar reference for "
                      f"{opt_name}/{lab}", file=sys.stderr)
                return 2
            opt, ref = runs[(opt_name, lab)], runs[ref_key]
            pairs = list(zip(opt, ref))  # i-th run vs i-th run
            per_run = [o / r if r > 0 else float("inf") for o, r in pairs]
            ratio = statistics.median(per_run)
            ratios[direction].append(ratio)
            print(f"{lab:<12} {direction:<8} {max(opt):>12.1f} "
                  f"{max(ref):>12.1f} {ratio:>6.2f}x {len(pairs):>5}")

    failed = False
    for direction, floor in (("garble", args.min_garble),
                             ("eval", args.min_eval)):
        if not ratios[direction]:
            print(f"check_gc_speedup: no gc_{direction} benchmarks in input",
                  file=sys.stderr)
            return 2
        gm = geomean(ratios[direction])
        verdict = "ok" if gm >= floor else "BELOW FLOOR"
        print(f"geomean {direction}: {gm:.2f}x (floor {floor:.2f}x) "
              f"{verdict}")
        failed |= gm < floor

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
