#!/usr/bin/env python3
"""Multi-tenant serving chaos soak: concurrent sessions with per-session faults.

Usage:
  server_chaos_soak.py BUILD_DIR [--seeds 5] [--start 1] [--sessions 16]
                       [--workers 4] [--json-out FILE]

For every seed the env-gated soak cell (ServingChaos.Soak in test_serving)
stands up a PrimerServer and submits N concurrent tenant sessions, a seeded
mix of clean, peer-killed, stalled and hostile-corrupted failure scripts.
The cell itself asserts the serving runtime's isolation contract:

  * unfaulted (and retryably-faulted) sessions complete bit-identical to
    the plaintext reference — one tenant's faults never leak into another;
  * hostile corruption resolves to a typed poisoned outcome + quarantine,
    never a crash, hang, or cross-session failure;
  * the server then drains cleanly within its deadline.

Any other outcome (crash, hang, assertion) fails the soak.  Each run prints
a "SERVERSOAK {json}" summary line; this driver aggregates them and, with
--json-out, writes a machine-readable artifact for CI upload.

Deterministic per seed; a failing seed reproduces with:
  PRIMER_SERVER_SOAK=1 PRIMER_SERVER_SOAK_SEED=<seed> \
      ./test_serving --gtest_filter='ServingChaos.Soak'
"""

import argparse
import json
import os
import subprocess
import sys

TEST_BINARY = "test_serving"
TEST_FILTER = "ServingChaos.Soak"
# Generous: each tenant session is a full (nano) private inference and the
# box may be single-core; a genuinely hung server must still fail the job.
PER_RUN_TIMEOUT_S = 600


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir")
    ap.add_argument("--seeds", type=int, default=5)
    ap.add_argument("--start", type=int, default=1)
    ap.add_argument("--sessions", type=int, default=16)
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--json-out", default=None,
                    help="write an aggregated JSON summary artifact here")
    args = ap.parse_args()

    binary = os.path.join(args.build_dir, TEST_BINARY)
    if not os.path.exists(binary):
        print(f"server_chaos_soak: {binary} not found (build it first)",
              file=sys.stderr)
        return 1

    runs = []
    failures = []
    for seed in range(args.start, args.start + args.seeds):
        env = dict(os.environ)
        env["PRIMER_SERVER_SOAK"] = "1"
        env["PRIMER_SERVER_SOAK_SEED"] = str(seed)
        env["PRIMER_SERVER_SOAK_SESSIONS"] = str(args.sessions)
        env["PRIMER_SERVER_SOAK_WORKERS"] = str(args.workers)
        cmd = [binary, f"--gtest_filter={TEST_FILTER}"]
        record = {"seed": seed, "ok": False}
        try:
            proc = subprocess.run(cmd, env=env, capture_output=True,
                                  text=True, timeout=PER_RUN_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            print(f"server_chaos_soak: seed {seed}: TIMEOUT "
                  f"(>{PER_RUN_TIMEOUT_S}s)", file=sys.stderr)
            record["error"] = "timeout"
            failures.append(seed)
            runs.append(record)
            continue
        summary = None
        for line in proc.stdout.splitlines():
            if line.startswith("SERVERSOAK "):
                summary = json.loads(line[len("SERVERSOAK "):])
        if proc.returncode != 0 or summary is None:
            why = (f"exit {proc.returncode}" if proc.returncode != 0
                   else "no SERVERSOAK summary line")
            print(f"server_chaos_soak: seed {seed}: FAILED ({why})",
                  file=sys.stderr)
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            record["error"] = why
            failures.append(seed)
        else:
            record["ok"] = True
            record.update(summary)
            print(f"server_chaos_soak: seed {seed}: ok "
                  f"(injected={summary.get('injected')} "
                  f"completed={summary.get('completed')} "
                  f"poisoned={summary.get('poisoned')} "
                  f"p99={summary.get('p99_s')}s)")
        runs.append(record)

    aggregate = {
        "tool": "server_chaos_soak",
        "sessions_per_seed": args.sessions,
        "workers": args.workers,
        "seeds_run": args.seeds,
        "seeds_failed": failures,
        "total_injected": sum(r.get("injected", 0) for r in runs),
        "total_completed": sum(r.get("completed", 0) for r in runs),
        "total_poisoned": sum(r.get("poisoned", 0) for r in runs),
        "runs": runs,
    }
    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(aggregate, f, indent=2)
            f.write("\n")
        print(f"server_chaos_soak: wrote {args.json_out}")

    if failures:
        print(f"server_chaos_soak: {len(failures)}/{args.seeds} seeds "
              f"failed: {failures}", file=sys.stderr)
        return 1
    print(f"server_chaos_soak: all {args.seeds} seeds passed "
          f"({aggregate['total_injected']} faults injected, "
          f"{aggregate['total_completed']} sessions bit-identical, "
          f"{aggregate['total_poisoned']} poisoned+quarantined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
