#!/usr/bin/env python3
"""Multi-tenant serving chaos soak: concurrent sessions with per-session faults.

Usage:
  server_chaos_soak.py BUILD_DIR [--seeds 5] [--start 1] [--sessions 16]
                       [--workers 4] [--store-dir DIR] [--json-out FILE]

For every seed the env-gated soak cell (ServingChaos.Soak in test_serving)
stands up a PrimerServer and submits N concurrent tenant sessions, a seeded
mix of clean, peer-killed, stalled and hostile-corrupted failure scripts.
The cell itself asserts the serving runtime's isolation contract:

  * unfaulted (and retryably-faulted) sessions complete bit-identical to
    the plaintext reference — one tenant's faults never leak into another;
  * hostile corruption resolves to a typed poisoned outcome + quarantine,
    never a crash, hang, or cross-session failure;
  * the server then drains cleanly within its deadline.

Any other outcome (crash, hang, assertion) fails the soak.  With
--store-dir the server runs on durable per-client stores rooted there
(PRIMER_SERVING_STORE_DIR), so the whole chaos matrix also exercises the
on-disk checkpoint path.  Each run prints a "SERVERSOAK {json}" summary
line; this driver aggregates them and, with --json-out, writes a
machine-readable artifact for CI upload.

Deterministic per seed; a failing seed reproduces with:
  PRIMER_SERVER_SOAK=1 PRIMER_SERVER_SOAK_SEED=<seed> \
      ./test_serving --gtest_filter='ServingChaos.Soak'
"""

import argparse
import json
import os
import sys

import soaklib

TOOL = "server_chaos_soak"
TEST_BINARY = "test_serving"
TEST_FILTER = "ServingChaos.Soak"
# Generous: each tenant session is a full (nano) private inference and the
# box may be single-core; a genuinely hung server must still fail the job.
PER_RUN_TIMEOUT_S = 600


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir")
    ap.add_argument("--seeds", type=int, default=5)
    ap.add_argument("--start", type=int, default=1)
    ap.add_argument("--sessions", type=int, default=16)
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--store-dir", default=None,
                    help="run durable: per-client stores rooted here "
                         "(one subdirectory per seed)")
    ap.add_argument("--json-out", default=None,
                    help="write an aggregated JSON summary artifact here")
    args = ap.parse_args()

    binary = soaklib.find_binary(args.build_dir, TEST_BINARY, TOOL)
    if binary is None:
        return 1

    runs = []
    failures = []
    for seed in range(args.start, args.start + args.seeds):
        env = {"PRIMER_SERVER_SOAK": "1",
               "PRIMER_SERVER_SOAK_SEED": str(seed),
               "PRIMER_SERVER_SOAK_SESSIONS": str(args.sessions),
               "PRIMER_SERVER_SOAK_WORKERS": str(args.workers)}
        if args.store_dir:
            store = os.path.join(args.store_dir, f"seed_{seed}")
            os.makedirs(store, exist_ok=True)
            env["PRIMER_SERVING_STORE_DIR"] = store
        record = {"seed": seed, "ok": False}
        result = soaklib.run_cell(binary, TEST_FILTER, env,
                                  timeout_s=PER_RUN_TIMEOUT_S, brief=False)
        summary = None
        if result.returncode is not None:
            for line in result.stdout.splitlines():
                if line.startswith("SERVERSOAK "):
                    summary = json.loads(line[len("SERVERSOAK "):])
        if not result.ok or summary is None:
            if result.ok:
                result.error = "no SERVERSOAK summary line"
            soaklib.dump_failure(TOOL, f"seed {seed}", result)
            record["error"] = result.error
            failures.append(seed)
        else:
            record["ok"] = True
            record.update(summary)
            print(f"{TOOL}: seed {seed}: ok "
                  f"(injected={summary.get('injected')} "
                  f"completed={summary.get('completed')} "
                  f"poisoned={summary.get('poisoned')} "
                  f"p99={summary.get('p99_s')}s)")
        runs.append(record)

    aggregate = {
        "sessions_per_seed": args.sessions,
        "workers": args.workers,
        "durable": bool(args.store_dir),
        "seeds_run": args.seeds,
        "seeds_failed": failures,
        "total_injected": sum(r.get("injected", 0) for r in runs),
        "total_completed": sum(r.get("completed", 0) for r in runs),
        "total_poisoned": sum(r.get("poisoned", 0) for r in runs),
        "runs": runs,
    }
    if args.json_out:
        soaklib.write_json(TOOL, args.json_out, aggregate)
    return soaklib.finish(
        TOOL, args.seeds, failures,
        f"all {args.seeds} seeds passed "
        f"({aggregate['total_injected']} faults injected, "
        f"{aggregate['total_completed']} sessions bit-identical, "
        f"{aggregate['total_poisoned']} poisoned+quarantined)")


if __name__ == "__main__":
    sys.exit(main())
