#!/usr/bin/env python3
"""Commit-compare bench_he_micro JSON lines and fail on throughput regression.

Usage:
  compare_bench.py BASE.jsonl HEAD.jsonl [--max-regress 0.15] [--only PREFIX]

Both inputs are files of raw benchmark output; any line starting with
"JSON " is parsed, everything else ignored.  Benchmarks are matched on
(bench, label, kernel, threads); a head benchmark whose exact key is absent
from base falls back to the base entry with kernel="" (output from commits
that predate the --kernel sweep), so the gate keeps working across the
schema transition.  A benchmark regresses when its head ops_per_s drops
more than --max-regress below base.  Benchmarks present on only one side
are reported but never fail the check (the set changes as the suite grows).
A MISSING base file, one with no parseable JSON lines, or a base with no
benchmarks under the --only prefix is a warning, not a failure (exit 0):
first-run baselines — a BENCH_*.json snapshot or bench family that does
not exist yet, like a freshly added kernel sweep — must not break the
bench-trajectory job.  A missing or empty HEAD still fails (the benchmark
run itself broke), and when the base DOES carry the gated bench family but
nothing matches, the script fails too: an empty comparison over real data
means the gate is not checking anything (e.g. a bench rename broke the
keying), and that must be loud, not green.  --only restricts the failing
set to bench names with the given prefix (e.g. "ntt" for the NTT
trajectory); everything else is reported as informational.
"""

import argparse
import json
import sys


def load(path):
    out = {}
    try:
        f = open(path)
    except OSError as e:
        print(f"compare_bench: cannot read {path}: {e}", file=sys.stderr)
        return None
    with f:
        for line in f:
            line = line.strip()
            if not line.startswith("JSON "):
                continue
            rec = json.loads(line[5:])
            key = (
                rec["bench"],
                rec.get("label", ""),
                rec.get("kernel", ""),
                rec.get("threads", 0),
            )
            out[key] = rec
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("base")
    ap.add_argument("head")
    ap.add_argument("--max-regress", type=float, default=0.15,
                    help="maximum allowed fractional ops/s drop (default 0.15)")
    ap.add_argument("--only", default=None,
                    help="only bench names with this prefix can fail the check")
    args = ap.parse_args()

    base = load(args.base)
    head = load(args.head)
    # A missing or empty BASE is a warning, not a failure: a baseline that
    # does not exist yet (first run of a new bench suite) is not a
    # regression.  The HEAD side gets no such leniency — an empty head
    # means the benchmark run itself broke, and a gate comparing nothing
    # must be loud, not green.
    if base is None or not base:
        print("compare_bench: base input missing or has no JSON benchmark "
              "lines; nothing to compare (treating as first-run baseline)",
              file=sys.stderr)
        return 0
    if head is None or not head:
        print("compare_bench: head input missing or empty — the benchmark "
              "run produced no JSON lines; refusing to pass an empty "
              "comparison", file=sys.stderr)
        return 2

    failures = []
    matched = 0
    consumed_base = set()
    print(f"{'bench':<24} {'label':<12} {'kernel':<8} {'thr':>3} "
          f"{'base ops/s':>12} {'head ops/s':>12} {'ratio':>7}")
    for key in sorted(head):
        name, label, kernel, threads = key
        base_key = key
        if base_key not in base:
            base_key = (name, label, "", threads)  # pre-kernel-sweep base
        if base_key not in base:
            print(f"{name:<24} {label:<12} {kernel:<8} {threads:>3} "
                  f"{'(new)':>12} {head[key]['ops_per_s']:>12.1f}")
            continue
        matched += 1
        consumed_base.add(base_key)
        b = base[base_key]["ops_per_s"]
        h = head[key]["ops_per_s"]
        ratio = h / b if b > 0 else float("inf")
        marker = ""
        gated = args.only is None or name.startswith(args.only)
        if gated and ratio < 1.0 - args.max_regress:
            marker = "  << REGRESSION"
            failures.append((key, ratio))
        print(f"{name:<24} {label:<12} {kernel:<8} {threads:>3} "
              f"{b:>12.1f} {h:>12.1f} {ratio:>6.2f}x{marker}")
    for key in sorted(set(base) - consumed_base):
        name, label, kernel, threads = key
        print(f"{name:<24} {label:<12} {kernel:<8} {threads:>3} "
              f"{base[key]['ops_per_s']:>12.1f} {'(gone)':>12}")

    if matched == 0:
        # Distinguish "the base predates this bench suite" (first-run
        # baseline: every gated head bench is new — warn, stay green) from
        # "both sides have this suite but nothing matched" (the keying
        # broke — must be loud).
        def gated(keys):
            return [k for k in keys
                    if args.only is None or k[0].startswith(args.only)]
        if not gated(base):
            print("\ncompare_bench: base has no benchmarks"
                  + (f" with prefix '{args.only}'" if args.only else "")
                  + "; treating as first-run baseline", file=sys.stderr)
            return 0
        print("\ncompare_bench: no benchmark matched between base and head — "
              "the regression gate is checking nothing (keying broke?)",
              file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed more than "
              f"{args.max_regress:.0%}:", file=sys.stderr)
        for (name, label, kernel, threads), ratio in failures:
            print(f"  {name} {label} kernel={kernel} threads={threads}: "
                  f"{ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\n{matched} benchmarks compared; no throughput regressions "
          f"beyond {args.max_regress:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
