// Tests for the baselines and the accuracy/cost experiment substrates:
// the THE-X approximation model, the synthetic training harness, and the
// calibrated cost model's structural properties.
#include <gtest/gtest.h>

#include "nn/thex.h"
#include "nn/train.h"
#include "proto/cost_model.h"

namespace primer {
namespace {

TEST(Thex, ForwardRunsAndDiffersFromExact) {
  Rng rng(1);
  const auto w = quantize(BertWeightsD::random(bert_micro(), rng));
  const FixedBert exact(w);
  int diff = 0;
  for (int i = 0; i < 10; ++i) {
    std::vector<std::size_t> tokens(w.config.tokens);
    for (auto& t : tokens) t = rng.uniform(w.config.vocab);
    const auto a = exact.forward(tokens);
    const auto b = thex_fixed_forward(w, tokens);
    ASSERT_EQ(a.size(), b.size());
    if (a != b) ++diff;
  }
  // The polynomial approximations must actually change the computation.
  EXPECT_GT(diff, 5);
}

TEST(Thex, DegenerateAllNegativeScoresFallBackToUniform) {
  // relu-softmax with an all-negative row must not divide by zero.
  Rng rng(2);
  auto wd = BertWeightsD::random(bert_nano(), rng);
  // Strongly negative positional bias pushes scores negative.
  for (auto& v : wd.pos.data()) v = -8.0;
  const auto w = quantize(wd);
  const std::vector<std::size_t> tokens = {0, 1, 2, 3};
  EXPECT_NO_THROW({ (void)thex_fixed_forward(w, tokens); });
}

TEST(SyntheticTask, LabelsAreBalancedAndDeterministic) {
  Rng rng(7);
  const auto task = SyntheticTask::generate(bert_nano(), 300, rng);
  std::size_t counts[3] = {0, 0, 0};
  for (const auto l : task.labels) {
    ASSERT_LT(l, 3u);
    ++counts[l];
  }
  for (const auto c : counts) EXPECT_GT(c, 50u);  // roughly balanced
  Rng rng2(7);
  const auto task2 = SyntheticTask::generate(bert_nano(), 300, rng2);
  EXPECT_EQ(task.labels, task2.labels);
  EXPECT_EQ(task.inputs, task2.inputs);
}

TEST(Training, LearnsAboveChanceAndPrimerTracksFloat) {
  Rng rng(11);
  auto weights = BertWeightsD::random(bert_nano(), rng);
  const auto report = train_and_evaluate(weights, 150, 100, 20, rng);
  EXPECT_GT(report.float_accuracy, 0.45);  // chance = 1/3
  // Primer's exact fixed-point arithmetic stays close to float...
  EXPECT_NEAR(report.fixed_accuracy, report.float_accuracy, 0.10);
  // ...and (directionally) beats the THE-X approximations.
  EXPECT_GE(report.fixed_accuracy + 0.02, report.thex_accuracy);
}

TEST(CostModel, GateCountsArePositiveAndOrdered) {
  const auto g = count_protocol_gates((1ULL << 40) + 1, 30, 64);
  EXPECT_GT(g.activation_identity_per_value, 100u);
  EXPECT_GT(g.activation_gelu_per_value, g.activation_identity_per_value);
  EXPECT_GT(g.softmax_row, g.activation_gelu_per_value);
  EXPECT_GT(g.layernorm_row, g.softmax_row / 30);
}

class CostModelTest : public ::testing::Test {
 protected:
  static PrimitiveCosts synthetic_costs() {
    // Fixed synthetic primitive costs so the structural assertions are
    // deterministic and fast (no calibration).
    PrimitiveCosts pc;
    pc.rotation = 2e-3;
    pc.plain_mult = 1e-3;
    pc.ct_mult = 10e-3;
    pc.add = 5e-5;
    pc.encrypt = 2e-3;
    pc.decrypt = 1e-3;
    pc.gc_garble_and = 50e-9;
    pc.gc_eval_and = 25e-9;
    pc.plain_mac = 1e-9;
    pc.ciphertext_bytes = 400000;
    pc.slots = 4096;
    return pc;
  }
};

TEST_F(CostModelTest, PaperOrderingHolds) {
  const auto pc = synthetic_costs();
  const auto cfg = bert_base();
  const auto thex = estimate_cost(cfg, CostedScheme::kTheX, pc);
  const auto gcf = estimate_cost(cfg, CostedScheme::kGcFormer, pc);
  const auto base = estimate_cost(cfg, CostedScheme::kPrimerBase, pc);
  const auto f = estimate_cost(cfg, CostedScheme::kPrimerF, pc);
  const auto fp = estimate_cost(cfg, CostedScheme::kPrimerFP, pc);
  const auto fpc = estimate_cost(cfg, CostedScheme::kPrimerFPC, pc);

  // Fig. 2 / Table I orderings.
  EXPECT_GT(gcf.total_seconds(), thex.total_seconds());
  EXPECT_LT(fpc.total_seconds(), thex.total_seconds());
  EXPECT_LT(fpc.total_seconds(), f.total_seconds());
  // Table II cascade.
  EXPECT_GT(base.online_seconds() / f.online_seconds(), 20.0);   // FHGS
  EXPECT_GT(f.offline_seconds() / fp.offline_seconds(), 4.0);    // packing
  // Primer-base pays everything online.
  EXPECT_EQ(base.offline_seconds(), 0.0);
  // CHGS zeroes embed and qkv.
  EXPECT_EQ(fpc.steps.at("embed").online_s, 0.0);
  EXPECT_EQ(fpc.steps.at("qkv").online_s, 0.0);
  EXPECT_GT(fpc.steps.at("qk").offline_s, fp.steps.at("qk").offline_s);
}

TEST_F(CostModelTest, ZooScalesMonotonically) {
  const auto pc = synthetic_costs();
  double prev_total = 0, prev_gb = 0;
  for (const auto& cfg : bert_zoo()) {
    const auto e = estimate_cost(cfg, CostedScheme::kPrimerFPC, pc);
    EXPECT_GT(e.total_seconds(), prev_total) << cfg.name;
    EXPECT_GT(e.message_gb(), prev_gb) << cfg.name;
    prev_total = e.total_seconds();
    prev_gb = e.message_gb();
  }
}

TEST_F(CostModelTest, FhgsRemovesOnlineCtMults) {
  const auto pc = synthetic_costs();
  const auto cfg = bert_tiny();
  const auto base = estimate_cost(cfg, CostedScheme::kPrimerBase, pc);
  const auto f = estimate_cost(cfg, CostedScheme::kPrimerF, pc);
  EXPECT_GT(base.total().ct_mults, 0u);
  EXPECT_EQ(f.total().ct_mults, 0u);
}

TEST_F(CostModelTest, PackingReducesRotationsByTokenFactor) {
  const auto pc = synthetic_costs();
  const auto cfg = bert_base();
  const auto f = estimate_cost(cfg, CostedScheme::kPrimerF, pc);
  const auto fp = estimate_cost(cfg, CostedScheme::kPrimerFP, pc);
  // The paper's factor-n claim is about the sequential alignment schedule;
  // the live BSGS schedule compresses both sides to ~n1+n2 per set but
  // keeps a clear tokens-first advantage.
  const double naive_ratio =
      static_cast<double>(f.total().naive_rotations) /
      static_cast<double>(fp.total().naive_rotations);
  EXPECT_GT(naive_ratio, 10.0);
  EXPECT_LT(naive_ratio, 60.0);
  const double live_ratio = static_cast<double>(f.total().rotations) /
                            static_cast<double>(fp.total().rotations);
  EXPECT_GT(live_ratio, 2.0);
  EXPECT_LT(f.total().rotations, f.total().naive_rotations);
  EXPECT_LT(fp.total().rotations, fp.total().naive_rotations);
}

TEST(PaperNumbersTable, MatchesPublishedValues) {
  EXPECT_DOUBLE_EQ(paper_table1(CostedScheme::kTheX).online_s, 4700);
  EXPECT_DOUBLE_EQ(paper_table1(CostedScheme::kPrimerFPC).accuracy, 84.6);
  EXPECT_DOUBLE_EQ(paper_table1(CostedScheme::kGcFormer).offline_s, 7500);
}

}  // namespace
}  // namespace primer
