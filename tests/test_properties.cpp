// Property-style sweeps (TEST_P) across the substrates' parameter spaces:
// HE homomorphism at several moduli, share-circuit round trips at several
// plaintext moduli and widths, fixed-softmax invariants across shift/size
// combinations, and a smoke test at the full 128-bit-secure parameters.
#include <gtest/gtest.h>

#include <cmath>

#include "gc/fixed_circuits.h"
#include "gc/protocol.h"
#include "he/encoder.h"
#include "he/he.h"
#include "ss/secret_share.h"

namespace primer {
namespace {

// ---------------------------------------------------------------------------
// HE homomorphism under random op sequences
// ---------------------------------------------------------------------------

class HeRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeRandomOps, RandomAddSubChainsMatchPlainModel) {
  const HeContext ctx(make_params(HeProfile::kTest2048));
  Rng rng(GetParam());
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Decryptor dec(ctx, keygen.secret_key());
  const Evaluator eval(ctx);
  const std::uint64_t t = ctx.t();

  const std::size_t lanes = 32;
  std::vector<std::uint64_t> model(lanes);
  for (auto& v : model) v = rng.uniform(t);
  Ciphertext ct = enc.encrypt(encoder.encode(model));

  for (int op = 0; op < 30; ++op) {
    std::vector<std::uint64_t> operand(lanes);
    for (auto& v : operand) v = rng.uniform(t);
    const auto pt = encoder.encode(operand);
    switch (rng.uniform(4)) {
      case 0: {
        const auto other = enc.encrypt(pt);
        eval.add_inplace(ct, other);
        for (std::size_t i = 0; i < lanes; ++i) {
          model[i] = (model[i] + operand[i]) % t;
        }
        break;
      }
      case 1: {
        const auto other = enc.encrypt(pt);
        eval.sub_inplace(ct, other);
        for (std::size_t i = 0; i < lanes; ++i) {
          model[i] = (model[i] + t - operand[i]) % t;
        }
        break;
      }
      case 2:
        eval.add_plain_inplace(ct, pt);
        for (std::size_t i = 0; i < lanes; ++i) {
          model[i] = (model[i] + operand[i]) % t;
        }
        break;
      default:
        eval.sub_plain_inplace(ct, pt);
        for (std::size_t i = 0; i < lanes; ++i) {
          model[i] = (model[i] + t - operand[i]) % t;
        }
        break;
    }
  }
  const auto got = encoder.decode(dec.decrypt(ct));
  for (std::size_t i = 0; i < lanes; ++i) ASSERT_EQ(got[i], model[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeRandomOps,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// Secure production parameters smoke test
// ---------------------------------------------------------------------------

TEST(ProdParams, FullOpSuiteAtSecureParameters) {
  const HeContext ctx(make_params(HeProfile::kProd8192));
  ASSERT_TRUE(ctx.params().secure_128);
  Rng rng(9);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Decryptor dec(ctx, keygen.secret_key());
  const Evaluator eval(ctx);
  const auto gk = keygen.make_galois_keys({1});
  const auto rk = keygen.make_relin_key();
  const std::uint64_t t = ctx.t();

  std::vector<std::uint64_t> a = {1, 2, 3, 4}, b = {10, 20, 30, 40};
  auto ca = enc.encrypt(encoder.encode(a));
  const auto cb = enc.encrypt(encoder.encode(b));
  eval.add_inplace(ca, cb);
  eval.multiply_plain_inplace(ca, encoder.encode({2, 2, 2, 2}));
  eval.rotate_rows_inplace(ca, 1, gk);
  auto prod = eval.multiply(ca, cb);
  eval.relinearize_inplace(prod, rk);
  const auto out = encoder.decode(dec.decrypt(prod));
  // slot0 after rotate holds 2*(a1+b1); multiplied by b0.
  EXPECT_EQ(out[0], (2 * (a[1] + b[1]) % t) * b[0] % t);
  EXPECT_GT(dec.noise_budget(prod), 0.0);
}

// ---------------------------------------------------------------------------
// Share-circuit sweeps over plaintext moduli
// ---------------------------------------------------------------------------

class ShareCircuitModuli : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShareCircuitModuli, ReluRoundTripAcrossModuli) {
  const std::uint64_t t = GetParam();
  const std::size_t w = share_width(t);
  ActivationCircuitSpec spec;
  spec.t = t;
  spec.count = 2;
  spec.frac_shift = 8;
  spec.act = Activation::kRelu;
  const Circuit c = make_activation_circuit(spec);
  Rng rng(t);
  const ShareRing ring(t);
  for (int iter = 0; iter < 10; ++iter) {
    const std::int64_t bound =
        std::min<std::int64_t>(400000, static_cast<std::int64_t>(t / 2 - 1));
    std::vector<std::int64_t> vals = {rng.uniform_int(-bound, bound),
                                      rng.uniform_int(-bound, bound)};
    std::vector<bool> in_g, in_e, in_r;
    std::vector<std::uint64_t> rcs;
    for (const auto v : vals) {
      const std::uint64_t ringv = fp_to_ring(v, t);
      const std::uint64_t share1 = rng.uniform(t);
      const std::uint64_t share2 = (ringv + t - share1) % t;
      const std::uint64_t rc = rng.uniform(t);
      rcs.push_back(rc);
      const auto g = value_to_bits(share1, w);
      const auto e = value_to_bits(share2, w);
      const auto r = value_to_bits(rc, w);
      in_g.insert(in_g.end(), g.begin(), g.end());
      in_e.insert(in_e.end(), e.begin(), e.end());
      in_r.insert(in_r.end(), r.begin(), r.end());
    }
    std::vector<bool> inputs = in_g;
    inputs.insert(inputs.end(), in_e.begin(), in_e.end());
    inputs.insert(inputs.end(), in_r.begin(), in_r.end());
    const auto out = eval_circuit(c, inputs);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      const std::vector<bool> bits(out.begin() + static_cast<long>(i * w),
                                   out.begin() + static_cast<long>((i + 1) * w));
      const std::int64_t got =
          ring.center(static_cast<std::int64_t>(
              (bits_to_value(bits) + rcs[i]) % t));
      EXPECT_EQ(got, activation_reference(vals[i], 8, Activation::kRelu,
                                          spec.fmt))
          << "t=" << t << " v=" << vals[i];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, ShareCircuitModuli,
                         ::testing::Values(1032193ULL,          // ~2^20
                                           68719403009ULL,      // ~2^36
                                           274877906951ULL));   // ~2^38

// ---------------------------------------------------------------------------
// Softmax invariants across sizes and shifts
// ---------------------------------------------------------------------------

struct SoftmaxCase {
  std::size_t count;
  std::size_t shift;
};

class SoftmaxInvariants : public ::testing::TestWithParam<SoftmaxCase> {};

TEST_P(SoftmaxInvariants, NonNegativeSumsNearOneOrderPreserved) {
  const auto [count, shift] = GetParam();
  Rng rng(count * 100 + shift);
  const FixedPointFormat fmt;
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<std::int64_t> x(count);
    for (auto& v : x) {
      v = rng.uniform_int(-(1LL << (shift + 10)), 1LL << (shift + 10));
    }
    const auto sm = fixed_softmax_reference(x, shift, fmt);
    double total = 0;
    for (const auto s : sm) {
      ASSERT_GE(s, 0);
      total += fp_decode(s, fmt);
    }
    EXPECT_NEAR(total, 1.0, 0.15);
    // Order preservation: the max input gets the max probability.
    std::size_t argmax_in = 0, argmax_out = 0;
    for (std::size_t i = 1; i < count; ++i) {
      if (x[i] > x[argmax_in]) argmax_in = i;
      if (sm[i] > sm[argmax_out]) argmax_out = i;
    }
    EXPECT_GE(sm[argmax_in], sm[argmax_out] - fmt.scale() / 64);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SoftmaxInvariants,
    ::testing::Values(SoftmaxCase{4, 8}, SoftmaxCase{8, 8}, SoftmaxCase{30, 8},
                      SoftmaxCase{8, 24}, SoftmaxCase{16, 16}));

// ---------------------------------------------------------------------------
// Garbling is correct on the actual protocol circuits (fuzzed inputs)
// ---------------------------------------------------------------------------

TEST(GarbledProtocolCircuits, LayerNormGarbledMatchesPlain) {
  LayerNormCircuitSpec spec;
  spec.t = 1032193;
  spec.d = 4;
  spec.frac_shift = 8;
  spec.gamma.assign(4, 256);
  spec.beta.assign(4, 0);
  const Circuit c = make_layernorm_circuit(spec);
  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<bool> in(static_cast<std::size_t>(c.num_inputs));
    for (auto&& b : in) b = rng.next() & 1;
    EXPECT_EQ(garbled_eval(c, in, rng), eval_circuit(c, in));
  }
}

}  // namespace
}  // namespace primer
