// Tests for the secret-sharing substrate: ring arithmetic, share/reconstruct
// round trips, Beaver triple generation and Beaver matrix multiplication.
#include <gtest/gtest.h>

#include "ss/secret_share.h"

namespace primer {
namespace {

constexpr std::uint64_t kT = (1ULL << 38) + 7;  // arbitrary odd modulus

TEST(ShareRing, ReduceAndCenter) {
  const ShareRing ring(101);
  EXPECT_EQ(ring.reduce(105), 4);
  EXPECT_EQ(ring.reduce(-1), 100);
  EXPECT_EQ(ring.center(100), -1);
  EXPECT_EQ(ring.center(50), 50);   // exactly t/2 stays positive
  EXPECT_EQ(ring.center(51), -50);
}

TEST(ShareRing, ShareReconstructRoundTrip) {
  const ShareRing ring(kT);
  Rng rng(1);
  for (int iter = 0; iter < 20; ++iter) {
    MatI v(3, 5);
    for (auto& x : v.data()) x = rng.uniform_int(-1000000, 1000000);
    const auto shares = ring.share(v, rng);
    EXPECT_EQ(ring.reconstruct(shares), v);
  }
}

TEST(ShareRing, SharesAreUniformlyMasked) {
  // The client share alone must reveal nothing: two different values share
  // to the same marginal distribution.  Sanity check: shares of zero and of
  // a large value have indistinguishable means.
  const ShareRing ring(kT);
  Rng rng(2);
  double mean0 = 0, mean1 = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    MatI zero(1, 1), big(1, 1);
    big(0, 0) = 123456789;
    mean0 += static_cast<double>(ring.share(zero, rng).client(0, 0));
    mean1 += static_cast<double>(ring.share(big, rng).client(0, 0));
  }
  const double t_half = static_cast<double>(kT) / 2;
  EXPECT_NEAR(mean0 / n / t_half, 1.0, 0.1);
  EXPECT_NEAR(mean1 / n / t_half, 1.0, 0.1);
}

TEST(ShareRing, MulMatchesWideArithmetic) {
  const ShareRing ring(kT);
  Rng rng(3);
  const MatI a = ring.random(rng, 4, 6);
  const MatI b = ring.random(rng, 6, 3);
  const MatI c = ring.mul(a, b);
  // Verify one entry against 128-bit arithmetic.
  unsigned __int128 acc = 0;
  for (std::size_t k = 0; k < 6; ++k) {
    acc += (static_cast<unsigned __int128>(a(1, k)) *
            static_cast<unsigned __int128>(b(k, 2))) %
           kT;
  }
  EXPECT_EQ(static_cast<std::uint64_t>(c(1, 2)),
            static_cast<std::uint64_t>(acc % kT));
}

TEST(Beaver, TripleSatisfiesInvariant) {
  const ShareRing ring(kT);
  Rng rng(4);
  const auto triple = make_beaver_triple(ring, rng, 3, 4, 2);
  const MatI a = ring.add(triple.a.client, triple.a.server);
  const MatI b = ring.add(triple.b.client, triple.b.server);
  const MatI c = ring.add(triple.c.client, triple.c.server);
  EXPECT_EQ(ring.reduce(ring.mul(a, b)), ring.reduce(c));
}

TEST(Beaver, MultiplicationOfSharedMatrices) {
  const ShareRing ring(kT);
  Rng rng(5);
  MatI x(2, 3), y(3, 2);
  for (auto& v : x.data()) v = rng.uniform_int(-5000, 5000);
  for (auto& v : y.data()) v = rng.uniform_int(-5000, 5000);
  const auto xs = ring.share(x, rng);
  const auto ys = ring.share(y, rng);
  const auto triple = make_beaver_triple(ring, rng, 2, 3, 2);
  const auto result = beaver_multiply(ring, xs, ys, triple);
  const MatI got = ring.reconstruct(result.product);
  const MatI expect = ring.center(ring.mul(ring.reduce(x), ring.reduce(y)));
  EXPECT_EQ(got, expect);
}

TEST(Beaver, OpenedValuesAreMasked) {
  // E = X - A and F = Y - B leak nothing because A, B are uniform; check
  // they differ from the inputs (overwhelming probability).
  const ShareRing ring(kT);
  Rng rng(6);
  MatI x(2, 2, 7);  // constant input
  const auto xs = ring.share(x, rng);
  const auto ys = ring.share(x, rng);
  const auto triple = make_beaver_triple(ring, rng, 2, 2, 2);
  const auto result = beaver_multiply(ring, xs, ys, triple);
  EXPECT_NE(result.opened_e, ring.reduce(x));
  EXPECT_NE(result.opened_f, ring.reduce(x));
}

}  // namespace
}  // namespace primer
