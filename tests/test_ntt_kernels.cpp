// Kernel-layer tests: randomized bit-equality of every vector tier (avx2,
// avx512, avx512ifma) against the scalar reference across the primes.cpp
// moduli sweep and degrees 2^10..2^13, a full-table property test at the
// dispatch-boundary moduli (2^50 for IFMA, 2^52, 2^61 for the lazy bound),
// the lazy-output forward NTT contract, the 128-bit Barrett reduction, the
// PRIMER_NTT_KERNEL dispatch override, and the RnsPoly flat-layout /
// serialization round-trip.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "he/encoder.h"
#include "he/he.h"
#include "ntt/kernels.h"
#include "ntt/ntt.h"
#include "ntt/primes.h"

namespace primer {
namespace {

// RAII environment-variable override (restores the prior value on exit).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

std::vector<u64> random_poly(Rng& rng, std::size_t n, u64 p) {
  std::vector<u64> v(n);
  rng.fill_uniform_mod(v, p);
  return v;
}

bool fully_reduced(const std::vector<u64>& v, u64 p) {
  for (u64 x : v) {
    if (x >= p) return false;
  }
  return true;
}

// The moduli sweep: one prime per bit size that primes.cpp can produce for
// the degree, matching the library's parameter profiles (40/45/50-bit) plus
// the extremes of the supported range.
std::vector<u64> moduli_sweep(std::size_t n) {
  std::vector<u64> out;
  for (int bits : {30, 40, 45, 50, 60}) {
    out.push_back(generate_ntt_primes(bits, n, 1)[0]);
  }
  return out;
}

// Kernel tiers whose availability and modulus bound admit p, by their
// PRIMER_NTT_KERNEL names.  Mirrors the dispatch_kernel gating: the lazy /
// Barrett headroom bound 2^61 for avx2/avx512, 4p < 2^52 (p < 2^50) for
// avx512ifma.
std::vector<const char*> tiers_for(u64 p) {
  std::vector<const char*> out = {"scalar"};
  if (avx2_available() && p < (u64{1} << 61)) out.push_back("avx2");
  if (avx512_available() && p < (u64{1} << 61)) out.push_back("avx512");
  if (avx512ifma_available() && p < (u64{1} << 50)) {
    out.push_back("avx512ifma");
  }
  return out;
}

// Shoup quotient in a kernel set's convention (floor(w * 2^shift / p)).
u64 shoup_quotient(u64 w, u64 p, std::uint32_t shift) {
  return static_cast<u64>((static_cast<u128>(w) << shift) / p);
}

TEST(Kernels, ScalarAvx2NttBitEquality) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 kernels unavailable";
  const NttKernel& sc = scalar_kernel();
  const NttKernel& vx = *avx2_kernel();
  Rng rng(7);
  for (std::size_t n : {std::size_t{1024}, std::size_t{2048},
                        std::size_t{4096}, std::size_t{8192}}) {
    for (u64 p : moduli_sweep(n)) {
      // Build twiddles once via an Ntt (tables are kernel-independent).
      ScopedEnv env("PRIMER_NTT_KERNEL", "scalar");
      const Ntt ntt(n, p);
      ASSERT_STREQ(ntt.kernel_name(), "scalar");

      const auto original = random_poly(rng, n, p);
      std::vector<u64> a = original, b = original;
      ntt.forward(a.data());  // scalar (bound at construction)
      // Drive the AVX2 kernel directly over the same twiddle tables by
      // round-tripping: forward with scalar must equal forward with avx2.
      {
        ScopedEnv env2("PRIMER_NTT_KERNEL", "avx2");
        const Ntt ntt_vx(n, p);
        ASSERT_STREQ(ntt_vx.kernel_name(), "avx2");
        ntt_vx.forward(b.data());
        EXPECT_EQ(a, b) << "forward mismatch n=" << n << " p=" << p;
        EXPECT_TRUE(fully_reduced(b, p));
        ntt_vx.inverse(b.data());
        EXPECT_EQ(b, original) << "avx2 round trip n=" << n << " p=" << p;
      }
      ntt.inverse(a.data());
      EXPECT_EQ(a, original) << "scalar round trip n=" << n << " p=" << p;
      (void)sc;
      (void)vx;
    }
  }
}

TEST(Kernels, ScalarAvx2ElementwiseBitEquality) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 kernels unavailable";
  const NttKernel& sc = scalar_kernel();
  const NttKernel& vx = *avx2_kernel();
  Rng rng(11);
  const std::size_t n = 1027;  // odd length exercises the vector tails
  for (u64 p : moduli_sweep(1024)) {
    const Barrett br(p);
    auto a = random_poly(rng, n, p);
    auto b = random_poly(rng, n, p);
    // Edge values at both ends.
    a[0] = 0;
    b[0] = 0;
    a[1] = p - 1;
    b[1] = p - 1;
    a[2] = 0;
    b[2] = p - 1;

    std::vector<u64> out_sc(n), out_vx(n);
    sc.add(out_sc.data(), a.data(), b.data(), n, p);
    vx.add(out_vx.data(), a.data(), b.data(), n, p);
    EXPECT_EQ(out_sc, out_vx) << "add p=" << p;

    sc.sub(out_sc.data(), a.data(), b.data(), n, p);
    vx.sub(out_vx.data(), a.data(), b.data(), n, p);
    EXPECT_EQ(out_sc, out_vx) << "sub p=" << p;

    sc.neg(out_sc.data(), a.data(), n, p);
    vx.neg(out_vx.data(), a.data(), n, p);
    EXPECT_EQ(out_sc, out_vx) << "neg p=" << p;

    sc.mul(out_sc.data(), a.data(), b.data(), n, p, br.ratio_hi(),
           br.ratio_lo());
    vx.mul(out_vx.data(), a.data(), b.data(), n, p, br.ratio_hi(),
           br.ratio_lo());
    EXPECT_EQ(out_sc, out_vx) << "mul p=" << p;
    EXPECT_TRUE(fully_reduced(out_vx, p));
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_EQ(out_vx[i], mul_mod(a[i], b[i], p)) << "mul vs naive i=" << i;
    }

    auto acc_sc = random_poly(rng, n, p);
    auto acc_vx = acc_sc;
    sc.mul_acc(acc_sc.data(), a.data(), b.data(), n, p, br.ratio_hi(),
               br.ratio_lo());
    vx.mul_acc(acc_vx.data(), a.data(), b.data(), n, p, br.ratio_hi(),
               br.ratio_lo());
    EXPECT_EQ(acc_sc, acc_vx) << "mul_acc p=" << p;

    const u64 w = rng.uniform(p);
    const ShoupMul s(w, p);
    sc.scalar_mul(out_sc.data(), a.data(), n, s.operand, s.quotient, p);
    vx.scalar_mul(out_vx.data(), a.data(), n, s.operand, s.quotient, p);
    EXPECT_EQ(out_sc, out_vx) << "scalar_mul p=" << p;
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_EQ(out_vx[i], mul_mod(w, a[i], p));
    }

    // Key-switch kernels: re-reduction of arbitrary 64-bit inputs, the
    // lazy 128-bit accumulator, and its closing Barrett sweep.
    std::vector<u64> wide(n);
    for (std::size_t i = 0; i < n; ++i) {
      wide[i] = (rng.uniform(u64{1} << 32) << 32) | rng.uniform(u64{1} << 32);
    }
    wide[0] = 0;
    wide[1] = ~u64{0};
    wide[2] = p;
    wide[3] = p - 1;
    sc.reduce_span(out_sc.data(), wide.data(), n, p, br.ratio_hi());
    vx.reduce_span(out_vx.data(), wide.data(), n, p, br.ratio_hi());
    EXPECT_EQ(out_sc, out_vx) << "reduce_span p=" << p;
    EXPECT_TRUE(fully_reduced(out_vx, p));
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_EQ(out_vx[i], wide[i] % p) << "reduce_span vs naive i=" << i;
    }

    std::vector<u64> lo_sc(n, 0), hi_sc(n, 0), lo_vx(n, 0), hi_vx(n, 0);
    for (int d = 0; d < 3; ++d) {  // 3 products: the k=3 key-switch shape
      sc.mul_acc_lazy(lo_sc.data(), hi_sc.data(), a.data(), b.data(), n);
      vx.mul_acc_lazy(lo_vx.data(), hi_vx.data(), a.data(), b.data(), n);
    }
    EXPECT_EQ(lo_sc, lo_vx) << "mul_acc_lazy lo p=" << p;
    EXPECT_EQ(hi_sc, hi_vx) << "mul_acc_lazy hi p=" << p;

    sc.reduce_acc_span(out_sc.data(), lo_sc.data(), hi_sc.data(), n, p,
                       br.ratio_hi(), br.ratio_lo());
    vx.reduce_acc_span(out_vx.data(), lo_vx.data(), hi_vx.data(), n, p,
                       br.ratio_hi(), br.ratio_lo());
    EXPECT_EQ(out_sc, out_vx) << "reduce_acc_span p=" << p;
    EXPECT_TRUE(fully_reduced(out_vx, p));
    for (std::size_t i = 0; i < 64; ++i) {
      // 3 * a[i] * b[i] mod p via fully-reduced arithmetic.
      const u64 prod = mul_mod(a[i], b[i], p);
      const u64 expect = add_mod(add_mod(prod, prod, p), prod, p);
      EXPECT_EQ(out_vx[i], expect) << "reduce_acc_span vs naive i=" << i;
    }

    // Shoup-lazy accumulation with elementwise precomputed quotients, and
    // the fused [0,2p)-canonicalize-and-add that closes the chain.
    std::vector<u64> w_shoup(n);
    for (std::size_t i = 0; i < n; ++i) {
      w_shoup[i] = static_cast<u64>((static_cast<u128>(b[i]) << 64) / p);
    }
    std::vector<u64> lane_sc(n, 0), lane_vx(n, 0);
    std::vector<u64> lane2_sc(n, 0), lane2_vx(n, 0);
    std::vector<u64> a_shoup(n);
    for (std::size_t i = 0; i < n; ++i) {
      a_shoup[i] = static_cast<u64>((static_cast<u128>(a[i]) << 64) / p);
    }
    for (int d = 0; d < 3; ++d) {
      sc.shoup_mul_acc_lazy2(lane_sc.data(), lane2_sc.data(), a.data(),
                             b.data(), w_shoup.data(), a.data(),
                             a_shoup.data(), n, p);
      vx.shoup_mul_acc_lazy2(lane_vx.data(), lane2_vx.data(), a.data(),
                             b.data(), w_shoup.data(), a.data(),
                             a_shoup.data(), n, p);
    }
    EXPECT_EQ(lane_sc, lane_vx) << "shoup_mul_acc_lazy2 ch0 p=" << p;
    EXPECT_EQ(lane2_sc, lane2_vx) << "shoup_mul_acc_lazy2 ch1 p=" << p;
    auto acc2_sc = random_poly(rng, n, p);
    auto acc2_vx = acc2_sc;
    sc.add_reduce2p(acc2_sc.data(), acc2_sc.data(), lane_sc.data(), n, p);
    vx.add_reduce2p(acc2_vx.data(), acc2_vx.data(), lane_vx.data(), n, p);
    EXPECT_EQ(acc2_sc, acc2_vx) << "add_reduce2p p=" << p;
    EXPECT_TRUE(fully_reduced(acc2_vx, p));
    for (std::size_t i = 0; i < 64; ++i) {
      u64 x = lane_vx[i];
      if (x >= p) x -= p;  // canonicalized lane residue
      const u64 prod = mul_mod(a[i], b[i], p);
      EXPECT_EQ(x, add_mod(add_mod(prod, prod, p), prod, p))
          << "shoup lane residue i=" << i;
    }
  }
}

TEST(Kernels, ForwardNttAcceptsLazyInputsBitExact) {
  // The key-switch digit staging feeds RAW residues of one modulus into
  // another modulus' forward transform whenever q_i < 4*q_j, relying on the
  // lazy butterflies' [0, 4p) input contract.  The fully-reduced output
  // must be bit-identical to reducing the inputs first — on both kernels.
  Rng rng(13);
  for (const std::size_t n : {std::size_t{64}, std::size_t{1024}}) {
    for (u64 p : moduli_sweep(n)) {
      if (p >= (u64{1} << 62)) continue;  // 4p must fit in 64 bits
      const Ntt ntt(n, p);
      const u64 bound = 4 * p - 1;  // inputs < 4p
      std::vector<u64> raw(n);
      rng.fill_uniform_mod(raw, bound);
      raw[0] = 0;
      raw[1] = bound - 1;
      raw[2] = p;
      raw[3] = 2 * p + 1;
      std::vector<u64> reduced(n);
      for (std::size_t i = 0; i < n; ++i) reduced[i] = raw[i] % p;
      std::vector<u64> out_raw = raw, out_red = reduced;
      ntt.forward(out_raw.data());
      ntt.forward(out_red.data());
      EXPECT_EQ(out_raw, out_red)
          << "kernel " << ntt.kernel_name() << " p=" << p << " n=" << n;
    }
  }
}

// Full-kernel-table bit-equality property test at the dispatch-boundary
// moduli: just below/above the IFMA bound 2^50, just below/above 2^52 (the
// sub-52-bit ceiling the IFMA convention is built around), and just below
// the 2^61 lazy bound.  Every tier whose bound admits the modulus must
// produce outputs bit-identical to scalar; Shoup-lazy accumulator lanes are
// compared after canonicalization because the [0, 2p) representatives may
// legitimately differ across quotient conventions.
TEST(Kernels, KernelTableBitEqualityAtDispatchBoundaries) {
  Rng rng(29);
  const std::size_t n = 1024;
  for (int bits : {40, 50, 51, 52, 53, 60, 61}) {
    const u64 p = generate_ntt_primes(bits, n, 1)[0];
    const Barrett br(p);
    // Scalar reference transforms and inputs.
    const auto poly = random_poly(rng, n, p);
    std::vector<u64> fwd_ref = poly;
    {
      ScopedEnv env("PRIMER_NTT_KERNEL", "scalar");
      const Ntt ntt(n, p);
      ntt.forward(fwd_ref.data());
    }
    auto a = random_poly(rng, n, p);
    auto b = random_poly(rng, n, p);
    a[0] = 0;
    b[0] = 0;
    a[1] = p - 1;
    b[1] = p - 1;
    // Digit-shaped inputs for the Shoup-lazy accumulation: the key-switch
    // feeds lazy forward-NTT outputs in [0, 4p) (on the IFMA tier those
    // are < 2^52 by its p < 2^50 bound — the tier's input contract).
    std::vector<u64> digits(n);
    rng.fill_uniform_mod(digits, 4 * p - 1);
    std::vector<u64> wide(n);
    for (auto& v : wide) {
      v = (rng.uniform(u64{1} << 32) << 32) | rng.uniform(u64{1} << 32);
    }

    const NttKernel& sc = scalar_kernel();
    std::vector<u64> out_sc(n), out_k(n);
    for (const char* tier : tiers_for(p)) {
      if (std::strcmp(tier, "scalar") == 0) continue;
      ScopedEnv env("PRIMER_NTT_KERNEL", tier);
      const Ntt ntt(n, p);
      ASSERT_STREQ(ntt.kernel_name(), tier) << "bits=" << bits;
      const NttKernel& kern = ntt.kernel();

      // Transforms: fully reduced outputs must match scalar exactly.
      std::vector<u64> f = poly;
      ntt.forward(f.data());
      EXPECT_EQ(f, fwd_ref) << tier << " forward bits=" << bits;
      EXPECT_TRUE(fully_reduced(f, p));
      ntt.inverse(f.data());
      EXPECT_EQ(f, poly) << tier << " round trip bits=" << bits;

      // Convention-free elementwise table vs scalar, bit for bit.
      sc.add(out_sc.data(), a.data(), b.data(), n, p);
      kern.add(out_k.data(), a.data(), b.data(), n, p);
      EXPECT_EQ(out_sc, out_k) << tier << " add bits=" << bits;
      sc.sub(out_sc.data(), a.data(), b.data(), n, p);
      kern.sub(out_k.data(), a.data(), b.data(), n, p);
      EXPECT_EQ(out_sc, out_k) << tier << " sub bits=" << bits;
      sc.neg(out_sc.data(), a.data(), n, p);
      kern.neg(out_k.data(), a.data(), n, p);
      EXPECT_EQ(out_sc, out_k) << tier << " neg bits=" << bits;
      sc.mul(out_sc.data(), a.data(), b.data(), n, p, br.ratio_hi(),
             br.ratio_lo());
      kern.mul(out_k.data(), a.data(), b.data(), n, p, br.ratio_hi(),
               br.ratio_lo());
      EXPECT_EQ(out_sc, out_k) << tier << " mul bits=" << bits;
      auto acc_sc = a;
      auto acc_k = a;
      sc.mul_acc(acc_sc.data(), a.data(), b.data(), n, p, br.ratio_hi(),
                 br.ratio_lo());
      kern.mul_acc(acc_k.data(), a.data(), b.data(), n, p, br.ratio_hi(),
                   br.ratio_lo());
      EXPECT_EQ(acc_sc, acc_k) << tier << " mul_acc bits=" << bits;
      sc.reduce_span(out_sc.data(), wide.data(), n, p, br.ratio_hi());
      kern.reduce_span(out_k.data(), wide.data(), n, p, br.ratio_hi());
      EXPECT_EQ(out_sc, out_k) << tier << " reduce_span bits=" << bits;
      std::vector<u64> lo_sc(n, 0), hi_sc(n, 0), lo_k(n, 0), hi_k(n, 0);
      for (int d = 0; d < 3; ++d) {
        sc.mul_acc_lazy(lo_sc.data(), hi_sc.data(), a.data(), b.data(), n);
        kern.mul_acc_lazy(lo_k.data(), hi_k.data(), a.data(), b.data(), n);
      }
      EXPECT_EQ(lo_sc, lo_k) << tier << " mul_acc_lazy bits=" << bits;
      EXPECT_EQ(hi_sc, hi_k) << tier << " mul_acc_lazy hi bits=" << bits;
      sc.reduce_acc_span(out_sc.data(), lo_sc.data(), hi_sc.data(), n, p,
                         br.ratio_hi(), br.ratio_lo());
      kern.reduce_acc_span(out_k.data(), lo_k.data(), hi_k.data(), n, p,
                           br.ratio_hi(), br.ratio_lo());
      EXPECT_EQ(out_sc, out_k) << tier << " reduce_acc_span bits=" << bits;
      sc.add_reduce2p(out_sc.data(), a.data(), digits.data(), n, p);
      kern.add_reduce2p(out_k.data(), a.data(), digits.data(), n, p);
      EXPECT_EQ(out_sc, out_k) << tier << " add_reduce2p bits=" << bits;

      // Shoup ops: tables in the tier's own convention; fully reduced
      // outputs must equal naive modular arithmetic.
      const u64 w = b[3] % p;
      kern.scalar_mul(out_k.data(), a.data(), n, w,
                      shoup_quotient(w, p, kern.shoup_shift), p);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out_k[i], mul_mod(w, a[i], p))
            << tier << " scalar_mul i=" << i << " bits=" << bits;
      }
      std::vector<u64> w0(n), w0q(n), w1(n), w1q(n);
      for (std::size_t i = 0; i < n; ++i) {
        w0[i] = a[i] % p;
        w1[i] = b[i] % p;
        w0q[i] = shoup_quotient(w0[i], p, kern.shoup_shift);
        w1q[i] = shoup_quotient(w1[i], p, kern.shoup_shift);
      }
      std::vector<u64> lane0(n, 0), lane1(n, 0);
      for (int d = 0; d < 3; ++d) {
        kern.shoup_mul_acc_lazy2(lane0.data(), lane1.data(), digits.data(),
                                 w0.data(), w0q.data(), w1.data(), w1q.data(),
                                 n, p);
      }
      for (std::size_t i = 0; i < n; ++i) {
        // Canonicalize the [0, 2p) lanes: representatives may differ
        // across Shoup conventions, residues may not.
        u64 l0 = lane0[i] >= p ? lane0[i] - p : lane0[i];
        u64 l1 = lane1[i] >= p ? lane1[i] - p : lane1[i];
        const u64 x = br.reduce(digits[i]);
        const u64 p0 = mul_mod(w0[i], x, p);
        const u64 p1 = mul_mod(w1[i], x, p);
        ASSERT_EQ(l0, add_mod(add_mod(p0, p0, p), p0, p))
            << tier << " shoup lane0 i=" << i << " bits=" << bits;
        ASSERT_EQ(l1, add_mod(add_mod(p1, p1, p), p1, p))
            << tier << " shoup lane1 i=" << i << " bits=" << bits;
      }
    }
  }
}

// forward_lazy_out must be congruent to forward limb for limb — one
// reduce_span pass over the lazy output reproduces the canonical transform
// exactly, on every tier, including the n < 16 scalar-fallback shapes.
TEST(Kernels, ForwardLazyOutThenReduceEqualsForward) {
  Rng rng(31);
  for (const std::size_t n : {std::size_t{8}, std::size_t{64},
                              std::size_t{1024}}) {
    for (u64 p : moduli_sweep(1024)) {  // 2*1024 | p-1 => 2n | p-1 for n<=1024
      const Barrett br(p);
      for (const char* tier : tiers_for(p)) {
        ScopedEnv env("PRIMER_NTT_KERNEL", tier);
        const Ntt ntt(n, p);
        ASSERT_STREQ(ntt.kernel_name(), tier);
        auto want = random_poly(rng, n, p);
        auto lazy = want;
        ntt.forward(want.data());
        ntt.forward_lazy_out(lazy.data());
        // The lazy output stays in [0, 4p).
        for (u64 x : lazy) ASSERT_LT(x, 4 * p);
        ntt.kernel().reduce_span(lazy.data(), lazy.data(), n, p,
                                 br.ratio_hi());
        EXPECT_EQ(lazy, want) << tier << " n=" << n << " p=" << p;
      }
    }
  }
}

TEST(Kernels, NegacyclicMultiplyAgreesAcrossKernels) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 kernels unavailable";
  Rng rng(13);
  const std::size_t n = 1024;
  const u64 p = generate_ntt_primes(45, n, 1)[0];
  const auto a = random_poly(rng, n, p);
  const auto b = random_poly(rng, n, p);
  ScopedEnv env("PRIMER_NTT_KERNEL", "scalar");
  const Ntt ntt_sc(n, p);
  std::vector<u64> want = ntt_sc.negacyclic_multiply(a, b);
  {
    ScopedEnv env2("PRIMER_NTT_KERNEL", "avx2");
    const Ntt ntt_vx(n, p);
    EXPECT_EQ(ntt_vx.negacyclic_multiply(a, b), want);
  }
}

TEST(Kernels, PointwiseAccumulateMatchesMulThenAdd) {
  Rng rng(17);
  const std::size_t n = 2048;
  const u64 p = generate_ntt_primes(50, n, 1)[0];
  const Ntt ntt(n, p);
  const auto a = random_poly(rng, n, p);
  const auto b = random_poly(rng, n, p);
  auto acc = random_poly(rng, n, p);
  auto want = acc;
  std::vector<u64> prod;
  ntt.pointwise(a, b, prod);
  for (std::size_t i = 0; i < n; ++i) want[i] = add_mod(want[i], prod[i], p);
  ntt.pointwise_accumulate(a.data(), b.data(), acc.data());
  EXPECT_EQ(acc, want);
}

TEST(Kernels, BarrettReduce128MatchesNaive) {
  Rng rng(19);
  for (u64 m : {u64{65537}, u64{1000003}, (u64{1} << 50) - 27,
                generate_ntt_primes(62, 1024, 1)[0]}) {
    const Barrett br(m);
    for (int i = 0; i < 2000; ++i) {
      const u128 a = (static_cast<u128>(rng.next()) << 64) | rng.next();
      EXPECT_EQ(br.reduce128(a), static_cast<u64>(a % m));
    }
    // Largest product of residues, and the extremes.
    const u128 max_prod = static_cast<u128>(m - 1) * (m - 1);
    EXPECT_EQ(br.reduce128(max_prod), static_cast<u64>(max_prod % m));
    EXPECT_EQ(br.reduce128(0), 0u);
    EXPECT_EQ(br.reduce128(~static_cast<u128>(0)),
              static_cast<u64>(~static_cast<u128>(0) % m));
  }
}

TEST(Kernels, DispatchHonorsEnvOverrideAndModulusBound) {
  const std::size_t n = 1024;
  const u64 p = generate_ntt_primes(45, n, 1)[0];  // within every bound
  {
    ScopedEnv env("PRIMER_NTT_KERNEL", "scalar");
    EXPECT_STREQ(Ntt(n, p).kernel_name(), "scalar");
  }
  {
    ScopedEnv env("PRIMER_NTT_KERNEL", "avx2");
    EXPECT_STREQ(Ntt(n, p).kernel_name(),
                 avx2_available() ? "avx2" : "scalar");
  }
  {
    ScopedEnv env("PRIMER_NTT_KERNEL", "avx512");
    EXPECT_STREQ(Ntt(n, p).kernel_name(),
                 avx512_available() ? "avx512" : "scalar");
  }
  {
    ScopedEnv env("PRIMER_NTT_KERNEL", "avx512ifma");
    EXPECT_STREQ(Ntt(n, p).kernel_name(),
                 avx512ifma_available() ? "avx512ifma" : "scalar");
  }
  {
    // Automatic dispatch: widest available tier whose bound admits p.
    ScopedEnv env("PRIMER_NTT_KERNEL", nullptr);
    const char* want = avx512ifma_available() ? "avx512ifma"
                       : avx512_available()   ? "avx512"
                       : avx2_available()     ? "avx2"
                                              : "scalar";
    EXPECT_STREQ(Ntt(n, p).kernel_name(), want);
  }
  {
    // Unknown values are rejected loudly, not silently mapped to scalar.
    ScopedEnv env("PRIMER_NTT_KERNEL", "neon");
    EXPECT_THROW((void)Ntt(n, p), std::invalid_argument);
  }
  // The IFMA tier requires 4p < 2^52: a 51-bit prime (>= 2^50) must fall
  // back even when the CPU has IFMA — explicitly requested or automatic.
  const u64 p51 = generate_ntt_primes(51, n, 1)[0];
  ASSERT_GE(p51, u64{1} << 50);
  {
    ScopedEnv env("PRIMER_NTT_KERNEL", "avx512ifma");
    EXPECT_STREQ(Ntt(n, p51).kernel_name(), "scalar");
  }
  {
    ScopedEnv env("PRIMER_NTT_KERNEL", nullptr);
    const char* want = avx512_available() ? "avx512"
                       : avx2_available() ? "avx2"
                                          : "scalar";
    EXPECT_STREQ(Ntt(n, p51).kernel_name(), want);
  }
  // Moduli at or above 2^61 must never take any vector path (the lazy
  // ranges would overflow): a 62-bit prime lies in [2^61, 2^62).
  const u64 big = generate_ntt_primes(62, n, 1)[0];
  ASSERT_GE(big, u64{1} << 61);
  ScopedEnv env("PRIMER_NTT_KERNEL", nullptr);
  EXPECT_STREQ(Ntt(n, big).kernel_name(), "scalar");
}

TEST(RnsPolyFlat, LimbAccessorsViewOneContiguousBuffer) {
  const std::size_t k = 3, n = 256;
  RnsPoly poly(k, n, false);
  EXPECT_EQ(poly.rns_size(), k);
  EXPECT_EQ(poly.degree(), n);
  EXPECT_EQ(poly.word_count(), k * n);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(poly.limb(i), poly.data() + i * n);
    EXPECT_EQ(poly.limb_span(i).size(), n);
    for (std::size_t j = 0; j < n; ++j) poly.limb(i)[j] = i * n + j;
  }
  // Limb-major flat order.
  for (std::size_t w = 0; w < k * n; ++w) EXPECT_EQ(poly.data()[w], w);
  // Value semantics: deep copy, independent buffers.
  RnsPoly copy = poly;
  copy.limb(1)[5] ^= 1;
  EXPECT_NE(copy.limb(1)[5], poly.limb(1)[5]);
}

TEST(RnsPolyFlat, SerializationRoundTripsBitExactly) {
  HeContext ctx(make_params(HeProfile::kTest2048));
  Rng rng(23);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Decryptor dec(ctx, keygen.secret_key());
  const Evaluator eval(ctx);

  std::vector<u64> vals(encoder.slot_count());
  rng.fill_uniform_mod(vals, ctx.t());
  const Ciphertext ct = enc.encrypt(encoder.encode(vals));

  ByteWriter w;
  eval.serialize(ct, w);
  const auto bytes = w.take();
  ByteReader r(bytes);
  const Ciphertext back = eval.deserialize(r);
  EXPECT_TRUE(r.done());

  ASSERT_EQ(back.parts.size(), ct.parts.size());
  for (std::size_t i = 0; i < ct.parts.size(); ++i) {
    EXPECT_EQ(back.parts[i].ntt_form, ct.parts[i].ntt_form);
    ASSERT_TRUE(back.parts[i].same_shape(ct.parts[i]));
    EXPECT_EQ(std::memcmp(back.parts[i].data(), ct.parts[i].data(),
                          ct.parts[i].word_count() * sizeof(u64)),
              0);
  }
  EXPECT_EQ(back.noise_log2, ct.noise_log2);
  EXPECT_EQ(encoder.decode(dec.decrypt(back)), vals);
}

TEST(RnsPolyFlat, DeserializeRejectsShapeMismatch) {
  HeContext ctx(make_params(HeProfile::kTest2048));
  const Evaluator eval(ctx);
  const auto attempt = [&](std::uint32_t k, u64 n) {
    ByteWriter w;
    w.u32(1);  // one part
    w.u8(0);   // coeff form
    w.u32(k);
    w.u64(n);
    // No limb payload: the shape check must fire before any read.
    const auto bytes = w.take();
    ByteReader r(bytes);
    return eval.deserialize(r);
  };
  // Oversized and undersized shapes are both hostile: downstream kernels
  // stream exactly ctx.degree() words per limb through unchecked pointers.
  EXPECT_THROW((void)attempt(1000, ctx.degree()), std::out_of_range);
  EXPECT_THROW((void)attempt(1, 64), std::out_of_range);
  EXPECT_THROW(
      (void)attempt(static_cast<std::uint32_t>(ctx.rns_size()), 64),
      std::out_of_range);
}

}  // namespace
}  // namespace primer
