// Durable session storage tests: the atomic write protocol, the recovery
// scan (torn/truncated/corrupt blobs quarantined, valid ones adopted),
// retention, ENOSPC/EIO degradation, the seeded PRIMER_STORE_FAULT_* crash
// matrix — and, end to end, that an inference SIGKILLed as a REAL process
// at several distinct phase segments is recovered bit-identically by a
// freshly exec'd process resuming from disk, cached key material replayed
// at zero wire cost.
//
// DurableChaos.* are the cells tools/crash_soak.py drives as child
// processes (CrashRun dies at a seeded frame, RecoverRun must finish the
// job); CrashRecoveryMatrix runs the same fork/exec dance in-process as a
// tier-1 test.  DurableChaos.FullDiskDegrades is the CI disk-full leg:
// pointed at a tiny tmpfs it must complete from memory, not crash.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/fs.h"
#include "common/serialize.h"
#include "net/crc32c.h"
#include "net/frame.h"
#include "net/session.h"
#include "net/session_fs.h"
#include "nn/model.h"
#include "nn/train.h"
#include "proto/primer.h"
#include "serving/session_manager.h"

namespace primer {
namespace {

void remove_tree(const std::string& dir) {
  try {
    for (const std::string& name : list_dir(dir)) {
      const std::string p = dir + "/" + name;
      if (is_directory(p)) {
        remove_tree(p);
      } else {
        remove_file(p);
      }
    }
  } catch (const FsError&) {
  }
  ::rmdir(dir.c_str());
}

// Scratch directory inside the build tree (ctest's cwd), removed on exit.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "primer_fs_test_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = tmpl;
  }
  ~TempDir() { remove_tree(path); }
};

struct EnvGuard {
  explicit EnvGuard(std::vector<std::pair<const char*, std::string>> kv) {
    for (const auto& [k, v] : kv) {
      keys_.push_back(k);
      ::setenv(k, v.c_str(), 1);
    }
  }
  ~EnvGuard() {
    for (const char* k : keys_) ::unsetenv(k);
  }
  std::vector<const char*> keys_;
};

SessionCheckpoint sample_checkpoint(std::uint32_t epoch) {
  SessionCheckpoint cp;
  cp.session_id = 0xfeed;
  cp.epoch = epoch;
  cp.phase = "gc_offline";
  cp.params_hash = 0x1234abcd;
  cp.send_watermark[0] = 3;
  cp.send_watermark[1] = 2;
  cp.frame_crc[0] = {11, 22, 33};
  cp.frame_crc[1] = {44, 55};
  cp.wire_bytes = 123456;
  return cp;
}

DurableSessionStore::Options faulted(StoreFaultSpec::Mode mode,
                                     std::uint64_t at,
                                     std::uint64_t torn_byte = 32) {
  DurableSessionStore::Options o;
  o.faults.mode = mode;
  o.faults.at = at;
  o.faults.torn_byte = torn_byte;
  return o;
}

// --- fs helpers & the atomic write protocol ----------------------------------

TEST(AtomicWrite, CommitsOrPreservesNeverTears) {
  TempDir tmp;
  const std::vector<std::uint8_t> v1 = {1, 2, 3, 4};
  const std::vector<std::uint8_t> v2(1000, 7);

  AtomicWriteStats stats;
  atomic_write_file(tmp.path, "blob", v1.data(), v1.size(), {}, &stats);
  EXPECT_EQ(stats.bytes_written, v1.size());
  EXPECT_EQ(stats.fsyncs, 2u);  // file + directory
  EXPECT_EQ(read_file(tmp.path + "/blob"), v1);

  // A crash before the rename leaves the previous contents untouched.
  AtomicWriteHooks crash_early;
  crash_early.crash_before_rename = true;
  EXPECT_THROW(
      atomic_write_file(tmp.path, "blob", v2.data(), v2.size(), crash_early),
      SimulatedCrash);
  EXPECT_EQ(read_file(tmp.path + "/blob"), v1);
  EXPECT_TRUE(path_exists(tmp.path + "/blob.tmp"));  // debris for the scan

  // A crash after the rename commits the new contents.
  AtomicWriteHooks crash_late;
  crash_late.crash_after_rename = true;
  EXPECT_THROW(
      atomic_write_file(tmp.path, "blob", v2.data(), v2.size(), crash_late),
      SimulatedCrash);
  EXPECT_EQ(read_file(tmp.path + "/blob"), v2);

  // A failed data write surfaces as a typed FsError with the errno.
  AtomicWriteHooks fail;
  fail.fail_write = true;
  try {
    atomic_write_file(tmp.path, "blob", v1.data(), v1.size(), fail);
    FAIL() << "expected FsError";
  } catch (const FsError& e) {
    EXPECT_EQ(e.op(), "write");
    EXPECT_EQ(e.saved_errno(), EIO);
  }
  EXPECT_EQ(read_file(tmp.path + "/blob"), v2);  // still the committed state

  ensure_dir(tmp.path + "/a/b/c");
  EXPECT_TRUE(is_directory(tmp.path + "/a/b/c"));
  EXPECT_NO_THROW(ensure_dir(tmp.path + "/a/b/c"));  // idempotent
  EXPECT_THROW(ensure_dir(tmp.path + "/blob"), FsError);  // file in the way
}

// --- durable store: round trip, recovery scan, quarantine --------------------

TEST(DurableStore, RoundTripSurvivesReopen) {
  TempDir tmp;
  {
    DurableSessionStore store(tmp.path, {});
    store.save(Party::kClient, sample_checkpoint(1));
    store.save(Party::kClient, sample_checkpoint(2));
    store.save(Party::kServer, sample_checkpoint(1));
    const auto t = store.telemetry();
    EXPECT_GT(t.bytes_written, 0u);
    EXPECT_EQ(t.fsyncs, 6u);  // 3 saves x (file + dir)
    EXPECT_EQ(t.degradations, 0u);
    EXPECT_FALSE(t.degraded);
  }
  // A fresh instance over the same directory — what a freshly exec'd
  // process sees — adopts every blob.
  DurableSessionStore store(tmp.path, {});
  EXPECT_EQ(store.telemetry().recovered_blobs, 3u);
  EXPECT_EQ(store.latest_epoch(Party::kClient), 2u);
  EXPECT_EQ(store.latest_epoch(Party::kServer), 1u);
  const auto cp = store.load(Party::kClient, 2);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->digest(), sample_checkpoint(2).digest());
  EXPECT_TRUE(store.quarantined().empty());

  // drop/clear remove the files too.
  store.drop(Party::kClient, 2);
  EXPECT_FALSE(path_exists(tmp.path + "/client_000002.ckpt"));
  store.clear();
  EXPECT_FALSE(path_exists(tmp.path + "/client_000001.ckpt"));
  EXPECT_FALSE(path_exists(tmp.path + "/server_000001.ckpt"));
  EXPECT_EQ(DurableSessionStore(tmp.path, {}).telemetry().recovered_blobs, 0u);
}

TEST(DurableStore, PolymorphicThroughBasePointer) {
  TempDir tmp;
  std::unique_ptr<SessionStore> store =
      std::make_unique<DurableSessionStore>(tmp.path);
  store->save(Party::kClient, sample_checkpoint(1));
  EXPECT_EQ(store->latest_epoch(Party::kClient), 1u);
  EXPECT_GT(store->telemetry().fsyncs, 0u);
  EXPECT_FALSE(store->last_degradation().has_value());
  // The base in-memory store reports empty telemetry through the same seam.
  SessionStore ram;
  ram.save(Party::kClient, sample_checkpoint(1));
  EXPECT_EQ(ram.telemetry().fsyncs, 0u);
}

TEST(DurableStore, ScanCleansTmpAndQuarantinesGarbage) {
  TempDir tmp;
  {
    DurableSessionStore store(tmp.path, {});
    store.save(Party::kClient, sample_checkpoint(1));
  }
  // Plant post-crash debris: an uncommitted temp file, a foreign file, a
  // truncated blob and a bit-flipped blob.
  const std::vector<std::uint8_t> junk = {0xde, 0xad};
  atomic_write_file(tmp.path, "client_000002.ckpt.tmp", junk.data(),
                    junk.size());
  atomic_write_file(tmp.path, "notes.txt", junk.data(), junk.size());
  auto torn = *read_file(tmp.path + "/client_000001.ckpt");
  torn.resize(torn.size() / 2);
  atomic_write_file(tmp.path, "server_000003.ckpt", torn.data(), torn.size());
  auto flipped = *read_file(tmp.path + "/client_000001.ckpt");
  flipped[flipped.size() - 3] ^= 0x40;
  atomic_write_file(tmp.path, "client_000004.ckpt", flipped.data(),
                    flipped.size());

  DurableSessionStore store(tmp.path, {});
  EXPECT_FALSE(path_exists(tmp.path + "/client_000002.ckpt.tmp"));
  EXPECT_EQ(store.quarantined().size(), 3u);
  EXPECT_EQ(store.telemetry().quarantined_blobs, 3u);
  EXPECT_EQ(store.telemetry().recovered_blobs, 1u);
  EXPECT_EQ(store.latest_epoch(Party::kClient), 1u);
  EXPECT_EQ(store.latest_epoch(Party::kServer), 0u);
  // Quarantined blobs are kept for post-mortem, not deleted.
  EXPECT_TRUE(path_exists(tmp.path + "/quarantine/notes.txt"));
  EXPECT_TRUE(path_exists(tmp.path + "/quarantine/server_000003.ckpt"));
  EXPECT_TRUE(path_exists(tmp.path + "/quarantine/client_000004.ckpt"));
  // The scan is idempotent: a third open sees a clean directory.
  EXPECT_TRUE(DurableSessionStore(tmp.path, {}).quarantined().empty());
}

TEST(DurableStore, TamperedBlobIsQuarantinedByNextScan) {
  TempDir tmp;
  {
    DurableSessionStore store(tmp.path, {});
    store.save(Party::kClient, sample_checkpoint(1));
    store.save(Party::kClient, sample_checkpoint(2));
    store.tamper(Party::kClient, 2);
  }
  DurableSessionStore store(tmp.path, {});
  EXPECT_EQ(store.quarantined().size(), 1u);
  EXPECT_EQ(store.latest_epoch(Party::kClient), 1u);
}

// --- seeded fault matrix: every crash point leaves the store recoverable ----

TEST(DurableStore, FaultMatrixEveryCrashPointRecovers) {
  // Fault the SECOND persist op each time: epoch 1 must survive untouched,
  // epoch 2 is the in-flight casualty the scan may at most lose/quarantine.
  for (const auto mode : {StoreFaultSpec::Mode::kShortWrite,
                          StoreFaultSpec::Mode::kCrashBeforeRename,
                          StoreFaultSpec::Mode::kCrashAfterRename}) {
    TempDir tmp;
    {
      DurableSessionStore store(tmp.path, faulted(mode, 2));
      store.save(Party::kClient, sample_checkpoint(1));
      if (mode == StoreFaultSpec::Mode::kShortWrite) {
        // Torn write COMMITS garbage (rename-before-data-fsync bug model);
        // the save itself survives, in memory.
        store.save(Party::kClient, sample_checkpoint(2));
        EXPECT_EQ(store.latest_epoch(Party::kClient), 2u);
      } else {
        EXPECT_THROW(store.save(Party::kClient, sample_checkpoint(2)),
                     SimulatedCrash);
      }
    }
    // Fresh process: the scan must recover epoch 1 and never crash.
    DurableSessionStore store(tmp.path, {});
    EXPECT_EQ(store.latest_epoch(Party::kClient),
              mode == StoreFaultSpec::Mode::kCrashAfterRename ? 2u : 1u)
        << "mode " << static_cast<int>(mode);
    ASSERT_TRUE(store.load(Party::kClient, 1).has_value());
    EXPECT_EQ(store.load(Party::kClient, 1)->digest(),
              sample_checkpoint(1).digest());
    if (mode == StoreFaultSpec::Mode::kShortWrite) {
      // The torn epoch-2 blob is exactly what quarantine exists for.
      EXPECT_EQ(store.quarantined().size(), 1u);
    } else {
      EXPECT_TRUE(store.quarantined().empty());
    }
  }
}

TEST(DurableStore, WriteFailureDegradesToMemoryThenHeals) {
  TempDir tmp;
  DurableSessionStore store(tmp.path, faulted(StoreFaultSpec::Mode::kFail, 1));
  // The faulted save does NOT throw: the inference must not die because the
  // disk did.  It lands in memory and latches degraded mode.
  store.save(Party::kClient, sample_checkpoint(1));
  EXPECT_EQ(store.latest_epoch(Party::kClient), 1u);
  EXPECT_FALSE(path_exists(tmp.path + "/client_000001.ckpt"));
  auto t = store.telemetry();
  EXPECT_EQ(t.degradations, 1u);
  EXPECT_TRUE(t.degraded);
  const auto deg = store.last_degradation();
  ASSERT_TRUE(deg.has_value());
  EXPECT_EQ(deg->kind(), ProtocolErrorKind::kStorageDegraded);
  EXPECT_TRUE(deg->retryable());
  EXPECT_EQ(deg->saved_errno(), EIO);
  EXPECT_NE(std::string(deg->what()).find("continuing from memory"),
            std::string::npos);

  // The next save retries the disk and heals the latch.
  store.save(Party::kClient, sample_checkpoint(2));
  EXPECT_TRUE(path_exists(tmp.path + "/client_000002.ckpt"));
  t = store.telemetry();
  EXPECT_EQ(t.degradations, 1u);
  EXPECT_FALSE(t.degraded);
}

TEST(DurableStore, FaultSpecFromEnvParsesAndRejects) {
  {
    EnvGuard env({{"PRIMER_STORE_FAULT_AT", "3"},
                  {"PRIMER_STORE_FAULT_MODE", "short_write"},
                  {"PRIMER_STORE_FAULT_TORN_BYTE", "17"}});
    const StoreFaultSpec s = StoreFaultSpec::from_env();
    EXPECT_TRUE(s.armed());
    EXPECT_EQ(s.at, 3u);
    EXPECT_EQ(s.mode, StoreFaultSpec::Mode::kShortWrite);
    EXPECT_EQ(s.torn_byte, 17u);
  }
  EXPECT_FALSE(StoreFaultSpec::from_env().armed());
  {
    EnvGuard env(std::vector<std::pair<const char*, std::string>>{
        {"PRIMER_STORE_FAULT_MODE", "frobnicate"}});
    EXPECT_THROW((void)StoreFaultSpec::from_env(), std::invalid_argument);
  }
  {
    EnvGuard env({{"PRIMER_STORE_KEEP", "2"},
                  {"PRIMER_STORE_MAX_BYTES", "4096"}});
    const auto o = DurableSessionStore::Options::from_env();
    EXPECT_EQ(o.keep_last, 2u);
    EXPECT_EQ(o.max_bytes, 4096u);
  }
}

// --- retention ---------------------------------------------------------------

TEST(DurableStore, RetentionKeepsLastKPerParty) {
  TempDir tmp;
  DurableSessionStore::Options opts;
  opts.keep_last = 2;
  DurableSessionStore store(tmp.path, opts);
  for (std::uint32_t e = 1; e <= 5; ++e) {
    store.save(Party::kClient, sample_checkpoint(e));
  }
  store.save(Party::kServer, sample_checkpoint(1));
  EXPECT_EQ(store.digests(Party::kClient).size(), 2u);
  EXPECT_FALSE(store.load(Party::kClient, 3).has_value());
  ASSERT_TRUE(store.load(Party::kClient, 4).has_value());
  ASSERT_TRUE(store.load(Party::kClient, 5).has_value());
  EXPECT_FALSE(path_exists(tmp.path + "/client_000003.ckpt"));
  EXPECT_TRUE(path_exists(tmp.path + "/client_000005.ckpt"));
  // The other party's (single) epoch is untouched.
  EXPECT_EQ(store.latest_epoch(Party::kServer), 1u);

  // A reopen honors the surviving files.
  DurableSessionStore back(tmp.path, opts);
  EXPECT_EQ(back.telemetry().recovered_blobs, 3u);
}

TEST(DurableStore, ByteCapShedsOldestButNeverTheLatest) {
  TempDir tmp;
  DurableSessionStore::Options opts;
  opts.keep_last = 0;  // byte cap only
  opts.max_bytes = 1;  // pathological: everything over budget
  DurableSessionStore store(tmp.path, opts);
  for (std::uint32_t e = 1; e <= 4; ++e) {
    store.save(Party::kClient, sample_checkpoint(e));
  }
  store.save(Party::kServer, sample_checkpoint(2));
  // Over budget, but each party keeps its newest epoch — shedding those
  // would forfeit resumability entirely.
  EXPECT_EQ(store.digests(Party::kClient).size(), 1u);
  EXPECT_EQ(store.latest_epoch(Party::kClient), 4u);
  EXPECT_EQ(store.latest_epoch(Party::kServer), 2u);
  EXPECT_TRUE(path_exists(tmp.path + "/client_000004.ckpt"));
  EXPECT_FALSE(path_exists(tmp.path + "/client_000001.ckpt"));
}

// --- fuzz smoke: hostile bytes must throw typed errors, never crash ---------

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

TEST(FuzzSmoke, CheckpointDeserializeNeverCrashes) {
  Rng rng(0xc0ffee);
  ByteWriter w;
  sample_checkpoint(3).serialize(w);
  const auto valid = w.take();
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> blob;
    if (iter % 3 == 0) {
      blob = random_bytes(rng, rng() % 256);
    } else {
      blob = valid;
      if (iter % 3 == 1) {
        blob.resize(rng() % (valid.size() + 1));  // truncation
      } else {
        for (int f = 0; f < 3; ++f) {  // bit flips
          blob[rng() % blob.size()] ^=
              static_cast<std::uint8_t>(1u << (rng() % 8));
        }
      }
    }
    try {
      ByteReader r(blob);
      const SessionCheckpoint cp = SessionCheckpoint::deserialize(r);
      (void)cp.digest();  // survivors must still be safe to digest
    } catch (const ProtocolError&) {
    } catch (const std::out_of_range&) {
    }
    // Anything else (SIGSEGV, bad_alloc from a hostile length, UB under
    // the sanitizer legs) fails the test by crashing it.
  }
}

TEST(FuzzSmoke, FrameParserNeverCrashes) {
  Rng rng(0xfade);
  const std::vector<std::uint8_t> payload(48, 5);
  const auto valid =
      encode_frame(MessageKind::kCiphertexts, 7, payload.data(), payload.size());
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> frame;
    if (iter % 3 == 0) {
      frame = random_bytes(rng, rng() % 128);
    } else {
      frame = valid;
      if (iter % 3 == 1) {
        frame.resize(rng() % (valid.size() + 1));
      } else if (!frame.empty()) {
        for (int f = 0; f < 3; ++f) {
          frame[rng() % frame.size()] ^=
              static_cast<std::uint8_t>(1u << (rng() % 8));
        }
      }
    }
    try {
      (void)parse_frame(frame, "fuzz");
    } catch (const ProtocolError&) {
    }
  }
}

TEST(FuzzSmoke, BlobLoaderNeverCrashes) {
  TempDir tmp;
  Rng rng(0xbead);
  std::vector<std::uint8_t> valid;
  {
    DurableSessionStore store(tmp.path, {});
    store.save(Party::kClient, sample_checkpoint(1));
    valid = *read_file(tmp.path + "/client_000001.ckpt");
  }
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> blob;
    if (iter % 3 == 0) {
      blob = random_bytes(rng, rng() % 256);
    } else {
      blob = valid;
      if (iter % 3 == 1) {
        blob.resize(rng() % (valid.size() + 1));
      } else {
        for (int f = 0; f < 3; ++f) {
          blob[rng() % blob.size()] ^=
              static_cast<std::uint8_t>(1u << (rng() % 8));
        }
      }
    }
    // Must return nullopt or a payload; any escape hatch is a bug.
    (void)DurableSessionStore::validate_blob(blob, Party::kClient, 1);
  }
  // And a store opened over a directory full of fuzz garbage quarantines
  // everything without crashing.
  TempDir hostile;
  for (int i = 0; i < 8; ++i) {
    const auto junk = random_bytes(rng, rng() % 200);
    atomic_write_file(hostile.path, DurableSessionStore::blob_name(
                                        Party::kClient, static_cast<std::uint32_t>(i + 1)),
                      junk.data(), junk.size());
  }
  DurableSessionStore store(hostile.path, {});
  EXPECT_EQ(store.latest_epoch(Party::kClient), 0u);
  EXPECT_EQ(store.quarantined().size(), 8u);
}

// --- SessionManager durability ----------------------------------------------

TEST(DurableSessionManager, ReadoptsClientsAcrossRestart) {
  TempDir tmp;
  const std::uint64_t fp = 0xabc1;
  {
    SessionManager mgr(tmp.path);
    EXPECT_TRUE(mgr.durable());
    SessionManager::Lease lease;
    ASSERT_EQ(mgr.acquire(42, fp, &lease), SessionManager::Acquire::kOk);
    EXPECT_FALSE(lease.resumable);
    lease.store->save(Party::kClient, sample_checkpoint(1));
    lease.store->save(Party::kServer, sample_checkpoint(1));
    mgr.release(42);
    const auto s = mgr.stats();
    EXPECT_EQ(s.recovered_clients, 0u);
    EXPECT_GT(s.store_bytes_written, 0u);
    EXPECT_GT(s.store_fsyncs, 0u);
  }
  // "Restart": a new manager over the same root re-adopts the client, its
  // fingerprint and its checkpoints.
  SessionManager mgr(tmp.path);
  const auto s = mgr.stats();
  EXPECT_EQ(s.clients, 1u);
  EXPECT_EQ(s.recovered_clients, 1u);
  EXPECT_EQ(s.store_recovered_blobs, 2u);
  SessionManager::Lease lease;
  ASSERT_EQ(mgr.acquire(42, fp, &lease), SessionManager::Acquire::kOk);
  EXPECT_TRUE(lease.resumable);  // same identity -> zero-wire resume
  EXPECT_EQ(lease.store->latest_epoch(Party::kClient), 1u);
  mgr.release(42);
  EXPECT_EQ(mgr.stats().resumable_hits, 1u);

  // A different fingerprint clears the recovered history (disk included).
  ASSERT_EQ(mgr.acquire(42, fp + 2, &lease), SessionManager::Acquire::kOk);
  EXPECT_FALSE(lease.resumable);
  EXPECT_FALSE(path_exists(tmp.path + "/client_42/" +
                           DurableSessionStore::blob_name(Party::kClient, 1)));
  mgr.release(42);
  EXPECT_EQ(mgr.stats().resets, 1u);
}

TEST(DurableSessionManager, QuarantinePurgesDiskAndSurvivesRestart) {
  TempDir tmp;
  {
    SessionManager mgr(tmp.path);
    SessionManager::Lease lease;
    ASSERT_EQ(mgr.acquire(7, 0x11, &lease), SessionManager::Acquire::kOk);
    lease.store->save(Party::kClient, sample_checkpoint(1));
    mgr.release(7);
    mgr.quarantine(7, "hostile frames");
    EXPECT_FALSE(path_exists(tmp.path + "/client_7/" +
                             DurableSessionStore::blob_name(Party::kClient, 1)));
  }
  // After a restart the client directory is empty: no stale checkpoints to
  // resume against.  (The quarantine flag itself is in-process state; the
  // durable contract is that poisoned key material never survives.)
  SessionManager mgr(tmp.path);
  SessionManager::Lease lease;
  ASSERT_EQ(mgr.acquire(7, 0x11, &lease), SessionManager::Acquire::kOk);
  EXPECT_FALSE(lease.resumable);
}

// --- end-to-end: durable resume, in process ---------------------------------

const std::vector<std::size_t> kTokens = {3, 17, 9, 28};

BertWeightsI chaos_weights() {
  Rng wrng(2025);
  return quantize(BertWeightsD::random(bert_nano(), wrng));
}

TEST(DurableResilience, StoreCrashMidRunThenFreshProcessResumes) {
  const auto weights = chaos_weights();
  const auto ref = FixedBert(weights).forward(kTokens);
  for (const auto mode : {StoreFaultSpec::Mode::kCrashBeforeRename,
                          StoreFaultSpec::Mode::kCrashAfterRename}) {
    TempDir tmp;
    {
      PrimerEngine engine(weights, PrimerVariant::kFP);
      // Crash the 5th persist op: epochs 1-2 are committed for both
      // parties, epoch 3's client blob is the in-flight casualty.
      DurableSessionStore store(tmp.path, faulted(mode, 5));
      EXPECT_THROW((void)engine.run_resilient(kTokens, store), SimulatedCrash);
    }
    // The "freshly exec'd process": new engine, new store over the same
    // directory.  It must resume from the highest surviving checkpoint and
    // finish bit-identically.
    PrimerEngine engine(weights, PrimerVariant::kFP);
    DurableSessionStore store(tmp.path, {});
    EXPECT_GE(store.latest_epoch(Party::kClient), 2u);
    const PrimerRunResult result = engine.run_resilient(kTokens, store);
    EXPECT_EQ(result.logits, ref) << "mode " << static_cast<int>(mode);
    EXPECT_GE(result.resumed_epoch, 2u);
    EXPECT_GT(result.replayed_frames, 0u);  // key material off the wire
    EXPECT_GT(result.store_bytes_written, 0u);
    EXPECT_GT(result.checkpoint_blob_bytes, 0u);
  }
}

TEST(DurableResilience, DiskFailureMidRunDegradesNotDies) {
  const auto weights = chaos_weights();
  TempDir tmp;
  PrimerEngine engine(weights, PrimerVariant::kFP);
  DurableSessionStore store(tmp.path, faulted(StoreFaultSpec::Mode::kFail, 3));
  const PrimerRunResult result = engine.run_resilient(kTokens, store);
  EXPECT_EQ(result.logits, FixedBert(weights).forward(kTokens));
  EXPECT_EQ(result.restarts, 0);
  EXPECT_EQ(result.store_degradations, 1u);
  EXPECT_FALSE(result.store_degraded);  // later saves healed the latch
  ASSERT_TRUE(store.last_degradation().has_value());
  EXPECT_TRUE(store.last_degradation()->retryable());
}

// --- end-to-end: REAL process death (fork/exec + SIGKILL) -------------------

std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return buf;
}

// Runs this test binary as a child on one gtest cell with extra env; returns
// the raw waitpid status.
int run_child(const std::string& exe, const std::string& filter,
              const std::vector<std::pair<std::string, std::string>>& env) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    for (const auto& [k, v] : env) ::setenv(k.c_str(), v.c_str(), 1);
    const std::string filter_arg = "--gtest_filter=" + filter;
    ::execl(exe.c_str(), exe.c_str(), filter_arg.c_str(), "--gtest_brief=1",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

// The acceptance-criteria test: SIGKILL a REAL child process at seeded wire
// frames in three distinct phase segments; a freshly exec'd process must
// recover bit-identical output from the on-disk store, replaying the cached
// key material at zero wire cost.
TEST(CrashRecoveryMatrix, RealSigkillAcrossPhaseSegments) {
  const std::string exe = self_exe();
  ASSERT_FALSE(exe.empty()) << "/proc/self/exe unavailable";

  // Probe: one clean run maps checkpoint boundaries to wire-frame indices
  // (1-based; the 2 resume-handshake frames precede seq 0).
  const auto weights = chaos_weights();
  const auto ref = FixedBert(weights).forward(kTokens);
  SessionStore probe_store;
  PrimerEngine probe(weights, PrimerVariant::kFP);
  const PrimerRunResult clean = probe.run_resilient(kTokens, probe_store);
  ASSERT_EQ(clean.logits, ref);
  std::vector<std::uint64_t> boundaries;
  for (std::uint32_t e = 1; e <= probe_store.latest_epoch(Party::kClient);
       ++e) {
    const auto cp = probe_store.load(Party::kClient, e);
    ASSERT_TRUE(cp.has_value());
    boundaries.push_back(2 + cp->send_watermark[0] + cp->send_watermark[1]);
  }
  ASSERT_GE(boundaries.size(), 4u);

  // Three kill points in three distinct phase segments: just past the
  // first, a middle, and the next-to-last checkpoint boundary.
  const std::vector<std::uint64_t> kills = {
      boundaries.front() + 1, boundaries[boundaries.size() / 2] + 1,
      boundaries[boundaries.size() - 2] + 1};
  ASSERT_LT(kills.back(), clean.frames_sent);

  for (std::size_t i = 0; i < kills.size(); ++i) {
    TempDir tmp;
    // Child #1 dies by real SIGKILL at the seeded frame.
    const int crashed = run_child(
        exe, "DurableChaos.CrashRun",
        {{"PRIMER_STORE_DIR", tmp.path},
         {"PRIMER_FAULT_KILL_AFTER", std::to_string(kills[i])},
         {"PRIMER_FAULT_KILL_MODE", "sigkill"}});
    ASSERT_TRUE(WIFSIGNALED(crashed))
        << "kill point " << kills[i] << ": child exited instead of dying";
    ASSERT_EQ(WTERMSIG(crashed), SIGKILL);

    // Child #2 is a genuinely fresh process over the same directory.
    const std::string result_file = tmp.path + "/recovery.txt";
    const int recovered =
        run_child(exe, "DurableChaos.RecoverRun",
                  {{"PRIMER_STORE_DIR", tmp.path},
                   {"PRIMER_CRASH_RESULT_FILE", result_file}});
    ASSERT_TRUE(WIFEXITED(recovered) && WEXITSTATUS(recovered) == 0)
        << "kill point " << kills[i] << ": recovery child failed";

    const auto raw = read_file(result_file);
    ASSERT_TRUE(raw.has_value());
    std::uint32_t resumed_epoch = 0;
    unsigned long long replayed_bytes = 0;
    std::string logits;
    {
      std::string text(raw->begin(), raw->end());
      char lbuf[512] = {0};
      ASSERT_EQ(std::sscanf(text.c_str(),
                            "resumed_epoch=%u replayed_bytes=%llu logits=%511s",
                            &resumed_epoch, &replayed_bytes, lbuf),
                3)
          << text;
      logits = lbuf;
    }
    // Bit-identical logits...
    std::string want;
    for (const auto v : ref) want += std::to_string(v) + ",";
    EXPECT_EQ(logits, want) << "kill point " << kills[i];
    // ...resumed from a real on-disk checkpoint (every kill point is past
    // the first boundary), with the checkpointed prefix — key transfer
    // included — replayed at zero wire cost.
    EXPECT_GE(resumed_epoch, 1u) << "kill point " << kills[i];
    EXPECT_GT(replayed_bytes, 0u) << "kill point " << kills[i];
  }
}

// --- cells driven as child processes (tools/crash_soak.py and the matrix) ---

// Probe for tools/crash_soak.py: prints every checkpoint boundary's wire
// frame (1-based; the 2 resume-handshake frames precede seq 0), the total
// frame count and the reference logits, so the soak can pick kill points
// spanning every phase segment and assert recovered output bit for bit.
TEST(DurableChaos, Probe) {
  if (std::getenv("PRIMER_CHAOS_PROBE") == nullptr) {
    GTEST_SKIP() << "set PRIMER_CHAOS_PROBE=1 (tools/crash_soak.py does)";
  }
  const auto weights = chaos_weights();
  PrimerEngine engine(weights, PrimerVariant::kFP);
  SessionStore store;
  const PrimerRunResult result = engine.run_resilient(kTokens, store);
  ASSERT_EQ(result.logits, FixedBert(weights).forward(kTokens));
  for (std::uint32_t e = 1; e <= store.latest_epoch(Party::kClient); ++e) {
    const auto cp = store.load(Party::kClient, e);
    ASSERT_TRUE(cp.has_value());
    std::printf("CHAOS phase=%s end_frame=%llu\n", cp->phase.c_str(),
                2ull + cp->send_watermark[0] + cp->send_watermark[1]);
  }
  std::printf("CHAOS total_frames=%llu\n",
              static_cast<unsigned long long>(result.frames_sent));
  std::string logits;
  for (const auto v : result.logits) logits += std::to_string(v) + ",";
  std::printf("CHAOS logits=%s\n", logits.c_str());
}

// Dies mid-inference by real SIGKILL: PRIMER_FAULT_KILL_AFTER +
// PRIMER_FAULT_KILL_MODE=sigkill are read from the environment by the
// session layer.  Checkpoints land in PRIMER_STORE_DIR on the way.
TEST(DurableChaos, CrashRun) {
  const char* dir = std::getenv("PRIMER_STORE_DIR");
  if (dir == nullptr) {
    GTEST_SKIP() << "set PRIMER_STORE_DIR (the crash harness does)";
  }
  const auto weights = chaos_weights();
  PrimerEngine engine(weights, PrimerVariant::kFP);
  DurableSessionStore store(dir);
  const PrimerRunResult result = engine.run_resilient(kTokens, store);
  // Only reached when no kill is armed (a probe-style invocation): the run
  // must then simply be correct and durable.
  EXPECT_EQ(result.logits, FixedBert(weights).forward(kTokens));
  EXPECT_GT(result.store_bytes_written, 0u);
}

// Fresh-process recovery: resumes from whatever PRIMER_STORE_DIR holds and
// must produce bit-identical logits.  Writes its telemetry to
// PRIMER_CRASH_RESULT_FILE for the parent/harness to assert on.
TEST(DurableChaos, RecoverRun) {
  const char* dir = std::getenv("PRIMER_STORE_DIR");
  if (dir == nullptr) {
    GTEST_SKIP() << "set PRIMER_STORE_DIR (the crash harness does)";
  }
  const auto weights = chaos_weights();
  PrimerEngine engine(weights, PrimerVariant::kFP);
  DurableSessionStore store(dir);
  const std::uint32_t disk_epoch = store.latest_epoch(Party::kClient);
  const PrimerRunResult result = engine.run_resilient(kTokens, store);
  ASSERT_EQ(result.logits, FixedBert(weights).forward(kTokens));
  EXPECT_EQ(result.resumed_epoch, disk_epoch);
  if (const char* out = std::getenv("PRIMER_CRASH_RESULT_FILE")) {
    std::string text = "resumed_epoch=" + std::to_string(result.resumed_epoch) +
                       " replayed_bytes=" +
                       std::to_string(result.replayed_bytes) + " logits=";
    for (const auto v : result.logits) text += std::to_string(v) + ",";
    text += "\n";
    FILE* f = std::fopen(out, "w");
    ASSERT_NE(f, nullptr);
    std::fputs(text.c_str(), f);
    std::fclose(f);
  }
}

// CI disk-full leg: PRIMER_STORE_DIR points at a tiny tmpfs.  The store
// must degrade to memory-only operation (typed, retryable, counted) and the
// inference must still complete bit-identically — a full disk costs
// durability, never the answer.
TEST(DurableChaos, FullDiskDegrades) {
  const char* dir = std::getenv("PRIMER_STORE_DIR");
  if (std::getenv("PRIMER_EXPECT_ENOSPC") == nullptr || dir == nullptr) {
    GTEST_SKIP() << "set PRIMER_EXPECT_ENOSPC=1 + PRIMER_STORE_DIR on a tiny "
                    "tmpfs (the CI disk-full leg does)";
  }
  const auto weights = chaos_weights();
  PrimerEngine engine(weights, PrimerVariant::kFP);
  DurableSessionStore store(dir);
  const PrimerRunResult result = engine.run_resilient(kTokens, store);
  EXPECT_EQ(result.logits, FixedBert(weights).forward(kTokens));
  EXPECT_GT(result.store_degradations, 0u);
  const auto deg = store.last_degradation();
  ASSERT_TRUE(deg.has_value());
  EXPECT_EQ(deg->kind(), ProtocolErrorKind::kStorageDegraded);
  EXPECT_TRUE(deg->retryable());
  EXPECT_EQ(deg->saved_errno(), ENOSPC);
}

}  // namespace
}  // namespace primer
