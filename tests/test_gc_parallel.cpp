// Thread-count invariance of the GC layer: garbled tables, wire labels,
// and protocol outputs must be bit-identical under any PRIMER_THREADS, for
// every fixed nonlinear-layer circuit and both table-transfer modes.  The
// garbler keys tweaks and table rows to each AND gate's serial ordinal and
// samples all randomness on the calling thread, so parallel execution is a
// pure reordering — these tests pin that contract.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/parallel.h"
#include "gc/fixed_circuit_suite.h"
#include "gc/garble.h"
#include "gc/protocol.h"

namespace primer {
namespace {

// Restores the previous global thread count when the test scope exits.
class ThreadGuard {
 public:
  explicit ThreadGuard(std::size_t n) : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~ThreadGuard() { set_num_threads(prev_); }

 private:
  std::size_t prev_;
};

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

struct GarbleSnapshot {
  GarbledCircuit gc;
  std::vector<Label> eval_out;
};

GarbleSnapshot snapshot(const Circuit& circ) {
  Rng rng(2718);
  Garbler g(rng);
  GarbleSnapshot s;
  s.gc = g.garble(circ);
  Rng in_rng(31415);
  std::vector<Label> active(static_cast<std::size_t>(circ.num_inputs));
  for (std::size_t i = 0; i < active.size(); ++i) {
    active[i] = Garbler::active_input(s.gc, i, in_rng.next() & 1);
  }
  s.eval_out = GcEvaluator::eval(circ, s.gc.table, active);
  return s;
}

void expect_identical(const GarbleSnapshot& a, const GarbleSnapshot& b) {
  ASSERT_TRUE(a.gc.delta == b.gc.delta);
  ASSERT_EQ(a.gc.table.rows.size(), b.gc.table.rows.size());
  for (std::size_t i = 0; i < a.gc.table.rows.size(); ++i) {
    ASSERT_TRUE(a.gc.table.rows[i] == b.gc.table.rows[i]) << "row " << i;
  }
  ASSERT_EQ(a.gc.input_labels0.size(), b.gc.input_labels0.size());
  for (std::size_t i = 0; i < a.gc.input_labels0.size(); ++i) {
    ASSERT_TRUE(a.gc.input_labels0[i] == b.gc.input_labels0[i]);
  }
  ASSERT_EQ(a.gc.output_labels0.size(), b.gc.output_labels0.size());
  for (std::size_t i = 0; i < a.gc.output_labels0.size(); ++i) {
    ASSERT_TRUE(a.gc.output_labels0[i] == b.gc.output_labels0[i]);
  }
  ASSERT_EQ(a.eval_out.size(), b.eval_out.size());
  for (std::size_t i = 0; i < a.eval_out.size(); ++i) {
    ASSERT_TRUE(a.eval_out[i] == b.eval_out[i]) << "output " << i;
  }
}

TEST(GcParallel, TablesLabelsOutputsInvariantAcrossThreadCounts) {
  for (const auto& [name, circ] : fixed_circuit_suite()) {
    SCOPED_TRACE(name);
    circ.layers();  // warm the shared layering before the sweep
    GarbleSnapshot serial;
    {
      ThreadGuard guard(1);
      serial = snapshot(circ);
    }
    // Serial path must also match the seed's reference implementation.
    Rng ref_rng(2718);
    const GarbledCircuit ref = garble_reference(circ, ref_rng);
    ASSERT_EQ(serial.gc.table.rows.size(), ref.table.rows.size());
    for (std::size_t i = 0; i < ref.table.rows.size(); ++i) {
      ASSERT_TRUE(serial.gc.table.rows[i] == ref.table.rows[i]) << "row " << i;
    }

    for (const std::size_t n : kThreadCounts) {
      SCOPED_TRACE(n);
      ThreadGuard guard(n);
      expect_identical(serial, snapshot(circ));
    }
  }
}

TEST(GcParallel, SessionOutputsInvariantAcrossThreadCountsAndTransfers) {
  for (const auto& [name, circ] : fixed_circuit_suite(4)) {
    SCOPED_TRACE(name);
    Rng in_rng(8128);
    std::vector<bool> garbler_bits, evaluator_bits;
    // The suite circuits take [garbler shares | evaluator shares + masks];
    // split inputs so each party holds a plausible slice.
    const std::size_t ng = static_cast<std::size_t>(circ.num_inputs) / 3;
    for (std::size_t i = 0; i < static_cast<std::size_t>(circ.num_inputs);
         ++i) {
      (i < ng ? garbler_bits : evaluator_bits).push_back(in_rng.next() & 1);
    }

    auto run = [&](std::size_t threads, TableTransfer transfer) {
      ThreadGuard guard(threads);
      Channel ch;
      FramedChannel fch(ch, FaultSpec{}, RetryPolicy{});
      Rng rng(5555);
      GcSession session(fch, rng);
      session.set_table_transfer(transfer);
      session.set_stream_chunk_rows(64);
      session.offline(circ, RevealTo::kBoth);
      return session.online(garbler_bits, evaluator_bits);
    };

    const auto expect = run(1, TableTransfer::kMonolithic);
    for (const std::size_t n : kThreadCounts) {
      SCOPED_TRACE(n);
      EXPECT_EQ(run(n, TableTransfer::kMonolithic), expect);
      EXPECT_EQ(run(n, TableTransfer::kStreamed), expect);
    }
  }
}

}  // namespace
}  // namespace primer
