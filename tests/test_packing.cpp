// Tests for encrypted-matmul packing (paper Fig. 6): correctness of both
// strategies against the plain ring product, and the rotation-count model
// showing the tokens-first advantage (factor ~n fewer rotations).
#include <gtest/gtest.h>

#include "common/fixed_point.h"
#include "proto/packing.h"
#include "ss/secret_share.h"

namespace primer {
namespace {

class PackingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ctx_ = new HeContext(make_params(HeProfile::kProto2048));
    rng_ = new Rng(99);
    keygen_ = new KeyGenerator(*ctx_, *rng_);
    encoder_ = new BatchEncoder(*ctx_);
    enc_ = new Encryptor(*ctx_, keygen_->secret_key(), *rng_);
    dec_ = new Decryptor(*ctx_, keygen_->secret_key());
    eval_ = new Evaluator(*ctx_);
    gk_ = new GaloisKeys(keygen_->make_galois_keys({1, 4, 8, 256}));
  }

  static void TearDownTestSuite() {
    delete gk_; delete eval_; delete dec_; delete enc_; delete encoder_;
    delete keygen_; delete rng_; delete ctx_;
  }

  // Runs the live encrypted matmul and compares with the ring product.
  void check_matmul(PackingStrategy strategy, std::size_t n, std::size_t d_in,
                    std::size_t d_out, PackedMatmulStats* stats = nullptr) {
    const std::uint64_t t = ctx_->t();
    const ShareRing ring(t);
    // Random ring-valued input (models a masked share) and fixed-point W.
    const MatI x = ring.random(*rng_, n, d_in);
    const MatI w = random_fp_matrix(*rng_, d_in, d_out, -1.0, 1.0);

    PackedMatmul mm(*ctx_, *encoder_, *eval_, strategy);
    // Keys for this shape's BSGS rotation set.
    const GaloisKeys gk = keygen_->make_galois_keys(mm.rotation_steps(n));
    const auto packed = mm.encrypt_input(x, *enc_);
    const auto result = mm.multiply(packed, w, n, t, gk, stats);
    const MatI got = mm.decrypt_result(result, *dec_, n, d_out);

    // Expected: X * W over the ring (weights lifted the same way).
    MatI w_ring(d_in, d_out);
    for (std::size_t j = 0; j < d_in; ++j) {
      for (std::size_t o = 0; o < d_out; ++o) {
        w_ring(j, o) = static_cast<std::int64_t>(fp_to_ring(w(j, o), t));
      }
    }
    const MatI expect = ring.mul(ring.reduce(x), w_ring);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t o = 0; o < d_out; ++o) {
        ASSERT_EQ(got(i, o), expect(i, o))
            << "entry " << i << "," << o << " strategy "
            << static_cast<int>(strategy);
      }
    }
  }

  static HeContext* ctx_;
  static Rng* rng_;
  static KeyGenerator* keygen_;
  static BatchEncoder* encoder_;
  static Encryptor* enc_;
  static Decryptor* dec_;
  static Evaluator* eval_;
  static GaloisKeys* gk_;
};

HeContext* PackingTest::ctx_ = nullptr;
Rng* PackingTest::rng_ = nullptr;
KeyGenerator* PackingTest::keygen_ = nullptr;
BatchEncoder* PackingTest::encoder_ = nullptr;
Encryptor* PackingTest::enc_ = nullptr;
Decryptor* PackingTest::dec_ = nullptr;
Evaluator* PackingTest::eval_ = nullptr;
GaloisKeys* PackingTest::gk_ = nullptr;

TEST_F(PackingTest, TokensFirstSmall) {
  check_matmul(PackingStrategy::kTokensFirst, 4, 16, 8);
}

TEST_F(PackingTest, TokensFirstMicroEmbedShape) {
  // micro model embedding: 8 tokens, vocab 64 -> d 32.
  check_matmul(PackingStrategy::kTokensFirst, 8, 64, 32);
}

TEST_F(PackingTest, TokensFirstMultiCiphertext) {
  // d_in larger than one ciphertext's feature capacity (fpc = 1024/8 = 128).
  check_matmul(PackingStrategy::kTokensFirst, 8, 200, 4);
}

TEST_F(PackingTest, TokensFirstMultiOutputCt) {
  // d_out larger than fpc = 1024/256 = 4 blocks -> several output cts.
  check_matmul(PackingStrategy::kTokensFirst, 256, 8, 6);
}

TEST_F(PackingTest, FeatureBasedSmall) {
  check_matmul(PackingStrategy::kFeatureBased, 4, 16, 8);
}

TEST_F(PackingTest, FeatureBasedRectangular) {
  check_matmul(PackingStrategy::kFeatureBased, 8, 32, 5);
}

TEST_F(PackingTest, RotationCountAdvantage) {
  PackedMatmulStats tf, fb;
  check_matmul(PackingStrategy::kTokensFirst, 8, 64, 16, &tf);
  check_matmul(PackingStrategy::kFeatureBased, 8, 64, 16, &fb);
  // The paper's Fig. 6 sequential schedule: tokens-first needs M/n - 1
  // alignments, feature-based M - 1 — a factor-n gap.
  EXPECT_EQ(fb.naive_rotations, 1023u);  // M - 1
  EXPECT_EQ(tf.naive_rotations, 127u);   // M/n - 1
  EXPECT_LT(tf.naive_rotations, fb.naive_rotations / 4);
  // The live BSGS execution pays ~n1+n2 key-switches per rotation set —
  // strictly fewer than the sequential walk for both strategies, and
  // tokens-first still wins (by ~sqrt(n) once both use BSGS).
  EXPECT_EQ(fb.rotations, 62u);  // n1,n2 = 32,32: 31 baby + 31 giant
  EXPECT_EQ(tf.rotations, 21u);  // n1,n2 = 12,11: 11 baby + 10 giant
  EXPECT_LT(fb.rotations, fb.naive_rotations / 8);
  EXPECT_LT(tf.rotations, tf.naive_rotations / 4);
  EXPECT_LT(tf.rotations, fb.rotations / 2);
}

TEST_F(PackingTest, CountModelMatchesPaperRatio) {
  // BERT-base embedding shape: n = 30 tokens, d_oh = 30522, d_emb = 768,
  // SEAL-like M = 4096 slots.
  const auto tf = packed_matmul_counts(PackingStrategy::kTokensFirst, 30,
                                       30522, 768, 4096);
  const auto fb = packed_matmul_counts(PackingStrategy::kFeatureBased, 30,
                                       30522, 768, 4096);
  // Paper: tokens-first reduces rotations by roughly a factor of n (the
  // claim is about the sequential alignment schedule both schemes share).
  const double ratio = static_cast<double>(fb.naive_rotations) /
                       static_cast<double>(tf.naive_rotations);
  EXPECT_GT(ratio, 15.0);
  EXPECT_LT(ratio, 40.0);
  // BSGS compresses both schedules; the advantage persists at ~sqrt scale.
  EXPECT_LT(fb.rotations, fb.naive_rotations);
  EXPECT_LT(tf.rotations, tf.naive_rotations);
  EXPECT_GT(static_cast<double>(fb.rotations) /
                static_cast<double>(tf.rotations),
            3.0);
}

TEST_F(PackingTest, CountModelCiphertextCounts) {
  const auto s = packed_matmul_counts(PackingStrategy::kTokensFirst, 8, 64, 32,
                                      1024);
  EXPECT_EQ(s.input_ciphertexts, 1u);   // 64 features, fpc = 128
  EXPECT_EQ(s.output_ciphertexts, 1u);  // 8 * 32 = 256 <= 1024
  const auto s2 = packed_matmul_counts(PackingStrategy::kFeatureBased, 8, 64,
                                       32, 1024);
  EXPECT_EQ(s2.input_ciphertexts, 1u);  // 8 * 64 = 512 <= 1024
  EXPECT_EQ(s2.naive_rotations, 1023u);
  EXPECT_EQ(s2.rotations, 62u);  // BSGS: (32-1) baby + (32-1) giant
}

TEST_F(PackingTest, BsgsKeySwitchCountIsBabyPlusGiant) {
  // The acceptance shape: tokens-first 8 x 64 -> 32 over 1024 slots packs
  // into one input and one output ciphertext with fpc = 128 alignments.
  // BSGS splits 128 into n1 = 12, n2 = 11, so the whole matmul costs
  // (n1 - 1) hoisted baby + (n2 - 1) giant = n1 + n2 - 2 key-switches —
  // not the n1 * n2 - 1 = 127 of the sequential walk.
  const auto [n1, n2] = bsgs_split(128);
  EXPECT_EQ(n1, 12u);
  EXPECT_EQ(n2, 11u);
  const auto s = packed_matmul_counts(PackingStrategy::kTokensFirst, 8, 64, 32,
                                      1024);
  EXPECT_EQ(s.rotations, n1 + n2 - 2);
  EXPECT_EQ(s.baby_rotations, n1 - 1);
  EXPECT_EQ(s.giant_rotations, n2 - 1);
  // The live execution pays exactly the modeled schedule.
  PackedMatmulStats live;
  check_matmul(PackingStrategy::kTokensFirst, 8, 64, 32, &live);
  EXPECT_EQ(live.rotations, s.rotations);
  EXPECT_EQ(live.baby_rotations, s.baby_rotations);
  EXPECT_EQ(live.giant_rotations, s.giant_rotations);
}

TEST_F(PackingTest, NoiseBudgetSurvives) {
  // Direct check that the Horner ordering leaves decryptable noise.
  const std::uint64_t t = ctx_->t();
  const ShareRing ring(t);
  const MatI x = ring.random(*rng_, 8, 64);
  const MatI w = random_fp_matrix(*rng_, 64, 8, -1.0, 1.0);
  PackedMatmul mm(*ctx_, *encoder_, *eval_, PackingStrategy::kTokensFirst);
  const GaloisKeys gk = keygen_->make_galois_keys(mm.rotation_steps(8));
  const auto packed = mm.encrypt_input(x, *enc_);
  const auto result = mm.multiply(packed, w, 8, t, gk, nullptr);
  for (const auto& ct : result) {
    EXPECT_GT(dec_->noise_budget(ct), 10.0);
  }
}

}  // namespace
}  // namespace primer
