// Tests for the public API (core/primer_api.h): session lifecycle, report
// formatting, reference verification, and input validation.
#include <gtest/gtest.h>

#include "core/primer_api.h"

namespace primer {
namespace {

TEST(Api, SessionRunsAndVerifies) {
  Rng rng(3);
  auto session = PrivateInferenceSession::create_random_model(
      bert_nano(), PrimerVariant::kFP, rng);
  const std::vector<std::size_t> tokens = {1, 2, 3, 4};
  auto result = session.infer(tokens);
  EXPECT_EQ(result.logits, session.reference_logits(tokens));
  EXPECT_EQ(result.logits.size(), bert_nano().num_classes);
  EXPECT_EQ(result.logits_real.size(), result.logits.size());
  EXPECT_LT(result.predicted, result.logits.size());
}

TEST(Api, ReportContainsAllSteps) {
  Rng rng(4);
  auto session = PrivateInferenceSession::create_random_model(
      bert_nano(), PrimerVariant::kF, rng);
  auto result = session.infer({0, 1, 2, 3});
  const std::string report = result.report();
  for (const char* key : {"prediction", "offline", "online", "traffic",
                          "embed", "qkv", "softmax", "others"}) {
    EXPECT_NE(report.find(key), std::string::npos) << key;
  }
}

TEST(Api, RejectsNonPowerOfTwoConfigs) {
  Rng rng(5);
  // Paper-size models (n = 30 tokens) cannot run live; the engine says so
  // up front instead of failing deep inside the packing.
  auto cfg = bert_nano();
  cfg.tokens = 6;  // not a power of two
  const auto w = quantize(BertWeightsD::random(cfg, rng));
  EXPECT_THROW(PrimerEngine(w, PrimerVariant::kF), std::invalid_argument);
}

TEST(Api, RejectsOutOfVocabToken) {
  Rng rng(6);
  auto session = PrivateInferenceSession::create_random_model(
      bert_nano(), PrimerVariant::kF, rng);
  EXPECT_THROW(session.infer({1000, 0, 0, 0}), std::invalid_argument);
}

TEST(Api, DeterministicAcrossSessionsWithSameSeed) {
  Rng rng_a(9), rng_b(9);
  auto wa = quantize(BertWeightsD::random(bert_nano(), rng_a));
  auto wb = quantize(BertWeightsD::random(bert_nano(), rng_b));
  PrivateInferenceSession sa(wa, PrimerVariant::kFP);
  PrivateInferenceSession sb(wb, PrimerVariant::kFP);
  const std::vector<std::size_t> tokens = {8, 8, 8, 8};
  EXPECT_EQ(sa.infer(tokens).logits, sb.infer(tokens).logits);
}

}  // namespace
}  // namespace primer
