// Unit + property tests for modular arithmetic, prime generation, and the
// negacyclic NTT (round-trips, convolution correctness vs schoolbook).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ntt/modarith.h"
#include "ntt/ntt.h"
#include "ntt/primes.h"

namespace primer {
namespace {

TEST(ModArith, AddSubNeg) {
  const u64 m = 1000003;
  EXPECT_EQ(add_mod(m - 1, 5, m), 4u);
  EXPECT_EQ(sub_mod(3, 5, m), m - 2);
  EXPECT_EQ(neg_mod(0, m), 0u);
  EXPECT_EQ(neg_mod(1, m), m - 1);
}

TEST(ModArith, MulPow) {
  const u64 m = (u64{1} << 61) - 1;  // Mersenne prime
  EXPECT_EQ(mul_mod(m - 1, m - 1, m), 1u);  // (-1)^2 = 1
  EXPECT_EQ(pow_mod(2, 61, m), 1u);         // 2^61 = 2^61 - 1 + 1 ≡ 1
}

TEST(ModArith, InvMod) {
  const u64 m = 65537;
  for (u64 a : {2ULL, 3ULL, 12345ULL, 65536ULL}) {
    EXPECT_EQ(mul_mod(a, inv_mod(a, m), m), 1u);
  }
  EXPECT_THROW(inv_mod(0, m), std::invalid_argument);
}

TEST(ModArith, BarrettMatchesNaive) {
  Rng rng(1);
  for (u64 m : {65537ULL, 1000003ULL, (1ULL << 50) - 27}) {
    const Barrett br(m);
    for (int i = 0; i < 1000; ++i) {
      const u64 a = rng.next();
      EXPECT_EQ(br.reduce(a), a % m);
      const u64 x = rng.uniform(m), y = rng.uniform(m);
      EXPECT_EQ(br.mul(x, y), mul_mod(x, y, m));
    }
  }
}

TEST(ModArith, ShoupMatchesNaive) {
  Rng rng(2);
  const u64 m = (1ULL << 50) - 27;
  for (int i = 0; i < 1000; ++i) {
    const u64 w = rng.uniform(m);
    const ShoupMul s(w, m);
    const u64 x = rng.uniform(m);
    EXPECT_EQ(s.mul(x, m), mul_mod(w, x, m));
  }
}

TEST(Primes, MillerRabinKnownValues) {
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(65537));
  EXPECT_TRUE(is_prime_u64((u64{1} << 61) - 1));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_FALSE(is_prime_u64(65535));
  EXPECT_FALSE(is_prime_u64((u64{1} << 62) - 1));
  // Carmichael numbers must be rejected.
  EXPECT_FALSE(is_prime_u64(561));
  EXPECT_FALSE(is_prime_u64(41041));
}

TEST(Primes, GeneratedPrimesAreNttFriendly) {
  const auto primes = generate_ntt_primes(40, 2048, 3);
  EXPECT_EQ(primes.size(), 3u);
  for (u64 p : primes) {
    EXPECT_TRUE(is_prime_u64(p));
    EXPECT_EQ((p - 1) % (2 * 2048), 0u);
    EXPECT_GE(p, u64{1} << 39);
    EXPECT_LT(p, u64{1} << 40);
  }
  EXPECT_NE(primes[0], primes[1]);
  EXPECT_NE(primes[1], primes[2]);
}

TEST(Primes, FirstPrimeAtLeast) {
  const u64 p = first_ntt_prime_at_least(1 << 20, 4096);
  EXPECT_TRUE(is_prime_u64(p));
  EXPECT_GE(p, u64{1} << 20);
  EXPECT_EQ(p % 8192, 1u);
}

TEST(Primes, PrimitiveRootHasExactOrder) {
  const u64 p = generate_ntt_primes(40, 1024, 1)[0];
  const u64 root = find_primitive_root(p, 2048);
  EXPECT_EQ(pow_mod(root, 2048, p), 1u);
  EXPECT_NE(pow_mod(root, 1024, p), 1u);  // order exactly 2n
}

class NttParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NttParamTest, ForwardInverseRoundTrip) {
  const std::size_t n = GetParam();
  const u64 p = generate_ntt_primes(45, n, 1)[0];
  const Ntt ntt(n, p);
  Rng rng(n);
  std::vector<u64> a(n);
  rng.fill_uniform_mod(a, p);
  const auto original = a;
  ntt.forward(a);
  EXPECT_NE(a, original);  // transform does something
  ntt.inverse(a);
  EXPECT_EQ(a, original);
}

TEST_P(NttParamTest, ConvolutionMatchesSchoolbook) {
  const std::size_t n = GetParam();
  const u64 p = generate_ntt_primes(45, n, 1)[0];
  const Ntt ntt(n, p);
  Rng rng(n + 1);
  std::vector<u64> a(n), b(n);
  rng.fill_uniform_mod(a, p);
  rng.fill_uniform_mod(b, p);

  // Schoolbook negacyclic convolution: x^n = -1.
  std::vector<u64> expect(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = mul_mod(a[i], b[j], p);
      const std::size_t k = i + j;
      if (k < n) {
        expect[k] = add_mod(expect[k], prod, p);
      } else {
        expect[k - n] = sub_mod(expect[k - n], prod, p);
      }
    }
  }
  EXPECT_EQ(ntt.negacyclic_multiply(a, b), expect);
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttParamTest,
                         ::testing::Values(8, 16, 64, 256, 1024));

TEST(Ntt, MultiplyByOnePolynomial) {
  const std::size_t n = 64;
  const u64 p = generate_ntt_primes(45, n, 1)[0];
  const Ntt ntt(n, p);
  Rng rng(99);
  std::vector<u64> a(n), one(n, 0);
  rng.fill_uniform_mod(a, p);
  one[0] = 1;
  EXPECT_EQ(ntt.negacyclic_multiply(a, one), a);
}

TEST(Ntt, MultiplyByXShiftsNegacyclically) {
  const std::size_t n = 16;
  const u64 p = generate_ntt_primes(45, n, 1)[0];
  const Ntt ntt(n, p);
  std::vector<u64> a(n, 0), x(n, 0);
  for (std::size_t i = 0; i < n; ++i) a[i] = i + 1;
  x[1] = 1;
  const auto r = ntt.negacyclic_multiply(a, x);
  // (a * x): coefficient i+1 gets a_i, coefficient 0 gets -a_{n-1}.
  EXPECT_EQ(r[0], p - n);  // -a_{n-1} = -(n)
  for (std::size_t i = 1; i < n; ++i) EXPECT_EQ(r[i], i);
}

TEST(Ntt, RejectsBadParameters) {
  EXPECT_THROW(Ntt(100, 65537), std::invalid_argument);     // not power of 2
  EXPECT_THROW(Ntt(64, 1000003), std::invalid_argument);    // p != 1 mod 2n
}

TEST(Ntt, PointwiseSizeMismatchThrows) {
  const std::size_t n = 16;
  const u64 p = generate_ntt_primes(45, n, 1)[0];
  const Ntt ntt(n, p);
  std::vector<u64> a(n), b(8), out;
  EXPECT_THROW(ntt.pointwise(a, b, out), std::invalid_argument);
}

}  // namespace
}  // namespace primer
