// Tests for the garbled-circuit substrate: AES primitives, circuit builder
// arithmetic vs plain integer semantics, half-gates garbling equivalence,
// and the two-party GcSession over the simulated channel.
#include <gtest/gtest.h>

#include "gc/aes.h"
#include "gc/circuit.h"
#include "gc/fixed_circuit_suite.h"
#include "gc/fixed_circuits.h"
#include "gc/garble.h"
#include "gc/protocol.h"

namespace primer {
namespace {

TEST(Aes, KnownAnswerFips197) {
  // FIPS-197 appendix C.1: key 000102...0f, plaintext 00112233...ff.
  // Our Block is little-endian in each 64-bit half; bytes of the standard
  // vector map accordingly.
  const Block key{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
  const Block pt{0x7766554433221100ULL, 0xffeeddccbbaa9988ULL};
  const FixedKeyAes aes(key);
  const Block ct = aes.encrypt(pt);
  // Expected ciphertext 69c4e0d86a7b0430d8cdb78070b4c55a (big-endian bytes).
  EXPECT_EQ(ct.lo, 0x30047b6ad8e0c469ULL);
  EXPECT_EQ(ct.hi, 0x5ac5b47080b7cdd8ULL);
}

TEST(Aes, HashDependsOnTweakAndInput) {
  const FixedKeyAes aes;
  const Block x{123, 456};
  EXPECT_FALSE(aes.hash(x, 1) == aes.hash(x, 2));
  EXPECT_FALSE(aes.hash(x, 1) == aes.hash(Block{124, 456}, 1));
  EXPECT_TRUE(aes.hash(x, 7) == aes.hash(x, 7));
}

TEST(Aes, BatchHashMatchesScalar) {
  const FixedKeyAes aes;
  Rng rng(9001);
  // Sizes straddle every tail path: empty, scalar-only, 4-wide, 8-wide,
  // and mixes of all three.
  for (const std::size_t n : {0, 1, 3, 4, 5, 7, 8, 9, 12, 64, 1000}) {
    std::vector<Block> x(n), got(n);
    std::vector<std::uint64_t> tw(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = Block{rng.next(), rng.next()};
      tw[i] = rng.next();
    }
    aes.hash_n(x.data(), tw.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(got[i] == aes.hash(x[i], tw[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Aes, BatchEncryptMatchesScalar) {
  const FixedKeyAes aes;
  Rng rng(9002);
  for (const std::size_t n : {0, 1, 3, 4, 7, 8, 9, 64, 1000}) {
    std::vector<Block> x(n), got(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = Block{rng.next(), rng.next()};
    aes.encrypt_n(x.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(got[i] == aes.encrypt(x[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Circuit, PlainEvalBasicGates) {
  CircuitBuilder b;
  const auto x = b.add_input();
  const auto y = b.add_input();
  b.set_outputs({b.xor_gate(x, y), b.and_gate(x, y), b.not_gate(x),
                 b.or_gate(x, y)});
  const Circuit c = b.build();
  for (int xv = 0; xv <= 1; ++xv) {
    for (int yv = 0; yv <= 1; ++yv) {
      const auto out = eval_circuit(c, {xv == 1, yv == 1});
      EXPECT_EQ(out[0], (xv ^ yv) == 1);
      EXPECT_EQ(out[1], (xv & yv) == 1);
      EXPECT_EQ(out[2], xv == 0);
      EXPECT_EQ(out[3], (xv | yv) == 1);
    }
  }
}

// Builds a circuit computing op(a, b) on w-bit buses and checks it against
// the integer semantics for exhaustive/random operand pairs.
class ArithCircuitTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArithCircuitTest, AddMatchesInteger) {
  const std::size_t w = GetParam();
  CircuitBuilder b;
  const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
  b.set_outputs(b.add(a, c));
  const Circuit circ = b.build();
  Rng rng(w);
  const std::uint64_t mask = (w == 64) ? ~0ULL : ((1ULL << w) - 1);
  for (int iter = 0; iter < 50; ++iter) {
    const std::uint64_t x = rng.next() & mask, y = rng.next() & mask;
    auto in = value_to_bits(x, w);
    const auto yb = value_to_bits(y, w);
    in.insert(in.end(), yb.begin(), yb.end());
    EXPECT_EQ(bits_to_value(eval_circuit(circ, in)), (x + y) & mask);
  }
}

TEST_P(ArithCircuitTest, SubAndBorrowMatchInteger) {
  const std::size_t w = GetParam();
  CircuitBuilder b;
  const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
  std::int32_t borrow = 0;
  Bus diff = b.sub(a, c, &borrow);
  diff.push_back(borrow);
  b.set_outputs(diff);
  const Circuit circ = b.build();
  Rng rng(w + 1);
  const std::uint64_t mask = (w == 64) ? ~0ULL : ((1ULL << w) - 1);
  for (int iter = 0; iter < 50; ++iter) {
    const std::uint64_t x = rng.next() & mask, y = rng.next() & mask;
    auto in = value_to_bits(x, w);
    const auto yb = value_to_bits(y, w);
    in.insert(in.end(), yb.begin(), yb.end());
    const auto out = eval_circuit(circ, in);
    const auto diff_bits = std::vector<bool>(out.begin(), out.end() - 1);
    EXPECT_EQ(bits_to_value(diff_bits), (x - y) & mask);
    EXPECT_EQ(out.back(), x < y);
  }
}

TEST_P(ArithCircuitTest, MulMatchesInteger) {
  const std::size_t w = GetParam();
  CircuitBuilder b;
  const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
  b.set_outputs(b.mul(a, c, w));
  const Circuit circ = b.build();
  Rng rng(w + 2);
  const std::uint64_t mask = (w == 64) ? ~0ULL : ((1ULL << w) - 1);
  for (int iter = 0; iter < 30; ++iter) {
    const std::uint64_t x = rng.next() & mask, y = rng.next() & mask;
    auto in = value_to_bits(x, w);
    const auto yb = value_to_bits(y, w);
    in.insert(in.end(), yb.begin(), yb.end());
    EXPECT_EQ(bits_to_value(eval_circuit(circ, in)), (x * y) & mask);
  }
}

TEST_P(ArithCircuitTest, DivMatchesInteger) {
  const std::size_t w = GetParam();
  CircuitBuilder b;
  const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
  b.set_outputs(b.div(a, c));
  const Circuit circ = b.build();
  Rng rng(w + 3);
  const std::uint64_t mask = (w == 64) ? ~0ULL : ((1ULL << w) - 1);
  for (int iter = 0; iter < 30; ++iter) {
    const std::uint64_t x = rng.next() & mask;
    const std::uint64_t y = (rng.next() & mask) | 1;  // avoid divide by zero
    auto in = value_to_bits(x, w);
    const auto yb = value_to_bits(y, w);
    in.insert(in.end(), yb.begin(), yb.end());
    EXPECT_EQ(bits_to_value(eval_circuit(circ, in)), x / y);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ArithCircuitTest,
                         ::testing::Values(4, 8, 15, 22, 32));

TEST(Circuit, ComparatorsAndMux) {
  const std::size_t w = 10;
  CircuitBuilder b;
  const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
  const auto sel = b.lt(a, c);
  Bus out = b.mux(sel, a, c);  // min(a, c)
  out.push_back(b.ge(a, c));
  out.push_back(b.eq(a, c));
  b.set_outputs(out);
  const Circuit circ = b.build();
  Rng rng(7);
  for (int iter = 0; iter < 100; ++iter) {
    const std::uint64_t x = rng.uniform(1 << w), y = rng.uniform(1 << w);
    auto in = value_to_bits(x, w);
    const auto yb = value_to_bits(y, w);
    in.insert(in.end(), yb.begin(), yb.end());
    const auto o = eval_circuit(circ, in);
    const auto min_bits = std::vector<bool>(o.begin(), o.begin() + w);
    EXPECT_EQ(bits_to_value(min_bits), std::min(x, y));
    EXPECT_EQ(o[w], x >= y);
    EXPECT_EQ(o[w + 1], x == y);
  }
}

TEST(Circuit, ModularAddSub) {
  const std::uint64_t p = 1000003;
  const std::size_t w = share_width(p);
  CircuitBuilder b;
  const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
  Bus out = b.add_mod(a, c, p);
  Bus out2 = b.sub_mod(a, c, p);
  out.insert(out.end(), out2.begin(), out2.end());
  b.set_outputs(out);
  const Circuit circ = b.build();
  Rng rng(17);
  for (int iter = 0; iter < 100; ++iter) {
    const std::uint64_t x = rng.uniform(p), y = rng.uniform(p);
    auto in = value_to_bits(x, w);
    const auto yb = value_to_bits(y, w);
    in.insert(in.end(), yb.begin(), yb.end());
    const auto o = eval_circuit(circ, in);
    const auto add_bits = std::vector<bool>(o.begin(), o.begin() + w);
    const auto sub_bits = std::vector<bool>(o.begin() + w, o.end());
    EXPECT_EQ(bits_to_value(add_bits), (x + y) % p);
    EXPECT_EQ(bits_to_value(sub_bits), (x + p - y) % p);
  }
}

TEST(Circuit, ConstantFoldingEmitsNoAndGates) {
  CircuitBuilder b;
  const Bus a = b.add_input_bus(8);
  // Multiplying by the constant 4 should fold to pure rewiring + adds of 0.
  const Bus c = b.constant_bus(4, 8);
  b.set_outputs(b.mul(a, c, 8));
  // A full 8x8 mul has ~64 ANDs from partial products; constant 4 has one
  // set bit so all partial-product ANDs fold away.
  EXPECT_LE(b.and_count(), 8u);
}

TEST(Garble, MatchesPlainEvalOnRandomCircuits) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    CircuitBuilder b;
    const std::size_t w = 8;
    const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
    const Bus sum = b.add(a, c);
    const Bus prod = b.mul(a, c, w);
    const auto cmp = b.lt(a, c);
    Bus out = b.mux(cmp, sum, prod);
    out.push_back(b.eq(a, c));
    b.set_outputs(out);
    const Circuit circ = b.build();

    std::vector<bool> inputs(2 * w);
    for (auto&& bit : inputs) bit = rng.next() & 1;
    EXPECT_EQ(garbled_eval(circ, inputs, rng), eval_circuit(circ, inputs));
  }
}

TEST(Garble, AllInputCombinationsTinyCircuit) {
  CircuitBuilder b;
  const auto x = b.add_input();
  const auto y = b.add_input();
  const auto z = b.add_input();
  // out = (x & y) ^ ~z  — exercises AND, XOR, NOT together.
  b.set_outputs({b.xor_gate(b.and_gate(x, y), b.not_gate(z))});
  const Circuit c = b.build();
  Rng rng(5);
  for (int m = 0; m < 8; ++m) {
    const std::vector<bool> in = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    EXPECT_EQ(garbled_eval(c, in, rng), eval_circuit(c, in)) << "mask " << m;
  }
}

TEST(Garble, TableSizeIsTwoLabelsPerAnd) {
  CircuitBuilder b;
  const Bus a = b.add_input_bus(16), c = b.add_input_bus(16);
  b.set_outputs(b.mul(a, c, 16));
  const Circuit circ = b.build();
  Rng rng(3);
  Garbler g(rng);
  const auto gc = g.garble(circ);
  EXPECT_EQ(gc.table.rows.size(), 2 * circ.and_count());
}

TEST(GcSession, TwoPartyAddModT) {
  const std::uint64_t t = 65537;
  const std::size_t w = share_width(t);
  CircuitBuilder b;
  const Bus sg = b.add_input_bus(w);  // garbler share
  const Bus se = b.add_input_bus(w);  // evaluator share
  b.set_outputs(b.add_mod(sg, se, t));
  const Circuit circ = b.build();

  Channel ch;
  FramedChannel fch(ch, FaultSpec{}, RetryPolicy{});
  Rng rng(77);
  GcSession session(fch, rng);
  session.offline(circ, RevealTo::kBoth);
  const std::uint64_t x = 12345, y = 54321;
  const auto out = session.online(value_to_bits(x, w), value_to_bits(y, w));
  EXPECT_EQ(bits_to_value(out), (x + y) % t);
  EXPECT_GT(ch.total_bytes(), 0u);
  EXPECT_GT(ch.flights(), 0u);
  EXPECT_GT(session.stats().and_gates, 0u);
}

TEST(GcSession, RevealToGarblerOnly) {
  CircuitBuilder b;
  const Bus a = b.add_input_bus(8), c = b.add_input_bus(8);
  b.set_outputs(b.add(a, c));
  const Circuit circ = b.build();
  Channel ch;
  FramedChannel fch(ch, FaultSpec{}, RetryPolicy{});
  Rng rng(79);
  GcSession session(fch, rng);
  session.offline(circ, RevealTo::kGarbler);
  const auto out = session.online(value_to_bits(100, 8), value_to_bits(55, 8));
  EXPECT_EQ(bits_to_value(out), 155u);
}

TEST(GcSession, OnlineBeforeOfflineThrows) {
  Channel ch;
  FramedChannel fch(ch, FaultSpec{}, RetryPolicy{});
  Rng rng(1);
  GcSession session(fch, rng);
  EXPECT_THROW(session.online({}, {}), std::logic_error);
}

TEST(GcSession, ChannelAccountsGarbledTables) {
  CircuitBuilder b;
  const Bus a = b.add_input_bus(16), c = b.add_input_bus(16);
  b.set_outputs(b.mul(a, c, 16));
  const Circuit circ = b.build();
  Channel ch;
  FramedChannel fch(ch, FaultSpec{}, RetryPolicy{});
  Rng rng(83);
  GcSession session(fch, rng);
  const auto before = ch.total_bytes();
  session.offline(circ, RevealTo::kGarbler);
  // Offline traffic must include at least the garbled tables.
  EXPECT_GE(ch.total_bytes() - before, 2 * 16 * circ.and_count());
}

TEST(Circuit, LayersPartitionGatesWithMonotoneWatermarks) {
  for (const auto& [name, circ] : fixed_circuit_suite()) {
    SCOPED_TRACE(name);
    const CircuitLayers& lay = circ.layers();
    EXPECT_EQ(lay.and_count, circ.and_count());

    // AND ordinals are the emission order among AND gates.
    std::size_t emitted_ands = 0;
    for (std::size_t gi = 0; gi < circ.gates.size(); ++gi) {
      if (circ.gates[gi].type == GateType::kAnd) {
        EXPECT_EQ(lay.and_ordinal[gi], emitted_ands++);
      }
    }
    EXPECT_EQ(emitted_ands, lay.and_count);

    // Levels partition the gate list; within a level, gates stay in
    // emission order; no AND consumes a wire of its own or a later level.
    std::vector<std::int32_t> wire_level(circ.num_wires, 0);
    std::vector<bool> seen(circ.gates.size(), false);
    std::size_t gates_total = 0, completed_ands = 0;
    std::uint32_t prev_watermark = 0;
    ASSERT_EQ(lay.watermark.size(), lay.levels.size());
    for (std::size_t l = 0; l < lay.levels.size(); ++l) {
      const CircuitLevel& level = lay.levels[l];
      gates_total += level.and_gates.size() + level.free_gates.size();
      completed_ands += level.and_gates.size();
      std::uint32_t prev_gi = 0;
      bool first = true;
      for (const auto gi : level.and_gates) {
        ASSERT_LT(gi, circ.gates.size());
        EXPECT_FALSE(seen[gi]);
        seen[gi] = true;
        if (!first) EXPECT_GT(gi, prev_gi);
        first = false;
        prev_gi = gi;
        const Gate& g = circ.gates[gi];
        EXPECT_EQ(g.type, GateType::kAnd);
        // AND inputs come from strictly earlier levels.
        EXPECT_LT(wire_level[g.a], static_cast<std::int32_t>(l) + 1);
        EXPECT_LT(wire_level[g.b], static_cast<std::int32_t>(l) + 1);
        wire_level[g.out] = static_cast<std::int32_t>(l) + 1;
      }
      for (const auto gi : level.free_gates) {
        ASSERT_LT(gi, circ.gates.size());
        EXPECT_FALSE(seen[gi]);
        seen[gi] = true;
        EXPECT_NE(circ.gates[gi].type, GateType::kAnd);
      }
      // Watermarks grow, never exceed the ANDs finished so far, and every
      // AND of a later level sits at or above this level's watermark (the
      // prefix [0, watermark[l]) really is final).
      EXPECT_GE(lay.watermark[l], prev_watermark);
      EXPECT_LE(lay.watermark[l], completed_ands);
      for (std::size_t m = l + 1; m < lay.levels.size(); ++m) {
        for (const auto gi : lay.levels[m].and_gates) {
          EXPECT_GE(lay.and_ordinal[gi], lay.watermark[l]);
        }
      }
      prev_watermark = lay.watermark[l];
    }
    EXPECT_EQ(gates_total, circ.gates.size());
    if (!lay.levels.empty()) {
      EXPECT_EQ(lay.watermark.back(), lay.and_count);
    }
  }
}

// The batched, level-ordered garbler/evaluator must produce bit-identical
// tables, labels, and outputs to the seed's serial single-block-AES paths.
TEST(Garble, BatchedMatchesSerialReferenceBitExact) {
  for (const auto& [name, circ] : fixed_circuit_suite()) {
    SCOPED_TRACE(name);
    Rng rng_new(4242), rng_ref(4242);
    Garbler g(rng_new);
    const GarbledCircuit got = g.garble(circ);
    const GarbledCircuit want = garble_reference(circ, rng_ref);

    EXPECT_TRUE(got.delta == want.delta);
    ASSERT_EQ(got.table.rows.size(), want.table.rows.size());
    for (std::size_t i = 0; i < want.table.rows.size(); ++i) {
      ASSERT_TRUE(got.table.rows[i] == want.table.rows[i])
          << name << " table row " << i;
    }
    ASSERT_EQ(got.input_labels0.size(), want.input_labels0.size());
    for (std::size_t i = 0; i < want.input_labels0.size(); ++i) {
      ASSERT_TRUE(got.input_labels0[i] == want.input_labels0[i]);
    }
    ASSERT_EQ(got.output_labels0.size(), want.output_labels0.size());
    for (std::size_t i = 0; i < want.output_labels0.size(); ++i) {
      ASSERT_TRUE(got.output_labels0[i] == want.output_labels0[i]);
    }

    // Active-label evaluation agrees too, on random inputs.
    Rng in_rng(99);
    std::vector<Label> active(static_cast<std::size_t>(circ.num_inputs));
    for (std::size_t i = 0; i < active.size(); ++i) {
      active[i] = Garbler::active_input(got, i, in_rng.next() & 1);
    }
    const auto out_new = GcEvaluator::eval(circ, got.table, active);
    const auto out_ref = eval_reference(circ, want.table, active);
    ASSERT_EQ(out_new.size(), out_ref.size());
    for (std::size_t i = 0; i < out_ref.size(); ++i) {
      ASSERT_TRUE(out_new[i] == out_ref[i]) << name << " output " << i;
    }
  }
}

TEST(Garble, RowSinkCoversTableInOrder) {
  for (const auto& [name, circ] : fixed_circuit_suite()) {
    SCOPED_TRACE(name);
    Rng rng(17);
    Garbler g(rng);
    std::size_t covered = 0, calls = 0;
    const GarbledCircuit gc =
        g.garble(circ, [&](const Label* rows, std::size_t lo, std::size_t hi) {
          EXPECT_NE(rows, nullptr);
          EXPECT_EQ(lo, covered);  // contiguous, strictly increasing
          EXPECT_LT(lo, hi);
          covered = hi;
          ++calls;
        });
    EXPECT_EQ(covered, gc.table.rows.size());
    EXPECT_GT(calls, 0u);

    // Sink-driven garbling consumes the Rng identically: same seed, same
    // bytes as the sink-free overload.
    Rng rng2(17);
    Garbler g2(rng2);
    const GarbledCircuit gc2 = g2.garble(circ);
    ASSERT_EQ(gc.table.rows.size(), gc2.table.rows.size());
    for (std::size_t i = 0; i < gc.table.rows.size(); ++i) {
      ASSERT_TRUE(gc.table.rows[i] == gc2.table.rows[i]);
    }
  }
}

TEST(GcSession, StreamedMatchesMonolithic) {
  const std::uint64_t t = 65537;
  const std::size_t w = share_width(t);
  CircuitBuilder b;
  const Bus sg = b.add_input_bus(w);
  const Bus se = b.add_input_bus(w);
  b.set_outputs(b.add_mod(sg, se, t));
  const Circuit circ = b.build();
  const std::uint64_t x = 31337, y = 27182;

  auto run = [&](TableTransfer transfer, std::size_t chunk_rows) {
    Channel ch;
    FramedChannel fch(ch, FaultSpec{}, RetryPolicy{});
    Rng rng(123);
    GcSession session(fch, rng);
    session.set_table_transfer(transfer);
    session.set_stream_chunk_rows(chunk_rows);
    session.offline(circ, RevealTo::kBoth);
    const auto out = session.online(value_to_bits(x, w), value_to_bits(y, w));
    return std::make_pair(bits_to_value(out), session.stats());
  };

  const auto [mono_out, mono_stats] = run(TableTransfer::kMonolithic, 1);
  EXPECT_EQ(mono_out, (x + y) % t);
  EXPECT_EQ(mono_stats.table_chunks, 0u);
  EXPECT_EQ(mono_stats.streamed_table_bytes, 0u);

  // Chunk sizes straddling one-frame, few-frame, and per-level streaming.
  for (const std::size_t chunk_rows : {std::size_t{1}, std::size_t{64},
                                       GcSession::kDefaultStreamChunkRows}) {
    SCOPED_TRACE(chunk_rows);
    const auto [out, stats] = run(TableTransfer::kStreamed, chunk_rows);
    EXPECT_EQ(out, mono_out);
    EXPECT_EQ(stats.table_bytes, mono_stats.table_bytes);
    EXPECT_GT(stats.table_chunks, 0u);
    // Streamed bytes = table payload + one 16-byte header per chunk.
    EXPECT_EQ(stats.streamed_table_bytes,
              stats.table_bytes + 16 * stats.table_chunks);
    // Compute split is populated on both sides.
    EXPECT_GT(stats.garble_seconds, 0.0);
    EXPECT_GT(stats.eval_seconds, 0.0);
    EXPECT_GE(stats.garble_cpu_seconds, 0.0);
    EXPECT_GE(stats.eval_cpu_seconds, 0.0);
  }
}

TEST(PackBits, RoundTrip) {
  const std::vector<bool> bits = {1, 0, 1, 1, 0, 0, 0, 1, 1, 0, 1};
  EXPECT_EQ(unpack_bits(pack_bits(bits), bits.size()), bits);
}

TEST(ValueBits, RoundTrip) {
  for (std::uint64_t v : {0ULL, 1ULL, 255ULL, 65535ULL, 123456789ULL}) {
    EXPECT_EQ(bits_to_value(value_to_bits(v, 40)), v);
  }
}

}  // namespace
}  // namespace primer
