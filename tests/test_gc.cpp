// Tests for the garbled-circuit substrate: AES primitives, circuit builder
// arithmetic vs plain integer semantics, half-gates garbling equivalence,
// and the two-party GcSession over the simulated channel.
#include <gtest/gtest.h>

#include "gc/aes.h"
#include "gc/circuit.h"
#include "gc/fixed_circuits.h"
#include "gc/garble.h"
#include "gc/protocol.h"

namespace primer {
namespace {

TEST(Aes, KnownAnswerFips197) {
  // FIPS-197 appendix C.1: key 000102...0f, plaintext 00112233...ff.
  // Our Block is little-endian in each 64-bit half; bytes of the standard
  // vector map accordingly.
  const Block key{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
  const Block pt{0x7766554433221100ULL, 0xffeeddccbbaa9988ULL};
  const FixedKeyAes aes(key);
  const Block ct = aes.encrypt(pt);
  // Expected ciphertext 69c4e0d86a7b0430d8cdb78070b4c55a (big-endian bytes).
  EXPECT_EQ(ct.lo, 0x30047b6ad8e0c469ULL);
  EXPECT_EQ(ct.hi, 0x5ac5b47080b7cdd8ULL);
}

TEST(Aes, HashDependsOnTweakAndInput) {
  const FixedKeyAes aes;
  const Block x{123, 456};
  EXPECT_FALSE(aes.hash(x, 1) == aes.hash(x, 2));
  EXPECT_FALSE(aes.hash(x, 1) == aes.hash(Block{124, 456}, 1));
  EXPECT_TRUE(aes.hash(x, 7) == aes.hash(x, 7));
}

TEST(Circuit, PlainEvalBasicGates) {
  CircuitBuilder b;
  const auto x = b.add_input();
  const auto y = b.add_input();
  b.set_outputs({b.xor_gate(x, y), b.and_gate(x, y), b.not_gate(x),
                 b.or_gate(x, y)});
  const Circuit c = b.build();
  for (int xv = 0; xv <= 1; ++xv) {
    for (int yv = 0; yv <= 1; ++yv) {
      const auto out = eval_circuit(c, {xv == 1, yv == 1});
      EXPECT_EQ(out[0], (xv ^ yv) == 1);
      EXPECT_EQ(out[1], (xv & yv) == 1);
      EXPECT_EQ(out[2], xv == 0);
      EXPECT_EQ(out[3], (xv | yv) == 1);
    }
  }
}

// Builds a circuit computing op(a, b) on w-bit buses and checks it against
// the integer semantics for exhaustive/random operand pairs.
class ArithCircuitTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArithCircuitTest, AddMatchesInteger) {
  const std::size_t w = GetParam();
  CircuitBuilder b;
  const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
  b.set_outputs(b.add(a, c));
  const Circuit circ = b.build();
  Rng rng(w);
  const std::uint64_t mask = (w == 64) ? ~0ULL : ((1ULL << w) - 1);
  for (int iter = 0; iter < 50; ++iter) {
    const std::uint64_t x = rng.next() & mask, y = rng.next() & mask;
    auto in = value_to_bits(x, w);
    const auto yb = value_to_bits(y, w);
    in.insert(in.end(), yb.begin(), yb.end());
    EXPECT_EQ(bits_to_value(eval_circuit(circ, in)), (x + y) & mask);
  }
}

TEST_P(ArithCircuitTest, SubAndBorrowMatchInteger) {
  const std::size_t w = GetParam();
  CircuitBuilder b;
  const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
  std::int32_t borrow = 0;
  Bus diff = b.sub(a, c, &borrow);
  diff.push_back(borrow);
  b.set_outputs(diff);
  const Circuit circ = b.build();
  Rng rng(w + 1);
  const std::uint64_t mask = (w == 64) ? ~0ULL : ((1ULL << w) - 1);
  for (int iter = 0; iter < 50; ++iter) {
    const std::uint64_t x = rng.next() & mask, y = rng.next() & mask;
    auto in = value_to_bits(x, w);
    const auto yb = value_to_bits(y, w);
    in.insert(in.end(), yb.begin(), yb.end());
    const auto out = eval_circuit(circ, in);
    const auto diff_bits = std::vector<bool>(out.begin(), out.end() - 1);
    EXPECT_EQ(bits_to_value(diff_bits), (x - y) & mask);
    EXPECT_EQ(out.back(), x < y);
  }
}

TEST_P(ArithCircuitTest, MulMatchesInteger) {
  const std::size_t w = GetParam();
  CircuitBuilder b;
  const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
  b.set_outputs(b.mul(a, c, w));
  const Circuit circ = b.build();
  Rng rng(w + 2);
  const std::uint64_t mask = (w == 64) ? ~0ULL : ((1ULL << w) - 1);
  for (int iter = 0; iter < 30; ++iter) {
    const std::uint64_t x = rng.next() & mask, y = rng.next() & mask;
    auto in = value_to_bits(x, w);
    const auto yb = value_to_bits(y, w);
    in.insert(in.end(), yb.begin(), yb.end());
    EXPECT_EQ(bits_to_value(eval_circuit(circ, in)), (x * y) & mask);
  }
}

TEST_P(ArithCircuitTest, DivMatchesInteger) {
  const std::size_t w = GetParam();
  CircuitBuilder b;
  const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
  b.set_outputs(b.div(a, c));
  const Circuit circ = b.build();
  Rng rng(w + 3);
  const std::uint64_t mask = (w == 64) ? ~0ULL : ((1ULL << w) - 1);
  for (int iter = 0; iter < 30; ++iter) {
    const std::uint64_t x = rng.next() & mask;
    const std::uint64_t y = (rng.next() & mask) | 1;  // avoid divide by zero
    auto in = value_to_bits(x, w);
    const auto yb = value_to_bits(y, w);
    in.insert(in.end(), yb.begin(), yb.end());
    EXPECT_EQ(bits_to_value(eval_circuit(circ, in)), x / y);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ArithCircuitTest,
                         ::testing::Values(4, 8, 15, 22, 32));

TEST(Circuit, ComparatorsAndMux) {
  const std::size_t w = 10;
  CircuitBuilder b;
  const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
  const auto sel = b.lt(a, c);
  Bus out = b.mux(sel, a, c);  // min(a, c)
  out.push_back(b.ge(a, c));
  out.push_back(b.eq(a, c));
  b.set_outputs(out);
  const Circuit circ = b.build();
  Rng rng(7);
  for (int iter = 0; iter < 100; ++iter) {
    const std::uint64_t x = rng.uniform(1 << w), y = rng.uniform(1 << w);
    auto in = value_to_bits(x, w);
    const auto yb = value_to_bits(y, w);
    in.insert(in.end(), yb.begin(), yb.end());
    const auto o = eval_circuit(circ, in);
    const auto min_bits = std::vector<bool>(o.begin(), o.begin() + w);
    EXPECT_EQ(bits_to_value(min_bits), std::min(x, y));
    EXPECT_EQ(o[w], x >= y);
    EXPECT_EQ(o[w + 1], x == y);
  }
}

TEST(Circuit, ModularAddSub) {
  const std::uint64_t p = 1000003;
  const std::size_t w = share_width(p);
  CircuitBuilder b;
  const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
  Bus out = b.add_mod(a, c, p);
  Bus out2 = b.sub_mod(a, c, p);
  out.insert(out.end(), out2.begin(), out2.end());
  b.set_outputs(out);
  const Circuit circ = b.build();
  Rng rng(17);
  for (int iter = 0; iter < 100; ++iter) {
    const std::uint64_t x = rng.uniform(p), y = rng.uniform(p);
    auto in = value_to_bits(x, w);
    const auto yb = value_to_bits(y, w);
    in.insert(in.end(), yb.begin(), yb.end());
    const auto o = eval_circuit(circ, in);
    const auto add_bits = std::vector<bool>(o.begin(), o.begin() + w);
    const auto sub_bits = std::vector<bool>(o.begin() + w, o.end());
    EXPECT_EQ(bits_to_value(add_bits), (x + y) % p);
    EXPECT_EQ(bits_to_value(sub_bits), (x + p - y) % p);
  }
}

TEST(Circuit, ConstantFoldingEmitsNoAndGates) {
  CircuitBuilder b;
  const Bus a = b.add_input_bus(8);
  // Multiplying by the constant 4 should fold to pure rewiring + adds of 0.
  const Bus c = b.constant_bus(4, 8);
  b.set_outputs(b.mul(a, c, 8));
  // A full 8x8 mul has ~64 ANDs from partial products; constant 4 has one
  // set bit so all partial-product ANDs fold away.
  EXPECT_LE(b.and_count(), 8u);
}

TEST(Garble, MatchesPlainEvalOnRandomCircuits) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    CircuitBuilder b;
    const std::size_t w = 8;
    const Bus a = b.add_input_bus(w), c = b.add_input_bus(w);
    const Bus sum = b.add(a, c);
    const Bus prod = b.mul(a, c, w);
    const auto cmp = b.lt(a, c);
    Bus out = b.mux(cmp, sum, prod);
    out.push_back(b.eq(a, c));
    b.set_outputs(out);
    const Circuit circ = b.build();

    std::vector<bool> inputs(2 * w);
    for (auto&& bit : inputs) bit = rng.next() & 1;
    EXPECT_EQ(garbled_eval(circ, inputs, rng), eval_circuit(circ, inputs));
  }
}

TEST(Garble, AllInputCombinationsTinyCircuit) {
  CircuitBuilder b;
  const auto x = b.add_input();
  const auto y = b.add_input();
  const auto z = b.add_input();
  // out = (x & y) ^ ~z  — exercises AND, XOR, NOT together.
  b.set_outputs({b.xor_gate(b.and_gate(x, y), b.not_gate(z))});
  const Circuit c = b.build();
  Rng rng(5);
  for (int m = 0; m < 8; ++m) {
    const std::vector<bool> in = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    EXPECT_EQ(garbled_eval(c, in, rng), eval_circuit(c, in)) << "mask " << m;
  }
}

TEST(Garble, TableSizeIsTwoLabelsPerAnd) {
  CircuitBuilder b;
  const Bus a = b.add_input_bus(16), c = b.add_input_bus(16);
  b.set_outputs(b.mul(a, c, 16));
  const Circuit circ = b.build();
  Rng rng(3);
  Garbler g(rng);
  const auto gc = g.garble(circ);
  EXPECT_EQ(gc.table.rows.size(), 2 * circ.and_count());
}

TEST(GcSession, TwoPartyAddModT) {
  const std::uint64_t t = 65537;
  const std::size_t w = share_width(t);
  CircuitBuilder b;
  const Bus sg = b.add_input_bus(w);  // garbler share
  const Bus se = b.add_input_bus(w);  // evaluator share
  b.set_outputs(b.add_mod(sg, se, t));
  const Circuit circ = b.build();

  Channel ch;
  FramedChannel fch(ch, FaultSpec{}, RetryPolicy{});
  Rng rng(77);
  GcSession session(fch, rng);
  session.offline(circ, RevealTo::kBoth);
  const std::uint64_t x = 12345, y = 54321;
  const auto out = session.online(value_to_bits(x, w), value_to_bits(y, w));
  EXPECT_EQ(bits_to_value(out), (x + y) % t);
  EXPECT_GT(ch.total_bytes(), 0u);
  EXPECT_GT(ch.flights(), 0u);
  EXPECT_GT(session.stats().and_gates, 0u);
}

TEST(GcSession, RevealToGarblerOnly) {
  CircuitBuilder b;
  const Bus a = b.add_input_bus(8), c = b.add_input_bus(8);
  b.set_outputs(b.add(a, c));
  const Circuit circ = b.build();
  Channel ch;
  FramedChannel fch(ch, FaultSpec{}, RetryPolicy{});
  Rng rng(79);
  GcSession session(fch, rng);
  session.offline(circ, RevealTo::kGarbler);
  const auto out = session.online(value_to_bits(100, 8), value_to_bits(55, 8));
  EXPECT_EQ(bits_to_value(out), 155u);
}

TEST(GcSession, OnlineBeforeOfflineThrows) {
  Channel ch;
  FramedChannel fch(ch, FaultSpec{}, RetryPolicy{});
  Rng rng(1);
  GcSession session(fch, rng);
  EXPECT_THROW(session.online({}, {}), std::logic_error);
}

TEST(GcSession, ChannelAccountsGarbledTables) {
  CircuitBuilder b;
  const Bus a = b.add_input_bus(16), c = b.add_input_bus(16);
  b.set_outputs(b.mul(a, c, 16));
  const Circuit circ = b.build();
  Channel ch;
  FramedChannel fch(ch, FaultSpec{}, RetryPolicy{});
  Rng rng(83);
  GcSession session(fch, rng);
  const auto before = ch.total_bytes();
  session.offline(circ, RevealTo::kGarbler);
  // Offline traffic must include at least the garbled tables.
  EXPECT_GE(ch.total_bytes() - before, 2 * 16 * circ.and_count());
}

TEST(PackBits, RoundTrip) {
  const std::vector<bool> bits = {1, 0, 1, 1, 0, 0, 0, 1, 1, 0, 1};
  EXPECT_EQ(unpack_bits(pack_bits(bits), bits.size()), bits);
}

TEST(ValueBits, RoundTrip) {
  for (std::uint64_t v : {0ULL, 1ULL, 255ULL, 65535ULL, 123456789ULL}) {
    EXPECT_EQ(bits_to_value(value_to_bits(v, 40)), v);
  }
}

}  // namespace
}  // namespace primer
