// Failure-injection tests: corrupting protocol material must change or
// break results, never silently pass through — this validates that the
// tests elsewhere are actually exercising the cryptography.
//
// The second half is the transport corruption matrix: every wire message
// kind a PRIMER inference uses, crossed with every fault class (truncate,
// bit-flip, wrong-kind, replay), must surface as a typed ProtocolError —
// never a crash, never a silently wrong result — and the retry layer must
// recover bit-identical results from recoverable faults (drop, duplicate,
// reorder) with the retry traffic visible in the cost model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <utility>

#include "gc/fixed_circuits.h"
#include "gc/garble.h"
#include "gc/protocol.h"
#include "he/encoder.h"
#include "he/he.h"
#include "net/crc32c.h"
#include "net/fault.h"
#include "net/frame.h"
#include "net/framed_channel.h"
#include "net/session.h"
#include "nn/model.h"
#include "proto/primer.h"
#include "proto/runtime.h"

namespace primer {
namespace {

TEST(FailureInjection, WrongSecretKeyDecryptsGarbage) {
  const HeContext ctx(make_params(HeProfile::kTest2048));
  Rng rng(1);
  KeyGenerator good(ctx, rng);
  KeyGenerator evil(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, good.secret_key(), rng);
  const Decryptor wrong_dec(ctx, evil.secret_key());

  const std::vector<u64> v = {1, 2, 3, 4, 5};
  const auto ct = enc.encrypt(encoder.encode(v));
  const auto out = encoder.decode(wrong_dec.decrypt(ct));
  int matches = 0;
  for (std::size_t i = 0; i < v.size(); ++i) matches += (out[i] == v[i]);
  EXPECT_LE(matches, 1);  // decryption under the wrong key is noise
}

TEST(FailureInjection, TamperedCiphertextChangesPlaintext) {
  const HeContext ctx(make_params(HeProfile::kTest2048));
  Rng rng(2);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Decryptor dec(ctx, keygen.secret_key());

  const std::vector<u64> v(16, 42);
  auto ct = enc.encrypt(encoder.encode(v));
  // Flip one RNS residue.
  ct.parts[0].limb(0)[7] ^= 1;
  const auto out = encoder.decode(dec.decrypt(ct));
  EXPECT_NE(out, std::vector<u64>(encoder.slot_count(), 0) /*placeholder*/);
  int diffs = 0;
  for (std::size_t i = 0; i < v.size(); ++i) diffs += (out[i] != v[i]);
  EXPECT_GT(diffs, 0);  // tampering is never silently absorbed
}

TEST(FailureInjection, CorruptedGarbledTableBreaksEvaluation) {
  CircuitBuilder b;
  const Bus x = b.add_input_bus(16), y = b.add_input_bus(16);
  b.set_outputs(b.mul(x, y, 16));
  const Circuit c = b.build();
  Rng rng(3);
  Garbler g(rng);
  auto gc = g.garble(c);

  std::vector<Label> in(static_cast<std::size_t>(c.num_inputs));
  std::vector<bool> bits(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    bits[i] = (rng.next() & 1) != 0;
    in[i] = Garbler::active_input(gc, i, bits[i]);
  }
  const auto good = GcEvaluator::eval(c, gc.table, in);

  // Corrupt one table row: downstream labels diverge.
  gc.table.rows[gc.table.rows.size() / 2].lo ^= 0xdeadbeef;
  const auto bad = GcEvaluator::eval(c, gc.table, in);
  EXPECT_NE(good.back().lo ^ bad.back().lo, 0u);
}

TEST(FailureInjection, WrongInputLabelProducesWrongResult) {
  CircuitBuilder b;
  const Bus x = b.add_input_bus(8), y = b.add_input_bus(8);
  b.set_outputs(b.add(x, y));
  const Circuit c = b.build();
  Rng rng(4);
  Garbler g(rng);
  const auto gc = g.garble(c);
  std::vector<Label> in(16);
  for (std::size_t i = 0; i < 16; ++i) {
    in[i] = Garbler::active_input(gc, i, false);
  }
  // A label that is neither W0 nor W1 (evaluator cheating / corruption).
  in[3] = Label{12345, 67890};
  const auto out = GcEvaluator::eval(c, gc.table, in);
  std::uint64_t decoded = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (Garbler::decode_output(gc, i, out[i])) decoded |= 1ULL << i;
  }
  EXPECT_NE(decoded, 0u);  // 0 + 0 should be 0; corruption breaks it
}

TEST(FailureInjection, TruncatedSerializedCiphertextThrows) {
  const HeContext ctx(make_params(HeProfile::kTest2048));
  Rng rng(5);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Evaluator eval(ctx);
  const auto ct = enc.encrypt(encoder.encode({1}));
  ByteWriter w;
  eval.serialize(ct, w);
  auto bytes = w.take();
  bytes.resize(bytes.size() / 2);
  ByteReader r(bytes);
  EXPECT_THROW((void)eval.deserialize(r), std::out_of_range);
}

// --- CRC32C & frame format ---------------------------------------------------

TEST(Crc32c, KnownAnswerAndChaining) {
  // Standard CRC32C check value for the ASCII digits "123456789".
  const char* msg = "123456789";
  EXPECT_EQ(crc32c(msg, 9), 0xe3069283u);
  // Chaining across an arbitrary split equals the one-shot CRC.
  for (std::size_t split : {std::size_t{0}, std::size_t{3}, std::size_t{8}}) {
    EXPECT_EQ(crc32c(msg + split, 9 - split, crc32c(msg, split)),
              crc32c(msg, 9));
  }
  EXPECT_EQ(crc32c(msg, 0), 0u);
}

TEST(Frame, EncodeParseRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251, 252};
  const auto frame = encode_frame(MessageKind::kGcTables, 42,
                                  payload.data(), payload.size());
  ASSERT_EQ(frame.size(), FrameHeader::kWireSize + payload.size());
  const FrameHeader h = parse_frame(frame, "test");
  EXPECT_EQ(h.kind, MessageKind::kGcTables);
  EXPECT_EQ(h.seq, 42u);
  EXPECT_EQ(h.payload_len, payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         frame.begin() + FrameHeader::kWireSize));
}

TEST(Frame, EveryHeaderDefectIsTyped) {
  const std::vector<std::uint8_t> payload(64, 7);
  const auto good = encode_frame(MessageKind::kCiphertexts, 0, payload.data(),
                                 payload.size());

  auto expect_kind = [](const std::vector<std::uint8_t>& f,
                        ProtocolErrorKind want) {
    try {
      (void)parse_frame(f, "test");
      FAIL() << "expected ProtocolError";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.kind(), want) << e.what();
    }
  };

  auto f = good;
  f.resize(FrameHeader::kWireSize - 1);
  expect_kind(f, ProtocolErrorKind::kTruncated);

  f = good;
  f.resize(f.size() - 5);  // length field now lies
  expect_kind(f, ProtocolErrorKind::kTruncated);

  f = good;
  f[0] ^= 0xff;
  expect_kind(f, ProtocolErrorKind::kBadMagic);

  f = good;
  f[4] = 9;
  expect_kind(f, ProtocolErrorKind::kBadVersion);

  f = good;
  f[FrameHeader::kWireSize + 10] ^= 0x10;  // payload bit-flip
  expect_kind(f, ProtocolErrorKind::kChecksumMismatch);

  f = good;
  f[FrameHeader::kSeqOffset] ^= 1;  // header bit-flip (CRC covers header)
  expect_kind(f, ProtocolErrorKind::kChecksumMismatch);
}

// --- FramedChannel -----------------------------------------------------------

RetryPolicy no_retry() {
  RetryPolicy p;
  p.max_attempts = 0;
  return p;
}

TEST(FramedChannel, RoundTripAndTypedEmptyRecv) {
  Channel ch;
  FramedChannel fch(ch, FaultSpec{}, RetryPolicy{});
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  fch.send(Party::kClient, MessageKind::kRingMatrix, payload);
  EXPECT_EQ(fch.recv_expect(Party::kServer, MessageKind::kRingMatrix),
            payload);
  // Nothing pending: typed error naming the receiving party and the kind.
  try {
    (void)fch.recv_expect(Party::kServer, MessageKind::kGcTables);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolErrorKind::kSequenceGap);
    EXPECT_NE(std::string(e.what()).find("server"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("gc_tables"), std::string::npos);
  }
}

TEST(FramedChannel, KindMismatchIsTypedAndNamed) {
  Channel ch;
  FramedChannel fch(ch, FaultSpec{}, RetryPolicy{});
  fch.send(Party::kClient, MessageKind::kOtSetup, std::vector<std::uint8_t>(8));
  try {
    (void)fch.recv_expect(Party::kServer, MessageKind::kCiphertexts);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolErrorKind::kKindMismatch);
    EXPECT_NE(std::string(e.what()).find("ciphertexts"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ot_setup"), std::string::npos);
  }
}

// Realistic payload for each message kind a full PRIMER inference ships.
std::vector<std::uint8_t> payload_for(MessageKind kind) {
  switch (kind) {
    case MessageKind::kControl:
      return {0x01};
    case MessageKind::kCiphertexts: {
      // Mirrors ProtocolContext::send_cts: u32 count, then u32-length-framed
      // serialized ciphertexts.
      static const std::vector<std::uint8_t> cached = [] {
        const HeContext ctx(make_params(HeProfile::kTest2048));
        Rng rng(11);
        KeyGenerator keygen(ctx, rng);
        const BatchEncoder encoder(ctx);
        const Encryptor enc(ctx, keygen.secret_key(), rng);
        const Evaluator eval(ctx);
        ByteWriter inner;
        eval.serialize(enc.encrypt(encoder.encode({1, 2, 3})), inner);
        ByteWriter w;
        w.u32(1);
        w.u32(static_cast<std::uint32_t>(inner.size()));
        w.bytes(inner.data().data(), inner.size());
        return w.take();
      }();
      return cached;
    }
    case MessageKind::kRingMatrix: {
      ByteWriter w;
      w.u32(2);
      w.u32(2);
      for (int i = 0; i < 4; ++i) {
        const std::int64_t v = 1000 + i;
        w.bytes(&v, 5);
      }
      return w.take();
    }
    case MessageKind::kGcTables:
    case MessageKind::kGcGarblerLabels:
      return std::vector<std::uint8_t>(8 * sizeof(Label), 0xab);
    case MessageKind::kGcTableChunk: {
      // u64 row_begin | u32 row_count | u32 total_rows | rows.
      std::vector<std::uint8_t> chunk(16 + 8 * sizeof(Label), 0xab);
      const std::uint64_t row_begin = 0;
      const std::uint32_t row_count = 8, total_rows = 8;
      std::memcpy(chunk.data(), &row_begin, 8);
      std::memcpy(chunk.data() + 8, &row_count, 4);
      std::memcpy(chunk.data() + 12, &total_rows, 4);
      return chunk;
    }
    case MessageKind::kGcDecodeBits:
    case MessageKind::kGcOutputBits:
      return {0b10110010, 0b00000001};
    case MessageKind::kOtSetup:
      return std::vector<std::uint8_t>(128 * 64, 0);
    case MessageKind::kOtReceiverColumns:
      return std::vector<std::uint8_t>(40 * 16, 0);
    case MessageKind::kOtSenderMasked:
      return std::vector<std::uint8_t>(40 * 32, 0);
    case MessageKind::kSessionHello: {
      SessionHello h;
      h.session_id = 1;
      h.params_hash = 0xabcdef12u;
      h.epochs = {{1, 0x11111111u}, {2, 0x22222222u}};
      return h.serialize();
    }
    case MessageKind::kSessionResume: {
      SessionResume r;
      r.agreed_epoch = 2;
      r.digest = 0x22222222u;
      return r.serialize();
    }
    case MessageKind::kKeyMaterial:
      // Manifest-shaped blob: u32 count, then u64 Galois elements.
      return std::vector<std::uint8_t>(4 + 3 * 8, 0x5a);
  }
  return {0x00};
}

// Corruption matrix: every message kind x every fault class must yield a
// typed ProtocolError from recv_expect (retries disabled), never a crash.
TEST(CorruptionMatrix, EveryKindEveryFaultThrowsTyped) {
  const MessageKind kinds[] = {
      MessageKind::kControl,         MessageKind::kCiphertexts,
      MessageKind::kRingMatrix,      MessageKind::kGcTables,
      MessageKind::kGcDecodeBits,    MessageKind::kGcGarblerLabels,
      MessageKind::kGcOutputBits,    MessageKind::kOtSetup,
      MessageKind::kOtReceiverColumns, MessageKind::kOtSenderMasked,
      MessageKind::kGcTableChunk,    MessageKind::kSessionHello,
      MessageKind::kSessionResume,   MessageKind::kKeyMaterial,
  };
  enum class Fault { kTruncateHeader, kTruncatePayload, kBitflip, kWrongKind, kReplay };
  const Fault faults[] = {Fault::kTruncateHeader, Fault::kTruncatePayload,
                          Fault::kBitflip, Fault::kWrongKind, Fault::kReplay};

  for (const MessageKind kind : kinds) {
    const auto payload = payload_for(kind);
    for (const Fault fault : faults) {
      SCOPED_TRACE(std::string(message_kind_name(kind)) + " / fault " +
                   std::to_string(static_cast<int>(fault)));
      Channel ch;
      FramedChannel fch(ch, FaultSpec{}, no_retry());
      auto frame = encode_frame(kind, 0, payload.data(), payload.size());
      switch (fault) {
        case Fault::kTruncateHeader:
          frame.resize(FrameHeader::kWireSize / 2);
          break;
        case Fault::kTruncatePayload:
          frame.resize(frame.size() - 1 - payload.size() / 3);
          break;
        case Fault::kBitflip:
          frame[FrameHeader::kWireSize + payload.size() / 2] ^= 0x04;
          break;
        case Fault::kWrongKind:
          frame[FrameHeader::kKindOffset] = static_cast<std::uint8_t>(
              (static_cast<std::size_t>(kind) + 1) % kMessageKindCount);
          reseal_frame(frame);  // checksum-valid, semantically wrong
          break;
        case Fault::kReplay:
          break;
      }
      ch.send(Party::kClient, frame);
      if (fault == Fault::kReplay) {
        ch.send(Party::kClient, frame);  // identical seq arrives twice
        EXPECT_EQ(fch.recv_expect(Party::kServer, kind), payload);
      }
      try {
        (void)fch.recv_expect(Party::kServer, kind);
        FAIL() << "expected ProtocolError";
      } catch (const ProtocolError& e) {
        switch (fault) {
          case Fault::kTruncateHeader:
          case Fault::kTruncatePayload:
            EXPECT_EQ(e.kind(), ProtocolErrorKind::kTruncated) << e.what();
            break;
          case Fault::kBitflip:
            EXPECT_EQ(e.kind(), ProtocolErrorKind::kChecksumMismatch)
                << e.what();
            break;
          case Fault::kWrongKind:
            EXPECT_EQ(e.kind(), ProtocolErrorKind::kKindMismatch) << e.what();
            break;
          case Fault::kReplay:
            EXPECT_EQ(e.kind(), ProtocolErrorKind::kSequenceGap) << e.what();
            break;
        }
      }
    }
  }
}

TEST(CorruptionMatrix, ValidFrameGarbagePayloadIsMalformed) {
  // A frame that passes every transport check but whose payload is not a
  // valid ciphertext batch must surface as kMalformed, not UB or a wild
  // allocation.
  ProtocolContext pc(HeProfile::kTest2048, 3, {1});
  ByteWriter w;
  w.u32(0xffffffffu);  // claims 4 billion ciphertexts
  pc.framed.send(Party::kServer, MessageKind::kCiphertexts, w.take());
  try {
    (void)pc.recv_cts(Party::kClient);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolErrorKind::kMalformed);
    EXPECT_NE(std::string(e.what()).find("client"), std::string::npos);
  }

  // Ring matrix with a lying shape.
  ByteWriter w2;
  w2.u32(64);
  w2.u32(64);
  pc.framed.send(Party::kServer, MessageKind::kRingMatrix, w2.take());
  try {
    (void)pc.recv_ring(Party::kClient, 2, 2);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolErrorKind::kMalformed);
  }
}

TEST(CorruptionMatrix, GcLabelPayloadSizeMismatchIsMalformed) {
  const std::uint64_t t = 257;
  const std::size_t w = share_width(t);
  CircuitBuilder b;
  const Bus sg = b.add_input_bus(w);
  const Bus se = b.add_input_bus(w);
  b.set_outputs(b.add_mod(sg, se, t));
  const Circuit circ = b.build();

  Channel ch;
  FramedChannel fch(ch, FaultSpec{}, no_retry());
  Rng rng(21);
  GcSession session(fch, rng);
  session.set_table_transfer(TableTransfer::kMonolithic);
  // Pre-load a checksum-valid kGcTables frame whose payload is one label
  // short of what the circuit requires; offline() must reject it.
  const std::size_t table_labels = 2 * circ.and_count();
  const std::vector<std::uint8_t> bad((table_labels - 1) * sizeof(Label), 0);
  ch.send(Party::kServer, encode_frame(MessageKind::kGcTables, 0, bad.data(),
                                       bad.size()));
  // The session's own send of the true tables lands at seq 1 and is
  // ignored; the evaluator parses the hostile seq-0 frame first.
  try {
    session.offline(circ, RevealTo::kBoth);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolErrorKind::kMalformed) << e.what();
  }
}

TEST(CorruptionMatrix, GcTableChunkStructuralDefectsAreMalformed) {
  const std::uint64_t t = 257;
  const std::size_t w = share_width(t);
  CircuitBuilder b;
  const Bus sg = b.add_input_bus(w);
  const Bus se = b.add_input_bus(w);
  b.set_outputs(b.add_mod(sg, se, t));
  const Circuit circ = b.build();
  const std::uint32_t total = static_cast<std::uint32_t>(2 * circ.and_count());

  // Checksum-valid kGcTableChunk frames with every structural defect the
  // streamed parser must reject: each is pre-loaded at seq 0 so the
  // evaluator parses it before the session's own (seq >= 1) chunks.
  auto chunk = [&](std::uint64_t row_begin, std::uint32_t row_count,
                   std::uint32_t total_rows, std::size_t body_labels) {
    std::vector<std::uint8_t> p(16 + body_labels * sizeof(Label), 0xcd);
    std::memcpy(p.data(), &row_begin, 8);
    std::memcpy(p.data() + 8, &row_count, 4);
    std::memcpy(p.data() + 12, &total_rows, 4);
    return p;
  };
  const std::vector<std::pair<const char*, std::vector<std::uint8_t>>> bad = {
      {"short header", std::vector<std::uint8_t>(7, 0xcd)},
      {"wrong total", chunk(0, 2, total + 2, 2)},
      {"begin skips ahead", chunk(2, 2, total, 2)},
      {"zero rows", chunk(0, 0, total, 0)},
      {"overruns table", chunk(0, total + 2, total, total + 2)},
      {"body/count mismatch", chunk(0, 2, total, 1)},
  };
  for (const auto& [what, payload] : bad) {
    SCOPED_TRACE(what);
    Channel ch;
    FramedChannel fch(ch, FaultSpec{}, no_retry());
    Rng rng(21);
    GcSession session(fch, rng);
    session.set_table_transfer(TableTransfer::kStreamed);
    ch.send(Party::kServer, encode_frame(MessageKind::kGcTableChunk, 0,
                                         payload.data(), payload.size()));
    try {
      session.offline(circ, RevealTo::kBoth);
      FAIL() << "expected ProtocolError";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.kind(), ProtocolErrorKind::kMalformed) << e.what();
    }
  }
}

// --- retry / recovery --------------------------------------------------------

TEST(RetryLayer, GcSessionRecoversUnderDropDupReorder) {
  const std::uint64_t t = 65537;
  const std::size_t w = share_width(t);
  CircuitBuilder b;
  const Bus sg = b.add_input_bus(w);
  const Bus se = b.add_input_bus(w);
  b.set_outputs(b.add_mod(sg, se, t));
  const Circuit circ = b.build();
  const std::uint64_t x = 40000, y = 30000;

  auto run = [&](const FaultSpec& spec, TableTransfer transfer) {
    Channel ch;
    FramedChannel fch(ch, spec, RetryPolicy{});
    Rng rng(77);
    GcSession session(fch, rng);
    session.set_table_transfer(transfer);
    // Tiny chunks force many kGcTableChunk frames through the lossy wire.
    session.set_stream_chunk_rows(2);
    session.offline(circ, RevealTo::kBoth);
    const auto out =
        session.online(value_to_bits(x, w), value_to_bits(y, w));
    return std::make_pair(bits_to_value(out), fch.stats());
  };

  FaultSpec lossy;
  lossy.seed = 2024;
  lossy.drop = 0.25;
  lossy.duplicate = 0.25;
  lossy.reorder = 0.25;

  for (const TableTransfer transfer :
       {TableTransfer::kMonolithic, TableTransfer::kStreamed}) {
    SCOPED_TRACE(transfer == TableTransfer::kStreamed ? "streamed"
                                                      : "monolithic");
    const auto clean = run(FaultSpec{}, transfer);
    ASSERT_EQ(clean.first, (x + y) % t);
    EXPECT_EQ(clean.second.retransmit_frames, 0u);

    const auto faulty = run(lossy, transfer);
    // Bit-identical result despite the injected faults...
    EXPECT_EQ(faulty.first, clean.first);
    // ...and the recovery work is visible, not silent.
    EXPECT_GT(faulty.second.retransmit_frames +
                  faulty.second.duplicates_dropped + faulty.second.retry_rounds,
              0u);
    EXPECT_GT(faulty.second.retransmit_bytes + faulty.second.control_bytes,
              0u);
  }
}

struct EnvGuard {
  explicit EnvGuard(std::vector<std::pair<const char*, const char*>> kv)
      : keys_() {
    for (const auto& [k, v] : kv) {
      keys_.push_back(k);
      ::setenv(k, v, 1);
    }
  }
  ~EnvGuard() {
    for (const char* k : keys_) ::unsetenv(k);
  }
  std::vector<const char*> keys_;
};

TEST(RetryLayer, FullInferenceBitIdenticalUnderSeededFaults) {
  Rng wrng(2025);
  const auto weights = quantize(BertWeightsD::random(bert_nano(), wrng));
  const FixedBert ref(weights);
  const std::vector<std::size_t> tokens = {3, 17, 9, 28};

  EnvGuard env({{"PRIMER_FAULT_SEED", "42"},
                {"PRIMER_FAULT_DROP", "0.03"},
                {"PRIMER_FAULT_DUP", "0.03"},
                {"PRIMER_FAULT_REORDER", "0.03"}});
  PrimerEngine engine(weights, PrimerVariant::kFP);
  const auto result = engine.run(tokens);
  // The lossy wire must not change a single logit bit.
  EXPECT_EQ(result.logits, ref.forward(tokens));
  // Retry traffic reaches the run-level cost surface.
  EXPECT_GT(result.retransmits, 0u);
  EXPECT_GT(result.retransmit_bytes, 0u);
  // Every phase that decrypted reported a positive noise margin.
  EXPECT_GT(result.min_noise_margin_bits, 0.0);
}

TEST(RetryLayer, UnrecoverableCorruptionSurfacesAsProtocolError) {
  Rng wrng(2025);
  const auto weights = quantize(BertWeightsD::random(bert_nano(), wrng));
  EnvGuard env({{"PRIMER_FAULT_SEED", "7"},
                {"PRIMER_FAULT_BITFLIP", "1.0"},
                {"PRIMER_RETRY_MAX", "2"}});
  PrimerEngine engine(weights, PrimerVariant::kF);
  EXPECT_THROW((void)engine.run({3, 17, 9, 28}), ProtocolError);
}

// Seed-driven soak cell: tools/corruption_soak.py runs this test across N
// seeds with PRIMER_FAULT_* set; any outcome other than a correct result or
// a typed ProtocolError (crash, hang, silent corruption) fails the job.
TEST(RetryLayer, SeededSoakGcSessionNeverCrashes) {
  FaultSpec spec = FaultSpec::from_env();
  if (!spec.any()) {
    spec.drop = 0.1;
    spec.duplicate = 0.1;
    spec.reorder = 0.1;
    spec.truncate = 0.03;
    spec.bitflip = 0.03;
    spec.delay = 0.05;
  }
  const std::uint64_t t = 65537;
  const std::size_t w = share_width(t);
  CircuitBuilder b;
  const Bus sg = b.add_input_bus(w);
  const Bus se = b.add_input_bus(w);
  b.set_outputs(b.add_mod(sg, se, t));
  const Circuit circ = b.build();

  Channel ch;
  FramedChannel fch(ch, spec, RetryPolicy::from_env());
  Rng rng(99);
  GcSession session(fch, rng);
  try {
    session.offline(circ, RevealTo::kBoth);
    const auto out = session.online(value_to_bits(11111, w),
                                    value_to_bits(22222, w));
    // If the transport recovered, the answer must be exact.
    EXPECT_EQ(bits_to_value(out), (11111ull + 22222ull) % t);
  } catch (const ProtocolError&) {
    // Unrecoverable corruption detected and typed — acceptable outcome.
  }
}

// --- typed transport primitives ----------------------------------------------

// The raw Channel is the bottom of the transport stack; even below the
// framing layer, "nothing pending" must be a typed retryable ProtocolError
// (a sequence gap the resume handshake can heal), never a bare
// std::runtime_error that bypasses the retry/restart taxonomy.
TEST(FailureInjection, BareChannelRecvOnEmptyQueueIsTypedRetryable) {
  Channel ch;
  try {
    (void)ch.recv(Party::kClient);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolErrorKind::kSequenceGap);
    EXPECT_TRUE(e.retryable());
    EXPECT_NE(std::string(e.what()).find("client"), std::string::npos);
  }
  // A pending message still round-trips untouched.
  ch.send(Party::kServer, std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_EQ(ch.recv(Party::kClient), (std::vector<std::uint8_t>{1, 2, 3}));
}

// Deterministic hostile corruption: PRIMER_FAULT_HOSTILE_AFTER mutates the
// Nth wire frame *and reseals its checksum*, so the defect survives the
// transport layer and must be caught by structural validation — a fatal
// kMalformed, not a retryable CRC error the retry layer would absorb.
TEST(FailureInjection, HostileResealedFrameIsFatalMalformed) {
  Rng wrng(2025);
  const auto weights = quantize(BertWeightsD::random(bert_nano(), wrng));
  // Frame 1 is the key-transfer manifest; flipping the high bit of its count
  // field claims an absurd number of Galois keys.
  EnvGuard env(std::vector<std::pair<const char*, const char*>>{{"PRIMER_FAULT_HOSTILE_AFTER", "1"}});
  PrimerEngine engine(weights, PrimerVariant::kF);
  try {
    (void)engine.run({3, 17, 9, 28});
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolErrorKind::kMalformed) << e.what();
    EXPECT_FALSE(e.retryable());
  }
}

// --- env-knob validation (SessionOptions / FaultSpec / RetryPolicy) ----------

// Malformed PRIMER_* env values must fail loudly at parse time, not be
// silently read as 0 and change behavior.
TEST(EnvValidation, MalformedValuesFailLoudly) {
  {
    EnvGuard env(std::vector<std::pair<const char*, const char*>>{{"PRIMER_FAULT_DROP", "abc"}});
    EXPECT_THROW((void)FaultSpec::from_env(), std::invalid_argument);
  }
  {
    EnvGuard env(std::vector<std::pair<const char*, const char*>>{{"PRIMER_FAULT_DROP", "0.25xyz"}});  // trailing junk
    EXPECT_THROW((void)FaultSpec::from_env(), std::invalid_argument);
  }
  {
    EnvGuard env(std::vector<std::pair<const char*, const char*>>{{"PRIMER_FAULT_KILL_AFTER", "-3"}});  // negative into u64
    EXPECT_THROW((void)FaultSpec::from_env(), std::invalid_argument);
  }
  {
    EnvGuard env(std::vector<std::pair<const char*, const char*>>{{"PRIMER_RETRY_MAX", "many"}});
    EXPECT_THROW((void)RetryPolicy::from_env(), std::invalid_argument);
  }
  {
    EnvGuard env(std::vector<std::pair<const char*, const char*>>{{"PRIMER_PHASE_DEADLINE_S", "1e"}});
    EXPECT_THROW((void)SessionOptions::from_env(), std::invalid_argument);
  }
  {
    EnvGuard env(std::vector<std::pair<const char*, const char*>>{{"PRIMER_FAULT_STALL_S", "inf"}});  // non-finite
    EXPECT_THROW((void)FaultSpec::from_env(), std::invalid_argument);
  }
}

// Out-of-range but well-formed values clamp deterministically to the knob's
// documented domain.
TEST(EnvValidation, OutOfRangeValuesClampDeterministically) {
  {
    EnvGuard env({{"PRIMER_FAULT_DROP", "2.5"}, {"PRIMER_FAULT_DUP", "-0.5"}});
    const FaultSpec s = FaultSpec::from_env();
    EXPECT_DOUBLE_EQ(s.drop, 1.0);
    EXPECT_DOUBLE_EQ(s.duplicate, 0.0);
  }
  {
    EnvGuard env({{"PRIMER_RETRY_MAX", "999999"},
                  {"PRIMER_RETRY_BACKOFF_S", "1000"}});
    const RetryPolicy p = RetryPolicy::from_env();
    EXPECT_EQ(p.max_attempts, 1000);
    EXPECT_DOUBLE_EQ(p.backoff_s, 60.0);
  }
  {
    EnvGuard env(std::vector<std::pair<const char*, const char*>>{{"PRIMER_PHASE_DEADLINE_S", "-5"}});
    const SessionOptions o = SessionOptions::from_env();
    EXPECT_DOUBLE_EQ(o.phase_deadline_s, 0.0);
  }
}

// Unset and empty values keep defaults (no accidental zeroing).
TEST(EnvValidation, UnsetAndEmptyKeepDefaults) {
  EnvGuard env({{"PRIMER_FAULT_DROP", ""}, {"PRIMER_RETRY_MAX", "  "}});
  const FaultSpec s = FaultSpec::from_env();
  EXPECT_DOUBLE_EQ(s.drop, FaultSpec{}.drop);
  const RetryPolicy p = RetryPolicy::from_env();
  EXPECT_EQ(p.max_attempts, RetryPolicy{}.max_attempts);
}

// --- noise budget ------------------------------------------------------------

TEST(NoiseBudget, ExhaustedBudgetThrowsInsteadOfGarbage) {
  const HeContext ctx(make_params(HeProfile::kTest2048));
  Rng rng(6);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Decryptor dec(ctx, keygen.secret_key());

  const Evaluator eval(ctx);
  auto ct = enc.encrypt(encoder.encode({5, 6, 7}));
  EXPECT_GT(dec.estimated_budget(ct), 0.0);
  EXPECT_NO_THROW((void)dec.decrypt(ct));

  // A tracked-noise scare on a healthy ciphertext must NOT throw: the
  // worst-case estimate trips the screen, the measured fallback clears it.
  auto scare = ct;
  scare.noise_log2 = ctx.params().log2_q();
  EXPECT_LT(dec.estimated_budget(scare), 0.0);
  EXPECT_NO_THROW((void)dec.decrypt(scare));

  // Genuinely destroy the ciphertext: each full-range plain multiply adds
  // ~log2(n*t) bits of real noise, so a few of them wrap past q on the
  // 80-bit test profile.  Decrypt must refuse instead of returning garbage.
  std::vector<u64> big(encoder.slot_count());
  Rng noise_rng(7);
  noise_rng.fill_uniform_mod(big, ctx.t());
  const Plaintext heavy = encoder.encode(big);
  for (int i = 0; i < 4; ++i) eval.multiply_plain_inplace(ct, heavy);
  EXPECT_LT(dec.noise_budget(ct), 0.01);  // measured: past the cliff
  try {
    (void)dec.decrypt(ct);
    FAIL() << "expected NoiseBudgetExhausted";
  } catch (const NoiseBudgetExhausted& e) {
    EXPECT_LT(e.estimated_budget_bits(), 0.01);
  }
  // The measurement path must still be able to inspect such a ciphertext.
  EXPECT_NO_THROW((void)dec.noise_budget(ct));
}

TEST(NoiseBudget, EstimateIsConservativeThroughOps) {
  const HeContext ctx(make_params(HeProfile::kTest2048));
  Rng rng(7);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Decryptor dec(ctx, keygen.secret_key());
  const Evaluator eval(ctx);

  std::vector<u64> v(encoder.slot_count());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i % ctx.t();
  auto a = enc.encrypt(encoder.encode(v));
  auto b = enc.encrypt(encoder.encode(v));
  eval.add_inplace(a, b);
  eval.multiply_plain_inplace(a, encoder.encode(std::vector<u64>(v.size(), 3)));
  eval.add_inplace(a, b);

  const double estimated = dec.estimated_budget(a);
  const double measured = dec.noise_budget(a);
  // The tracked estimate must never promise more budget than reality.
  EXPECT_GT(estimated, 0.0);
  EXPECT_LE(estimated, measured);
}

TEST(NoiseBudget, DecryptorTracksMinMargin) {
  const HeContext ctx(make_params(HeProfile::kTest2048));
  Rng rng(8);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Decryptor dec(ctx, keygen.secret_key());
  const Evaluator eval(ctx);

  (void)dec.take_min_margin();  // reset
  auto fresh = enc.encrypt(encoder.encode({1}));
  auto noisy = enc.encrypt(encoder.encode({2}));
  eval.multiply_plain_inplace(noisy,
                              encoder.encode(std::vector<u64>(1, 1000)));
  (void)dec.decrypt(fresh);
  (void)dec.decrypt(noisy);
  const double margin = dec.take_min_margin();
  EXPECT_DOUBLE_EQ(margin, dec.estimated_budget(noisy));
  // Consumed: next read is +inf until another decryption happens.
  EXPECT_TRUE(std::isinf(dec.take_min_margin()));
}

// Satellite: a noise-budget exhaustion mid-inference must surface from
// PrimerEngine::run as the typed NoiseBudgetExhausted — not garbage logits —
// and the partial run result must carry the margin that tripped the guard.
TEST(NoiseBudget, ExhaustionPropagatesThroughPrimerEngineRun) {
  Rng wrng(2026);
  const auto weights = quantize(BertWeightsD::random(bert_nano(), wrng));
  // An absurd floor makes the very first decryption refuse deterministically.
  EnvGuard env(std::vector<std::pair<const char*, const char*>>{
      {"PRIMER_NOISE_FLOOR_BITS", "10000"}});
  PrimerEngine engine(weights, PrimerVariant::kFP);
  try {
    (void)engine.run({3, 17, 9, 28});
    FAIL() << "expected NoiseBudgetExhausted";
  } catch (const NoiseBudgetExhausted& e) {
    EXPECT_GT(e.estimated_budget_bits(), 0.0);   // healthy ct, hostile floor
    EXPECT_LT(e.estimated_budget_bits(), 10000.0);
  }
  // The engine snapshotted what the attempt saw before refusing.
  ASSERT_NE(engine.last_partial(), nullptr);
  const PrimerRunResult& partial = *engine.last_partial();
  EXPECT_TRUE(std::isfinite(partial.min_noise_margin_bits));
  EXPECT_GT(partial.min_noise_margin_bits, 0.0);
  EXPECT_GT(partial.total_bytes, 0u);  // some traffic happened before the trip
}

TEST(NoiseBudget, DeserializeRejectsInsaneNoiseAndPartCount) {
  const HeContext ctx(make_params(HeProfile::kTest2048));
  Rng rng(9);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Evaluator eval(ctx);
  const auto ct = enc.encrypt(encoder.encode({1, 2}));

  ByteWriter w;
  eval.serialize(ct, w);
  auto bytes = w.take();

  {
    // NaN noise estimate would disarm the decrypt guard.
    auto evil = bytes;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::memcpy(evil.data() + evil.size() - sizeof(double), &nan, sizeof nan);
    ByteReader r(evil);
    EXPECT_THROW((void)eval.deserialize(r), std::out_of_range);
  }
  {
    // Hostile part count.
    auto evil = bytes;
    const std::uint32_t parts = 0x7fffffff;
    std::memcpy(evil.data(), &parts, sizeof parts);
    ByteReader r(evil);
    EXPECT_THROW((void)eval.deserialize(r), std::out_of_range);
  }
}

}  // namespace
}  // namespace primer
