// Failure-injection tests: corrupting protocol material must change or
// break results, never silently pass through — this validates that the
// tests elsewhere are actually exercising the cryptography.
#include <gtest/gtest.h>

#include "gc/garble.h"
#include "gc/protocol.h"
#include "he/encoder.h"
#include "he/he.h"

namespace primer {
namespace {

TEST(FailureInjection, WrongSecretKeyDecryptsGarbage) {
  const HeContext ctx(make_params(HeProfile::kTest2048));
  Rng rng(1);
  KeyGenerator good(ctx, rng);
  KeyGenerator evil(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, good.secret_key(), rng);
  const Decryptor wrong_dec(ctx, evil.secret_key());

  const std::vector<u64> v = {1, 2, 3, 4, 5};
  const auto ct = enc.encrypt(encoder.encode(v));
  const auto out = encoder.decode(wrong_dec.decrypt(ct));
  int matches = 0;
  for (std::size_t i = 0; i < v.size(); ++i) matches += (out[i] == v[i]);
  EXPECT_LE(matches, 1);  // decryption under the wrong key is noise
}

TEST(FailureInjection, TamperedCiphertextChangesPlaintext) {
  const HeContext ctx(make_params(HeProfile::kTest2048));
  Rng rng(2);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Decryptor dec(ctx, keygen.secret_key());

  const std::vector<u64> v(16, 42);
  auto ct = enc.encrypt(encoder.encode(v));
  // Flip one RNS residue.
  ct.parts[0].limb(0)[7] ^= 1;
  const auto out = encoder.decode(dec.decrypt(ct));
  EXPECT_NE(out, std::vector<u64>(encoder.slot_count(), 0) /*placeholder*/);
  int diffs = 0;
  for (std::size_t i = 0; i < v.size(); ++i) diffs += (out[i] != v[i]);
  EXPECT_GT(diffs, 0);  // tampering is never silently absorbed
}

TEST(FailureInjection, CorruptedGarbledTableBreaksEvaluation) {
  CircuitBuilder b;
  const Bus x = b.add_input_bus(16), y = b.add_input_bus(16);
  b.set_outputs(b.mul(x, y, 16));
  const Circuit c = b.build();
  Rng rng(3);
  Garbler g(rng);
  auto gc = g.garble(c);

  std::vector<Label> in(static_cast<std::size_t>(c.num_inputs));
  std::vector<bool> bits(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    bits[i] = (rng.next() & 1) != 0;
    in[i] = Garbler::active_input(gc, i, bits[i]);
  }
  const auto good = GcEvaluator::eval(c, gc.table, in);

  // Corrupt one table row: downstream labels diverge.
  gc.table.rows[gc.table.rows.size() / 2].lo ^= 0xdeadbeef;
  const auto bad = GcEvaluator::eval(c, gc.table, in);
  EXPECT_NE(good.back().lo ^ bad.back().lo, 0u);
}

TEST(FailureInjection, WrongInputLabelProducesWrongResult) {
  CircuitBuilder b;
  const Bus x = b.add_input_bus(8), y = b.add_input_bus(8);
  b.set_outputs(b.add(x, y));
  const Circuit c = b.build();
  Rng rng(4);
  Garbler g(rng);
  const auto gc = g.garble(c);
  std::vector<Label> in(16);
  for (std::size_t i = 0; i < 16; ++i) {
    in[i] = Garbler::active_input(gc, i, false);
  }
  // A label that is neither W0 nor W1 (evaluator cheating / corruption).
  in[3] = Label{12345, 67890};
  const auto out = GcEvaluator::eval(c, gc.table, in);
  std::uint64_t decoded = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (Garbler::decode_output(gc, i, out[i])) decoded |= 1ULL << i;
  }
  EXPECT_NE(decoded, 0u);  // 0 + 0 should be 0; corruption breaks it
}

TEST(FailureInjection, TruncatedSerializedCiphertextThrows) {
  const HeContext ctx(make_params(HeProfile::kTest2048));
  Rng rng(5);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Evaluator eval(ctx);
  const auto ct = enc.encrypt(encoder.encode({1}));
  ByteWriter w;
  eval.serialize(ct, w);
  auto bytes = w.take();
  bytes.resize(bytes.size() / 2);
  ByteReader r(bytes);
  EXPECT_THROW((void)eval.deserialize(r), std::out_of_range);
}

}  // namespace
}  // namespace primer
