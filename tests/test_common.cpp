// Unit tests for src/common: RNG determinism and distributions, fixed-point
// codec, serialization round-trips, matrix algebra.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "common/fixed_point.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/timing.h"

namespace primer {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBoundRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, CbdRangeAndMean) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.cbd(2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / 20000, 0.0, 0.05);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(FixedPoint, EncodeDecodeRoundTrip) {
  for (double x : {0.0, 1.0, -1.0, 0.5, -0.25, 3.75, -12.125}) {
    EXPECT_DOUBLE_EQ(fp_decode(fp_encode(x)), x);
  }
}

TEST(FixedPoint, SaturatesAtRange) {
  const FixedPointFormat f;
  EXPECT_EQ(fp_encode(1e9), f.max_raw());
  EXPECT_EQ(fp_encode(-1e9), f.min_raw());
}

TEST(FixedPoint, TruncateMatchesDivision) {
  const FixedPointFormat f;
  const std::int64_t a = fp_encode(1.5, f);
  const std::int64_t b = fp_encode(2.25, f);
  const std::int64_t prod = fp_truncate(a * b, f);
  EXPECT_NEAR(fp_decode(prod, f), 1.5 * 2.25, 1.0 / f.scale());
}

TEST(FixedPoint, TruncateNegativeRoundsTowardNegInfinity) {
  const FixedPointFormat f;
  const std::int64_t a = fp_encode(-1.5, f);
  const std::int64_t b = fp_encode(0.5, f);
  EXPECT_NEAR(fp_decode(fp_truncate(a * b, f)), -0.75, 1.0 / f.scale());
}

TEST(FixedPoint, RingRoundTrip) {
  const std::uint64_t t = 65537;
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                         std::int64_t{12345}, std::int64_t{-32000}}) {
    EXPECT_EQ(fp_from_ring(fp_to_ring(v, t), t), v);
  }
}

TEST(FixedPoint, RingHalfBoundary) {
  const std::uint64_t t = 101;
  EXPECT_EQ(fp_from_ring(50, t), 50);   // t/2 = 50 -> positive
  EXPECT_EQ(fp_from_ring(51, t), -50);  // above half -> negative
}

TEST(Serialize, PrimitiveRoundTrip) {
  ByteWriter w;
  w.u8(7);
  w.u32(123456);
  w.u64(0xdeadbeefcafebabeULL);
  w.i64(-42);
  w.f64(3.25);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 123456u);
  EXPECT_EQ(r.u64(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VectorRoundTrip) {
  ByteWriter w;
  w.vec_u64({1, 2, 3});
  w.vec_i64({-1, 0, 5});
  ByteReader r(w.data());
  EXPECT_EQ(r.vec_u64(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.vec_i64(), (std::vector<std::int64_t>{-1, 0, 5}));
}

TEST(Serialize, TruncatedReadThrows) {
  ByteWriter w;
  w.u32(1);
  ByteReader r(w.data());
  r.u32();
  EXPECT_THROW(r.u64(), std::out_of_range);
}

TEST(Serialize, HugeReadDoesNotOverflowBoundsCheck) {
  // A request near SIZE_MAX used to wrap `pos_ + n` and pass the check.
  ByteWriter w;
  w.u64(7);
  ByteReader r(w.data());
  char sink[8];
  // Volatile so the huge size is not a compile-time constant (silences the
  // static memcpy-bound diagnostic; the check throws before any copy).
  volatile std::size_t huge = std::numeric_limits<std::size_t>::max() - 2;
  EXPECT_THROW(r.bytes(sink, huge), std::out_of_range);
  EXPECT_THROW(r.skip(huge), std::out_of_range);
  EXPECT_EQ(r.u64(), 7u);  // reader still usable at its old position
}

TEST(Serialize, HostileVectorLengthThrowsBeforeAllocating) {
  // A 64-bit length field demanding ~2^64 elements must be rejected before
  // the vector is sized, and the message must carry offset and size.
  ByteWriter w;
  w.u64(std::numeric_limits<std::uint64_t>::max() / 4);  // length only
  ByteReader r(w.data());
  try {
    (void)r.vec_u64();
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("offset"), std::string::npos) << msg;
    EXPECT_NE(msg.find("length"), std::string::npos) << msg;
  }
  ByteWriter w2;
  w2.u64(std::numeric_limits<std::uint64_t>::max() / 4);
  ByteReader r2(w2.data());
  EXPECT_THROW((void)r2.vec_i64(), std::out_of_range);
}

TEST(Matrix, MultiplyIdentity) {
  Rng rng(3);
  const MatI a = random_fp_matrix(rng, 4, 4, -2, 2);
  EXPECT_EQ(a * MatI::identity(4), a);
  EXPECT_EQ(MatI::identity(4) * a, a);
}

TEST(Matrix, MultiplyKnownValues) {
  MatI a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  MatI b(3, 2);
  b(0, 0) = 7;  b(0, 1) = 8;
  b(1, 0) = 9;  b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  const MatI c = a * b;
  EXPECT_EQ(c(0, 0), 58);
  EXPECT_EQ(c(0, 1), 64);
  EXPECT_EQ(c(1, 0), 139);
  EXPECT_EQ(c(1, 1), 154);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(5);
  const MatI a = random_fp_matrix(rng, 3, 7, -1, 1);
  EXPECT_EQ(a.transposed().transposed(), a);
}

TEST(Matrix, ShapeMismatchThrows) {
  MatI a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  MatI c(4, 4);
  EXPECT_THROW(a + c, std::invalid_argument);
}

TEST(Matrix, AtBoundsCheck) {
  MatI a(2, 2);
  EXPECT_THROW(a.at(2, 0), std::out_of_range);
  EXPECT_THROW(a.at(0, 2), std::out_of_range);
}

TEST(Matrix, FpMatmulMatchesFloat) {
  Rng rng(21);
  const MatI a = random_fp_matrix(rng, 5, 6, -1.5, 1.5);
  const MatI b = random_fp_matrix(rng, 6, 4, -1.5, 1.5);
  const MatI c = fp_matmul(a, b);
  const MatD fa = to_double(a), fb = to_double(b);
  const MatD fc = fa * fb;
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      EXPECT_NEAR(fp_decode(c(i, j)), fc(i, j), 0.05)
          << "entry " << i << "," << j;
    }
  }
}

TEST(Timing, StopwatchAdvances) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += std::sqrt(static_cast<double>(i));
  EXPECT_GT(sw.seconds(), 0.0);
}

TEST(Timing, PhaseCostAccumulates) {
  CostAccumulator acc;
  acc.at("online", "qkv").compute_seconds = 1.5;
  acc.at("online", "softmax").compute_seconds = 0.5;
  acc.at("online", "softmax").bytes_sent = 100;
  const PhaseCost total = acc.phase_total("online");
  EXPECT_DOUBLE_EQ(total.compute_seconds, 2.0);
  EXPECT_EQ(total.bytes_sent, 100u);
  EXPECT_DOUBLE_EQ(acc.phase_total("offline").compute_seconds, 0.0);
}

}  // namespace
}  // namespace primer
