// Tests for the HE substrate: parameter generation, CRT composition,
// encrypt/decrypt round-trips, homomorphic add / plain-mult / ct-mult /
// rotations, batching semantics, noise budget behaviour, serialization.
//
// All tests run on the kTest2048 profile (fast, NOT secure) — the secure
// profiles use identical code paths with bigger tables.
#include <gtest/gtest.h>

#include <memory>

#include "common/fixed_point.h"
#include "he/encoder.h"
#include "he/he.h"
#include "he/u256.h"

namespace primer {
namespace {

class HeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ctx_ = new HeContext(make_params(HeProfile::kTest2048));
    rng_ = new Rng(2024);
    keygen_ = new KeyGenerator(*ctx_, *rng_);
    pk_ = new PublicKey(keygen_->make_public_key());
    rk_ = new RelinKey(keygen_->make_relin_key());
    gk_ = new GaloisKeys(
        keygen_->make_galois_keys({1, 2, -1, 5}, /*include_row_swap=*/true));
    encoder_ = new BatchEncoder(*ctx_);
    enc_sym_ = new Encryptor(*ctx_, keygen_->secret_key(), *rng_);
    enc_pub_ = new Encryptor(*ctx_, *pk_, *rng_);
    dec_ = new Decryptor(*ctx_, keygen_->secret_key());
    eval_ = new Evaluator(*ctx_);
  }

  static void TearDownTestSuite() {
    delete eval_; delete dec_; delete enc_pub_; delete enc_sym_;
    delete encoder_; delete gk_; delete rk_; delete pk_; delete keygen_;
    delete rng_; delete ctx_;
    ctx_ = nullptr;
  }

  static std::vector<u64> random_slots(u64 bound, std::size_t count) {
    std::vector<u64> v(count);
    for (auto& x : v) x = rng_->uniform(bound);
    return v;
  }

  static HeContext* ctx_;
  static Rng* rng_;
  static KeyGenerator* keygen_;
  static PublicKey* pk_;
  static RelinKey* rk_;
  static GaloisKeys* gk_;
  static BatchEncoder* encoder_;
  static Encryptor* enc_sym_;
  static Encryptor* enc_pub_;
  static Decryptor* dec_;
  static Evaluator* eval_;
};

HeContext* HeTest::ctx_ = nullptr;
Rng* HeTest::rng_ = nullptr;
KeyGenerator* HeTest::keygen_ = nullptr;
PublicKey* HeTest::pk_ = nullptr;
RelinKey* HeTest::rk_ = nullptr;
GaloisKeys* HeTest::gk_ = nullptr;
BatchEncoder* HeTest::encoder_ = nullptr;
Encryptor* HeTest::enc_sym_ = nullptr;
Encryptor* HeTest::enc_pub_ = nullptr;
Decryptor* HeTest::dec_ = nullptr;
Evaluator* HeTest::eval_ = nullptr;

TEST_F(HeTest, ParamsSatisfyNttConstraints) {
  const auto& p = ctx_->params();
  EXPECT_EQ(p.poly_degree, 2048u);
  for (u64 q : p.q) EXPECT_EQ((q - 1) % (2 * p.poly_degree), 0u);
  EXPECT_EQ((p.t - 1) % (2 * p.poly_degree), 0u);
}

TEST_F(HeTest, SecureProfilesMeetStandardBounds) {
  const auto light = make_params(HeProfile::kLight4096);
  EXPECT_TRUE(light.secure_128);
  EXPECT_LE(light.log2_q(), 109.0);
  const auto prod = make_params(HeProfile::kProd8192);
  EXPECT_TRUE(prod.secure_128);
  EXPECT_LE(prod.log2_q(), 218.0);
  EXPECT_GT(prod.t, u64{1} << 40);  // holds BERT-base MAC accumulations
}

TEST_F(HeTest, U256Arithmetic) {
  U256 a = U256::from_u64(~0ULL);
  U256 b = a + U256::from_u64(1);
  EXPECT_EQ(b.limb[0], 0u);
  EXPECT_EQ(b.limb[1], 1u);
  EXPECT_EQ((b - U256::from_u64(1)).limb[0], ~0ULL);
  const U256 c = U256::from_u64(1234567).mul_u64(7654321);
  EXPECT_EQ(c.limb[0], 1234567ULL * 7654321ULL);
  EXPECT_EQ(c.mod_u64(97), (1234567ULL * 7654321ULL) % 97);
}

TEST_F(HeTest, U256ModLargeValue) {
  // (2^128 + 5) mod 1000003 computed two ways.
  U256 v;
  v.limb[2] = 1;
  v.limb[0] = 5;
  unsigned __int128 r = 1;
  for (int i = 0; i < 128; ++i) r = (r * 2) % 1000003;
  EXPECT_EQ(v.mod_u64(1000003), static_cast<u64>((r + 5) % 1000003));
}

TEST_F(HeTest, CrtComposeRoundTrip) {
  // Encode small signed values into RNS and verify centered mod-t recovery.
  // Values must stay within the centered range (-t/2, t/2] to round-trip.
  const u64 t = ctx_->t();
  ASSERT_GT(t, u64{1} << 20);
  for (i64 val : {i64{0}, i64{1}, i64{-1}, i64{123456}, i64{-400000}}) {
    std::vector<u64> residues(ctx_->rns_size());
    for (std::size_t i = 0; i < ctx_->rns_size(); ++i) {
      const u64 q = ctx_->q(i);
      residues[i] = val >= 0 ? static_cast<u64>(val) % q
                             : q - (static_cast<u64>(-val) % q);
    }
    const u64 got = ctx_->compose_center_mod_t(residues);
    EXPECT_EQ(fp_from_ring(got, t), val);
  }
}

TEST_F(HeTest, EncodeDecodeRoundTrip) {
  const auto v = random_slots(ctx_->t(), encoder_->slot_count());
  EXPECT_EQ(encoder_->decode(encoder_->encode(v)), v);
}

TEST_F(HeTest, EncodeRejectsOutOfRange) {
  EXPECT_THROW(encoder_->encode({ctx_->t()}), std::invalid_argument);
  EXPECT_THROW(
      encoder_->encode(std::vector<u64>(encoder_->slot_count() + 1, 0)),
      std::invalid_argument);
}

TEST_F(HeTest, SignedEncodeRoundTrip) {
  std::vector<i64> v = {0, 1, -1, 5000, -5000, 123, -456};
  const auto decoded = encoder_->decode_signed(encoder_->encode_signed(v));
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(decoded[i], v[i]);
}

TEST_F(HeTest, SymmetricEncryptDecrypt) {
  const auto v = random_slots(ctx_->t(), 100);
  const auto ct = enc_sym_->encrypt(encoder_->encode(v));
  const auto out = encoder_->decode(dec_->decrypt(ct));
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(out[i], v[i]);
}

TEST_F(HeTest, PublicKeyEncryptDecrypt) {
  const auto v = random_slots(ctx_->t(), 100);
  const auto ct = enc_pub_->encrypt(encoder_->encode(v));
  const auto out = encoder_->decode(dec_->decrypt(ct));
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(out[i], v[i]);
}

TEST_F(HeTest, FreshSymmetricNoiseSmallerThanPublic) {
  const auto pt = encoder_->encode({1, 2, 3});
  const double sym_budget = dec_->noise_budget(enc_sym_->encrypt(pt));
  const double pub_budget = dec_->noise_budget(enc_pub_->encrypt(pt));
  EXPECT_GT(sym_budget, pub_budget);
  EXPECT_GT(pub_budget, 0.0);
}

TEST_F(HeTest, HomomorphicAdd) {
  const auto a = random_slots(ctx_->t(), 50);
  const auto b = random_slots(ctx_->t(), 50);
  auto ca = enc_sym_->encrypt(encoder_->encode(a));
  const auto cb = enc_sym_->encrypt(encoder_->encode(b));
  eval_->add_inplace(ca, cb);
  const auto out = encoder_->decode(dec_->decrypt(ca));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(out[i], (a[i] + b[i]) % ctx_->t());
  }
}

TEST_F(HeTest, HomomorphicSubAndNegate) {
  const auto a = random_slots(ctx_->t(), 50);
  const auto b = random_slots(ctx_->t(), 50);
  auto ca = enc_sym_->encrypt(encoder_->encode(a));
  const auto cb = enc_sym_->encrypt(encoder_->encode(b));
  eval_->sub_inplace(ca, cb);
  eval_->negate_inplace(ca);
  const auto out = encoder_->decode(dec_->decrypt(ca));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(out[i], (b[i] + ctx_->t() - a[i]) % ctx_->t());
  }
}

TEST_F(HeTest, AddPlainAndSubPlain) {
  const auto a = random_slots(ctx_->t(), 50);
  const auto b = random_slots(ctx_->t(), 50);
  auto ct = enc_sym_->encrypt(encoder_->encode(a));
  eval_->add_plain_inplace(ct, encoder_->encode(b));
  auto out = encoder_->decode(dec_->decrypt(ct));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(out[i], (a[i] + b[i]) % ctx_->t());
  }
  eval_->sub_plain_inplace(ct, encoder_->encode(b));
  out = encoder_->decode(dec_->decrypt(ct));
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(out[i], a[i]);
}

TEST_F(HeTest, MultiplyPlainSlotwise) {
  const auto a = random_slots(1 << 15, 64);
  const auto b = random_slots(1 << 4, 64);
  auto ct = enc_sym_->encrypt(encoder_->encode(a));
  eval_->multiply_plain_inplace(ct, encoder_->encode(b));
  const auto out = encoder_->decode(dec_->decrypt(ct));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(out[i], (a[i] * b[i]) % ctx_->t());
  }
}

TEST_F(HeTest, CiphertextMultiplyAndRelinearize) {
  const auto a = random_slots(1 << 9, 32);
  const auto b = random_slots(1 << 9, 32);
  const auto ca = enc_sym_->encrypt(encoder_->encode(a));
  const auto cb = enc_sym_->encrypt(encoder_->encode(b));
  auto prod = eval_->multiply(ca, cb);
  EXPECT_EQ(prod.size(), 3u);
  // Decryption works on the 3-part ciphertext directly...
  auto out = encoder_->decode(dec_->decrypt(prod));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(out[i], (a[i] * b[i]) % ctx_->t()) << "pre-relin slot " << i;
  }
  // ...and after relinearization back to 2 parts.
  eval_->relinearize_inplace(prod, *rk_);
  EXPECT_EQ(prod.size(), 2u);
  out = encoder_->decode(dec_->decrypt(prod));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(out[i], (a[i] * b[i]) % ctx_->t()) << "post-relin slot " << i;
  }
  EXPECT_GT(dec_->noise_budget(prod), 0.0);
}

TEST_F(HeTest, RotateRowsMatchesSlotRotation) {
  const std::size_t row = encoder_->row_size();
  std::vector<u64> v(2 * row);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i + 1;
  for (int step : {1, 2, 5, -1}) {
    auto ct = enc_sym_->encrypt(encoder_->encode(v));
    eval_->rotate_rows_inplace(ct, step, *gk_);
    const auto out = encoder_->decode(dec_->decrypt(ct));
    for (std::size_t i = 0; i < row; ++i) {
      const std::size_t src =
          (i + static_cast<std::size_t>(step + static_cast<int>(row))) % row;
      ASSERT_EQ(out[i], v[src]) << "step " << step << " slot " << i;
      ASSERT_EQ(out[row + i], v[row + src]) << "step " << step << " row2 " << i;
    }
  }
}

TEST_F(HeTest, RotateColumnsSwapsRows) {
  const std::size_t row = encoder_->row_size();
  std::vector<u64> v(2 * row);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i % 1000;
  auto ct = enc_sym_->encrypt(encoder_->encode(v));
  eval_->rotate_columns_inplace(ct, *gk_);
  const auto out = encoder_->decode(dec_->decrypt(ct));
  for (std::size_t i = 0; i < row; ++i) {
    ASSERT_EQ(out[i], v[row + i]);
    ASSERT_EQ(out[row + i], v[i]);
  }
}

TEST_F(HeTest, RotateMissingKeyThrows) {
  auto ct = enc_sym_->encrypt(encoder_->encode({1}));
  EXPECT_THROW(eval_->rotate_rows_inplace(ct, 123, *gk_),
               std::invalid_argument);
}

TEST_F(HeTest, NoiseBudgetDecreasesWithWork) {
  const auto pt = encoder_->encode(random_slots(1 << 10, 32));
  auto ct = enc_sym_->encrypt(pt);
  const double fresh = dec_->noise_budget(ct);
  eval_->multiply_plain_inplace(ct, pt);
  const double after_mult = dec_->noise_budget(ct);
  EXPECT_LT(after_mult, fresh);
  EXPECT_GT(after_mult, 0.0);
}

TEST_F(HeTest, DeepAddChainStaysCorrect) {
  std::vector<u64> v(16, 1);
  auto acc = enc_sym_->encrypt(encoder_->encode(v));
  const auto one = enc_sym_->encrypt(encoder_->encode(v));
  for (int i = 0; i < 200; ++i) eval_->add_inplace(acc, one);
  const auto out = encoder_->decode(dec_->decrypt(acc));
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(out[i], 201u);
}

TEST_F(HeTest, SerializationRoundTrip) {
  const auto v = random_slots(ctx_->t(), 64);
  const auto ct = enc_sym_->encrypt(encoder_->encode(v));
  ByteWriter w;
  eval_->serialize(ct, w);
  EXPECT_GE(w.size(), ctx_->params().ciphertext_bytes());
  ByteReader r(w.data());
  const auto ct2 = eval_->deserialize(r);
  const auto out = encoder_->decode(dec_->decrypt(ct2));
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(out[i], v[i]);
}

TEST_F(HeTest, OpCountersTrack) {
  eval_->counters().clear();
  const auto pt = encoder_->encode({1, 2});
  auto a = enc_sym_->encrypt(pt);
  const auto b = enc_sym_->encrypt(pt);
  eval_->add_inplace(a, b);
  eval_->multiply_plain_inplace(a, pt);
  eval_->rotate_rows_inplace(a, 1, *gk_);
  EXPECT_EQ(eval_->counters().adds, 1u);
  EXPECT_EQ(eval_->counters().plain_mults, 1u);
  EXPECT_EQ(eval_->counters().rotations, 1u);
}

}  // namespace
}  // namespace primer
