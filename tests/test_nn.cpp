// Tests for the transformer substrate: configs, weight quantization, float
// vs fixed model agreement, layernorm semantics, and model zoo shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/model.h"

namespace primer {
namespace {

TEST(Config, PaperZooMatchesTableIII) {
  const auto zoo = bert_zoo();
  ASSERT_EQ(zoo.size(), 5u);
  EXPECT_EQ(zoo[0].blocks, 3u);    // tiny
  EXPECT_EQ(zoo[1].blocks, 6u);    // small
  EXPECT_EQ(zoo[2].blocks, 12u);   // base
  EXPECT_EQ(zoo[3].d_model, 1024u);  // medium
  EXPECT_EQ(zoo[4].blocks, 24u);   // large
  for (const auto& c : zoo) {
    EXPECT_EQ(c.tokens, 30u);
    EXPECT_EQ(c.vocab, 30522u);
    EXPECT_EQ(c.d_ff, 4 * c.d_model);
    EXPECT_EQ(c.d_model % c.heads, 0u);
  }
}

TEST(Weights, QuantizeRoundTripsSmallValues) {
  Rng rng(1);
  const auto w = BertWeightsD::random(bert_nano(), rng);
  const auto q = quantize(w);
  EXPECT_EQ(q.we.rows(), w.we.rows());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(fp_decode(q.we.data()[i]), w.we.data()[i], 1.0 / 256);
  }
}

TEST(FixedModel, EmbedMatchesOneHotMatmul) {
  Rng rng(2);
  const auto cfg = bert_nano();
  const auto wq = quantize(BertWeightsD::random(cfg, rng));
  const FixedBert model(wq);
  const std::vector<std::size_t> tokens = {1, 5, 9, 31};
  const MatI emb = model.embed(tokens);
  for (std::size_t i = 0; i < cfg.tokens; ++i) {
    for (std::size_t j = 0; j < cfg.d_model; ++j) {
      // Integer one-hot path: embedding = WE row + pos, exactly.
      EXPECT_EQ(emb(i, j),
                fp_saturate(wq.we(tokens[i], j) + wq.pos(i, j)));
    }
  }
}

TEST(FixedModel, TracksFloatModelPredictions) {
  Rng rng(3);
  const auto cfg = bert_micro();
  const auto wd = BertWeightsD::random(cfg, rng);
  const FloatBert fm(wd);
  const FixedBert xm(quantize(wd));
  int agree = 0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    std::vector<std::size_t> tokens(cfg.tokens);
    for (auto& t : tokens) t = rng.uniform(cfg.vocab);
    agree += (fm.predict(tokens) == xm.predict(tokens));
  }
  // 15-bit fixed point with exact nonlinearities should track float closely
  // (this is the accuracy-preservation claim of the paper).
  EXPECT_GE(agree, trials - 3);
}

TEST(FixedModel, LogitsCloseToFloat) {
  Rng rng(4);
  const auto cfg = bert_nano();
  const auto wd = BertWeightsD::random(cfg, rng);
  const FloatBert fm(wd);
  const FixedBert xm(quantize(wd));
  std::vector<std::size_t> tokens = {2, 8, 21, 13};
  const auto fl = fm.forward(tokens);
  const auto fx = xm.forward(tokens);
  for (std::size_t i = 0; i < fl.size(); ++i) {
    EXPECT_NEAR(fp_decode(fx[i]), fl[i], 0.35) << "logit " << i;
  }
}

TEST(FixedLayerNorm, NormalizesRow) {
  std::vector<std::int64_t> row = {fp_encode(1.0), fp_encode(2.0),
                                   fp_encode(3.0), fp_encode(4.0)};
  std::vector<std::int64_t> gamma(4, fp_encode(1.0));
  std::vector<std::int64_t> beta(4, 0);
  const auto out = fixed_layernorm_row(row, gamma, beta);
  // Float reference: mean 2.5, std ~1.118 -> values ~ +-1.34, +-0.447.
  EXPECT_NEAR(fp_decode(out[0]), -1.342, 0.1);
  EXPECT_NEAR(fp_decode(out[1]), -0.447, 0.1);
  EXPECT_NEAR(fp_decode(out[2]), 0.447, 0.1);
  EXPECT_NEAR(fp_decode(out[3]), 1.342, 0.1);
}

TEST(FixedLayerNorm, GammaBetaApplied) {
  std::vector<std::int64_t> row = {fp_encode(-1.0), fp_encode(1.0)};
  std::vector<std::int64_t> gamma = {fp_encode(2.0), fp_encode(2.0)};
  std::vector<std::int64_t> beta = {fp_encode(0.5), fp_encode(0.5)};
  const auto out = fixed_layernorm_row(row, gamma, beta);
  EXPECT_NEAR(fp_decode(out[0]), -2.0 + 0.5, 0.15);
  EXPECT_NEAR(fp_decode(out[1]), 2.0 + 0.5, 0.15);
}

TEST(OneHot, RejectsOutOfVocab) {
  const auto cfg = bert_nano();
  EXPECT_THROW(one_hot_input({99, 0, 0, 0}, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace primer
