// Tests for the fixed-point share circuits: reconstruction/centering,
// truncation, ReLU/GELU/identity activation circuits, PWL approximation
// quality, and the exact-softmax circuit — each validated against the int64
// reference semantics and (for small cases) under real garbling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/fixed_point.h"
#include "gc/fixed_circuits.h"
#include "gc/garble.h"
#include "gc/protocol.h"

namespace primer {
namespace {

constexpr std::uint64_t kT = 1032193;  // prime = 1 mod 4096, ~2^20
const std::size_t kW = share_width(kT);

std::vector<bool> share_bits(std::uint64_t v) { return value_to_bits(v, kW); }

// Splits a signed value into two additive shares mod t.
std::pair<std::uint64_t, std::uint64_t> make_shares(std::int64_t v, Rng& rng) {
  const std::uint64_t ring = fp_to_ring(v, kT);
  const std::uint64_t r = rng.uniform(kT);
  return {r, (ring + kT - r) % kT};
}

TEST(ShareWidth, Computations) {
  EXPECT_EQ(share_width(2), 1u);
  EXPECT_EQ(share_width(3), 2u);
  EXPECT_EQ(share_width(65537), 17u);
  EXPECT_EQ(share_width(kT), 20u);
}

TEST(FixedCircuits, ReconstructCenteredMatchesRingDecode) {
  Rng rng(100);
  CircuitBuilder b;
  const Bus sa = b.add_input_bus(kW);
  const Bus sb = b.add_input_bus(kW);
  const SignedBus v = reconstruct_centered(b, sa, sb, kT);
  b.set_outputs(v.bits);
  const Circuit c = b.build();

  for (std::int64_t val : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                           std::int64_t{5000}, std::int64_t{-5000},
                           std::int64_t{16383}, std::int64_t{-16384}}) {
    const auto [s1, s2] = make_shares(val, rng);
    auto in = share_bits(s1);
    const auto in2 = share_bits(s2);
    in.insert(in.end(), in2.begin(), in2.end());
    const auto out = eval_circuit(c, in);
    // Interpret as signed two's complement.
    std::int64_t got = static_cast<std::int64_t>(bits_to_value(out));
    if (out.back()) got -= std::int64_t{1} << out.size();
    EXPECT_EQ(got, val) << "value " << val;
  }
}

TEST(FixedCircuits, EmbedInvertsCenter) {
  Rng rng(101);
  CircuitBuilder b;
  const Bus sa = b.add_input_bus(kW);
  const Bus sb = b.add_input_bus(kW);
  const SignedBus v = reconstruct_centered(b, sa, sb, kT);
  b.set_outputs(embed_mod_t(b, v, kT));
  const Circuit c = b.build();

  for (int iter = 0; iter < 50; ++iter) {
    const std::int64_t val = rng.uniform_int(-100000, 100000);
    const auto [s1, s2] = make_shares(val, rng);
    auto in = share_bits(s1);
    const auto in2 = share_bits(s2);
    in.insert(in.end(), in2.begin(), in2.end());
    EXPECT_EQ(bits_to_value(eval_circuit(c, in)), fp_to_ring(val, kT));
  }
}

TEST(FixedCircuits, PwlExpAccuracy) {
  const PwlSpec spec{-8.0, 0.0, 5, [](double x) { return std::exp(x); }};
  const FixedPointFormat fmt;
  // PWL error over the range must stay within a few fixed-point ulps.
  for (double x = -8.0; x <= 0.0; x += 0.01) {
    const std::int64_t raw = fp_encode(x, fmt);
    const double approx = fp_decode(pwl_reference(raw, spec, fmt), fmt);
    EXPECT_NEAR(approx, std::exp(x), 0.02) << "x = " << x;
  }
}

TEST(FixedCircuits, PwlGeluAccuracy) {
  const PwlSpec spec{-4.0, 4.0, 5, &gelu_double};
  const FixedPointFormat fmt;
  for (double x = -4.0; x <= 4.0; x += 0.01) {
    const std::int64_t raw = fp_encode(x, fmt);
    const double approx = fp_decode(pwl_reference(raw, spec, fmt), fmt);
    EXPECT_NEAR(approx, gelu_double(x), 0.02) << "x = " << x;
  }
}

TEST(FixedCircuits, PwlCircuitMatchesReference) {
  const PwlSpec spec{-8.0, 0.0, 5, [](double x) { return std::exp(x); }};
  const FixedPointFormat fmt;
  const std::size_t sw = 24;
  CircuitBuilder b;
  const Bus in = b.add_input_bus(sw);
  b.set_outputs(pwl_apply(b, SignedBus{in}, spec, fmt).bits);
  const Circuit c = b.build();
  Rng rng(55);
  for (int iter = 0; iter < 100; ++iter) {
    const std::int64_t x = rng.uniform_int(-3000, 500);
    const auto out = eval_circuit(
        c, value_to_bits(static_cast<std::uint64_t>(x) & ((1ULL << sw) - 1),
                         sw));
    std::int64_t got = static_cast<std::int64_t>(bits_to_value(out));
    if (out.back()) got -= std::int64_t{1} << sw;
    EXPECT_EQ(got, pwl_reference(x, spec, fmt)) << "x = " << x;
  }
}

class ActivationCircuitTest : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationCircuitTest, CircuitMatchesReference) {
  const Activation act = GetParam();
  ActivationCircuitSpec spec;
  spec.t = kT;
  spec.count = 3;
  spec.frac_shift = 8;  // post-matmul truncation
  spec.act = act;
  const Circuit c = make_activation_circuit(spec);

  Rng rng(200 + static_cast<int>(act));
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<std::int64_t> vals(spec.count);
    std::vector<bool> in_g, in_e, in_r;
    std::vector<std::uint64_t> rcs(spec.count);
    for (std::size_t i = 0; i < spec.count; ++i) {
      // Raw product-domain values (2*frac fractional bits).
      vals[i] = rng.uniform_int(-500000, 500000);
      const auto [s1, s2] = make_shares(vals[i], rng);
      rcs[i] = rng.uniform(kT);
      const auto g = share_bits(s1), e = share_bits(s2), r = share_bits(rcs[i]);
      in_g.insert(in_g.end(), g.begin(), g.end());
      in_e.insert(in_e.end(), e.begin(), e.end());
      in_r.insert(in_r.end(), r.begin(), r.end());
    }
    std::vector<bool> inputs = in_g;
    inputs.insert(inputs.end(), in_e.begin(), in_e.end());
    inputs.insert(inputs.end(), in_r.begin(), in_r.end());
    const auto out = eval_circuit(c, inputs);
    for (std::size_t i = 0; i < spec.count; ++i) {
      const std::vector<bool> bits(out.begin() + static_cast<long>(i * kW),
                                   out.begin() + static_cast<long>((i + 1) * kW));
      const std::uint64_t masked = bits_to_value(bits);
      // Unmask: result + rc mod t, then center.
      const std::int64_t got = fp_from_ring((masked + rcs[i]) % kT, kT);
      const std::int64_t expect =
          activation_reference(vals[i], spec.frac_shift, act, spec.fmt);
      EXPECT_EQ(got, expect) << "value " << vals[i];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Acts, ActivationCircuitTest,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kRelu,
                                           Activation::kGelu));

TEST(SoftmaxCircuit, MatchesReferenceSemantics) {
  SoftmaxCircuitSpec spec;
  spec.t = kT;
  spec.count = 4;
  spec.frac_shift = 8;
  const Circuit c = make_softmax_circuit(spec);

  Rng rng(300);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<std::int64_t> vals(spec.count);
    std::vector<bool> in_g, in_e, in_r;
    std::vector<std::uint64_t> rcs(spec.count);
    for (std::size_t i = 0; i < spec.count; ++i) {
      vals[i] = rng.uniform_int(-300000, 300000);
      const auto [s1, s2] = make_shares(vals[i], rng);
      rcs[i] = rng.uniform(kT);
      const auto g = share_bits(s1), e = share_bits(s2), r = share_bits(rcs[i]);
      in_g.insert(in_g.end(), g.begin(), g.end());
      in_e.insert(in_e.end(), e.begin(), e.end());
      in_r.insert(in_r.end(), r.begin(), r.end());
    }
    std::vector<bool> inputs = in_g;
    inputs.insert(inputs.end(), in_e.begin(), in_e.end());
    inputs.insert(inputs.end(), in_r.begin(), in_r.end());
    const auto out = eval_circuit(c, inputs);
    const auto expect = fixed_softmax_reference(vals, spec.frac_shift, spec.fmt);
    for (std::size_t i = 0; i < spec.count; ++i) {
      const std::vector<bool> bits(out.begin() + static_cast<long>(i * kW),
                                   out.begin() + static_cast<long>((i + 1) * kW));
      const std::int64_t got =
          fp_from_ring((bits_to_value(bits) + rcs[i]) % kT, kT);
      EXPECT_EQ(got, expect[i]) << "row slot " << i;
    }
  }
}

TEST(SoftmaxReference, SumsToApproximatelyOne) {
  Rng rng(400);
  const FixedPointFormat fmt;
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<std::int64_t> vals(8);
    for (auto& v : vals) v = rng.uniform_int(-500000, 500000);
    const auto sm = fixed_softmax_reference(vals, 8, fmt);
    double total = 0;
    for (const auto s : sm) {
      EXPECT_GE(s, 0);
      total += fp_decode(s, fmt);
    }
    EXPECT_NEAR(total, 1.0, 0.1);
  }
}

TEST(SoftmaxReference, MatchesFloatSoftmaxShape) {
  // The exact-GC softmax should track float softmax closely (this is the
  // accuracy property Primer claims over THE-X's polynomial approximation).
  const FixedPointFormat fmt;
  const std::vector<double> xs = {1.0, 2.0, 0.5, -1.0};
  std::vector<std::int64_t> raw(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    raw[i] = fp_encode(xs[i], fmt) << fmt.frac_bits;  // product domain
  }
  const auto sm = fixed_softmax_reference(raw, 8, fmt);
  double denom = 0;
  for (const double x : xs) denom += std::exp(x - 2.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double expect = std::exp(xs[i] - 2.0) / denom;
    EXPECT_NEAR(fp_decode(sm[i], fmt), expect, 0.03) << "slot " << i;
  }
}

TEST(SoftmaxCircuit, GarbledExecutionMatchesPlain) {
  SoftmaxCircuitSpec spec;
  spec.t = 65537;  // small prime keeps the garbled run fast
  spec.count = 3;
  spec.frac_shift = 8;
  const Circuit c = make_softmax_circuit(spec);
  Rng rng(500);
  std::vector<bool> inputs(static_cast<std::size_t>(c.num_inputs));
  for (auto&& bit : inputs) bit = rng.next() & 1;
  EXPECT_EQ(garbled_eval(c, inputs, rng), eval_circuit(c, inputs));
}

TEST(ActivationCircuit, GarbledExecutionMatchesPlain) {
  ActivationCircuitSpec spec;
  spec.t = 65537;
  spec.count = 2;
  spec.frac_shift = 8;
  spec.act = Activation::kGelu;
  const Circuit c = make_activation_circuit(spec);
  Rng rng(600);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<bool> inputs(static_cast<std::size_t>(c.num_inputs));
    for (auto&& bit : inputs) bit = rng.next() & 1;
    EXPECT_EQ(garbled_eval(c, inputs, rng), eval_circuit(c, inputs));
  }
}

}  // namespace
}  // namespace primer
