// Key-switch data-path tests: hoisted rotation sets vs. the per-rotation
// path (bit-exact), the kernel-fused key_switch vs. a naive per-coefficient
// reference (bit-exact), the no-Shoup-table 128-bit fallback vs. the Shoup
// path (bit-exact, exercising the lazy-digit canonicalization), BSGS packed
// matmul vs. the sequential diagonal walk (exact decrypted output), gadget
// decomposition structure, the rotate-then-multiply noise headroom the BSGS
// schedule depends on, and arena reuse determinism across thread counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/arena.h"
#include "common/fixed_point.h"
#include "common/parallel.h"
#include "common/serialize.h"
#include "he/encoder.h"
#include "he/he.h"
#include "proto/packing.h"
#include "ss/secret_share.h"

namespace primer {
namespace {

struct Fixture {
  explicit Fixture(HeProfile profile, std::uint64_t seed = 7)
      : ctx(make_params(profile)),
        rng(seed),
        keygen(ctx, rng),
        encoder(ctx),
        enc(ctx, keygen.secret_key(), rng),
        dec(ctx, keygen.secret_key()),
        eval(ctx) {}

  Ciphertext encrypt_iota() {
    std::vector<u64> slots(encoder.slot_count());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      slots[i] = (i * 97 + 13) % ctx.t();
    }
    return enc.encrypt(encoder.encode(slots));
  }

  HeContext ctx;
  Rng rng;
  KeyGenerator keygen;
  BatchEncoder encoder;
  Encryptor enc;
  Decryptor dec;
  Evaluator eval;
};

std::vector<std::uint8_t> ct_bytes(const Evaluator& eval,
                                   const Ciphertext& ct) {
  ByteWriter w;
  eval.serialize(ct, w);
  return w.take();
}

// Naive reference key switch: decompose c into the key's gadget digits with
// plain per-coefficient arithmetic (the PR 3 data path), transform, and
// accumulate digit x key products with fully-reduced context ops.  Every
// step fully reduces, so the kernel-fused path must match bit for bit.
void naive_key_switch(const HeContext& ctx, const RnsPoly& c_in,
                      const KSwitchKey& key, RnsPoly& acc0, RnsPoly& acc1) {
  RnsPoly c = c_in;
  ctx.to_coeff(c);
  const std::size_t k = ctx.rns_size();
  const std::size_t n = ctx.degree();
  const auto layout = ctx.decomp_layout(key.decomp_bits);
  ASSERT_EQ(layout.size(), key.digits());
  for (std::size_t f = 0; f < layout.size(); ++f) {
    RnsPoly digit(k, n, false);
    const u64* src = c.limb(layout[f].limb);
    for (std::size_t j = 0; j < k; ++j) {
      u64* dst = digit.limb(j);
      for (std::size_t x = 0; x < n; ++x) {
        if (key.decomp_bits == 0) {
          dst[x] = ctx.barrett(j).reduce(src[x]);
        } else {
          dst[x] = (src[x] >> layout[f].shift) &
                   ((u64{1} << key.decomp_bits) - 1);
        }
      }
    }
    ctx.to_ntt(digit);
    RnsPoly db = ctx.multiply(digit, key.b[f]);
    ctx.multiply_inplace(digit, key.a[f]);
    ctx.add_inplace(acc0, db);
    ctx.add_inplace(acc1, digit);
  }
}

TEST(KeySwitch, KernelFusedMatchesNaiveReferenceBitExact) {
  for (const HeProfile profile :
       {HeProfile::kTest2048, HeProfile::kProto2048, HeProfile::kLight4096}) {
    Fixture f(profile);
    const std::size_t k = f.ctx.rns_size();
    const std::size_t n = f.ctx.degree();
    RnsPoly c(k, n, false);
    for (std::size_t i = 0; i < k; ++i) {
      f.rng.fill_uniform_mod(c.limb(i), n, f.ctx.q(i));
    }
    f.ctx.to_ntt(c);
    // Both digit layouts: the relin key (CRT digits, reduce_span path) and
    // a Galois key (sub-digits).
    const RelinKey rk = f.keygen.make_relin_key();
    GaloisKeys gk = f.keygen.make_galois_keys({1});
    const KSwitchKey& galois_key = gk.keys.begin()->second;
    for (const KSwitchKey* key : {&rk.key, &galois_key}) {
      RnsPoly fused0(k, n, true), fused1(k, n, true);
      f.eval.key_switch(c, *key, fused0, fused1);
      RnsPoly ref0(k, n, true), ref1(k, n, true);
      naive_key_switch(f.ctx, c, *key, ref0, ref1);
      for (std::size_t wi = 0; wi < fused0.word_count(); ++wi) {
        ASSERT_EQ(fused0.data()[wi], ref0.data()[wi])
            << "acc0 word " << wi << " decomp_bits " << key->decomp_bits;
        ASSERT_EQ(fused1.data()[wi], ref1.data()[wi])
            << "acc1 word " << wi << " decomp_bits " << key->decomp_bits;
      }
    }
  }
}

TEST(KeySwitch, NoShoupFallbackMatchesShoupPathBitExact) {
  // Keys without precomputed quotient tables (e.g. externally supplied)
  // take the 128-bit mul_acc_lazy fallback, which must canonicalize the
  // lazily-staged [0, 4p) digits before accumulating — the result has to
  // match the Shoup-lazy path bit for bit.
  for (const HeProfile profile :
       {HeProfile::kTest2048, HeProfile::kLight4096}) {
    Fixture f(profile);
    const std::size_t k = f.ctx.rns_size();
    const std::size_t n = f.ctx.degree();
    RnsPoly c(k, n, false);
    for (std::size_t i = 0; i < k; ++i) {
      f.rng.fill_uniform_mod(c.limb(i), n, f.ctx.q(i));
    }
    f.ctx.to_ntt(c);
    const RelinKey rk = f.keygen.make_relin_key();
    RnsPoly want0(k, n, true), want1(k, n, true);
    f.eval.key_switch(c, rk.key, want0, want1);
    KSwitchKey stripped;
    stripped.decomp_bits = rk.key.decomp_bits;
    stripped.b = rk.key.b;
    stripped.a = rk.key.a;
    ASSERT_FALSE(stripped.has_shoup());
    RnsPoly got0(k, n, true), got1(k, n, true);
    f.eval.key_switch(c, stripped, got0, got1);
    for (std::size_t wi = 0; wi < want0.word_count(); ++wi) {
      ASSERT_EQ(got0.data()[wi], want0.data()[wi]) << "acc0 word " << wi;
      ASSERT_EQ(got1.data()[wi], want1.data()[wi]) << "acc1 word " << wi;
    }
  }
}

TEST(KeySwitch, HoistedSetMatchesSingleRotationsBitExact) {
  for (const HeProfile profile :
       {HeProfile::kTest2048, HeProfile::kProto2048, HeProfile::kLight4096}) {
    Fixture f(profile);
    const std::vector<int> steps{1, 2, 5, 0, -3, 16};
    const GaloisKeys gk = f.keygen.make_galois_keys(steps);
    const Ciphertext ct = f.encrypt_iota();
    const auto hoisted = f.eval.rotate_rows_many(ct, steps, gk);
    ASSERT_EQ(hoisted.size(), steps.size());
    for (std::size_t s = 0; s < steps.size(); ++s) {
      Ciphertext single = ct;
      if (steps[s] != 0) {
        f.eval.rotate_rows_inplace(single, steps[s], gk);
      }
      EXPECT_EQ(ct_bytes(f.eval, single), ct_bytes(f.eval, hoisted[s]))
          << "step " << steps[s] << " profile "
          << f.ctx.params().name;
    }
  }
}

TEST(KeySwitch, GaloisKeysUseSubDigitsRelinUsesCrtDigits) {
  Fixture f(HeProfile::kProto2048);
  const std::size_t k = f.ctx.rns_size();
  const RelinKey rk = f.keygen.make_relin_key();
  EXPECT_EQ(rk.key.decomp_bits, 0u);
  EXPECT_EQ(rk.key.digits(), k);
  GaloisKeys gk = f.keygen.make_galois_keys({1});
  const KSwitchKey& key = gk.keys.begin()->second;
  EXPECT_EQ(key.decomp_bits, f.ctx.galois_decomp_bits());
  EXPECT_GT(key.decomp_bits, 0u);
  // Half-width sub-digits: two per RNS limb at these modulus sizes.
  EXPECT_EQ(key.digits(), 2 * k);
  EXPECT_EQ(f.ctx.decomp_layout(key.decomp_bits).size(), key.digits());
  // The additive key-switch noise of the sub-digit layout is far below the
  // CRT layout's — the headroom the BSGS schedule spends on plain mults.
  EXPECT_LT(f.ctx.kswitch_noise_log2(key.decomp_bits),
            f.ctx.kswitch_noise_log2(0) - 15.0);
}

TEST(KeySwitch, RotateThenMultiplyKeepsNoiseBudget) {
  // Regression guard for the BSGS ordering: plaintext masks multiply into
  // ALREADY-ROTATED ciphertexts, so a rotation must leave ~log2(t*n) bits
  // of budget.  With full-width CRT galois digits this went negative.
  Fixture f(HeProfile::kProto2048);
  const GaloisKeys gk = f.keygen.make_galois_keys({4});
  Ciphertext ct = f.encrypt_iota();
  f.eval.rotate_rows_inplace(ct, 4, gk);
  std::vector<u64> mask(f.encoder.slot_count());
  f.rng.fill_uniform_mod(mask, f.ctx.t());
  f.eval.multiply_plain_inplace(ct, f.encoder.encode(mask));
  EXPECT_GT(f.dec.noise_budget(ct), 15.0);
}

// Sequential diagonal reference for the tokens-first packed matmul: walks
// every alignment k with its own rotation of the fresh input — the seed
// PR 1 schedule — using only public evaluator ops.  Exact ring arithmetic,
// so its decryption must equal the BSGS path's output entry for entry.
MatI sequential_tokens_first_matmul(Fixture& f, const Ciphertext& packed,
                                    const MatI& w_raw, std::size_t tokens,
                                    const GaloisKeys& gk, std::size_t d_in,
                                    std::size_t d_out) {
  const std::size_t row = f.encoder.row_size();
  const std::size_t fpc = row / tokens;
  const u64 t = f.ctx.t();
  Ciphertext acc;
  bool acc_set = false;
  Ciphertext rotated = packed;  // rot_{k*step} built one step at a time
  for (std::size_t k = 0; k < fpc; ++k) {
    if (k != 0) {
      f.eval.rotate_rows_inplace(rotated, static_cast<int>(tokens), gk);
    }
    std::vector<u64> mask(row, 0);
    bool any = false;
    for (std::size_t b = 0; b < fpc; ++b) {
      const std::size_t o = b;
      if (o >= d_out) break;
      const std::size_t j = (b + k) % fpc;
      if (j >= d_in) continue;
      for (std::size_t i = 0; i < tokens; ++i) {
        mask[b * tokens + i] = fp_to_ring(w_raw(j, o), t);
      }
      any = true;
    }
    if (!any) continue;
    Ciphertext term = rotated;
    f.eval.multiply_plain_inplace(term, f.encoder.encode(mask));
    if (acc_set) {
      f.eval.add_inplace(acc, term);
    } else {
      acc = std::move(term);
      acc_set = true;
    }
  }
  const auto slots = f.encoder.decode(f.dec.decrypt(acc));
  MatI out(tokens, d_out);
  for (std::size_t o = 0; o < d_out; ++o) {
    for (std::size_t i = 0; i < tokens; ++i) {
      out(i, o) = static_cast<std::int64_t>(slots[o * tokens + i]);
    }
  }
  return out;
}

TEST(KeySwitch, BsgsMatmulMatchesSequentialDiagonalWalk) {
  Fixture f(HeProfile::kProto2048, 31);
  const std::size_t tokens = 8, d_in = 16, d_out = 8;
  const ShareRing ring(f.ctx.t());
  const MatI x = ring.random(f.rng, tokens, d_in);
  const MatI w = random_fp_matrix(f.rng, d_in, d_out, -1.0, 1.0);

  PackedMatmul mm(f.ctx, f.encoder, f.eval, PackingStrategy::kTokensFirst);
  std::vector<int> steps = mm.rotation_steps(tokens);
  steps.push_back(static_cast<int>(tokens));  // the sequential walk's step
  const GaloisKeys gk = f.keygen.make_galois_keys(steps);

  const auto packed = mm.encrypt_input(x, f.enc);
  ASSERT_EQ(packed.size(), 1u);
  const auto result = mm.multiply(packed, w, tokens, f.ctx.t(), gk, nullptr);
  const MatI bsgs = mm.decrypt_result(result, f.dec, tokens, d_out);

  const MatI seq = sequential_tokens_first_matmul(f, packed[0], w, tokens, gk,
                                                  d_in, d_out);
  for (std::size_t i = 0; i < tokens; ++i) {
    for (std::size_t o = 0; o < d_out; ++o) {
      ASSERT_EQ(bsgs(i, o), seq(i, o)) << "entry " << i << "," << o;
    }
  }
}

TEST(KeySwitch, ArenaReuseIsDeterministicAcrossThreadsAndRuns) {
  // The arena hands back dirty buffers; no hot path may read a word it did
  // not write.  Run the hoisted rotation set and the BSGS matmul twice per
  // thread count (second run reuses warm arena buffers) and require
  // bit-identical ciphertexts everywhere.
  const std::size_t prev_threads = num_threads();
  std::vector<std::vector<std::uint8_t>> runs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_num_threads(threads);
    for (int repeat = 0; repeat < 2; ++repeat) {
      Fixture f(HeProfile::kProto2048, 19);
      const std::vector<int> steps{1, 3, 4, 8};
      const GaloisKeys gk = f.keygen.make_galois_keys(steps);
      const Ciphertext ct = f.encrypt_iota();
      ByteWriter w;
      for (const auto& r : f.eval.rotate_rows_many(ct, steps, gk)) {
        f.eval.serialize(r, w);
      }
      PackedMatmul mm(f.ctx, f.encoder, f.eval,
                      PackingStrategy::kTokensFirst);
      const GaloisKeys mgk = f.keygen.make_galois_keys(mm.rotation_steps(4));
      const ShareRing ring(f.ctx.t());
      const MatI x = ring.random(f.rng, 4, 16);
      const MatI wm = random_fp_matrix(f.rng, 16, 8, -1.0, 1.0);
      const auto packed = mm.encrypt_input(x, f.enc);
      for (const auto& r :
           mm.multiply(packed, wm, 4, f.ctx.t(), mgk, nullptr)) {
        f.eval.serialize(r, w);
      }
      runs.push_back(w.take());
    }
  }
  set_num_threads(prev_threads);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0], runs[i]) << "run " << i;
  }
}

TEST(PolyArenaTest, CheckoutRecyclesAndScratchReleases) {
  PolyArena arena;  // fresh instance — local() carries earlier tests' cache
  u64* p1 = nullptr;
  {
    auto s1 = arena.checkout(256);
    ASSERT_GE(s1.words(), 256u);
    p1 = s1.data();
    s1.data()[0] = 42;
    s1.data()[255] = 7;
  }
  EXPECT_EQ(arena.cached(), 1u);
  {
    // Same-size checkout reuses the released buffer (dirty).
    auto s2 = arena.checkout(256);
    EXPECT_EQ(s2.data(), p1);
    EXPECT_EQ(arena.cached(), 0u);
    s2.zero();
    EXPECT_EQ(s2.data()[0], 0u);
    EXPECT_EQ(s2.data()[255], 0u);
  }
  {
    auto big = arena.checkout(4096);
    big.data()[4095] = 1;
    // Best-fit: the small request must reuse the 256-word buffer, not a
    // fresh allocation (one buffer cached, fits, smallest fit).
    auto small = arena.checkout(64);
    EXPECT_EQ(small.data(), p1);
    EXPECT_EQ(arena.cached(), 0u);
  }
  EXPECT_EQ(arena.cached(), 2u);
}

TEST(KeySwitch, MismatchedKeyDecompositionThrows) {
  Fixture f(HeProfile::kTest2048);
  const std::size_t k = f.ctx.rns_size();
  const std::size_t n = f.ctx.degree();
  RnsPoly c(k, n, true);
  const RelinKey rk = f.keygen.make_relin_key();
  const HoistedKeySwitch hoist(f.ctx, c, f.ctx.galois_decomp_bits());
  RnsPoly a0(k, n, true), a1(k, n, true);
  EXPECT_THROW(hoist.apply(1, rk.key, a0, a1), std::invalid_argument);
}

}  // namespace
}  // namespace primer
