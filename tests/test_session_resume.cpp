// Session-resilience tests: checkpoint serialization, the resume handshake
// negotiation, the retryable/fatal error taxonomy, deterministic kill/stall
// injection, and — end to end — that a killed-and-restarted inference
// resumes from the last common checkpoint and produces logits bit-identical
// to an unfaulted run.
//
// SessionChaos.* are the cells tools/chaos_soak.py drives: the probe prints
// each checkpoint boundary's wire-frame index, and KillRecovery /
// StallRecovery re-run the inference with PRIMER_FAULT_* taken from the
// environment at the soak's chosen kill points.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "he/he.h"
#include "net/frame.h"
#include "net/session.h"
#include "nn/model.h"
#include "nn/train.h"
#include "proto/primer.h"
#include "proto/runtime.h"

namespace primer {
namespace {

struct EnvGuard {
  explicit EnvGuard(std::vector<std::pair<const char*, std::string>> kv)
      : keys_() {
    for (const auto& [k, v] : kv) {
      keys_.push_back(k);
      ::setenv(k, v.c_str(), 1);
    }
  }
  ~EnvGuard() {
    for (const char* k : keys_) ::unsetenv(k);
  }
  std::vector<const char*> keys_;
};

// --- checkpoint & store ------------------------------------------------------

SessionCheckpoint sample_checkpoint(std::uint32_t epoch) {
  SessionCheckpoint cp;
  cp.session_id = 0xfeed;
  cp.epoch = epoch;
  cp.phase = "gc_offline";
  cp.params_hash = 0x1234abcd;
  cp.send_watermark[0] = 3;
  cp.send_watermark[1] = 2;
  cp.frame_crc[0] = {11, 22, 33};
  cp.frame_crc[1] = {44, 55};
  cp.kind_counts[0][static_cast<int>(MessageKind::kCiphertexts)] = 2;
  cp.kind_counts[1][static_cast<int>(MessageKind::kGcTableChunk)] = 7;
  cp.wire_bytes = 123456;
  return cp;
}

TEST(SessionCheckpoint, SerializeRoundTripAndStableDigest) {
  const SessionCheckpoint cp = sample_checkpoint(4);
  ByteWriter w;
  cp.serialize(w);
  const auto bytes = w.take();
  ByteReader r(bytes);
  const SessionCheckpoint back = SessionCheckpoint::deserialize(r);
  EXPECT_EQ(back.session_id, cp.session_id);
  EXPECT_EQ(back.epoch, cp.epoch);
  EXPECT_EQ(back.phase, cp.phase);
  EXPECT_EQ(back.params_hash, cp.params_hash);
  for (int d = 0; d < 2; ++d) {
    EXPECT_EQ(back.send_watermark[d], cp.send_watermark[d]);
    EXPECT_EQ(back.frame_crc[d], cp.frame_crc[d]);
    for (std::size_t k = 0; k < kMessageKindCount; ++k) {
      EXPECT_EQ(back.kind_counts[d][k], cp.kind_counts[d][k]);
    }
  }
  EXPECT_EQ(back.wire_bytes, cp.wire_bytes);
  EXPECT_EQ(back.digest(), cp.digest());

  // A single-field change must move the digest.
  SessionCheckpoint other = cp;
  other.frame_crc[1][0] ^= 1;
  EXPECT_NE(other.digest(), cp.digest());
}

TEST(SessionCheckpoint, TruncatedOrInconsistentBlobIsMalformed) {
  const SessionCheckpoint cp = sample_checkpoint(1);
  ByteWriter w;
  cp.serialize(w);
  auto bytes = w.take();

  auto expect_malformed = [](const std::vector<std::uint8_t>& blob) {
    ByteReader r(blob);
    try {
      (void)SessionCheckpoint::deserialize(r);
      FAIL() << "expected ProtocolError";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.kind(), ProtocolErrorKind::kMalformed) << e.what();
    }
  };

  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  expect_malformed(truncated);

  auto bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  expect_malformed(bad_magic);
}

TEST(SessionStore, SaveLoadDropTamper) {
  SessionStore store;
  EXPECT_EQ(store.latest_epoch(Party::kClient), 0u);
  store.save(Party::kClient, sample_checkpoint(1));
  store.save(Party::kClient, sample_checkpoint(2));
  store.save(Party::kServer, sample_checkpoint(1));
  EXPECT_EQ(store.latest_epoch(Party::kClient), 2u);
  EXPECT_EQ(store.latest_epoch(Party::kServer), 1u);
  EXPECT_GT(store.blob_bytes(), 0u);

  const auto cp = store.load(Party::kClient, 2);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->epoch, 2u);
  EXPECT_FALSE(store.load(Party::kClient, 9).has_value());

  const auto digests = store.digests(Party::kClient);
  ASSERT_EQ(digests.size(), 2u);
  EXPECT_EQ(digests[0].first, 1u);
  EXPECT_EQ(digests[1].first, 2u);
  EXPECT_EQ(digests[1].second, sample_checkpoint(2).digest());

  // Tampered blob: the digest inventory changes, load reports the defect.
  store.tamper(Party::kServer, 1);
  EXPECT_NE(store.digests(Party::kServer)[0].second,
            sample_checkpoint(1).digest());

  store.drop(Party::kClient, 2);
  EXPECT_EQ(store.latest_epoch(Party::kClient), 1u);
  store.clear();
  EXPECT_EQ(store.latest_epoch(Party::kClient), 0u);
  EXPECT_EQ(store.blob_bytes(), 0u);
}

// --- handshake payloads & negotiation ---------------------------------------

TEST(SessionHandshake, HelloResumeRoundTripAndMalformed) {
  SessionHello h;
  h.session_id = 77;
  h.params_hash = 0xdeadbeefcafe;
  h.epochs = {{1, 100}, {2, 200}, {5, 500}};
  const SessionHello hb = SessionHello::deserialize(h.serialize(), "test");
  EXPECT_EQ(hb.session_id, h.session_id);
  EXPECT_EQ(hb.params_hash, h.params_hash);
  EXPECT_EQ(hb.epochs, h.epochs);

  SessionResume res;
  res.agreed_epoch = 5;
  res.digest = 500;
  const SessionResume rb = SessionResume::deserialize(res.serialize(), "test");
  EXPECT_EQ(rb.agreed_epoch, res.agreed_epoch);
  EXPECT_EQ(rb.digest, res.digest);

  // Non-ascending epochs are a malformed inventory.
  SessionHello bad = h;
  bad.epochs = {{2, 200}, {2, 201}};
  try {
    (void)SessionHello::deserialize(bad.serialize(), "test");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolErrorKind::kMalformed) << e.what();
  }

  // Trailing bytes are rejected.
  auto blob = h.serialize();
  blob.push_back(0);
  EXPECT_THROW((void)SessionHello::deserialize(blob, "test"), ProtocolError);
}

TEST(SessionHandshake, NegotiationPicksHighestCommonDigest) {
  SessionStore store;
  store.save(Party::kServer, sample_checkpoint(1));
  store.save(Party::kServer, sample_checkpoint(2));
  store.save(Party::kServer, sample_checkpoint(3));

  SessionHello hello;
  hello.session_id = 0xfeed;
  hello.params_hash = 0x1234abcd;

  // Fresh client: no epochs in common -> fresh start.
  EXPECT_EQ(negotiate_resume_epoch(hello, 0xfeed, 0x1234abcd, store,
                                   Party::kServer),
            0u);

  // Full inventory: highest epoch wins.
  hello.epochs = store.digests(Party::kServer);
  EXPECT_EQ(negotiate_resume_epoch(hello, 0xfeed, 0x1234abcd, store,
                                   Party::kServer),
            3u);

  // Server lost epoch 3 (partial disk loss): degrade to epoch 2.
  store.drop(Party::kServer, 3);
  EXPECT_EQ(negotiate_resume_epoch(hello, 0xfeed, 0x1234abcd, store,
                                   Party::kServer),
            2u);

  // Every common epoch's digest disagrees: forked histories are fatal.
  store.tamper(Party::kServer, 1);
  store.tamper(Party::kServer, 2);
  try {
    (void)negotiate_resume_epoch(hello, 0xfeed, 0x1234abcd, store,
                                 Party::kServer);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolErrorKind::kResumeDiverged) << e.what();
    EXPECT_FALSE(e.retryable());
  }

  // Identity mismatches are rejections, not divergence.
  try {
    (void)negotiate_resume_epoch(hello, 0xbeef, 0x1234abcd, store,
                                 Party::kServer);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolErrorKind::kResumeRejected) << e.what();
  }
  try {
    (void)negotiate_resume_epoch(hello, 0xfeed, 0x9999, store, Party::kServer);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolErrorKind::kResumeRejected) << e.what();
  }
}

// --- error taxonomy ----------------------------------------------------------

TEST(ErrorTaxonomy, RetryableVersusFatal) {
  // Transient wire damage and timeouts are retryable...
  for (const ProtocolErrorKind k :
       {ProtocolErrorKind::kTruncated, ProtocolErrorKind::kChecksumMismatch,
        ProtocolErrorKind::kSequenceGap, ProtocolErrorKind::kRetriesExhausted,
        ProtocolErrorKind::kPeerKilled, ProtocolErrorKind::kDeadlineExceeded,
        ProtocolErrorKind::kServerOverloaded}) {
    EXPECT_TRUE(protocol_error_retryable(k)) << protocol_error_kind_name(k);
  }
  // ...structural and identity defects are not.
  for (const ProtocolErrorKind k :
       {ProtocolErrorKind::kBadMagic, ProtocolErrorKind::kBadVersion,
        ProtocolErrorKind::kKindMismatch, ProtocolErrorKind::kMalformed,
        ProtocolErrorKind::kResumeRejected,
        ProtocolErrorKind::kResumeDiverged}) {
    EXPECT_FALSE(protocol_error_retryable(k)) << protocol_error_kind_name(k);
  }

  const DeadlineExceeded e("gc_offline", 12.5, 10.0, "test poll");
  EXPECT_EQ(e.kind(), ProtocolErrorKind::kDeadlineExceeded);
  EXPECT_TRUE(e.retryable());
  EXPECT_EQ(e.phase(), "gc_offline");
  EXPECT_DOUBLE_EQ(e.elapsed_s(), 12.5);
  EXPECT_DOUBLE_EQ(e.budget_s(), 10.0);
  EXPECT_NE(std::string(e.what()).find("gc_offline"), std::string::npos);
}

TEST(ErrorTaxonomy, CancelTokenAndWatchdog) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check("early"));
  token.cancel("operator abort");
  token.cancel("second reason is ignored");
  EXPECT_TRUE(token.cancelled());
  try {
    token.check("poll site");
    FAIL() << "expected OperationCancelled";
  } catch (const OperationCancelled& e) {
    EXPECT_NE(std::string(e.what()).find("operator abort"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("poll site"), std::string::npos);
  }
  token.reset();
  EXPECT_NO_THROW(token.check("after reset"));

  // A watchdog with a tiny budget fires and arms the token.
  {
    DeadlineWatchdog dog(token, 0.01, "unit test hang");
    while (!token.cancelled()) {
    }
  }
  EXPECT_THROW(token.check("post watchdog"), OperationCancelled);
}

// --- noise-floor knob --------------------------------------------------------

TEST(NoiseFloor, EnvKnobRaisesTheRefusalThreshold) {
  const HeContext ctx(make_params(HeProfile::kTest2048));
  Rng rng(31);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const auto ct = enc.encrypt(encoder.encode({1, 2, 3}));

  const Decryptor plain_dec(ctx, keygen.secret_key());
  EXPECT_DOUBLE_EQ(plain_dec.noise_floor_bits(), 0.0);
  EXPECT_NO_THROW((void)plain_dec.decrypt(ct));

  EnvGuard env(std::vector<std::pair<const char*, std::string>>{
      {"PRIMER_NOISE_FLOOR_BITS", "10000"}});
  const Decryptor strict_dec(ctx, keygen.secret_key());
  EXPECT_DOUBLE_EQ(strict_dec.noise_floor_bits(), 10000.0);
  try {
    (void)strict_dec.decrypt(ct);
    FAIL() << "expected NoiseBudgetExhausted";
  } catch (const NoiseBudgetExhausted& e) {
    EXPECT_GT(e.estimated_budget_bits(), 0.0);  // healthy ct, hostile floor
  }
}

// --- end-to-end kill / stall / resume ---------------------------------------

const std::vector<std::size_t> kTokens = {3, 17, 9, 28};

struct CleanRun {
  BertWeightsI weights;
  std::vector<std::int64_t> ref_logits;
  PrimerRunResult result;  // unfaulted resilient run, checkpoints on
};

// One shared unfaulted probe run (PrimerVariant::kFP, bert_nano).  Must be
// called only when no PRIMER_FAULT_* env is set.
const CleanRun& clean_run() {
  static const CleanRun cr = [] {
    Rng wrng(2025);
    CleanRun c{quantize(BertWeightsD::random(bert_nano(), wrng)), {}, {}};
    c.ref_logits = FixedBert(c.weights).forward(kTokens);
    PrimerEngine engine(c.weights, PrimerVariant::kFP);
    SessionStore store;
    c.result = engine.run_resilient(kTokens, store);
    return c;
  }();
  return cr;
}

TEST(SessionResilience, UnfaultedRunCheckpointsAndMatchesReference) {
  const CleanRun& c = clean_run();
  EXPECT_EQ(c.result.logits, c.ref_logits);
  EXPECT_EQ(c.result.restarts, 0);
  EXPECT_EQ(c.result.resumed_epoch, 0u);
  EXPECT_EQ(c.result.replayed_frames, 0u);
  // Checkpoints at key_transfer, gc_offline, linear_offline, online_embed
  // and one per block.
  EXPECT_GE(c.result.checkpoints, 5u);
  EXPECT_GT(c.result.handshake_bytes, 0u);
  EXPECT_GT(c.result.frames_sent, 0u);
}

TEST(SessionResilience, KillThenResumeBitIdentical) {
  const CleanRun& c = clean_run();
  // Kill mid-run: past several checkpoints, well before the finish line.
  const std::uint64_t kill_at = c.result.frames_sent / 2;
  EnvGuard env({{"PRIMER_FAULT_KILL_AFTER", std::to_string(kill_at)}});

  PrimerEngine engine(c.weights, PrimerVariant::kFP);
  SessionStore store;
  const PrimerRunResult result = engine.run_resilient(kTokens, store);

  // Bit-identical output despite the crash...
  EXPECT_EQ(result.logits, c.ref_logits);
  // ...after exactly one restart that resumed from a real checkpoint and
  // replayed the covered prefix without re-paying for it.
  EXPECT_EQ(result.restarts, 1);
  EXPECT_GE(result.resumed_epoch, 1u);
  EXPECT_GT(result.replayed_frames, 0u);
  EXPECT_GT(result.replayed_bytes, 0u);
  EXPECT_GT(result.prior_attempt_bytes, 0u);

  // The failed attempt's partial telemetry was captured before the rethrow.
  ASSERT_NE(engine.last_partial(), nullptr);

  // The kill itself, run without the resilience loop, is a typed retryable
  // error naming the frame and the injection knob.
  PrimerEngine fragile(c.weights, PrimerVariant::kFP);
  try {
    (void)fragile.run(kTokens);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolErrorKind::kPeerKilled);
    EXPECT_TRUE(e.retryable());
    EXPECT_NE(std::string(e.what()).find("PRIMER_FAULT_KILL_AFTER"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find(std::to_string(kill_at)),
              std::string::npos);
  }
}

TEST(SessionResilience, StallTripsDeadlineThenResumes) {
  const CleanRun& c = clean_run();
  const std::uint64_t stall_at = c.result.frames_sent / 3;
  // A 300-simulated-second stall against a 60 s phase budget trips the
  // deadline deterministically at that exact frame, on any host speed.
  EnvGuard env({{"PRIMER_FAULT_STALL_AFTER", std::to_string(stall_at)},
                {"PRIMER_FAULT_STALL_S", "300"},
                {"PRIMER_PHASE_DEADLINE_S", "60"}});

  PrimerEngine fragile(c.weights, PrimerVariant::kFP);
  try {
    (void)fragile.run(kTokens);
    FAIL() << "expected DeadlineExceeded";
  } catch (const DeadlineExceeded& e) {
    EXPECT_TRUE(e.retryable());
    EXPECT_GT(e.elapsed_s(), e.budget_s());
    EXPECT_NE(std::string(e.what()).find("stalled wire frame"),
              std::string::npos);
  }

  PrimerEngine engine(c.weights, PrimerVariant::kFP);
  SessionStore store;
  const PrimerRunResult result = engine.run_resilient(kTokens, store);
  EXPECT_EQ(result.logits, c.ref_logits);
  EXPECT_EQ(result.restarts, 1);
  EXPECT_GE(result.resumed_epoch, 1u);
}

// --- chaos-soak cells --------------------------------------------------------

// Probe: print every checkpoint boundary's wire-frame index plus the total,
// so tools/chaos_soak.py can pick kill points spanning every phase.  Wire
// frame indices are 1-based and the two handshake frames precede seq 0.
TEST(SessionChaos, ProbeTotalFrames) {
  if (std::getenv("PRIMER_CHAOS_PROBE") == nullptr) {
    GTEST_SKIP() << "set PRIMER_CHAOS_PROBE=1 (tools/chaos_soak.py does)";
  }
  Rng wrng(2025);
  const auto weights = quantize(BertWeightsD::random(bert_nano(), wrng));
  PrimerEngine engine(weights, PrimerVariant::kFP);
  SessionStore store;
  const PrimerRunResult result = engine.run_resilient(kTokens, store);
  ASSERT_EQ(result.logits, FixedBert(weights).forward(kTokens));
  for (std::uint32_t e = 1; e <= store.latest_epoch(Party::kClient); ++e) {
    const auto cp = store.load(Party::kClient, e);
    ASSERT_TRUE(cp.has_value());
    std::printf("CHAOS phase=%s end_frame=%llu\n", cp->phase.c_str(),
                2ull + cp->send_watermark[0] + cp->send_watermark[1]);
  }
  std::printf("CHAOS total_frames=%llu\n",
              static_cast<unsigned long long>(result.frames_sent));
}

// Soak cell: PRIMER_FAULT_KILL_AFTER is set by the harness; recovery must
// be bit-identical to the plaintext reference.
TEST(SessionChaos, KillRecovery) {
  if (std::getenv("PRIMER_FAULT_KILL_AFTER") == nullptr) {
    GTEST_SKIP() << "set PRIMER_FAULT_KILL_AFTER (tools/chaos_soak.py does)";
  }
  Rng wrng(2025);
  const auto weights = quantize(BertWeightsD::random(bert_nano(), wrng));
  PrimerEngine engine(weights, PrimerVariant::kFP);
  SessionStore store;
  const PrimerRunResult result = engine.run_resilient(kTokens, store);
  EXPECT_EQ(result.logits, FixedBert(weights).forward(kTokens));
  EXPECT_EQ(result.restarts, 1);
}

// Soak cell: PRIMER_FAULT_STALL_AFTER / _STALL_S / PRIMER_PHASE_DEADLINE_S
// set by the harness; the stall must become a DeadlineExceeded restart, not
// a hang, and recovery must be bit-identical.
TEST(SessionChaos, StallRecovery) {
  if (std::getenv("PRIMER_FAULT_STALL_AFTER") == nullptr) {
    GTEST_SKIP() << "set PRIMER_FAULT_STALL_AFTER (tools/chaos_soak.py does)";
  }
  Rng wrng(2025);
  const auto weights = quantize(BertWeightsD::random(bert_nano(), wrng));
  PrimerEngine engine(weights, PrimerVariant::kFP);
  SessionStore store;
  const PrimerRunResult result = engine.run_resilient(kTokens, store);
  EXPECT_EQ(result.logits, FixedBert(weights).forward(kTokens));
  EXPECT_EQ(result.restarts, 1);
}

}  // namespace
}  // namespace primer
