// Protocol-layer tests: HGS linear sharing, FHGS Beaver products, CHGS
// merged scores, the LayerNorm circuit, the CtCt baseline product, and the
// end-to-end equality of live PrimerEngine runs against the fixed-point
// reference model.
#include <gtest/gtest.h>

#include "nn/model.h"
#include "proto/attention.h"
#include "proto/linear.h"
#include "proto/primer.h"
#include "ss/secret_share.h"

namespace primer {
namespace {

std::vector<int> default_steps() { return {1, 2, 4, 8, 16}; }

TEST(HgsLinear, SharesReconstructToProduct) {
  ProtocolContext pc(HeProfile::kProto2048, 11, default_steps());
  const std::size_t n = 4, din = 16, dout = 8;
  Rng rng(5);
  const MatI w = random_fp_matrix(rng, din, dout, -1.0, 1.0);
  const std::vector<std::int64_t> bias(dout, fp_encode(0.25));

  HgsLinear layer(pc, w, bias, n, PackingStrategy::kTokensFirst);
  const MatI rc = pc.ring.random(pc.client_rng, n, din);
  layer.offline("qkv", rc);

  // True input X (raw fixed point), server gets D = X - Rc.
  const MatI x = random_fp_matrix(rng, n, din, -2.0, 2.0);
  const MatI d = pc.ring.sub(pc.ring.reduce(x), rc);
  const auto shares = layer.online("qkv", d);

  const MatI got = pc.ring.reconstruct({shares.client, shares.server});
  const MatI expect = fixed_linear_acc(x, w, &bias);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dout; ++j) {
      ASSERT_EQ(got(i, j), expect(i, j)) << i << "," << j;
    }
  }
  // Offline phase must carry the HE traffic; online only plain compute.
  const auto& off = pc.costs.at("offline", "qkv");
  const auto& on = pc.costs.at("online", "qkv");
  EXPECT_GT(off.bytes_sent, 0u);
  EXPECT_EQ(on.bytes_sent, 0u);
  EXPECT_GT(off.he_rotations + off.he_mults, 0u);
  EXPECT_EQ(on.he_mults, 0u);
}

TEST(BaseLinear, SharesReconstructToProduct) {
  ProtocolContext pc(HeProfile::kProto2048, 13, default_steps());
  const std::size_t n = 4, din = 8, dout = 4;
  Rng rng(6);
  const MatI w = random_fp_matrix(rng, din, dout, -1.0, 1.0);
  BaseLinear layer(pc, w, {}, n, PackingStrategy::kFeatureBased);

  const MatI x = random_fp_matrix(rng, n, din, -2.0, 2.0);
  const auto xs = pc.ring.share(x, rng);
  const auto shares = layer.online("qkv", xs.client, xs.server);
  const MatI got = pc.ring.reconstruct({shares.client, shares.server});
  const MatI expect = fixed_linear_acc(x, w, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dout; ++j) {
      ASSERT_EQ(got(i, j), expect(i, j)) << i << "," << j;
    }
  }
  // Everything online for the base protocol.
  EXPECT_GT(pc.costs.at("online", "qkv").bytes_sent, 0u);
}

TEST(FhgsProduct, SharesReconstructToMatrixProduct) {
  ProtocolContext pc(HeProfile::kProto2048, 17, default_steps());
  const std::size_t n = 4, k = 8, m = 4;
  Rng rng(7);
  // Raw 15-bit payloads (Q and K^T in the pipeline).
  const MatI a = random_fp_matrix(rng, n, k, -2.0, 2.0);
  const MatI b = random_fp_matrix(rng, k, m, -2.0, 2.0);

  FhgsProduct prod(pc, n, k, m);
  const MatI ra = pc.ring.random(pc.client_rng, n, k);
  const MatI rb = pc.ring.random(pc.client_rng, k, m);
  prod.offline("qk", ra, rb);
  const MatI da = pc.ring.sub(pc.ring.reduce(a), ra);
  const MatI db = pc.ring.sub(pc.ring.reduce(b), rb);
  const auto shares = prod.online("qk", da, db);

  const MatI got = pc.ring.reconstruct({shares.client, shares.server});
  const MatI expect = a * b;  // untruncated integer accumulation
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      ASSERT_EQ(got(i, j), expect(i, j)) << i << "," << j;
    }
  }
  // FHGS property: the ct-ct work is offline; online HE is ct-pt only.
  EXPECT_EQ(pc.costs.at("offline", "qk").he_ct_mults, 0u);
  EXPECT_EQ(pc.costs.at("online", "qk").he_ct_mults, 0u);
  EXPECT_GT(pc.costs.at("online", "qk").he_mults, 0u);
}

TEST(CtCtProduct, SharesReconstructToMatrixProduct) {
  ProtocolContext pc(HeProfile::kProto2048, 19, default_steps());
  const std::size_t n = 4, k = 8, m = 4;
  Rng rng(8);
  const MatI a = random_fp_matrix(rng, n, k, -2.0, 2.0);
  const MatI b = random_fp_matrix(rng, k, m, -2.0, 2.0);
  const auto as = pc.ring.share(a, rng);
  const auto bs = pc.ring.share(b, rng);

  CtCtProduct prod(pc, n, k, m);
  const auto shares =
      prod.online("qk", as.client, as.server, bs.client, bs.server);
  const MatI got = pc.ring.reconstruct({shares.client, shares.server});
  const MatI expect = a * b;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      ASSERT_EQ(got(i, j), expect(i, j)) << i << "," << j;
    }
  }
  // The baseline really does ciphertext-ciphertext multiplications online.
  EXPECT_GT(pc.costs.at("online", "qk").he_ct_mults, 0u);
}

TEST(ChgsScores, MatchesMergedScoreComputation) {
  ProtocolContext pc(HeProfile::kProto2048, 23, default_steps());
  const std::size_t n = 4, vocab = 16, d = 8, dh = 4;
  Rng rng(9);
  const MatI we = random_fp_matrix(rng, vocab, d, -0.5, 0.5);
  const MatI pos = random_fp_matrix(rng, n, d, -0.2, 0.2);
  const MatI wq = random_fp_matrix(rng, d, dh, -0.3, 0.3);
  const MatI wk = random_fp_matrix(rng, d, dh, -0.3, 0.3);

  // Integer one-hot input.
  MatI x(n, vocab);
  for (std::size_t i = 0; i < n; ++i) x(i, (i * 5) % vocab) = 1;

  ChgsScores chgs(pc, n, we, pos, wq, wk);
  const MatI r0 = pc.ring.random(pc.client_rng, n, vocab);
  chgs.offline("qk", r0);
  const MatI d0 = pc.ring.sub(pc.ring.reduce(x), r0);
  const auto shares = chgs.online("qk", d0);
  const MatI got = pc.ring.reconstruct({shares.client, shares.server});

  // Reference: U = X*WE + pos (raw), scores = (U*wq) * (U*wk)^T, 4*frac.
  const MatI u = x * we + pos;
  const MatI gq = u * wq;
  const MatI gk = u * wk;
  const MatI expect = gq * gk.transposed();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(got(i, j), expect(i, j)) << i << "," << j;
    }
  }
}

TEST(LayerNormCircuit, MatchesFixedReference) {
  const std::uint64_t t = make_params(HeProfile::kProto2048).t;
  const std::size_t w = share_width(t);
  const std::size_t d = 8;
  LayerNormCircuitSpec spec;
  spec.t = t;
  spec.d = d;
  spec.frac_shift = 8;
  spec.gamma.assign(d, fp_encode(1.0));
  spec.beta.assign(d, fp_encode(0.0));
  spec.gamma[2] = fp_encode(1.5);
  spec.beta[3] = fp_encode(-0.25);
  const Circuit c = make_layernorm_circuit(spec);

  Rng rng(31);
  const ShareRing ring(t);
  for (int iter = 0; iter < 5; ++iter) {
    // acc: product-domain values; res: raw values.
    std::vector<std::int64_t> acc(d), res(d);
    for (auto& v : acc) v = rng.uniform_int(-400000, 400000);
    for (auto& v : res) v = rng.uniform_int(-5000, 5000);

    MatI acc_m(1, d), res_m(1, d);
    for (std::size_t i = 0; i < d; ++i) {
      acc_m(0, i) = acc[i];
      res_m(0, i) = res[i];
    }
    const auto acc_sh = ring.share(acc_m, rng);
    const auto res_sh = ring.share(res_m, rng);
    const MatI rc = ring.random(rng, 1, d);

    auto bits_of = [&](const MatI& m) {
      std::vector<bool> bits;
      for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t bb = 0; bb < w; ++bb) {
          bits.push_back((static_cast<std::uint64_t>(m(0, i)) >> bb) & 1);
        }
      }
      return bits;
    };
    std::vector<bool> in = bits_of(acc_sh.server);
    auto tmp = bits_of(res_sh.server);
    in.insert(in.end(), tmp.begin(), tmp.end());
    tmp = bits_of(acc_sh.client);
    in.insert(in.end(), tmp.begin(), tmp.end());
    tmp = bits_of(res_sh.client);
    in.insert(in.end(), tmp.begin(), tmp.end());
    tmp = bits_of(rc);
    in.insert(in.end(), tmp.begin(), tmp.end());

    const auto out = eval_circuit(c, in);

    // Reference.
    std::vector<std::int64_t> s(d);
    for (std::size_t i = 0; i < d; ++i) {
      s[i] = fp_saturate(fp_saturate(acc[i] >> 8) + res[i]);
    }
    const auto expect = fixed_layernorm_row(s, spec.gamma, spec.beta);

    for (std::size_t i = 0; i < d; ++i) {
      std::uint64_t v = 0;
      for (std::size_t bb = 0; bb < w; ++bb) {
        if (out[i * w + bb]) v |= std::uint64_t{1} << bb;
      }
      const std::int64_t got =
          ring.center(static_cast<std::int64_t>(v) + rc(0, i));
      ASSERT_EQ(got, expect[i]) << "element " << i << " iter " << iter;
    }
  }
}

// --- end-to-end -------------------------------------------------------------

class PrimerE2E : public ::testing::Test {
 protected:
  static BertWeightsI nano_weights() {
    Rng rng(2025);
    const auto cfg = bert_nano();
    return quantize(BertWeightsD::random(cfg, rng));
  }
};

TEST_F(PrimerE2E, PrimerFMatchesFixedModelExactly) {
  const auto w = nano_weights();
  const FixedBert ref(w);
  const std::vector<std::size_t> tokens = {3, 17, 9, 28};
  PrimerEngine engine(w, PrimerVariant::kF);
  const auto result = engine.run(tokens);
  EXPECT_EQ(result.logits, ref.forward(tokens));
  EXPECT_EQ(result.predicted, ref.predict(tokens));
  EXPECT_GT(result.offline_total_s(), 0.0);
  EXPECT_GT(result.online_total_s(), 0.0);
  EXPECT_GT(result.total_bytes, 0u);
}

TEST_F(PrimerE2E, PrimerFPMatchesFixedModelExactly) {
  const auto w = nano_weights();
  const FixedBert ref(w);
  const std::vector<std::size_t> tokens = {0, 31, 15, 8};
  PrimerEngine engine(w, PrimerVariant::kFP);
  const auto result = engine.run(tokens);
  EXPECT_EQ(result.logits, ref.forward(tokens));
}

TEST_F(PrimerE2E, PrimerFpcMatchesChgsReference) {
  const auto w = nano_weights();
  const std::vector<std::size_t> tokens = {5, 12, 30, 2};
  PrimerEngine engine(w, PrimerVariant::kFPC);
  const auto result = engine.run(tokens);
  EXPECT_EQ(result.logits, fixed_forward_chgs(w, tokens));
  // The merged path should stay close to the standard fixed model.
  const FixedBert ref(w);
  const auto ref_logits = ref.forward(tokens);
  for (std::size_t i = 0; i < ref_logits.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(result.logits[i]),
                static_cast<double>(ref_logits[i]), 64.0);  // 0.25 in value
  }
}

TEST_F(PrimerE2E, PrimerBaseMatchesFixedModelExactly) {
  const auto w = nano_weights();
  const FixedBert ref(w);
  const std::vector<std::size_t> tokens = {7, 7, 19, 23};
  PrimerEngine engine(w, PrimerVariant::kBase);
  const auto result = engine.run(tokens);
  EXPECT_EQ(result.logits, ref.forward(tokens));
  // Base has no offline phase at all.
  EXPECT_EQ(result.offline_total_s(), 0.0);
}

TEST_F(PrimerE2E, OfflineOffloadShrinksOnlineTraffic) {
  const auto w = nano_weights();
  const std::vector<std::size_t> tokens = {1, 2, 3, 4};
  PrimerEngine base(w, PrimerVariant::kBase);
  PrimerEngine fp(w, PrimerVariant::kFP);
  const auto rb = base.run(tokens);
  const auto rf = fp.run(tokens);
  // The paper's headline: offline offload slashes online latency.
  const PhaseCost base_on = rb.costs.phase_total("online");
  const PhaseCost fp_on = rf.costs.phase_total("online");
  EXPECT_LT(fp_on.bytes_sent, base_on.bytes_sent);
  EXPECT_EQ(fp_on.he_ct_mults, 0u);
  EXPECT_GT(base_on.he_ct_mults, 0u);
}

}  // namespace
}  // namespace primer
