// Serving-runtime tests: multi-tenant correctness under concurrent load,
// per-session fault isolation (kill / stall / hostile corruption), typed
// admission-control shedding, stalled-session eviction, per-client key-cache
// amortization, quarantine, and graceful drain.
//
// ServingChaos.Soak is the env-gated cell tools/server_chaos_soak.py
// drives: dozens of concurrent tenants with per-session fault scripts,
// asserting faulted sessions resolve to typed outcomes, unfaulted sessions
// stay bit-identical to the plaintext reference, and the server drains
// cleanly after.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/primer_api.h"
#include "nn/model.h"
#include "nn/train.h"
#include "serving/server.h"

namespace primer {
namespace {

const std::vector<std::size_t> kTokens = {3, 17, 9, 28};
const std::vector<std::size_t> kTokensAlt = {1, 2, 4, 8};

// Shared quantized nano model + its plaintext fixed-point reference, built
// once.  kF / kFP sessions must match this bit for bit.
struct Fixture {
  BertWeightsI weights;
  std::vector<std::int64_t> ref;      // FixedBert(kTokens)
  std::vector<std::int64_t> ref_alt;  // FixedBert(kTokensAlt)
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Rng rng(2025);
    Fixture x{quantize(BertWeightsD::random(bert_nano(), rng)), {}, {}};
    x.ref = FixedBert(x.weights).forward(kTokens);
    x.ref_alt = FixedBert(x.weights).forward(kTokensAlt);
    return x;
  }();
  return f;
}

ModelSpec nano_spec(PrimerVariant v = PrimerVariant::kFP) {
  ModelSpec spec;
  spec.weights = fixture().weights;
  spec.variant = v;
  return spec;
}

InferenceRequest request(std::uint64_t client,
                         std::vector<std::size_t> tokens = kTokens) {
  InferenceRequest req;
  req.client_id = client;
  req.tokens = std::move(tokens);
  return req;
}

// --- multi-tenant correctness ------------------------------------------------

TEST(Serving, ConcurrentSessionsBitIdenticalToReference) {
  ServerConfig cfg;
  cfg.workers = 3;
  cfg.max_queue = 16;
  PrimerServer server({nano_spec()}, cfg);

  std::vector<std::shared_ptr<SessionTicket>> tickets;
  for (std::uint64_t c = 1; c <= 6; ++c) {
    tickets.push_back(server.submit(request(c)));
  }
  for (const auto& t : tickets) {
    const SessionOutcome out = t->wait();
    ASSERT_EQ(out.status, SessionStatus::kCompleted) << out.error;
    EXPECT_EQ(out.result.logits, fixture().ref);
    EXPECT_EQ(out.restarts, 0);
    EXPECT_GT(out.result.checkpoints, 0u);
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.accepted, 6u);
  EXPECT_EQ(s.completed, 6u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_GT(s.p50_latency_s, 0.0);
  EXPECT_GE(s.p99_latency_s, s.p50_latency_s);
}

TEST(Serving, ServerHandleEntryPoint) {
  PrimerServer server({nano_spec()});
  ServerHandle alice(server, 42);
  const InferenceResult r = alice.infer(kTokens);
  EXPECT_EQ(r.logits, fixture().ref);
  EXPECT_EQ(r.logits_real.size(), r.logits.size());
}

TEST(Serving, RejectsMalformedRequests) {
  PrimerServer server({nano_spec()});
  EXPECT_THROW(server.submit(request(0)), std::invalid_argument);
  InferenceRequest bad = request(1);
  bad.model = 7;
  EXPECT_THROW(server.submit(std::move(bad)), std::invalid_argument);
}

// --- per-session fault isolation ---------------------------------------------

TEST(Serving, FaultedSessionsFailAloneWithTypedOutcomes) {
  ServerConfig cfg;
  cfg.workers = 3;
  cfg.max_queue = 16;
  cfg.phase_deadline_s = 60.0;  // sim-second budget the injected stall trips
  cfg.max_restarts = 3;
  PrimerServer server({nano_spec()}, cfg);

  // Tenant 1: peer killed mid-run -> retryable -> resumed, bit-identical.
  InferenceRequest killed = request(1);
  killed.faults.kill_after = 40;
  // Tenant 2: 300 sim-second stall against the 60 s phase budget ->
  // DeadlineExceeded -> retryable -> resumed.
  InferenceRequest stalled = request(2);
  stalled.faults.stall_after = 25;
  stalled.faults.stall_s = 300.0;
  // Tenant 3: hostile peer — checksum-valid but structurally corrupt key
  // manifest (frame 3 = first post-handshake frame) -> fatal kMalformed ->
  // poisoned + quarantined.
  InferenceRequest hostile = request(3);
  hostile.faults.hostile_after = 3;

  auto t1 = server.submit(std::move(killed));
  auto t2 = server.submit(std::move(stalled));
  auto t3 = server.submit(std::move(hostile));
  auto t4 = server.submit(request(4));
  auto t5 = server.submit(request(5));

  const SessionOutcome o1 = t1->wait();
  ASSERT_EQ(o1.status, SessionStatus::kCompleted) << o1.error;
  EXPECT_EQ(o1.result.logits, fixture().ref);
  EXPECT_GE(o1.restarts, 1);
  // (Whether the restart resumed from epoch >= 1 depends on where frame 40
  // falls relative to the first checkpoint; bit-identity is the contract.)

  const SessionOutcome o2 = t2->wait();
  ASSERT_EQ(o2.status, SessionStatus::kCompleted) << o2.error;
  EXPECT_EQ(o2.result.logits, fixture().ref);
  EXPECT_GE(o2.restarts, 1);

  const SessionOutcome o3 = t3->wait();
  ASSERT_EQ(o3.status, SessionStatus::kPoisoned) << o3.error;
  ASSERT_TRUE(o3.error_kind.has_value());
  EXPECT_EQ(*o3.error_kind, ProtocolErrorKind::kMalformed) << o3.error;
  EXPECT_TRUE(server.sessions().is_quarantined(3));

  // The faulted tenants never touched the clean ones.
  for (auto& t : {t4, t5}) {
    const SessionOutcome o = t->wait();
    ASSERT_EQ(o.status, SessionStatus::kCompleted) << o.error;
    EXPECT_EQ(o.result.logits, fixture().ref);
    EXPECT_EQ(o.restarts, 0);
  }

  // A quarantined client is refused (typed outcome) until released...
  const SessionOutcome again = server.infer(request(3));
  EXPECT_EQ(again.status, SessionStatus::kRejected);
  EXPECT_NE(again.error.find("quarantined"), std::string::npos);
  // ...and its poisoned key/checkpoint cache was dropped.
  EXPECT_EQ(server.sessions().stats().quarantined, 1u);

  const ServerStats s = server.stats();
  EXPECT_EQ(s.poisoned, 1u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.rejected, 1u);
}

// --- admission control -------------------------------------------------------

TEST(Serving, SaturatedServerShedsTyped) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_queue = 1;
  cfg.policy = LoadShedPolicy::kRejectNewest;
  PrimerServer server({nano_spec()}, cfg);

  // Burst of 6 submits against 1 worker + 1 queue slot: at most 2 admitted
  // immediately; the rest must shed with a typed retryable error, and the
  // queue must never grow past its cap.
  std::vector<std::shared_ptr<SessionTicket>> admitted;
  std::size_t shed = 0;
  for (std::uint64_t c = 1; c <= 6; ++c) {
    try {
      admitted.push_back(server.submit(request(c)));
    } catch (const ServerOverloaded& e) {
      ++shed;
      EXPECT_TRUE(e.retryable());
      EXPECT_EQ(e.kind(), ProtocolErrorKind::kServerOverloaded);
      EXPECT_LE(e.queue_depth(), cfg.max_queue);
    }
    EXPECT_LE(server.stats().queue_depth, cfg.max_queue);
  }
  ASSERT_GE(shed, 4u);  // 6 submits, at most queue+running admissible at once
  for (const auto& t : admitted) {
    const SessionOutcome o = t->wait();
    ASSERT_EQ(o.status, SessionStatus::kCompleted) << o.error;
    EXPECT_EQ(o.result.logits, fixture().ref);
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.shed, shed);
  EXPECT_EQ(s.completed, admitted.size());

  // A shed client is not poisoned: resubmitting once load clears succeeds.
  const SessionOutcome retry = server.infer(request(1));
  EXPECT_EQ(retry.status, SessionStatus::kCompleted) << retry.error;
}

TEST(Serving, EvictsLongestStalledUnderPressure) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_queue = 1;
  cfg.policy = LoadShedPolicy::kEvictLongestStalled;
  cfg.stall_grace_s = 0.3;
  PrimerServer server({nano_spec()}, cfg);

  // Tenant 1 wedges: a 30-wall-second stall with no progress beats.
  InferenceRequest wedged = request(1);
  wedged.faults.stall_after = 20;
  wedged.faults.stall_s = 0.0;
  wedged.faults.stall_wall_s = 30.0;
  wedged.retry.max_attempts = 0;  // no retry layer to muddy the eviction
  auto t1 = server.submit(std::move(wedged));

  // Let it start and visibly stall past the grace period.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  while (t1->progress().seconds_since_beat() < 3 * cfg.stall_grace_s &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GT(t1->progress().seconds_since_beat(), cfg.stall_grace_s);

  // Saturate: tenant 2 fills the queue, tenant 3 forces the policy choice —
  // the wedged session is evicted instead of shedding the newcomer.
  auto t2 = server.submit(request(2));
  auto t3 = server.submit(request(3));

  const SessionOutcome o1 = t1->wait();
  EXPECT_EQ(o1.status, SessionStatus::kEvicted) << o1.error;
  EXPECT_NE(o1.error.find("evicted"), std::string::npos) << o1.error;

  for (auto& t : {t2, t3}) {
    const SessionOutcome o = t->wait();
    ASSERT_EQ(o.status, SessionStatus::kCompleted) << o.error;
    EXPECT_EQ(o.result.logits, fixture().ref);
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.evicted, 1u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.shed, 0u);

  // Eviction is not quarantine: the tenant may come back (fresh request)...
  EXPECT_FALSE(server.sessions().is_quarantined(1));
  const SessionOutcome back = server.infer(request(1));
  EXPECT_EQ(back.status, SessionStatus::kCompleted) << back.error;
  EXPECT_EQ(back.result.logits, fixture().ref);
}

// --- per-client key-cache amortization ---------------------------------------

TEST(Serving, ReconnectingClientReplaysKeysAtZeroWireCost) {
  ServerConfig cfg;
  cfg.workers = 1;
  PrimerServer server({nano_spec()}, cfg);

  const SessionOutcome first = server.infer(request(9));
  ASSERT_EQ(first.status, SessionStatus::kCompleted) << first.error;
  EXPECT_EQ(first.result.resumed_epoch, 0u);

  // Same client, same request: the resume handshake finds the cached
  // checkpoints and replays the whole prefix — key transfer included —
  // without re-paying the wire.
  const SessionOutcome second = server.infer(request(9));
  ASSERT_EQ(second.status, SessionStatus::kCompleted) << second.error;
  EXPECT_EQ(second.result.logits, fixture().ref);
  EXPECT_GT(second.result.resumed_epoch, 0u);
  EXPECT_GT(second.result.replayed_frames, 0u);
  EXPECT_GT(second.result.replayed_bytes, 0u);
  EXPECT_LT(second.result.total_bytes, first.result.total_bytes / 4)
      << "reconnect should amortize the multi-MB key transfer";
  EXPECT_GE(server.sessions().stats().resumable_hits, 1u);

  // Different tokens = different protocol: the cache must reset, not
  // resume against a journal describing another run.
  const SessionOutcome third = server.infer(request(9, kTokensAlt));
  ASSERT_EQ(third.status, SessionStatus::kCompleted) << third.error;
  EXPECT_EQ(third.result.logits, fixture().ref_alt);
  EXPECT_EQ(third.result.resumed_epoch, 0u);
  EXPECT_GE(server.sessions().stats().resets, 1u);
}

TEST(Serving, DurableStoreSurvivesServerRestart) {
  char tmpl[] = "primer_serving_store_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string root = tmpl;

  ServerConfig cfg;
  cfg.workers = 1;
  cfg.store_dir = root;
  std::uint64_t first_bytes = 0;
  {
    PrimerServer server({nano_spec()}, cfg);
    EXPECT_TRUE(server.sessions().durable());
    const SessionOutcome first = server.infer(request(9));
    ASSERT_EQ(first.status, SessionStatus::kCompleted) << first.error;
    EXPECT_EQ(first.result.logits, fixture().ref);
    // The checkpoints genuinely hit the disk, and the cost is visible.
    EXPECT_GT(first.result.store_bytes_written, 0u);
    EXPECT_GT(first.result.store_fsyncs, 0u);
    EXPECT_EQ(first.result.store_degradations, 0u);
    first_bytes = first.result.total_bytes;
    const ServerStats s = server.stats();
    EXPECT_GT(s.sessions.store_bytes_written, 0u);
    EXPECT_GT(s.sessions.store_fsyncs, 0u);
  }
  // A brand-new server over the same root — the restarted process — must
  // re-adopt the client from disk, so its next request replays the cached
  // key material at zero wire cost instead of re-paying the transfer.
  PrimerServer server({nano_spec()}, cfg);
  EXPECT_GE(server.stats().sessions.recovered_clients, 1u);
  const SessionOutcome again = server.infer(request(9));
  ASSERT_EQ(again.status, SessionStatus::kCompleted) << again.error;
  EXPECT_EQ(again.result.logits, fixture().ref);
  EXPECT_GT(again.result.resumed_epoch, 0u);
  EXPECT_GT(again.result.replayed_bytes, 0u);
  EXPECT_LT(again.result.total_bytes, first_bytes / 4)
      << "restart should not re-pay the multi-MB key transfer";
  EXPECT_GE(server.stats().sessions.resumable_hits, 1u);

  // Scratch cleanup (test-local; the store itself never deletes the root).
  const std::string cmd = "rm -rf " + root;
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

// --- graceful drain ----------------------------------------------------------

TEST(Serving, GracefulDrainCheckpointsInFlightWithinDeadline) {
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.max_queue = 8;
  PrimerServer server({nano_spec()}, cfg);

  std::vector<std::shared_ptr<SessionTicket>> tickets;
  for (std::uint64_t c = 1; c <= 5; ++c) {
    tickets.push_back(server.submit(request(c)));
  }
  // Give the workers a moment to pull in-flight sessions, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const DrainReport report = server.drain(/*deadline_s=*/30.0);

  EXPECT_TRUE(report.met_deadline);
  EXPECT_EQ(report.forced, 0u);
  EXPECT_LT(report.duration_s, 30.0);
  EXPECT_GT(report.shed_queued + report.drained_running +
                report.completed_during,
            0u);

  std::size_t drained = 0, completed = 0, shed = 0;
  for (const auto& t : tickets) {
    const SessionOutcome o = t->wait();
    switch (o.status) {
      case SessionStatus::kDrained:
        ++drained;
        // Stopped at a phase boundary with the checkpoint persisted: a
        // later request from this client resumes exactly there.
        EXPECT_GT(o.checkpoint_epoch, 0u) << o.error;
        break;
      case SessionStatus::kCompleted:
        ++completed;
        EXPECT_EQ(o.result.logits, fixture().ref);
        break;
      case SessionStatus::kShed:
        ++shed;
        EXPECT_NE(o.error.find("draining"), std::string::npos);
        break;
      default:
        FAIL() << "unexpected outcome " << session_status_name(o.status)
               << ": " << o.error;
    }
  }
  EXPECT_EQ(drained + completed + shed, 5u);
  EXPECT_EQ(report.shed_queued, shed);

  // Drained server admits nothing, typed.
  EXPECT_TRUE(server.draining());
  try {
    (void)server.submit(request(7));
    FAIL() << "expected ServerOverloaded";
  } catch (const ServerOverloaded& e) {
    EXPECT_TRUE(e.retryable());
    EXPECT_NE(std::string(e.what()).find("draining"), std::string::npos);
  }
}

// --- chaos soak cell (tools/server_chaos_soak.py) ----------------------------

std::uint64_t env_u64_or(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

TEST(ServingChaos, Soak) {
  if (std::getenv("PRIMER_SERVER_SOAK") == nullptr) {
    GTEST_SKIP() << "set PRIMER_SERVER_SOAK=1 (tools/server_chaos_soak.py)";
  }
  const std::uint64_t seed = env_u64_or("PRIMER_SERVER_SOAK_SEED", 1);
  const std::uint64_t n = env_u64_or("PRIMER_SERVER_SOAK_SESSIONS", 24);
  ServerConfig cfg;
  cfg.workers = env_u64_or("PRIMER_SERVER_SOAK_WORKERS", 4);
  cfg.max_queue = n;  // admission is not under test here; isolation is
  cfg.phase_deadline_s = 60.0;
  cfg.max_restarts = 3;
  // Optionally durable: the soak harness points this at a scratch root to
  // run the whole chaos matrix against real on-disk stores.
  if (const char* sd = std::getenv("PRIMER_SERVING_STORE_DIR")) {
    cfg.store_dir = sd;
  }
  PrimerServer server({nano_spec(PrimerVariant::kFP),
                       nano_spec(PrimerVariant::kF)},
                      cfg);

  // Per-session fault script from one seeded Rng: ~half clean, the rest
  // split across kill / sim-stall / hostile corruption at a random frame.
  Rng rng(seed);
  struct Case {
    std::shared_ptr<SessionTicket> ticket;
    int fault;  // 0 none, 1 kill, 2 stall, 3 hostile
  };
  std::vector<Case> cases;
  std::uint64_t injected = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    InferenceRequest req = request(i + 1);
    req.model = i % 2;
    const int fault = static_cast<int>(rng.uniform(8));  // 0..7
    const std::uint64_t frame = 3 + rng.uniform(60);
    int kind = 0;
    if (fault == 1 || fault == 2) {
      req.faults.kill_after = frame;
      kind = 1;
    } else if (fault == 3 || fault == 4) {
      req.faults.stall_after = frame;
      req.faults.stall_s = 300.0;
      kind = 2;
    } else if (fault == 5) {
      req.faults.hostile_after = 3;  // first post-handshake frame
      kind = 3;
    }
    if (kind != 0) ++injected;
    cases.push_back({server.submit(std::move(req)), kind});
  }

  std::uint64_t completed = 0, poisoned = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const SessionOutcome o = cases[i].ticket->wait();
    // kF and kFP share the same bit-exact fixed-point reference.
    const auto& ref = fixture().ref;
    if (cases[i].fault == 3) {
      ASSERT_EQ(o.status, SessionStatus::kPoisoned)
          << "case " << i << ": " << o.error;
      ASSERT_TRUE(o.error_kind.has_value());
      EXPECT_FALSE(protocol_error_retryable(*o.error_kind));
      ++poisoned;
      continue;
    }
    // Clean, killed and stalled sessions must all complete bit-identical —
    // faults are retryable and scoped to their own session.
    ASSERT_EQ(o.status, SessionStatus::kCompleted)
        << "case " << i << " (fault " << cases[i].fault << "): " << o.error;
    ASSERT_EQ(o.result.logits, ref) << "case " << i;
    if (cases[i].fault != 0) {
      EXPECT_GE(o.restarts, 1) << "case " << i;
    }
    ++completed;
  }

  const DrainReport drain = server.drain(30.0);
  EXPECT_TRUE(drain.met_deadline);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, completed);
  EXPECT_EQ(s.poisoned, poisoned);

  // Machine-readable summary for the soak harness.
  std::printf(
      "SERVERSOAK {\"seed\":%llu,\"sessions\":%llu,\"injected\":%llu,"
      "\"completed\":%llu,\"poisoned\":%llu,\"evicted\":%llu,"
      "\"p50_s\":%.3f,\"p99_s\":%.3f}\n",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(n),
      static_cast<unsigned long long>(injected),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(poisoned),
      static_cast<unsigned long long>(s.evicted), s.p50_latency_s,
      s.p99_latency_s);
}

}  // namespace
}  // namespace primer
