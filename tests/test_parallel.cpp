// Tests for the parallel execution layer (common/parallel.h): thread-pool
// semantics (coverage, small ranges, exception propagation, nesting) and the
// determinism guarantee — with the pool enabled, HE ciphertexts and HGS
// linear-protocol shares are byte-identical to the serial path, because only
// pure modular arithmetic on disjoint data is parallelized and all Rng
// sampling stays on the calling thread.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/fixed_point.h"
#include "common/parallel.h"
#include "common/serialize.h"
#include "proto/linear.h"
#include "ss/secret_share.h"

namespace primer {
namespace {

// Restores the previous global thread count when the test scope exits.
class ThreadGuard {
 public:
  explicit ThreadGuard(std::size_t n) : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~ThreadGuard() { set_num_threads(prev_); }

 private:
  std::size_t prev_;
};

TEST(ParallelFor, EmptyRange) {
  ThreadGuard guard(4);
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  parallel_for(7, 3, [&](std::size_t) { ++calls; });
  parallel_for_chunks(2, 2, [&](std::size_t, std::size_t) { ++calls; });
  parallel_for_2d(0, 10, [&](std::size_t, std::size_t) { ++calls; });
  parallel_for_2d(10, 0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, RangeSmallerThanPool) {
  ThreadGuard guard(8);
  std::vector<std::atomic<int>> hits(3);
  parallel_for(0, 3, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ChunksPartitionTheRange) {
  ThreadGuard guard(4);
  const std::size_t n = 777;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, ExceptionPropagates) {
  ThreadGuard guard(4);
  EXPECT_THROW(
      parallel_for(0, 100,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> calls{0};
  parallel_for(0, 10, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadGuard guard(4);
  const std::size_t rows = 8, cols = 16;
  std::vector<std::atomic<int>> hits(rows * cols);
  parallel_for(0, rows, [&](std::size_t i) {
    // Nested region: must execute inline without deadlocking.
    parallel_for(0, cols, [&](std::size_t j) { ++hits[i * cols + j]; });
  });
  for (std::size_t i = 0; i < rows * cols; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, TwoDimensionalCoverage) {
  ThreadGuard guard(4);
  const std::size_t rows = 13, cols = 7;
  std::vector<std::atomic<int>> hits(rows * cols);
  parallel_for_2d(rows, cols,
                  [&](std::size_t i, std::size_t j) { ++hits[i * cols + j]; });
  for (std::size_t i = 0; i < rows * cols; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelConfig, SetNumThreads) {
  ThreadGuard guard(1);
  EXPECT_EQ(num_threads(), 1u);
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3u);
  set_num_threads(0);  // 0 selects hardware concurrency
  EXPECT_EQ(num_threads(), hardware_threads());
  EXPECT_GE(hardware_threads(), 1u);
}

// ---------------------------------------------------------------------------
// Determinism: serial vs threaded runs must be bit-identical.
// ---------------------------------------------------------------------------

struct PipelineOutput {
  std::vector<std::uint8_t> matmul_ct_bytes;  // serialized matmul result
  MatI matmul_result;                         // decrypted ring product
  MatI hgs_client, hgs_server;                // HGS linear shares
};

// One fixed-seed run of the heavy HE paths: encrypted packed matmul with
// ciphertext serialization, then the HGS linear protocol offline + online.
PipelineOutput run_pipeline() {
  PipelineOutput out;
  const std::size_t tokens = 4, d_in = 16, d_out = 8;

  // Encrypted packed matmul.
  {
    HeContext ctx(make_params(HeProfile::kProto2048));
    Rng rng(42);
    KeyGenerator keygen(ctx, rng);
    BatchEncoder encoder(ctx);
    Encryptor enc(ctx, keygen.secret_key(), rng);
    Decryptor dec(ctx, keygen.secret_key());
    Evaluator eval(ctx);
    const ShareRing ring(ctx.t());
    const MatI x = ring.random(rng, tokens, d_in);
    const MatI w = random_fp_matrix(rng, d_in, d_out, -1.0, 1.0);

    PackedMatmul mm(ctx, encoder, eval, PackingStrategy::kTokensFirst);
    const auto gk = keygen.make_galois_keys(mm.rotation_steps(tokens));
    const auto packed = mm.encrypt_input(x, enc);
    const auto result = mm.multiply(packed, w, tokens, ctx.t(), gk, nullptr);
    ByteWriter wtr;
    for (const auto& ct : result) eval.serialize(ct, wtr);
    out.matmul_ct_bytes = wtr.take();
    out.matmul_result = mm.decrypt_result(result, dec, tokens, d_out);
  }

  // HGS linear protocol through the full runtime (send_cts/recv_cts paths).
  {
    ProtocolContext pc(HeProfile::kProto2048, 11, {1, 2, 4, 8, 16});
    Rng rng(5);
    const MatI w = random_fp_matrix(rng, d_in, d_out, -1.0, 1.0);
    const std::vector<std::int64_t> bias(d_out, fp_encode(0.25));
    HgsLinear layer(pc, w, bias, tokens, PackingStrategy::kTokensFirst);
    const MatI rc = pc.ring.random(pc.client_rng, tokens, d_in);
    layer.offline("qkv", rc);
    const MatI x = random_fp_matrix(rng, tokens, d_in, -2.0, 2.0);
    const MatI d = pc.ring.sub(pc.ring.reduce(x), rc);
    const auto shares = layer.online("qkv", d);
    out.hgs_client = shares.client;
    out.hgs_server = shares.server;
  }
  return out;
}

void expect_same_mat(const MatI& a, const MatI& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a(i, j), b(i, j)) << what << " at " << i << "," << j;
    }
  }
}

TEST(ParallelDeterminism, ThreadedMatchesSerialBitExactly) {
  PipelineOutput serial, threaded;
  {
    ThreadGuard guard(1);
    serial = run_pipeline();
  }
  {
    ThreadGuard guard(4);
    threaded = run_pipeline();
  }
  ASSERT_EQ(serial.matmul_ct_bytes.size(), threaded.matmul_ct_bytes.size());
  EXPECT_EQ(serial.matmul_ct_bytes, threaded.matmul_ct_bytes)
      << "ciphertext serialization differs between serial and threaded runs";
  expect_same_mat(serial.matmul_result, threaded.matmul_result,
                  "decrypted matmul");
  expect_same_mat(serial.hgs_client, threaded.hgs_client, "HGS client share");
  expect_same_mat(serial.hgs_server, threaded.hgs_server, "HGS server share");
}

}  // namespace
}  // namespace primer
