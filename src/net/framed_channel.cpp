#include "net/framed_channel.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace primer {

namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    return fallback;
  }
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  try {
    return std::stoi(v);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::string describe(Party to, MessageKind expect) {
  return std::string(party_name(to)) + " awaiting " +
         message_kind_name(expect);
}

}  // namespace

RetryPolicy RetryPolicy::from_env() {
  RetryPolicy p;
  p.max_attempts = std::max(0, env_int("PRIMER_RETRY_MAX", p.max_attempts));
  p.backoff_s = env_double("PRIMER_RETRY_BACKOFF_S", p.backoff_s);
  return p;
}

void FramedChannel::transmit(Party from, DirState& dir,
                             std::vector<std::uint8_t> frame,
                             bool allow_hold) {
  if (!injector_.spec().any()) {
    ch_.send(from, std::move(frame));
    return;
  }
  FaultInjector::Outcome out = injector_.apply(frame, allow_hold);
  ch_.add_simulated_delay(out.extra_delay_s);
  for (auto& f : out.deliver) ch_.send(from, std::move(f));
  if (out.has_held) {
    dir.held = std::move(out.held);
    dir.has_held = true;
  }
}

void FramedChannel::send(Party from, MessageKind kind,
                         const std::uint8_t* payload, std::size_t n) {
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("FramedChannel::send: payload of " +
                            std::to_string(n) +
                            " bytes exceeds the u32 length field");
  }
  DirState& dir = dir_[static_cast<int>(from)];
  const std::uint64_t seq = dir.next_send_seq++;
  std::vector<std::uint8_t> frame = encode_frame(kind, seq, payload, n);
  ++stats_.frames_sent;
  stats_.framing_bytes += FrameHeader::kWireSize;

  // A frame the injector held back is released only after the *next* send
  // in the same direction — that is what makes it a reordering.
  std::vector<std::uint8_t> release;
  bool has_release = dir.has_held;
  if (has_release) {
    release = std::move(dir.held);
    dir.has_held = false;
  }

  if (injector_.spec().any()) {
    // Keep a pristine copy for retransmission; delivery prunes it.
    dir.unacked.emplace(seq, frame);
    if (dir.unacked.size() > kUnackedCap) {
      dir.unacked.erase(dir.unacked.begin());
    }
  }
  transmit(from, dir, std::move(frame), /*allow_hold=*/true);
  if (has_release) ch_.send(from, std::move(release));
}

std::vector<std::uint8_t> FramedChannel::deliver(
    DirState& dir, std::uint64_t seq, MessageKind kind,
    std::vector<std::uint8_t> payload, MessageKind expect,
    const std::string& where) {
  if (kind != expect) {
    throw ProtocolError(ProtocolErrorKind::kKindMismatch,
                        where + ": got " + message_kind_name(kind) +
                            " frame seq " + std::to_string(seq));
  }
  dir.next_recv_seq = seq + 1;
  // In-order delivery is an implicit ack for everything up to `seq`.
  dir.unacked.erase(dir.unacked.begin(), dir.unacked.upper_bound(seq));
  ++stats_.frames_delivered;
  return payload;
}

void FramedChannel::request_retransmit(Party to, DirState& dir,
                                       std::uint64_t want, int attempt) {
  ++stats_.retry_rounds;
  // The receiver's retransmit request is a header-sized control frame; it
  // is charged to the cost model (bytes + flight pattern) but never
  // enqueued — the in-process peer must not misread it as data.
  ch_.charge_control(to, FrameHeader::kWireSize);
  stats_.control_bytes += FrameHeader::kWireSize;
  double backoff = policy_.backoff_s;
  for (int r = 1; r < attempt && backoff < policy_.backoff_max_s; ++r) {
    backoff *= 2.0;
  }
  ch_.add_simulated_delay(std::min(backoff, policy_.backoff_max_s));

  // Resend every pristine frame at or past the gap that is not already
  // stashed.  Retransmissions re-roll the injector but are never held for
  // reordering — holding a recovery frame would defeat recovery.
  const Party from = other(to);
  for (const auto& [seq, frame] : dir.unacked) {
    if (seq < want || dir.stash.count(seq) != 0) continue;
    ++stats_.retransmit_frames;
    stats_.retransmit_bytes += frame.size();
    transmit(from, dir, frame, /*allow_hold=*/false);
  }
}

std::vector<std::uint8_t> FramedChannel::recv_expect(Party to,
                                                     MessageKind expect) {
  DirState& dir = dir_[static_cast<int>(other(to))];
  const std::string where = describe(to, expect);
  int attempts = 0;
  for (int iter = 0; iter < kMaxLoopIters; ++iter) {
    const std::uint64_t want = dir.next_recv_seq;

    auto stashed = dir.stash.find(want);
    if (stashed != dir.stash.end()) {
      MessageKind kind = stashed->second.first;
      std::vector<std::uint8_t> payload = std::move(stashed->second.second);
      dir.stash.erase(stashed);
      return deliver(dir, want, kind, std::move(payload), expect, where);
    }

    if (ch_.has_pending(to)) {
      std::vector<std::uint8_t> frame = ch_.recv(to);
      FrameHeader h;
      try {
        h = parse_frame(frame, where);
      } catch (const ProtocolError&) {
        ++stats_.parse_failures;
        if (policy_.max_attempts == 0) throw;
        if (++attempts > policy_.max_attempts) {
          throw ProtocolError(
              ProtocolErrorKind::kRetriesExhausted,
              where + ": gave up after " + std::to_string(policy_.max_attempts) +
                  " retransmit rounds (last frame unparseable)");
        }
        request_retransmit(to, dir, want, attempts);
        continue;
      }
      if (h.seq < want) {
        // Duplicate or replayed frame.
        if (policy_.max_attempts == 0) {
          throw ProtocolError(ProtocolErrorKind::kSequenceGap,
                              where + ": replayed " +
                                  message_kind_name(h.kind) + " frame seq " +
                                  std::to_string(h.seq) + " (expected seq " +
                                  std::to_string(want) + ")");
        }
        ++stats_.duplicates_dropped;
        continue;
      }
      std::vector<std::uint8_t> payload(frame.begin() + FrameHeader::kWireSize,
                                        frame.end());
      if (h.seq > want) {
        dir.stash.emplace(h.seq,
                          std::make_pair(h.kind, std::move(payload)));
        continue;
      }
      return deliver(dir, want, h.kind, std::move(payload), expect, where);
    }

    // Nothing on the wire and the expected frame is not stashed: either a
    // drop (recoverable from the pristine buffer) or the sender truly
    // never sent it.
    const bool can_retransmit = dir.unacked.lower_bound(want) != dir.unacked.end();
    if (policy_.max_attempts == 0 || !can_retransmit) {
      throw ProtocolError(ProtocolErrorKind::kSequenceGap,
                          where + ": no pending frame (expected seq " +
                              std::to_string(want) + ")");
    }
    if (attempts >= policy_.max_attempts) {
      throw ProtocolError(ProtocolErrorKind::kRetriesExhausted,
                          where + ": frame seq " + std::to_string(want) +
                              " not recovered after " +
                              std::to_string(attempts) +
                              " retransmit rounds");
    }
    ++attempts;
    request_retransmit(to, dir, want, attempts);
  }
  throw ProtocolError(ProtocolErrorKind::kRetriesExhausted,
                      where + ": transport loop guard tripped after " +
                          std::to_string(kMaxLoopIters) + " iterations");
}

}  // namespace primer
