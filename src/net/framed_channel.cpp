#include "net/framed_channel.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/env.h"
#include "common/timing.h"

namespace primer {

RetryPolicy RetryPolicy::from_env() {
  RetryPolicy p;
  p.max_attempts =
      static_cast<int>(env_long("PRIMER_RETRY_MAX", p.max_attempts, 0, 1000));
  p.backoff_s = env_double("PRIMER_RETRY_BACKOFF_S", p.backoff_s, 0.0, 60.0);
  return p;
}

std::string FramedChannel::describe(Party to) const {
  std::string s;
  if (session_id_ != 0) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "sess %llx#%u ",
                  static_cast<unsigned long long>(session_id_), epoch_);
    s += buf;
  }
  s += party_name(to);
  s += "<-";
  s += party_name(other(to));
  return s;
}

void FramedChannel::transmit(Party from, DirState& dir,
                             std::vector<std::uint8_t> frame,
                             bool allow_hold) {
  const FaultInjector::WireEvent ev = injector_.on_wire_frame();
  if (ev.stall_s > 0) {
    ch_.add_simulated_delay(ev.stall_s);
    // The stall is charged before the deadline poll, so a stall longer
    // than the phase budget trips deterministically at this exact frame.
    if (deadline_ != nullptr) {
      deadline_->check(describe(other(from)) + ": stalled wire frame " +
                       std::to_string(ev.frame_index));
    }
  }
  if (ev.stall_wall_s > 0) {
    // Burn real wall time in short slices, polling the deadline each slice
    // so an external cancel (session eviction, wall watchdog) interrupts the
    // stall instead of waiting it out.
    Stopwatch sw;
    const std::string what = describe(other(from)) +
                             ": wall-stalled wire frame " +
                             std::to_string(ev.frame_index);
    while (sw.seconds() < ev.stall_wall_s) {
      if (deadline_ != nullptr) deadline_->check(what);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  if (ev.hostile) {
    // Hostile-peer model: flip the high bit of the payload's leading count
    // field and reseal the CRC.  The frame parses cleanly — only the
    // receiver's structural validator can catch it, as a fatal kMalformed.
    if (frame.size() > FrameHeader::kWireSize + 3) {
      frame[FrameHeader::kWireSize + 3] ^= 0x80;
      reseal_frame(frame);
    }
  }
  if (ev.kill) {
    if (injector_.spec().kill_mode == FaultKillMode::kSigkill) {
      // Real process death, not a simulation: SIGKILL cannot be caught, so
      // nothing below this point — destructors, retry loops, the in-memory
      // store — gets a chance to run.  Only what the durable store already
      // fsync'd survives.  Deterministic because the wire-frame counter is.
      std::raise(SIGKILL);
    }
    throw ProtocolError(
        ProtocolErrorKind::kPeerKilled,
        describe(other(from)) + ": " + std::string(party_name(from)) +
            " process killed at wire frame " + std::to_string(ev.frame_index) +
            " (PRIMER_FAULT_KILL_AFTER)");
  }
  if (!injector_.spec().any_random()) {
    ch_.send(from, std::move(frame));
    return;
  }
  FaultInjector::Outcome out = injector_.apply(frame, allow_hold);
  ch_.add_simulated_delay(out.extra_delay_s);
  for (auto& f : out.deliver) ch_.send(from, std::move(f));
  if (out.has_held) {
    dir.held = std::move(out.held);
    dir.has_held = true;
  }
}

void FramedChannel::send(Party from, MessageKind kind,
                         const std::uint8_t* payload, std::size_t n) {
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("FramedChannel::send: payload of " +
                            std::to_string(n) +
                            " bytes exceeds the u32 length field");
  }
  const int fi = static_cast<int>(from);
  DirState& dir = dir_[fi];
  const std::uint64_t seq = dir.next_send_seq++;
  std::vector<std::uint8_t> frame = encode_frame(kind, seq, payload, n);
  std::uint32_t crc = 0;
  std::memcpy(&crc, frame.data() + FrameHeader::kCrcOffset, 4);
  if (journal_on_ && seq >= journal_base_[fi]) journal_[fi].push_back(crc);
  ++stats_.frames_sent;
  stats_.framing_bytes += FrameHeader::kWireSize;

  // Checkpoint-covered prefix: the peer already holds this frame from a
  // previous attempt.  Verify determinism against the journaled CRC and
  // deliver locally — no wire charge, no fault injection.  Below the
  // checkpoint's journal base the CRCs were pruned (proven by the attempt
  // that took the checkpoint), so only determinism above the base is
  // re-checked.
  if (seq < plan_.virtual_until[fi]) {
    if (seq >= plan_.journal_base[fi]) {
      const std::uint32_t expect =
          plan_.expect_crc[fi][seq - plan_.journal_base[fi]];
      if (crc != expect) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "CRC %08x, journal says %08x", crc,
                      expect);
        throw ProtocolError(
            ProtocolErrorKind::kResumeDiverged,
            describe(other(from)) + ": replayed " + message_kind_name(kind) +
                " frame seq " + std::to_string(seq) + " re-encoded with " +
                buf + " — deterministic replay diverged");
      }
    }
    ++stats_.replayed_frames;
    stats_.replayed_bytes += frame.size();
    ch_.deliver_local(from, std::move(frame));
    return;
  }

  // A frame the injector held back is released only after the *next* send
  // in the same direction — that is what makes it a reordering.
  std::vector<std::uint8_t> release;
  bool has_release = dir.has_held;
  if (has_release) {
    release = std::move(dir.held);
    dir.has_held = false;
  }

  if (injector_.spec().any()) {
    // Keep a pristine copy for retransmission; delivery prunes it.
    dir.unacked.emplace(seq, frame);
    if (dir.unacked.size() > kUnackedCap) {
      dir.unacked.erase(dir.unacked.begin());
    }
  }
  transmit(from, dir, std::move(frame), /*allow_hold=*/true);
  if (has_release) ch_.send(from, std::move(release));
}

void FramedChannel::begin_session(std::uint64_t session_id,
                                  std::uint32_t epoch,
                                  const ReplayPlan& plan) {
  session_id_ = session_id;
  epoch_ = epoch;
  // Drain handshake residue (duplicates / reordered copies still queued):
  // their old sequence numbers would collide with the reset space.
  for (Party p : {Party::kClient, Party::kServer}) {
    while (ch_.has_pending(p)) {
      ch_.recv(p);
      ++stats_.duplicates_dropped;
    }
  }
  for (int d = 0; d < 2; ++d) {
    dir_[d] = DirState{};
    journal_[d].clear();
    // Prune point for this attempt's journal: everything the replay plan
    // covers virtually is verified on the fly and never re-journaled.
    journal_base_[d] = plan.virtual_until[d];
    for (std::size_t k = 0; k < kMessageKindCount; ++k) {
      kind_counts_[d][k] = 0;
    }
  }
  journal_on_ = true;
  plan_ = plan;
}

std::vector<std::uint8_t> FramedChannel::deliver(
    Party to, DirState& dir, std::uint64_t seq, MessageKind kind,
    std::vector<std::uint8_t> payload, MessageKind expect,
    const std::string& where) {
  if (kind != expect) {
    throw ProtocolError(ProtocolErrorKind::kKindMismatch,
                        where + ": frame seq " + std::to_string(seq) +
                            " carries " + message_kind_name(kind) +
                            ", expected " + message_kind_name(expect));
  }
  dir.next_recv_seq = seq + 1;
  // In-order delivery is an implicit ack for everything up to `seq`.
  dir.unacked.erase(dir.unacked.begin(), dir.unacked.upper_bound(seq));
  ++stats_.frames_delivered;
  ++kind_counts_[static_cast<int>(to)][static_cast<std::size_t>(kind)];
  return payload;
}

void FramedChannel::request_retransmit(Party to, DirState& dir,
                                       std::uint64_t want, int attempt) {
  ++stats_.retry_rounds;
  // The receiver's retransmit request is a header-sized control frame; it
  // is charged to the cost model (bytes + flight pattern) but never
  // enqueued — the in-process peer must not misread it as data.
  ch_.charge_control(to, FrameHeader::kWireSize);
  stats_.control_bytes += FrameHeader::kWireSize;
  double backoff = policy_.backoff_s;
  for (int r = 1; r < attempt && backoff < policy_.backoff_max_s; ++r) {
    backoff *= 2.0;
  }
  ch_.add_simulated_delay(std::min(backoff, policy_.backoff_max_s));

  // Resend every pristine frame at or past the gap that is not already
  // stashed.  Retransmissions re-roll the injector but are never held for
  // reordering — holding a recovery frame would defeat recovery.
  const Party from = other(to);
  for (const auto& [seq, frame] : dir.unacked) {
    if (seq < want || dir.stash.count(seq) != 0) continue;
    ++stats_.retransmit_frames;
    stats_.retransmit_bytes += frame.size();
    transmit(from, dir, frame, /*allow_hold=*/false);
  }
}

std::vector<std::uint8_t> FramedChannel::recv_expect(Party to,
                                                     MessageKind expect) {
  DirState& dir = dir_[static_cast<int>(other(to))];
  const std::string where =
      describe(to) + " awaiting " + message_kind_name(expect);
  int attempts = 0;
  for (int iter = 0; iter < kMaxLoopIters; ++iter) {
    const std::uint64_t want = dir.next_recv_seq;
    if (deadline_ != nullptr) {
      deadline_->check(where + " (seq " + std::to_string(want) + ")");
    }

    auto stashed = dir.stash.find(want);
    if (stashed != dir.stash.end()) {
      MessageKind kind = stashed->second.first;
      std::vector<std::uint8_t> payload = std::move(stashed->second.second);
      dir.stash.erase(stashed);
      return deliver(to, dir, want, kind, std::move(payload), expect, where);
    }

    if (ch_.has_pending(to)) {
      std::vector<std::uint8_t> frame = ch_.recv(to);
      FrameHeader h;
      try {
        h = parse_frame(frame,
                        where + " (expected seq " + std::to_string(want) + ")");
      } catch (const ProtocolError&) {
        ++stats_.parse_failures;
        if (policy_.max_attempts == 0) throw;
        if (++attempts > policy_.max_attempts) {
          throw ProtocolError(
              ProtocolErrorKind::kRetriesExhausted,
              where + ": gave up on frame seq " + std::to_string(want) +
                  " after " + std::to_string(policy_.max_attempts) +
                  " retransmit rounds (last frame unparseable)");
        }
        request_retransmit(to, dir, want, attempts);
        continue;
      }
      if (h.seq < want) {
        // Duplicate or replayed frame.
        if (policy_.max_attempts == 0) {
          throw ProtocolError(ProtocolErrorKind::kSequenceGap,
                              where + ": replayed " +
                                  message_kind_name(h.kind) + " frame seq " +
                                  std::to_string(h.seq) + " (expected seq " +
                                  std::to_string(want) + ")");
        }
        ++stats_.duplicates_dropped;
        continue;
      }
      std::vector<std::uint8_t> payload(frame.begin() + FrameHeader::kWireSize,
                                        frame.end());
      if (h.seq > want) {
        dir.stash.emplace(h.seq,
                          std::make_pair(h.kind, std::move(payload)));
        continue;
      }
      return deliver(to, dir, want, h.kind, std::move(payload), expect, where);
    }

    // Nothing on the wire and the expected frame is not stashed: either a
    // drop (recoverable from the pristine buffer) or the sender truly
    // never sent it.
    const bool can_retransmit = dir.unacked.lower_bound(want) != dir.unacked.end();
    if (policy_.max_attempts == 0 || !can_retransmit) {
      throw ProtocolError(ProtocolErrorKind::kSequenceGap,
                          where + ": no pending frame (expected seq " +
                              std::to_string(want) + ")");
    }
    if (attempts >= policy_.max_attempts) {
      throw ProtocolError(ProtocolErrorKind::kRetriesExhausted,
                          where + ": frame seq " + std::to_string(want) +
                              " not recovered after " +
                              std::to_string(attempts) +
                              " retransmit rounds");
    }
    ++attempts;
    request_retransmit(to, dir, want, attempts);
  }
  throw ProtocolError(ProtocolErrorKind::kRetriesExhausted,
                      where + ": transport loop guard tripped after " +
                          std::to_string(kMaxLoopIters) +
                          " iterations (expected seq " +
                          std::to_string(dir.next_recv_seq) + ")");
}

}  // namespace primer
