// CRC32C implementations: slice-by-8 tables (portable) and the SSE4.2
// crc32 instruction (runtime-dispatched).  This TU is compiled with
// -msse4.2 when the toolchain supports it (see CMakeLists); the runtime
// cpuid check keeps baseline machines on the table path.
#include "net/crc32c.h"

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace primer {

namespace {

// CRC32C polynomial, reflected form.
constexpr std::uint32_t kPoly = 0x82f63b78u;

struct Tables {
  std::uint32_t t[8][256];

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int s = 1; s < 8; ++s) {
        c = t[0][c & 0xff] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

std::uint32_t crc_table(const std::uint8_t* p, std::size_t n,
                        std::uint32_t crc) {
  const Tables& tb = tables();
  while (n != 0 && (reinterpret_cast<std::uintptr_t>(p) & 7) != 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    // One 8-byte slice per iteration, tables applied most-significant-first.
    std::uint64_t w;
    __builtin_memcpy(&w, p, 8);
    w ^= crc;
    crc = tb.t[7][w & 0xff] ^ tb.t[6][(w >> 8) & 0xff] ^
          tb.t[5][(w >> 16) & 0xff] ^ tb.t[4][(w >> 24) & 0xff] ^
          tb.t[3][(w >> 32) & 0xff] ^ tb.t[2][(w >> 40) & 0xff] ^
          tb.t[1][(w >> 48) & 0xff] ^ tb.t[0][(w >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n != 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }
  return crc;
}

#if defined(__SSE4_2__)
std::uint32_t crc_hw(const std::uint8_t* p, std::size_t n, std::uint32_t crc) {
  while (n != 0 && (reinterpret_cast<std::uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  std::uint64_t crc64 = crc;
  while (n >= 8) {
    std::uint64_t w;
    __builtin_memcpy(&w, p, 8);
    crc64 = _mm_crc32_u64(crc64, w);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
  while (n != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return crc;
}
#endif

bool use_hw() {
#if defined(__SSE4_2__)
  static const bool hw = __builtin_cpu_supports("sse4.2");
  return hw;
#else
  return false;
#endif
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  // Standard pre/post inversion so crc(empty) == 0 and chaining works.
  std::uint32_t crc = ~seed;
#if defined(__SSE4_2__)
  if (use_hw()) return ~crc_hw(p, n, crc);
#endif
  return ~crc_table(p, n, crc);
}

const char* crc32c_impl_name() { return use_hw() ? "sse4.2" : "table"; }

}  // namespace primer
