#include "net/session.h"

#include <algorithm>
#include <stdexcept>

#include "net/crc32c.h"

namespace primer {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x504b4353u;  // "SCKP"
// v2 added journal_base: the CRC journal is pruned below the watermark the
// attempt resumed from (see SessionCheckpoint in session.h).
constexpr std::uint32_t kCheckpointVersion = 2;
constexpr std::size_t kMaxPhaseLen = 128;
// Journal bound: 2^24 frames per direction is far beyond any real run and
// caps a hostile count field at 64 MiB before the byte-budget check hits.
constexpr std::uint64_t kMaxJournalLen = std::uint64_t{1} << 24;
constexpr std::size_t kMaxHelloEpochs = 4096;

[[noreturn]] void malformed(const std::string& where, const std::string& why) {
  throw ProtocolError(ProtocolErrorKind::kMalformed, where + ": " + why);
}

}  // namespace

void SessionCheckpoint::serialize(ByteWriter& w) const {
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  w.u64(session_id);
  w.u32(epoch);
  w.u32(static_cast<std::uint32_t>(phase.size()));
  w.bytes(phase.data(), phase.size());
  w.u64(params_hash);
  for (int d = 0; d < 2; ++d) {
    w.u64(send_watermark[d]);
    w.u64(journal_base[d]);
    w.u32(static_cast<std::uint32_t>(frame_crc[d].size()));
    for (std::uint32_t crc : frame_crc[d]) w.u32(crc);
  }
  for (int d = 0; d < 2; ++d) {
    for (std::size_t k = 0; k < kMessageKindCount; ++k) {
      w.u64(kind_counts[d][k]);
    }
  }
  w.u64(wire_bytes);
}

SessionCheckpoint SessionCheckpoint::deserialize(ByteReader& r) {
  const std::string where = "session checkpoint";
  SessionCheckpoint cp;
  try {
    if (r.u32() != kCheckpointMagic) malformed(where, "bad magic");
    const std::uint32_t version = r.u32();
    if (version != kCheckpointVersion) {
      malformed(where, "unknown version " + std::to_string(version));
    }
    cp.session_id = r.u64();
    cp.epoch = r.u32();
    const std::uint32_t phase_len = r.u32();
    if (phase_len > kMaxPhaseLen) {
      malformed(where, "phase label of " + std::to_string(phase_len) +
                           " bytes exceeds the " +
                           std::to_string(kMaxPhaseLen) + "-byte cap");
    }
    cp.phase.resize(phase_len);
    if (phase_len != 0) r.bytes(cp.phase.data(), phase_len);
    cp.params_hash = r.u64();
    for (int d = 0; d < 2; ++d) {
      cp.send_watermark[d] = r.u64();
      cp.journal_base[d] = r.u64();
      if (cp.journal_base[d] > cp.send_watermark[d]) {
        malformed(where, "journal base " + std::to_string(cp.journal_base[d]) +
                             " exceeds watermark " +
                             std::to_string(cp.send_watermark[d]));
      }
      const std::uint32_t n = r.u32();
      if (n != cp.send_watermark[d] - cp.journal_base[d] ||
          n > kMaxJournalLen) {
        malformed(where, "journal of " + std::to_string(n) +
                             " CRCs does not span [" +
                             std::to_string(cp.journal_base[d]) + ", " +
                             std::to_string(cp.send_watermark[d]) + ")");
      }
      cp.frame_crc[d].resize(n);
      for (std::uint32_t i = 0; i < n; ++i) cp.frame_crc[d][i] = r.u32();
    }
    for (int d = 0; d < 2; ++d) {
      for (std::size_t k = 0; k < kMessageKindCount; ++k) {
        cp.kind_counts[d][k] = r.u64();
      }
    }
    cp.wire_bytes = r.u64();
  } catch (const std::out_of_range& e) {
    malformed(where, e.what());
  }
  return cp;
}

std::uint32_t SessionCheckpoint::digest() const {
  ByteWriter w;
  serialize(w);
  return crc32c(w.data().data(), w.size());
}

void SessionStore::save(Party p, const SessionCheckpoint& cp) {
  ByteWriter w;
  cp.serialize(w);
  slots_[static_cast<int>(p)][cp.epoch] = w.take();
}

std::optional<SessionCheckpoint> SessionStore::load(Party p,
                                                    std::uint32_t epoch) const {
  const auto& slots = slots_[static_cast<int>(p)];
  auto it = slots.find(epoch);
  if (it == slots.end()) return std::nullopt;
  ByteReader r(it->second);
  return SessionCheckpoint::deserialize(r);
}

std::uint32_t SessionStore::latest_epoch(Party p) const {
  const auto& slots = slots_[static_cast<int>(p)];
  return slots.empty() ? 0 : slots.rbegin()->first;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> SessionStore::digests(
    Party p) const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (const auto& [epoch, blob] : slots_[static_cast<int>(p)]) {
    out.emplace_back(epoch, crc32c(blob.data(), blob.size()));
  }
  return out;
}

void SessionStore::drop(Party p, std::uint32_t epoch) {
  slots_[static_cast<int>(p)].erase(epoch);
}

void SessionStore::clear() {
  slots_[0].clear();
  slots_[1].clear();
}

std::size_t SessionStore::blob_bytes() const {
  std::size_t total = 0;
  for (const auto& slots : slots_) {
    for (const auto& [epoch, blob] : slots) total += blob.size();
  }
  return total;
}

void SessionStore::tamper(Party p, std::uint32_t epoch) {
  auto& slots = slots_[static_cast<int>(p)];
  auto it = slots.find(epoch);
  if (it == slots.end() || it->second.empty()) return;
  it->second.back() ^= 0xff;  // flips bits inside the trailing wire_bytes
}

std::vector<std::uint8_t> SessionHello::serialize() const {
  ByteWriter w;
  w.u64(session_id);
  w.u64(params_hash);
  w.u32(static_cast<std::uint32_t>(epochs.size()));
  for (const auto& [epoch, digest] : epochs) {
    w.u32(epoch);
    w.u32(digest);
  }
  return w.take();
}

SessionHello SessionHello::deserialize(
    const std::vector<std::uint8_t>& payload, const std::string& where) {
  SessionHello h;
  try {
    ByteReader r(payload);
    h.session_id = r.u64();
    h.params_hash = r.u64();
    const std::uint32_t n = r.u32();
    if (n > kMaxHelloEpochs) {
      malformed(where, "hello lists " + std::to_string(n) +
                           " checkpoint epochs (cap " +
                           std::to_string(kMaxHelloEpochs) + ")");
    }
    h.epochs.reserve(n);
    std::uint32_t prev = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t epoch = r.u32();
      const std::uint32_t digest = r.u32();
      if (epoch == 0 || epoch <= prev) {
        malformed(where, "hello epochs not strictly ascending from 1");
      }
      prev = epoch;
      h.epochs.emplace_back(epoch, digest);
    }
    if (!r.done()) malformed(where, "trailing bytes after hello");
  } catch (const std::out_of_range& e) {
    malformed(where, e.what());
  }
  return h;
}

std::vector<std::uint8_t> SessionResume::serialize() const {
  ByteWriter w;
  w.u32(agreed_epoch);
  w.u32(digest);
  return w.take();
}

SessionResume SessionResume::deserialize(
    const std::vector<std::uint8_t>& payload, const std::string& where) {
  SessionResume m;
  try {
    ByteReader r(payload);
    m.agreed_epoch = r.u32();
    m.digest = r.u32();
    if (!r.done()) malformed(where, "trailing bytes after resume");
  } catch (const std::out_of_range& e) {
    malformed(where, e.what());
  }
  return m;
}

std::uint32_t negotiate_resume_epoch(const SessionHello& hello,
                                     std::uint64_t my_session_id,
                                     std::uint64_t my_params_hash,
                                     const SessionStore& store, Party me) {
  const std::string where =
      std::string(party_name(me)) + " negotiating session resume";
  if (hello.session_id != my_session_id) {
    throw ProtocolError(ProtocolErrorKind::kResumeRejected,
                        where + ": peer session id " +
                            std::to_string(hello.session_id) +
                            " does not match local session " +
                            std::to_string(my_session_id));
  }
  if (hello.params_hash != my_params_hash) {
    throw ProtocolError(
        ProtocolErrorKind::kResumeRejected,
        where + ": negotiated-parameter fingerprint mismatch (peer " +
            std::to_string(hello.params_hash) + ", local " +
            std::to_string(my_params_hash) + ")");
  }
  const auto mine = store.digests(me);
  bool saw_common = false;
  for (auto it = hello.epochs.rbegin(); it != hello.epochs.rend(); ++it) {
    const auto local = std::find_if(
        mine.begin(), mine.end(),
        [&](const auto& e) { return e.first == it->first; });
    if (local == mine.end()) continue;  // peer has it, we lost it: skip down
    saw_common = true;
    if (local->second == it->second) return it->first;
  }
  if (saw_common) {
    throw ProtocolError(
        ProtocolErrorKind::kResumeDiverged,
        where + ": checkpoint digests disagree at every common epoch — "
                "the parties' session histories have forked");
  }
  return 0;  // no shared checkpoint: clean fresh start
}

}  // namespace primer
