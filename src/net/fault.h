// Deterministic, seeded fault injection for the framed transport.
//
// The injector sits between FramedChannel::send and the underlying
// Channel: every outgoing frame is subjected to independent probability
// rolls for drop / reorder / duplicate / truncate / bit-flip, plus an
// additive delivery delay.  All randomness comes from one seeded Rng, so
// any failure a soak run finds is replayable from its seed alone.
//
// Configuration is programmatic (FaultSpec) or environment-driven:
//
//   PRIMER_FAULT_SEED      u64 seed (default 1)
//   PRIMER_FAULT_DROP      P(frame silently dropped)
//   PRIMER_FAULT_DUP       P(frame delivered twice)
//   PRIMER_FAULT_REORDER   P(frame held back past the next same-direction send)
//   PRIMER_FAULT_TRUNCATE  P(frame cut short at a random byte)
//   PRIMER_FAULT_BITFLIP   P(one random bit flipped)
//   PRIMER_FAULT_DELAY     P(extra delivery delay charged)
//   PRIMER_FAULT_DELAY_S   seconds of extra delay when the delay roll hits
//
// Two deterministic (non-probabilistic) triggers model peer death and
// peer hangs at an exact, replayable point in the protocol:
//
//   PRIMER_FAULT_KILL_AFTER   kill the sending process at the Nth wire
//                             frame (1-based; 0 disables)
//   PRIMER_FAULT_KILL_MODE    "throw" (default) surfaces the kill as a
//                             retryable kPeerKilled inside the process;
//                             "sigkill" raises SIGKILL instead — REAL
//                             process death at a deterministic frame, for
//                             crash-consistency tests against the durable
//                             store (tools/crash_soak.py)
//   PRIMER_FAULT_STALL_AFTER  stall delivery of the Nth wire frame
//   PRIMER_FAULT_STALL_S      seconds the stall lasts (simulated time)
//   PRIMER_FAULT_STALL_WALL_S real wall-clock seconds the stall also burns
//                             (for exercising wall-time watchdogs/eviction)
//   PRIMER_FAULT_HOSTILE_AFTER  at the Nth wire frame, flip a payload bit
//                             and reseal the CRC: the frame arrives
//                             checksum-valid but structurally hostile, so
//                             the receiver's validator must reject it as a
//                             *fatal* kMalformed (models a malicious peer,
//                             not a lossy wire)
//
// All knob parsing goes through common/env.h: malformed values throw,
// out-of-range values clamp — a typo'd knob can never silently configure a
// different experiment than the one asked for.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace primer {

// How an injected kill manifests: an in-process retryable throw (the
// simulation the retry loops recover from), or genuine SIGKILL (nothing
// recovers; only fsync'd durable state survives into the next process).
enum class FaultKillMode { kThrow, kSigkill };

struct FaultSpec {
  std::uint64_t seed = 1;
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double truncate = 0.0;
  double bitflip = 0.0;
  double delay = 0.0;
  double delay_s = 0.01;
  std::uint64_t kill_after = 0;   // kill at the Nth wire frame (0 = off)
  FaultKillMode kill_mode = FaultKillMode::kThrow;
  std::uint64_t stall_after = 0;  // stall the Nth wire frame (0 = off)
  double stall_s = 30.0;          // stall duration (simulated seconds)
  double stall_wall_s = 0.0;      // stall duration (real wall seconds)
  std::uint64_t hostile_after = 0;  // reseal-corrupt the Nth frame (0 = off)

  // Probabilistic per-frame faults (the corruption path).
  bool any_random() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || truncate > 0 ||
           bitflip > 0 || delay > 0;
  }

  bool any() const {
    return any_random() || kill_after > 0 || stall_after > 0 ||
           hostile_after > 0;
  }

  // Reads PRIMER_FAULT_* from the environment; unset knobs keep defaults.
  static FaultSpec from_env();
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec)
      : spec_(spec), rng_(spec.seed) {}

  // What apply() decided to do with one outgoing frame.
  struct Outcome {
    // Frames to put on the wire now (possibly mutated copies; empty on drop
    // or hold).  Two entries on duplication.
    std::vector<std::vector<std::uint8_t>> deliver;
    // Frame held back for reordering; the caller releases it after its next
    // send in the same direction.
    std::vector<std::uint8_t> held;
    bool has_held = false;
    double extra_delay_s = 0.0;
  };

  // Rolls the configured faults against `frame`.  `allow_hold` is false for
  // retransmissions, where reordering again would defeat recovery.
  Outcome apply(const std::vector<std::uint8_t>& frame, bool allow_hold);

  // Deterministic liveness triggers, evaluated once per frame that reaches
  // the wire (retransmissions included — a real crash does not care which
  // copy of a frame the process was sending).
  struct WireEvent {
    std::uint64_t frame_index = 0;  // 1-based wire frame counter
    bool kill = false;              // caller must abandon the process
    double stall_s = 0.0;           // extra delivery delay to charge
    double stall_wall_s = 0.0;      // real wall seconds to burn in transmit
    bool hostile = false;           // mutate payload + reseal CRC
  };
  WireEvent on_wire_frame();

  std::uint64_t wire_frames() const { return wire_frames_; }

  struct Counters {
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t truncated = 0;
    std::uint64_t bitflipped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t killed = 0;
    std::uint64_t stalled = 0;
    std::uint64_t hostile = 0;
    std::uint64_t total() const {
      return dropped + duplicated + reordered + truncated + bitflipped +
             delayed + killed + stalled + hostile;
    }
  };
  const Counters& counters() const { return counters_; }

  const FaultSpec& spec() const { return spec_; }

 private:
  bool roll(double p);

  FaultSpec spec_;
  Rng rng_;
  Counters counters_;
  std::uint64_t wire_frames_ = 0;
};

}  // namespace primer
