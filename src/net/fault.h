// Deterministic, seeded fault injection for the framed transport.
//
// The injector sits between FramedChannel::send and the underlying
// Channel: every outgoing frame is subjected to independent probability
// rolls for drop / reorder / duplicate / truncate / bit-flip, plus an
// additive delivery delay.  All randomness comes from one seeded Rng, so
// any failure a soak run finds is replayable from its seed alone.
//
// Configuration is programmatic (FaultSpec) or environment-driven:
//
//   PRIMER_FAULT_SEED      u64 seed (default 1)
//   PRIMER_FAULT_DROP      P(frame silently dropped)
//   PRIMER_FAULT_DUP       P(frame delivered twice)
//   PRIMER_FAULT_REORDER   P(frame held back past the next same-direction send)
//   PRIMER_FAULT_TRUNCATE  P(frame cut short at a random byte)
//   PRIMER_FAULT_BITFLIP   P(one random bit flipped)
//   PRIMER_FAULT_DELAY     P(extra delivery delay charged)
//   PRIMER_FAULT_DELAY_S   seconds of extra delay when the delay roll hits
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace primer {

struct FaultSpec {
  std::uint64_t seed = 1;
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double truncate = 0.0;
  double bitflip = 0.0;
  double delay = 0.0;
  double delay_s = 0.01;

  bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || truncate > 0 ||
           bitflip > 0 || delay > 0;
  }

  // Reads PRIMER_FAULT_* from the environment; unset knobs keep defaults.
  static FaultSpec from_env();
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec)
      : spec_(spec), rng_(spec.seed) {}

  // What apply() decided to do with one outgoing frame.
  struct Outcome {
    // Frames to put on the wire now (possibly mutated copies; empty on drop
    // or hold).  Two entries on duplication.
    std::vector<std::vector<std::uint8_t>> deliver;
    // Frame held back for reordering; the caller releases it after its next
    // send in the same direction.
    std::vector<std::uint8_t> held;
    bool has_held = false;
    double extra_delay_s = 0.0;
  };

  // Rolls the configured faults against `frame`.  `allow_hold` is false for
  // retransmissions, where reordering again would defeat recovery.
  Outcome apply(const std::vector<std::uint8_t>& frame, bool allow_hold);

  struct Counters {
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t truncated = 0;
    std::uint64_t bitflipped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t total() const {
      return dropped + duplicated + reordered + truncated + bitflipped +
             delayed;
    }
  };
  const Counters& counters() const { return counters_; }

  const FaultSpec& spec() const { return spec_; }

 private:
  bool roll(double p);

  FaultSpec spec_;
  Rng rng_;
  Counters counters_;
};

}  // namespace primer
