// CRC32C (Castagnoli) over message payloads — the integrity check every
// framed wire message carries (see net/frame.h).
//
// The polynomial matches iSCSI/ext4 and, more to the point, the SSE4.2
// crc32 instruction, so the hot path is hardware-accelerated wherever the
// CPU allows (runtime-dispatched, same scheme as the NTT kernel tiers); the
// slice-by-8 table fallback keeps baseline builds correct.
//
// The function is chainable: crc32c(b, n, crc32c(a, m)) == crc of a||b,
// which lets the framing layer checksum a header and a large payload
// without concatenating them.
#pragma once

#include <cstddef>
#include <cstdint>

namespace primer {

// CRC32C of `data[0, n)`, continuing from `seed` (0 for a fresh message).
std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

// Name of the selected implementation ("sse4.2" or "table") — telemetry.
const char* crc32c_impl_name();

}  // namespace primer
