#include "net/session_fs.h"

#include <cstdio>

#include "common/env.h"
#include "common/serialize.h"
#include "net/crc32c.h"

namespace primer {

namespace {

constexpr std::uint32_t kBlobMagic = 0x52554450u;  // "PDUR"
constexpr std::uint32_t kBlobVersion = 1;
// magic + version + party + epoch + payload_len + payload_crc
constexpr std::size_t kBlobHeaderBytes = 4 + 4 + 4 + 4 + 8 + 4;

const char* party_prefix(Party p) {
  return p == Party::kClient ? "client" : "server";
}

// Parses "<party>_<6 digits>.ckpt"; false on anything else.
bool parse_blob_name(const std::string& name, Party* p, std::uint32_t* epoch) {
  const std::string suffix = ".ckpt";
  for (const Party cand : {Party::kClient, Party::kServer}) {
    const std::string prefix = std::string(party_prefix(cand)) + "_";
    if (name.size() != prefix.size() + 6 + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    std::uint32_t e = 0;
    for (std::size_t i = 0; i < 6; ++i) {
      const char c = name[prefix.size() + i];
      if (c < '0' || c > '9') return false;
      e = e * 10 + static_cast<std::uint32_t>(c - '0');
    }
    *p = cand;
    *epoch = e;
    return true;
  }
  return false;
}

}  // namespace

StoreFaultSpec StoreFaultSpec::from_env() {
  StoreFaultSpec s;
  s.at = env_u64("PRIMER_STORE_FAULT_AT", 0);
  s.torn_byte = env_u64("PRIMER_STORE_FAULT_TORN_BYTE", s.torn_byte);
  const std::string mode = env_string("PRIMER_STORE_FAULT_MODE", "");
  if (mode.empty() || mode == "none") {
    s.mode = Mode::kNone;
  } else if (mode == "fail") {
    s.mode = Mode::kFail;
  } else if (mode == "short_write") {
    s.mode = Mode::kShortWrite;
  } else if (mode == "crash_before_rename") {
    s.mode = Mode::kCrashBeforeRename;
  } else if (mode == "crash_after_rename") {
    s.mode = Mode::kCrashAfterRename;
  } else {
    throw std::invalid_argument(
        "PRIMER_STORE_FAULT_MODE=\"" + mode +
        "\": expected fail | short_write | crash_before_rename | "
        "crash_after_rename");
  }
  return s;
}

DurableSessionStore::Options DurableSessionStore::Options::from_env() {
  Options o;
  o.keep_last = static_cast<std::size_t>(
      env_u64("PRIMER_STORE_KEEP", o.keep_last, 0, 1u << 20));
  o.max_bytes = env_u64("PRIMER_STORE_MAX_BYTES", o.max_bytes);
  o.faults = StoreFaultSpec::from_env();
  return o;
}

DurableSessionStore::DurableSessionStore(std::string dir, Options opts)
    : dir_(std::move(dir)), opts_(opts) {
  ensure_dir(dir_);
  recovery_scan();
}

std::string DurableSessionStore::blob_name(Party p, std::uint32_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s_%06u.ckpt", party_prefix(p), epoch);
  return buf;
}

std::optional<std::vector<std::uint8_t>> DurableSessionStore::validate_blob(
    const std::vector<std::uint8_t>& blob, Party expect_party,
    std::uint32_t expect_epoch) {
  try {
    if (blob.size() < kBlobHeaderBytes) return std::nullopt;
    ByteReader r(blob);
    if (r.u32() != kBlobMagic) return std::nullopt;
    if (r.u32() != kBlobVersion) return std::nullopt;
    const std::uint32_t party = r.u32();
    const std::uint32_t epoch = r.u32();
    const std::uint64_t len = r.u64();
    const std::uint32_t crc = r.u32();
    if (party != static_cast<std::uint32_t>(expect_party)) return std::nullopt;
    if (epoch != expect_epoch) return std::nullopt;
    if (len != r.remaining()) return std::nullopt;  // torn or padded blob
    std::vector<std::uint8_t> payload(blob.begin() + r.position(), blob.end());
    // The payload CRC doubles as the checkpoint digest the resume
    // handshake exchanges; a blob that passes here negotiates cleanly.
    if (crc32c(payload.data(), payload.size()) != crc) return std::nullopt;
    ByteReader pr(payload);
    const SessionCheckpoint cp = SessionCheckpoint::deserialize(pr);
    if (!pr.done()) return std::nullopt;
    if (cp.epoch != expect_epoch) return std::nullopt;
    return payload;
  } catch (const std::exception&) {
    // Structural rejection (ProtocolError) or short read (out_of_range):
    // either way the blob is quarantine fodder, never a crash.
    return std::nullopt;
  }
}

void DurableSessionStore::quarantine_blob(const std::string& name) {
  const std::string path = dir_ + "/" + name;
  try {
    ensure_dir(dir_ + "/quarantine");
    rename_path(path, dir_ + "/quarantine/" + name);
  } catch (const FsError&) {
    // Quarantine dir unavailable: drop the corrupt blob rather than let
    // the next scan trip over it again.
    remove_file(path);
  }
  quarantined_.push_back(name);
}

void DurableSessionStore::recovery_scan() {
  for (const std::string& name : list_dir(dir_)) {
    const std::string path = dir_ + "/" + name;
    if (is_directory(path)) continue;  // quarantine/ and friends
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // An in-flight write that never committed; its epoch either exists
      // as a previous complete blob or was legitimately lost mid-crash.
      remove_file(path);
      continue;
    }
    Party p{};
    std::uint32_t epoch = 0;
    if (!parse_blob_name(name, &p, &epoch)) {
      quarantine_blob(name);
      continue;
    }
    const auto data = read_file(path);
    if (!data.has_value()) {
      quarantine_blob(name);
      continue;
    }
    auto payload = validate_blob(*data, p, epoch);
    if (!payload.has_value()) {
      quarantine_blob(name);
      continue;
    }
    slots_[static_cast<int>(p)][epoch] = std::move(*payload);
    ++recovered_;
  }
}

bool DurableSessionStore::persist(Party p, std::uint32_t epoch,
                                  const std::vector<std::uint8_t>& payload) {
  const std::uint64_t op = ++persist_ops_;
  AtomicWriteHooks hooks;
  if (opts_.faults.armed() && op == opts_.faults.at) {
    switch (opts_.faults.mode) {
      case StoreFaultSpec::Mode::kNone: break;
      case StoreFaultSpec::Mode::kFail: hooks.fail_write = true; break;
      case StoreFaultSpec::Mode::kShortWrite:
        hooks.truncate_at = static_cast<std::size_t>(opts_.faults.torn_byte);
        break;
      case StoreFaultSpec::Mode::kCrashBeforeRename:
        hooks.crash_before_rename = true;
        break;
      case StoreFaultSpec::Mode::kCrashAfterRename:
        hooks.crash_after_rename = true;
        break;
    }
  }
  ByteWriter w;
  w.reserve(kBlobHeaderBytes + payload.size());
  w.u32(kBlobMagic);
  w.u32(kBlobVersion);
  w.u32(static_cast<std::uint32_t>(p));
  w.u32(epoch);
  w.u64(payload.size());
  w.u32(crc32c(payload.data(), payload.size()));
  w.bytes(payload.data(), payload.size());
  const std::string name = blob_name(p, epoch);
  try {
    atomic_write_file(dir_, name, w.data().data(), w.size(), hooks,
                      &write_stats_);
  } catch (const FsError& e) {
    // ENOSPC/EIO/vanished dir: latch degraded mode and keep serving from
    // memory.  The typed retryable error is *reported*, never thrown from
    // a save — losing the durability upgrade must not lose the inference.
    ++degradations_;
    degraded_ = true;
    last_degradation_ =
        StorageDegraded(e.op(), e.path(), e.saved_errno(), e.what());
    return false;
  }
  // SimulatedCrash deliberately propagates: the "process" died here.
  degraded_ = false;
  return true;
}

void DurableSessionStore::save(Party p, const SessionCheckpoint& cp) {
  ByteWriter w;
  cp.serialize(w);
  std::vector<std::uint8_t> payload = w.take();
  persist(p, cp.epoch, payload);
  slots_[static_cast<int>(p)][cp.epoch] = std::move(payload);
  apply_retention();
}

void DurableSessionStore::remove_blob(Party p, std::uint32_t epoch) {
  try {
    remove_file(dir_ + "/" + blob_name(p, epoch));
  } catch (const FsError&) {
    // Best effort: a blob we cannot delete will be re-adopted (harmless)
    // or quarantined by a later scan.
  }
}

void DurableSessionStore::apply_retention() {
  // Keep-last-K per party: the newest epochs are the resumable ones.
  if (opts_.keep_last != 0) {
    for (int d = 0; d < 2; ++d) {
      auto& slots = slots_[d];
      while (slots.size() > opts_.keep_last) {
        const std::uint32_t epoch = slots.begin()->first;
        slots.erase(slots.begin());
        remove_blob(static_cast<Party>(d), epoch);
      }
    }
  }
  // Total byte cap: shed globally-oldest epochs, but never a party's
  // latest — losing the newest checkpoint would forfeit resumability.
  while (opts_.max_bytes != 0 && blob_bytes() > opts_.max_bytes) {
    int victim_dir = -1;
    std::uint32_t victim_epoch = 0;
    for (int d = 0; d < 2; ++d) {
      if (slots_[d].size() < 2) continue;  // latest epoch is untouchable
      const std::uint32_t oldest = slots_[d].begin()->first;
      if (victim_dir < 0 || oldest < victim_epoch) {
        victim_dir = d;
        victim_epoch = oldest;
      }
    }
    if (victim_dir < 0) break;
    slots_[victim_dir].erase(victim_epoch);
    remove_blob(static_cast<Party>(victim_dir), victim_epoch);
  }
}

void DurableSessionStore::drop(Party p, std::uint32_t epoch) {
  SessionStore::drop(p, epoch);
  remove_blob(p, epoch);
}

void DurableSessionStore::clear() {
  for (int d = 0; d < 2; ++d) {
    for (const auto& [epoch, blob] : slots_[d]) {
      remove_blob(static_cast<Party>(d), epoch);
    }
  }
  SessionStore::clear();
}

void DurableSessionStore::tamper(Party p, std::uint32_t epoch) {
  SessionStore::tamper(p, epoch);
  // Mirror the in-memory corruption on disk, bypassing the CRC reseal:
  // the next recovery scan must detect and quarantine this blob.
  const std::string path = dir_ + "/" + blob_name(p, epoch);
  auto data = read_file(path);
  if (!data.has_value() || data->empty()) return;
  data->back() ^= 0xff;
  try {
    atomic_write_file(dir_, blob_name(p, epoch), data->data(), data->size());
  } catch (const FsError&) {
    // Tamper is a test hook; if the rewrite fails the RAM copy is still
    // tampered, which is what the caller asserts on.
  }
}

SessionStore::Telemetry DurableSessionStore::telemetry() const {
  Telemetry t;
  t.bytes_written = write_stats_.bytes_written;
  t.fsyncs = write_stats_.fsyncs;
  t.degradations = degradations_;
  t.recovered_blobs = recovered_;
  t.quarantined_blobs = quarantined_.size();
  t.degraded = degraded_;
  return t;
}

}  // namespace primer
