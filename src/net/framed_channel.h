// FramedChannel: typed, integrity-checked, fault-tolerant transport.
//
// Wraps the raw simulated Channel so that every protocol message travels
// as a checksummed frame (net/frame.h) with a per-direction sequence
// number.  Receivers state what they are waiting for —
// recv_expect(kind) — and get exactly one of:
//
//   * the payload bytes, bit-identical to what the sender framed, or
//   * a typed ProtocolError naming the receiving party, the expected kind
//     and the precise failure (truncation, checksum, kind mismatch,
//     sequence gap, retries exhausted).
//
// A seeded FaultInjector (net/fault.h) can corrupt outgoing frames; the
// bounded retry layer recovers from drops, duplicates and reorderings:
// the receiver detects a gap, charges a control-frame "retransmit
// request" to the cost model, backs off exponentially in simulated time,
// and the pristine copy is resent from the per-direction retransmission
// buffer.  Corruption (truncation / bit-flips) is unrecoverable by design
// — the pristine buffer is only consulted for frames that never arrived —
// and surfaces as a typed error instead.
//
// Both parties run in-process, so one FramedChannel instance carries both
// directions; anything that shares the underlying Channel must share the
// FramedChannel too, or the sequence spaces desynchronize.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/channel.h"
#include "net/fault.h"
#include "net/frame.h"

namespace primer {

struct RetryPolicy {
  // Retransmit rounds per recv_expect before giving up.  Zero disables
  // recovery entirely: the first defect throws — corruption-matrix mode.
  int max_attempts = 8;
  double backoff_s = 0.0005;      // first retry backoff (simulated seconds)
  double backoff_max_s = 0.05;    // exponential backoff ceiling

  // Reads PRIMER_RETRY_MAX / PRIMER_RETRY_BACKOFF_S; unset keeps defaults.
  static RetryPolicy from_env();
};

class FramedChannel {
 public:
  explicit FramedChannel(Channel& ch)
      : FramedChannel(ch, FaultSpec::from_env(), RetryPolicy::from_env()) {}

  FramedChannel(Channel& ch, const FaultSpec& faults, const RetryPolicy& retry)
      : ch_(ch), policy_(retry), injector_(faults) {}

  void send(Party from, MessageKind kind, const std::uint8_t* payload,
            std::size_t n);
  void send(Party from, MessageKind kind,
            const std::vector<std::uint8_t>& payload) {
    send(from, kind, payload.data(), payload.size());
  }

  // Blocks (logically) until the next in-sequence frame for `to` is
  // recovered, verifies it carries `expect`, and returns its payload.
  std::vector<std::uint8_t> recv_expect(Party to, MessageKind expect);

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t framing_bytes = 0;      // header overhead on the wire
    std::uint64_t retransmit_frames = 0;  // frames resent by the retry layer
    std::uint64_t retransmit_bytes = 0;
    std::uint64_t control_bytes = 0;      // retransmit-request traffic
    std::uint64_t retry_rounds = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t parse_failures = 0;
  };
  const Stats& stats() const { return stats_; }
  const FaultInjector::Counters& fault_counters() const {
    return injector_.counters();
  }
  const FaultSpec& fault_spec() const { return injector_.spec(); }
  const RetryPolicy& retry_policy() const { return policy_; }

  void set_fault_spec(const FaultSpec& spec) { injector_ = FaultInjector(spec); }
  void set_retry_policy(const RetryPolicy& p) { policy_ = p; }

  // Escape hatch for tests that need to place hand-crafted frames on the
  // wire, and for accounting-only callers.
  Channel& raw() { return ch_; }
  const Channel& raw() const { return ch_; }

 private:
  struct DirState {
    std::uint64_t next_send_seq = 0;
    std::uint64_t next_recv_seq = 0;
    // Pristine frames not yet known-delivered, by seq (retransmission
    // source).  Only populated while fault injection is active.
    std::map<std::uint64_t, std::vector<std::uint8_t>> unacked;
    // Valid frames that arrived ahead of the expected sequence number.
    std::map<std::uint64_t,
             std::pair<MessageKind, std::vector<std::uint8_t>>>
        stash;
    // Frame held back by the injector, released after the next send in
    // this direction (reordering).
    std::vector<std::uint8_t> held;
    bool has_held = false;
  };

  static constexpr std::size_t kUnackedCap = 128;
  static constexpr int kMaxLoopIters = 4096;

  void transmit(Party from, DirState& dir, std::vector<std::uint8_t> frame,
                bool allow_hold);
  std::vector<std::uint8_t> deliver(DirState& dir, std::uint64_t seq,
                                    MessageKind kind,
                                    std::vector<std::uint8_t> payload,
                                    MessageKind expect,
                                    const std::string& where);
  void request_retransmit(Party to, DirState& dir, std::uint64_t want,
                          int attempt);

  Channel& ch_;
  RetryPolicy policy_;
  FaultInjector injector_;
  DirState dir_[2];  // indexed by sending party
  Stats stats_;
};

}  // namespace primer
