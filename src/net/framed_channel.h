// FramedChannel: typed, integrity-checked, fault-tolerant transport.
//
// Wraps the raw simulated Channel so that every protocol message travels
// as a checksummed frame (net/frame.h) with a per-direction sequence
// number.  Receivers state what they are waiting for —
// recv_expect(kind) — and get exactly one of:
//
//   * the payload bytes, bit-identical to what the sender framed, or
//   * a typed ProtocolError naming the receiving party, the expected kind
//     and the precise failure (truncation, checksum, kind mismatch,
//     sequence gap, retries exhausted).
//
// A seeded FaultInjector (net/fault.h) can corrupt outgoing frames; the
// bounded retry layer recovers from drops, duplicates and reorderings:
// the receiver detects a gap, charges a control-frame "retransmit
// request" to the cost model, backs off exponentially in simulated time,
// and the pristine copy is resent from the per-direction retransmission
// buffer.  Corruption (truncation / bit-flips) is unrecoverable by design
// — the pristine buffer is only consulted for frames that never arrived —
// and surfaces as a typed error instead.
//
// Both parties run in-process, so one FramedChannel instance carries both
// directions; anything that shares the underlying Channel must share the
// FramedChannel too, or the sequence spaces desynchronize.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/channel.h"
#include "net/fault.h"
#include "net/frame.h"
#include "net/session.h"

namespace primer {

struct RetryPolicy {
  // Retransmit rounds per recv_expect before giving up.  Zero disables
  // recovery entirely: the first defect throws — corruption-matrix mode.
  int max_attempts = 8;
  double backoff_s = 0.0005;      // first retry backoff (simulated seconds)
  double backoff_max_s = 0.05;    // exponential backoff ceiling

  // Reads PRIMER_RETRY_MAX / PRIMER_RETRY_BACKOFF_S; unset keeps defaults.
  static RetryPolicy from_env();
};

class FramedChannel {
 public:
  explicit FramedChannel(Channel& ch)
      : FramedChannel(ch, FaultSpec::from_env(), RetryPolicy::from_env()) {}

  FramedChannel(Channel& ch, const FaultSpec& faults, const RetryPolicy& retry)
      : ch_(ch), policy_(retry), injector_(faults) {}

  void send(Party from, MessageKind kind, const std::uint8_t* payload,
            std::size_t n);
  void send(Party from, MessageKind kind,
            const std::vector<std::uint8_t>& payload) {
    send(from, kind, payload.data(), payload.size());
  }

  // Blocks (logically) until the next in-sequence frame for `to` is
  // recovered, verifies it carries `expect`, and returns its payload.
  std::vector<std::uint8_t> recv_expect(Party to, MessageKind expect);

  // --- session resilience -------------------------------------------------

  // Frames below `virtual_until[dir]` were covered by the checkpoint the
  // resume handshake agreed on: the peer already holds them, so send()
  // verifies the re-encoded frame against `expect_crc` and delivers it
  // locally without charging the wire.  The checkpoint's journal is pruned
  // below `journal_base[dir]` (those frames were CRC-proven by the attempt
  // that took the checkpoint), so `expect_crc[dir][i]` covers sequence
  // number `journal_base[dir] + i` and replays below the base skip the
  // CRC comparison.
  struct ReplayPlan {
    std::uint64_t virtual_until[2] = {0, 0};
    std::uint64_t journal_base[2] = {0, 0};
    std::vector<std::uint32_t> expect_crc[2];
  };

  // Starts (or restarts) a session attempt after the resume handshake:
  // resets both per-direction sequence spaces to zero, drains stale wire
  // residue, clears and enables the CRC journal, and installs the replay
  // plan.  Handshake traffic itself runs before this call and is therefore
  // neither journaled nor sequence-coupled to protocol frames.
  void begin_session(std::uint64_t session_id, std::uint32_t epoch,
                     const ReplayPlan& plan);

  // Advances the epoch label used in error strings (checkpoint boundary).
  void set_epoch(std::uint32_t epoch) { epoch_ = epoch; }

  // Frames sent so far in the given direction (the checkpoint watermark).
  std::uint64_t sent_count(Party from) const {
    return dir_[static_cast<int>(from)].next_send_seq;
  }
  // Per-frame CRC32C journal for the given direction (empty until
  // begin_session enables journaling).  Entry i covers sequence number
  // journal_base(from) + i: the checkpoint-covered prefix this attempt
  // replayed virtually is not re-journaled.
  const std::vector<std::uint32_t>& journal(Party from) const {
    return journal_[static_cast<int>(from)];
  }
  // First sequence number the journal covers in the given direction.
  std::uint64_t journal_base(Party from) const {
    return journal_base_[static_cast<int>(from)];
  }
  // Frames of `kind` delivered to `to` so far (checkpoint inventory).
  std::uint64_t kind_count(Party to, MessageKind kind) const {
    return kind_counts_[static_cast<int>(to)][static_cast<std::size_t>(kind)];
  }

  // Installs a per-phase deadline polled on every frame (null disables).
  void set_deadline(const SimDeadline* deadline) { deadline_ = deadline; }

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t framing_bytes = 0;      // header overhead on the wire
    std::uint64_t retransmit_frames = 0;  // frames resent by the retry layer
    std::uint64_t retransmit_bytes = 0;
    std::uint64_t control_bytes = 0;      // retransmit-request traffic
    std::uint64_t retry_rounds = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t parse_failures = 0;
    std::uint64_t replayed_frames = 0;  // checkpoint-covered virtual sends
    std::uint64_t replayed_bytes = 0;   // bytes those sends did not re-pay
  };
  const Stats& stats() const { return stats_; }
  const FaultInjector::Counters& fault_counters() const {
    return injector_.counters();
  }
  const FaultSpec& fault_spec() const { return injector_.spec(); }
  const RetryPolicy& retry_policy() const { return policy_; }

  void set_fault_spec(const FaultSpec& spec) { injector_ = FaultInjector(spec); }
  void set_retry_policy(const RetryPolicy& p) { policy_ = p; }

  // Escape hatch for tests that need to place hand-crafted frames on the
  // wire, and for accounting-only callers.
  Channel& raw() { return ch_; }
  const Channel& raw() const { return ch_; }

 private:
  struct DirState {
    std::uint64_t next_send_seq = 0;
    std::uint64_t next_recv_seq = 0;
    // Pristine frames not yet known-delivered, by seq (retransmission
    // source).  Only populated while fault injection is active.
    std::map<std::uint64_t, std::vector<std::uint8_t>> unacked;
    // Valid frames that arrived ahead of the expected sequence number.
    std::map<std::uint64_t,
             std::pair<MessageKind, std::vector<std::uint8_t>>>
        stash;
    // Frame held back by the injector, released after the next send in
    // this direction (reordering).
    std::vector<std::uint8_t> held;
    bool has_held = false;
  };

  static constexpr std::size_t kUnackedCap = 128;
  static constexpr int kMaxLoopIters = 4096;

  // Error-string prefix: session id + epoch (when a session is attached)
  // and the transfer direction, e.g. "sess 1f3a#2 server<-client".
  std::string describe(Party to) const;

  void transmit(Party from, DirState& dir, std::vector<std::uint8_t> frame,
                bool allow_hold);
  std::vector<std::uint8_t> deliver(Party to, DirState& dir,
                                    std::uint64_t seq, MessageKind kind,
                                    std::vector<std::uint8_t> payload,
                                    MessageKind expect,
                                    const std::string& where);
  void request_retransmit(Party to, DirState& dir, std::uint64_t want,
                          int attempt);

  Channel& ch_;
  RetryPolicy policy_;
  FaultInjector injector_;
  DirState dir_[2];  // indexed by sending party
  Stats stats_;
  // Session resilience state (inert until begin_session).
  std::uint64_t session_id_ = 0;
  std::uint32_t epoch_ = 0;
  bool journal_on_ = false;
  std::vector<std::uint32_t> journal_[2];  // indexed by sending party
  std::uint64_t journal_base_[2] = {0, 0};
  ReplayPlan plan_;
  std::uint64_t kind_counts_[2][kMessageKindCount] = {};  // [receiver][kind]
  const SimDeadline* deadline_ = nullptr;
};

}  // namespace primer
