// DurableSessionStore: the SessionStore interface backed by real
// crash-consistent files, so checkpoints — and the cached multi-MB key
// material they amortize — survive genuine process death (SIGKILL,
// OOM-kill, host restart), not just the in-process throw the chaos
// harness simulates.
//
// On-disk layout (one directory per store):
//
//   <dir>/client_000003.ckpt     per-party, per-epoch checkpoint blob
//   <dir>/server_000003.ckpt
//   <dir>/*.ckpt.tmp             in-flight writes (cleaned by the scan)
//   <dir>/quarantine/            torn/corrupt blobs moved aside, kept for
//                                post-mortem instead of deleted
//
// Each blob is a small header (magic, version, party, epoch, payload
// length, CRC32C of the payload) followed by the serialized
// SessionCheckpoint.  The payload CRC *is* the checkpoint digest the
// resume handshake exchanges, so a blob that passes the scan will also
// survive digest negotiation.
//
// Durability protocol: every save goes through common/fs.h
// atomic_write_file (temp -> fsync -> rename -> fsync-dir), so a crash at
// any instant leaves either the previous blob or the new one — never a
// hybrid.  The constructor runs a recovery scan: temp files are deleted,
// blobs that fail any validation step are moved to quarantine/, valid
// blobs populate the in-memory map the base class serves reads from.
//
// Degradation: a failed persist (ENOSPC, EIO, vanished directory) never
// aborts the session.  The store latches into degraded mode — saves keep
// landing in memory, every later save retries the disk — and reports the
// failure as the retryable StorageDegraded from the ProtocolError
// taxonomy via last_degradation(), with counts in telemetry().  Losing
// the *durability upgrade* must not lose the inference that was running.
//
// Seeded fault injection (all off by default):
//
//   PRIMER_STORE_FAULT_AT         1-based persist-op index to fault (0=off)
//   PRIMER_STORE_FAULT_MODE       fail | short_write | crash_before_rename
//                                 | crash_after_rename
//   PRIMER_STORE_FAULT_TORN_BYTE  short_write truncation offset (bytes)
//
// "fail" exercises the degradation path; "short_write" commits a torn
// blob the next scan must quarantine; the crash modes throw
// SimulatedCrash at the exact protocol point, so tests can re-open the
// directory the way a freshly exec'd process would.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/fs.h"
#include "net/session.h"

namespace primer {

struct StoreFaultSpec {
  enum class Mode {
    kNone,
    kFail,              // persist reports EIO -> degradation path
    kShortWrite,        // commit a torn blob (truncated at torn_byte)
    kCrashBeforeRename, // die after fsync(temp): epoch never committed
    kCrashAfterRename,  // die after rename: epoch committed, dir unsynced
  };

  std::uint64_t at = 0;  // 1-based persist-op index (0 disables)
  Mode mode = Mode::kNone;
  std::uint64_t torn_byte = 32;  // where short_write cuts the blob

  bool armed() const { return at != 0 && mode != Mode::kNone; }

  // PRIMER_STORE_FAULT_AT / _MODE / _TORN_BYTE; malformed values throw.
  static StoreFaultSpec from_env();
};

class DurableSessionStore : public SessionStore {
 public:
  struct Options {
    std::size_t keep_last = 4;    // newest epochs kept per party (0 = all)
    std::uint64_t max_bytes = 0;  // total on-disk byte cap (0 = unlimited)
    StoreFaultSpec faults;

    // PRIMER_STORE_KEEP / PRIMER_STORE_MAX_BYTES plus the fault knobs.
    static Options from_env();
  };

  // Creates the directory if needed and runs the recovery scan.  Throws
  // FsError only if the directory itself cannot be created/listed — an
  // unusable root is a configuration error, not a degradation.
  explicit DurableSessionStore(std::string dir,
                               Options opts = Options::from_env());

  void save(Party p, const SessionCheckpoint& cp) override;
  void drop(Party p, std::uint32_t epoch) override;
  void clear() override;
  void tamper(Party p, std::uint32_t epoch) override;

  Telemetry telemetry() const override;
  std::optional<StorageDegraded> last_degradation() const override {
    return last_degradation_;
  }

  const std::string& dir() const { return dir_; }
  // Quarantined blob filenames from this store's recovery scan.
  const std::vector<std::string>& quarantined() const { return quarantined_; }

  // Blob filename for a party/epoch pair, e.g. "client_000007.ckpt".
  static std::string blob_name(Party p, std::uint32_t epoch);

  // Validates one raw blob: header, payload CRC, checkpoint structure,
  // party/epoch consistency.  Returns the checkpoint payload on success,
  // std::nullopt on any defect.  Exposed so the fuzz-smoke suite can feed
  // it hostile bytes directly.
  static std::optional<std::vector<std::uint8_t>> validate_blob(
      const std::vector<std::uint8_t>& blob, Party expect_party,
      std::uint32_t expect_epoch);

 private:
  void recovery_scan();
  void quarantine_blob(const std::string& name);
  // Writes one party/epoch payload to disk; returns false on degradation
  // (recorded), true on success.  SimulatedCrash propagates.
  bool persist(Party p, std::uint32_t epoch,
               const std::vector<std::uint8_t>& payload);
  void apply_retention();
  void remove_blob(Party p, std::uint32_t epoch);

  std::string dir_;
  Options opts_;
  std::uint64_t persist_ops_ = 0;  // 1-based op counter the injector keys on
  AtomicWriteStats write_stats_;
  std::uint64_t degradations_ = 0;
  bool degraded_ = false;
  std::optional<StorageDegraded> last_degradation_;
  std::uint64_t recovered_ = 0;
  std::vector<std::string> quarantined_;
};

}  // namespace primer
