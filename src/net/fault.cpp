#include "net/fault.h"

#include <cstdlib>
#include <string>

namespace primer {

namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  try {
    return static_cast<std::uint64_t>(std::stoull(v));
  } catch (const std::exception&) {
    return fallback;
  }
}

}  // namespace

FaultSpec FaultSpec::from_env() {
  FaultSpec s;
  s.seed = env_u64("PRIMER_FAULT_SEED", s.seed);
  s.drop = env_double("PRIMER_FAULT_DROP", s.drop);
  s.duplicate = env_double("PRIMER_FAULT_DUP", s.duplicate);
  s.reorder = env_double("PRIMER_FAULT_REORDER", s.reorder);
  s.truncate = env_double("PRIMER_FAULT_TRUNCATE", s.truncate);
  s.bitflip = env_double("PRIMER_FAULT_BITFLIP", s.bitflip);
  s.delay = env_double("PRIMER_FAULT_DELAY", s.delay);
  s.delay_s = env_double("PRIMER_FAULT_DELAY_S", s.delay_s);
  s.kill_after = env_u64("PRIMER_FAULT_KILL_AFTER", s.kill_after);
  s.stall_after = env_u64("PRIMER_FAULT_STALL_AFTER", s.stall_after);
  s.stall_s = env_double("PRIMER_FAULT_STALL_S", s.stall_s);
  return s;
}

FaultInjector::WireEvent FaultInjector::on_wire_frame() {
  WireEvent ev;
  ev.frame_index = ++wire_frames_;
  if (spec_.stall_after != 0 && ev.frame_index == spec_.stall_after) {
    ++counters_.stalled;
    ev.stall_s = spec_.stall_s;
  }
  if (spec_.kill_after != 0 && ev.frame_index == spec_.kill_after) {
    ++counters_.killed;
    ev.kill = true;
  }
  return ev;
}

bool FaultInjector::roll(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return rng_.uniform_real() < p;
}

FaultInjector::Outcome FaultInjector::apply(
    const std::vector<std::uint8_t>& frame, bool allow_hold) {
  Outcome out;
  if (roll(spec_.delay)) {
    ++counters_.delayed;
    out.extra_delay_s += spec_.delay_s;
  }
  if (roll(spec_.drop)) {
    ++counters_.dropped;
    return out;
  }
  if (allow_hold && roll(spec_.reorder)) {
    ++counters_.reordered;
    out.held = frame;
    out.has_held = true;
    return out;
  }
  std::vector<std::uint8_t> copy = frame;
  if (roll(spec_.truncate) && !copy.empty()) {
    ++counters_.truncated;
    // Cut anywhere strictly inside the frame, header included.
    copy.resize(rng_.uniform(copy.size()));
  } else if (roll(spec_.bitflip) && !copy.empty()) {
    ++counters_.bitflipped;
    const std::size_t byte = rng_.uniform(copy.size());
    copy[byte] ^= static_cast<std::uint8_t>(1u << rng_.uniform(8));
  }
  const bool dup = roll(spec_.duplicate);
  if (dup) ++counters_.duplicated;
  out.deliver.push_back(std::move(copy));
  if (dup) out.deliver.push_back(out.deliver.front());
  return out;
}

}  // namespace primer
