#include "net/fault.h"

#include <stdexcept>

#include "common/env.h"

namespace primer {

FaultSpec FaultSpec::from_env() {
  FaultSpec s;
  s.seed = env_u64("PRIMER_FAULT_SEED", s.seed);
  s.drop = env_double("PRIMER_FAULT_DROP", s.drop, 0.0, 1.0);
  s.duplicate = env_double("PRIMER_FAULT_DUP", s.duplicate, 0.0, 1.0);
  s.reorder = env_double("PRIMER_FAULT_REORDER", s.reorder, 0.0, 1.0);
  s.truncate = env_double("PRIMER_FAULT_TRUNCATE", s.truncate, 0.0, 1.0);
  s.bitflip = env_double("PRIMER_FAULT_BITFLIP", s.bitflip, 0.0, 1.0);
  s.delay = env_double("PRIMER_FAULT_DELAY", s.delay, 0.0, 1.0);
  s.delay_s = env_double("PRIMER_FAULT_DELAY_S", s.delay_s, 0.0, 3600.0);
  s.kill_after = env_u64("PRIMER_FAULT_KILL_AFTER", s.kill_after);
  const std::string mode = env_string("PRIMER_FAULT_KILL_MODE", "throw");
  if (mode == "sigkill") {
    s.kill_mode = FaultKillMode::kSigkill;
  } else if (mode != "throw") {
    throw std::invalid_argument("PRIMER_FAULT_KILL_MODE=\"" + mode +
                                "\": expected \"throw\" or \"sigkill\"");
  }
  s.stall_after = env_u64("PRIMER_FAULT_STALL_AFTER", s.stall_after);
  s.stall_s = env_double("PRIMER_FAULT_STALL_S", s.stall_s, 0.0, 86400.0);
  s.stall_wall_s =
      env_double("PRIMER_FAULT_STALL_WALL_S", s.stall_wall_s, 0.0, 3600.0);
  s.hostile_after = env_u64("PRIMER_FAULT_HOSTILE_AFTER", s.hostile_after);
  return s;
}

FaultInjector::WireEvent FaultInjector::on_wire_frame() {
  WireEvent ev;
  ev.frame_index = ++wire_frames_;
  if (spec_.stall_after != 0 && ev.frame_index == spec_.stall_after) {
    ++counters_.stalled;
    ev.stall_s = spec_.stall_s;
    ev.stall_wall_s = spec_.stall_wall_s;
  }
  if (spec_.hostile_after != 0 && ev.frame_index == spec_.hostile_after) {
    ++counters_.hostile;
    ev.hostile = true;
  }
  if (spec_.kill_after != 0 && ev.frame_index == spec_.kill_after) {
    ++counters_.killed;
    ev.kill = true;
  }
  return ev;
}

bool FaultInjector::roll(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return rng_.uniform_real() < p;
}

FaultInjector::Outcome FaultInjector::apply(
    const std::vector<std::uint8_t>& frame, bool allow_hold) {
  Outcome out;
  if (roll(spec_.delay)) {
    ++counters_.delayed;
    out.extra_delay_s += spec_.delay_s;
  }
  if (roll(spec_.drop)) {
    ++counters_.dropped;
    return out;
  }
  if (allow_hold && roll(spec_.reorder)) {
    ++counters_.reordered;
    out.held = frame;
    out.has_held = true;
    return out;
  }
  std::vector<std::uint8_t> copy = frame;
  if (roll(spec_.truncate) && !copy.empty()) {
    ++counters_.truncated;
    // Cut anywhere strictly inside the frame, header included.
    copy.resize(rng_.uniform(copy.size()));
  } else if (roll(spec_.bitflip) && !copy.empty()) {
    ++counters_.bitflipped;
    const std::size_t byte = rng_.uniform(copy.size());
    copy[byte] ^= static_cast<std::uint8_t>(1u << rng_.uniform(8));
  }
  const bool dup = roll(spec_.duplicate);
  if (dup) ++counters_.duplicated;
  out.deliver.push_back(std::move(copy));
  if (dup) out.deliver.push_back(out.deliver.front());
  return out;
}

}  // namespace primer
