// Typed wire framing for every protocol message.
//
// Raw channel messages are opaque blobs; a hostile or lossy wire can
// truncate, corrupt, reorder or replay them and the first symptom used to
// be undefined behavior deep inside a deserializer.  Every message now
// travels as a frame:
//
//   offset  size  field
//        0     4  magic "PRMF"
//        4     1  protocol version
//        5     1  message kind (MessageKind)
//        6     1  flags (reserved, must be 0)
//        7     1  reserved (must be 0)
//        8     8  per-direction sequence number
//       16     4  payload length (must equal frame size - header size)
//       20     4  CRC32C over header (crc field excluded) and payload
//       24     -  payload
//
// Receivers call FramedChannel::recv_expect(kind) and get either the
// payload or a typed ProtocolError naming exactly what went wrong — never
// a silent misparse.  parse_frame/encode_frame are exposed so tests can
// craft adversarial frames (including ones with a *valid* checksum but the
// wrong kind).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/crc32c.h"

namespace primer {

enum class MessageKind : std::uint8_t {
  kControl = 0,           // retransmit requests / acks (accounting only)
  kCiphertexts = 1,       // length-framed ciphertext batch
  kRingMatrix = 2,        // packed Z_t share matrix
  kGcTables = 3,          // garbled tables (offline)
  kGcDecodeBits = 4,      // output decode bits (offline, evaluator-revealed)
  kGcGarblerLabels = 5,   // garbler's active input labels
  kGcOutputBits = 6,      // revealed output bits / lsbs
  kOtSetup = 7,           // base-OT bootstrap traffic
  kOtReceiverColumns = 8, // IKNP receiver correction columns
  kOtSenderMasked = 9,    // IKNP sender masked label pairs
  kGcTableChunk = 10,     // streamed garbled-table span (offline)
  kSessionHello = 11,     // resume handshake: party's checkpoint inventory
  kSessionResume = 12,    // resume handshake: agreed epoch + digest
  kKeyMaterial = 13,      // evaluation keys (Galois / relinearization)
};

// Number of distinct wire kinds; sized for per-kind inventory arrays.
inline constexpr std::size_t kMessageKindCount = 14;

inline const char* message_kind_name(MessageKind k) {
  switch (k) {
    case MessageKind::kControl: return "control";
    case MessageKind::kCiphertexts: return "ciphertexts";
    case MessageKind::kRingMatrix: return "ring_matrix";
    case MessageKind::kGcTables: return "gc_tables";
    case MessageKind::kGcDecodeBits: return "gc_decode_bits";
    case MessageKind::kGcGarblerLabels: return "gc_garbler_labels";
    case MessageKind::kGcOutputBits: return "gc_output_bits";
    case MessageKind::kOtSetup: return "ot_setup";
    case MessageKind::kOtReceiverColumns: return "ot_receiver_columns";
    case MessageKind::kOtSenderMasked: return "ot_sender_masked";
    case MessageKind::kGcTableChunk: return "gc_table_chunk";
    case MessageKind::kSessionHello: return "session_hello";
    case MessageKind::kSessionResume: return "session_resume";
    case MessageKind::kKeyMaterial: return "key_material";
  }
  return "unknown";
}

enum class ProtocolErrorKind {
  kBadMagic,          // frame does not start with the magic bytes
  kBadVersion,        // unknown protocol version
  kTruncated,         // frame shorter than a header, or length field lies
  kChecksumMismatch,  // CRC32C over header+payload failed
  kKindMismatch,      // valid frame, but not the kind this step expects
  kSequenceGap,       // expected sequence number never arrived
  kRetriesExhausted,  // retry/backoff gave up recovering a frame
  kMalformed,         // frame valid, payload failed structural validation
  kPeerKilled,        // fault injector killed the sending process mid-phase
  kDeadlineExceeded,  // a phase overran its deadline budget (see session.h)
  kResumeRejected,    // resume handshake refused (session/params mismatch)
  kResumeDiverged,    // replayed frame does not match the journaled CRC
  kServerOverloaded,  // admission control shed the request (see serving/)
  kStorageDegraded,   // durable store hit ENOSPC/EIO; running from memory
};

inline const char* protocol_error_kind_name(ProtocolErrorKind k) {
  switch (k) {
    case ProtocolErrorKind::kBadMagic: return "bad_magic";
    case ProtocolErrorKind::kBadVersion: return "bad_version";
    case ProtocolErrorKind::kTruncated: return "truncated";
    case ProtocolErrorKind::kChecksumMismatch: return "checksum_mismatch";
    case ProtocolErrorKind::kKindMismatch: return "kind_mismatch";
    case ProtocolErrorKind::kSequenceGap: return "sequence_gap";
    case ProtocolErrorKind::kRetriesExhausted: return "retries_exhausted";
    case ProtocolErrorKind::kMalformed: return "malformed";
    case ProtocolErrorKind::kPeerKilled: return "peer_killed";
    case ProtocolErrorKind::kDeadlineExceeded: return "deadline_exceeded";
    case ProtocolErrorKind::kResumeRejected: return "resume_rejected";
    case ProtocolErrorKind::kResumeDiverged: return "resume_diverged";
    case ProtocolErrorKind::kServerOverloaded: return "server_overloaded";
    case ProtocolErrorKind::kStorageDegraded: return "storage_degraded";
  }
  return "unknown";
}

// Retryable failures are transient: the wire lost/garbled/withheld data, or
// a peer died or stalled.  A fresh attempt — after a session-resume
// handshake replays the checkpointed prefix — can succeed.  Fatal failures
// mean the peer speaks a different protocol, the payload is structurally
// hostile, or the two parties' checkpoint histories disagree: retrying
// would loop on the same defect forever.
constexpr bool protocol_error_retryable(ProtocolErrorKind k) {
  switch (k) {
    case ProtocolErrorKind::kTruncated:
    case ProtocolErrorKind::kChecksumMismatch:
    case ProtocolErrorKind::kSequenceGap:
    case ProtocolErrorKind::kRetriesExhausted:
    case ProtocolErrorKind::kPeerKilled:
    case ProtocolErrorKind::kDeadlineExceeded:
    case ProtocolErrorKind::kServerOverloaded:
    case ProtocolErrorKind::kStorageDegraded:
      return true;
    case ProtocolErrorKind::kBadMagic:
    case ProtocolErrorKind::kBadVersion:
    case ProtocolErrorKind::kKindMismatch:
    case ProtocolErrorKind::kMalformed:
    case ProtocolErrorKind::kResumeRejected:
    case ProtocolErrorKind::kResumeDiverged:
      return false;
  }
  return false;
}

// Every transport-layer failure surfaces as this exception, tagged with the
// precise failure class so tests (and callers) can distinguish a hostile
// wire from a protocol logic error.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ProtocolErrorKind kind, const std::string& what)
      : std::runtime_error(std::string("ProtocolError[") +
                           protocol_error_kind_name(kind) + "]: " + what),
        kind_(kind) {}

  ProtocolErrorKind kind() const { return kind_; }
  bool retryable() const { return protocol_error_retryable(kind_); }

 private:
  ProtocolErrorKind kind_;
};

// A phase overran its deadline budget.  Carries the phase label and the
// elapsed/budget split so callers can distinguish a slow phase from a hang.
class DeadlineExceeded : public ProtocolError {
 public:
  DeadlineExceeded(const std::string& phase, double elapsed_s,
                   double budget_s, const std::string& where)
      : ProtocolError(ProtocolErrorKind::kDeadlineExceeded,
                      where + ": phase '" + phase + "' exceeded its " +
                          std::to_string(budget_s) + "s budget (" +
                          std::to_string(elapsed_s) + "s elapsed)"),
        phase_(phase),
        elapsed_s_(elapsed_s),
        budget_s_(budget_s) {}

  const std::string& phase() const { return phase_; }
  double elapsed_s() const { return elapsed_s_; }
  double budget_s() const { return budget_s_; }

 private:
  std::string phase_;
  double elapsed_s_;
  double budget_s_;
};

// The durable checkpoint store lost its backing filesystem (ENOSPC, EIO,
// a vanished directory).  Retryable by design: the store falls back to
// in-memory operation and the session keeps running — this error is how
// the degradation is *reported* (store telemetry, serving stats), never a
// reason to abort an inference that can finish without disk.
class StorageDegraded : public ProtocolError {
 public:
  StorageDegraded(const std::string& op, const std::string& path,
                  int saved_errno, const std::string& detail)
      : ProtocolError(ProtocolErrorKind::kStorageDegraded,
                      op + " '" + path + "' failed (errno " +
                          std::to_string(saved_errno) + "): " + detail +
                          " — continuing from memory"),
        op_(op),
        path_(path),
        errno_(saved_errno) {}

  const std::string& op() const { return op_; }
  const std::string& path() const { return path_; }
  int saved_errno() const { return errno_; }

 private:
  std::string op_;
  std::string path_;
  int errno_;
};

struct FrameHeader {
  static constexpr std::uint32_t kMagic = 0x464d5250u;  // "PRMF" little-endian
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::size_t kWireSize = 24;
  // Byte offsets within the encoded header (tests mutate fields in place).
  static constexpr std::size_t kKindOffset = 5;
  static constexpr std::size_t kSeqOffset = 8;
  static constexpr std::size_t kLenOffset = 16;
  static constexpr std::size_t kCrcOffset = 20;

  std::uint8_t version = kVersion;
  MessageKind kind = MessageKind::kControl;
  std::uint8_t flags = 0;
  std::uint64_t seq = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t crc = 0;
};

// CRC32C of a whole frame, skipping the 4-byte crc field itself.
inline std::uint32_t frame_crc(const std::uint8_t* frame, std::size_t size) {
  const std::uint32_t head = crc32c(frame, FrameHeader::kCrcOffset);
  return crc32c(frame + FrameHeader::kWireSize,
                size - FrameHeader::kWireSize, head);
}

// Builds a complete frame (header + payload copy) ready for the wire.
inline std::vector<std::uint8_t> encode_frame(MessageKind kind,
                                              std::uint64_t seq,
                                              const std::uint8_t* payload,
                                              std::size_t payload_len) {
  std::vector<std::uint8_t> frame(FrameHeader::kWireSize + payload_len);
  const std::uint32_t magic = FrameHeader::kMagic;
  std::memcpy(frame.data(), &magic, 4);
  frame[4] = FrameHeader::kVersion;
  frame[FrameHeader::kKindOffset] = static_cast<std::uint8_t>(kind);
  frame[6] = 0;
  frame[7] = 0;
  std::memcpy(frame.data() + FrameHeader::kSeqOffset, &seq, 8);
  const auto len32 = static_cast<std::uint32_t>(payload_len);
  std::memcpy(frame.data() + FrameHeader::kLenOffset, &len32, 4);
  if (payload_len != 0) {
    std::memcpy(frame.data() + FrameHeader::kWireSize, payload, payload_len);
  }
  const std::uint32_t crc = frame_crc(frame.data(), frame.size());
  std::memcpy(frame.data() + FrameHeader::kCrcOffset, &crc, 4);
  return frame;
}

// Recomputes and restores the CRC of a (mutated) frame — test helper for
// crafting frames that are structurally valid but semantically wrong.
inline void reseal_frame(std::vector<std::uint8_t>& frame) {
  if (frame.size() < FrameHeader::kWireSize) return;
  const std::uint32_t crc = frame_crc(frame.data(), frame.size());
  std::memcpy(frame.data() + FrameHeader::kCrcOffset, &crc, 4);
}

// Validates and decodes a frame header; throws ProtocolError on any defect.
// `where` names the receiving party / expectation for actionable messages.
inline FrameHeader parse_frame(const std::vector<std::uint8_t>& frame,
                               const std::string& where) {
  if (frame.size() < FrameHeader::kWireSize) {
    throw ProtocolError(ProtocolErrorKind::kTruncated,
                        where + ": frame of " + std::to_string(frame.size()) +
                            " bytes is shorter than the " +
                            std::to_string(FrameHeader::kWireSize) +
                            "-byte header");
  }
  FrameHeader h;
  std::uint32_t magic = 0;
  std::memcpy(&magic, frame.data(), 4);
  if (magic != FrameHeader::kMagic) {
    throw ProtocolError(ProtocolErrorKind::kBadMagic,
                        where + ": bad frame magic");
  }
  h.version = frame[4];
  if (h.version != FrameHeader::kVersion) {
    throw ProtocolError(ProtocolErrorKind::kBadVersion,
                        where + ": protocol version " +
                            std::to_string(h.version) + " (expected " +
                            std::to_string(FrameHeader::kVersion) + ")");
  }
  h.kind = static_cast<MessageKind>(frame[FrameHeader::kKindOffset]);
  h.flags = frame[6];
  std::memcpy(&h.seq, frame.data() + FrameHeader::kSeqOffset, 8);
  std::memcpy(&h.payload_len, frame.data() + FrameHeader::kLenOffset, 4);
  if (h.payload_len != frame.size() - FrameHeader::kWireSize) {
    throw ProtocolError(
        ProtocolErrorKind::kTruncated,
        where + ": header claims " + std::to_string(h.payload_len) +
            " payload bytes but " +
            std::to_string(frame.size() - FrameHeader::kWireSize) +
            " are present");
  }
  std::memcpy(&h.crc, frame.data() + FrameHeader::kCrcOffset, 4);
  if (h.crc != frame_crc(frame.data(), frame.size())) {
    throw ProtocolError(ProtocolErrorKind::kChecksumMismatch,
                        where + ": CRC32C mismatch on " +
                            std::string(message_kind_name(h.kind)) +
                            " frame seq " + std::to_string(h.seq));
  }
  return h;
}

}  // namespace primer
