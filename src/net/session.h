// Session-resilience layer: phase-boundary checkpoints, resume handshake
// payloads, and deterministic per-phase deadlines.
//
// The Primer protocol is a long multi-phase exchange (key transfer, packed
// linear layers, GC nonlinear rounds); a peer crash mid-run used to discard
// everything, including the multi-MB evaluation-key transfer the ROADMAP's
// serving runtime wants to amortize across sessions.  This layer makes the
// *session* recoverable:
//
//   * At every phase boundary both parties persist a SessionCheckpoint —
//     negotiated-parameter fingerprint, per-direction send watermarks, the
//     CRC32C journal of every frame below the watermark, and a per-kind
//     inventory of received frames — into a SessionStore.
//
//   * After a crash, a fresh FramedChannel re-attaches via a two-frame
//     handshake (kSessionHello / kSessionResume) that negotiates the
//     highest checkpoint epoch whose digests match on both sides.
//
//   * The protocol then re-executes deterministically from the start; every
//     send whose sequence number lies below the agreed watermark is
//     verified against the journaled CRC and delivered locally without
//     touching the wire ("virtual replay") — the peer already holds those
//     bytes — so only the delta past the checkpoint is retransmitted, and
//     the resumed run is bit-identical to an unfaulted one.
//
// Checkpoints deliberately persist *transport* state plus integrity
// digests, not party compute state: with both parties seeded
// deterministically, re-execution reconstructs the compute state exactly
// (and the CRC journal proves it), while wire traffic — the scarce
// resource in the paper's WAN setting — is only paid for once.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/serialize.h"
#include "common/timing.h"
#include "net/channel.h"
#include "net/frame.h"

namespace primer {

// Liveness heartbeat a running session publishes for external observers
// (the serving runtime's eviction policy, health snapshots).  The session
// thread beats it at step and checkpoint granularity; observer threads read
// it concurrently, so the counters are atomics and the phase label is
// mutex-guarded.
class SessionProgress {
 public:
  void beat(const char* phase) {
    last_beat_ns_.store(now_ns(), std::memory_order_release);
    if (phase != nullptr) {
      std::lock_guard<std::mutex> lk(mu_);
      phase_ = phase;
    }
  }
  void on_step() {
    steps_.fetch_add(1, std::memory_order_relaxed);
    last_beat_ns_.store(now_ns(), std::memory_order_release);
  }
  void on_checkpoint(std::uint32_t epoch) {
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    epoch_.store(epoch, std::memory_order_relaxed);
    last_beat_ns_.store(now_ns(), std::memory_order_release);
  }

  std::uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }
  std::uint64_t checkpoints() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  std::uint32_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  std::string phase() const {
    std::lock_guard<std::mutex> lk(mu_);
    return phase_;
  }
  // Wall seconds since the session last showed signs of life (never
  // negative; a session that has not beaten yet reports time since
  // construction).
  double seconds_since_beat() const {
    const std::int64_t last = last_beat_ns_.load(std::memory_order_acquire);
    const std::int64_t d = now_ns() - last;
    return d > 0 ? static_cast<double>(d) * 1e-9 : 0.0;
  }

 private:
  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<std::int64_t> last_beat_ns_{now_ns()};
  mutable std::mutex mu_;
  std::string phase_ = "queued";
};

// Thrown by the runtime when a drain request catches a session at a phase
// boundary: the checkpoint for `epoch` was persisted first, so a later
// request from the same client resumes exactly there.  Deliberately not a
// ProtocolError — drain is an orderly shutdown, not a wire fault, and the
// retry loops must not treat it as retryable.
class SessionDrained : public std::runtime_error {
 public:
  SessionDrained(std::uint32_t epoch, const std::string& phase)
      : std::runtime_error("session drained at checkpoint epoch " +
                           std::to_string(epoch) + " (after phase '" + phase +
                           "')"),
        epoch_(epoch) {}
  std::uint32_t epoch() const { return epoch_; }

 private:
  std::uint32_t epoch_;
};

// One phase boundary's durable snapshot.  Both parties save an identical
// checkpoint (the in-process transport is symmetric: everything one party
// sent, the other received), so the digest doubles as a cross-party
// consistency check during the resume handshake.
struct SessionCheckpoint {
  std::uint64_t session_id = 0;
  std::uint32_t epoch = 0;       // 1-based, monotonically increasing
  std::string phase;             // boundary label, e.g. "key_transfer"
  std::uint64_t params_hash = 0; // negotiated-parameter fingerprint
  // Frames 0..watermark-1 in each direction are covered (indexed by the
  // sending party).  The CRC32C journal is *pruned* below journal_base:
  // frames in [0, journal_base) were already CRC-verified during the
  // virtual replay of the epoch this attempt resumed from, so only
  // [journal_base, watermark) carries per-frame CRCs — long sessions do
  // not balloon their checkpoint blobs with journal entries every resumed
  // attempt has already proven.
  std::uint64_t send_watermark[2] = {0, 0};
  std::uint64_t journal_base[2] = {0, 0};
  std::vector<std::uint32_t> frame_crc[2];  // frame_crc[d][i] = seq base+i
  // Received-frame inventory per kind, indexed by the receiving party —
  // how many ciphertext batches, key-material frames, GC table chunks etc.
  // each side holds at this boundary.
  std::uint64_t kind_counts[2][kMessageKindCount] = {};
  std::uint64_t wire_bytes = 0;  // channel total at the boundary (telemetry)

  void serialize(ByteWriter& w) const;
  // Throws ProtocolError(kMalformed) on any structural defect.
  static SessionCheckpoint deserialize(ByteReader& r);

  // CRC32C over the serialized form — the handshake's equality witness.
  std::uint32_t digest() const;
};

// Per-party checkpoint history.  The base class is an in-memory store —
// each party's "local disk" for single-process tests, where the chaos
// harness simulates partial disk loss by dropping individual epochs.  The
// methods are virtual so DurableSessionStore (net/session_fs.h) can back
// the same interface with real crash-consistent files; everything above
// this seam (runtime, serving, engine) only ever sees SessionStore&.
class SessionStore {
 public:
  virtual ~SessionStore() = default;

  virtual void save(Party p, const SessionCheckpoint& cp);
  virtual std::optional<SessionCheckpoint> load(Party p,
                                                std::uint32_t epoch) const;
  virtual std::uint32_t latest_epoch(Party p) const;  // 0 = no checkpoints
  // (epoch, digest) pairs, ascending — the hello message's inventory.
  virtual std::vector<std::pair<std::uint32_t, std::uint32_t>> digests(
      Party p) const;

  virtual void drop(Party p, std::uint32_t epoch);  // simulate losing one
  virtual void clear();
  virtual std::size_t blob_bytes() const;  // total persisted bytes
  // Test hook: corrupt a stored blob in place (digest no longer matches).
  virtual void tamper(Party p, std::uint32_t epoch);

  // Storage-layer telemetry.  The in-memory store reports zeros except for
  // journal/blob growth; the durable store fills in the filesystem story.
  struct Telemetry {
    std::uint64_t bytes_written = 0;     // payload bytes persisted to disk
    std::uint64_t fsyncs = 0;            // file + directory fsync calls
    std::uint64_t degradations = 0;      // persists that fell back to memory
    std::uint64_t recovered_blobs = 0;   // valid blobs adopted by the scan
    std::uint64_t quarantined_blobs = 0; // torn/corrupt blobs quarantined
    bool degraded = false;               // currently running from memory
  };
  virtual Telemetry telemetry() const { return {}; }
  // Most recent degradation, as the typed retryable error the taxonomy
  // assigns it (std::nullopt while the store is healthy).
  virtual std::optional<StorageDegraded> last_degradation() const {
    return std::nullopt;
  }

 protected:
  // Serialized checkpoint blobs by epoch, indexed by party.  Derived
  // stores use this map as their in-memory source of truth and overlay
  // persistence around it.
  std::map<std::uint32_t, std::vector<std::uint8_t>> slots_[2];
};

// ---------------------------------------------------------------------------
// Resume handshake payloads
// ---------------------------------------------------------------------------

// Client -> server: "this is who I am and what I have on disk".
struct SessionHello {
  std::uint64_t session_id = 0;
  std::uint64_t params_hash = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> epochs;  // (epoch, digest)

  std::vector<std::uint8_t> serialize() const;
  static SessionHello deserialize(const std::vector<std::uint8_t>& payload,
                                  const std::string& where);
};

// Server -> client: "resume from this epoch" (0 = fresh start).
struct SessionResume {
  std::uint32_t agreed_epoch = 0;
  std::uint32_t digest = 0;  // digest of the agreed checkpoint (0 if fresh)

  std::vector<std::uint8_t> serialize() const;
  static SessionResume deserialize(const std::vector<std::uint8_t>& payload,
                                   const std::string& where);
};

// Server-side epoch negotiation: the highest epoch present in both
// histories with matching digests.  Epochs missing on either side are
// skipped (partial disk loss degrades to an older checkpoint); if common
// epochs exist but every digest disagrees, the histories have forked and
// resuming would replay divergent state — that is kResumeDiverged.  No
// common epoch at all is a clean fresh start (returns 0).  Session-id or
// parameter mismatches throw kResumeRejected: that peer belongs to a
// different session entirely.
std::uint32_t negotiate_resume_epoch(const SessionHello& hello,
                                     std::uint64_t my_session_id,
                                     std::uint64_t my_params_hash,
                                     const SessionStore& store, Party me);

// ---------------------------------------------------------------------------
// Per-phase deadlines
// ---------------------------------------------------------------------------

// Deterministic phase budget: elapsed time = simulated network seconds
// accrued since the phase started plus wall-clock compute seconds.  The
// simulated component makes injected stalls (PRIMER_FAULT_STALL_*) trip the
// deadline reproducibly regardless of host speed; the wall component plus
// an optional watchdog-armed CancelToken turns true hangs into the same
// typed error path.  check() is polled at frame granularity by
// FramedChannel and at step granularity by the protocol runtime.
class SimDeadline {
 public:
  void configure(const Channel* ch, double budget_s,
                 const CancelToken* cancel) {
    ch_ = ch;
    budget_s_ = budget_s;
    cancel_ = cancel;
    start_phase("session_setup");
  }

  void start_phase(const std::string& phase) {
    phase_ = phase;
    phase_start_sim_ = ch_ != nullptr ? ch_->simulated_seconds() : 0.0;
    wall_.reset();
  }

  const std::string& phase() const { return phase_; }

  double elapsed_s() const {
    const double sim =
        ch_ != nullptr ? ch_->simulated_seconds() - phase_start_sim_ : 0.0;
    return sim + wall_.seconds();
  }

  bool enabled() const { return budget_s_ > 0 || cancel_ != nullptr; }

  // Throws OperationCancelled (watchdog fired) or DeadlineExceeded (budget
  // overrun); `where` names the poll point for the error message.
  void check(const std::string& where) const {
    if (cancel_ != nullptr) cancel_->check(where);
    if (budget_s_ <= 0) return;
    const double elapsed = elapsed_s();
    if (elapsed > budget_s_) {
      throw DeadlineExceeded(phase_, elapsed, budget_s_, where);
    }
  }

 private:
  const Channel* ch_ = nullptr;
  double budget_s_ = 0;
  const CancelToken* cancel_ = nullptr;
  std::string phase_ = "session_setup";
  double phase_start_sim_ = 0;
  Stopwatch wall_;
};

}  // namespace primer
