// Simulated two-party network channel.
//
// Both protocol parties run in-process; every message they exchange passes
// through this channel, which records exact byte counts, message counts and
// communication rounds, and converts them into simulated network seconds
// using the paper's testbed model (§IV): average one-way delay 2.3 ms,
// bandwidth 100 MB/s.  Compute time is measured separately with wall-clock
// stopwatches; total latency = compute + simulated network.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/frame.h"

namespace primer {

struct NetworkModel {
  double one_way_delay_s = 0.0023;   // paper: "average network delay 2.3 ms"
  double bandwidth_bytes_per_s = 100e6;  // paper: "about 100 MB/s"
};

enum class Party : int { kClient = 0, kServer = 1 };

inline Party other(Party p) {
  return p == Party::kClient ? Party::kServer : Party::kClient;
}

inline const char* party_name(Party p) {
  return p == Party::kClient ? "client" : "server";
}

class Channel {
 public:
  explicit Channel(NetworkModel model = NetworkModel{}) : model_(model) {}

  void send(Party from, std::vector<std::uint8_t> msg) {
    auto& q = queue_[static_cast<int>(other(from))];
    charge(from, msg.size());
    q.push_back(std::move(msg));
  }

  // Accounts control traffic (retransmit requests, acks) that the simulated
  // transport exchanges out of band: the bytes, message count and flight
  // pattern are charged exactly as a real message would be, but nothing is
  // enqueued — the in-process peer must never mistake control chatter for a
  // data frame.
  void charge_control(Party from, std::size_t bytes) { charge(from, bytes); }

  // Places a message in the receiver's queue without charging the wire:
  // used by session resume to re-deliver checkpoint-covered frames the peer
  // already holds — those bytes crossed the wire in a previous attempt and
  // paying for them again would double-count the session's traffic.
  void deliver_local(Party from, std::vector<std::uint8_t> msg) {
    queue_[static_cast<int>(other(from))].push_back(std::move(msg));
  }

  // Extra simulated latency (retry backoff, injected delivery delay).
  void add_simulated_delay(double seconds) {
    if (seconds > 0) simulated_seconds_ += seconds;
  }

  std::vector<std::uint8_t> recv(Party to) {
    auto& q = queue_[static_cast<int>(to)];
    if (q.empty()) {
      // An empty queue means the peer never produced the frame this step
      // expects — the wire equivalent of a sequence gap, and retryable: a
      // session-resume handshake replays the missing prefix.
      throw ProtocolError(ProtocolErrorKind::kSequenceGap,
                          std::string("Channel::recv: no pending message for ") +
                              party_name(to));
    }
    auto msg = std::move(q.front());
    q.pop_front();
    return msg;
  }

  bool has_pending(Party to) const {
    return !queue_[static_cast<int>(to)].empty();
  }

  std::uint64_t bytes_sent(Party p) const {
    return bytes_sent_[static_cast<int>(p)];
  }
  std::uint64_t total_bytes() const { return bytes_sent_[0] + bytes_sent_[1]; }
  std::uint64_t messages(Party p) const {
    return messages_[static_cast<int>(p)];
  }
  // Number of direction changes — the paper's "interactions".
  std::uint64_t flights() const { return flights_; }
  std::uint64_t round_trips() const { return (flights_ + 1) / 2; }

  double simulated_seconds() const {
    return simulated_seconds_ + static_cast<double>(flights_) * model_.one_way_delay_s;
  }

  // Snapshot/delta support so each protocol step can report its own cost.
  struct Snapshot {
    std::uint64_t bytes = 0;
    std::uint64_t flights = 0;
    double seconds = 0;
  };

  Snapshot snapshot() const {
    return Snapshot{total_bytes(), flights_, simulated_seconds()};
  }

  Snapshot delta_since(const Snapshot& s) const {
    return Snapshot{total_bytes() - s.bytes, flights_ - s.flights,
                    simulated_seconds() - s.seconds};
  }

  void reset_stats() {
    bytes_sent_[0] = bytes_sent_[1] = 0;
    messages_[0] = messages_[1] = 0;
    flights_ = 0;
    last_direction_ = -1;
    simulated_seconds_ = 0;
  }

  const NetworkModel& model() const { return model_; }

 private:
  void charge(Party from, std::size_t bytes) {
    bytes_sent_[static_cast<int>(from)] += bytes;
    ++messages_[static_cast<int>(from)];
    // A new "flight" starts whenever the transmission direction changes;
    // each flight pays the propagation delay once, all bytes pay bandwidth.
    if (last_direction_ != static_cast<int>(from)) {
      ++flights_;
      last_direction_ = static_cast<int>(from);
    }
    simulated_seconds_ +=
        static_cast<double>(bytes) / model_.bandwidth_bytes_per_s;
  }

  NetworkModel model_;
  std::deque<std::vector<std::uint8_t>> queue_[2];
  std::uint64_t bytes_sent_[2] = {0, 0};
  std::uint64_t messages_[2] = {0, 0};
  std::uint64_t flights_ = 0;
  int last_direction_ = -1;
  double simulated_seconds_ = 0;
};

}  // namespace primer
