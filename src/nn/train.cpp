#include "nn/train.h"

#include <cmath>

#include "nn/thex.h"

namespace primer {

SyntheticTask SyntheticTask::generate(const BertConfig& cfg, std::size_t count,
                                      Rng& rng) {
  SyntheticTask task;
  const std::size_t v = cfg.vocab;
  for (std::size_t s = 0; s < count; ++s) {
    // Pick a class, then draw most tokens from that class's vocabulary
    // third — a clearly learnable "topic classification" signal.
    const std::size_t label = rng.uniform(3);
    std::vector<std::size_t> tokens(cfg.tokens);
    for (auto& t : tokens) {
      if (rng.uniform_real() < 0.75) {
        t = (label * v) / 3 + rng.uniform(v / 3);
      } else {
        t = rng.uniform(v);
      }
    }
    task.inputs.push_back(std::move(tokens));
    task.labels.push_back(label);
  }
  return task;
}

namespace {

// Pooled feature vector: the float model's final first-token hidden state.
std::vector<double> pooled_features(const BertWeightsD& w,
                                    const std::vector<std::size_t>& tokens) {
  // Re-runs the body with an identity classifier to extract hidden(0,:).
  BertWeightsD probe = w;
  probe.config.num_classes = w.config.d_model;
  probe.w_cls = MatD::identity(w.config.d_model);
  probe.b_cls.assign(w.config.d_model, 0.0);
  const FloatBert model(probe);
  return model.forward(tokens);
}

std::vector<double> softmax_vec(const std::vector<double>& z) {
  double m = z[0];
  for (const double v : z) m = std::max(m, v);
  double sum = 0;
  std::vector<double> e(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    e[i] = std::exp(z[i] - m);
    sum += e[i];
  }
  for (auto& v : e) v /= sum;
  return e;
}

}  // namespace

TrainReport train_and_evaluate(BertWeightsD& weights, std::size_t train_count,
                               std::size_t test_count, int epochs, Rng& rng) {
  const auto& cfg = weights.config;
  const auto task = SyntheticTask::generate(cfg, train_count + test_count, rng);

  // Cache features for the training split (the body is frozen).
  std::vector<std::vector<double>> feats(train_count);
  for (std::size_t i = 0; i < train_count; ++i) {
    feats[i] = pooled_features(weights, task.inputs[i]);
  }

  // SGD on the linear head with softmax cross-entropy.
  const std::size_t d = cfg.d_model;
  const std::size_t k = cfg.num_classes;
  MatD wcls(d, k);
  std::vector<double> bcls(k, 0.0);
  const double lr = 0.05;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (std::size_t i = 0; i < train_count; ++i) {
      std::vector<double> z(k, 0.0);
      for (std::size_t c = 0; c < k; ++c) {
        double acc = bcls[c];
        for (std::size_t j = 0; j < d; ++j) acc += feats[i][j] * wcls(j, c);
        z[c] = acc;
      }
      const auto p = softmax_vec(z);
      for (std::size_t c = 0; c < k; ++c) {
        const double g = p[c] - (c == task.labels[i] ? 1.0 : 0.0);
        bcls[c] -= lr * g;
        for (std::size_t j = 0; j < d; ++j) {
          wcls(j, c) -= lr * g * feats[i][j];
        }
      }
    }
  }
  // Clamp the head into the representable fixed-point range.
  for (auto& v : wcls.data()) v = std::clamp(v, -8.0, 8.0);
  weights.w_cls = wcls;
  weights.b_cls = bcls;

  TrainReport report;
  report.test_count = test_count;
  std::size_t train_ok = 0;
  {
    const FloatBert model(weights);
    for (std::size_t i = 0; i < train_count; ++i) {
      train_ok += (model.predict(task.inputs[i]) == task.labels[i]);
    }
  }
  report.train_accuracy =
      static_cast<double>(train_ok) / static_cast<double>(train_count);

  const FloatBert fmodel(weights);
  const auto q = quantize(weights);
  const FixedBert xmodel(q);
  std::size_t f_ok = 0, x_ok = 0, t_ok = 0;
  for (std::size_t i = train_count; i < train_count + test_count; ++i) {
    const auto& in = task.inputs[i];
    const auto label = task.labels[i];
    f_ok += (fmodel.predict(in) == label);
    x_ok += (xmodel.predict(in) == label);
    t_ok += (thex_predict(q, in) == label);
  }
  const auto tc = static_cast<double>(test_count);
  report.float_accuracy = static_cast<double>(f_ok) / tc;
  report.fixed_accuracy = static_cast<double>(x_ok) / tc;
  report.thex_accuracy = static_cast<double>(t_ok) / tc;
  return report;
}

}  // namespace primer
