// Accuracy-experiment substrate.
//
// We cannot train BERT on GLUE on one CPU core, and the GLUE/SQuAD data is
// not available offline, so the accuracy columns of the paper's tables are
// reproduced on a SYNTHETIC classification task (DESIGN.md §2): a frozen
// random Transformer body acts as a feature extractor and a linear
// classification head is trained with softmax cross-entropy SGD — enough to
// get a model whose accuracy is meaningfully above chance, so that the
// degradation introduced by (a) 15-bit fixed point with exact GC
// non-linearities (= Primer) and (b) THE-X's polynomial approximations can
// be measured as accuracy deltas, mirroring the paper's 84.6% vs 77.3%.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/model.h"

namespace primer {

struct SyntheticTask {
  std::vector<std::vector<std::size_t>> inputs;  // token sequences
  std::vector<std::size_t> labels;               // < num_classes

  // Sequences whose label depends on simple token statistics (learnable
  // through random features): class by the balance of low/mid/high tokens.
  static SyntheticTask generate(const BertConfig& cfg, std::size_t count,
                                Rng& rng);
};

struct TrainReport {
  double train_accuracy = 0;
  double float_accuracy = 0;   // float model on held-out set
  double fixed_accuracy = 0;   // FixedBert (Primer arithmetic)
  double thex_accuracy = 0;    // THE-X approximations
  std::size_t test_count = 0;
};

// Trains the classifier head of `weights` (in place) on a synthetic task and
// evaluates float vs fixed vs THE-X accuracy on a held-out split.
TrainReport train_and_evaluate(BertWeightsD& weights, std::size_t train_count,
                               std::size_t test_count, int epochs, Rng& rng);

}  // namespace primer
