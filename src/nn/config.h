// BERT model configurations.
//
// The five paper models follow Table III.  The "nano" configurations are
// reduced-dimension models used for LIVE end-to-end protocol runs (real HE +
// real garbled circuits on one core); the paper-scale models are executed in
// plaintext and costed with the calibrated operation-count model
// (proto/cost_model.h).  DESIGN.md §2 documents this substitution.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/fixed_point.h"

namespace primer {

struct BertConfig {
  std::string name;
  std::size_t blocks = 0;      // N
  std::size_t d_model = 0;     // d_emb
  std::size_t heads = 0;       // H
  std::size_t tokens = 0;      // n (fixed sequence length)
  std::size_t vocab = 30522;   // d_oh, WordPiece vocabulary
  std::size_t d_ff = 0;        // feed-forward width (4 * d_model)
  std::size_t num_classes = 3; // classification head width (MNLI: 3)

  std::size_t head_dim() const { return d_model / heads; }
};

// Paper Table III rows.
BertConfig bert_tiny();
BertConfig bert_small();
BertConfig bert_base();
BertConfig bert_medium();
BertConfig bert_large();
std::vector<BertConfig> bert_zoo();

// Reduced models for live protocol execution.
BertConfig bert_nano();    // 1 block, d=16, 2 heads, 4 tokens, vocab 32
BertConfig bert_micro();   // 2 blocks, d=32, 4 heads, 8 tokens, vocab 64

}  // namespace primer
