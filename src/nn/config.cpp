#include "nn/config.h"

namespace primer {

namespace {

BertConfig make(const std::string& name, std::size_t blocks, std::size_t d,
                std::size_t heads, std::size_t tokens, std::size_t vocab) {
  BertConfig c;
  c.name = name;
  c.blocks = blocks;
  c.d_model = d;
  c.heads = heads;
  c.tokens = tokens;
  c.vocab = vocab;
  c.d_ff = 4 * d;
  return c;
}

}  // namespace

BertConfig bert_tiny() { return make("BERT-tiny", 3, 768, 12, 30, 30522); }
BertConfig bert_small() { return make("BERT-small", 6, 768, 12, 30, 30522); }
BertConfig bert_base() { return make("BERT-base", 12, 768, 12, 30, 30522); }
BertConfig bert_medium() { return make("BERT-medium", 12, 1024, 16, 30, 30522); }
BertConfig bert_large() { return make("BERT-large", 24, 1024, 16, 30, 30522); }

std::vector<BertConfig> bert_zoo() {
  return {bert_tiny(), bert_small(), bert_base(), bert_medium(), bert_large()};
}

BertConfig bert_nano() { return make("BERT-nano", 1, 16, 2, 4, 32); }
BertConfig bert_micro() { return make("BERT-micro", 2, 32, 4, 8, 64); }

}  // namespace primer
