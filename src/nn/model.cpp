#include "nn/model.h"

#include <cmath>
#include <stdexcept>

namespace primer {

// ---------------------------------------------------------------------------
// Weights
// ---------------------------------------------------------------------------

namespace {

MatD random_mat(Rng& rng, std::size_t r, std::size_t c, double scale) {
  MatD m(r, c);
  for (auto& v : m.data()) v = rng.gaussian() * scale;
  return m;
}

std::vector<double> zeros(std::size_t n) { return std::vector<double>(n, 0.0); }
std::vector<double> ones(std::size_t n) { return std::vector<double>(n, 1.0); }

std::vector<std::int64_t> quantize_vec(const std::vector<double>& v,
                                       const FixedPointFormat& fmt) {
  std::vector<std::int64_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = fp_encode(v[i], fmt);
  return out;
}

}  // namespace

BertWeightsD BertWeightsD::random(const BertConfig& config, Rng& rng,
                                  double weight_scale) {
  BertWeightsD w;
  w.config = config;
  const std::size_t d = config.d_model;
  // Xavier-ish scaling keeps activations inside the 15-bit range.
  const double s = weight_scale / std::sqrt(static_cast<double>(d));
  w.we = random_mat(rng, config.vocab, d, weight_scale);
  w.pos = random_mat(rng, config.tokens, d, weight_scale * 0.5);
  const double qk_scale = 1.0 / std::sqrt(static_cast<double>(config.head_dim()));
  for (std::size_t b = 0; b < config.blocks; ++b) {
    BlockWeightsD blk;
    blk.wq = random_mat(rng, d, d, s * qk_scale);  // 1/sqrt(d_h) folded in
    blk.wk = random_mat(rng, d, d, s);
    blk.wv = random_mat(rng, d, d, s);
    blk.wo = random_mat(rng, d, d, s);
    blk.w1 = random_mat(rng, d, config.d_ff, s);
    blk.w2 = random_mat(rng, config.d_ff, d, s);
    blk.b_q = zeros(d);
    blk.b_k = zeros(d);
    blk.b_v = zeros(d);
    blk.b_o = zeros(d);
    blk.b_1 = zeros(config.d_ff);
    blk.b_2 = zeros(d);
    blk.ln1_gamma = ones(d);
    blk.ln1_beta = zeros(d);
    blk.ln2_gamma = ones(d);
    blk.ln2_beta = zeros(d);
    w.blocks.push_back(std::move(blk));
  }
  w.w_cls = random_mat(rng, d, config.num_classes, s * 4);
  w.b_cls = zeros(config.num_classes);
  return w;
}

BertWeightsI quantize(const BertWeightsD& w, const FixedPointFormat& fmt) {
  BertWeightsI q;
  q.config = w.config;
  q.fmt = fmt;
  q.we = to_fixed(w.we, fmt);
  q.pos = to_fixed(w.pos, fmt);
  for (const auto& blk : w.blocks) {
    BlockWeightsI b;
    b.wq = to_fixed(blk.wq, fmt);
    b.wk = to_fixed(blk.wk, fmt);
    b.wv = to_fixed(blk.wv, fmt);
    b.wo = to_fixed(blk.wo, fmt);
    b.w1 = to_fixed(blk.w1, fmt);
    b.w2 = to_fixed(blk.w2, fmt);
    b.b_q = quantize_vec(blk.b_q, fmt);
    b.b_k = quantize_vec(blk.b_k, fmt);
    b.b_v = quantize_vec(blk.b_v, fmt);
    b.b_o = quantize_vec(blk.b_o, fmt);
    b.b_1 = quantize_vec(blk.b_1, fmt);
    b.b_2 = quantize_vec(blk.b_2, fmt);
    b.ln1_gamma = quantize_vec(blk.ln1_gamma, fmt);
    b.ln1_beta = quantize_vec(blk.ln1_beta, fmt);
    b.ln2_gamma = quantize_vec(blk.ln2_gamma, fmt);
    b.ln2_beta = quantize_vec(blk.ln2_beta, fmt);
    q.blocks.push_back(std::move(b));
  }
  q.w_cls = to_fixed(w.w_cls, fmt);
  q.b_cls = quantize_vec(w.b_cls, fmt);
  return q;
}

// ---------------------------------------------------------------------------
// Fixed-point primitives
// ---------------------------------------------------------------------------

MatI fixed_linear_acc(const MatI& x, const MatI& w,
                      const std::vector<std::int64_t>* bias,
                      const FixedPointFormat& fmt) {
  if (x.cols() != w.rows()) {
    throw std::invalid_argument("fixed_linear_acc: dimension mismatch");
  }
  MatI acc(x.rows(), w.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t k = 0; k < x.cols(); ++k) {
      const std::int64_t v = x(i, k);
      if (v == 0) continue;
      for (std::size_t j = 0; j < w.cols(); ++j) acc(i, j) += v * w(k, j);
    }
  }
  if (bias != nullptr) {
    for (std::size_t i = 0; i < acc.rows(); ++i) {
      for (std::size_t j = 0; j < acc.cols(); ++j) {
        acc(i, j) += (*bias)[j] << fmt.frac_bits;
      }
    }
  }
  return acc;
}

MatI fixed_truncate(const MatI& acc, const FixedPointFormat& fmt) {
  MatI out(acc.rows(), acc.cols());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out.data()[i] = fp_truncate(acc.data()[i], fmt);
  }
  return out;
}

std::vector<std::int64_t> fixed_layernorm_row(
    const std::vector<std::int64_t>& x,
    const std::vector<std::int64_t>& gamma,
    const std::vector<std::int64_t>& beta, const FixedPointFormat& fmt) {
  const auto d = static_cast<std::int64_t>(x.size());
  std::int64_t sum = 0;
  for (const auto v : x) sum += v;
  const std::int64_t mean = sum / d;  // truncating division, like the circuit
  std::int64_t var_acc = 0;
  std::vector<std::int64_t> c(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    c[i] = x[i] - mean;
    var_acc += (c[i] * c[i]) >> fmt.frac_bits;
  }
  const std::int64_t var = var_acc / d;
  const std::int64_t rstd = pwl_reference(var, layernorm_rsqrt_spec(), fmt);
  std::vector<std::int64_t> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::int64_t norm = fp_saturate((c[i] * rstd) >> fmt.frac_bits, fmt);
    out[i] = fp_saturate(((norm * gamma[i]) >> fmt.frac_bits) + beta[i], fmt);
  }
  return out;
}

MatI fixed_layernorm(const MatI& x, const std::vector<std::int64_t>& gamma,
                     const std::vector<std::int64_t>& beta,
                     const FixedPointFormat& fmt) {
  MatI out(x.rows(), x.cols());
  std::vector<std::int64_t> row(x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) row[j] = x(i, j);
    const auto normed = fixed_layernorm_row(row, gamma, beta, fmt);
    for (std::size_t j = 0; j < x.cols(); ++j) out(i, j) = normed[j];
  }
  return out;
}

MatI one_hot_input(const std::vector<std::size_t>& tokens,
                   const BertConfig& config, const FixedPointFormat& fmt) {
  if (tokens.size() != config.tokens) {
    throw std::invalid_argument("one_hot_input: wrong token count");
  }
  MatI x(config.tokens, config.vocab);
  const std::int64_t one = fp_encode(1.0, fmt);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] >= config.vocab) {
      throw std::invalid_argument("one_hot_input: token id out of vocab");
    }
    x(i, tokens[i]) = one;
  }
  return x;
}

// ---------------------------------------------------------------------------
// FloatBert
// ---------------------------------------------------------------------------

namespace {

std::vector<double> float_softmax(const std::vector<double>& x) {
  double m = x[0];
  for (const double v : x) m = std::max(m, v);
  double sum = 0;
  std::vector<double> e(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    e[i] = std::exp(x[i] - m);
    sum += e[i];
  }
  for (auto& v : e) v /= sum;
  return e;
}

std::vector<double> float_layernorm(const std::vector<double>& x,
                                    const std::vector<double>& gamma,
                                    const std::vector<double>& beta) {
  const auto d = static_cast<double>(x.size());
  double mean = 0;
  for (const double v : x) mean += v;
  mean /= d;
  double var = 0;
  for (const double v : x) var += (v - mean) * (v - mean);
  var /= d;
  const double rstd = 1.0 / std::sqrt(var + 1e-5);
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = (x[i] - mean) * rstd * gamma[i] + beta[i];
  }
  return out;
}

MatD add_bias(MatD m, const std::vector<double>& b) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) m(i, j) += b[j];
  }
  return m;
}

MatD layernorm_rows(const MatD& x, const std::vector<double>& gamma,
                    const std::vector<double>& beta) {
  MatD out(x.rows(), x.cols());
  std::vector<double> row(x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) row[j] = x(i, j);
    const auto n = float_layernorm(row, gamma, beta);
    for (std::size_t j = 0; j < x.cols(); ++j) out(i, j) = n[j];
  }
  return out;
}

}  // namespace

std::vector<double> FloatBert::forward(
    const std::vector<std::size_t>& tokens) const {
  const auto& cfg = w_.config;
  // Embedding: row lookup == one-hot matmul.
  MatD x(cfg.tokens, cfg.d_model);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    for (std::size_t j = 0; j < cfg.d_model; ++j) {
      x(i, j) = w_.we(tokens[i], j) + w_.pos(i, j);
    }
  }

  const std::size_t dh = cfg.head_dim();
  for (const auto& blk : w_.blocks) {
    const MatD q = add_bias(x * blk.wq, blk.b_q);
    const MatD k = add_bias(x * blk.wk, blk.b_k);
    const MatD v = add_bias(x * blk.wv, blk.b_v);
    MatD attn(cfg.tokens, cfg.d_model);
    for (std::size_t h = 0; h < cfg.heads; ++h) {
      const std::size_t off = h * dh;
      for (std::size_t i = 0; i < cfg.tokens; ++i) {
        std::vector<double> scores(cfg.tokens);
        for (std::size_t j = 0; j < cfg.tokens; ++j) {
          double dot = 0;
          for (std::size_t c = 0; c < dh; ++c) {
            dot += q(i, off + c) * k(j, off + c);
          }
          scores[j] = dot;  // 1/sqrt(dh) already folded into wq
        }
        const auto p = float_softmax(scores);
        for (std::size_t c = 0; c < dh; ++c) {
          double acc = 0;
          for (std::size_t j = 0; j < cfg.tokens; ++j) {
            acc += p[j] * v(j, off + c);
          }
          attn(i, off + c) = acc;
        }
      }
    }
    const MatD proj = add_bias(attn * blk.wo, blk.b_o);
    x = layernorm_rows(x + proj, blk.ln1_gamma, blk.ln1_beta);
    MatD ff = add_bias(x * blk.w1, blk.b_1);
    for (auto& val : ff.data()) val = gelu_double(val);
    const MatD ff2 = add_bias(ff * blk.w2, blk.b_2);
    x = layernorm_rows(x + ff2, blk.ln2_gamma, blk.ln2_beta);
  }

  // Classification head on the first token.
  std::vector<double> logits(cfg.num_classes, 0.0);
  for (std::size_t c = 0; c < cfg.num_classes; ++c) {
    double acc = w_.b_cls[c];
    for (std::size_t j = 0; j < cfg.d_model; ++j) acc += x(0, j) * w_.w_cls(j, c);
    logits[c] = acc;
  }
  return logits;
}

std::size_t FloatBert::predict(const std::vector<std::size_t>& tokens) const {
  const auto logits = forward(tokens);
  std::size_t best = 0;
  for (std::size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) best = i;
  }
  return best;
}

// ---------------------------------------------------------------------------
// FixedBert
// ---------------------------------------------------------------------------

MatI FixedBert::embed(const std::vector<std::size_t>& tokens) const {
  const auto& cfg = w_.config;
  // Row lookup (== X[0] * WE, the protocols pay for the real matmul) plus
  // positional bias, then truncation to the raw format.
  MatI x(cfg.tokens, cfg.d_model);
  const std::int64_t one = fp_encode(1.0, w_.fmt);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    for (std::size_t j = 0; j < cfg.d_model; ++j) {
      const std::int64_t acc =
          one * w_.we(tokens[i], j) + (w_.pos(i, j) << w_.fmt.frac_bits);
      x(i, j) = fp_truncate(acc, w_.fmt);
    }
  }
  return x;
}

MatI FixedBert::encoder_block(const MatI& x, const BlockWeightsI& blk) const {
  const auto& cfg = w_.config;
  const auto& fmt = w_.fmt;
  const std::size_t dh = cfg.head_dim();

  const MatI q = fixed_truncate(fixed_linear_acc(x, blk.wq, &blk.b_q, fmt), fmt);
  const MatI k = fixed_truncate(fixed_linear_acc(x, blk.wk, &blk.b_k, fmt), fmt);
  const MatI v = fixed_truncate(fixed_linear_acc(x, blk.wv, &blk.b_v, fmt), fmt);

  MatI attn(cfg.tokens, cfg.d_model);
  std::vector<std::int64_t> scores(cfg.tokens);
  for (std::size_t h = 0; h < cfg.heads; ++h) {
    const std::size_t off = h * dh;
    for (std::size_t i = 0; i < cfg.tokens; ++i) {
      // Q x K^T accumulation stays untruncated (2*frac bits), exactly as the
      // FHGS shares hold it; the softmax reference applies frac_shift.
      for (std::size_t j = 0; j < cfg.tokens; ++j) {
        std::int64_t dot = 0;
        for (std::size_t c = 0; c < dh; ++c) {
          dot += q(i, off + c) * k(j, off + c);
        }
        scores[j] = dot;
      }
      const auto p = fixed_softmax_reference(
          scores, static_cast<std::size_t>(fmt.frac_bits), fmt);
      for (std::size_t c = 0; c < dh; ++c) {
        std::int64_t acc = 0;
        for (std::size_t j = 0; j < cfg.tokens; ++j) {
          acc += p[j] * v(j, off + c);
        }
        attn(i, off + c) = fp_truncate(acc, fmt);
      }
    }
  }

  const MatI proj =
      fixed_truncate(fixed_linear_acc(attn, blk.wo, &blk.b_o, fmt), fmt);
  MatI res1(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    res1.data()[i] = fp_saturate(x.data()[i] + proj.data()[i], fmt);
  }
  const MatI ln1 = fixed_layernorm(res1, blk.ln1_gamma, blk.ln1_beta, fmt);

  const MatI ff_acc = fixed_linear_acc(ln1, blk.w1, &blk.b_1, fmt);
  MatI ff(ff_acc.rows(), ff_acc.cols());
  for (std::size_t i = 0; i < ff_acc.size(); ++i) {
    ff.data()[i] = activation_reference(
        ff_acc.data()[i], static_cast<std::size_t>(fmt.frac_bits),
        Activation::kGelu, fmt);
  }
  const MatI ff2 =
      fixed_truncate(fixed_linear_acc(ff, blk.w2, &blk.b_2, fmt), fmt);
  MatI res2(ln1.rows(), ln1.cols());
  for (std::size_t i = 0; i < ln1.size(); ++i) {
    res2.data()[i] = fp_saturate(ln1.data()[i] + ff2.data()[i], fmt);
  }
  return fixed_layernorm(res2, blk.ln2_gamma, blk.ln2_beta, fmt);
}

std::vector<std::int64_t> FixedBert::classify(const MatI& hidden) const {
  const auto& cfg = w_.config;
  std::vector<std::int64_t> logits(cfg.num_classes);
  for (std::size_t c = 0; c < cfg.num_classes; ++c) {
    std::int64_t acc = w_.b_cls[c] << w_.fmt.frac_bits;
    for (std::size_t j = 0; j < cfg.d_model; ++j) {
      acc += hidden(0, j) * w_.w_cls(j, c);
    }
    logits[c] = fp_truncate(acc, w_.fmt);
  }
  return logits;
}

std::vector<std::int64_t> FixedBert::forward(
    const std::vector<std::size_t>& tokens) const {
  MatI x = embed(tokens);
  for (const auto& blk : w_.blocks) x = encoder_block(x, blk);
  return classify(x);
}

std::size_t FixedBert::predict(const std::vector<std::size_t>& tokens) const {
  const auto logits = forward(tokens);
  std::size_t best = 0;
  for (std::size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) best = i;
  }
  return best;
}

}  // namespace primer
