#include "nn/thex.h"

namespace primer {

namespace {

// relu(x)/sum(relu(x)) on fixed-point scores (the THE-X softmax surrogate).
std::vector<std::int64_t> relu_softmax(const std::vector<std::int64_t>& x,
                                       std::size_t frac_shift,
                                       const FixedPointFormat& fmt) {
  std::vector<std::int64_t> v(x.size());
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    v[i] = std::max<std::int64_t>(0, fp_saturate(x[i] >> frac_shift, fmt));
    sum += v[i];
  }
  std::vector<std::int64_t> out(x.size());
  if (sum == 0) {
    // Degenerate row: uniform attention.
    const std::int64_t u = fmt.scale() / static_cast<std::int64_t>(x.size());
    for (auto& o : out) o = u;
    return out;
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = (v[i] << fmt.frac_bits) / sum;
  }
  return out;
}

MatI approx_layernorm(const MatI& x, const std::vector<std::int64_t>& gamma,
                      const std::vector<std::int64_t>& beta,
                      std::int64_t rstd_raw, const FixedPointFormat& fmt) {
  MatI out(x.rows(), x.cols());
  const auto d = static_cast<std::int64_t>(x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    std::int64_t sum = 0;
    for (std::size_t j = 0; j < x.cols(); ++j) sum += x(i, j);
    const std::int64_t mean = sum / d;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const std::int64_t c = x(i, j) - mean;
      const std::int64_t norm =
          fp_saturate((c * rstd_raw) >> fmt.frac_bits, fmt);
      out(i, j) =
          fp_saturate(((norm * gamma[j]) >> fmt.frac_bits) + beta[j], fmt);
    }
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> thex_fixed_forward(
    const BertWeightsI& w, const std::vector<std::size_t>& tokens,
    const ThexOptions& opt) {
  const auto& cfg = w.config;
  const auto& fmt = w.fmt;
  const std::size_t dh = cfg.head_dim();
  const auto frac = static_cast<std::size_t>(fmt.frac_bits);
  const std::int64_t rstd_raw = fp_encode(opt.calibrated_rstd, fmt);

  const FixedBert helper(w);
  MatI x = helper.embed(tokens);

  std::vector<std::int64_t> scores(cfg.tokens);
  for (const auto& blk : w.blocks) {
    const MatI q = fixed_truncate(fixed_linear_acc(x, blk.wq, &blk.b_q, fmt), fmt);
    const MatI k = fixed_truncate(fixed_linear_acc(x, blk.wk, &blk.b_k, fmt), fmt);
    const MatI v = fixed_truncate(fixed_linear_acc(x, blk.wv, &blk.b_v, fmt), fmt);

    MatI attn(cfg.tokens, cfg.d_model);
    for (std::size_t h = 0; h < cfg.heads; ++h) {
      const std::size_t off = h * dh;
      for (std::size_t i = 0; i < cfg.tokens; ++i) {
        for (std::size_t j = 0; j < cfg.tokens; ++j) {
          std::int64_t dot = 0;
          for (std::size_t c = 0; c < dh; ++c) dot += q(i, off + c) * k(j, off + c);
          scores[j] = dot;
        }
        const auto p = relu_softmax(scores, frac, fmt);
        for (std::size_t c = 0; c < dh; ++c) {
          std::int64_t acc = 0;
          for (std::size_t j = 0; j < cfg.tokens; ++j) {
            acc += p[j] * v(j, off + c);
          }
          attn(i, off + c) = fp_truncate(acc, fmt);
        }
      }
    }

    const MatI proj =
        fixed_truncate(fixed_linear_acc(attn, blk.wo, &blk.b_o, fmt), fmt);
    MatI res1(x.rows(), x.cols());
    for (std::size_t i = 0; i < x.size(); ++i) {
      res1.data()[i] = fp_saturate(x.data()[i] + proj.data()[i], fmt);
    }
    const MatI ln1 =
        approx_layernorm(res1, blk.ln1_gamma, blk.ln1_beta, rstd_raw, fmt);

    const MatI ff_acc = fixed_linear_acc(ln1, blk.w1, &blk.b_1, fmt);
    MatI ff(ff_acc.rows(), ff_acc.cols());
    for (std::size_t i = 0; i < ff_acc.size(); ++i) {
      // GELU -> ReLU under THE-X.
      ff.data()[i] = activation_reference(ff_acc.data()[i], frac,
                                          Activation::kRelu, fmt);
    }
    const MatI ff2 =
        fixed_truncate(fixed_linear_acc(ff, blk.w2, &blk.b_2, fmt), fmt);
    MatI res2(ln1.rows(), ln1.cols());
    for (std::size_t i = 0; i < ln1.size(); ++i) {
      res2.data()[i] = fp_saturate(ln1.data()[i] + ff2.data()[i], fmt);
    }
    x = approx_layernorm(res2, blk.ln2_gamma, blk.ln2_beta, rstd_raw, fmt);
  }
  return helper.classify(x);
}

std::size_t thex_predict(const BertWeightsI& w,
                         const std::vector<std::size_t>& tokens,
                         const ThexOptions& opt) {
  const auto logits = thex_fixed_forward(w, tokens, opt);
  std::size_t best = 0;
  for (std::size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) best = i;
  }
  return best;
}

}  // namespace primer
