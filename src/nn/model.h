// BERT encoder models: float reference and 15-bit fixed-point reference.
//
// The fixed-point model defines the exact arithmetic the private protocols
// must reproduce: raw values carry 8 fractional bits, matrix products
// accumulate untruncated (the protocols hold these accumulations as secret
// shares mod t) and are truncated/saturated back to 15 bits by the GC stage
// — here mirrored by fp_truncate.  SoftMax/GELU use the same int64 reference
// semantics as the garbled circuits (gc/fixed_circuits.h), so a live
// protocol run must agree with FixedBert bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "gc/fixed_circuits.h"
#include "nn/config.h"

namespace primer {

// ---------------------------------------------------------------------------
// Weights
// ---------------------------------------------------------------------------

struct BlockWeightsD {
  MatD wq, wk, wv, wo;       // d x d (wq pre-scaled by 1/sqrt(head_dim))
  MatD w1, w2;               // d x d_ff, d_ff x d
  std::vector<double> b_q, b_k, b_v, b_o, b_1, b_2;
  std::vector<double> ln1_gamma, ln1_beta, ln2_gamma, ln2_beta;
};

struct BertWeightsD {
  BertConfig config;
  MatD we;                   // vocab x d  (word embedding, delta folded in)
  MatD pos;                  // n x d      (positional bias lambda)
  std::vector<BlockWeightsD> blocks;
  MatD w_cls;                // d x num_classes
  std::vector<double> b_cls;

  // Random initialization (seeded) sized to keep 15-bit fixed point healthy.
  static BertWeightsD random(const BertConfig& config, Rng& rng,
                             double weight_scale = 0.25);
};

struct BlockWeightsI {
  MatI wq, wk, wv, wo, w1, w2;
  std::vector<std::int64_t> b_q, b_k, b_v, b_o, b_1, b_2;
  std::vector<std::int64_t> ln1_gamma, ln1_beta, ln2_gamma, ln2_beta;
};

struct BertWeightsI {
  BertConfig config;
  FixedPointFormat fmt;
  MatI we;
  MatI pos;
  std::vector<BlockWeightsI> blocks;
  MatI w_cls;
  std::vector<std::int64_t> b_cls;
};

BertWeightsI quantize(const BertWeightsD& w,
                      const FixedPointFormat& fmt = kDefaultFixedPoint);

// ---------------------------------------------------------------------------
// Fixed-point primitives shared with the protocols
// ---------------------------------------------------------------------------

// Untruncated linear layer: acc = x * w + (bias << frac); entries carry
// 2*frac fractional bits.  This is exactly the value the protocols hold as
// secret shares before the GC truncation stage.
MatI fixed_linear_acc(const MatI& x, const MatI& w,
                      const std::vector<std::int64_t>* bias,
                      const FixedPointFormat& fmt = kDefaultFixedPoint);

// Truncate a 2*frac accumulation back to the 15-bit raw format.
MatI fixed_truncate(const MatI& acc,
                    const FixedPointFormat& fmt = kDefaultFixedPoint);

// Fixed-point LayerNorm over each row (reference semantics for the GC
// layer-norm circuit): mean/variance via truncating division, 1/sqrt via the
// shared PWL table, then per-element gamma/beta affine.
std::vector<std::int64_t> fixed_layernorm_row(
    const std::vector<std::int64_t>& x,
    const std::vector<std::int64_t>& gamma,
    const std::vector<std::int64_t>& beta,
    const FixedPointFormat& fmt = kDefaultFixedPoint);

MatI fixed_layernorm(const MatI& x, const std::vector<std::int64_t>& gamma,
                     const std::vector<std::int64_t>& beta,
                     const FixedPointFormat& fmt = kDefaultFixedPoint);

// ---------------------------------------------------------------------------
// Models
// ---------------------------------------------------------------------------

class FloatBert {
 public:
  explicit FloatBert(BertWeightsD weights) : w_(std::move(weights)) {}

  // tokens.size() must equal config.tokens; values < config.vocab.
  std::vector<double> forward(const std::vector<std::size_t>& tokens) const;
  std::size_t predict(const std::vector<std::size_t>& tokens) const;

  const BertWeightsD& weights() const { return w_; }
  BertWeightsD& mutable_weights() { return w_; }

 private:
  BertWeightsD w_;
};

class FixedBert {
 public:
  explicit FixedBert(BertWeightsI weights) : w_(std::move(weights)) {}

  std::vector<std::int64_t> forward(
      const std::vector<std::size_t>& tokens) const;
  std::size_t predict(const std::vector<std::size_t>& tokens) const;

  // Embedding output X[1] (raw fixed point) — the protocols start here.
  MatI embed(const std::vector<std::size_t>& tokens) const;
  // One encoder block on raw fixed-point input.
  MatI encoder_block(const MatI& x, const BlockWeightsI& blk) const;
  // Classification head on the final hidden states.
  std::vector<std::int64_t> classify(const MatI& hidden) const;

  const BertWeightsI& weights() const { return w_; }

 private:
  BertWeightsI w_;
};

// Builds a one-hot input matrix X[0] (n x vocab) in raw fixed point — used
// by the protocols, which must pay for the full embedding matmul.
MatI one_hot_input(const std::vector<std::size_t>& tokens,
                   const BertConfig& config,
                   const FixedPointFormat& fmt = kDefaultFixedPoint);

}  // namespace primer
