// THE-X-style approximation model (accuracy baseline).
//
// THE-X [Chen et al., ACL 2022] runs the whole Transformer under FHE, which
// forces polynomial replacements of the non-linearities:
//   softmax(x)  ->  relu(x) / sum(relu(x))      ("ReLU-softmax")
//   GELU(x)     ->  ReLU(x)                      (polynomial-friendly)
//   LayerNorm   ->  affine approximation with a calibrated constant 1/std
//                   instead of the per-row reciprocal square root.
// These substitutions are what costs THE-X the ~7-8 accuracy points the
// paper reports (77.3% vs 84.6% on MNLI-m).  This module provides the
// fixed-point forward pass with those approximations so the accuracy
// experiments can measure the gap on the same weights.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"

namespace primer {

struct ThexOptions {
  // Calibrated constant reciprocal-std used in place of per-row rsqrt.
  double calibrated_rstd = 1.0;
};

std::vector<std::int64_t> thex_fixed_forward(
    const BertWeightsI& w, const std::vector<std::size_t>& tokens,
    const ThexOptions& opt = ThexOptions{});

std::size_t thex_predict(const BertWeightsI& w,
                         const std::vector<std::size_t>& tokens,
                         const ThexOptions& opt = ThexOptions{});

}  // namespace primer
