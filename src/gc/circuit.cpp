#include "gc/circuit.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace primer {

// Byte stride of one wire label in the flattened gate records; mirrors
// sizeof(Label) without pulling garble.h into the circuit layer.  16 bytes
// caps the offset-addressable circuit at 2^28 wires, far above any circuit
// the builder emits.
constexpr std::uint32_t sizeof_label = 16;

const CircuitLayers& Circuit::layers() const {
  if (layers_) return *layers_;
  auto lay = std::make_shared<CircuitLayers>();
  // AND-depth of every wire: inputs at 0, XOR/NOT pass the max of their
  // inputs through, each AND adds one.  Gates are emitted in topological
  // order, so a single forward pass suffices.
  std::vector<std::uint32_t> depth(static_cast<std::size_t>(num_wires), 0);
  lay->and_ordinal.assign(gates.size(), 0);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    std::uint32_t d = depth[static_cast<std::size_t>(g.a)];
    if (g.type != GateType::kNot) {
      d = std::max(d, depth[static_cast<std::size_t>(g.b)]);
    }
    if (g.type == GateType::kAnd) {
      ++d;
      lay->and_ordinal[i] = static_cast<std::uint32_t>(lay->and_count++);
    }
    depth[static_cast<std::size_t>(g.out)] = d;
    if (lay->levels.size() <= d) lay->levels.resize(d + 1);
    auto& level = lay->levels[d];
    // Wire references in the flattened forms are byte offsets into the
    // Label array (index * sizeof(Label)): the kernels then address labels
    // with one load and a base register, no per-access shift/extend.
    const auto off = [](std::int32_t wire) {
      return static_cast<std::uint32_t>(wire) * sizeof_label;
    };
    if (g.type == GateType::kAnd) {
      level.and_gates.push_back(static_cast<std::uint32_t>(i));
      level.and_quads.push_back(off(g.a));
      level.and_quads.push_back(off(g.b));
      level.and_quads.push_back(off(g.out));
      level.and_quads.push_back(lay->and_ordinal[i]);
    } else {
      level.free_gates.push_back(static_cast<std::uint32_t>(i));
      level.free_triples.push_back(off(g.a));
      level.free_triples.push_back(g.type == GateType::kXor ? off(g.b)
                                                            : off(num_wires));
      level.free_triples.push_back(off(g.out));
    }
  }
  // Partition each level's free triples into independence waves: a greedy
  // forward pass cuts a new wave whenever a triple reads an output written
  // earlier in the current wave.  Outputs are unique (the builder never
  // reuses an out wire) and a wire is always written before it is read, so
  // read-after-write within a wave is the only hazard.  XOR trees make
  // waves long in practice; adder sum chains are what cuts them.
  {
    std::unordered_set<std::uint32_t> outs;
    for (auto& level : lay->levels) {
      const auto& t = level.free_triples;
      outs.clear();
      for (std::size_t i = 0; i < t.size(); i += 3) {
        if (outs.count(t[i]) || outs.count(t[i + 1])) {
          level.free_wave_ends.push_back(static_cast<std::uint32_t>(i));
          outs.clear();
        }
        outs.insert(t[i + 2]);
      }
      if (!t.empty()) {
        level.free_wave_ends.push_back(static_cast<std::uint32_t>(t.size()));
      }
    }
  }
  // Streamed-transfer prefix watermarks: after level L, every AND ordinal
  // below the minimum ordinal of any later level is final.
  lay->watermark.assign(lay->levels.size(), 0);
  std::uint32_t frontier = static_cast<std::uint32_t>(lay->and_count);
  for (std::size_t l = lay->levels.size(); l-- > 0;) {
    lay->watermark[l] = frontier;
    for (const auto gi : lay->levels[l].and_gates) {
      frontier = std::min(frontier, lay->and_ordinal[gi]);
    }
    lay->max_level_ands =
        std::max(lay->max_level_ands, lay->levels[l].and_gates.size());
  }
  layers_ = std::move(lay);
  return *layers_;
}

std::vector<bool> eval_circuit(const Circuit& c,
                               const std::vector<bool>& inputs) {
  if (static_cast<std::int32_t>(inputs.size()) != c.num_inputs) {
    throw std::invalid_argument("eval_circuit: wrong input count");
  }
  std::vector<bool> w(static_cast<std::size_t>(c.num_wires), false);
  for (std::size_t i = 0; i < inputs.size(); ++i) w[i] = inputs[i];
  for (const auto& g : c.gates) {
    switch (g.type) {
      case GateType::kXor:
        w[g.out] = w[g.a] ^ w[g.b];
        break;
      case GateType::kAnd:
        w[g.out] = w[g.a] && w[g.b];
        break;
      case GateType::kNot:
        w[g.out] = !w[g.a];
        break;
    }
  }
  std::vector<bool> out(c.outputs.size());
  for (std::size_t i = 0; i < c.outputs.size(); ++i) out[i] = w[c.outputs[i]];
  return out;
}

CircuitBuilder::CircuitBuilder() = default;

std::int32_t CircuitBuilder::add_input() {
  if (!circuit_.gates.empty()) {
    throw std::logic_error("add_input: inputs must precede gates");
  }
  const std::int32_t w = circuit_.num_wires++;
  circuit_.num_inputs = circuit_.num_wires;
  return w;
}

Bus CircuitBuilder::add_input_bus(std::size_t width) {
  Bus bus(width);
  for (auto& w : bus) w = add_input();
  return bus;
}

std::int32_t CircuitBuilder::emit(GateType t, std::int32_t a, std::int32_t b) {
  const std::int32_t out = circuit_.num_wires++;
  circuit_.gates.push_back(Gate{t, a, b, out});
  if (t == GateType::kAnd) ++and_count_;
  return out;
}

std::int32_t CircuitBuilder::zero() {
  if (zero_wire_ < 0) {
    if (circuit_.num_inputs == 0) {
      throw std::logic_error("zero: circuit needs at least one input wire");
    }
    zero_wire_ = emit(GateType::kXor, 0, 0);  // w0 ^ w0 == 0, free gate
  }
  return zero_wire_;
}

std::int32_t CircuitBuilder::one() {
  if (one_wire_ < 0) one_wire_ = emit(GateType::kNot, zero(), -1);
  return one_wire_;
}

Bus CircuitBuilder::constant_bus(std::uint64_t value, std::size_t width) {
  Bus bus(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus[i] = ((value >> i) & 1) ? one() : zero();
  }
  return bus;
}

std::int32_t CircuitBuilder::xor_gate(std::int32_t a, std::int32_t b) {
  if (a == zero_wire_ && zero_wire_ >= 0) return b;
  if (b == zero_wire_ && zero_wire_ >= 0) return a;
  if (a == one_wire_ && one_wire_ >= 0) return not_gate(b);
  if (b == one_wire_ && one_wire_ >= 0) return not_gate(a);
  if (a == b) return zero();
  return emit(GateType::kXor, a, b);
}

std::int32_t CircuitBuilder::and_gate(std::int32_t a, std::int32_t b) {
  if ((a == zero_wire_ || b == zero_wire_) && zero_wire_ >= 0) return zero();
  if (a == one_wire_ && one_wire_ >= 0) return b;
  if (b == one_wire_ && one_wire_ >= 0) return a;
  if (a == b) return a;
  return emit(GateType::kAnd, a, b);
}

std::int32_t CircuitBuilder::not_gate(std::int32_t a) {
  if (a == zero_wire_ && zero_wire_ >= 0) return one();
  if (a == one_wire_ && one_wire_ >= 0) return zero();
  return emit(GateType::kNot, a, -1);
}

std::int32_t CircuitBuilder::or_gate(std::int32_t a, std::int32_t b) {
  // a | b = (a ^ b) ^ (a & b): one AND.
  return xor_gate(xor_gate(a, b), and_gate(a, b));
}

std::int32_t CircuitBuilder::mux_bit(std::int32_t sel, std::int32_t t,
                                     std::int32_t f) {
  // f ^ sel*(t ^ f): one AND.
  return xor_gate(f, and_gate(sel, xor_gate(t, f)));
}

Bus CircuitBuilder::add(const Bus& a, const Bus& b, std::int32_t* carry_out) {
  if (a.size() != b.size()) throw std::invalid_argument("add: width mismatch");
  Bus out(a.size());
  std::int32_t carry = zero();
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Full adder with one AND: s = a^b^c, c' = ((a^c)&(b^c))^c.
    const std::int32_t axc = xor_gate(a[i], carry);
    const std::int32_t bxc = xor_gate(b[i], carry);
    out[i] = xor_gate(axc, b[i]);
    carry = xor_gate(and_gate(axc, bxc), carry);
  }
  if (carry_out != nullptr) *carry_out = carry;
  return out;
}

Bus CircuitBuilder::sub(const Bus& a, const Bus& b, std::int32_t* borrow_out) {
  if (a.size() != b.size()) throw std::invalid_argument("sub: width mismatch");
  // a - b = a + ~b + 1; borrow = NOT carry_out.
  Bus nb(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) nb[i] = not_gate(b[i]);
  Bus out(a.size());
  std::int32_t carry = one();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::int32_t axc = xor_gate(a[i], carry);
    const std::int32_t bxc = xor_gate(nb[i], carry);
    out[i] = xor_gate(axc, nb[i]);
    carry = xor_gate(and_gate(axc, bxc), carry);
  }
  if (borrow_out != nullptr) *borrow_out = not_gate(carry);
  return out;
}

Bus CircuitBuilder::negate(const Bus& a) {
  Bus z(a.size(), zero());
  return sub(z, a);
}

Bus CircuitBuilder::add_const(const Bus& a, std::uint64_t c,
                              std::int32_t* carry_out) {
  return add(a, constant_bus(c, a.size()), carry_out);
}

Bus CircuitBuilder::sub_const(const Bus& a, std::uint64_t c,
                              std::int32_t* borrow_out) {
  return sub(a, constant_bus(c, a.size()), borrow_out);
}

std::int32_t CircuitBuilder::lt(const Bus& a, const Bus& b) {
  std::int32_t borrow = 0;
  sub(a, b, &borrow);
  return borrow;
}

std::int32_t CircuitBuilder::ge(const Bus& a, const Bus& b) {
  return not_gate(lt(a, b));
}

std::int32_t CircuitBuilder::eq(const Bus& a, const Bus& b) {
  if (a.size() != b.size()) throw std::invalid_argument("eq: width mismatch");
  std::int32_t acc = one();
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = and_gate(acc, not_gate(xor_gate(a[i], b[i])));
  }
  return acc;
}

std::int32_t CircuitBuilder::ge_const(const Bus& a, std::uint64_t c) {
  std::int32_t borrow = 0;
  sub_const(a, c, &borrow);
  return not_gate(borrow);
}

Bus CircuitBuilder::mux(std::int32_t sel, const Bus& t, const Bus& f) {
  if (t.size() != f.size()) throw std::invalid_argument("mux: width mismatch");
  Bus out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) out[i] = mux_bit(sel, t[i], f[i]);
  return out;
}

Bus CircuitBuilder::mul(const Bus& a, const Bus& b, std::size_t out_width) {
  Bus acc = constant_bus(0, out_width);
  for (std::size_t i = 0; i < b.size() && i < out_width; ++i) {
    // Partial product: (a << i) & b[i], truncated to out_width.
    Bus pp = constant_bus(0, out_width);
    for (std::size_t j = 0; j + i < out_width && j < a.size(); ++j) {
      pp[j + i] = and_gate(a[j], b[i]);
    }
    acc = add(acc, pp);
  }
  return acc;
}

Bus CircuitBuilder::div(const Bus& a, const Bus& b) {
  // Restoring division, MSB-first.  rem accumulates one dividend bit per
  // step; quotient bit = rem >= b.
  const std::size_t w = a.size();
  Bus rem = constant_bus(0, b.size() + 1);
  Bus bext = zero_extend(b, b.size() + 1);
  Bus q(w);
  for (std::size_t step = 0; step < w; ++step) {
    const std::size_t bit = w - 1 - step;
    // rem = (rem << 1) | a[bit]
    Bus shifted(rem.size());
    shifted[0] = a[bit];
    for (std::size_t i = 1; i < rem.size(); ++i) shifted[i] = rem[i - 1];
    std::int32_t borrow = 0;
    Bus diff = sub(shifted, bext, &borrow);
    const std::int32_t qbit = not_gate(borrow);
    q[bit] = qbit;
    rem = mux(qbit, diff, shifted);
  }
  return q;
}

Bus CircuitBuilder::zero_extend(const Bus& a, std::size_t width) {
  Bus out = a;
  while (out.size() < width) out.push_back(zero());
  out.resize(width);
  return out;
}

Bus CircuitBuilder::sign_extend(const Bus& a, std::size_t width) {
  Bus out = a;
  const std::int32_t sign = a.empty() ? zero() : a.back();
  while (out.size() < width) out.push_back(sign);
  out.resize(width);
  return out;
}

Bus CircuitBuilder::truncate_bus(const Bus& a, std::size_t width) {
  Bus out = a;
  out.resize(width);
  return out;
}

Bus CircuitBuilder::asr(const Bus& a, std::size_t shift) {
  Bus out(a.size());
  const std::int32_t sign = a.empty() ? zero() : a.back();
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = (i + shift < a.size()) ? a[i + shift] : sign;
  }
  return out;
}

Bus CircuitBuilder::add_mod(const Bus& a, const Bus& b, std::uint64_t p) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("add_mod: width mismatch");
  }
  // Work one bit wider so a+b (< 2p < 2^{w+1}) never wraps.
  const std::size_t w = a.size() + 1;
  Bus s = add(zero_extend(a, w), zero_extend(b, w));
  std::int32_t borrow = 0;
  Bus d = sub_const(s, p, &borrow);
  // borrow == 1 means s < p: keep s, else keep s - p.
  return truncate_bus(mux(borrow, s, d), a.size());
}

Bus CircuitBuilder::sub_mod(const Bus& a, const Bus& b, std::uint64_t p) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("sub_mod: width mismatch");
  }
  const std::size_t w = a.size() + 1;
  std::int32_t borrow = 0;
  Bus d = sub(zero_extend(a, w), zero_extend(b, w), &borrow);
  Bus fixed = add_const(d, p);
  return truncate_bus(mux(borrow, fixed, d), a.size());
}

void CircuitBuilder::set_outputs(const Bus& bus) {
  circuit_.outputs.assign(bus.begin(), bus.end());
}

void CircuitBuilder::append_outputs(const Bus& bus) {
  circuit_.outputs.insert(circuit_.outputs.end(), bus.begin(), bus.end());
}

Circuit CircuitBuilder::build() { return circuit_; }

}  // namespace primer
