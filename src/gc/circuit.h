// Boolean circuit representation and builder.
//
// Circuits use only XOR / AND / NOT so that free-XOR + half-gates garbling
// applies: XOR and NOT cost nothing, each AND costs two 128-bit ciphertexts
// in the garbled table.  The builder provides the arithmetic blocks the
// Primer protocols need — ripple adders, comparators, multiplexers,
// multipliers, dividers, and the modular-reduction adder the paper describes
// ("a modular operation circuit is implemented by an adder and a
// multiplexer").
//
// Bit buses are little-endian: bus[0] is the least significant bit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace primer {

enum class GateType : std::uint8_t { kXor, kAnd, kNot };

struct Gate {
  GateType type;
  std::int32_t a = -1;
  std::int32_t b = -1;  // unused for NOT
  std::int32_t out = -1;
};

// One dependency level of a circuit.  Every AND gate in a level depends
// only on wires produced by strictly earlier levels, so a level's AND
// gates can be garbled/evaluated in any order — batched through the AES
// pipeline and fanned across the thread pool.  Free gates (XOR/NOT) at a
// level may consume that level's AND outputs and each other, so they stay
// in original emission order (which is topological).
struct CircuitLevel {
  std::vector<std::uint32_t> and_gates;   // gate indices, emission order
  std::vector<std::uint32_t> free_gates;  // XOR/NOT gate indices, emission order
  // The AND gates flattened to (a, b, out, ordinal) quads in the same
  // order: one contiguous 16-byte record per gate for the garble/eval
  // kernels, replacing two dependent indirect loads (gate index -> Gate
  // struct, gate index -> ordinal) with one streaming read.  a/b/out are
  // byte offsets into the label array (wire index * sizeof(Label));
  // ordinal is the gate's raw serial AND ordinal.
  std::vector<std::uint32_t> and_quads;
  // The free gates flattened to (a, b, out) label byte-offset triples in
  // the same order, for the branchless hot loop `w[out] = w[a] ^ w[b]`.
  // NOT gates are encoded as XOR against the reserved delta wire (index
  // num_wires), which the garbler seeds with R and the evaluator with
  // zero — the same label algebra as the explicit kNot cases, without the
  // per-gate Gate-struct load and type branch.
  std::vector<std::uint32_t> free_triples;
  // Independence waves over free_triples: end offsets (in u32 entries,
  // multiples of 3) of maximal prefixes in which no triple reads another's
  // output.  Triples within a wave can execute in any order — the sweep
  // hoists all of a group's loads above its stores, which the plain
  // emission order forbids (consecutive triples may chain, e.g. the sum
  // bits of a ripple adder XOR through each other).  Waves execute in
  // order; the last entry equals free_triples.size().
  std::vector<std::uint32_t> free_wave_ends;
};

struct CircuitLayers {
  std::vector<CircuitLevel> levels;
  // Serial AND ordinal of every gate (0 for XOR/NOT): position of the gate
  // among AND gates in emission order.  This fixes each AND gate's tweak
  // pair (2*ordinal+1, 2*ordinal+2) and table-row offset 2*ordinal, so any
  // execution order yields bit-identical tables and labels.
  std::vector<std::uint32_t> and_ordinal;
  // After finishing level L, every AND gate with ordinal < watermark[L]
  // has final table rows: the contiguous prefix boundary the streamed
  // table transfer ships as levels complete.
  std::vector<std::uint32_t> watermark;
  std::size_t and_count = 0;
  std::size_t max_level_ands = 0;  // widest level (available parallelism)
};

struct Circuit {
  std::int32_t num_wires = 0;
  std::int32_t num_inputs = 0;  // wires [0, num_inputs) are circuit inputs
  std::vector<Gate> gates;
  std::vector<std::int32_t> outputs;

  std::size_t and_count() const {
    std::size_t c = 0;
    for (const auto& g : gates) c += (g.type == GateType::kAnd);
    return c;
  }

  // Topological AND-depth layering, computed once per circuit and shared
  // by copies.  Not thread-safe on first call: compute before handing the
  // same Circuit object to concurrent users (garble/eval call it up front,
  // outside their parallel regions).
  const CircuitLayers& layers() const;

 private:
  mutable std::shared_ptr<const CircuitLayers> layers_;
};

// Plain (non-garbled) evaluation — the reference semantics every garbling
// test checks against.
std::vector<bool> eval_circuit(const Circuit& c,
                               const std::vector<bool>& inputs);

using Bus = std::vector<std::int32_t>;

class CircuitBuilder {
 public:
  CircuitBuilder();

  // --- wires ---------------------------------------------------------------
  std::int32_t add_input();
  Bus add_input_bus(std::size_t width);
  std::int32_t zero();
  std::int32_t one();
  Bus constant_bus(std::uint64_t value, std::size_t width);

  // --- gates (with constant folding) ----------------------------------------
  std::int32_t xor_gate(std::int32_t a, std::int32_t b);
  std::int32_t and_gate(std::int32_t a, std::int32_t b);
  std::int32_t not_gate(std::int32_t a);
  std::int32_t or_gate(std::int32_t a, std::int32_t b);
  std::int32_t mux_bit(std::int32_t sel, std::int32_t t, std::int32_t f);

  // --- arithmetic ------------------------------------------------------------
  // r = a + b (widths must match); carry_out optionally written.
  Bus add(const Bus& a, const Bus& b, std::int32_t* carry_out = nullptr);
  // r = a - b; borrow_out = 1 iff a < b (unsigned).
  Bus sub(const Bus& a, const Bus& b, std::int32_t* borrow_out = nullptr);
  Bus negate(const Bus& a);  // two's complement
  Bus add_const(const Bus& a, std::uint64_t c, std::int32_t* carry_out = nullptr);
  Bus sub_const(const Bus& a, std::uint64_t c, std::int32_t* borrow_out = nullptr);

  // Unsigned comparisons.
  std::int32_t lt(const Bus& a, const Bus& b);   // a < b
  std::int32_t ge(const Bus& a, const Bus& b);   // a >= b
  std::int32_t eq(const Bus& a, const Bus& b);
  std::int32_t ge_const(const Bus& a, std::uint64_t c);

  // sel ? t : f, element-wise.
  Bus mux(std::int32_t sel, const Bus& t, const Bus& f);

  // Schoolbook multiply, truncated to out_width bits.
  Bus mul(const Bus& a, const Bus& b, std::size_t out_width);

  // Restoring unsigned division: quotient of a / b, width of a.
  Bus div(const Bus& a, const Bus& b);

  // Width manipulation (free).
  Bus zero_extend(const Bus& a, std::size_t width);
  Bus sign_extend(const Bus& a, std::size_t width);
  Bus truncate_bus(const Bus& a, std::size_t width);
  // Arithmetic shift right by constant (fixed-point truncation) — free.
  Bus asr(const Bus& a, std::size_t shift);

  // --- modular arithmetic (shares live in Z_p, p < 2^w) -----------------------
  // (a + b) mod p, both inputs already reduced.
  Bus add_mod(const Bus& a, const Bus& b, std::uint64_t p);
  // (a - b) mod p.
  Bus sub_mod(const Bus& a, const Bus& b, std::uint64_t p);

  // --- finalize ---------------------------------------------------------------
  void set_outputs(const Bus& bus);
  void append_outputs(const Bus& bus);
  Circuit build();

  std::size_t and_count() const { return and_count_; }

 private:
  std::int32_t emit(GateType t, std::int32_t a, std::int32_t b);

  Circuit circuit_;
  std::int32_t zero_wire_ = -1;
  std::int32_t one_wire_ = -1;
  std::size_t and_count_ = 0;
};

}  // namespace primer
