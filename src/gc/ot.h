// Simulated 1-out-of-2 oblivious transfer with IKNP-extension cost
// accounting.
//
// The real JustGarble-style deployments the paper builds on use base OTs
// (Naor–Pinkas) bootstrapped into IKNP OT extension.  Running the actual
// public-key base OTs adds nothing to the reproduction (the quantities the
// paper measures are bytes moved and AES work, both of which the extension
// phase dominates), so this module transfers the chosen labels directly
// in-process while charging the channel the exact traffic IKNP would send:
//
//   one-time setup : 128 base OTs x (2 group elements + 1 seed) ~ 128*96 B
//   per OT         : receiver column 16 B, sender two masked labels 32 B
//   rounds         : 2 per batch (receiver -> sender -> receiver)
//
// This substitution is documented in DESIGN.md §2.
#pragma once

#include <cstdint>
#include <vector>

#include "gc/garble.h"
#include "net/framed_channel.h"

namespace primer {

class SimulatedOt {
 public:
  // Must share the FramedChannel of whatever protocol surrounds it — a
  // second wrapper over the same Channel would fork the sequence spaces.
  explicit SimulatedOt(FramedChannel& ch) : channel_(ch) {}

  // One-time IKNP setup traffic (call once per session).  Messages are
  // immediately drained by the in-process peer; only the accounting remains.
  void setup() {
    if (setup_done_) return;
    channel_.send(Party::kClient, MessageKind::kOtSetup,
                  std::vector<std::uint8_t>(128 * 64));
    channel_.recv_expect(Party::kServer, MessageKind::kOtSetup);
    channel_.send(Party::kServer, MessageKind::kOtSetup,
                  std::vector<std::uint8_t>(128 * 32));
    channel_.recv_expect(Party::kClient, MessageKind::kOtSetup);
    setup_done_ = true;
  }

  // Sender (server) holds label pairs; receiver (client) holds choice bits.
  // Returns the chosen labels to the receiver while charging IKNP traffic.
  std::vector<Label> transfer(const std::vector<Label>& labels0,
                              const std::vector<Label>& labels1,
                              const std::vector<bool>& choices) {
    setup();
    const std::size_t m = choices.size();
    // Receiver's correction matrix columns.
    channel_.send(Party::kClient, MessageKind::kOtReceiverColumns,
                  std::vector<std::uint8_t>(m * 16));
    channel_.recv_expect(Party::kServer, MessageKind::kOtReceiverColumns);
    // Sender's two masked labels per OT.
    channel_.send(Party::kServer, MessageKind::kOtSenderMasked,
                  std::vector<std::uint8_t>(m * 32));
    channel_.recv_expect(Party::kClient, MessageKind::kOtSenderMasked);
    ++batches_;
    ots_ += m;
    std::vector<Label> out(m);
    for (std::size_t i = 0; i < m; ++i) {
      out[i] = choices[i] ? labels1[i] : labels0[i];
    }
    return out;
  }

  std::uint64_t ot_count() const { return ots_; }
  std::uint64_t batch_count() const { return batches_; }

 private:
  FramedChannel& channel_;
  bool setup_done_ = false;
  std::uint64_t ots_ = 0;
  std::uint64_t batches_ = 0;
};

}  // namespace primer
