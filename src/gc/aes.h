// AES-128 block cipher used as the garbling hash (fixed-key AES, the
// JustGarble construction the paper adopts via [2] Bellare et al.).
// Uses AES-NI; the build requires -maes (checked at configure time).
#pragma once

#include <cstdint>
#include <wmmintrin.h>

namespace primer {

// 128-bit block as two 64-bit words (little-endian layout).
struct Block {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  Block() = default;
  Block(std::uint64_t l, std::uint64_t h) : lo(l), hi(h) {}

  Block operator^(const Block& o) const { return {lo ^ o.lo, hi ^ o.hi}; }
  Block& operator^=(const Block& o) {
    lo ^= o.lo;
    hi ^= o.hi;
    return *this;
  }
  bool operator==(const Block& o) const { return lo == o.lo && hi == o.hi; }
  bool lsb() const { return (lo & 1) != 0; }

  __m128i to_m128() const {
    return _mm_set_epi64x(static_cast<long long>(hi),
                          static_cast<long long>(lo));
  }
  static Block from_m128(__m128i v) {
    alignas(16) std::uint64_t w[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(w), v);
    return {w[0], w[1]};
  }
};

// AES-128 with a fixed, publicly known key — a random permutation model
// instantiation.  Garbling security comes from the secrecy of wire labels,
// not the AES key (Bellare–Hoang–Keelveedhi–Rogaway).
class FixedKeyAes {
 public:
  // Blocks interleaved through one AESENC round sequence by the batched
  // entry points.  AESENC is pipelined hardware (~4-cycle latency, 1/cycle
  // throughput), so eight independent blocks cost barely more than one.
  static constexpr std::size_t kBatch = 8;

  FixedKeyAes();
  explicit FixedKeyAes(Block key);

  Block encrypt(Block x) const;

  // Batched encryption: out[i] = encrypt(in[i]), bit-identical to the
  // single-block path.  in and out may alias element-for-element.
  void encrypt_n(const Block* in, Block* out, std::size_t n) const;

  // The MMO-style garbling hash: H(x, tweak) = AES(sigma(x) ^ tweak) ^
  // sigma(x) ^ tweak with sigma(x) = x doubled in GF(2^128).  Collision-
  // resistant under the fixed-key random-permutation heuristic.
  Block hash(Block x, std::uint64_t tweak) const;

  // Batched hash: out[i] = hash(x[i], tweak[i]), bit-identical to the
  // single-block path.  The garble/eval hot loops gather a dependency
  // level's hash operands into contiguous spans and come through here.
  void hash_n(const Block* x, const std::uint64_t* tweak, Block* out,
              std::size_t n) const;

  // Expanded key schedule (11 round keys), for callers that fuse the AES
  // rounds into their own register-resident pipelines (the garble/eval
  // AND-gate kernels) instead of round-tripping operands through memory.
  const __m128i* round_keys() const { return round_keys_; }

 private:
  __m128i round_keys_[11];
};

// In-register GF(2^128) doubling — sigma of the garbling hash — bit-
// identical to the scalar path: each 32-bit lane shifts left by one, the
// three inter-lane carries are patched back in from the sign-extended lane
// masks, and the lane-3 carry becomes the 0x87 reduction in lane 0.  Linear
// over XOR (so sigma(a ^ delta) = sigma(a) ^ sigma(delta)).
inline __m128i gf_double_m128(__m128i v) {
  const __m128i lane_fix = _mm_set_epi32(0x87, 1, 1, 1);
  __m128i carries = _mm_and_si128(_mm_srai_epi32(v, 31), lane_fix);
  carries = _mm_shuffle_epi32(carries, _MM_SHUFFLE(2, 1, 0, 3));
  return _mm_xor_si128(_mm_slli_epi32(v, 1), carries);
}

}  // namespace primer
