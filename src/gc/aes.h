// AES-128 block cipher used as the garbling hash (fixed-key AES, the
// JustGarble construction the paper adopts via [2] Bellare et al.).
// Uses AES-NI; the build requires -maes (checked at configure time).
#pragma once

#include <cstdint>
#include <wmmintrin.h>

namespace primer {

// 128-bit block as two 64-bit words (little-endian layout).
struct Block {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  Block() = default;
  Block(std::uint64_t l, std::uint64_t h) : lo(l), hi(h) {}

  Block operator^(const Block& o) const { return {lo ^ o.lo, hi ^ o.hi}; }
  Block& operator^=(const Block& o) {
    lo ^= o.lo;
    hi ^= o.hi;
    return *this;
  }
  bool operator==(const Block& o) const { return lo == o.lo && hi == o.hi; }
  bool lsb() const { return (lo & 1) != 0; }

  __m128i to_m128() const {
    return _mm_set_epi64x(static_cast<long long>(hi),
                          static_cast<long long>(lo));
  }
  static Block from_m128(__m128i v) {
    alignas(16) std::uint64_t w[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(w), v);
    return {w[0], w[1]};
  }
};

// AES-128 with a fixed, publicly known key — a random permutation model
// instantiation.  Garbling security comes from the secrecy of wire labels,
// not the AES key (Bellare–Hoang–Keelveedhi–Rogaway).
class FixedKeyAes {
 public:
  FixedKeyAes();
  explicit FixedKeyAes(Block key);

  Block encrypt(Block x) const;

  // The MMO-style garbling hash: H(x, tweak) = AES(sigma(x) ^ tweak) ^
  // sigma(x) ^ tweak with sigma(x) = x doubled in GF(2^128).  Collision-
  // resistant under the fixed-key random-permutation heuristic.
  Block hash(Block x, std::uint64_t tweak) const;

 private:
  __m128i round_keys_[11];
};

}  // namespace primer
