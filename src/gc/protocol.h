// Two-party garbled-circuit execution over a Channel, with the offline /
// online split the paper exploits ("the offline phase, e.g. garbling, of GC
// is performed [offline]").
//
// Convention: the SERVER is the garbler, the CLIENT is the evaluator
// (matching Gazelle/Delphi and the paper's Fig. 4, where the server holds
// the model and the client holds the random masks).  Circuit inputs are
// laid out as [garbler inputs | evaluator inputs].
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/timing.h"
#include "gc/garble.h"
#include "gc/ot.h"
#include "net/framed_channel.h"

namespace primer {

enum class RevealTo { kGarbler, kEvaluator, kBoth };

struct GcStats {
  std::size_t and_gates = 0;
  std::size_t table_bytes = 0;
  double garble_seconds = 0;   // offline compute
  double eval_seconds = 0;     // online compute
};

class GcSession {
 public:
  // Takes the session's FramedChannel (not the raw Channel): all parties on
  // one wire must share a single framing layer or the per-direction
  // sequence numbers desynchronize.
  GcSession(FramedChannel& channel, Rng& garbler_rng)
      : channel_(channel), rng_(garbler_rng), ot_(channel) {}

  // Offline phase: garble and ship the tables (and, if the evaluator may
  // learn outputs, the decode bits).
  void offline(const Circuit& circuit, RevealTo reveal);

  // Online phase: exchange input labels, evaluate, reveal.
  // garbler_bits.size() + evaluator_bits.size() must equal num_inputs.
  // Returns the output bits (identical for both parties when kBoth).
  std::vector<bool> online(const std::vector<bool>& garbler_bits,
                           const std::vector<bool>& evaluator_bits);

  const GcStats& stats() const { return stats_; }

 private:
  FramedChannel& channel_;
  Rng& rng_;
  SimulatedOt ot_;
  Circuit circuit_;
  GarbledCircuit gc_;
  GarbledTable client_table_;       // evaluator's copy, parsed off the wire
  std::vector<bool> client_decode_; // evaluator's decode bits (if revealed)
  RevealTo reveal_ = RevealTo::kGarbler;
  GcStats stats_;
  bool offline_done_ = false;
};

// Packs bool bits into bytes (8 per byte) for channel transfer.
std::vector<std::uint8_t> pack_bits(const std::vector<bool>& bits);
std::vector<bool> unpack_bits(const std::vector<std::uint8_t>& bytes,
                              std::size_t count);

// Converts an unsigned value to a little-endian bit bus and back.
std::vector<bool> value_to_bits(std::uint64_t v, std::size_t width);
std::uint64_t bits_to_value(const std::vector<bool>& bits);

}  // namespace primer
