// Two-party garbled-circuit execution over a Channel, with the offline /
// online split the paper exploits ("the offline phase, e.g. garbling, of GC
// is performed [offline]").
//
// Convention: the SERVER is the garbler, the CLIENT is the evaluator
// (matching Gazelle/Delphi and the paper's Fig. 4, where the server holds
// the model and the client holds the random masks).  Circuit inputs are
// laid out as [garbler inputs | evaluator inputs].
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/timing.h"
#include "gc/garble.h"
#include "gc/ot.h"
#include "net/framed_channel.h"

namespace primer {

enum class RevealTo { kGarbler, kEvaluator, kBoth };

// How the garbled tables travel in the offline phase.
//   kMonolithic — one kGcTables frame once garbling finishes (seed behavior).
//   kStreamed   — kGcTableChunk frames ship each dependency level's finalized
//                 table prefix while later levels are still being garbled,
//                 overlapping garbling compute with transfer.
// Default comes from PRIMER_GC_STREAM (unset/1/on -> streamed; 0/off ->
// monolithic).  Both modes deliver bit-identical tables.
enum class TableTransfer { kMonolithic, kStreamed };

struct GcStats {
  std::size_t and_gates = 0;
  std::size_t table_bytes = 0;           // garbled-table payload (either mode)
  std::size_t streamed_table_bytes = 0;  // of which shipped via kGcTableChunk
  std::size_t table_chunks = 0;          // streamed spans shipped
  double garble_seconds = 0;       // offline compute, wall
  double garble_cpu_seconds = 0;   // offline compute, aggregate CPU
  double eval_seconds = 0;         // online compute, wall
  double eval_cpu_seconds = 0;     // online compute, aggregate CPU
};

class GcSession {
 public:
  // Takes the session's FramedChannel (not the raw Channel): all parties on
  // one wire must share a single framing layer or the per-direction
  // sequence numbers desynchronize.
  GcSession(FramedChannel& channel, Rng& garbler_rng)
      : channel_(channel), rng_(garbler_rng), ot_(channel) {}

  // Offline phase: garble and ship the tables (and, if the evaluator may
  // learn outputs, the decode bits).
  void offline(const Circuit& circuit, RevealTo reveal);

  // Online phase: exchange input labels, evaluate, reveal.
  // garbler_bits.size() + evaluator_bits.size() must equal num_inputs.
  // Returns the output bits (identical for both parties when kBoth).
  std::vector<bool> online(const std::vector<bool>& garbler_bits,
                           const std::vector<bool>& evaluator_bits);

  const GcStats& stats() const { return stats_; }

  // Table-transfer mode and the minimum rows per streamed chunk (watermark
  // spans are coalesced up to this size so carry-chain circuits, whose
  // levels finalize a few rows at a time, do not flood the wire with tiny
  // frames).  Both must be set before offline(); tests use them to pin a
  // mode and to force many small chunks through the fault-injected wire.
  void set_table_transfer(TableTransfer t) { transfer_ = t; }
  void set_stream_chunk_rows(std::size_t rows) {
    stream_chunk_rows_ = rows > 0 ? rows : 1;
  }
  TableTransfer table_transfer() const { return transfer_; }

  // Resolves PRIMER_GC_STREAM (unset/1/on -> kStreamed, 0/off ->
  // kMonolithic).
  static TableTransfer default_table_transfer();

  // 4096 rows = 64 KiB per chunk: large enough to amortize framing, small
  // enough that transfer overlaps garbling on every fixed circuit.
  static constexpr std::size_t kDefaultStreamChunkRows = 4096;

 private:
  FramedChannel& channel_;
  Rng& rng_;
  SimulatedOt ot_;
  TableTransfer transfer_ = default_table_transfer();
  std::size_t stream_chunk_rows_ = kDefaultStreamChunkRows;
  Circuit circuit_;
  GarbledCircuit gc_;
  GarbledTable client_table_;       // evaluator's copy, parsed off the wire
  std::vector<bool> client_decode_; // evaluator's decode bits (if revealed)
  RevealTo reveal_ = RevealTo::kGarbler;
  GcStats stats_;
  bool offline_done_ = false;
};

// Packs bool bits into bytes (8 per byte) for channel transfer.
std::vector<std::uint8_t> pack_bits(const std::vector<bool>& bits);
std::vector<bool> unpack_bits(const std::vector<std::uint8_t>& bytes,
                              std::size_t count);

// Converts an unsigned value to a little-endian bit bus and back.
std::vector<bool> value_to_bits(std::uint64_t v, std::size_t width);
std::uint64_t bits_to_value(const std::vector<bool>& bits);

}  // namespace primer
