// VAES span kernels: 512-bit AES rounds over four blocks per instruction.
//
// The garbler needs exactly four hashes per AND gate (H(A0), H(A1) at
// tweak j0; H(B0), H(B1) at j1), so one zmm register holds one whole
// gate and each round is a single vaesenc.  The evaluator needs two, so
// one zmm holds two gates.  sigma and the MMO feed-forward act per
// 128-bit lane with the same algebra as the SSE tier, and sigma's
// XOR-linearity turns the A1/B1 lanes into lane XORs with sigma(R) —
// tables and labels stay bit-identical to the scalar reference.
//
// The AES rounds themselves run close to the vaesenc throughput floor, so
// the kernels are shaped to keep the surrounding work off the shuffle
// port, which otherwise becomes the bottleneck:
//   - hash inputs are assembled with (masked) broadcast-loads straight
//     from the wire array — load-port uops, not insert/shuffle chains;
//   - the pa/pb/sa/sb conditionals AND with a 2-entry all-zero/all-one
//     mask table instead of sign-broadcasting a GPR per gate;
//   - six blocks stay in flight per round loop (vaesenc has ~5-cycle
//     latency), with no per-gate spill arrays.
//
// This TU is compiled with -mvaes -mavx512f -mavx512dq when the toolchain
// has them (see CMakeLists.txt); otherwise the accessors return nullptr
// and dispatch stays on the sse tier.  Runtime cpuid gating lives in
// garble.cpp.
#include "gc/garble_kernels.h"

#if defined(__VAES__) && defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace primer {

namespace {

// Label access by byte offset (see CircuitLevel::and_quads): one load with
// a base register instead of a zero-extend + shift + add per wire touch.
inline const Label* label_at(const Label* base, std::uint32_t off) {
  return reinterpret_cast<const Label*>(
      reinterpret_cast<const char*>(base) + off);
}
inline Label* label_at(Label* base, std::uint32_t off) {
  return reinterpret_cast<Label*>(reinterpret_cast<char*>(base) + off);
}

inline __m128i load_label(const Label* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

// All-zero / all-one AND mask from a label's point-and-permute bit
// (bit 0), derived in-register — no scalar detour, no table load.
inline __m128i permute_mask(__m128i label) {
  const __m128i b = _mm_shuffle_epi32(label, 0x00);
  return _mm_srai_epi32(_mm_slli_epi32(b, 31), 31);
}

// permute_mask for four labels at once, one per 128-bit lane.
inline __m512i permute_mask_x4(__m512i labels) {
  const __m512i b =
      _mm512_shuffle_epi32(labels, static_cast<_MM_PERM_ENUM>(0x00));
  return _mm512_srai_epi32(_mm512_slli_epi32(b, 31), 31);
}

// [l0, l1, l2, l3] from four scattered labels: two independent
// masked-broadcast-load chains of depth two, merged with one OR — load-port
// uops, shallow dependency tree.
inline __m512i gather4(const Label* w, std::uint32_t o0, std::uint32_t o1,
                       std::uint32_t o2, std::uint32_t o3) {
  __m512i lo = _mm512_maskz_broadcast_i32x4(0x000F, load_label(label_at(w, o0)));
  lo = _mm512_mask_broadcast_i32x4(lo, 0x00F0, load_label(label_at(w, o1)));
  __m512i hi = _mm512_maskz_broadcast_i32x4(0x0F00, load_label(label_at(w, o2)));
  hi = _mm512_mask_broadcast_i32x4(hi, 0xF000, load_label(label_at(w, o3)));
  return _mm512_or_si512(lo, hi);
}

// Per-128-bit-lane sigma, four blocks at a time; same lane algebra as
// gf_double_m128 (aes.h), so bit-identical per block.
inline __m512i gf_double_x4(__m512i v) {
  const __m512i lane_fix =
      _mm512_broadcast_i32x4(_mm_set_epi32(0x87, 1, 1, 1));
  __m512i carries = _mm512_and_si512(_mm512_srai_epi32(v, 31), lane_fix);
  carries = _mm512_shuffle_epi32(
      carries, static_cast<_MM_PERM_ENUM>(_MM_SHUFFLE(2, 1, 0, 3)));
  return _mm512_xor_si512(_mm512_slli_epi32(v, 1), carries);
}

// G gates in flight, one zmm per gate with lanes
//   [sigma(A0)^j0, sigma(A0)^j0^sigma(R), sigma(B0)^j1, sigma(B0)^j1^sigma(R)]
// — the four half-gates hash inputs, one vaesenc per round for all four.
// d512 carries [0, sigma(R), 0, sigma(R)].
// always_inline: with several batch-width call sites per span driver, the
// inliner otherwise outlines the kernels, and a per-batch call (all vector
// registers caller-saved, constants re-materialized) halves throughput.
template <int G>
[[gnu::always_inline]] inline void garble_gates(const __m512i* rk,
                                                const std::uint32_t* quads,
                         __m128i vdelta, __m512i d512, Label* w0,
                         Label* rows) {
  __m512i s[G], v[G];
  for (int k = 0; k < G; ++k) {
    const std::uint32_t* q = quads + 4 * k;
    // [A0, A0, B0, B0] via broadcast-load + masked broadcast-load.
    __m512i x = _mm512_broadcast_i32x4(load_label(label_at(w0, q[0])));
    x = _mm512_mask_broadcast_i32x4(x, 0xFF00, load_label(label_at(w0, q[1])));
    // Tweaks [j0, j0, j0+1, j0+1] (j0 = 2*ordinal+1) in the low qword of
    // each lane, built from a broadcast-load of the ordinal dword straight
    // out of the quad record — load-port work, not a GPR->zmm broadcast:
    // dwords {0,4,8,12} get 2*ordinal, the step supplies +1/+1/+2/+2.
    const __m512i ordx2 =
        _mm512_maskz_slli_epi32(0x1111, _mm512_set1_epi32(static_cast<int>(q[3])), 1);
    const __m512i step = _mm512_set_epi64(0, 2, 0, 2, 0, 1, 0, 1);
    const __m512i tw = _mm512_add_epi64(ordx2, step);
    s[k] = _mm512_xor_si512(_mm512_xor_si512(gf_double_x4(x), tw), d512);
  }
  for (int k = 0; k < G; ++k) v[k] = _mm512_xor_si512(s[k], rk[0]);
  for (int r = 1; r < 10; ++r) {
    for (int k = 0; k < G; ++k) v[k] = _mm512_aesenc_epi128(v[k], rk[r]);
  }
  for (int k = 0; k < G; ++k) {
    v[k] = _mm512_xor_si512(_mm512_aesenclast_epi128(v[k], rk[10]), s[k]);
  }
  // Combine, four gates at a time: an eight-shuffle 4x4 lane transpose
  // turns per-gate [h0..h3] into per-hash [g0..g3] vectors, and the whole
  // half-gates algebra runs 4-wide — replacing twelve lane extracts and
  // ~80 xmm uops per four gates with zmm ops.  Each gate's (tg, te) rows
  // pair is contiguous, so two qword interleaves give one 256-bit store
  // per gate.  Input labels reload from L1 (cheaper than keeping G copies
  // live across the round loop); same-level gates never write each
  // other's inputs, so the reload sees the prologue's values.
  const __m512i dfull = _mm512_broadcast_i32x4(vdelta);
  int k = 0;
  for (; k + 4 <= G; k += 4) {
    const __m512i t0 = _mm512_shuffle_i64x2(v[k + 0], v[k + 1], 0x44);
    const __m512i t1 = _mm512_shuffle_i64x2(v[k + 0], v[k + 1], 0xEE);
    const __m512i t2 = _mm512_shuffle_i64x2(v[k + 2], v[k + 3], 0x44);
    const __m512i t3 = _mm512_shuffle_i64x2(v[k + 2], v[k + 3], 0xEE);
    const __m512i h0 = _mm512_shuffle_i64x2(t0, t2, 0x88);
    const __m512i h1 = _mm512_shuffle_i64x2(t0, t2, 0xDD);
    const __m512i h2 = _mm512_shuffle_i64x2(t1, t3, 0x88);
    const __m512i h3 = _mm512_shuffle_i64x2(t1, t3, 0xDD);
    const std::uint32_t* q0 = quads + 4 * k;
    const std::uint32_t* q1 = q0 + 4;
    const std::uint32_t* q2 = q0 + 8;
    const std::uint32_t* q3 = q0 + 12;
    const __m512i va = gather4(w0, q0[0], q1[0], q2[0], q3[0]);
    const __m512i pa = permute_mask_x4(va);
    const __m512i pb =
        permute_mask_x4(gather4(w0, q0[1], q1[1], q2[1], q3[1]));
    __m512i tg = _mm512_xor_si512(h0, h1);
    tg = _mm512_xor_si512(tg, _mm512_and_si512(pb, dfull));
    const __m512i wg = _mm512_xor_si512(h0, _mm512_and_si512(pa, tg));
    const __m512i hb = _mm512_xor_si512(h2, h3);
    const __m512i te = _mm512_xor_si512(hb, va);
    const __m512i we = _mm512_xor_si512(h2, _mm512_and_si512(pb, hb));
    const __m512i out = _mm512_xor_si512(wg, we);
    // [tg0, te0, tg1, te1] / [tg2, te2, tg3, te3]
    const __m512i idx01 = _mm512_set_epi64(11, 10, 3, 2, 9, 8, 1, 0);
    const __m512i idx23 = _mm512_set_epi64(15, 14, 7, 6, 13, 12, 5, 4);
    const __m512i r01 = _mm512_permutex2var_epi64(tg, idx01, te);
    const __m512i r23 = _mm512_permutex2var_epi64(tg, idx23, te);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(rows + 2 * std::size_t{q0[3]}),
                        _mm512_castsi512_si256(r01));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(rows + 2 * std::size_t{q1[3]}),
                        _mm512_extracti64x4_epi64(r01, 1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(rows + 2 * std::size_t{q2[3]}),
                        _mm512_castsi512_si256(r23));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(rows + 2 * std::size_t{q3[3]}),
                        _mm512_extracti64x4_epi64(r23, 1));
    *label_at(w0, q0[2]) = Block::from_m128(_mm512_castsi512_si128(out));
    *label_at(w0, q1[2]) =
        Block::from_m128(_mm512_extracti64x2_epi64(out, 1));
    *label_at(w0, q2[2]) =
        Block::from_m128(_mm512_extracti64x2_epi64(out, 2));
    *label_at(w0, q3[2]) =
        Block::from_m128(_mm512_extracti64x2_epi64(out, 3));
  }
  for (; k < G; ++k) {
    const std::uint32_t* q = quads + 4 * k;
    const __m128i h0 = _mm512_castsi512_si128(v[k]);
    const __m128i h1 = _mm512_extracti64x2_epi64(v[k], 1);
    const __m128i h2 = _mm512_extracti64x2_epi64(v[k], 2);
    const __m128i h3 = _mm512_extracti64x2_epi64(v[k], 3);
    const __m128i va = load_label(label_at(w0, q[0]));
    const __m128i pa = permute_mask(va);
    const __m128i pb = permute_mask(load_label(label_at(w0, q[1])));
    __m128i tg = _mm_xor_si128(h0, h1);
    tg = _mm_xor_si128(tg, _mm_and_si128(pb, vdelta));
    const __m128i wg = _mm_xor_si128(h0, _mm_and_si128(pa, tg));
    const __m128i hb = _mm_xor_si128(h2, h3);
    const __m128i te = _mm_xor_si128(hb, va);
    const __m128i we = _mm_xor_si128(h2, _mm_and_si128(pb, hb));
    const std::size_t row = 2 * std::size_t{q[3]};
    rows[row] = Block::from_m128(tg);
    rows[row + 1] = Block::from_m128(te);
    *label_at(w0, q[2]) = Block::from_m128(_mm_xor_si128(wg, we));
  }
}

// P gate pairs in flight, one zmm per pair with lanes
//   [sigma(a)^j0, sigma(b)^j1] for each gate of the pair.
template <int P>
[[gnu::always_inline]] inline void eval_pairs(const __m512i* rk,
                                              const std::uint32_t* quads,
                       const Label* rows, Label* w) {
  __m512i s[P], v[P];
  for (int p = 0; p < P; ++p) {
    const std::uint32_t* q0 = quads + 8 * p;
    const std::uint32_t* q1 = q0 + 4;
    // [a0, b0, a1, b1]: two independent ymm builds merged once — shallower
    // dependency chain than four merge-masked broadcasts (measured faster
    // than the gather4 masked-broadcast form here).
    const __m256i half0 = _mm256_set_m128i(load_label(label_at(w, q0[1])),
                                           load_label(label_at(w, q0[0])));
    const __m256i half1 = _mm256_set_m128i(load_label(label_at(w, q1[1])),
                                           load_label(label_at(w, q1[0])));
    const __m512i x =
        _mm512_inserti64x4(_mm512_castsi256_si512(half0), half1, 1);
    // Tweaks [j0, j0+1, j1, j1+1] per lane low qword (j = 2*ordinal+1),
    // from broadcast-loads of the two ordinal dwords blended per half —
    // load-port + blend, no GPR->zmm broadcasts.
    const __m512i ord01 = _mm512_mask_blend_epi32(
        0xFF00, _mm512_set1_epi32(static_cast<int>(q0[3])),
        _mm512_set1_epi32(static_cast<int>(q1[3])));
    const __m512i ordx2 = _mm512_maskz_slli_epi32(0x1111, ord01, 1);
    const __m512i step = _mm512_set_epi64(0, 2, 0, 1, 0, 2, 0, 1);
    const __m512i twv = _mm512_add_epi64(ordx2, step);
    s[p] = _mm512_xor_si512(gf_double_x4(x), twv);
  }
  for (int p = 0; p < P; ++p) v[p] = _mm512_xor_si512(s[p], rk[0]);
  for (int r = 1; r < 10; ++r) {
    for (int p = 0; p < P; ++p) v[p] = _mm512_aesenc_epi128(v[p], rk[r]);
  }
  for (int p = 0; p < P; ++p) {
    v[p] = _mm512_xor_si512(_mm512_aesenclast_epi128(v[p], rk[10]), s[p]);
  }
  // Combine, two pairs (four gates) at a time: two lane shuffles split the
  // hash vectors into per-hash [g0..g3] form, the row pairs [tg, te] load
  // as contiguous 256-bit records and separate with two qword permutes,
  // and the evaluator algebra runs 4-wide.
  int p = 0;
  for (; p + 2 <= P; p += 2) {
    const __m512i ha = _mm512_shuffle_i64x2(v[p], v[p + 1], 0x88);
    const __m512i hb = _mm512_shuffle_i64x2(v[p], v[p + 1], 0xDD);
    const std::uint32_t* q0 = quads + 8 * p;
    const std::uint32_t* q1 = q0 + 4;
    const std::uint32_t* q2 = q0 + 8;
    const std::uint32_t* q3 = q0 + 12;
    const __m512i va = gather4(w, q0[0], q1[0], q2[0], q3[0]);
    const __m512i sa = permute_mask_x4(va);
    const __m512i sb = permute_mask_x4(gather4(w, q0[1], q1[1], q2[1], q3[1]));
    __m512i rA = _mm512_maskz_broadcast_i64x4(
        0x0F, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                  rows + 2 * std::size_t{q0[3]})));
    rA = _mm512_mask_broadcast_i64x4(
        rA, 0xF0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                      rows + 2 * std::size_t{q1[3]})));
    __m512i rB = _mm512_maskz_broadcast_i64x4(
        0x0F, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                  rows + 2 * std::size_t{q2[3]})));
    rB = _mm512_mask_broadcast_i64x4(
        rB, 0xF0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                      rows + 2 * std::size_t{q3[3]})));
    const __m512i idx_tg = _mm512_set_epi64(13, 12, 9, 8, 5, 4, 1, 0);
    const __m512i idx_te = _mm512_set_epi64(15, 14, 11, 10, 7, 6, 3, 2);
    const __m512i tg4 = _mm512_permutex2var_epi64(rA, idx_tg, rB);
    const __m512i te4 = _mm512_permutex2var_epi64(rA, idx_te, rB);
    const __m512i wg = _mm512_xor_si512(ha, _mm512_and_si512(sa, tg4));
    const __m512i we = _mm512_xor_si512(
        hb, _mm512_and_si512(sb, _mm512_xor_si512(te4, va)));
    const __m512i out = _mm512_xor_si512(wg, we);
    *label_at(w, q0[2]) = Block::from_m128(_mm512_castsi512_si128(out));
    *label_at(w, q1[2]) = Block::from_m128(_mm512_extracti64x2_epi64(out, 1));
    *label_at(w, q2[2]) = Block::from_m128(_mm512_extracti64x2_epi64(out, 2));
    *label_at(w, q3[2]) = Block::from_m128(_mm512_extracti64x2_epi64(out, 3));
  }
  for (; p < P; ++p) {
    const __m128i h[4] = {_mm512_castsi512_si128(v[p]),
                          _mm512_extracti64x2_epi64(v[p], 1),
                          _mm512_extracti64x2_epi64(v[p], 2),
                          _mm512_extracti64x2_epi64(v[p], 3)};
    for (int i = 0; i < 2; ++i) {
      const std::uint32_t* q = quads + 8 * p + 4 * i;
      const std::size_t row = 2 * std::size_t{q[3]};
      const __m128i va = load_label(label_at(w, q[0]));
      const __m128i sa = permute_mask(va);
      const __m128i sb = permute_mask(load_label(label_at(w, q[1])));
      const __m128i wg = _mm_xor_si128(
          h[2 * i], _mm_and_si128(sa, rows[row].to_m128()));
      const __m128i we = _mm_xor_si128(
          h[2 * i + 1],
          _mm_and_si128(sb, _mm_xor_si128(rows[row + 1].to_m128(), va)));
      *label_at(w, q[2]) = Block::from_m128(_mm_xor_si128(wg, we));
    }
  }
}

// Trailing odd gate: both hashes in the low half, high half a duplicate
// whose outputs are discarded.
inline void eval_gate_tail(const __m512i* rk, const std::uint32_t* q,
                           const Label* rows, Label* w) {
  const Label a = *label_at(w, q[0]);
  const Label b = *label_at(w, q[1]);
  const long long j0 = static_cast<long long>(2 * std::uint64_t{q[3]} + 1);
  const __m128i va = a.to_m128();
  __m512i x = _mm512_castsi256_si512(_mm256_set_m128i(b.to_m128(), va));
  x = _mm512_shuffle_i64x2(x, x, 0x44);  // [a, b, a, b]
  const __m512i twv = _mm512_set_epi64(0, j0 + 1, 0, j0, 0, j0 + 1, 0, j0);
  const __m512i s = _mm512_xor_si512(gf_double_x4(x), twv);
  __m512i v = _mm512_xor_si512(s, rk[0]);
  for (int r = 1; r < 10; ++r) v = _mm512_aesenc_epi128(v, rk[r]);
  v = _mm512_xor_si512(_mm512_aesenclast_epi128(v, rk[10]), s);
  const __m128i sa = permute_mask(va);
  const __m128i sb = permute_mask(b.to_m128());
  const std::size_t row = 2 * std::size_t{q[3]};
  const __m128i wg = _mm_xor_si128(
      _mm512_castsi512_si128(v), _mm_and_si128(sa, rows[row].to_m128()));
  const __m128i we = _mm_xor_si128(
      _mm512_extracti64x2_epi64(v, 1),
      _mm_and_si128(sb, _mm_xor_si128(rows[row + 1].to_m128(), va)));
  *label_at(w, q[2]) = Block::from_m128(_mm_xor_si128(wg, we));
}

// Broadcasted round keys, cached per thread: the span kernels run once per
// dependency level (thousands of calls per garble on deep circuits), and
// the schedule comes from the process-lifetime garbling_hash() singleton,
// so re-broadcasting 11 zmm keys per call is pure waste.  The cache keys on
// the schedule's address and rebuilds on mismatch.
const __m512i* broadcast_round_keys(const FixedKeyAes& aes) {
  // Trivially-constructible on purpose: an NSDMI would make the
  // thread_local dynamically initialized and put a guard check on every
  // span call.  Zero-init gives src == nullptr for free.
  thread_local struct {
    const FixedKeyAes* src;
    __m512i rk[11];
  } cache;
  if (cache.src != &aes) {
    const __m128i* rk128 = aes.round_keys();
    for (int i = 0; i < 11; ++i) cache.rk[i] = _mm512_broadcast_i32x4(rk128[i]);
    cache.src = &aes;
  }
  return cache.rk;
}

void garble_and_span_vaes(const FixedKeyAes& aes, const std::uint32_t* quads,
                          std::size_t n, Label delta, Label* w0, Label* rows) {
  const __m512i* rk = broadcast_round_keys(aes);
  const __m128i vdelta = delta.to_m128();
  const __m128i sdelta = gf_double_m128(vdelta);
  const __m512i d512 = _mm512_inserti64x2(
      _mm512_inserti64x2(_mm512_setzero_si512(), sdelta, 1), sdelta, 3);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    garble_gates<8>(rk, quads + 4 * i, vdelta, d512, w0, rows);
  }
  if (i + 4 <= n) {
    garble_gates<4>(rk, quads + 4 * i, vdelta, d512, w0, rows);
    i += 4;
  }
  if (i == n) return;
  // Tail: gates are idempotent (outputs are a pure function of inputs,
  // delta, and ordinal) and a span runs on one thread, so when the span is
  // long enough we re-run one batch flush against the end instead of
  // draining the remainder through narrow low-ILP batches.  The batch is
  // the smallest tier that covers the remainder — narrow levels are the
  // common case in deep circuits, and a fixed-size flush would redo most
  // of a batch to pick up one gate.
  const std::size_t r = n - i;
  if (r == 1) {
    garble_gates<1>(rk, quads + 4 * (n - 1), vdelta, d512, w0, rows);
  } else if (r == 2 || n < 4) {
    if (n >= 2) {
      garble_gates<2>(rk, quads + 4 * (n - 2), vdelta, d512, w0, rows);
      if (n == 3) garble_gates<1>(rk, quads, vdelta, d512, w0, rows);
    } else {
      garble_gates<1>(rk, quads, vdelta, d512, w0, rows);
    }
  } else {  // r == 3, n >= 4: one 4-chain batch beats serialized <2>+<1>
    garble_gates<4>(rk, quads + 4 * (n - 4), vdelta, d512, w0, rows);
  }
}

void eval_and_span_vaes(const FixedKeyAes& aes, const std::uint32_t* quads,
                        std::size_t n, const Label* rows, Label* w) {
  const __m512i* rk = broadcast_round_keys(aes);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    eval_pairs<8>(rk, quads + 4 * i, rows, w);
  }
  if (i + 12 <= n) {
    eval_pairs<6>(rk, quads + 4 * i, rows, w);
    i += 12;
  }
  if (i + 6 <= n) {
    eval_pairs<3>(rk, quads + 4 * i, rows, w);
    i += 6;
  }
  if (i == n) return;
  // Tail: same overlapped-flush trick as the garbler — re-run the
  // smallest batch tier that covers the remainder against the end of the
  // span, instead of draining leftovers through exact narrow batches that
  // each cost their own ~50-cycle AES chain.  Narrow levels dominate deep
  // circuits, so overlap is kept proportional to the remainder.
  const std::size_t r = n - i;
  if (r <= 2 && n >= 2) {
    eval_pairs<1>(rk, quads + 4 * (n - 2), rows, w);
  } else if (r <= 4 && n >= 4) {
    eval_pairs<2>(rk, quads + 4 * (n - 4), rows, w);
  } else if (n >= 6) {
    eval_pairs<3>(rk, quads + 4 * (n - 6), rows, w);
  } else {
    // n < 6 and no covering batch: exact drain (n in {1, 3, 5}).
    if (i + 4 <= n) {
      eval_pairs<2>(rk, quads + 4 * i, rows, w);
      i += 4;
    }
    if (i + 2 <= n) {
      eval_pairs<1>(rk, quads + 4 * i, rows, w);
      i += 2;
    }
    if (i < n) eval_gate_tail(rk, quads + 4 * i, rows, w);
  }
}

}  // namespace

GarbleSpanFn vaes_garble_span() { return &garble_and_span_vaes; }
EvalSpanFn vaes_eval_span() { return &eval_and_span_vaes; }

}  // namespace primer

#else  // no VAES toolchain support

namespace primer {

GarbleSpanFn vaes_garble_span() { return nullptr; }
EvalSpanFn vaes_eval_span() { return nullptr; }

}  // namespace primer

#endif
