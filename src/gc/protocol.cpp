#include "gc/protocol.h"

#include <cstring>
#include <stdexcept>

namespace primer {

std::vector<std::uint8_t> pack_bits(const std::vector<bool>& bits) {
  std::vector<std::uint8_t> out((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return out;
}

std::vector<bool> unpack_bits(const std::vector<std::uint8_t>& bytes,
                              std::size_t count) {
  if (bytes.size() < (count + 7) / 8) {
    throw std::out_of_range("unpack_bits: " + std::to_string(bytes.size()) +
                            " bytes cannot hold " + std::to_string(count) +
                            " bits");
  }
  std::vector<bool> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = (bytes[i / 8] >> (i % 8)) & 1;
  }
  return out;
}

std::vector<bool> value_to_bits(std::uint64_t v, std::size_t width) {
  std::vector<bool> out(width);
  for (std::size_t i = 0; i < width; ++i) out[i] = (v >> i) & 1;
  return out;
}

std::uint64_t bits_to_value(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= std::uint64_t{1} << i;
  }
  return v;
}

namespace {

std::vector<std::uint8_t> labels_to_bytes(const std::vector<Label>& labels) {
  std::vector<std::uint8_t> out(labels.size() * sizeof(Label));
  std::memcpy(out.data(), labels.data(), out.size());
  return out;
}

// Parses a wire payload into exactly `expected` labels; the frame layer has
// already verified integrity, so a size mismatch here means the sender
// framed the wrong thing — surface it as a malformed-payload error.
std::vector<Label> labels_from_bytes(const std::vector<std::uint8_t>& bytes,
                                     std::size_t expected, const char* what) {
  if (bytes.size() != expected * sizeof(Label)) {
    throw ProtocolError(ProtocolErrorKind::kMalformed,
                        std::string(what) + ": payload of " +
                            std::to_string(bytes.size()) +
                            " bytes does not hold the expected " +
                            std::to_string(expected) + " labels");
  }
  std::vector<Label> out(expected);
  std::memcpy(out.data(), bytes.data(), out.size() * sizeof(Label));
  return out;
}

}  // namespace

void GcSession::offline(const Circuit& circuit, RevealTo reveal) {
  circuit_ = circuit;
  reveal_ = reveal;
  Stopwatch sw;
  Garbler garbler(rng_);
  gc_ = garbler.garble(circuit_);
  stats_.garble_seconds += sw.seconds();
  stats_.and_gates += circuit_.and_count();
  stats_.table_bytes += gc_.table.byte_size();

  // Ship garbled tables to the evaluator, who parses them from the wire.
  channel_.send(Party::kServer, MessageKind::kGcTables,
                labels_to_bytes(gc_.table.rows));
  client_table_.rows = labels_from_bytes(
      channel_.recv_expect(Party::kClient, MessageKind::kGcTables),
      gc_.table.rows.size(), "gc tables");
  if (reveal == RevealTo::kEvaluator || reveal == RevealTo::kBoth) {
    // Decode bits: lsb of each output wire's false label.
    std::vector<bool> decode(gc_.output_labels0.size());
    for (std::size_t i = 0; i < decode.size(); ++i) {
      decode[i] = gc_.output_labels0[i].lsb();
    }
    channel_.send(Party::kServer, MessageKind::kGcDecodeBits,
                  pack_bits(decode));
    try {
      client_decode_ = unpack_bits(
          channel_.recv_expect(Party::kClient, MessageKind::kGcDecodeBits),
          gc_.output_labels0.size());
    } catch (const std::out_of_range& e) {
      throw ProtocolError(ProtocolErrorKind::kMalformed,
                          std::string("gc decode bits: ") + e.what());
    }
  }
  ot_.setup();  // base-OT traffic is part of the offline phase
  offline_done_ = true;
}

std::vector<bool> GcSession::online(const std::vector<bool>& garbler_bits,
                                    const std::vector<bool>& evaluator_bits) {
  if (!offline_done_) {
    throw std::logic_error("GcSession::online before offline");
  }
  const std::size_t ng = garbler_bits.size();
  const std::size_t ne = evaluator_bits.size();
  if (static_cast<std::int32_t>(ng + ne) != circuit_.num_inputs) {
    throw std::invalid_argument("GcSession::online: input count mismatch");
  }

  // Garbler sends active labels for its own inputs.
  std::vector<Label> active(ng + ne);
  std::vector<Label> garbler_active(ng);
  for (std::size_t i = 0; i < ng; ++i) {
    garbler_active[i] = Garbler::active_input(gc_, i, garbler_bits[i]);
  }
  channel_.send(Party::kServer, MessageKind::kGcGarblerLabels,
                labels_to_bytes(garbler_active));
  {
    const auto received = labels_from_bytes(
        channel_.recv_expect(Party::kClient, MessageKind::kGcGarblerLabels),
        ng, "gc garbler labels");
    for (std::size_t i = 0; i < ng; ++i) active[i] = received[i];
  }

  // Evaluator obtains its labels via (simulated, traffic-accounted) OT.
  std::vector<Label> l0(ne), l1(ne);
  for (std::size_t i = 0; i < ne; ++i) {
    l0[i] = gc_.input_labels0[ng + i];
    l1[i] = l0[i] ^ gc_.delta;
  }
  const auto chosen = ot_.transfer(l0, l1, evaluator_bits);
  for (std::size_t i = 0; i < ne; ++i) active[ng + i] = chosen[i];

  // Evaluate (client side, using the table as received over the wire).
  Stopwatch sw;
  const auto out_labels = GcEvaluator::eval(circuit_, client_table_, active);
  stats_.eval_seconds += sw.seconds();

  // Decode.
  std::vector<bool> out(out_labels.size());
  if (reveal_ == RevealTo::kEvaluator || reveal_ == RevealTo::kBoth) {
    // Evaluator decodes with the decode bits received in the offline phase.
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = out_labels[i].lsb() != client_decode_[i];
    }
    if (reveal_ == RevealTo::kBoth) {
      channel_.send(Party::kClient, MessageKind::kGcOutputBits,
                    pack_bits(out));
      channel_.recv_expect(Party::kServer, MessageKind::kGcOutputBits);
    }
  } else {
    // Reveal to garbler only: evaluator sends the active lsbs; the garbler
    // XORs with its stored permute bits.
    std::vector<bool> lsbs(out.size());
    for (std::size_t i = 0; i < out.size(); ++i) lsbs[i] = out_labels[i].lsb();
    channel_.send(Party::kClient, MessageKind::kGcOutputBits,
                  pack_bits(lsbs));
    channel_.recv_expect(Party::kServer, MessageKind::kGcOutputBits);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = lsbs[i] != gc_.output_labels0[i].lsb();
    }
  }
  return out;
}

}  // namespace primer
