#include "gc/protocol.h"

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace primer {

std::vector<std::uint8_t> pack_bits(const std::vector<bool>& bits) {
  std::vector<std::uint8_t> out((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return out;
}

std::vector<bool> unpack_bits(const std::vector<std::uint8_t>& bytes,
                              std::size_t count) {
  if (bytes.size() < (count + 7) / 8) {
    throw std::out_of_range("unpack_bits: " + std::to_string(bytes.size()) +
                            " bytes cannot hold " + std::to_string(count) +
                            " bits");
  }
  std::vector<bool> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = (bytes[i / 8] >> (i % 8)) & 1;
  }
  return out;
}

std::vector<bool> value_to_bits(std::uint64_t v, std::size_t width) {
  std::vector<bool> out(width);
  for (std::size_t i = 0; i < width; ++i) out[i] = (v >> i) & 1;
  return out;
}

std::uint64_t bits_to_value(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= std::uint64_t{1} << i;
  }
  return v;
}

namespace {

template <class Vec>
std::vector<std::uint8_t> labels_to_bytes(const Vec& labels) {
  std::vector<std::uint8_t> out(labels.size() * sizeof(Label));
  std::memcpy(out.data(), labels.data(), out.size());
  return out;
}

// Parses a wire payload into exactly `expected` labels; the frame layer has
// already verified integrity, so a size mismatch here means the sender
// framed the wrong thing — surface it as a malformed-payload error.
// Vec is std::vector<Label> or the table's LabelVec.
template <class Vec = std::vector<Label>>
Vec labels_from_bytes(const std::vector<std::uint8_t>& bytes,
                      std::size_t expected, const char* what) {
  if (bytes.size() != expected * sizeof(Label)) {
    throw ProtocolError(ProtocolErrorKind::kMalformed,
                        std::string(what) + ": payload of " +
                            std::to_string(bytes.size()) +
                            " bytes does not hold the expected " +
                            std::to_string(expected) + " labels");
  }
  Vec out(expected);
  std::memcpy(out.data(), bytes.data(), out.size() * sizeof(Label));
  return out;
}

// Streamed-chunk payload: u64 row_begin | u32 row_count | u32 total_rows |
// row_count labels.  total_rows is repeated in every chunk so each one is
// independently validatable against the evaluator's circuit.
constexpr std::size_t kChunkHeaderBytes = 16;

std::vector<std::uint8_t> encode_table_chunk(std::uint64_t row_begin,
                                             std::uint32_t row_count,
                                             std::uint32_t total_rows,
                                             const Label* rows) {
  std::vector<std::uint8_t> out(kChunkHeaderBytes +
                                row_count * sizeof(Label));
  std::memcpy(out.data(), &row_begin, 8);
  std::memcpy(out.data() + 8, &row_count, 4);
  std::memcpy(out.data() + 12, &total_rows, 4);
  std::memcpy(out.data() + kChunkHeaderBytes, rows,
              row_count * sizeof(Label));
  return out;
}

[[noreturn]] void chunk_malformed(const std::string& what) {
  throw ProtocolError(ProtocolErrorKind::kMalformed,
                      "gc table chunk: " + what);
}

}  // namespace

TableTransfer GcSession::default_table_transfer() {
  const char* v = std::getenv("PRIMER_GC_STREAM");
  if (v != nullptr) {
    const std::string s(v);
    if (s == "0" || s == "off" || s == "monolithic") {
      return TableTransfer::kMonolithic;
    }
  }
  return TableTransfer::kStreamed;
}

void GcSession::offline(const Circuit& circuit, RevealTo reveal) {
  circuit_ = circuit;
  reveal_ = reveal;
  // Layering is computed before the timed region starts so garble and eval
  // share one cached copy (and the parallel regions never race on it).
  const CircuitLayers& lay = circuit_.layers();
  const std::size_t total_rows = 2 * lay.and_count;

  CpuWallTimer timer;
  Garbler garbler(rng_);
  if (transfer_ == TableTransfer::kStreamed) {
    // Ship finalized table prefixes while later levels are still garbling.
    // Watermark spans are coalesced up to stream_chunk_rows_; the final
    // sink call (row_end == total_rows) always flushes.
    std::size_t sent = 0;
    gc_ = garbler.garble(
        circuit_, [&](const Label* rows, std::size_t, std::size_t row_end) {
          if (row_end != total_rows && row_end - sent < stream_chunk_rows_) {
            return;  // defer: not enough final rows for a chunk yet
          }
          const auto payload = encode_table_chunk(
              sent, static_cast<std::uint32_t>(row_end - sent),
              static_cast<std::uint32_t>(total_rows), rows + sent);
          stats_.streamed_table_bytes += payload.size();
          ++stats_.table_chunks;
          channel_.send(Party::kServer, MessageKind::kGcTableChunk, payload);
          sent = row_end;
        });
  } else {
    gc_ = garbler.garble(circuit_);
  }
  stats_.garble_seconds += timer.wall_seconds();
  stats_.garble_cpu_seconds += timer.cpu_seconds();
  stats_.and_gates += lay.and_count;
  stats_.table_bytes += gc_.table.byte_size();

  // Evaluator side: parse the tables off the wire.
  if (transfer_ == TableTransfer::kStreamed) {
    client_table_.rows.assign(total_rows, Label{});
    std::size_t received = 0;
    while (received < total_rows) {
      const auto payload =
          channel_.recv_expect(Party::kClient, MessageKind::kGcTableChunk);
      if (payload.size() < kChunkHeaderBytes) {
        chunk_malformed("payload of " + std::to_string(payload.size()) +
                        " bytes is shorter than the chunk header");
      }
      std::uint64_t row_begin = 0;
      std::uint32_t row_count = 0;
      std::uint32_t chunk_total = 0;
      std::memcpy(&row_begin, payload.data(), 8);
      std::memcpy(&row_count, payload.data() + 8, 4);
      std::memcpy(&chunk_total, payload.data() + 12, 4);
      if (chunk_total != total_rows) {
        chunk_malformed("chunk claims a " + std::to_string(chunk_total) +
                        "-row table but the circuit needs " +
                        std::to_string(total_rows));
      }
      if (row_begin != received) {
        chunk_malformed("chunk starts at row " + std::to_string(row_begin) +
                        " but " + std::to_string(received) +
                        " rows have been received");
      }
      if (row_count == 0 || row_begin + row_count > total_rows) {
        chunk_malformed("chunk of " + std::to_string(row_count) +
                        " rows at row " + std::to_string(row_begin) +
                        " overruns the " + std::to_string(total_rows) +
                        "-row table");
      }
      if (payload.size() != kChunkHeaderBytes + row_count * sizeof(Label)) {
        chunk_malformed("payload of " + std::to_string(payload.size()) +
                        " bytes does not hold " + std::to_string(row_count) +
                        " rows");
      }
      std::memcpy(client_table_.rows.data() + row_begin,
                  payload.data() + kChunkHeaderBytes,
                  row_count * sizeof(Label));
      received += row_count;
    }
  } else {
    channel_.send(Party::kServer, MessageKind::kGcTables,
                  labels_to_bytes(gc_.table.rows));
    client_table_.rows = labels_from_bytes<LabelVec>(
        channel_.recv_expect(Party::kClient, MessageKind::kGcTables),
        gc_.table.rows.size(), "gc tables");
  }
  if (reveal == RevealTo::kEvaluator || reveal == RevealTo::kBoth) {
    // Decode bits: lsb of each output wire's false label.
    std::vector<bool> decode(gc_.output_labels0.size());
    for (std::size_t i = 0; i < decode.size(); ++i) {
      decode[i] = gc_.output_labels0[i].lsb();
    }
    channel_.send(Party::kServer, MessageKind::kGcDecodeBits,
                  pack_bits(decode));
    try {
      client_decode_ = unpack_bits(
          channel_.recv_expect(Party::kClient, MessageKind::kGcDecodeBits),
          gc_.output_labels0.size());
    } catch (const std::out_of_range& e) {
      throw ProtocolError(ProtocolErrorKind::kMalformed,
                          std::string("gc decode bits: ") + e.what());
    }
  }
  ot_.setup();  // base-OT traffic is part of the offline phase
  offline_done_ = true;
}

std::vector<bool> GcSession::online(const std::vector<bool>& garbler_bits,
                                    const std::vector<bool>& evaluator_bits) {
  if (!offline_done_) {
    throw std::logic_error("GcSession::online before offline");
  }
  const std::size_t ng = garbler_bits.size();
  const std::size_t ne = evaluator_bits.size();
  if (static_cast<std::int32_t>(ng + ne) != circuit_.num_inputs) {
    throw std::invalid_argument("GcSession::online: input count mismatch");
  }

  // Garbler sends active labels for its own inputs.
  std::vector<Label> active(ng + ne);
  std::vector<Label> garbler_active(ng);
  for (std::size_t i = 0; i < ng; ++i) {
    garbler_active[i] = Garbler::active_input(gc_, i, garbler_bits[i]);
  }
  channel_.send(Party::kServer, MessageKind::kGcGarblerLabels,
                labels_to_bytes(garbler_active));
  {
    const auto received = labels_from_bytes(
        channel_.recv_expect(Party::kClient, MessageKind::kGcGarblerLabels),
        ng, "gc garbler labels");
    for (std::size_t i = 0; i < ng; ++i) active[i] = received[i];
  }

  // Evaluator obtains its labels via (simulated, traffic-accounted) OT.
  std::vector<Label> l0(ne), l1(ne);
  for (std::size_t i = 0; i < ne; ++i) {
    l0[i] = gc_.input_labels0[ng + i];
    l1[i] = l0[i] ^ gc_.delta;
  }
  const auto chosen = ot_.transfer(l0, l1, evaluator_bits);
  for (std::size_t i = 0; i < ne; ++i) active[ng + i] = chosen[i];

  // Evaluate (client side, using the table as received over the wire).
  CpuWallTimer timer;
  const auto out_labels = GcEvaluator::eval(circuit_, client_table_, active);
  stats_.eval_seconds += timer.wall_seconds();
  stats_.eval_cpu_seconds += timer.cpu_seconds();

  // Decode.
  std::vector<bool> out(out_labels.size());
  if (reveal_ == RevealTo::kEvaluator || reveal_ == RevealTo::kBoth) {
    // Evaluator decodes with the decode bits received in the offline phase.
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = out_labels[i].lsb() != client_decode_[i];
    }
    if (reveal_ == RevealTo::kBoth) {
      channel_.send(Party::kClient, MessageKind::kGcOutputBits,
                    pack_bits(out));
      channel_.recv_expect(Party::kServer, MessageKind::kGcOutputBits);
    }
  } else {
    // Reveal to garbler only: evaluator sends the active lsbs; the garbler
    // XORs with its stored permute bits.
    std::vector<bool> lsbs(out.size());
    for (std::size_t i = 0; i < out.size(); ++i) lsbs[i] = out_labels[i].lsb();
    channel_.send(Party::kClient, MessageKind::kGcOutputBits,
                  pack_bits(lsbs));
    channel_.recv_expect(Party::kServer, MessageKind::kGcOutputBits);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = lsbs[i] != gc_.output_labels0[i].lsb();
    }
  }
  return out;
}

}  // namespace primer
