// Half-gates garbling (Zahur–Rosulek–Evans 2015) with free-XOR and
// point-and-permute, over the fixed-key AES hash.
//
//   XOR: free.  NOT: free (label relabeling).  AND: two ciphertexts
//   (garbler half TG, evaluator half TE), one AES hash pair per side.
//
// The garbler samples a global offset R with lsb(R) = 1; wire labels are
// (W, W ^ R) and the lsb is the permute bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gc/aes.h"
#include "gc/circuit.h"

namespace primer {

using Label = Block;

struct GarbledTable {
  // Two ciphertexts per AND gate, in gate order.
  std::vector<Label> rows;

  std::size_t byte_size() const { return rows.size() * sizeof(Label); }
};

struct GarbledCircuit {
  GarbledTable table;
  // False label of every input wire (garbler-private).
  std::vector<Label> input_labels0;
  // False label of every output wire (garbler-private; lsb is the decode bit).
  std::vector<Label> output_labels0;
  Label delta;  // global offset R (garbler-private)
};

class Garbler {
 public:
  explicit Garbler(Rng& rng) : rng_(rng) {}

  GarbledCircuit garble(const Circuit& c) const;

  // Active label for an input wire given its plaintext bit.
  static Label active_input(const GarbledCircuit& gc, std::size_t wire,
                            bool bit) {
    Label l = gc.input_labels0[wire];
    if (bit) l ^= gc.delta;
    return l;
  }

  // Decode an active output label to its plaintext bit.
  static bool decode_output(const GarbledCircuit& gc, std::size_t out_index,
                            const Label& active) {
    return active.lsb() != gc.output_labels0[out_index].lsb();
  }

 private:
  Rng& rng_;
};

class GcEvaluator {
 public:
  // Evaluates the garbled circuit given active labels for all inputs;
  // returns active labels of the outputs.
  static std::vector<Label> eval(const Circuit& c, const GarbledTable& table,
                                 const std::vector<Label>& active_inputs);
};

// End-to-end helper used by tests: garble, select input labels from plain
// bits, evaluate, decode.
std::vector<bool> garbled_eval(const Circuit& c,
                               const std::vector<bool>& inputs, Rng& rng);

}  // namespace primer
