// Half-gates garbling (Zahur–Rosulek–Evans 2015) with free-XOR and
// point-and-permute, over the fixed-key AES hash.
//
//   XOR: free.  NOT: free (label relabeling).  AND: two ciphertexts
//   (garbler half TG, evaluator half TE), one AES hash pair per side.
//
// The garbler samples a global offset R with lsb(R) = 1; wire labels are
// (W, W ^ R) and the lsb is the permute bit.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "gc/aes.h"
#include "gc/circuit.h"

namespace primer {

using Label = Block;

// Allocator whose no-argument construct default-initializes instead of
// value-initializing, so resize() of trivial elements skips the zero fill.
// Only for buffers every element of which is written before being read.
template <class T>
struct DefaultInitAllocator : std::allocator<T> {
  template <class U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  using std::allocator<T>::allocator;
  template <class U>
  void construct(U* p) noexcept {
    ::new (static_cast<void*>(p)) U;
  }
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

// Garbled-table row storage: the garble kernels overwrite every row, so the
// uninitialized resize avoids a table-sized memset per garble call.
using LabelVec = std::vector<Label, DefaultInitAllocator<Label>>;

struct GarbledTable {
  // Two ciphertexts per AND gate, in gate order.
  LabelVec rows;

  std::size_t byte_size() const { return rows.size() * sizeof(Label); }
};

struct GarbledCircuit {
  GarbledTable table;
  // False label of every input wire (garbler-private).
  std::vector<Label> input_labels0;
  // False label of every output wire (garbler-private; lsb is the decode bit).
  std::vector<Label> output_labels0;
  Label delta;  // global offset R (garbler-private)
};

class Garbler {
 public:
  explicit Garbler(Rng& rng) : rng_(rng) {}

  // Invoked with (rows, row_begin, row_end) spans of the garbled table as
  // their rows become final (dependency-level watermarks): spans are
  // contiguous, non-overlapping, strictly increasing, and cover the whole
  // table by the time garble() returns.  `rows` is the table base pointer;
  // only [row_begin, row_end) is final when the sink runs.  The streamed
  // table transfer ships each span while later levels are still garbling.
  using RowSink =
      std::function<void(const Label* rows, std::size_t row_begin,
                         std::size_t row_end)>;

  // Batched, level-parallel half-gates garbling.  Tweaks and table rows are
  // indexed by each AND gate's serial ordinal, so the output is
  // bit-identical to garble_reference() for any PRIMER_THREADS.
  GarbledCircuit garble(const Circuit& c) const;
  GarbledCircuit garble(const Circuit& c, const RowSink& sink) const;

  // Active label for an input wire given its plaintext bit.
  static Label active_input(const GarbledCircuit& gc, std::size_t wire,
                            bool bit) {
    Label l = gc.input_labels0[wire];
    if (bit) l ^= gc.delta;
    return l;
  }

  // Decode an active output label to its plaintext bit.
  static bool decode_output(const GarbledCircuit& gc, std::size_t out_index,
                            const Label& active) {
    return active.lsb() != gc.output_labels0[out_index].lsb();
  }

 private:
  Rng& rng_;
};

class GcEvaluator {
 public:
  // Evaluates the garbled circuit given active labels for all inputs;
  // returns active labels of the outputs.  Batched and level-parallel like
  // garble(); bit-identical to eval_reference().
  static std::vector<Label> eval(const Circuit& c, const GarbledTable& table,
                                 const std::vector<Label>& active_inputs);
};

// The seed's serial single-block-AES paths, kept verbatim as the
// bit-exactness oracle for the batched/parallel implementations and as the
// bench baseline the >=3x throughput gate measures against.
GarbledCircuit garble_reference(const Circuit& c, Rng& rng);
std::vector<Label> eval_reference(const Circuit& c, const GarbledTable& table,
                                  const std::vector<Label>& active_inputs);

// End-to-end helper used by tests: garble, select input labels from plain
// bits, evaluate, decode.
std::vector<bool> garbled_eval(const Circuit& c,
                               const std::vector<bool>& inputs, Rng& rng);

}  // namespace primer
