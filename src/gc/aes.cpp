#include "gc/aes.h"

namespace primer {

namespace {

template <int Rcon>
__m128i expand_step(__m128i key) {
  __m128i gen = _mm_aeskeygenassist_si128(key, Rcon);
  gen = _mm_shuffle_epi32(gen, _MM_SHUFFLE(3, 3, 3, 3));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, gen);
}

// GF(2^128) doubling (shift left by one with reduction poly x^128+x^7+x^2+x+1).
Block gf_double(Block x) {
  const std::uint64_t carry = x.hi >> 63;
  Block r;
  r.hi = (x.hi << 1) | (x.lo >> 63);
  r.lo = x.lo << 1;
  if (carry) r.lo ^= 0x87;
  return r;
}

}  // namespace

FixedKeyAes::FixedKeyAes()
    : FixedKeyAes(Block{0x0011223344556677ULL, 0x8899aabbccddeeffULL}) {}

FixedKeyAes::FixedKeyAes(Block key) {
  round_keys_[0] = key.to_m128();
  round_keys_[1] = expand_step<0x01>(round_keys_[0]);
  round_keys_[2] = expand_step<0x02>(round_keys_[1]);
  round_keys_[3] = expand_step<0x04>(round_keys_[2]);
  round_keys_[4] = expand_step<0x08>(round_keys_[3]);
  round_keys_[5] = expand_step<0x10>(round_keys_[4]);
  round_keys_[6] = expand_step<0x20>(round_keys_[5]);
  round_keys_[7] = expand_step<0x40>(round_keys_[6]);
  round_keys_[8] = expand_step<0x80>(round_keys_[7]);
  round_keys_[9] = expand_step<0x1b>(round_keys_[8]);
  round_keys_[10] = expand_step<0x36>(round_keys_[9]);
}

Block FixedKeyAes::encrypt(Block x) const {
  __m128i v = x.to_m128();
  v = _mm_xor_si128(v, round_keys_[0]);
  for (int i = 1; i < 10; ++i) v = _mm_aesenc_si128(v, round_keys_[i]);
  v = _mm_aesenclast_si128(v, round_keys_[10]);
  return Block::from_m128(v);
}

Block FixedKeyAes::hash(Block x, std::uint64_t tweak) const {
  Block s = gf_double(x);
  s.lo ^= tweak;
  const Block c = encrypt(s);
  return c ^ s;
}

}  // namespace primer
