#include "gc/aes.h"

namespace primer {

namespace {

template <int Rcon>
__m128i expand_step(__m128i key) {
  __m128i gen = _mm_aeskeygenassist_si128(key, Rcon);
  gen = _mm_shuffle_epi32(gen, _MM_SHUFFLE(3, 3, 3, 3));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, gen);
}

// GF(2^128) doubling (shift left by one with reduction poly x^128+x^7+x^2+x+1).
Block gf_double(Block x) {
  const std::uint64_t carry = x.hi >> 63;
  Block r;
  r.hi = (x.hi << 1) | (x.lo >> 63);
  r.lo = x.lo << 1;
  if (carry) r.lo ^= 0x87;
  return r;
}

// W independent MMO hashes interleaved through one AESENC round sequence.
// Exactly hash() per lane: s = sigma(x) ^ tweak, out = AES(s) ^ s.
template <int W>
inline void hash_w(const __m128i* rk, const Block* x,
                   const std::uint64_t* tweak, Block* out) {
  __m128i s[W], c[W];
  for (int k = 0; k < W; ++k) {
    s[k] = _mm_xor_si128(
        gf_double_m128(x[k].to_m128()),
        _mm_set_epi64x(0, static_cast<long long>(tweak[k])));
    c[k] = _mm_xor_si128(s[k], rk[0]);
  }
  for (int r = 1; r < 10; ++r) {
    for (int k = 0; k < W; ++k) c[k] = _mm_aesenc_si128(c[k], rk[r]);
  }
  for (int k = 0; k < W; ++k) {
    c[k] = _mm_xor_si128(_mm_aesenclast_si128(c[k], rk[10]), s[k]);
    out[k] = Block::from_m128(c[k]);
  }
}

template <int W>
inline void encrypt_w(const __m128i* rk, const Block* in, Block* out) {
  __m128i c[W];
  for (int k = 0; k < W; ++k) {
    c[k] = _mm_xor_si128(in[k].to_m128(), rk[0]);
  }
  for (int r = 1; r < 10; ++r) {
    for (int k = 0; k < W; ++k) c[k] = _mm_aesenc_si128(c[k], rk[r]);
  }
  for (int k = 0; k < W; ++k) {
    out[k] = Block::from_m128(_mm_aesenclast_si128(c[k], rk[10]));
  }
}

}  // namespace

FixedKeyAes::FixedKeyAes()
    : FixedKeyAes(Block{0x0011223344556677ULL, 0x8899aabbccddeeffULL}) {}

FixedKeyAes::FixedKeyAes(Block key) {
  round_keys_[0] = key.to_m128();
  round_keys_[1] = expand_step<0x01>(round_keys_[0]);
  round_keys_[2] = expand_step<0x02>(round_keys_[1]);
  round_keys_[3] = expand_step<0x04>(round_keys_[2]);
  round_keys_[4] = expand_step<0x08>(round_keys_[3]);
  round_keys_[5] = expand_step<0x10>(round_keys_[4]);
  round_keys_[6] = expand_step<0x20>(round_keys_[5]);
  round_keys_[7] = expand_step<0x40>(round_keys_[6]);
  round_keys_[8] = expand_step<0x80>(round_keys_[7]);
  round_keys_[9] = expand_step<0x1b>(round_keys_[8]);
  round_keys_[10] = expand_step<0x36>(round_keys_[9]);
}

Block FixedKeyAes::encrypt(Block x) const {
  __m128i v = x.to_m128();
  v = _mm_xor_si128(v, round_keys_[0]);
  for (int i = 1; i < 10; ++i) v = _mm_aesenc_si128(v, round_keys_[i]);
  v = _mm_aesenclast_si128(v, round_keys_[10]);
  return Block::from_m128(v);
}

void FixedKeyAes::encrypt_n(const Block* in, Block* out, std::size_t n) const {
  std::size_t i = 0;
  for (; i + kBatch <= n; i += kBatch) {
    encrypt_w<kBatch>(round_keys_, in + i, out + i);
  }
  if (i + 4 <= n) {
    encrypt_w<4>(round_keys_, in + i, out + i);
    i += 4;
  }
  for (; i < n; ++i) out[i] = encrypt(in[i]);
}

Block FixedKeyAes::hash(Block x, std::uint64_t tweak) const {
  Block s = gf_double(x);
  s.lo ^= tweak;
  const Block c = encrypt(s);
  return c ^ s;
}

void FixedKeyAes::hash_n(const Block* x, const std::uint64_t* tweak,
                         Block* out, std::size_t n) const {
  std::size_t i = 0;
  for (; i + kBatch <= n; i += kBatch) {
    hash_w<kBatch>(round_keys_, x + i, tweak + i, out + i);
  }
  if (i + 4 <= n) {
    hash_w<4>(round_keys_, x + i, tweak + i, out + i);
    i += 4;
  }
  for (; i < n; ++i) out[i] = hash(x[i], tweak[i]);
}

}  // namespace primer
