// Canonical instances of every fixed nonlinear-layer circuit the Primer
// protocols garble (identity/ReLU/GELU activations, SoftMax, LayerNorm),
// built at test-scale parameters.  Shared by the garbling bit-equality
// tests (serial vs batched vs threaded vs streamed) and bench_gc_micro so
// both always cover the same circuit set.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/fixed_point.h"
#include "gc/fixed_circuits.h"

namespace primer {

// ~2^20 prime with 1 mod 4096 (the test-profile plaintext modulus idiom).
inline constexpr std::uint64_t kGcSuitePrime = 1032193;

inline std::vector<std::pair<std::string, Circuit>> fixed_circuit_suite(
    std::size_t count = 8) {
  std::vector<std::pair<std::string, Circuit>> suite;

  for (const auto& [name, act] :
       {std::pair<const char*, Activation>{"identity", Activation::kIdentity},
        {"relu", Activation::kRelu},
        {"gelu", Activation::kGelu}}) {
    ActivationCircuitSpec spec;
    spec.t = kGcSuitePrime;
    spec.count = count;
    spec.frac_shift = 8;
    spec.act = act;
    suite.emplace_back(name, make_activation_circuit(spec));
  }

  {
    SoftmaxCircuitSpec spec;
    spec.t = kGcSuitePrime;
    spec.count = count;
    spec.frac_shift = 8;
    suite.emplace_back("softmax", make_softmax_circuit(spec));
  }

  {
    LayerNormCircuitSpec spec;
    spec.t = kGcSuitePrime;
    spec.d = count;
    spec.frac_shift = 8;
    spec.gamma.assign(count, fp_encode(1.0));
    spec.beta.assign(count, fp_encode(0.0));
    if (count > 3) {
      spec.gamma[2] = fp_encode(1.5);
      spec.beta[3] = fp_encode(-0.25);
    }
    suite.emplace_back("layernorm", make_layernorm_circuit(spec));
  }

  return suite;
}

}  // namespace primer
