// Internal interface between the garble/eval drivers (garble.cpp) and the
// AND-gate span kernel tiers.  A span kernel processes AND gates
// ands[lo..hi) of one dependency level; table rows and hash tweaks are
// addressed by each gate's serial AND ordinal and every gate writes
// disjoint state, so spans of a level run concurrently and every tier is
// bit-identical to the scalar reference.
//
// Two tiers exist:
//   sse  (garble.cpp)      — fused 128-bit AES-NI kernels, baseline ISA.
//   vaes (garble_vaes.cpp) — 512-bit VAES kernels, four AES blocks per
//                            instruction; compiled only when the toolchain
//                            has -mvaes/-mavx512f/-mavx512dq and selected
//                            only when cpuid reports the features.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gc/garble.h"

namespace primer {

// `quads` points at n consecutive (a, b, out, ordinal) records from
// CircuitLevel::and_quads (a/b/out are label byte offsets); `w0` / `w` are
// wire-label arrays (with the extra delta slot at num_wires).
using GarbleSpanFn = void (*)(const FixedKeyAes& aes,
                              const std::uint32_t* quads, std::size_t n,
                              Label delta, Label* w0, Label* rows);
using EvalSpanFn = void (*)(const FixedKeyAes& aes, const std::uint32_t* quads,
                            std::size_t n, const Label* rows, Label* w);

// VAES tier accessors: nullptr when the TU was compiled without VAES
// support (dispatch then stays on the sse tier).  Callers must still gate
// on runtime cpuid — see gc_kernel_name() in garble.cpp.
GarbleSpanFn vaes_garble_span();
EvalSpanFn vaes_eval_span();

// Name of the AND-kernel tier the dispatcher selected ("vaes" or "sse"),
// after the PRIMER_GC_KERNEL override (values: "vaes", "sse").
const char* gc_kernel_name();

}  // namespace primer
