#include "gc/garble.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/arena.h"
#include "common/parallel.h"
#include "gc/garble_kernels.h"

namespace primer {

namespace {

const FixedKeyAes& garbling_hash() {
  static const FixedKeyAes aes;
  return aes;
}

Label random_label(Rng& rng) { return Label{rng.next(), rng.next()}; }

// Input labels come from four interleaved xoshiro streams, each seeded
// from the caller's generator.  xoshiro's state update is a ~5-cycle
// serial dependency chain, so sampling 2*n words through one stream caps
// the garbler's fixed setup cost; four independent streams let the core
// overlap the chains (~4x on wide-input circuits).  The optimized driver
// and the serial reference path both call this helper, so labels — and
// therefore tables — stay bit-identical across kernel tiers.
void sample_input_labels(Rng& rng, Label* dst, std::size_t n) {
  Rng s[4] = {Rng(rng.next()), Rng(rng.next()), Rng(rng.next()),
              Rng(rng.next())};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] = Label{s[0].next(), s[0].next()};
    dst[i + 1] = Label{s[1].next(), s[1].next()};
    dst[i + 2] = Label{s[2].next(), s[2].next()};
    dst[i + 3] = Label{s[3].next(), s[3].next()};
  }
  for (; i < n; ++i) dst[i] = Label{s[i & 3].next(), s[i & 3].next()};
}

// Approximate element-op cost of one AND gate against parallel.h's
// kSerialGrain: four (garble) / two (eval) pipelined AES hashes plus the
// surrounding label loads/stores.  Levels below ~2k / ~4k gates stay on
// the calling thread — a pool wakeup would cost more than it saves.
constexpr std::size_t kGarbleGateWork = 64;
constexpr std::size_t kEvalGateWork = 32;

// Label access by byte offset (the flattened gate records store
// wire * sizeof(Label); see CircuitLevel::and_quads): one load with a base
// register instead of a zero-extend + shift + add per wire touch.
inline Label* label_at(Label* base, std::uint32_t off) {
  return reinterpret_cast<Label*>(reinterpret_cast<char*>(base) + off);
}
inline const Label* label_at(const Label* base, std::uint32_t off) {
  return reinterpret_cast<const Label*>(
      reinterpret_cast<const char*>(base) + off);
}

// All-zero / all-one AND mask from a label's point-and-permute bit
// (bit 0), derived in-register: broadcast the low dword, then shift the
// bit into every sign position.  No scalar detour, no table load.
inline __m128i permute_mask(__m128i label) {
  const __m128i b = _mm_shuffle_epi32(label, 0x00);
  return _mm_srai_epi32(_mm_slli_epi32(b, 31), 31);
}

// One level's free gates: w[out] = w[a] ^ w[b] over flattened byte-offset
// triples, as whole 128-bit labels (the scalar Block operator^ would split
// each into two 64-bit halves).  XOR/NOT outnumber ANDs ~3:1 in the
// arithmetic circuits, so this loop is a real fraction of garble/eval.
inline __m128i load_label_off(const Label* w, std::uint32_t off) {
  return _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(label_at(w, off)));
}

inline void free_sweep(Label* w, const CircuitLevel& level) {
  // Triples within one independence wave (see CircuitLevel::free_wave_ends)
  // never read each other's outputs, so a group's loads all issue before
  // its stores — which the raw emission order forbids, because consecutive
  // triples may chain (the sum bits of a ripple adder XOR through each
  // other).  Grouped loads break the store-forward serialization that made
  // the strictly-in-order loop latency-bound; the two input offsets of a
  // triple read as one 64-bit load.  Waves themselves execute in order.
  const std::uint32_t* t = level.free_triples.data();
  std::size_t i = 0;
  for (const std::uint32_t end : level.free_wave_ends) {
    const std::size_t e = end;
    for (; i + 12 <= e; i += 12) {
      std::uint64_t ab0, ab1, ab2, ab3;
      std::memcpy(&ab0, t + i, sizeof(ab0));
      std::memcpy(&ab1, t + i + 3, sizeof(ab1));
      std::memcpy(&ab2, t + i + 6, sizeof(ab2));
      std::memcpy(&ab3, t + i + 9, sizeof(ab3));
      const __m128i r0 =
          _mm_xor_si128(load_label_off(w, static_cast<std::uint32_t>(ab0)),
                        load_label_off(w, static_cast<std::uint32_t>(ab0 >> 32)));
      const __m128i r1 =
          _mm_xor_si128(load_label_off(w, static_cast<std::uint32_t>(ab1)),
                        load_label_off(w, static_cast<std::uint32_t>(ab1 >> 32)));
      const __m128i r2 =
          _mm_xor_si128(load_label_off(w, static_cast<std::uint32_t>(ab2)),
                        load_label_off(w, static_cast<std::uint32_t>(ab2 >> 32)));
      const __m128i r3 =
          _mm_xor_si128(load_label_off(w, static_cast<std::uint32_t>(ab3)),
                        load_label_off(w, static_cast<std::uint32_t>(ab3 >> 32)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(label_at(w, t[i + 2])), r0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(label_at(w, t[i + 5])), r1);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(label_at(w, t[i + 8])), r2);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(label_at(w, t[i + 11])), r3);
    }
    for (; i < e; i += 3) {
      std::uint64_t ab;
      std::memcpy(&ab, t + i, sizeof(ab));
      const __m128i r =
          _mm_xor_si128(load_label_off(w, static_cast<std::uint32_t>(ab)),
                        load_label_off(w, static_cast<std::uint32_t>(ab >> 32)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(label_at(w, t[i + 2])), r);
    }
  }
}

// Fused half-gates garbling kernel: G whole AND gates (4*G AES blocks)
// stay in __m128i registers from label load to table-row store, with the
// blocks interleaved through one AESENC round sequence.  Two tricks keep
// the hash count at the pipeline's throughput floor:
//   - sigma is XOR-linear, so sigma(A0 ^ R) = sigma(A0) ^ sigma(R) with
//     sigma(R) computed once per span — half the doublings;
//   - the pa/pb conditionals become sign-extended AND masks, so the round
//     pipeline never branches.
// Every step is the same XOR algebra as the scalar reference, so tables
// and labels are bit-identical to it.
template <int G>
inline void garble_gates(const __m128i* rk, const std::uint32_t* quads,
                         __m128i vdelta, __m128i sdelta, Label* w0,
                         Label* rows) {
  __m128i s[4 * G], v[4 * G], va[G], pa[G], pb[G];
  for (int k = 0; k < G; ++k) {
    const std::uint32_t* q = quads + 4 * k;
    const std::uint64_t j0 = 2 * std::uint64_t{q[3]} + 1;
    va[k] = label_at(w0, q[0])->to_m128();
    const __m128i vb = label_at(w0, q[1])->to_m128();
    const __m128i sa = _mm_xor_si128(
        gf_double_m128(va[k]), _mm_set_epi64x(0, static_cast<long long>(j0)));
    const __m128i sb = _mm_xor_si128(
        gf_double_m128(vb), _mm_set_epi64x(0, static_cast<long long>(j0 + 1)));
    s[4 * k + 0] = sa;
    s[4 * k + 1] = _mm_xor_si128(sa, sdelta);
    s[4 * k + 2] = sb;
    s[4 * k + 3] = _mm_xor_si128(sb, sdelta);
    pa[k] = permute_mask(va[k]);
    pb[k] = permute_mask(vb);
  }
  for (int k = 0; k < 4 * G; ++k) v[k] = _mm_xor_si128(s[k], rk[0]);
  for (int r = 1; r < 10; ++r) {
    for (int k = 0; k < 4 * G; ++k) v[k] = _mm_aesenc_si128(v[k], rk[r]);
  }
  for (int k = 0; k < 4 * G; ++k) {
    v[k] = _mm_xor_si128(_mm_aesenclast_si128(v[k], rk[10]), s[k]);
  }
  for (int k = 0; k < G; ++k) {
    const std::uint32_t* q = quads + 4 * k;
    // Garbler half: TG = H(A0,j0) ^ H(A1,j0) ^ (pb ? R : 0),
    //               WG = H(A0,j0) ^ (pa ? TG : 0).
    __m128i tg = _mm_xor_si128(v[4 * k + 0], v[4 * k + 1]);
    tg = _mm_xor_si128(tg, _mm_and_si128(pb[k], vdelta));
    const __m128i wg =
        _mm_xor_si128(v[4 * k + 0], _mm_and_si128(pa[k], tg));
    // Evaluator half: TE = H(B0,j1) ^ H(B1,j1) ^ A0,
    //                 WE = H(B0,j1) ^ (pb ? TE ^ A0 : 0).
    const __m128i hb = _mm_xor_si128(v[4 * k + 2], v[4 * k + 3]);
    const __m128i te = _mm_xor_si128(hb, va[k]);
    const __m128i we =
        _mm_xor_si128(v[4 * k + 2], _mm_and_si128(pb[k], hb));
    const std::size_t row = 2 * std::size_t{q[3]};
    rows[row] = Block::from_m128(tg);
    rows[row + 1] = Block::from_m128(te);
    *label_at(w0, q[2]) = Block::from_m128(_mm_xor_si128(wg, we));
  }
}

// Evaluator counterpart: G gates, two hashes each (2*G blocks in flight).
template <int G>
inline void eval_gates(const __m128i* rk, const std::uint32_t* quads,
                       const Label* rows, Label* w) {
  __m128i s[2 * G], v[2 * G], va[G], sa[G], sb[G];
  for (int k = 0; k < G; ++k) {
    const std::uint32_t* q = quads + 4 * k;
    const std::uint64_t j0 = 2 * std::uint64_t{q[3]} + 1;
    va[k] = label_at(w, q[0])->to_m128();
    const __m128i vb = label_at(w, q[1])->to_m128();
    s[2 * k + 0] = _mm_xor_si128(
        gf_double_m128(va[k]), _mm_set_epi64x(0, static_cast<long long>(j0)));
    s[2 * k + 1] = _mm_xor_si128(
        gf_double_m128(vb), _mm_set_epi64x(0, static_cast<long long>(j0 + 1)));
    sa[k] = permute_mask(va[k]);
    sb[k] = permute_mask(vb);
  }
  for (int k = 0; k < 2 * G; ++k) v[k] = _mm_xor_si128(s[k], rk[0]);
  for (int r = 1; r < 10; ++r) {
    for (int k = 0; k < 2 * G; ++k) v[k] = _mm_aesenc_si128(v[k], rk[r]);
  }
  for (int k = 0; k < 2 * G; ++k) {
    v[k] = _mm_xor_si128(_mm_aesenclast_si128(v[k], rk[10]), s[k]);
  }
  for (int k = 0; k < G; ++k) {
    const std::uint32_t* q = quads + 4 * k;
    const std::size_t row = 2 * std::size_t{q[3]};
    const __m128i wg = _mm_xor_si128(
        v[2 * k + 0], _mm_and_si128(sa[k], rows[row].to_m128()));
    const __m128i we = _mm_xor_si128(
        v[2 * k + 1],
        _mm_and_si128(sb[k], _mm_xor_si128(rows[row + 1].to_m128(), va[k])));
    *label_at(w, q[2]) = Block::from_m128(_mm_xor_si128(wg, we));
  }
}

// Garbles n AND quads of one dependency level through the fused kernel,
// two gates (eight blocks) in flight at a time.  Table rows and tweaks are
// addressed by each gate's serial AND ordinal, and every gate writes
// disjoint state (its output wire and its two table rows), so chunks of a
// level can run concurrently with bit-identical results.
void garble_and_span(const FixedKeyAes& aes, const std::uint32_t* quads,
                     std::size_t n, Label delta, Label* w0, Label* rows) {
  const __m128i* rk = aes.round_keys();
  const __m128i vdelta = delta.to_m128();
  const __m128i sdelta = gf_double_m128(vdelta);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    garble_gates<2>(rk, quads + 4 * i, vdelta, sdelta, w0, rows);
  }
  if (i < n) {
    garble_gates<1>(rk, quads + 4 * i, vdelta, sdelta, w0, rows);
  }
}

// Evaluator counterpart: four gates (eight blocks) in flight at a time.
void eval_and_span(const FixedKeyAes& aes, const std::uint32_t* quads,
                   std::size_t n, const Label* rows, Label* w) {
  const __m128i* rk = aes.round_keys();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    eval_gates<4>(rk, quads + 4 * i, rows, w);
  }
  for (; i < n; ++i) {
    eval_gates<1>(rk, quads + 4 * i, rows, w);
  }
}

#if defined(__x86_64__) || defined(__i386__)
bool cpu_has_vaes512() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("vaes") != 0;
}
#else
bool cpu_has_vaes512() { return false; }
#endif

struct GcKernelTier {
  GarbleSpanFn garble;
  EvalSpanFn eval;
  const char* name;
};

constexpr GcKernelTier kSseTier{&garble_and_span, &eval_and_span, "sse"};

// Tier selection: VAES when the TU was built and cpuid agrees, overridable
// per-call via PRIMER_GC_KERNEL ("vaes" / "sse") — re-read every time so
// tests can flip tiers with setenv; getenv is noise next to a garble.
GcKernelTier gc_kernel_tier() {
  static const bool vaes_ok =
      vaes_garble_span() != nullptr && cpu_has_vaes512();
  const GcKernelTier vaes_tier{vaes_garble_span(), vaes_eval_span(), "vaes"};
  const char* env = std::getenv("PRIMER_GC_KERNEL");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "sse") == 0) return kSseTier;
    if (std::strcmp(env, "vaes") == 0) {
      if (vaes_ok) return vaes_tier;
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true, std::memory_order_relaxed)) {
        std::fprintf(
            stderr,
            "primer: PRIMER_GC_KERNEL=vaes unavailable; using sse tier\n");
      }
      return kSseTier;
    }
    static std::atomic<bool> warned_unknown{false};
    if (!warned_unknown.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "primer: unknown PRIMER_GC_KERNEL '%s' (expected vaes or "
                   "sse); using default\n",
                   env);
    }
  }
  return vaes_ok ? vaes_tier : kSseTier;
}

}  // namespace

const char* gc_kernel_name() { return gc_kernel_tier().name; }

GarbledCircuit Garbler::garble(const Circuit& c) const {
  return garble(c, RowSink{});
}

GarbledCircuit Garbler::garble(const Circuit& c, const RowSink& sink) const {
  const FixedKeyAes& aes = garbling_hash();
  const CircuitLayers& lay = c.layers();
  GarbledCircuit gc;
  // All Rng sampling happens here on the calling thread, in the same order
  // as the serial reference path.
  gc.delta = random_label(rng_);
  gc.delta.lo |= 1;  // point-and-permute: lsb(R) = 1
  // Wire labels live in arena scratch with one extra slot: the reserved
  // delta wire the flattened free-gate triples XOR against (NOT gates; see
  // CircuitLevel::free_triples).  Dirty reuse is safe — every wire is
  // written (input sampling or gate output) before it is read.
  auto scratch = PolyArena::local().checkout(
      2 * (static_cast<std::size_t>(c.num_wires) + 1));
  Label* w0 = reinterpret_cast<Label*>(scratch.data());
  w0[static_cast<std::size_t>(c.num_wires)] = gc.delta;
  sample_input_labels(rng_, w0, static_cast<std::size_t>(c.num_inputs));
  // Uninitialized resize (see LabelVec): every row is written by exactly one
  // AND gate's kernel before the sink or the caller reads it.
  gc.table.rows.resize(2 * lay.and_count);
  Label* rows = gc.table.rows.data();

  const GarbleSpanFn span = gc_kernel_tier().garble;
  std::size_t streamed = 0;  // rows already handed to the sink
  for (std::size_t l = 0; l < lay.levels.size(); ++l) {
    const CircuitLevel& level = lay.levels[l];
    const std::uint32_t* quads = level.and_quads.data();
    const std::size_t n = level.and_quads.size() / 4;
    if (n != 0) {
      if (num_threads() == 1 || n * kGarbleGateWork < kSerialGrain) {
        span(aes, quads, n, gc.delta, w0, rows);
      } else {
        parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi) {
          span(aes, quads + 4 * lo, hi - lo, gc.delta, w0, rows);
        });
      }
    }
    // Free sweep: XOR is free, NOT is XOR with the delta wire (output
    // false label = input true label; the evaluator passes the label
    // through unchanged and bookkeeping flips semantics).
    free_sweep(w0, level);
    if (sink) {
      const std::size_t final_rows = 2 * std::size_t{lay.watermark[l]};
      if (final_rows > streamed) {
        sink(rows, streamed, final_rows);
        streamed = final_rows;
      }
    }
  }
  if (sink && streamed < gc.table.rows.size()) {
    sink(rows, streamed, gc.table.rows.size());
  }

  gc.input_labels0.assign(w0, w0 + c.num_inputs);
  gc.output_labels0.reserve(c.outputs.size());
  for (const auto out : c.outputs) gc.output_labels0.push_back(w0[out]);
  return gc;
}

std::vector<Label> GcEvaluator::eval(const Circuit& c,
                                     const GarbledTable& table,
                                     const std::vector<Label>& active_inputs) {
  if (static_cast<std::int32_t>(active_inputs.size()) != c.num_inputs) {
    throw std::invalid_argument("GcEvaluator::eval: wrong input count");
  }
  const FixedKeyAes& aes = garbling_hash();
  const CircuitLayers& lay = c.layers();
  if (table.rows.size() != 2 * lay.and_count) {
    throw std::invalid_argument("GcEvaluator::eval: table size mismatch");
  }
  // Wire labels in arena scratch (dirty reuse is safe; see garble).  The
  // extra slot is the delta wire, zero on the evaluator's side: the
  // flattened NOT triples XOR with it, passing the active label through.
  auto scratch = PolyArena::local().checkout(
      2 * (static_cast<std::size_t>(c.num_wires) + 1));
  Label* w = reinterpret_cast<Label*>(scratch.data());
  w[static_cast<std::size_t>(c.num_wires)] = Label{};
  for (std::size_t i = 0; i < active_inputs.size(); ++i) w[i] = active_inputs[i];
  const Label* rows = table.rows.data();

  const EvalSpanFn span = gc_kernel_tier().eval;
  for (const CircuitLevel& level : lay.levels) {
    const std::uint32_t* quads = level.and_quads.data();
    const std::size_t n = level.and_quads.size() / 4;
    if (n != 0) {
      if (num_threads() == 1 || n * kEvalGateWork < kSerialGrain) {
        span(aes, quads, n, rows, w);
      } else {
        parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi) {
          span(aes, quads + 4 * lo, hi - lo, rows, w);
        });
      }
    }
    free_sweep(w, level);
  }

  std::vector<Label> out;
  out.reserve(c.outputs.size());
  for (const auto o : c.outputs) out.push_back(w[o]);
  return out;
}

// ---------------------------------------------------------------------------
// Seed serial paths (bit-exactness oracle + bench baseline)
// ---------------------------------------------------------------------------

GarbledCircuit garble_reference(const Circuit& c, Rng& rng) {
  const FixedKeyAes& aes = garbling_hash();
  GarbledCircuit gc;
  gc.delta = random_label(rng);
  gc.delta.lo |= 1;

  std::vector<Label> w0(static_cast<std::size_t>(c.num_wires));
  sample_input_labels(rng, w0.data(), static_cast<std::size_t>(c.num_inputs));

  std::uint64_t gate_index = 0;
  for (const auto& g : c.gates) {
    switch (g.type) {
      case GateType::kXor:
        w0[g.out] = w0[g.a] ^ w0[g.b];
        break;
      case GateType::kNot:
        w0[g.out] = w0[g.a] ^ gc.delta;
        break;
      case GateType::kAnd: {
        const Label a0 = w0[g.a];
        const Label a1 = a0 ^ gc.delta;
        const Label b0 = w0[g.b];
        const Label b1 = b0 ^ gc.delta;
        const bool pa = a0.lsb();
        const bool pb = b0.lsb();
        const std::uint64_t j0 = 2 * gate_index + 1;
        const std::uint64_t j1 = 2 * gate_index + 2;
        const Label ha0 = aes.hash(a0, j0);
        const Label ha1 = aes.hash(a1, j0);
        Label tg = ha0 ^ ha1;
        if (pb) tg ^= gc.delta;
        Label wg = ha0;
        if (pa) wg ^= tg;
        const Label hb0 = aes.hash(b0, j1);
        const Label hb1 = aes.hash(b1, j1);
        const Label te = hb0 ^ hb1 ^ a0;
        Label we = hb0;
        if (pb) we ^= te ^ a0;
        w0[g.out] = wg ^ we;
        gc.table.rows.push_back(tg);
        gc.table.rows.push_back(te);
        ++gate_index;
        break;
      }
    }
  }

  gc.input_labels0.assign(w0.begin(), w0.begin() + c.num_inputs);
  gc.output_labels0.reserve(c.outputs.size());
  for (const auto out : c.outputs) gc.output_labels0.push_back(w0[out]);
  return gc;
}

std::vector<Label> eval_reference(const Circuit& c, const GarbledTable& table,
                                  const std::vector<Label>& active_inputs) {
  if (static_cast<std::int32_t>(active_inputs.size()) != c.num_inputs) {
    throw std::invalid_argument("eval_reference: wrong input count");
  }
  const FixedKeyAes& aes = garbling_hash();
  std::vector<Label> w(static_cast<std::size_t>(c.num_wires));
  for (std::size_t i = 0; i < active_inputs.size(); ++i) w[i] = active_inputs[i];

  std::uint64_t gate_index = 0;
  std::size_t row = 0;
  for (const auto& g : c.gates) {
    switch (g.type) {
      case GateType::kXor:
        w[g.out] = w[g.a] ^ w[g.b];
        break;
      case GateType::kNot:
        w[g.out] = w[g.a];
        break;
      case GateType::kAnd: {
        const Label a = w[g.a];
        const Label b = w[g.b];
        const bool sa = a.lsb();
        const bool sb = b.lsb();
        const std::uint64_t j0 = 2 * gate_index + 1;
        const std::uint64_t j1 = 2 * gate_index + 2;
        const Label tg = table.rows[row];
        const Label te = table.rows[row + 1];
        Label wg = aes.hash(a, j0);
        if (sa) wg ^= tg;
        Label we = aes.hash(b, j1);
        if (sb) we ^= te ^ a;
        w[g.out] = wg ^ we;
        row += 2;
        ++gate_index;
        break;
      }
    }
  }

  std::vector<Label> out;
  out.reserve(c.outputs.size());
  for (const auto o : c.outputs) out.push_back(w[o]);
  return out;
}

std::vector<bool> garbled_eval(const Circuit& c,
                               const std::vector<bool>& inputs, Rng& rng) {
  Garbler garbler(rng);
  const GarbledCircuit gc = garbler.garble(c);
  std::vector<Label> active(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    active[i] = Garbler::active_input(gc, i, inputs[i]);
  }
  const auto out_labels = GcEvaluator::eval(c, gc.table, active);
  std::vector<bool> out(out_labels.size());
  for (std::size_t i = 0; i < out_labels.size(); ++i) {
    out[i] = Garbler::decode_output(gc, i, out_labels[i]);
  }
  return out;
}

}  // namespace primer
