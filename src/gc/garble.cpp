#include "gc/garble.h"

#include <stdexcept>

namespace primer {

namespace {

const FixedKeyAes& garbling_hash() {
  static const FixedKeyAes aes;
  return aes;
}

Label random_label(Rng& rng) { return Label{rng.next(), rng.next()}; }

}  // namespace

GarbledCircuit Garbler::garble(const Circuit& c) const {
  const FixedKeyAes& aes = garbling_hash();
  GarbledCircuit gc;
  gc.delta = random_label(rng_);
  gc.delta.lo |= 1;  // point-and-permute: lsb(R) = 1

  std::vector<Label> w0(static_cast<std::size_t>(c.num_wires));
  for (std::int32_t i = 0; i < c.num_inputs; ++i) {
    w0[i] = random_label(rng_);
  }

  std::uint64_t gate_index = 0;
  for (const auto& g : c.gates) {
    switch (g.type) {
      case GateType::kXor:
        w0[g.out] = w0[g.a] ^ w0[g.b];
        break;
      case GateType::kNot:
        // Output false label = input true label; evaluator passes the label
        // through unchanged and the garbler's bookkeeping flips semantics.
        w0[g.out] = w0[g.a] ^ gc.delta;
        break;
      case GateType::kAnd: {
        const Label a0 = w0[g.a];
        const Label a1 = a0 ^ gc.delta;
        const Label b0 = w0[g.b];
        const Label b1 = b0 ^ gc.delta;
        const bool pa = a0.lsb();
        const bool pb = b0.lsb();
        const std::uint64_t j0 = 2 * gate_index + 1;
        const std::uint64_t j1 = 2 * gate_index + 2;
        // Garbler half: TG = H(A0,j0) ^ H(A1,j0) ^ (pb ? R : 0).
        const Label ha0 = aes.hash(a0, j0);
        const Label ha1 = aes.hash(a1, j0);
        Label tg = ha0 ^ ha1;
        if (pb) tg ^= gc.delta;
        Label wg = ha0;
        if (pa) wg ^= tg;
        // Evaluator half: TE = H(B0,j1) ^ H(B1,j1) ^ A0.
        const Label hb0 = aes.hash(b0, j1);
        const Label hb1 = aes.hash(b1, j1);
        const Label te = hb0 ^ hb1 ^ a0;
        Label we = hb0;
        if (pb) we ^= te ^ a0;
        w0[g.out] = wg ^ we;
        gc.table.rows.push_back(tg);
        gc.table.rows.push_back(te);
        ++gate_index;
        break;
      }
    }
  }

  gc.input_labels0.assign(w0.begin(), w0.begin() + c.num_inputs);
  gc.output_labels0.reserve(c.outputs.size());
  for (const auto out : c.outputs) gc.output_labels0.push_back(w0[out]);
  return gc;
}

std::vector<Label> GcEvaluator::eval(const Circuit& c,
                                     const GarbledTable& table,
                                     const std::vector<Label>& active_inputs) {
  if (static_cast<std::int32_t>(active_inputs.size()) != c.num_inputs) {
    throw std::invalid_argument("GcEvaluator::eval: wrong input count");
  }
  const FixedKeyAes& aes = garbling_hash();
  std::vector<Label> w(static_cast<std::size_t>(c.num_wires));
  for (std::size_t i = 0; i < active_inputs.size(); ++i) w[i] = active_inputs[i];

  std::uint64_t gate_index = 0;
  std::size_t row = 0;
  for (const auto& g : c.gates) {
    switch (g.type) {
      case GateType::kXor:
        w[g.out] = w[g.a] ^ w[g.b];
        break;
      case GateType::kNot:
        w[g.out] = w[g.a];
        break;
      case GateType::kAnd: {
        const Label a = w[g.a];
        const Label b = w[g.b];
        const bool sa = a.lsb();
        const bool sb = b.lsb();
        const std::uint64_t j0 = 2 * gate_index + 1;
        const std::uint64_t j1 = 2 * gate_index + 2;
        const Label tg = table.rows[row];
        const Label te = table.rows[row + 1];
        Label wg = aes.hash(a, j0);
        if (sa) wg ^= tg;
        Label we = aes.hash(b, j1);
        if (sb) we ^= te ^ a;
        w[g.out] = wg ^ we;
        row += 2;
        ++gate_index;
        break;
      }
    }
  }

  std::vector<Label> out;
  out.reserve(c.outputs.size());
  for (const auto o : c.outputs) out.push_back(w[o]);
  return out;
}

std::vector<bool> garbled_eval(const Circuit& c,
                               const std::vector<bool>& inputs, Rng& rng) {
  Garbler garbler(rng);
  const GarbledCircuit gc = garbler.garble(c);
  std::vector<Label> active(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    active[i] = Garbler::active_input(gc, i, inputs[i]);
  }
  const auto out_labels = GcEvaluator::eval(c, gc.table, active);
  std::vector<bool> out(out_labels.size());
  for (std::size_t i = 0; i < out_labels.size(); ++i) {
    out[i] = Garbler::decode_output(gc, i, out_labels[i]);
  }
  return out;
}

}  // namespace primer
