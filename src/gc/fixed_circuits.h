// Fixed-point circuits over secret shares in Z_t.
//
// The Primer protocols hand the GC layer additive shares (mod t) of
// fixed-point values.  The circuits here reconstruct x = (s_g + s_e) mod t
// ("an adder and a multiplexer", §III-B), re-center to two's complement,
// apply the fixed-point non-linearity exactly (ReLU, GELU, SoftMax — no
// polynomial approximation, which is where Primer's accuracy edge over
// THE-X comes from), truncate back to the 15-bit format, and re-mask with
// the evaluator's next-layer randomness Rc.
//
// Input layout of every generated circuit:
//   [ garbler shares | evaluator shares | evaluator masks Rc ]
// Output: (F(x) - Rc) mod t, revealed to the garbler (server).
#pragma once

#include <cstdint>
#include <vector>

#include "common/fixed_point.h"
#include "gc/circuit.h"

namespace primer {

// Width in bits of the share domain Z_t.
std::size_t share_width(std::uint64_t t);

struct SignedBus {
  Bus bits;  // two's complement
};

// Helpers exposed for testing --------------------------------------------

// (share_a + share_b) mod t -> centered two's-complement value, width
// share_width(t) + 1.
SignedBus reconstruct_centered(CircuitBuilder& b, const Bus& sa, const Bus& sb,
                               std::uint64_t t);

// Signed value -> residue mod t in [0, t).
Bus embed_mod_t(CircuitBuilder& b, const SignedBus& v, std::uint64_t t);

// Arithmetic shift right (fixed-point truncation after multiplications).
SignedBus truncate_frac(CircuitBuilder& b, const SignedBus& v,
                        std::size_t frac_bits);

// max(v, 0).
SignedBus relu_signed(CircuitBuilder& b, const SignedBus& v);

// Signed max of two values.
SignedBus max_signed(CircuitBuilder& b, const SignedBus& x,
                     const SignedBus& y);

// Piecewise-linear fixed-point approximation of f over [lo, hi] with 2^k
// equal segments; input/output in the given fixed-point format.  Used for
// exp (SoftMax) and GELU — the segment count is chosen so the PWL error is
// below one fixed-point ulp across the range.
struct PwlSpec {
  double lo = -8.0;
  double hi = 0.0;
  int segments_log2 = 4;
  double (*fn)(double) = nullptr;
};

SignedBus pwl_apply(CircuitBuilder& b, const SignedBus& x, const PwlSpec& spec,
                    const FixedPointFormat& fmt);

// Whole-protocol circuits ---------------------------------------------------

enum class Activation { kIdentity, kRelu, kGelu };

struct ActivationCircuitSpec {
  std::uint64_t t = 0;
  std::size_t count = 1;           // number of packed values
  std::size_t frac_shift = 0;      // truncation applied before activation
  Activation act = Activation::kIdentity;
  FixedPointFormat fmt = kDefaultFixedPoint;
};

// Element-wise activation layer: reconstruct, truncate, activate, re-mask.
Circuit make_activation_circuit(const ActivationCircuitSpec& spec);

struct SoftmaxCircuitSpec {
  std::uint64_t t = 0;
  std::size_t count = 0;          // row length n (tokens attended over)
  std::size_t frac_shift = 0;     // truncation of the incoming QK products
  FixedPointFormat fmt = kDefaultFixedPoint;
  int exp_segments_log2 = 5;
};

// Exact fixed-point SoftMax over one attention row: max-subtraction, PWL
// exp, sum, per-element division, re-masking.
Circuit make_softmax_circuit(const SoftmaxCircuitSpec& spec);

// Reference fixed-point softmax semantics (plain, for tests and the
// fixed-point plaintext model): mirrors the circuit bit-for-bit.
std::vector<std::int64_t> fixed_softmax_reference(
    const std::vector<std::int64_t>& x, std::size_t frac_shift,
    const FixedPointFormat& fmt, int exp_segments_log2 = 5);

// Reference PWL evaluation matching pwl_apply.
std::int64_t pwl_reference(std::int64_t x_raw, const PwlSpec& spec,
                           const FixedPointFormat& fmt);

// Reference activation matching make_activation_circuit.
std::int64_t activation_reference(std::int64_t x_raw, std::size_t frac_shift,
                                  Activation act, const FixedPointFormat& fmt);

double gelu_double(double x);

// The 1/sqrt PWL spec shared by the fixed LayerNorm reference (nn/model)
// and the GC layer-norm circuit.
PwlSpec layernorm_rsqrt_spec();

// LayerNorm with residual input (one Transformer row).  The circuit
// computes, over shares mod t,
//     y = LayerNorm( saturate(residual + truncate(acc)) ) - Rc
// where `acc` is an untruncated linear-layer accumulation (2*frac bits),
// `residual` is a raw 15-bit value, and gamma/beta are garbler-known model
// constants baked into the circuit.  Semantics mirror
// nn fixed_layernorm_row (truncating division by d, shared rsqrt PWL).
struct LayerNormCircuitSpec {
  std::uint64_t t = 0;
  std::size_t d = 0;                 // row width
  std::size_t frac_shift = 0;        // truncation of acc before the add
  std::vector<std::int64_t> gamma;   // raw fixed point, size d
  std::vector<std::int64_t> beta;    // raw fixed point, size d
  FixedPointFormat fmt = kDefaultFixedPoint;
};

// Input layout: [garbler: acc shares (d), residual shares (d)]
//               [evaluator: acc shares (d), residual shares (d), Rc (d)].
Circuit make_layernorm_circuit(const LayerNormCircuitSpec& spec);

// Signed truncating (toward zero) division by a constant — exposed for the
// layer-norm circuit tests.
SignedBus sdiv_const(CircuitBuilder& b, const SignedBus& v, std::uint64_t d);

}  // namespace primer
