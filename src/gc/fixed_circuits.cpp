#include "gc/fixed_circuits.h"

#include <cmath>
#include <stdexcept>

namespace primer {

namespace {

// Signed comparison via subtraction sign (buses must be wide enough that
// x - y cannot overflow, which holds for all 15-bit payloads in >= 17-bit
// buses used here).
std::int32_t lt_signed(CircuitBuilder& b, const Bus& x, const Bus& y) {
  const Bus d = b.sub(x, y);
  return d.back();
}

Bus shift_left(CircuitBuilder& b, const Bus& a, std::size_t k) {
  Bus out(a.size(), b.zero());
  for (std::size_t i = k; i < a.size(); ++i) out[i] = a[i - k];
  return out;
}

// PWL table shared by circuit construction and the int64 reference.  Slopes
// carry kSlopeExtraBits more fractional precision than the value format so
// slope-quantization error does not dominate the approximation error.
constexpr int kSlopeExtraBits = 6;

struct PwlTable {
  std::int64_t lo_raw = 0;
  std::int64_t hi_raw = 0;
  std::size_t seg_shift = 0;  // log2 of raw segment width
  std::vector<std::int64_t> slope_raw;       // frac + kSlopeExtraBits bits
  std::vector<std::int64_t> intercept_raw;   // frac bits
};

PwlTable make_pwl_table(const PwlSpec& spec, const FixedPointFormat& fmt) {
  PwlTable tb;
  tb.lo_raw = fp_encode(spec.lo, fmt);
  tb.hi_raw = fp_encode(spec.hi, fmt);
  const std::int64_t range = tb.hi_raw - tb.lo_raw;
  if (range <= 0 || (range & (range - 1)) != 0) {
    throw std::invalid_argument(
        "PwlSpec: (hi-lo)*scale must be a positive power of two");
  }
  int range_log2 = 0;
  while ((std::int64_t{1} << range_log2) < range) ++range_log2;
  if (spec.segments_log2 > range_log2) {
    throw std::invalid_argument("PwlSpec: more segments than raw steps");
  }
  tb.seg_shift = static_cast<std::size_t>(range_log2 - spec.segments_log2);
  const std::size_t segs = std::size_t{1} << spec.segments_log2;
  const std::int64_t seg_raw = range >> spec.segments_log2;
  for (std::size_t s = 0; s < segs; ++s) {
    const std::int64_t a_raw = tb.lo_raw + static_cast<std::int64_t>(s) * seg_raw;
    const std::int64_t b_raw = a_raw + seg_raw;
    const double a = fp_decode(a_raw, fmt);
    const double bx = fp_decode(b_raw, fmt);
    const double fa = spec.fn(a);
    const double fb = spec.fn(bx);
    const double slope = (fb - fa) / (bx - a);
    const double intercept = fa - slope * a;
    const double slope_scale =
        static_cast<double>(std::int64_t{1} << (fmt.frac_bits + kSlopeExtraBits));
    tb.slope_raw.push_back(
        static_cast<std::int64_t>(std::nearbyint(slope * slope_scale)));
    tb.intercept_raw.push_back(fp_encode(intercept, fmt));
  }
  return tb;
}

// Binary mux tree selecting a constant by index bits (LSB-first).
Bus select_constant(CircuitBuilder& b, const Bus& idx_bits,
                    const std::vector<std::int64_t>& values, std::size_t width,
                    std::size_t base, std::size_t count) {
  if (count == 1) {
    // Two's-complement constant, truncated to `width` bits.
    return b.constant_bus(static_cast<std::uint64_t>(values[base]), width);
  }
  const std::size_t half = count / 2;
  Bus idx_rest(idx_bits.begin(), idx_bits.end() - 1);
  const Bus low = select_constant(b, idx_rest, values, width, base, half);
  const Bus high =
      select_constant(b, idx_rest, values, width, base + half, half);
  return b.mux(idx_bits.back(), high, low);
}

SignedBus clamp15(CircuitBuilder& b, const SignedBus& v,
                  const FixedPointFormat& fmt) {
  const std::size_t w = v.bits.size();
  const Bus maxc = b.constant_bus(static_cast<std::uint64_t>(fmt.max_raw()), w);
  const Bus minc = b.constant_bus(static_cast<std::uint64_t>(fmt.min_raw()), w);
  Bus r = b.mux(lt_signed(b, maxc, v.bits), maxc, v.bits);
  r = b.mux(lt_signed(b, r, minc), minc, r);
  return SignedBus{r};
}

std::int64_t clamp15_ref(std::int64_t v, const FixedPointFormat& fmt) {
  return fp_saturate(v, fmt);
}

}  // namespace

double gelu_double(double x) {
  return 0.5 * x * (1.0 + std::erf(x / std::sqrt(2.0)));
}

PwlSpec layernorm_rsqrt_spec() {
  // 1/sqrt over (0, 16) with the singularity clamped at 1/64; 64 segments.
  return PwlSpec{0.0, 16.0, 6, [](double x) {
                   return 1.0 / std::sqrt(std::max(x, 1.0 / 64.0));
                 }};
}

std::size_t share_width(std::uint64_t t) {
  std::size_t w = 0;
  while ((std::uint64_t{1} << w) < t) ++w;
  return w;
}

SignedBus reconstruct_centered(CircuitBuilder& b, const Bus& sa, const Bus& sb,
                               std::uint64_t t) {
  const Bus x = b.add_mod(sa, sb, t);
  const std::size_t sw = x.size() + 1;
  const Bus x_ext = b.zero_extend(x, sw);
  // Negative iff x > t/2 (fp_from_ring convention).
  const std::int32_t is_neg = b.ge_const(x_ext, t / 2 + 1);
  const Bus x_minus_t = b.sub_const(x_ext, t);  // wraps to two's complement
  return SignedBus{b.mux(is_neg, x_minus_t, x_ext)};
}

Bus embed_mod_t(CircuitBuilder& b, const SignedBus& v, std::uint64_t t) {
  const std::int32_t neg = v.bits.back();
  const Bus plus_t = b.add_const(v.bits, t);
  const std::size_t w = share_width(t);
  return b.truncate_bus(b.mux(neg, plus_t, v.bits), w);
}

SignedBus truncate_frac(CircuitBuilder& b, const SignedBus& v,
                        std::size_t frac_bits) {
  return SignedBus{b.asr(v.bits, frac_bits)};
}

SignedBus relu_signed(CircuitBuilder& b, const SignedBus& v) {
  const Bus zero = b.constant_bus(0, v.bits.size());
  return SignedBus{b.mux(v.bits.back(), zero, v.bits)};
}

SignedBus max_signed(CircuitBuilder& b, const SignedBus& x,
                     const SignedBus& y) {
  const std::int32_t x_lt_y = lt_signed(b, x.bits, y.bits);
  return SignedBus{b.mux(x_lt_y, y.bits, x.bits)};
}

SignedBus pwl_apply(CircuitBuilder& b, const SignedBus& x, const PwlSpec& spec,
                    const FixedPointFormat& fmt) {
  const PwlTable tb = make_pwl_table(spec, fmt);
  const std::size_t sw = x.bits.size();
  // Clamp into [lo, hi].
  const Bus lo_bus = b.constant_bus(static_cast<std::uint64_t>(tb.lo_raw), sw);
  // Clamp to hi-1 ulp so x == hi cannot index one past the last segment.
  const Bus hi_bus =
      b.constant_bus(static_cast<std::uint64_t>(tb.hi_raw - 1), sw);
  Bus xc = b.mux(lt_signed(b, x.bits, lo_bus), lo_bus, x.bits);
  xc = b.mux(lt_signed(b, hi_bus, xc), hi_bus, xc);
  // Segment index = bits [seg_shift, seg_shift + k) of (xc - lo).
  const Bus off = b.sub(xc, lo_bus);  // non-negative, < range
  Bus idx;
  for (int i = 0; i < spec.segments_log2; ++i) {
    idx.push_back(off[tb.seg_shift + static_cast<std::size_t>(i)]);
  }
  // Widen so the (value x slope) product cannot overflow: payload bits +
  // slope bits + sign headroom.
  const std::size_t pw = sw + fmt.frac_bits + kSlopeExtraBits + 2;
  const std::size_t segs = tb.slope_raw.size();
  const Bus slope = select_constant(b, idx, tb.slope_raw, pw, 0, segs);
  const Bus intercept = select_constant(b, idx, tb.intercept_raw, pw, 0, segs);
  // y = (x * slope) >> (frac + extra) + intercept, signed mod-2^pw.
  Bus prod = b.mul(b.sign_extend(xc, pw), slope, pw);
  prod = b.asr(prod, static_cast<std::size_t>(fmt.frac_bits + kSlopeExtraBits));
  const Bus y = b.add(prod, intercept);
  // Truncate back to the caller's bus width — safe because the PWL output
  // fits the 15-bit value format, far below 2^{sw-1}.
  return SignedBus{b.truncate_bus(y, sw)};
}

std::int64_t pwl_reference(std::int64_t x_raw, const PwlSpec& spec,
                           const FixedPointFormat& fmt) {
  const PwlTable tb = make_pwl_table(spec, fmt);
  std::int64_t xc = std::clamp(x_raw, tb.lo_raw, tb.hi_raw - 1);
  const std::size_t seg =
      static_cast<std::size_t>((xc - tb.lo_raw) >> tb.seg_shift) &
      (tb.slope_raw.size() - 1);
  const std::int64_t prod =
      (xc * tb.slope_raw[seg]) >> (fmt.frac_bits + kSlopeExtraBits);
  return prod + tb.intercept_raw[seg];
}

Circuit make_activation_circuit(const ActivationCircuitSpec& spec) {
  CircuitBuilder b;
  const std::size_t w = share_width(spec.t);
  const Bus sg = b.add_input_bus(w * spec.count);
  const Bus se = b.add_input_bus(w * spec.count);
  const Bus rc = b.add_input_bus(w * spec.count);

  for (std::size_t i = 0; i < spec.count; ++i) {
    const Bus sgi(sg.begin() + static_cast<long>(i * w),
                  sg.begin() + static_cast<long>((i + 1) * w));
    const Bus sei(se.begin() + static_cast<long>(i * w),
                  se.begin() + static_cast<long>((i + 1) * w));
    const Bus rci(rc.begin() + static_cast<long>(i * w),
                  rc.begin() + static_cast<long>((i + 1) * w));
    SignedBus v = reconstruct_centered(b, sgi, sei, spec.t);
    if (spec.frac_shift > 0) v = truncate_frac(b, v, spec.frac_shift);
    v = clamp15(b, v, spec.fmt);
    switch (spec.act) {
      case Activation::kIdentity:
        break;
      case Activation::kRelu:
        v = relu_signed(b, v);
        break;
      case Activation::kGelu: {
        PwlSpec pwl{-4.0, 4.0, 5, &gelu_double};
        SignedBus g = pwl_apply(b, v, pwl, spec.fmt);
        // Above the PWL range GELU(x) = x.
        const Bus hi =
            b.constant_bus(static_cast<std::uint64_t>(fp_encode(4.0, spec.fmt)),
                           v.bits.size());
        const std::int32_t above = lt_signed(b, hi, v.bits);
        v = SignedBus{b.mux(above, v.bits, g.bits)};
        break;
      }
    }
    const Bus masked = b.sub_mod(embed_mod_t(b, v, spec.t), rci, spec.t);
    b.append_outputs(masked);
  }
  return b.build();
}

std::int64_t activation_reference(std::int64_t x_raw, std::size_t frac_shift,
                                  Activation act,
                                  const FixedPointFormat& fmt) {
  std::int64_t v = x_raw >> frac_shift;
  v = clamp15_ref(v, fmt);
  switch (act) {
    case Activation::kIdentity:
      return v;
    case Activation::kRelu:
      return v < 0 ? 0 : v;
    case Activation::kGelu: {
      PwlSpec pwl{-4.0, 4.0, 5, &gelu_double};
      if (v > fp_encode(4.0, fmt)) return v;
      return pwl_reference(v, pwl, fmt);
    }
  }
  return v;
}

Circuit make_softmax_circuit(const SoftmaxCircuitSpec& spec) {
  CircuitBuilder b;
  const std::size_t w = share_width(spec.t);
  const std::size_t n = spec.count;
  const Bus sg = b.add_input_bus(w * n);
  const Bus se = b.add_input_bus(w * n);
  const Bus rc = b.add_input_bus(w * n);

  std::vector<SignedBus> vals;
  vals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Bus sgi(sg.begin() + static_cast<long>(i * w),
                  sg.begin() + static_cast<long>((i + 1) * w));
    const Bus sei(se.begin() + static_cast<long>(i * w),
                  se.begin() + static_cast<long>((i + 1) * w));
    SignedBus v = reconstruct_centered(b, sgi, sei, spec.t);
    if (spec.frac_shift > 0) v = truncate_frac(b, v, spec.frac_shift);
    v = clamp15(b, v, spec.fmt);
    vals.push_back(v);
  }

  // Row max for numerical stability of the PWL exp.
  SignedBus m = vals[0];
  for (std::size_t i = 1; i < n; ++i) m = max_signed(b, m, vals[i]);

  const PwlSpec exp_spec{-8.0, 0.0, spec.exp_segments_log2,
                         [](double x) { return std::exp(x); }};
  std::vector<Bus> exps;
  exps.reserve(n);
  const std::size_t sw = vals[0].bits.size();
  Bus sum = b.constant_bus(0, sw);
  for (std::size_t i = 0; i < n; ++i) {
    const SignedBus d{b.sub(vals[i].bits, m.bits)};
    SignedBus e = pwl_apply(b, d, exp_spec, spec.fmt);
    // exp output is non-negative by construction of the table, but the PWL
    // arithmetic can undershoot by an ulp near -8; clamp at zero.
    e = relu_signed(b, e);
    exps.push_back(e.bits);
    sum = b.add(sum, e.bits);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const Bus rci(rc.begin() + static_cast<long>(i * w),
                  rc.begin() + static_cast<long>((i + 1) * w));
    // out = (e_i << frac) / sum — exact fixed-point normalization.
    const Bus dividend =
        shift_left(b, exps[i], static_cast<std::size_t>(spec.fmt.frac_bits));
    const Bus q = b.div(dividend, sum);
    const Bus masked = b.sub_mod(embed_mod_t(b, SignedBus{q}, spec.t), rci,
                                 spec.t);
    b.append_outputs(masked);
  }
  return b.build();
}

SignedBus sdiv_const(CircuitBuilder& b, const SignedBus& v, std::uint64_t d) {
  // |v| / d with truncation toward zero, then sign restoration — matching
  // C++ integer division semantics used by the fixed reference.
  const std::int32_t neg = v.bits.back();
  const Bus abs_v = b.mux(neg, b.negate(v.bits), v.bits);
  const Bus q = b.div(abs_v, b.constant_bus(d, v.bits.size()));
  return SignedBus{b.mux(neg, b.negate(q), q)};
}

Circuit make_layernorm_circuit(const LayerNormCircuitSpec& spec) {
  CircuitBuilder b;
  const std::size_t w = share_width(spec.t);
  const std::size_t d = spec.d;
  const Bus acc_g = b.add_input_bus(w * d);
  const Bus res_g = b.add_input_bus(w * d);
  const Bus acc_e = b.add_input_bus(w * d);
  const Bus res_e = b.add_input_bus(w * d);
  const Bus rc = b.add_input_bus(w * d);

  auto slice = [&](const Bus& bus, std::size_t i) {
    return Bus(bus.begin() + static_cast<long>(i * w),
               bus.begin() + static_cast<long>((i + 1) * w));
  };

  // Reconstruct s_i = saturate(residual + truncate(acc)).
  std::vector<SignedBus> s(d);
  const std::size_t sw = w + 1;
  for (std::size_t i = 0; i < d; ++i) {
    SignedBus acc = reconstruct_centered(b, slice(acc_g, i), slice(acc_e, i),
                                         spec.t);
    if (spec.frac_shift > 0) acc = truncate_frac(b, acc, spec.frac_shift);
    acc = clamp15(b, acc, spec.fmt);
    const SignedBus res = reconstruct_centered(b, slice(res_g, i),
                                               slice(res_e, i), spec.t);
    SignedBus sum{b.add(acc.bits, res.bits)};
    s[i] = clamp15(b, sum, spec.fmt);
  }

  // Row statistics.  Values are 15-bit; sums fit in sw + log2(d) bits.
  Bus total = b.sign_extend(s[0].bits, sw + 8);
  for (std::size_t i = 1; i < d; ++i) {
    total = b.add(total, b.sign_extend(s[i].bits, sw + 8));
  }
  const SignedBus mean = sdiv_const(b, SignedBus{total}, d);

  // Centered values and variance.  c_i fits 17 bits; narrow before squaring.
  const std::size_t cw = 18;
  std::vector<Bus> c(d);
  Bus var_sum = b.constant_bus(0, sw + 8);
  for (std::size_t i = 0; i < d; ++i) {
    const Bus diff =
        b.sub(b.sign_extend(s[i].bits, sw + 8), mean.bits);
    c[i] = b.truncate_bus(diff, cw);
    const Bus sq = b.mul(b.sign_extend(c[i], 2 * cw), b.sign_extend(c[i], 2 * cw),
                         2 * cw);
    const Bus sq_shift = b.asr(sq, static_cast<std::size_t>(spec.fmt.frac_bits));
    var_sum = b.add(var_sum, b.sign_extend(sq_shift, sw + 8));
  }
  const SignedBus var = sdiv_const(b, SignedBus{var_sum}, d);
  SignedBus rstd = pwl_apply(b, SignedBus{b.truncate_bus(var.bits, sw)},
                             layernorm_rsqrt_spec(), spec.fmt);

  // Per-element affine output, masked.
  for (std::size_t i = 0; i < d; ++i) {
    const std::size_t mw = cw + 16;
    Bus norm = b.mul(b.sign_extend(c[i], mw), b.sign_extend(rstd.bits, mw), mw);
    norm = b.asr(norm, static_cast<std::size_t>(spec.fmt.frac_bits));
    SignedBus n15 = clamp15(b, SignedBus{norm}, spec.fmt);
    Bus scaled = b.mul(
        n15.bits,
        b.constant_bus(static_cast<std::uint64_t>(spec.gamma[i]), mw), mw);
    scaled = b.asr(scaled, static_cast<std::size_t>(spec.fmt.frac_bits));
    Bus out = b.add(
        scaled, b.constant_bus(static_cast<std::uint64_t>(spec.beta[i]), mw));
    SignedBus o15 = clamp15(b, SignedBus{out}, spec.fmt);
    const SignedBus widened{b.sign_extend(o15.bits, sw)};
    const Bus masked =
        b.sub_mod(embed_mod_t(b, widened, spec.t), slice(rc, i), spec.t);
    b.append_outputs(masked);
  }
  return b.build();
}

std::vector<std::int64_t> fixed_softmax_reference(
    const std::vector<std::int64_t>& x, std::size_t frac_shift,
    const FixedPointFormat& fmt, int exp_segments_log2) {
  std::vector<std::int64_t> v(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    v[i] = clamp15_ref(x[i] >> frac_shift, fmt);
  }
  std::int64_t m = v[0];
  for (const auto val : v) m = std::max(m, val);
  const PwlSpec exp_spec{-8.0, 0.0, exp_segments_log2,
                         [](double y) { return std::exp(y); }};
  std::vector<std::int64_t> e(v.size());
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    e[i] = std::max<std::int64_t>(0, pwl_reference(v[i] - m, exp_spec, fmt));
    sum += e[i];
  }
  std::vector<std::int64_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = (e[i] << fmt.frac_bits) / sum;
  }
  return out;
}

}  // namespace primer
