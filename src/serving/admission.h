// Admission-control vocabulary for the serving runtime.
//
// A saturated server must degrade predictably: either the newest request is
// shed with a typed, retryable rejection the client can back off on, or —
// when the operator prefers liveness of fresh traffic over stuck tenants —
// the longest-stalled in-flight session is evicted to make room.  Both
// decisions are visible in ServerStats, and a shed request costs the server
// O(1) work.
#pragma once

#include <cstddef>
#include <string>

#include "net/frame.h"

namespace primer {

// What the server does when admission limits are hit.
enum class LoadShedPolicy {
  // Refuse the incoming request with ServerOverloaded; running sessions are
  // never disturbed.  The default: strict isolation, clients retry later.
  kRejectNewest,
  // If some running session has shown no progress beat for longer than the
  // stall grace, cancel it (outcome kEvicted) and admit the newcomer; with
  // no stalled session to reclaim, fall back to rejecting the newcomer.
  kEvictLongestStalled,
};

inline const char* load_shed_policy_name(LoadShedPolicy p) {
  switch (p) {
    case LoadShedPolicy::kRejectNewest: return "reject_newest";
    case LoadShedPolicy::kEvictLongestStalled: return "evict_longest_stalled";
  }
  return "unknown";
}

// Typed, retryable admission rejection.  Retryable by design: overload is
// transient, and a client that backs off and resubmits may well be admitted
// — its checkpoint store (if any) is untouched by the shed.
class ServerOverloaded : public ProtocolError {
 public:
  ServerOverloaded(const std::string& why, std::size_t queue_depth,
                   std::size_t in_flight)
      : ProtocolError(ProtocolErrorKind::kServerOverloaded,
                      why + " (queue depth " + std::to_string(queue_depth) +
                          ", in flight " + std::to_string(in_flight) + ")"),
        queue_depth_(queue_depth),
        in_flight_(in_flight) {}

  std::size_t queue_depth() const { return queue_depth_; }
  std::size_t in_flight() const { return in_flight_; }

 private:
  std::size_t queue_depth_;
  std::size_t in_flight_;
};

}  // namespace primer
