// Per-client session state cache for the serving runtime.
//
// The expensive part of a Primer session is not compute but *wire*: the
// multi-MB Galois/relin key transfer plus every ciphertext the protocol
// already moved.  The SessionManager keeps one SessionStore per client
// across requests, so a reconnecting client resumes through the PR 8
// kSessionHello/kSessionResume handshake and replays the checkpointed
// prefix — key material included — at zero wire cost.
//
// With a durable root directory the stores are DurableSessionStores
// (net/session_fs.h) laid out as
//
//   <root>/client_<id>/       the client's checkpoint blobs
//   <root>/client_<id>.fp     its request fingerprint (atomic 8-byte file)
//
// and the constructor re-adopts every client found on disk — so cached
// key material survives a REAL process restart: a returning client's next
// request replays the key transfer at zero wire cost against a freshly
// exec'd server.  Without a root the stores are the in-memory base class
// (the pre-durability behavior, still used by tests and benches).
//
// Isolation rules:
//   * at most one in-flight session per client (two concurrent sessions
//     would race one checkpoint history);
//   * the cache is keyed by a request fingerprint — a client that shows up
//     with different tokens/model gets a cleared store, because replaying a
//     different protocol against an old journal would (correctly) die with
//     kResumeDiverged;
//   * a client whose session died on a *fatal* protocol error is
//     quarantined: its cached keys and checkpoints are dropped (they are
//     untrustworthy) and later requests are refused until released.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "net/session.h"
#include "net/session_fs.h"

namespace primer {

class SessionManager {
 public:
  // In-memory stores only (no durability).
  SessionManager() = default;
  // Durable mode: per-client stores rooted at `store_root` (created if
  // missing); an empty root means in-memory.  Re-adopts every client
  // directory found under the root.
  explicit SessionManager(std::string store_root);

  enum class Acquire {
    kOk,           // lease granted
    kQuarantined,  // client poisoned earlier; request must be refused
    kBusy,         // client already has an in-flight session
  };

  struct Lease {
    SessionStore* store = nullptr;
    // True when the store already held checkpoints for this fingerprint —
    // the resumed run will replay them instead of re-paying the wire.
    bool resumable = false;
  };

  // Grants (or refuses) the client's session slot.  On kOk the lease's
  // store stays valid until release(); on a fingerprint change the store is
  // cleared first.  `why` (optional) receives the quarantine reason.
  Acquire acquire(std::uint64_t client_id, std::uint64_t fingerprint,
                  Lease* lease, std::string* why = nullptr);

  void release(std::uint64_t client_id);

  // Poisons the client: clears its cached key material + checkpoints and
  // refuses future acquires until unquarantine().  Called by the server
  // when a session dies on a fatal (non-retryable) protocol error.
  void quarantine(std::uint64_t client_id, const std::string& reason);
  void unquarantine(std::uint64_t client_id);
  bool is_quarantined(std::uint64_t client_id) const;

  struct Stats {
    std::size_t clients = 0;      // distinct clients seen
    std::size_t quarantined = 0;  // currently poisoned
    std::size_t in_flight = 0;    // leases outstanding
    std::size_t store_bytes = 0;  // persisted checkpoint bytes, all clients
    std::uint64_t resumable_hits = 0;  // leases that found checkpoints
    std::uint64_t resets = 0;          // stores cleared on fingerprint change
    // Durable-storage telemetry, aggregated across every client store
    // (all zero in in-memory mode).
    std::uint64_t recovered_clients = 0;   // re-adopted from disk at boot
    std::uint64_t store_bytes_written = 0;
    std::uint64_t store_fsyncs = 0;
    std::uint64_t store_degradations = 0;  // persists that fell back to RAM
    std::uint64_t store_recovered_blobs = 0;
    std::uint64_t store_quarantined_blobs = 0;
    std::size_t stores_degraded = 0;       // stores currently memory-only
  };
  Stats stats() const;

  bool durable() const { return !store_root_.empty(); }
  const std::string& store_root() const { return store_root_; }

 private:
  struct ClientState {
    // Polymorphic seam: an in-memory SessionStore or a DurableSessionStore,
    // chosen by the manager's mode.
    std::unique_ptr<SessionStore> store;
    std::uint64_t fingerprint = 0;
    bool in_flight = false;
    bool quarantined = false;
    std::string quarantine_reason;
  };

  // Creates the state (and its store) for a client id; caller holds mu_.
  ClientState& client_locked(std::uint64_t client_id);
  std::string client_dir(std::uint64_t client_id) const;
  std::string fingerprint_path(std::uint64_t client_id) const;
  void persist_fingerprint(std::uint64_t client_id, std::uint64_t fp);
  // Boot-time re-adoption of client_<id>/ directories under the root.
  void adopt_existing_clients();

  // unique_ptr keeps ClientState (and the SessionStore a worker holds a
  // lease on) at a stable address while the map rehashes under new clients.
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::unique_ptr<ClientState>> clients_;
  std::string store_root_;
  std::uint64_t resumable_hits_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t recovered_clients_ = 0;
};

}  // namespace primer
