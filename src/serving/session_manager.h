// Per-client session state cache for the serving runtime.
//
// The expensive part of a Primer session is not compute but *wire*: the
// multi-MB Galois/relin key transfer plus every ciphertext the protocol
// already moved.  The SessionManager keeps one SessionStore per client
// across requests, so a reconnecting client resumes through the PR 8
// kSessionHello/kSessionResume handshake and replays the checkpointed
// prefix — key material included — at zero wire cost.
//
// Isolation rules:
//   * at most one in-flight session per client (two concurrent sessions
//     would race one checkpoint history);
//   * the cache is keyed by a request fingerprint — a client that shows up
//     with different tokens/model gets a cleared store, because replaying a
//     different protocol against an old journal would (correctly) die with
//     kResumeDiverged;
//   * a client whose session died on a *fatal* protocol error is
//     quarantined: its cached keys and checkpoints are dropped (they are
//     untrustworthy) and later requests are refused until released.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "net/session.h"

namespace primer {

class SessionManager {
 public:
  enum class Acquire {
    kOk,           // lease granted
    kQuarantined,  // client poisoned earlier; request must be refused
    kBusy,         // client already has an in-flight session
  };

  struct Lease {
    SessionStore* store = nullptr;
    // True when the store already held checkpoints for this fingerprint —
    // the resumed run will replay them instead of re-paying the wire.
    bool resumable = false;
  };

  // Grants (or refuses) the client's session slot.  On kOk the lease's
  // store stays valid until release(); on a fingerprint change the store is
  // cleared first.  `why` (optional) receives the quarantine reason.
  Acquire acquire(std::uint64_t client_id, std::uint64_t fingerprint,
                  Lease* lease, std::string* why = nullptr);

  void release(std::uint64_t client_id);

  // Poisons the client: clears its cached key material + checkpoints and
  // refuses future acquires until unquarantine().  Called by the server
  // when a session dies on a fatal (non-retryable) protocol error.
  void quarantine(std::uint64_t client_id, const std::string& reason);
  void unquarantine(std::uint64_t client_id);
  bool is_quarantined(std::uint64_t client_id) const;

  struct Stats {
    std::size_t clients = 0;      // distinct clients seen
    std::size_t quarantined = 0;  // currently poisoned
    std::size_t in_flight = 0;    // leases outstanding
    std::size_t store_bytes = 0;  // persisted checkpoint bytes, all clients
    std::uint64_t resumable_hits = 0;  // leases that found checkpoints
    std::uint64_t resets = 0;          // stores cleared on fingerprint change
  };
  Stats stats() const;

 private:
  struct ClientState {
    SessionStore store;
    std::uint64_t fingerprint = 0;
    bool in_flight = false;
    bool quarantined = false;
    std::string quarantine_reason;
  };

  // unique_ptr keeps ClientState (and the SessionStore a worker holds a
  // lease on) at a stable address while the map rehashes under new clients.
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::unique_ptr<ClientState>> clients_;
  std::uint64_t resumable_hits_ = 0;
  std::uint64_t resets_ = 0;
};

}  // namespace primer
