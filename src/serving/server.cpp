#include "serving/server.h"

#include <algorithm>
#include <chrono>

#include "common/serialize.h"
#include "net/crc32c.h"

namespace primer {

const char* session_status_name(SessionStatus s) {
  switch (s) {
    case SessionStatus::kCompleted: return "completed";
    case SessionStatus::kShed: return "shed";
    case SessionStatus::kRejected: return "rejected";
    case SessionStatus::kEvicted: return "evicted";
    case SessionStatus::kDrained: return "drained";
    case SessionStatus::kFailed: return "failed";
    case SessionStatus::kPoisoned: return "poisoned";
  }
  return "unknown";
}

SessionOutcome SessionTicket::wait() const {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return done_; });
  return outcome_;
}

bool SessionTicket::done() const {
  std::lock_guard<std::mutex> lk(mu_);
  return done_;
}

PrimerServer::PrimerServer(std::vector<ModelSpec> models, ServerConfig cfg)
    : models_(std::move(models)), cfg_(cfg), sessions_(cfg.store_dir) {
  if (models_.empty()) {
    throw std::invalid_argument("PrimerServer: at least one model required");
  }
  const std::size_t n = std::max<std::size_t>(1, cfg_.workers);
  cfg_.workers = n;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PrimerServer::~PrimerServer() {
  drain(cfg_.drain_deadline_s);
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::uint64_t PrimerServer::request_fingerprint(
    const InferenceRequest& req) const {
  const ModelSpec& spec = models_[req.model];
  ByteWriter w;
  w.u64(req.model);
  w.u64(spec.seed);
  w.u8(static_cast<std::uint8_t>(spec.variant));
  w.u8(static_cast<std::uint8_t>(spec.profile));
  w.u64(req.tokens.size());
  for (const std::size_t t : req.tokens) w.u64(t);
  const std::uint32_t crc = crc32c(w.data().data(), w.size());
  // Never 0: the SessionManager uses fingerprint 0 as "no prior request".
  return (static_cast<std::uint64_t>(crc) << 1) | 1u;
}

bool PrimerServer::evict_longest_stalled_locked() {
  std::shared_ptr<SessionTicket> victim;
  double worst = cfg_.stall_grace_s;
  for (const auto& t : running_) {
    if (t->evicted_.load(std::memory_order_relaxed)) continue;
    const double age = t->progress_.seconds_since_beat();
    if (age > worst) {
      worst = age;
      victim = t;
    }
  }
  if (victim == nullptr) return false;
  victim->evicted_.store(true, std::memory_order_seq_cst);
  victim->cancel_.cancel("evicted: no progress beat for " +
                         std::to_string(worst) + "s (stall grace " +
                         std::to_string(cfg_.stall_grace_s) + "s)");
  return true;
}

std::shared_ptr<SessionTicket> PrimerServer::submit(InferenceRequest req) {
  std::string why;
  auto t = try_submit(std::move(req), &why);
  if (t == nullptr) {
    std::size_t depth = 0, running = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      depth = queue_.size();
      running = running_.size();
    }
    throw ServerOverloaded(why, depth, running);
  }
  return t;
}

std::shared_ptr<SessionTicket> PrimerServer::try_submit(InferenceRequest req,
                                                        std::string* why) {
  if (req.client_id == 0) {
    throw std::invalid_argument("PrimerServer::submit: client_id must be nonzero");
  }
  if (req.model >= models_.size()) {
    throw std::invalid_argument("PrimerServer::submit: model index " +
                                std::to_string(req.model) + " out of range");
  }
  auto shed = [&](const std::string& reason) -> std::shared_ptr<SessionTicket> {
    if (why != nullptr) *why = reason;
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++counters_.shed;
    return nullptr;
  };
  if (draining()) return shed("server draining");
  std::shared_ptr<SessionTicket> t(new SessionTicket(std::move(req)));
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) return shed("server stopped");
    if (queue_.size() >= cfg_.max_queue) {
      // Saturated.  Either reclaim a stalled session's slot or shed.
      if (cfg_.policy != LoadShedPolicy::kEvictLongestStalled ||
          !evict_longest_stalled_locked()) {
        return shed("admission queue full");
      }
    }
    queue_.push_back(t);
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++counters_.accepted;
  }
  work_cv_.notify_one();
  return t;
}

void PrimerServer::worker_loop() {
  for (;;) {
    std::shared_ptr<SessionTicket> t;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      t = queue_.front();
      queue_.pop_front();
      running_.push_back(t);
    }
    serve(t);
    {
      std::lock_guard<std::mutex> lk(mu_);
      running_.erase(std::find(running_.begin(), running_.end(), t));
    }
    idle_cv_.notify_all();
  }
}

void PrimerServer::serve(const std::shared_ptr<SessionTicket>& t) {
  SessionOutcome out;
  out.client_id = t->req_.client_id;
  out.wait_s = t->queued_.seconds();
  t->started_.store(true, std::memory_order_release);
  t->progress_.beat("starting");
  Stopwatch service;

  // Per-client session slot: quarantined and duplicate-in-flight clients
  // are refused before any protocol work.
  SessionManager::Lease lease;
  std::string why;
  switch (sessions_.acquire(t->req_.client_id, request_fingerprint(t->req_),
                            &lease, &why)) {
    case SessionManager::Acquire::kQuarantined:
      out.status = SessionStatus::kRejected;
      out.error = "client quarantined: " + why;
      out.service_s = service.seconds();
      finish(t, std::move(out));
      return;
    case SessionManager::Acquire::kBusy:
      out.status = SessionStatus::kRejected;
      out.error = why;
      out.service_s = service.seconds();
      finish(t, std::move(out));
      return;
    case SessionManager::Acquire::kOk:
      break;
  }

  const ModelSpec& spec = models_[t->req_.model];
  PrimerEngine engine(spec.weights, spec.variant, spec.profile, spec.seed);
  SessionOptions opts;
  opts.store = lease.store;
  opts.session_id = t->req_.client_id;
  opts.faults = t->req_.faults;
  opts.retry = t->req_.retry;
  opts.phase_deadline_s = cfg_.phase_deadline_s;
  opts.cancel = &t->cancel_;
  opts.progress = &t->progress_;
  opts.drain = &drain_flag_;
  const std::string who =
      "client " + std::to_string(t->req_.client_id) + " session";

  int restarts = 0;
  for (;;) {
    if (t->evicted_.load(std::memory_order_seq_cst)) {
      out.status = SessionStatus::kEvicted;
      out.error = t->cancel_.reason();
      break;
    }
    try {
      DeadlineWatchdog watchdog(t->cancel_, cfg_.session_wall_budget_s, who);
      PrimerRunResult r = engine.run_with_options(t->req_.tokens, opts);
      r.restarts = restarts;
      out.status = SessionStatus::kCompleted;
      out.result = std::move(r);
      break;
    } catch (const SessionDrained& e) {
      out.status = SessionStatus::kDrained;
      out.checkpoint_epoch = e.epoch();
      out.error = e.what();
      break;
    } catch (const ProtocolError& e) {
      out.error_kind = e.kind();
      if (!e.retryable()) {
        // Structurally hostile traffic or forked checkpoint history: no
        // retry can fix this client.  Poison it — cached keys included.
        out.status = SessionStatus::kPoisoned;
        out.error = e.what();
        sessions_.quarantine(t->req_.client_id, e.what());
        break;
      }
      if (restarts >= cfg_.max_restarts) {
        out.status = SessionStatus::kFailed;
        out.error = e.what();
        break;
      }
      ++restarts;
    } catch (const OperationCancelled& e) {
      if (t->evicted_.load(std::memory_order_seq_cst)) {
        out.status = SessionStatus::kEvicted;
        out.error = e.what();
        break;
      }
      if (draining()) {
        // Force-cancelled at the drain deadline (no boundary reached).
        out.status = SessionStatus::kDrained;
        out.error = e.what();
        break;
      }
      if (restarts >= cfg_.max_restarts) {
        out.status = SessionStatus::kFailed;
        out.error = e.what();
        break;
      }
      ++restarts;
      t->cancel_.reset();
    } catch (const std::exception& e) {
      out.status = SessionStatus::kFailed;
      out.error = e.what();
      break;
    }
    // Retrying: deterministic one-shot triggers already fired; clearing
    // them models the fault not recurring on the fresh attempt.
    opts.faults.kill_after = 0;
    opts.faults.stall_after = 0;
    opts.faults.hostile_after = 0;
  }
  if (out.checkpoint_epoch == 0) out.checkpoint_epoch = t->progress_.epoch();
  out.restarts = restarts;
  sessions_.release(t->req_.client_id);
  out.service_s = service.seconds();
  finish(t, std::move(out));
}

void PrimerServer::finish(const std::shared_ptr<SessionTicket>& t,
                          SessionOutcome out) {
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    switch (out.status) {
      case SessionStatus::kCompleted:
        ++counters_.completed;
        latencies_s_.push_back(out.wait_s + out.service_s);
        break;
      case SessionStatus::kShed: ++counters_.shed; break;
      case SessionStatus::kRejected: ++counters_.rejected; break;
      case SessionStatus::kEvicted: ++counters_.evicted; break;
      case SessionStatus::kDrained: ++counters_.drained; break;
      case SessionStatus::kFailed: ++counters_.failed; break;
      case SessionStatus::kPoisoned: ++counters_.poisoned; break;
    }
  }
  {
    std::lock_guard<std::mutex> lk(t->mu_);
    t->outcome_ = std::move(out);
    t->done_ = true;
  }
  t->cv_.notify_all();
}

ServerStats PrimerServer::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s = counters_;
    if (!latencies_s_.empty()) {
      std::vector<double> v = latencies_s_;
      std::sort(v.begin(), v.end());
      s.p50_latency_s = v[v.size() / 2];
      s.p99_latency_s = v[std::min(v.size() - 1, (v.size() * 99) / 100)];
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    s.queue_depth = queue_.size();
    s.in_flight = running_.size();
  }
  s.sessions = sessions_.stats();
  return s;
}

DrainReport PrimerServer::drain(double deadline_s) {
  if (deadline_s < 0) deadline_s = cfg_.drain_deadline_s;
  DrainReport report;
  Stopwatch sw;
  ServerStats before = stats();
  drain_flag_.store(true, std::memory_order_seq_cst);

  // Shed everything still queued: those sessions never started, so there
  // is nothing to checkpoint — refuse them with a typed outcome.
  std::deque<std::shared_ptr<SessionTicket>> queued;
  {
    std::lock_guard<std::mutex> lk(mu_);
    queued.swap(queue_);
  }
  for (const auto& t : queued) {
    SessionOutcome out;
    out.client_id = t->req_.client_id;
    out.status = SessionStatus::kShed;
    out.error = "server draining";
    out.wait_s = t->queued_.seconds();
    finish(t, std::move(out));
    ++report.shed_queued;
  }

  // In-flight sessions stop at their next checkpoint boundary
  // (SessionDrained); give them the deadline to get there.
  {
    std::unique_lock<std::mutex> lk(mu_);
    report.met_deadline = idle_cv_.wait_for(
        lk, std::chrono::duration<double>(deadline_s),
        [&] { return running_.empty(); });
    if (!report.met_deadline) {
      // Past the deadline: force-cancel the stragglers.  They resolve as
      // kDrained at their next poll point (frame/step/chunk granularity).
      for (const auto& t : running_) {
        ++report.forced;
        t->cancel_.cancel("drain deadline (" + std::to_string(deadline_s) +
                          "s) expired");
      }
      idle_cv_.wait(lk, [&] { return running_.empty(); });
    }
  }

  const ServerStats after = stats();
  report.drained_running = after.drained - before.drained;
  report.completed_during = after.completed - before.completed;
  report.duration_s = sw.seconds();
  return report;
}

}  // namespace primer
