#include "serving/session_manager.h"

namespace primer {

SessionManager::Acquire SessionManager::acquire(std::uint64_t client_id,
                                                std::uint64_t fingerprint,
                                                Lease* lease,
                                                std::string* why) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = clients_[client_id];
  if (slot == nullptr) slot = std::make_unique<ClientState>();
  ClientState& c = *slot;
  if (c.quarantined) {
    if (why != nullptr) *why = c.quarantine_reason;
    return Acquire::kQuarantined;
  }
  if (c.in_flight) {
    if (why != nullptr) *why = "client already has an in-flight session";
    return Acquire::kBusy;
  }
  if (c.fingerprint != fingerprint) {
    // Different request identity: the old journal describes a different
    // protocol run, so resuming against it would fork.  Start fresh.
    if (c.fingerprint != 0) ++resets_;
    c.store.clear();
    c.fingerprint = fingerprint;
  }
  c.in_flight = true;
  lease->store = &c.store;
  lease->resumable = c.store.latest_epoch(Party::kClient) != 0;
  if (lease->resumable) ++resumable_hits_;
  return Acquire::kOk;
}

void SessionManager::release(std::uint64_t client_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = clients_.find(client_id);
  if (it != clients_.end()) it->second->in_flight = false;
}

void SessionManager::quarantine(std::uint64_t client_id,
                                const std::string& reason) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = clients_[client_id];
  if (slot == nullptr) slot = std::make_unique<ClientState>();
  slot->quarantined = true;
  slot->quarantine_reason = reason;
  // Poisoned history: cached keys and checkpoints came from a session that
  // produced structurally hostile traffic — drop them all.
  slot->store.clear();
  slot->fingerprint = 0;
}

void SessionManager::unquarantine(std::uint64_t client_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = clients_.find(client_id);
  if (it == clients_.end()) return;
  it->second->quarantined = false;
  it->second->quarantine_reason.clear();
}

bool SessionManager::is_quarantined(std::uint64_t client_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = clients_.find(client_id);
  return it != clients_.end() && it->second->quarantined;
}

SessionManager::Stats SessionManager::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.clients = clients_.size();
  for (const auto& [id, c] : clients_) {
    if (c->quarantined) ++s.quarantined;
    if (c->in_flight) ++s.in_flight;
    s.store_bytes += c->store.blob_bytes();
  }
  s.resumable_hits = resumable_hits_;
  s.resets = resets_;
  return s;
}

}  // namespace primer
