#include "serving/session_manager.h"

#include <cstdio>

#include "common/fs.h"

namespace primer {

namespace {

// Parses "client_<decimal id>" directory names from the store root.
bool parse_client_dir(const std::string& name, std::uint64_t* id) {
  const std::string prefix = "client_";
  if (name.size() <= prefix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  std::uint64_t v = 0;
  for (std::size_t i = prefix.size(); i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *id = v;
  return true;
}

}  // namespace

SessionManager::SessionManager(std::string store_root)
    : store_root_(std::move(store_root)) {
  if (store_root_.empty()) return;
  ensure_dir(store_root_);
  adopt_existing_clients();
}

std::string SessionManager::client_dir(std::uint64_t client_id) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "client_%llu",
                static_cast<unsigned long long>(client_id));
  return store_root_ + "/" + buf;
}

std::string SessionManager::fingerprint_path(std::uint64_t client_id) const {
  // Sibling of the client's blob directory, NOT inside it — the store's
  // recovery scan would quarantine any non-checkpoint file it found.
  return client_dir(client_id) + ".fp";
}

void SessionManager::persist_fingerprint(std::uint64_t client_id,
                                         std::uint64_t fp) {
  if (store_root_.empty()) return;
  try {
    if (fp == 0) {
      remove_file(fingerprint_path(client_id));
      return;
    }
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<std::uint8_t>(fp >> (8 * i));
    }
    char name[40];
    std::snprintf(name, sizeof name, "client_%llu.fp",
                  static_cast<unsigned long long>(client_id));
    atomic_write_file(store_root_, name, bytes, sizeof bytes);
  } catch (const FsError&) {
    // Best effort: losing the fingerprint file only costs one extra store
    // reset after a restart, never correctness (a mismatched resume would
    // be caught by digest negotiation anyway).
  }
}

void SessionManager::adopt_existing_clients() {
  for (const std::string& name : list_dir(store_root_)) {
    std::uint64_t id = 0;
    if (!parse_client_dir(name, &id)) continue;
    if (!is_directory(store_root_ + "/" + name)) continue;
    auto state = std::make_unique<ClientState>();
    try {
      state->store = std::make_unique<DurableSessionStore>(client_dir(id));
    } catch (const FsError&) {
      continue;  // unreadable client dir; leave it for manual inspection
    }
    if (const auto fp = read_file(fingerprint_path(id));
        fp.has_value() && fp->size() == 8) {
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>((*fp)[static_cast<std::size_t>(i)])
             << (8 * i);
      }
      state->fingerprint = v;
    }
    // Without a fingerprint the checkpoints are still valid, but the next
    // acquire() will clear them (identity unknown -> treated as changed).
    clients_[id] = std::move(state);
    ++recovered_clients_;
  }
}

SessionManager::ClientState& SessionManager::client_locked(
    std::uint64_t client_id) {
  auto& slot = clients_[client_id];
  if (slot == nullptr) slot = std::make_unique<ClientState>();
  if (slot->store == nullptr) {
    if (!store_root_.empty()) {
      try {
        slot->store =
            std::make_unique<DurableSessionStore>(client_dir(client_id));
      } catch (const FsError&) {
        // Unusable client directory at runtime: degrade this client to an
        // in-memory store rather than refuse service.
        slot->store = std::make_unique<SessionStore>();
      }
    } else {
      slot->store = std::make_unique<SessionStore>();
    }
  }
  return *slot;
}

SessionManager::Acquire SessionManager::acquire(std::uint64_t client_id,
                                                std::uint64_t fingerprint,
                                                Lease* lease,
                                                std::string* why) {
  std::lock_guard<std::mutex> lk(mu_);
  ClientState& c = client_locked(client_id);
  if (c.quarantined) {
    if (why != nullptr) *why = c.quarantine_reason;
    return Acquire::kQuarantined;
  }
  if (c.in_flight) {
    if (why != nullptr) *why = "client already has an in-flight session";
    return Acquire::kBusy;
  }
  if (c.fingerprint != fingerprint) {
    // Different request identity: the old journal describes a different
    // protocol run, so resuming against it would fork.  Start fresh.
    if (c.fingerprint != 0) ++resets_;
    c.store->clear();
    c.fingerprint = fingerprint;
    persist_fingerprint(client_id, fingerprint);
  }
  c.in_flight = true;
  lease->store = c.store.get();
  lease->resumable = c.store->latest_epoch(Party::kClient) != 0;
  if (lease->resumable) ++resumable_hits_;
  return Acquire::kOk;
}

void SessionManager::release(std::uint64_t client_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = clients_.find(client_id);
  if (it != clients_.end()) it->second->in_flight = false;
}

void SessionManager::quarantine(std::uint64_t client_id,
                                const std::string& reason) {
  std::lock_guard<std::mutex> lk(mu_);
  ClientState& c = client_locked(client_id);
  c.quarantined = true;
  c.quarantine_reason = reason;
  // Poisoned history: cached keys and checkpoints came from a session that
  // produced structurally hostile traffic — drop them all, on disk too.
  c.store->clear();
  c.fingerprint = 0;
  persist_fingerprint(client_id, 0);
}

void SessionManager::unquarantine(std::uint64_t client_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = clients_.find(client_id);
  if (it == clients_.end()) return;
  it->second->quarantined = false;
  it->second->quarantine_reason.clear();
}

bool SessionManager::is_quarantined(std::uint64_t client_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = clients_.find(client_id);
  return it != clients_.end() && it->second->quarantined;
}

SessionManager::Stats SessionManager::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.clients = clients_.size();
  for (const auto& [id, c] : clients_) {
    if (c->quarantined) ++s.quarantined;
    if (c->in_flight) ++s.in_flight;
    if (c->store == nullptr) continue;
    s.store_bytes += c->store->blob_bytes();
    const SessionStore::Telemetry t = c->store->telemetry();
    s.store_bytes_written += t.bytes_written;
    s.store_fsyncs += t.fsyncs;
    s.store_degradations += t.degradations;
    s.store_recovered_blobs += t.recovered_blobs;
    s.store_quarantined_blobs += t.quarantined_blobs;
    if (t.degraded) ++s.stores_degraded;
  }
  s.resumable_hits = resumable_hits_;
  s.resets = resets_;
  s.recovered_clients = recovered_clients_;
  return s;
}

}  // namespace primer
