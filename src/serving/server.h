// PrimerServer: overload-safe multi-tenant serving runtime in front of
// PrimerEngine.
//
// A fixed worker pool serves a bounded admission queue of client inference
// requests.  Each admitted request becomes a *session* with its own cancel
// token, progress heartbeat, checkpoint store (cached per client by the
// SessionManager) and typed outcome — so one tenant's hostile frames,
// deadline trips or injected kills can only ever fail that tenant:
//
//   * Admission control: queue depth is capped; a saturated server sheds
//     with a typed retryable ServerOverloaded (policy kRejectNewest) or
//     evicts the longest-stalled running session to admit the newcomer
//     (policy kEvictLongestStalled).  Never an unbounded queue.
//   * Fault containment: retryable transport faults restart the session
//     (resuming from its last checkpoint, injected triggers cleared) up to
//     max_restarts; fatal errors poison the session, quarantine the client
//     and invalidate its cached key material; cancellation is scoped to the
//     session's thread (common/parallel.h thread-local token).
//   * Graceful drain: stop admitting, shed the queue, let in-flight
//     sessions persist a checkpoint at their next phase boundary
//     (SessionDrained), force-cancel stragglers at the drain deadline.
//   * Observability: ServerStats snapshots (accepted/shed/evicted/...,
//     queue depth, p50/p99 latency) plus per-session SessionProgress.
//
// Worker threads dispatch into the global parallel executor one at a time
// (dispatches serialize on the executor lock), so intra-session parallelism
// composes safely with cross-session concurrency; serving deployments
// typically run PRIMER_THREADS=1 and scale across sessions instead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/timing.h"
#include "proto/primer.h"
#include "serving/admission.h"
#include "serving/session_manager.h"

namespace primer {

// One hosted model the server evaluates on behalf of its owner.
struct ModelSpec {
  BertWeightsI weights;
  PrimerVariant variant = PrimerVariant::kFP;
  HeProfile profile = HeProfile::kProto2048;
  std::uint64_t seed = 7;
};

struct ServerConfig {
  std::size_t workers = 4;
  // Cap on *queued* (admitted, not yet running) sessions.  Total load is
  // therefore bounded by max_queue + workers.
  std::size_t max_queue = 16;
  LoadShedPolicy policy = LoadShedPolicy::kRejectNewest;
  // A running session counts as stalled once its progress heartbeat is
  // older than this (wall seconds); only stalled sessions are evictable.
  double stall_grace_s = 5.0;
  // Per-phase simulated+wall budget forwarded to every session (0 = off).
  double phase_deadline_s = 0.0;
  // Per-attempt wall-clock watchdog (0 = off): a session attempt that
  // hangs past this is cancelled and retried/failed like any other fault.
  double session_wall_budget_s = 0.0;
  int max_restarts = 3;
  double drain_deadline_s = 30.0;
  // Root directory for durable per-client checkpoint stores (empty = keep
  // everything in memory).  With a directory set, cached key material and
  // checkpoints survive a real server restart: the next PrimerServer built
  // over the same root re-adopts every client and their first request
  // resumes at zero wire cost.
  std::string store_dir;
};

struct InferenceRequest {
  std::uint64_t client_id = 0;  // nonzero; doubles as the wire session id
  std::size_t model = 0;        // index into the hosted model list
  std::vector<std::size_t> tokens;
  // Per-session injected faults + retry knobs (tests and chaos soaks give
  // each tenant its own failure script; production leaves these default).
  FaultSpec faults;
  RetryPolicy retry;
};

enum class SessionStatus {
  kCompleted,  // logits produced, bit-identical to a standalone run
  kShed,       // never ran: admission refused (overload or drain)
  kRejected,   // never ran: client quarantined or already in flight
  kEvicted,    // cancelled by the load-shedding policy while stalled
  kDrained,    // stopped at a checkpoint boundary by a drain request
  kFailed,     // retryable faults exhausted the restart budget
  kPoisoned,   // fatal protocol error; client quarantined
};

const char* session_status_name(SessionStatus s);

struct SessionOutcome {
  SessionStatus status = SessionStatus::kFailed;
  std::uint64_t client_id = 0;
  PrimerRunResult result;  // valid iff status == kCompleted
  std::string error;       // human-readable failure (empty on success)
  // Typed failure kind when the terminal error was a ProtocolError.
  std::optional<ProtocolErrorKind> error_kind;
  int restarts = 0;                  // retry attempts consumed
  std::uint32_t checkpoint_epoch = 0;  // last persisted epoch (resume point)
  double wait_s = 0;     // admission queue time
  double service_s = 0;  // worker time (all attempts)
};

// Handle to one admitted session.  The submitting thread blocks on wait();
// observer threads may poll progress() / done() concurrently.
class SessionTicket {
 public:
  // Blocks until the session resolves; returns its typed outcome.
  SessionOutcome wait() const;
  bool done() const;
  const SessionProgress& progress() const { return progress_; }
  std::uint64_t client_id() const { return req_.client_id; }

 private:
  friend class PrimerServer;
  explicit SessionTicket(InferenceRequest req) : req_(std::move(req)) {}

  InferenceRequest req_;
  CancelToken cancel_;
  SessionProgress progress_;
  std::atomic<bool> evicted_{false};
  std::atomic<bool> started_{false};
  Stopwatch queued_;  // measures admission-queue wait
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool done_ = false;
  SessionOutcome outcome_;
};

struct ServerStats {
  std::uint64_t accepted = 0;   // admitted into the queue
  std::uint64_t shed = 0;       // refused with ServerOverloaded
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;   // quarantined / duplicate in-flight client
  std::uint64_t evicted = 0;
  std::uint64_t drained = 0;
  std::uint64_t failed = 0;
  std::uint64_t poisoned = 0;
  std::size_t queue_depth = 0;
  std::size_t in_flight = 0;
  double p50_latency_s = 0;  // wait + service, completed sessions only
  double p99_latency_s = 0;
  SessionManager::Stats sessions;
};

struct DrainReport {
  std::uint64_t shed_queued = 0;       // queued sessions refused at drain
  std::uint64_t drained_running = 0;   // stopped at a checkpoint boundary
  std::uint64_t forced = 0;            // cancelled at the drain deadline
  std::uint64_t completed_during = 0;  // finished normally while draining
  double duration_s = 0;
  bool met_deadline = false;
};

class PrimerServer {
 public:
  explicit PrimerServer(std::vector<ModelSpec> models, ServerConfig cfg = {});
  ~PrimerServer();  // drains (cfg deadline) and joins the pool
  PrimerServer(const PrimerServer&) = delete;
  PrimerServer& operator=(const PrimerServer&) = delete;

  // Admits the request or throws ServerOverloaded (typed, retryable).
  // Throws std::invalid_argument on a malformed request (bad model index,
  // zero client id) — caller bugs, not load conditions.
  std::shared_ptr<SessionTicket> submit(InferenceRequest req);

  // Non-throwing admission: nullptr on shed (reason in *why if non-null).
  std::shared_ptr<SessionTicket> try_submit(InferenceRequest req,
                                            std::string* why = nullptr);

  // Convenience: submit and block for the outcome.
  SessionOutcome infer(InferenceRequest req) { return submit(std::move(req))->wait(); }

  ServerStats stats() const;
  bool draining() const { return drain_flag_.load(std::memory_order_acquire); }

  // Stops admission, sheds the queue, checkpoints in-flight sessions at
  // their next phase boundary and force-cancels stragglers at the deadline
  // (negative = use cfg.drain_deadline_s).  Idempotent; the first caller
  // gets the full report.
  DrainReport drain(double deadline_s = -1.0);

  const SessionManager& sessions() const { return sessions_; }
  const ServerConfig& config() const { return cfg_; }

 private:
  void worker_loop();
  void serve(const std::shared_ptr<SessionTicket>& t);
  void finish(const std::shared_ptr<SessionTicket>& t, SessionOutcome out);
  // Fingerprint of the request identity the per-client checkpoint cache is
  // keyed by: model (and its seed/variant) + token sequence.
  std::uint64_t request_fingerprint(const InferenceRequest& req) const;
  // Evicts the longest-stalled running session (beat age > stall_grace_s).
  // Returns true if one was cancelled.  Caller holds mu_.
  bool evict_longest_stalled_locked();

  std::vector<ModelSpec> models_;
  ServerConfig cfg_;
  SessionManager sessions_;
  std::atomic<bool> drain_flag_{false};

  mutable std::mutex mu_;  // guards queue_, running_, stop_
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::shared_ptr<SessionTicket>> queue_;
  std::vector<std::shared_ptr<SessionTicket>> running_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  mutable std::mutex stats_mu_;  // guards counters_ and latencies_
  ServerStats counters_;
  std::vector<double> latencies_s_;
};

}  // namespace primer
