// Additive secret sharing over Z_t and Beaver multiplication triples.
//
// All intermediate Transformer state in the Primer protocols lives as a
// pair of matrices (client share, server share) with X = (Xc + Xs) mod t.
// Beaver triples (A, B, C = A*B) let two parties multiply shared matrices
// with only plaintext work online — the FHGS protocol (§III-B) is exactly
// an HE-backed generator of such triples for the attention products.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/matrix.h"
#include "common/rng.h"

namespace primer {

// Matrices of ring elements in [0, t).
struct SharePair {
  MatI client;
  MatI server;
};

class ShareRing {
 public:
  explicit ShareRing(std::uint64_t t) : t_(static_cast<std::int64_t>(t)) {}

  std::uint64_t modulus() const { return static_cast<std::uint64_t>(t_); }

  std::int64_t reduce(std::int64_t v) const {
    std::int64_t r = v % t_;
    if (r < 0) r += t_;
    return r;
  }

  // Centered representative in (-t/2, t/2].
  std::int64_t center(std::int64_t v) const {
    const std::int64_t r = reduce(v);
    return r > t_ / 2 ? r - t_ : r;
  }

  MatI reduce(const MatI& m) const {
    MatI out(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.size(); ++i) out.data()[i] = reduce(m.data()[i]);
    return out;
  }

  MatI center(const MatI& m) const {
    MatI out(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.size(); ++i) out.data()[i] = center(m.data()[i]);
    return out;
  }

  MatI add(const MatI& a, const MatI& b) const {
    MatI out(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.size(); ++i) {
      out.data()[i] = reduce(a.data()[i] + b.data()[i]);
    }
    return out;
  }

  MatI sub(const MatI& a, const MatI& b) const {
    MatI out(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.size(); ++i) {
      out.data()[i] = reduce(a.data()[i] - b.data()[i]);
    }
    return out;
  }

  // Plain matrix product with entries reduced into the ring.  Products of
  // two ring residues reach ~2^72 for t ~ 2^36, so accumulation uses 128-bit
  // intermediates.
  MatI mul(const MatI& a, const MatI& b) const {
    if (a.cols() != b.rows()) throw std::invalid_argument("ShareRing::mul dims");
    MatI out(a.rows(), b.cols());
    const auto tt = static_cast<unsigned __int128>(t_);
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t j = 0; j < b.cols(); ++j) {
        unsigned __int128 acc = 0;
        for (std::size_t k = 0; k < a.cols(); ++k) {
          const auto va = static_cast<unsigned __int128>(reduce(a(i, k)));
          const auto vb = static_cast<unsigned __int128>(reduce(b(k, j)));
          acc += (va * vb) % tt;
        }
        out(i, j) = static_cast<std::int64_t>(acc % tt);
      }
    }
    return out;
  }

  MatI random(Rng& rng, std::size_t rows, std::size_t cols) const {
    MatI m(rows, cols);
    for (auto& v : m.data()) {
      v = static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(t_)));
    }
    return m;
  }

  // Splits a centered-value matrix into two uniformly random shares.
  SharePair share(const MatI& value, Rng& rng) const {
    SharePair p;
    p.client = random(rng, value.rows(), value.cols());
    p.server = sub(reduce(value), p.client);
    return p;
  }

  // Reconstructs the centered values.
  MatI reconstruct(const SharePair& p) const {
    return center(add(p.client, p.server));
  }

 private:
  std::int64_t t_;
};

// A Beaver triple for matrix multiplication of shapes (m x k) * (k x n):
// C = A * B in the ring, each factor additively shared.
struct BeaverTriple {
  SharePair a;
  SharePair b;
  SharePair c;
};

// Dealer-style triple generation directly in the ring (used in tests; the
// protocol-grade generation is FHGS, which produces exactly this structure
// via HE — see proto/fhgs.h).
BeaverTriple make_beaver_triple(const ShareRing& ring, Rng& rng,
                                std::size_t m, std::size_t k, std::size_t n);

// Online Beaver multiplication: given shares of X and Y and a triple,
// computes shares of X*Y.  `open_*` are the publicly reconstructed
// differences E = X - A, F = Y - B.
struct BeaverMulResult {
  SharePair product;
  MatI opened_e;
  MatI opened_f;
};

BeaverMulResult beaver_multiply(const ShareRing& ring, const SharePair& x,
                                const SharePair& y, const BeaverTriple& triple);

}  // namespace primer
