#include "ss/secret_share.h"

namespace primer {

BeaverTriple make_beaver_triple(const ShareRing& ring, Rng& rng,
                                std::size_t m, std::size_t k, std::size_t n) {
  BeaverTriple t;
  const MatI a = ring.random(rng, m, k);
  const MatI b = ring.random(rng, k, n);
  const MatI c = ring.mul(a, b);
  t.a = ring.share(a, rng);
  t.b = ring.share(b, rng);
  t.c = ring.share(c, rng);
  return t;
}

BeaverMulResult beaver_multiply(const ShareRing& ring, const SharePair& x,
                                const SharePair& y,
                                const BeaverTriple& triple) {
  BeaverMulResult r;
  // E = X - A and F = Y - B are opened (they leak nothing: A, B are uniform).
  r.opened_e = ring.add(ring.sub(x.client, triple.a.client),
                        ring.sub(x.server, triple.a.server));
  r.opened_f = ring.add(ring.sub(y.client, triple.b.client),
                        ring.sub(y.server, triple.b.server));
  // X*Y = C + E*B + A*F + E*F; the E*F term goes to one party (server).
  const MatI ef = ring.mul(r.opened_e, r.opened_f);
  r.product.client = ring.add(
      triple.c.client, ring.add(ring.mul(r.opened_e, triple.b.client),
                                ring.mul(triple.a.client, r.opened_f)));
  r.product.server = ring.add(
      ring.add(triple.c.server,
               ring.add(ring.mul(r.opened_e, triple.b.server),
                        ring.mul(triple.a.server, r.opened_f))),
      ef);
  return r;
}

}  // namespace primer
