// Portable scalar kernel set.  Same lazy-reduction structure as the AVX2
// path: forward butterflies keep values in [0, 4p) with one conditional
// subtraction per butterfly, inverse butterflies stay in [0, 2p), and a
// single sweep at the end restores the canonical [0, p) range.  Compared to
// the classic fully-reduced Shoup butterfly this removes two of the three
// per-butterfly corrections, and it makes the scalar path the exact
// reference semantics for the vector kernels.
#include "ntt/kernels.h"

namespace primer {

namespace {

// Shoup multiply without the final correction: returns w*x - hi(x*wq)*p,
// which lies in [0, 2p) for any 64-bit x as long as w < p.
inline u64 shoup_lazy(u64 x, u64 w, u64 w_shoup, u64 p) {
  const u64 q = static_cast<u64>((static_cast<u128>(x) * w_shoup) >> 64);
  return w * x - q * p;
}

// The butterfly walk shared by fwd_ntt (which fully reduces afterwards) and
// fwd_ntt_lazy (which leaves values in [0, 4p)).
void fwd_ntt_lazy_scalar(u64* a, std::size_t n, const u64* w,
                         const u64* w_shoup, u64 p) {
  const u64 two_p = 2 * p;
  std::size_t t = n;
  for (std::size_t m = 1; m < n; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j1 = 2 * i * t;
      const u64 wi = w[m + i];
      const u64 wqi = w_shoup[m + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        u64 x = a[j];
        if (x >= two_p) x -= two_p;               // [0, 2p)
        const u64 ty = shoup_lazy(a[j + t], wi, wqi, p);  // [0, 2p)
        a[j] = x + ty;                            // [0, 4p)
        a[j + t] = x - ty + two_p;                // (0, 4p)
      }
    }
  }
}

void fwd_ntt_scalar(u64* a, std::size_t n, const u64* w, const u64* w_shoup,
                    u64 p) {
  fwd_ntt_lazy_scalar(a, n, w, w_shoup, p);
  const u64 two_p = 2 * p;
  for (std::size_t j = 0; j < n; ++j) {
    u64 x = a[j];
    if (x >= two_p) x -= two_p;
    if (x >= p) x -= p;
    a[j] = x;
  }
}

void inv_ntt_scalar(u64* a, std::size_t n, const u64* w, const u64* w_shoup,
                    u64 n_inv, u64 n_inv_shoup, u64 p) {
  const u64 two_p = 2 * p;
  std::size_t t = 1;
  for (std::size_t m = n; m > 1; m >>= 1) {
    std::size_t j1 = 0;
    const std::size_t h = m >> 1;
    for (std::size_t i = 0; i < h; ++i) {
      const u64 wi = w[h + i];
      const u64 wqi = w_shoup[h + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const u64 u = a[j];      // [0, 2p)
        const u64 v = a[j + t];  // [0, 2p)
        u64 s = u + v;           // [0, 4p)
        if (s >= two_p) s -= two_p;
        a[j] = s;                                      // [0, 2p)
        a[j + t] = shoup_lazy(u - v + two_p, wi, wqi, p);  // [0, 2p)
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (std::size_t j = 0; j < n; ++j) {
    u64 x = shoup_lazy(a[j], n_inv, n_inv_shoup, p);  // [0, 2p)
    if (x >= p) x -= p;
    a[j] = x;
  }
}

void add_scalar(u64* out, const u64* a, const u64* b, std::size_t n, u64 p) {
  for (std::size_t i = 0; i < n; ++i) out[i] = add_mod(a[i], b[i], p);
}

void sub_scalar(u64* out, const u64* a, const u64* b, std::size_t n, u64 p) {
  for (std::size_t i = 0; i < n; ++i) out[i] = sub_mod(a[i], b[i], p);
}

void neg_scalar(u64* out, const u64* a, std::size_t n, u64 p) {
  for (std::size_t i = 0; i < n; ++i) out[i] = neg_mod(a[i], p);
}

void mul_scalar(u64* out, const u64* a, const u64* b, std::size_t n, u64 p,
                u64 ratio_hi, u64 ratio_lo) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = barrett_reduce128(static_cast<u128>(a[i]) * b[i], p, ratio_hi,
                               ratio_lo);
  }
}

void mul_acc_scalar(u64* out, const u64* a, const u64* b, std::size_t n,
                    u64 p, u64 ratio_hi, u64 ratio_lo) {
  for (std::size_t i = 0; i < n; ++i) {
    const u64 prod = barrett_reduce128(static_cast<u128>(a[i]) * b[i], p,
                                       ratio_hi, ratio_lo);
    out[i] = add_mod(out[i], prod, p);
  }
}

void scalar_mul_scalar(u64* out, const u64* a, std::size_t n, u64 w,
                       u64 w_shoup, u64 p) {
  for (std::size_t i = 0; i < n; ++i) {
    u64 x = shoup_lazy(a[i], w, w_shoup, p);
    if (x >= p) x -= p;
    out[i] = x;
  }
}

void reduce_span_scalar(u64* out, const u64* a, std::size_t n, u64 p,
                        u64 ratio_hi) {
  for (std::size_t i = 0; i < n; ++i) {
    // Single-word Barrett quotient (Barrett::reduce): undershoots the true
    // quotient by at most 2, corrected by the subtraction loop.
    const u64 x = a[i];
    const u64 q = static_cast<u64>((static_cast<u128>(x) * ratio_hi) >> 64);
    u64 r = x - q * p;
    while (r >= p) r -= p;
    out[i] = r;
  }
}

void mul_acc_lazy_scalar(u64* lo, u64* hi, const u64* a, const u64* b,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const u128 prod = static_cast<u128>(a[i]) * b[i];
    const u64 plo = static_cast<u64>(prod);
    const u64 s = lo[i] + plo;
    hi[i] += static_cast<u64>(prod >> 64) + (s < plo ? 1 : 0);
    lo[i] = s;
  }
}

void reduce_acc_span_scalar(u64* out, const u64* lo, const u64* hi,
                            std::size_t n, u64 p, u64 ratio_hi, u64 ratio_lo) {
  for (std::size_t i = 0; i < n; ++i) {
    const u128 acc = (static_cast<u128>(hi[i]) << 64) | lo[i];
    out[i] = barrett_reduce128(acc, p, ratio_hi, ratio_lo);
  }
}

void shoup_mul_acc_lazy2_scalar(u64* acc0, u64* acc1, const u64* a,
                                const u64* w0, const u64* w0_shoup,
                                const u64* w1, const u64* w1_shoup,
                                std::size_t n, u64 p) {
  const u64 two_p = 2 * p;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 x = a[i];
    u64 s0 = acc0[i] + shoup_lazy(x, w0[i], w0_shoup[i], p);  // [0, 4p)
    if (s0 >= two_p) s0 -= two_p;
    acc0[i] = s0;
    u64 s1 = acc1[i] + shoup_lazy(x, w1[i], w1_shoup[i], p);
    if (s1 >= two_p) s1 -= two_p;
    acc1[i] = s1;
  }
}

void add_reduce2p_scalar(u64* out, const u64* a, const u64* b, std::size_t n,
                         u64 p) {
  for (std::size_t i = 0; i < n; ++i) {
    u64 x = b[i];
    if (x >= p) x -= p;
    out[i] = add_mod(a[i], x, p);
  }
}

const NttKernel kScalarKernel = {
    .name = "scalar",
    .shoup_shift = 64,
    .fwd_ntt = fwd_ntt_scalar,
    .fwd_ntt_lazy = fwd_ntt_lazy_scalar,
    .inv_ntt = inv_ntt_scalar,
    .add = add_scalar,
    .sub = sub_scalar,
    .neg = neg_scalar,
    .mul = mul_scalar,
    .mul_acc = mul_acc_scalar,
    .scalar_mul = scalar_mul_scalar,
    .reduce_span = reduce_span_scalar,
    .mul_acc_lazy = mul_acc_lazy_scalar,
    .reduce_acc_span = reduce_acc_span_scalar,
    .shoup_mul_acc_lazy2 = shoup_mul_acc_lazy2_scalar,
    .add_reduce2p = add_reduce2p_scalar,
};

}  // namespace

const NttKernel& scalar_kernel() { return kScalarKernel; }

}  // namespace primer
