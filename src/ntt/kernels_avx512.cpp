// AVX-512 kernel tiers: 8-lane u64 butterflies and limb ops.
//
// Two kernel sets live in this TU:
//
//   avx512 (AVX512F + AVX512DQ) — the structural port of the AVX2 set to
//   8-lane vectors.  vpmullq (_mm512_mullo_epi64) replaces the 5-op 32x32
//   partial-product emulation for every low-64 product; the high-64 halves
//   (Shoup/Barrett quotients) still use the vpmuludq dance, which is exact.
//   Conditional subtractions use mask registers (cmpge + masked sub)
//   instead of the AVX2 sign-flip compare trick.  Same lazy-reduction
//   ranges as scalar/AVX2 ([0, 4p) forward, [0, 2p) inverse, one final
//   correction sweep), same Shoup convention (shoup_shift = 64), so every
//   table the scalar tier consumes drives this tier unchanged and outputs
//   are bit-identical.  Bound: p < 2^61 (dispatch-enforced).
//
//   avx512ifma (+ AVX512IFMA) — the sub-52-bit-modulus fast path.  The NTT
//   butterflies, scalar Shoup mul, and the Shoup-lazy key-switch
//   accumulation are rebuilt on vpmadd52lo/hi 52-bit multiply-adds with
//   quotients in the 52-bit Shoup convention (shoup_shift = 52,
//   wq = floor(w * 2^52 / p)): the quotient estimate is ONE vpmadd52hi and
//   the product residue two vpmadd52lo + sub + mask, replacing the
//   ~10-instruction 64-bit high-half emulation.  Correctness needs every
//   multiplicand below 2^52; with lazy butterfly values in [0, 4p) that
//   means 4p < 2^52, i.e. p < 2^50 (the HEXL IFMA bound) — enforced by
//   dispatch_kernel.  Sub-52-bit moduli in [2^50, 2^52) stay on the DQ
//   tier.  Ops that involve no Shoup quotient (add/sub/neg, Barrett
//   mul/mul_acc, reduce_span, the 128-bit lazy accumulator) are shared
//   with the DQ tier unchanged.
//
// The final two forward stages and first two inverse stages (butterfly
// gaps 4, 2, 1) interleave operands within a vector; they are handled with
// permutex2var gather/scatter index plans over 16-coefficient blocks, so
// the whole transform stays vectorized down to gap 1.
//
// This file is compiled with -mavx512f -mavx512dq (and -mavx512ifma when
// the toolchain has it); see CMakeLists.txt.  Without compiler support the
// corresponding kernel accessors return nullptr and dispatch never routes
// here.
#include "ntt/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace primer {

namespace {

inline __m512i load8(const u64* p) { return _mm512_loadu_si512(p); }
inline void store8(u64* p, __m512i v) { _mm512_storeu_si512(p, v); }
inline __m512i bcast8(u64 x) {
  return _mm512_set1_epi64(static_cast<long long>(x));
}

// Low 64 bits of the unsigned 64x64 lane product — a single vpmullq.
inline __m512i mul64_lo(__m512i x, __m512i y) {
  return _mm512_mullo_epi64(x, y);
}

// High 64 bits of the unsigned 64x64 lane product (exact), assembled from
// 32x32 partial products — AVX-512 has no 64x64 high-half instruction.
inline __m512i mul64_hi(__m512i x, __m512i y) {
  const __m512i lo32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i xh = _mm512_srli_epi64(x, 32);
  const __m512i yh = _mm512_srli_epi64(y, 32);
  const __m512i ll = _mm512_mul_epu32(x, y);
  const __m512i lh = _mm512_mul_epu32(x, yh);
  const __m512i hl = _mm512_mul_epu32(xh, y);
  const __m512i hh = _mm512_mul_epu32(xh, yh);
  const __m512i carry = _mm512_srli_epi64(
      _mm512_add_epi64(_mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                                        _mm512_and_epi64(lh, lo32)),
                       _mm512_and_epi64(hl, lo32)),
      32);
  return _mm512_add_epi64(
      _mm512_add_epi64(hh, carry),
      _mm512_add_epi64(_mm512_srli_epi64(lh, 32), _mm512_srli_epi64(hl, 32)));
}

// a >= t ? a - t : a, unsigned, via mask registers.
inline __m512i csub(__m512i a, __m512i t) {
  const __mmask8 ge = _mm512_cmpge_epu64_mask(a, t);
  return _mm512_mask_sub_epi64(a, ge, a, t);
}

// Shoup multiply without correction (64-bit convention): w*x - hi(x*wq)*p,
// in [0, 2p) for w < p and any 64-bit x.
inline __m512i shoup_lazy(__m512i x, __m512i w, __m512i wq, __m512i p) {
  const __m512i q = mul64_hi(x, wq);
  return _mm512_sub_epi64(mul64_lo(w, x), mul64_lo(q, p));
}

// Forward butterfly on 8 independent (X, Y) pairs: X in [0, 4p) -> cond
// subtract 2p; T = w*Y lazily; out (X+T, X-T+2p), both in [0, 4p).
inline void fwd_butterfly(__m512i& X, __m512i& Y, __m512i w, __m512i wq,
                          __m512i p, __m512i two_p) {
  const __m512i x = csub(X, two_p);
  const __m512i t = shoup_lazy(Y, w, wq, p);
  X = _mm512_add_epi64(x, t);
  Y = _mm512_add_epi64(_mm512_sub_epi64(x, t), two_p);
}

// Inverse butterfly: inputs in [0, 2p), outputs in [0, 2p).
inline void inv_butterfly(__m512i& X, __m512i& Y, __m512i w, __m512i wq,
                          __m512i p, __m512i two_p) {
  const __m512i s = csub(_mm512_add_epi64(X, Y), two_p);
  const __m512i d = _mm512_add_epi64(_mm512_sub_epi64(X, Y), two_p);
  X = s;
  Y = shoup_lazy(d, w, wq, p);
}

// Lane plan for a butterfly stage with gap t in {4, 2, 1}: a 16-coefficient
// block holds 8/t butterfly groups.  gx/gy gather the X/Y operands from the
// two loaded vectors (indices 0-7 pick vector 0, 8-15 vector 1), s0/s1
// scatter the results back to memory order, and tw spreads the 8/t group
// twiddles across the 8 lanes.
struct StagePlan {
  __m512i gx, gy, s0, s1, tw;
};

inline StagePlan stage_plan(std::size_t t) {
  StagePlan pl;
  switch (t) {
    case 4:
      pl.gx = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
      pl.gy = _mm512_setr_epi64(4, 5, 6, 7, 12, 13, 14, 15);
      pl.s0 = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
      pl.s1 = _mm512_setr_epi64(4, 5, 6, 7, 12, 13, 14, 15);
      pl.tw = _mm512_setr_epi64(0, 0, 0, 0, 1, 1, 1, 1);
      break;
    case 2:
      pl.gx = _mm512_setr_epi64(0, 1, 4, 5, 8, 9, 12, 13);
      pl.gy = _mm512_setr_epi64(2, 3, 6, 7, 10, 11, 14, 15);
      pl.s0 = _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
      pl.s1 = _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
      pl.tw = _mm512_setr_epi64(0, 0, 1, 1, 2, 2, 3, 3);
      break;
    default:  // t == 1
      pl.gx = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
      pl.gy = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
      pl.s0 = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
      pl.s1 = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
      pl.tw = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
      break;
  }
  return pl;
}

// One interleaved stage (gap t in {4, 2, 1}) over the whole array.
// Butterfly is a callable (X, Y, w, wq) mutating X/Y in place.
template <class BF>
inline void interleaved_stage(u64* a, std::size_t n, std::size_t t,
                              const u64* w, const u64* w_shoup, BF&& bf) {
  const StagePlan pl = stage_plan(t);
  const std::size_t m = n / (2 * t);        // butterfly groups this stage
  const std::size_t step = 8 / t;           // groups per 16-coeff block
  for (std::size_t i = 0; i < m; i += step) {
    u64* base = a + 2 * t * i;
    const __m512i v0 = load8(base);
    const __m512i v1 = load8(base + 8);
    __m512i X = _mm512_permutex2var_epi64(v0, pl.gx, v1);
    __m512i Y = _mm512_permutex2var_epi64(v0, pl.gy, v1);
    const __m512i vw = _mm512_permutexvar_epi64(pl.tw, load8(w + m + i));
    const __m512i vwq =
        _mm512_permutexvar_epi64(pl.tw, load8(w_shoup + m + i));
    bf(X, Y, vw, vwq);
    store8(base, _mm512_permutex2var_epi64(X, pl.s0, Y));
    store8(base + 8, _mm512_permutex2var_epi64(X, pl.s1, Y));
  }
}

// Forward butterfly walk (no final sweep), parameterized over the butterfly
// so the DQ and IFMA tiers share the stage plumbing.
template <class BF>
inline void fwd_walk(u64* a, std::size_t n, const u64* w, const u64* w_shoup,
                     BF&& bf) {
  // Stages with butterfly gap t >= 8: straight 8-wide loads.
  std::size_t t = n;
  for (std::size_t m = 1; t > 8; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      u64* x = a + 2 * i * t;
      u64* y = x + t;
      const __m512i vw = bcast8(w[m + i]);
      const __m512i vwq = bcast8(w_shoup[m + i]);
      for (std::size_t j = 0; j < t; j += 8) {
        __m512i X = load8(x + j);
        __m512i Y = load8(y + j);
        bf(X, Y, vw, vwq);
        store8(x + j, X);
        store8(y + j, Y);
      }
    }
  }
  // Gaps 4, 2, 1: permutex2var lane plans.
  interleaved_stage(a, n, 4, w, w_shoup, bf);
  interleaved_stage(a, n, 2, w, w_shoup, bf);
  interleaved_stage(a, n, 1, w, w_shoup, bf);
}

// Inverse butterfly walk (no 1/n scaling), mirror order.
template <class BF>
inline void inv_walk(u64* a, std::size_t n, const u64* w, const u64* w_shoup,
                     BF&& bf) {
  interleaved_stage(a, n, 1, w, w_shoup, bf);
  interleaved_stage(a, n, 2, w, w_shoup, bf);
  interleaved_stage(a, n, 4, w, w_shoup, bf);
  std::size_t t = 8;
  for (std::size_t h = n / 16; h >= 1; h >>= 1, t <<= 1) {
    for (std::size_t i = 0; i < h; ++i) {
      u64* x = a + 2 * i * t;
      u64* y = x + t;
      const __m512i vw = bcast8(w[h + i]);
      const __m512i vwq = bcast8(w_shoup[h + i]);
      for (std::size_t j = 0; j < t; j += 8) {
        __m512i X = load8(x + j);
        __m512i Y = load8(y + j);
        bf(X, Y, vw, vwq);
        store8(x + j, X);
        store8(y + j, Y);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// avx512 (DQ) tier
// ---------------------------------------------------------------------------

void fwd_ntt_lazy_avx512(u64* a, std::size_t n, const u64* w,
                         const u64* w_shoup, u64 p) {
  if (n < 16) {
    scalar_kernel().fwd_ntt_lazy(a, n, w, w_shoup, p);
    return;
  }
  const __m512i vp = bcast8(p);
  const __m512i v2p = bcast8(2 * p);
  fwd_walk(a, n, w, w_shoup, [&](__m512i& X, __m512i& Y, __m512i vw,
                                 __m512i vwq) {
    fwd_butterfly(X, Y, vw, vwq, vp, v2p);
  });
}

void fwd_ntt_avx512(u64* a, std::size_t n, const u64* w, const u64* w_shoup,
                    u64 p) {
  if (n < 16) {
    scalar_kernel().fwd_ntt(a, n, w, w_shoup, p);
    return;
  }
  fwd_ntt_lazy_avx512(a, n, w, w_shoup, p);
  // Single correction sweep: [0, 4p) -> [0, p).
  const __m512i vp = bcast8(p);
  const __m512i v2p = bcast8(2 * p);
  for (std::size_t j = 0; j < n; j += 8) {
    __m512i x = load8(a + j);
    x = csub(x, v2p);
    x = csub(x, vp);
    store8(a + j, x);
  }
}

void inv_ntt_avx512(u64* a, std::size_t n, const u64* w, const u64* w_shoup,
                    u64 n_inv, u64 n_inv_shoup, u64 p) {
  if (n < 16) {
    scalar_kernel().inv_ntt(a, n, w, w_shoup, n_inv, n_inv_shoup, p);
    return;
  }
  const __m512i vp = bcast8(p);
  const __m512i v2p = bcast8(2 * p);
  inv_walk(a, n, w, w_shoup, [&](__m512i& X, __m512i& Y, __m512i vw,
                                 __m512i vwq) {
    inv_butterfly(X, Y, vw, vwq, vp, v2p);
  });
  // Scale by n^-1 and fully reduce: [0, 2p) -> [0, p).
  const __m512i vninv = bcast8(n_inv);
  const __m512i vninvq = bcast8(n_inv_shoup);
  for (std::size_t j = 0; j < n; j += 8) {
    const __m512i x = shoup_lazy(load8(a + j), vninv, vninvq, vp);
    store8(a + j, csub(x, vp));
  }
}

// Barrett product of 8 lanes, fully reduced.  Same dropped-carry bounds as
// the AVX2 tier (r < 5p before the 4p/2p/p conditional-subtract chain;
// needs p < 2^61, dispatch-enforced).
inline __m512i barrett_mul8(__m512i x, __m512i y, __m512i vp, __m512i v2p,
                            __m512i v4p, __m512i rhi, __m512i rlo) {
  const __m512i lo = mul64_lo(x, y);
  const __m512i hi = mul64_hi(x, y);
  const __m512i q = _mm512_add_epi64(
      mul64_lo(hi, rhi),
      _mm512_add_epi64(mul64_hi(hi, rlo), mul64_hi(lo, rhi)));
  __m512i r = _mm512_sub_epi64(lo, mul64_lo(q, vp));
  r = csub(r, v4p);
  r = csub(r, v2p);
  return csub(r, vp);
}

void add_avx512(u64* out, const u64* a, const u64* b, std::size_t n, u64 p) {
  const __m512i vp = bcast8(p);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store8(out + i, csub(_mm512_add_epi64(load8(a + i), load8(b + i)), vp));
  }
  for (; i < n; ++i) out[i] = add_mod(a[i], b[i], p);
}

void sub_avx512(u64* out, const u64* a, const u64* b, std::size_t n, u64 p) {
  const __m512i vp = bcast8(p);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i d = _mm512_sub_epi64(
        _mm512_add_epi64(load8(a + i), vp), load8(b + i));
    store8(out + i, csub(d, vp));
  }
  for (; i < n; ++i) out[i] = sub_mod(a[i], b[i], p);
}

void neg_avx512(u64* out, const u64* a, std::size_t n, u64 p) {
  const __m512i vp = bcast8(p);
  const __m512i zero = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = load8(a + i);
    const __mmask8 nonzero = _mm512_cmpneq_epi64_mask(x, zero);
    store8(out + i, _mm512_maskz_sub_epi64(nonzero, vp, x));
  }
  for (; i < n; ++i) out[i] = neg_mod(a[i], p);
}

void mul_avx512(u64* out, const u64* a, const u64* b, std::size_t n, u64 p,
                u64 ratio_hi, u64 ratio_lo) {
  const __m512i vp = bcast8(p);
  const __m512i v2p = bcast8(2 * p);
  const __m512i v4p = bcast8(4 * p);
  const __m512i rhi = bcast8(ratio_hi);
  const __m512i rlo = bcast8(ratio_lo);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store8(out + i,
           barrett_mul8(load8(a + i), load8(b + i), vp, v2p, v4p, rhi, rlo));
  }
  for (; i < n; ++i) {
    out[i] = barrett_reduce128(static_cast<u128>(a[i]) * b[i], p, ratio_hi,
                               ratio_lo);
  }
}

void mul_acc_avx512(u64* out, const u64* a, const u64* b, std::size_t n,
                    u64 p, u64 ratio_hi, u64 ratio_lo) {
  const __m512i vp = bcast8(p);
  const __m512i v2p = bcast8(2 * p);
  const __m512i v4p = bcast8(4 * p);
  const __m512i rhi = bcast8(ratio_hi);
  const __m512i rlo = bcast8(ratio_lo);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i prod =
        barrett_mul8(load8(a + i), load8(b + i), vp, v2p, v4p, rhi, rlo);
    store8(out + i, csub(_mm512_add_epi64(load8(out + i), prod), vp));
  }
  for (; i < n; ++i) {
    const u64 prod = barrett_reduce128(static_cast<u128>(a[i]) * b[i], p,
                                       ratio_hi, ratio_lo);
    out[i] = add_mod(out[i], prod, p);
  }
}

void scalar_mul_avx512(u64* out, const u64* a, std::size_t n, u64 w,
                       u64 w_shoup, u64 p) {
  const __m512i vp = bcast8(p);
  const __m512i vw = bcast8(w);
  const __m512i vwq = bcast8(w_shoup);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store8(out + i, csub(shoup_lazy(load8(a + i), vw, vwq, vp), vp));
  }
  for (; i < n; ++i) {
    const u64 q = static_cast<u64>((static_cast<u128>(a[i]) * w_shoup) >> 64);
    u64 x = w * a[i] - q * p;
    if (x >= p) x -= p;
    out[i] = x;
  }
}

void reduce_span_avx512(u64* out, const u64* a, std::size_t n, u64 p,
                        u64 ratio_hi) {
  // Single-word Barrett quotient: q = hi64(x * ratio_hi) undershoots the
  // true quotient by at most 2, so r < 3p and the 2p / p chain reduces.
  const __m512i vp = bcast8(p);
  const __m512i v2p = bcast8(2 * p);
  const __m512i rhi = bcast8(ratio_hi);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = load8(a + i);
    const __m512i q = mul64_hi(x, rhi);
    __m512i r = _mm512_sub_epi64(x, mul64_lo(q, vp));
    r = csub(r, v2p);
    store8(out + i, csub(r, vp));
  }
  for (; i < n; ++i) {
    const u64 x = a[i];
    const u64 q = static_cast<u64>((static_cast<u128>(x) * ratio_hi) >> 64);
    u64 r = x - q * p;
    while (r >= p) r -= p;
    out[i] = r;
  }
}

void mul_acc_lazy_avx512(u64* lo, u64* hi, const u64* a, const u64* b,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = load8(a + i);
    const __m512i y = load8(b + i);
    const __m512i plo = mul64_lo(x, y);
    const __m512i phi = mul64_hi(x, y);
    const __m512i s = _mm512_add_epi64(load8(lo + i), plo);
    // Unsigned carry: s < plo after the add means the low word wrapped.
    const __mmask8 carry = _mm512_cmplt_epu64_mask(s, plo);
    store8(lo + i, s);
    const __m512i h = _mm512_add_epi64(load8(hi + i), phi);
    store8(hi + i,
           _mm512_mask_add_epi64(h, carry, h, _mm512_set1_epi64(1)));
  }
  for (; i < n; ++i) {
    const u128 prod = static_cast<u128>(a[i]) * b[i];
    const u64 plo = static_cast<u64>(prod);
    const u64 s = lo[i] + plo;
    hi[i] += static_cast<u64>(prod >> 64) + (s < plo ? 1 : 0);
    lo[i] = s;
  }
}

void reduce_acc_span_avx512(u64* out, const u64* lo, const u64* hi,
                            std::size_t n, u64 p, u64 ratio_hi, u64 ratio_lo) {
  // Same quotient shape as barrett_mul8 with the product words given
  // directly; requires hi*2^64 + lo < p*2^64 (the mul_acc_lazy bound).
  const __m512i vp = bcast8(p);
  const __m512i v2p = bcast8(2 * p);
  const __m512i v4p = bcast8(4 * p);
  const __m512i rhi = bcast8(ratio_hi);
  const __m512i rlo = bcast8(ratio_lo);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i l = load8(lo + i);
    const __m512i h = load8(hi + i);
    const __m512i q = _mm512_add_epi64(
        mul64_lo(h, rhi),
        _mm512_add_epi64(mul64_hi(h, rlo), mul64_hi(l, rhi)));
    __m512i r = _mm512_sub_epi64(l, mul64_lo(q, vp));
    r = csub(r, v4p);
    r = csub(r, v2p);
    store8(out + i, csub(r, vp));
  }
  for (; i < n; ++i) {
    const u128 acc = (static_cast<u128>(hi[i]) << 64) | lo[i];
    out[i] = barrett_reduce128(acc, p, ratio_hi, ratio_lo);
  }
}

void shoup_mul_acc_lazy2_avx512(u64* acc0, u64* acc1, const u64* a,
                                const u64* w0, const u64* w0_shoup,
                                const u64* w1, const u64* w1_shoup,
                                std::size_t n, u64 p) {
  const __m512i vp = bcast8(p);
  const __m512i v2p = bcast8(2 * p);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = load8(a + i);
    const __m512i t0 =
        shoup_lazy(x, load8(w0 + i), load8(w0_shoup + i), vp);  // [0, 2p)
    store8(acc0 + i, csub(_mm512_add_epi64(load8(acc0 + i), t0), v2p));
    const __m512i t1 = shoup_lazy(x, load8(w1 + i), load8(w1_shoup + i), vp);
    store8(acc1 + i, csub(_mm512_add_epi64(load8(acc1 + i), t1), v2p));
  }
  const u64 two_p = 2 * p;
  for (; i < n; ++i) {
    const u64 x = a[i];
    const u64 q0 =
        static_cast<u64>((static_cast<u128>(x) * w0_shoup[i]) >> 64);
    u64 s0 = acc0[i] + (w0[i] * x - q0 * p);
    if (s0 >= two_p) s0 -= two_p;
    acc0[i] = s0;
    const u64 q1 =
        static_cast<u64>((static_cast<u128>(x) * w1_shoup[i]) >> 64);
    u64 s1 = acc1[i] + (w1[i] * x - q1 * p);
    if (s1 >= two_p) s1 -= two_p;
    acc1[i] = s1;
  }
}

void add_reduce2p_avx512(u64* out, const u64* a, const u64* b, std::size_t n,
                         u64 p) {
  const __m512i vp = bcast8(p);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = csub(load8(b + i), vp);
    store8(out + i, csub(_mm512_add_epi64(load8(a + i), x), vp));
  }
  for (; i < n; ++i) {
    u64 x = b[i];
    if (x >= p) x -= p;
    out[i] = add_mod(a[i], x, p);
  }
}

const NttKernel kAvx512Kernel = {
    .name = "avx512",
    .shoup_shift = 64,
    .fwd_ntt = fwd_ntt_avx512,
    .fwd_ntt_lazy = fwd_ntt_lazy_avx512,
    .inv_ntt = inv_ntt_avx512,
    .add = add_avx512,
    .sub = sub_avx512,
    .neg = neg_avx512,
    .mul = mul_avx512,
    .mul_acc = mul_acc_avx512,
    .scalar_mul = scalar_mul_avx512,
    .reduce_span = reduce_span_avx512,
    .mul_acc_lazy = mul_acc_lazy_avx512,
    .reduce_acc_span = reduce_acc_span_avx512,
    .shoup_mul_acc_lazy2 = shoup_mul_acc_lazy2_avx512,
    .add_reduce2p = add_reduce2p_avx512,
};

}  // namespace

const NttKernel* avx512_kernel() { return &kAvx512Kernel; }

// ---------------------------------------------------------------------------
// avx512ifma tier (52-bit Shoup convention; p < 2^50)
// ---------------------------------------------------------------------------

#if defined(__AVX512IFMA__)

namespace {

constexpr u64 kMask52 = (u64{1} << 52) - 1;

// Scalar reference for the 52-bit Shoup convention (tails, n < 16):
// wq = floor(w * 2^52 / p); result w*x mod+ p in [0, 2p) for x <= 2^52.
inline u64 shoup52_lazy_scalar(u64 x, u64 w, u64 wq, u64 p) {
  const u64 q = static_cast<u64>((static_cast<u128>(x) * wq) >> 52);
  return w * x - q * p;  // < 2p < 2^64: exact in u64 arithmetic
}

// Vector Shoup-lazy product in the 52-bit convention.  One vpmadd52hi for
// the quotient, two vpmadd52lo for the residue; all operands must be below
// 2^52 (x in [0, 4p) with p < 2^50 qualifies).  The true residue lies in
// [0, 2p) < 2^52, so the mod-2^52 subtraction is exact after masking.
inline __m512i shoup52_lazy(__m512i x, __m512i w, __m512i wq, __m512i p,
                            __m512i mask52, __m512i zero) {
  const __m512i q = _mm512_madd52hi_epu64(zero, x, wq);
  const __m512i wx = _mm512_madd52lo_epu64(zero, x, w);
  const __m512i qp = _mm512_madd52lo_epu64(zero, q, p);
  return _mm512_and_epi64(_mm512_sub_epi64(wx, qp), mask52);
}

inline void fwd_butterfly_ifma(__m512i& X, __m512i& Y, __m512i w, __m512i wq,
                               __m512i p, __m512i two_p, __m512i mask52,
                               __m512i zero) {
  const __m512i x = csub(X, two_p);
  const __m512i t = shoup52_lazy(Y, w, wq, p, mask52, zero);
  X = _mm512_add_epi64(x, t);
  Y = _mm512_add_epi64(_mm512_sub_epi64(x, t), two_p);
}

inline void inv_butterfly_ifma(__m512i& X, __m512i& Y, __m512i w, __m512i wq,
                               __m512i p, __m512i two_p, __m512i mask52,
                               __m512i zero) {
  const __m512i s = csub(_mm512_add_epi64(X, Y), two_p);
  const __m512i d = _mm512_add_epi64(_mm512_sub_epi64(X, Y), two_p);
  X = s;
  Y = shoup52_lazy(d, w, wq, p, mask52, zero);
}

// Scalar butterfly walks in the 52-bit convention for n < 16 (the scalar
// kernel set cannot be used: its tables are in the 64-bit convention).
void fwd_ntt_lazy_ifma_small(u64* a, std::size_t n, const u64* w,
                             const u64* w_shoup, u64 p) {
  const u64 two_p = 2 * p;
  std::size_t t = n;
  for (std::size_t m = 1; m < n; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j1 = 2 * i * t;
      for (std::size_t j = j1; j < j1 + t; ++j) {
        u64 x = a[j];
        if (x >= two_p) x -= two_p;
        const u64 ty = shoup52_lazy_scalar(a[j + t], w[m + i],
                                           w_shoup[m + i], p);
        a[j] = x + ty;
        a[j + t] = x - ty + two_p;
      }
    }
  }
}

void fwd_ntt_lazy_ifma(u64* a, std::size_t n, const u64* w,
                       const u64* w_shoup, u64 p) {
  if (n < 16) {
    fwd_ntt_lazy_ifma_small(a, n, w, w_shoup, p);
    return;
  }
  const __m512i vp = bcast8(p);
  const __m512i v2p = bcast8(2 * p);
  const __m512i mask52 = bcast8(kMask52);
  const __m512i zero = _mm512_setzero_si512();
  fwd_walk(a, n, w, w_shoup, [&](__m512i& X, __m512i& Y, __m512i vw,
                                 __m512i vwq) {
    fwd_butterfly_ifma(X, Y, vw, vwq, vp, v2p, mask52, zero);
  });
}

void fwd_ntt_ifma(u64* a, std::size_t n, const u64* w, const u64* w_shoup,
                  u64 p) {
  fwd_ntt_lazy_ifma(a, n, w, w_shoup, p);
  const u64 two_p = 2 * p;
  if (n < 16) {
    for (std::size_t j = 0; j < n; ++j) {
      u64 x = a[j];
      if (x >= two_p) x -= two_p;
      if (x >= p) x -= p;
      a[j] = x;
    }
    return;
  }
  const __m512i vp = bcast8(p);
  const __m512i v2p = bcast8(two_p);
  for (std::size_t j = 0; j < n; j += 8) {
    __m512i x = load8(a + j);
    x = csub(x, v2p);
    x = csub(x, vp);
    store8(a + j, x);
  }
}

void inv_ntt_ifma(u64* a, std::size_t n, const u64* w, const u64* w_shoup,
                  u64 n_inv, u64 n_inv_shoup, u64 p) {
  const u64 two_p = 2 * p;
  if (n < 16) {
    std::size_t t = 1;
    for (std::size_t m = n; m > 1; m >>= 1) {
      std::size_t j1 = 0;
      const std::size_t h = m >> 1;
      for (std::size_t i = 0; i < h; ++i) {
        for (std::size_t j = j1; j < j1 + t; ++j) {
          const u64 u = a[j];
          const u64 v = a[j + t];
          u64 s = u + v;
          if (s >= two_p) s -= two_p;
          a[j] = s;
          a[j + t] =
              shoup52_lazy_scalar(u - v + two_p, w[h + i], w_shoup[h + i], p);
        }
        j1 += 2 * t;
      }
      t <<= 1;
    }
    for (std::size_t j = 0; j < n; ++j) {
      u64 x = shoup52_lazy_scalar(a[j], n_inv, n_inv_shoup, p);
      if (x >= p) x -= p;
      a[j] = x;
    }
    return;
  }
  const __m512i vp = bcast8(p);
  const __m512i v2p = bcast8(two_p);
  const __m512i mask52 = bcast8(kMask52);
  const __m512i zero = _mm512_setzero_si512();
  inv_walk(a, n, w, w_shoup, [&](__m512i& X, __m512i& Y, __m512i vw,
                                 __m512i vwq) {
    inv_butterfly_ifma(X, Y, vw, vwq, vp, v2p, mask52, zero);
  });
  const __m512i vninv = bcast8(n_inv);
  const __m512i vninvq = bcast8(n_inv_shoup);
  for (std::size_t j = 0; j < n; j += 8) {
    const __m512i x = shoup52_lazy(load8(a + j), vninv, vninvq, vp, mask52,
                                   zero);
    store8(a + j, csub(x, vp));
  }
}

void scalar_mul_ifma(u64* out, const u64* a, std::size_t n, u64 w,
                     u64 w_shoup, u64 p) {
  const __m512i vp = bcast8(p);
  const __m512i vw = bcast8(w);
  const __m512i vwq = bcast8(w_shoup);
  const __m512i mask52 = bcast8(kMask52);
  const __m512i zero = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store8(out + i,
           csub(shoup52_lazy(load8(a + i), vw, vwq, vp, mask52, zero), vp));
  }
  for (; i < n; ++i) {
    u64 x = shoup52_lazy_scalar(a[i], w, w_shoup, p);
    if (x >= p) x -= p;
    out[i] = x;
  }
}

// Key-switch Shoup-lazy accumulation with 52-bit quotients.  Digit values
// `a` must be below 2^52 — satisfied by both canonical ([0, p)) and
// lazy-forward-NTT ([0, 4p), p < 2^50) digit limbs.
void shoup_mul_acc_lazy2_ifma(u64* acc0, u64* acc1, const u64* a,
                              const u64* w0, const u64* w0_shoup,
                              const u64* w1, const u64* w1_shoup,
                              std::size_t n, u64 p) {
  const __m512i vp = bcast8(p);
  const __m512i v2p = bcast8(2 * p);
  const __m512i mask52 = bcast8(kMask52);
  const __m512i zero = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = load8(a + i);
    const __m512i t0 = shoup52_lazy(x, load8(w0 + i), load8(w0_shoup + i),
                                    vp, mask52, zero);  // [0, 2p)
    store8(acc0 + i, csub(_mm512_add_epi64(load8(acc0 + i), t0), v2p));
    const __m512i t1 = shoup52_lazy(x, load8(w1 + i), load8(w1_shoup + i),
                                    vp, mask52, zero);
    store8(acc1 + i, csub(_mm512_add_epi64(load8(acc1 + i), t1), v2p));
  }
  const u64 two_p = 2 * p;
  for (; i < n; ++i) {
    const u64 x = a[i];
    u64 s0 = acc0[i] + shoup52_lazy_scalar(x, w0[i], w0_shoup[i], p);
    if (s0 >= two_p) s0 -= two_p;
    acc0[i] = s0;
    u64 s1 = acc1[i] + shoup52_lazy_scalar(x, w1[i], w1_shoup[i], p);
    if (s1 >= two_p) s1 -= two_p;
    acc1[i] = s1;
  }
}

const NttKernel kAvx512IfmaKernel = {
    .name = "avx512ifma",
    .shoup_shift = 52,
    .fwd_ntt = fwd_ntt_ifma,
    .fwd_ntt_lazy = fwd_ntt_lazy_ifma,
    .inv_ntt = inv_ntt_ifma,
    .add = add_avx512,
    .sub = sub_avx512,
    .neg = neg_avx512,
    .mul = mul_avx512,
    .mul_acc = mul_acc_avx512,
    .scalar_mul = scalar_mul_ifma,
    .reduce_span = reduce_span_avx512,
    .mul_acc_lazy = mul_acc_lazy_avx512,
    .reduce_acc_span = reduce_acc_span_avx512,
    .shoup_mul_acc_lazy2 = shoup_mul_acc_lazy2_ifma,
    .add_reduce2p = add_reduce2p_avx512,
};

}  // namespace

const NttKernel* avx512ifma_kernel() { return &kAvx512IfmaKernel; }

#else  // !__AVX512IFMA__

const NttKernel* avx512ifma_kernel() { return nullptr; }

#endif

}  // namespace primer

#else  // !(__AVX512F__ && __AVX512DQ__)

namespace primer {
const NttKernel* avx512_kernel() { return nullptr; }
const NttKernel* avx512ifma_kernel() { return nullptr; }
}  // namespace primer

#endif
