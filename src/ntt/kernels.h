// Vectorized NTT / limb-op kernel layer with runtime dispatch.
//
// A kernel set is a table of function pointers implementing the negacyclic
// NTT butterflies and the elementwise RNS limb operations on raw u64 spans.
// Four implementations exist:
//   scalar      — portable reference (always available)
//   avx2        — 4-lane, 32x32 partial products (kernels_avx2.cpp, -mavx2)
//   avx512      — 8-lane, AVX512-DQ vpmullq low-half products
//                 (kernels_avx512.cpp, -mavx512f -mavx512dq)
//   avx512ifma  — avx512 with the NTT butterflies and Shoup-lazy
//                 accumulation rebuilt on vpmadd52 52-bit multiply-adds
//                 (same TU, -mavx512ifma); requires 4p < 2^52, i.e. p < 2^50
// All use HEXL-style lazy reduction internally — butterfly values live in
// the redundant range [0, 4p) (forward) / [0, 2p) (inverse) and a single
// correction sweep at the end brings them back to [0, p) — so every kernel
// FULLY REDUCES its outputs and all tiers are bit-identical (enforced by
// tests/test_ntt_kernels.cpp).  The protocol therefore stays deterministic
// across machines regardless of which kernel dispatch picks.
//
// Shoup quotient convention: each kernel set declares `shoup_shift` — the
// scale of every precomputed quotient it consumes (twiddle tables, key
// Shoup tables, scalar_mul operands): floor(w * 2^shoup_shift / p).  The
// scalar/avx2/avx512 tiers use 64 (one 64x64 high-half multiply per Shoup
// product); avx512ifma uses 52 so the quotient estimate is a single
// vpmadd52hi.  Table builders (Ntt, KeyGenerator::shoup_table,
// HeContext::scalar_multiply_inplace) must honor the shift of the kernel
// set that will consume the table.
//
// Dispatch: dispatch_kernel(p) picks the widest tier that (a) was compiled
// in, (b) the CPU reports, and (c) whose modulus bound admits p — p < 2^61
// for avx2/avx512 (the lazy/Barrett bounds need headroom above 4p),
// p < 2^50 for avx512ifma (every lazy intermediate must fit 52 bits).  The
// PRIMER_NTT_KERNEL environment variable (values: "scalar", "avx2",
// "avx512", "avx512ifma") overrides the choice for testing; an unavailable
// request falls back to scalar with a one-time warning per requested
// value, and an unknown value throws std::invalid_argument listing the
// valid names.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>

#include "ntt/modarith.h"

namespace primer {

// 64-byte-aligned heap buffer of u64 with value semantics — the backing
// store for RnsPoly limbs and NTT twiddle tables, sized so kernels stream
// cache-line-aligned memory.  Intentionally minimal: exact-size, no spare
// capacity, no iterator surface.
class AlignedU64 {
 public:
  static constexpr std::size_t kAlign = 64;

  AlignedU64() = default;
  explicit AlignedU64(std::size_t n, u64 fill = 0) { assign(n, fill); }

  AlignedU64(const AlignedU64& o) { copy_from(o); }
  AlignedU64& operator=(const AlignedU64& o) {
    if (this != &o) copy_from(o);
    return *this;
  }
  AlignedU64(AlignedU64&& o) noexcept : buf_(o.buf_), size_(o.size_) {
    o.buf_ = nullptr;
    o.size_ = 0;
  }
  AlignedU64& operator=(AlignedU64&& o) noexcept {
    if (this != &o) {
      release();
      buf_ = o.buf_;
      size_ = o.size_;
      o.buf_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }
  ~AlignedU64() { release(); }

  void assign(std::size_t n, u64 fill) {
    reallocate(n);
    for (std::size_t i = 0; i < size_; ++i) buf_[i] = fill;
  }

  u64* data() { return buf_; }
  const u64* data() const { return buf_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  u64& operator[](std::size_t i) { return buf_[i]; }
  const u64& operator[](std::size_t i) const { return buf_[i]; }

 private:
  void reallocate(std::size_t n) {
    release();
    if (n != 0) {
      buf_ = static_cast<u64*>(
          ::operator new[](n * sizeof(u64), std::align_val_t{kAlign}));
    }
    size_ = n;
  }
  void copy_from(const AlignedU64& o) {
    reallocate(o.size_);
    if (size_ != 0) std::memcpy(buf_, o.buf_, size_ * sizeof(u64));
  }
  void release() {
    if (buf_ != nullptr) {
      ::operator delete[](buf_, std::align_val_t{kAlign});
      buf_ = nullptr;
    }
  }

  u64* buf_ = nullptr;
  std::size_t size_ = 0;
};

// One kernel set.  All spans are length n unless noted; `out` may alias `a`
// (in-place) for the elementwise ops.  Twiddle tables (w, w_shoup) are the
// Shoup operand/quotient pairs in bit-reversed order, as built by Ntt.
struct NttKernel {
  const char* name;

  // Scale of every precomputed Shoup quotient this set consumes:
  // floor(w * 2^shoup_shift / p).  64 for the scalar/avx2/avx512 tiers, 52
  // for avx512ifma.  Twiddle tables, key Shoup tables, and scalar_mul
  // operands are NOT interchangeable across sets with different shifts.
  std::uint32_t shoup_shift;

  // In-place forward negacyclic NTT (Cooley–Tukey DIT, merged psi powers).
  // Input may be anywhere in [0, 4p) (the first-stage conditional subtract
  // absorbs lazy inputs); output fully reduced in [0, p).
  void (*fwd_ntt)(u64* a, std::size_t n, const u64* w, const u64* w_shoup,
                  u64 p);
  // Forward NTT without the final [0, p) correction sweep: same butterfly
  // walk as fwd_ntt, output left in the lazy range [0, 4p).  The output is
  // congruent to fwd_ntt's limb for limb but NOT canonical — callers must
  // feed it only to consumers that accept redundant residues (reduce_span,
  // shoup_mul_acc_lazy2) or reduce it themselves.  Key-switch digit
  // transforms use this to drop one full pass per digit limb.
  void (*fwd_ntt_lazy)(u64* a, std::size_t n, const u64* w,
                       const u64* w_shoup, u64 p);
  // In-place inverse transform (Gentleman–Sande), including the 1/n scaling.
  void (*inv_ntt)(u64* a, std::size_t n, const u64* w, const u64* w_shoup,
                  u64 n_inv, u64 n_inv_shoup, u64 p);

  // out[i] = a[i] + b[i] mod p
  void (*add)(u64* out, const u64* a, const u64* b, std::size_t n, u64 p);
  // out[i] = a[i] - b[i] mod p
  void (*sub)(u64* out, const u64* a, const u64* b, std::size_t n, u64 p);
  // out[i] = -a[i] mod p
  void (*neg)(u64* out, const u64* a, std::size_t n, u64 p);
  // out[i] = a[i] * b[i] mod p via Barrett (ratio = floor(2^128/p) words).
  void (*mul)(u64* out, const u64* a, const u64* b, std::size_t n, u64 p,
              u64 ratio_hi, u64 ratio_lo);
  // out[i] = (out[i] + a[i] * b[i]) mod p — the packed-matmul inner loop.
  void (*mul_acc)(u64* out, const u64* a, const u64* b, std::size_t n, u64 p,
                  u64 ratio_hi, u64 ratio_lo);
  // out[i] = w * a[i] mod p with Shoup precomputation.
  void (*scalar_mul)(u64* out, const u64* a, std::size_t n, u64 w,
                     u64 w_shoup, u64 p);

  // out[i] = a[i] mod p for arbitrary 64-bit inputs (residues of a wider
  // modulus) — the key-switch digit re-reduction.  ratio_hi is the high
  // word of floor(2^128 / p) (Barrett::ratio_hi()).  May alias out == a.
  void (*reduce_span)(u64* out, const u64* a, std::size_t n, u64 p,
                      u64 ratio_hi);
  // Lazy 128-bit accumulate: (hi[i]:lo[i]) += a[i] * b[i], no reduction at
  // all.  Caller bounds the running sum below p * 2^64 — k accumulated
  // products of values < p need k * p < 2^64 (k <= 8 at the p < 2^61
  // library bound).
  void (*mul_acc_lazy)(u64* lo, u64* hi, const u64* a, const u64* b,
                       std::size_t n);
  // out[i] = (hi[i]*2^64 + lo[i]) mod p — the single Barrett sweep that
  // closes a mul_acc_lazy chain.
  void (*reduce_acc_span)(u64* out, const u64* lo, const u64* hi,
                          std::size_t n, u64 p, u64 ratio_hi, u64 ratio_lo);
  // Dual-stream Shoup-lazy accumulate: acc0[i] += a[i] * w0[i] mod⁺ p and
  // acc1[i] += a[i] * w1[i] mod⁺ p in one pass over the shared operand `a`
  // (the key-switch digit, consumed by the key's b and a limbs together).
  // w*_shoup[i] holds floor(w*[i] * 2^shoup_shift / p), precomputed at
  // keygen for the fixed key streams in this kernel set's convention.
  // Each product lands in [0, 2p) with no division and a single
  // conditional subtraction keeps the accumulators in [0, 2p) — the
  // running sums never widen past 64 bits regardless of how many digits
  // accumulate.  Requires w*[i] < p and acc* in [0, 2p) on entry; `a` may
  // be any 64-bit values on the 64-convention tiers, any value below 2^52
  // on avx512ifma (lazy forward-NTT digits in [0, 4p) qualify at its
  // p < 2^50 bound).
  void (*shoup_mul_acc_lazy2)(u64* acc0, u64* acc1, const u64* a,
                              const u64* w0, const u64* w0_shoup,
                              const u64* w1, const u64* w1_shoup,
                              std::size_t n, u64 p);
  // out[i] = (a[i] + canonical(b[i])) mod p with a fully reduced and b in
  // [0, 2p) — folds the closing correction of a shoup_mul_acc_lazy chain
  // into the accumulator add.
  void (*add_reduce2p)(u64* out, const u64* a, const u64* b, std::size_t n,
                       u64 p);
};

// The portable reference kernels (always available).
const NttKernel& scalar_kernel();

// The AVX2 kernels, or nullptr when compiled without AVX2 support.  Runtime
// CPU support is NOT checked here — use dispatch_kernel().
const NttKernel* avx2_kernel();

// True when the AVX2 kernels are compiled in and the CPU supports AVX2.
bool avx2_available();

// The AVX512-DQ kernels, or nullptr when compiled without AVX512F+DQ
// support.  Runtime CPU support is NOT checked here — use dispatch_kernel().
const NttKernel* avx512_kernel();

// True when the AVX512-DQ kernels are compiled in and the CPU reports
// AVX512F + AVX512DQ.
bool avx512_available();

// The AVX512-IFMA sub-table (52-bit Shoup convention, vpmadd52 butterflies;
// non-IFMA entries shared with the DQ tier), or nullptr when compiled
// without AVX512IFMA support.  Only valid for moduli p < 2^50.
const NttKernel* avx512ifma_kernel();

// True when the IFMA kernels are compiled in and the CPU reports
// AVX512F + AVX512DQ + AVX512IFMA.
bool avx512ifma_available();

// Kernel set for arithmetic modulo p, honoring PRIMER_NTT_KERNEL.  The env
// variable is re-read on every call so tests can toggle it between Ntt
// constructions; the result is stable for the lifetime of the objects that
// cache it.
const NttKernel& dispatch_kernel(u64 p);

}  // namespace primer
