// Negacyclic number-theoretic transform over Z_p[x]/(x^n + 1).
//
// The transform folds multiplication by powers of psi (a primitive 2n-th
// root of unity) into the butterfly twiddles, so forward() maps coefficient
// vectors to evaluations at odd powers of psi and pointwise products in the
// transformed domain correspond to negacyclic convolution — exactly the
// polynomial product the BFV ring needs.  Implementation follows the
// standard Cooley–Tukey (decimation in time, bit-reversed twiddles) /
// Gentleman–Sande (inverse) pair with Shoup lazy multiplication.
//
// The butterfly loops themselves live in the kernel layer (ntt/kernels.h):
// each Ntt binds to a kernel set at construction (scalar, AVX2, AVX-512 DQ,
// or AVX-512 IFMA, chosen by runtime dispatch / PRIMER_NTT_KERNEL) and
// stores its twiddles as separate operand/quotient arrays in 64-byte-aligned
// memory, built in the bound kernel's Shoup quotient convention
// (NttKernel::shoup_shift), so the vector kernels stream contiguous cache
// lines.  All kernels fully reduce their outputs, so results are
// bit-identical across kernel choices.
#pragma once

#include <cstdint>
#include <vector>

#include "ntt/kernels.h"
#include "ntt/modarith.h"

namespace primer {

// Bit-reversal of the low `bits` bits of v — the slot ordering the
// Cooley–Tukey butterflies produce.  Shared by the twiddle-table builder
// and the Galois NTT permutation tables (HeContext::galois_ntt_table), so
// any index-ordering change stays in one place.
inline std::size_t bit_reverse(std::size_t v, int bits) {
  std::size_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

class Ntt {
 public:
  // `n` must be a power of two; `p` must satisfy p ≡ 1 (mod 2n).
  Ntt(std::size_t n, u64 p);

  std::size_t degree() const { return n_; }
  u64 modulus() const { return p_; }
  // Name of the kernel set this transform dispatches to ("scalar", "avx2",
  // "avx512", "avx512ifma").
  const char* kernel_name() const { return kernel_->name; }

  // In-place forward negacyclic NTT (coefficient -> evaluation domain) over
  // a length-n span.  This is the hot-path entry: no allocation, no size
  // check, memory streamed directly by the kernel.
  void forward(u64* a) const {
    kernel_->fwd_ntt(a, n_, fwd_w_.data(), fwd_wq_.data(), p_);
  }

  // Forward transform WITHOUT the final [0, p) correction sweep: output is
  // congruent to forward() limb for limb but lives in the lazy range
  // [0, 4p).  Consumers must accept redundant residues (reduce_span,
  // shoup_mul_acc_lazy2) — the key-switch digit staging uses this to skip
  // one full pass over every digit polynomial.
  void forward_lazy_out(u64* a) const {
    kernel_->fwd_ntt_lazy(a, n_, fwd_w_.data(), fwd_wq_.data(), p_);
  }

  // In-place inverse transform (evaluation -> coefficient domain).
  void inverse(u64* a) const {
    kernel_->inv_ntt(a, n_, inv_w_.data(), inv_wq_.data(), n_inv_,
                     n_inv_shoup_, p_);
  }

  // Checked vector overloads (encoder, tests, schoolbook comparisons).
  void forward(std::vector<u64>& a) const;
  void inverse(std::vector<u64>& a) const;

  // Batched transforms over independent polynomials, parallelized across
  // the global executor (common/parallel.h).  Each polynomial is
  // transformed exactly as by forward()/inverse(), so results are
  // bit-identical to the serial loop regardless of thread count.
  void forward_batch(std::vector<std::vector<u64>>& polys) const;
  void inverse_batch(std::vector<std::vector<u64>>& polys) const;

  // out[i] = a[i] * b[i] mod p over length-n spans (Barrett constants are
  // precomputed members — nothing is rebuilt per call).
  void pointwise(const u64* a, const u64* b, u64* out) const {
    kernel_->mul(out, a, b, n_, p_, barrett_.ratio_hi(), barrett_.ratio_lo());
  }
  // out[i] = (out[i] + a[i] * b[i]) mod p — fused accumulate for the
  // packed-matmul inner loop.
  void pointwise_accumulate(const u64* a, const u64* b, u64* out) const {
    kernel_->mul_acc(out, a, b, n_, p_, barrett_.ratio_hi(),
                     barrett_.ratio_lo());
  }

  // Checked vector overload.
  void pointwise(const std::vector<u64>& a, const std::vector<u64>& b,
                 std::vector<u64>& out) const;

  // Full negacyclic polynomial product a * b mod (x^n + 1, p).
  std::vector<u64> negacyclic_multiply(std::vector<u64> a,
                                       std::vector<u64> b) const;

  // The kernel set bound to this transform (elementwise limb ops share it).
  const NttKernel& kernel() const { return *kernel_; }
  const Barrett& barrett() const { return barrett_; }

 private:
  std::size_t n_;
  int log_n_;
  u64 p_;
  Barrett barrett_;
  const NttKernel* kernel_;
  // Shoup operand/quotient twiddle tables, bit-reversed order, aligned.
  AlignedU64 fwd_w_, fwd_wq_;   // psi powers
  AlignedU64 inv_w_, inv_wq_;   // psi^-1 powers
  u64 n_inv_ = 0, n_inv_shoup_ = 0;
};

}  // namespace primer
