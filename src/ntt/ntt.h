// Negacyclic number-theoretic transform over Z_p[x]/(x^n + 1).
//
// The transform folds multiplication by powers of psi (a primitive 2n-th
// root of unity) into the butterfly twiddles, so forward() maps coefficient
// vectors to evaluations at odd powers of psi and pointwise products in the
// transformed domain correspond to negacyclic convolution — exactly the
// polynomial product the BFV ring needs.  Implementation follows the
// standard Cooley–Tukey (decimation in time, bit-reversed twiddles) /
// Gentleman–Sande (inverse) pair with Shoup lazy multiplication.
#pragma once

#include <cstdint>
#include <vector>

#include "ntt/modarith.h"

namespace primer {

class Ntt {
 public:
  // `n` must be a power of two; `p` must satisfy p ≡ 1 (mod 2n).
  Ntt(std::size_t n, u64 p);

  std::size_t degree() const { return n_; }
  u64 modulus() const { return p_; }

  // In-place forward negacyclic NTT (coefficient -> evaluation domain).
  void forward(std::vector<u64>& a) const;

  // In-place inverse transform (evaluation -> coefficient domain).
  void inverse(std::vector<u64>& a) const;

  // Batched transforms over independent polynomials, parallelized across
  // the global executor (common/parallel.h).  Each polynomial is
  // transformed exactly as by forward()/inverse(), so results are
  // bit-identical to the serial loop regardless of thread count.
  void forward_batch(std::vector<std::vector<u64>>& polys) const;
  void inverse_batch(std::vector<std::vector<u64>>& polys) const;

  // out[i] = a[i] * b[i] mod p.
  void pointwise(const std::vector<u64>& a, const std::vector<u64>& b,
                 std::vector<u64>& out) const;

  // Full negacyclic polynomial product a * b mod (x^n + 1, p).
  std::vector<u64> negacyclic_multiply(std::vector<u64> a,
                                       std::vector<u64> b) const;

 private:
  std::size_t n_;
  int log_n_;
  u64 p_;
  std::vector<ShoupMul> fwd_twiddles_;  // psi powers, bit-reversed order
  std::vector<ShoupMul> inv_twiddles_;  // psi^-1 powers, bit-reversed order
  ShoupMul n_inv_;
};

}  // namespace primer
