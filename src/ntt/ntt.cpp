#include "ntt/ntt.h"

#include <stdexcept>

#include "common/parallel.h"
#include "ntt/primes.h"

namespace primer {

namespace {

int ilog2(std::size_t n) {
  int l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

std::size_t bit_reverse(std::size_t v, int bits) {
  std::size_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

}  // namespace

Ntt::Ntt(std::size_t n, u64 p) : n_(n), log_n_(ilog2(n)), p_(p) {
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("Ntt: degree must be a power of two");
  }
  if ((p - 1) % (2 * n) != 0) {
    throw std::invalid_argument("Ntt: modulus p must be 1 mod 2n");
  }
  const u64 psi = find_primitive_root(p, 2 * n);
  const u64 psi_inv = inv_mod(psi, p);

  fwd_twiddles_.resize(n);
  inv_twiddles_.resize(n);
  u64 power = 1, power_inv = 1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t rev = bit_reverse(i, log_n_);
    fwd_twiddles_[rev] = ShoupMul(power, p);
    inv_twiddles_[rev] = ShoupMul(power_inv, p);
    power = mul_mod(power, psi, p);
    power_inv = mul_mod(power_inv, psi_inv, p);
  }
  n_inv_ = ShoupMul(inv_mod(static_cast<u64>(n), p), p);
}

void Ntt::forward(std::vector<u64>& a) const {
  if (a.size() != n_) throw std::invalid_argument("Ntt::forward: size");
  // Cooley–Tukey DIT with merged psi powers (Longa–Naehrig layout).
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j1 = 2 * i * t;
      const std::size_t j2 = j1 + t;
      const ShoupMul& s = fwd_twiddles_[m + i];
      for (std::size_t j = j1; j < j2; ++j) {
        const u64 u = a[j];
        const u64 v = s.mul(a[j + t], p_);
        a[j] = add_mod(u, v, p_);
        a[j + t] = sub_mod(u, v, p_);
      }
    }
  }
}

void Ntt::inverse(std::vector<u64>& a) const {
  if (a.size() != n_) throw std::invalid_argument("Ntt::inverse: size");
  // Gentleman–Sande DIF using inverse twiddles.
  std::size_t t = 1;
  for (std::size_t m = n_; m > 1; m >>= 1) {
    std::size_t j1 = 0;
    const std::size_t h = m >> 1;
    for (std::size_t i = 0; i < h; ++i) {
      const std::size_t j2 = j1 + t;
      const ShoupMul& s = inv_twiddles_[h + i];
      for (std::size_t j = j1; j < j2; ++j) {
        const u64 u = a[j];
        const u64 v = a[j + t];
        a[j] = add_mod(u, v, p_);
        a[j + t] = s.mul(sub_mod(u, v, p_), p_);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (auto& x : a) x = n_inv_.mul(x, p_);
}

void Ntt::forward_batch(std::vector<std::vector<u64>>& polys) const {
  parallel_for(0, polys.size(), [&](std::size_t i) { forward(polys[i]); });
}

void Ntt::inverse_batch(std::vector<std::vector<u64>>& polys) const {
  parallel_for(0, polys.size(), [&](std::size_t i) { inverse(polys[i]); });
}

void Ntt::pointwise(const std::vector<u64>& a, const std::vector<u64>& b,
                    std::vector<u64>& out) const {
  if (a.size() != n_ || b.size() != n_) {
    throw std::invalid_argument("Ntt::pointwise: size");
  }
  out.resize(n_);
  const Barrett barrett(p_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = barrett.mul(a[i], b[i]);
}

std::vector<u64> Ntt::negacyclic_multiply(std::vector<u64> a,
                                          std::vector<u64> b) const {
  forward(a);
  forward(b);
  std::vector<u64> out;
  pointwise(a, b, out);
  inverse(out);
  return out;
}

}  // namespace primer
