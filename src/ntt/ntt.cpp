#include "ntt/ntt.h"

#include <stdexcept>

#include "common/parallel.h"
#include "ntt/primes.h"

namespace primer {

namespace {

int ilog2(std::size_t n) {
  int l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

}  // namespace

Ntt::Ntt(std::size_t n, u64 p)
    : n_(n),
      log_n_(ilog2(n)),
      p_(p),
      barrett_(p),
      kernel_(&dispatch_kernel(p)) {
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("Ntt: degree must be a power of two");
  }
  if ((p - 1) % (2 * n) != 0) {
    throw std::invalid_argument("Ntt: modulus p must be 1 mod 2n");
  }
  const u64 psi = find_primitive_root(p, 2 * n);
  const u64 psi_inv = inv_mod(psi, p);

  fwd_w_.assign(n, 0);
  fwd_wq_.assign(n, 0);
  inv_w_.assign(n, 0);
  inv_wq_.assign(n, 0);
  // Twiddle quotients follow the bound kernel's Shoup convention (64-bit
  // high-half for scalar/avx2/avx512, 52-bit vpmadd52hi for avx512ifma).
  const unsigned shift = kernel_->shoup_shift;
  u64 power = 1, power_inv = 1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t rev = bit_reverse(i, log_n_);
    const ShoupMul f(power, p, shift);
    const ShoupMul g(power_inv, p, shift);
    fwd_w_[rev] = f.operand;
    fwd_wq_[rev] = f.quotient;
    inv_w_[rev] = g.operand;
    inv_wq_[rev] = g.quotient;
    power = mul_mod(power, psi, p);
    power_inv = mul_mod(power_inv, psi_inv, p);
  }
  const ShoupMul ninv(inv_mod(static_cast<u64>(n), p), p, shift);
  n_inv_ = ninv.operand;
  n_inv_shoup_ = ninv.quotient;
}

void Ntt::forward(std::vector<u64>& a) const {
  if (a.size() != n_) throw std::invalid_argument("Ntt::forward: size");
  forward(a.data());
}

void Ntt::inverse(std::vector<u64>& a) const {
  if (a.size() != n_) throw std::invalid_argument("Ntt::inverse: size");
  inverse(a.data());
}

void Ntt::forward_batch(std::vector<std::vector<u64>>& polys) const {
  parallel_for(0, polys.size(), [&](std::size_t i) { forward(polys[i]); });
}

void Ntt::inverse_batch(std::vector<std::vector<u64>>& polys) const {
  parallel_for(0, polys.size(), [&](std::size_t i) { inverse(polys[i]); });
}

void Ntt::pointwise(const std::vector<u64>& a, const std::vector<u64>& b,
                    std::vector<u64>& out) const {
  if (a.size() != n_ || b.size() != n_) {
    throw std::invalid_argument("Ntt::pointwise: size");
  }
  out.resize(n_);
  pointwise(a.data(), b.data(), out.data());
}

std::vector<u64> Ntt::negacyclic_multiply(std::vector<u64> a,
                                          std::vector<u64> b) const {
  forward(a);
  forward(b);
  std::vector<u64> out;
  pointwise(a, b, out);
  inverse(out);
  return out;
}

}  // namespace primer
