// Modular arithmetic over word-sized primes (< 2^62) used by the RNS-BFV
// scheme.  Multiplication goes through unsigned 128-bit intermediates; a
// precomputed Barrett constant accelerates reduction in the NTT hot loop.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace primer {

using u64 = std::uint64_t;
using u128 = unsigned __int128;
using i64 = std::int64_t;

inline u64 add_mod(u64 a, u64 b, u64 m) {
  const u64 s = a + b;  // no overflow: moduli < 2^62
  return s >= m ? s - m : s;
}

inline u64 sub_mod(u64 a, u64 b, u64 m) { return a >= b ? a - b : a + m - b; }

inline u64 neg_mod(u64 a, u64 m) { return a == 0 ? 0 : m - a; }

inline u64 mul_mod(u64 a, u64 b, u64 m) {
  return static_cast<u64>((static_cast<u128>(a) * b) % m);
}

inline u64 pow_mod(u64 base, u64 exp, u64 m) {
  u64 result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mul_mod(result, base, m);
    base = mul_mod(base, base, m);
    exp >>= 1;
  }
  return result;
}

// Modular inverse via extended Euclid.  Throws if gcd(a, m) != 1.
inline u64 inv_mod(u64 a, u64 m) {
  i64 t = 0, new_t = 1;
  i64 r = static_cast<i64>(m), new_r = static_cast<i64>(a % m);
  while (new_r != 0) {
    const i64 q = r / new_r;
    t -= q * new_t;
    std::swap(t, new_t);
    r -= q * new_r;
    std::swap(r, new_r);
  }
  if (r != 1) throw std::invalid_argument("inv_mod: not invertible");
  if (t < 0) t += static_cast<i64>(m);
  return static_cast<u64>(t);
}

// True 128-bit Barrett reduction: a mod m using the precomputed two-word
// ratio (r_hi, r_lo) = floor(2^128 / m).  Writing a = a1*2^64 + a0 and
// expanding a * ratio / 2^128 term by term gives a 64-bit quotient estimate
// q that undershoots the exact floor(a/m) by at most 3 (one unit per dropped
// fractional term), so the remainder lands in [0, 4m) and a short correction
// loop finishes.  Requires 4m < 2^64, i.e. m < 2^62 — the library-wide
// modulus bound.  No division instruction is ever executed.
inline u64 barrett_reduce128(u128 a, u64 m, u64 r_hi, u64 r_lo) {
  const u64 a0 = static_cast<u64>(a);
  const u64 a1 = static_cast<u64>(a >> 64);
  const u128 p01 = static_cast<u128>(a0) * r_hi;
  const u128 p10 = static_cast<u128>(a1) * r_lo;
  const u128 p11 = static_cast<u128>(a1) * r_hi;
  // Middle column: carries from the three partial products that straddle
  // the 2^64 boundary.  Fits u128 comfortably (three sub-2^64 terms).
  const u128 mid = ((static_cast<u128>(a0) * r_lo) >> 64) +
                   static_cast<u64>(p01) + static_cast<u64>(p10);
  const u64 q = static_cast<u64>(p11) + static_cast<u64>(p01 >> 64) +
                static_cast<u64>(p10 >> 64) + static_cast<u64>(mid >> 64);
  // Only the low 64 bits of q*m matter: the true remainder is < 4m < 2^64,
  // so the wrap-around subtraction is exact.
  u64 r = a0 - q * m;
  while (r >= m) r -= m;
  return r;
}

// Barrett reducer: floor-division-free reduction modulo a fixed m < 2^62.
class Barrett {
 public:
  Barrett() = default;
  explicit Barrett(u64 m) : m_(m) {
    // ratio = floor(2^128 / m).  For prime m (never a power of two) this
    // equals floor((2^128 - 1) / m), which u128 arithmetic gives directly.
    const u128 ratio = ~static_cast<u128>(0) / m;
    ratio_hi_ = static_cast<u64>(ratio >> 64);
    ratio_lo_ = static_cast<u64>(ratio);
  }

  u64 modulus() const { return m_; }
  u64 ratio_hi() const { return ratio_hi_; }
  u64 ratio_lo() const { return ratio_lo_; }

  // Returns a mod m for a < 2^64.
  u64 reduce(u64 a) const {
    // q = floor(a * ratio / 2^128) where ratio = floor(2^128/m):
    // since a < 2^64, a*ratio_hi contributes the needed bits.
    const u128 q = (static_cast<u128>(a) * ratio_hi_) >> 64;
    u64 r = a - static_cast<u64>(q) * m_;
    while (r >= m_) r -= m_;
    return r;
  }

  // Full 128-bit reduction (for products of two residues).
  u64 reduce128(u128 a) const {
    return barrett_reduce128(a, m_, ratio_hi_, ratio_lo_);
  }

  u64 mul(u64 a, u64 b) const {
    return reduce128(static_cast<u128>(a) * b);
  }

 private:
  u64 m_ = 0;
  u64 ratio_hi_ = 0;
  u64 ratio_lo_ = 0;  // low ratio word — consumed by barrett_reduce128
};

// Shoup precomputed-quotient multiplication: for a fixed operand w modulo m,
// mul_shoup(x) computes w*x mod m with one 64x64 high-half multiply and one
// subtraction.  This is the standard trick that makes software NTTs fast
// (used by SEAL, HElib, HEXL).
//
// The quotient scale is parameterizable: the default 64 matches the
// scalar/AVX2/AVX512-DQ kernels (floor(w * 2^64 / m), one 64x64 high-half
// multiply per product); the AVX512-IFMA kernels use 52 so the quotient
// estimate is a single vpmadd52hi (see NttKernel::shoup_shift).  mul()
// assumes the default 64-bit scale — kernel tables built with another
// shift must only be consumed by the matching kernel set.
struct ShoupMul {
  u64 operand = 0;  // w
  u64 quotient = 0; // floor(w * 2^shift / m)

  ShoupMul() = default;
  ShoupMul(u64 w, u64 m, unsigned shift = 64)
      : operand(w),
        quotient(static_cast<u64>((static_cast<u128>(w) << shift) / m)) {}

  u64 mul(u64 x, u64 m) const {
    const u64 hi = static_cast<u64>((static_cast<u128>(x) * quotient) >> 64);
    const u64 r = operand * x - hi * m;  // in [0, 2m)
    return r >= m ? r - m : r;
  }
};

}  // namespace primer
