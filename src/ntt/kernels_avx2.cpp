// AVX2 kernel set: 4-lane u64 butterflies and limb ops.
//
// AVX2 has no 64x64 multiply, so the Shoup/Barrett products are assembled
// from 32x32 partial products (vpmuludq) — mul64_lo / mul64_hi below.  The
// butterflies use the same lazy-reduction ranges as the scalar kernels
// ([0, 4p) forward, [0, 2p) inverse, one final correction sweep), and since
// every kernel fully reduces on exit, outputs are bit-identical to scalar.
//
// The last two forward stages (butterfly gaps 2 and 1) and the first two
// inverse stages interleave butterfly operands within a single vector; they
// are handled with 128-bit-lane permutes / 64-bit unpacks rather than
// falling back to scalar, so the whole transform stays vectorized.
//
// Bounds: requires p < 2^61.  Forward/inverse need 4p < 2^64; the Barrett
// pointwise product drops three carry terms of the 256-bit quotient, which
// costs at most 4 extra multiples of p in the remainder (r < 5p), corrected
// by the conditional-subtract chain 4p / 2p / p.  dispatch_kernel() routes
// larger moduli to the scalar set.
//
// This file is compiled with -mavx2 when the toolchain supports it (see
// CMakeLists.txt); on other toolchains avx2_kernel() returns nullptr.
#include "ntt/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace primer {

namespace {

inline __m256i load4(const u64* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void store4(u64* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}
inline __m256i bcast(u64 x) {
  return _mm256_set1_epi64x(static_cast<long long>(x));
}

// Low 64 bits of the unsigned 64x64 lane product.
inline __m256i mul64_lo(__m256i x, __m256i y) {
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(x, 32), y),
                       _mm256_mul_epu32(x, _mm256_srli_epi64(y, 32)));
  return _mm256_add_epi64(_mm256_mul_epu32(x, y),
                          _mm256_slli_epi64(cross, 32));
}

// High 64 bits of the unsigned 64x64 lane product (exact).
inline __m256i mul64_hi(__m256i x, __m256i y) {
  const __m256i lo32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i xh = _mm256_srli_epi64(x, 32);
  const __m256i yh = _mm256_srli_epi64(y, 32);
  const __m256i ll = _mm256_mul_epu32(x, y);
  const __m256i lh = _mm256_mul_epu32(x, yh);
  const __m256i hl = _mm256_mul_epu32(xh, y);
  const __m256i hh = _mm256_mul_epu32(xh, yh);
  const __m256i carry = _mm256_srli_epi64(
      _mm256_add_epi64(_mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                                        _mm256_and_si256(lh, lo32)),
                       _mm256_and_si256(hl, lo32)),
      32);
  return _mm256_add_epi64(
      _mm256_add_epi64(hh, carry),
      _mm256_add_epi64(_mm256_srli_epi64(lh, 32), _mm256_srli_epi64(hl, 32)));
}

// a >= t ? a - t : a, unsigned (sign-flip trick around the signed compare).
inline __m256i csub(__m256i a, __m256i t) {
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i lt = _mm256_cmpgt_epi64(_mm256_xor_si256(t, sign),
                                        _mm256_xor_si256(a, sign));
  return _mm256_sub_epi64(a, _mm256_andnot_si256(lt, t));
}

// Shoup multiply without correction: w*x - hi(x*wq)*p, in [0, 2p) for w < p.
inline __m256i shoup_lazy(__m256i x, __m256i w, __m256i wq, __m256i p) {
  const __m256i q = mul64_hi(x, wq);
  return _mm256_sub_epi64(mul64_lo(w, x), mul64_lo(q, p));
}

// Forward butterfly on 4 independent (X, Y) pairs: X in [0, 4p) -> cond
// subtract 2p; Y -> T = w*Y lazily; out (X+T, X-T+2p), both in [0, 4p).
inline void fwd_butterfly(__m256i& X, __m256i& Y, __m256i w, __m256i wq,
                          __m256i p, __m256i two_p) {
  const __m256i x = csub(X, two_p);
  const __m256i t = shoup_lazy(Y, w, wq, p);
  X = _mm256_add_epi64(x, t);
  Y = _mm256_add_epi64(_mm256_sub_epi64(x, t), two_p);
}

// Inverse butterfly: inputs in [0, 2p), outputs in [0, 2p).
inline void inv_butterfly(__m256i& X, __m256i& Y, __m256i w, __m256i wq,
                          __m256i p, __m256i two_p) {
  const __m256i s = csub(_mm256_add_epi64(X, Y), two_p);
  const __m256i d = _mm256_add_epi64(_mm256_sub_epi64(X, Y), two_p);
  X = s;
  Y = shoup_lazy(d, w, wq, p);
}

// [w0, w1] -> [w0, w0, w1, w1]
inline __m256i spread_pair(const u64* w) {
  const __m128i pair =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
  return _mm256_permute4x64_epi64(_mm256_castsi128_si256(pair), 0x50);
}

// Butterfly walk shared by fwd_ntt_avx2 (fully reduced) and
// fwd_ntt_lazy_avx2 (output left in [0, 4p)).
void fwd_ntt_lazy_avx2(u64* a, std::size_t n, const u64* w,
                       const u64* w_shoup, u64 p) {
  if (n < 8) {
    scalar_kernel().fwd_ntt_lazy(a, n, w, w_shoup, p);
    return;
  }
  const __m256i vp = bcast(p);
  const __m256i v2p = bcast(2 * p);

  // Stages with butterfly gap t >= 4: straight 4-wide loads.
  std::size_t t = n;
  std::size_t m = 1;
  for (; t > 4; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      u64* x = a + 2 * i * t;
      u64* y = x + t;
      const __m256i vw = bcast(w[m + i]);
      const __m256i vwq = bcast(w_shoup[m + i]);
      for (std::size_t j = 0; j < t; j += 4) {
        __m256i X = load4(x + j);
        __m256i Y = load4(y + j);
        fwd_butterfly(X, Y, vw, vwq, vp, v2p);
        store4(x + j, X);
        store4(y + j, Y);
      }
    }
  }

  // Gap t == 2 (m = n/4): blocks [x0 x1 y0 y1]; two blocks per iteration.
  m = n / 4;
  for (std::size_t i = 0; i < m; i += 2) {
    u64* base = a + 4 * i;
    const __m256i v0 = load4(base);
    const __m256i v1 = load4(base + 4);
    __m256i X = _mm256_permute2x128_si256(v0, v1, 0x20);
    __m256i Y = _mm256_permute2x128_si256(v0, v1, 0x31);
    const __m256i vw = spread_pair(w + m + i);
    const __m256i vwq = spread_pair(w_shoup + m + i);
    fwd_butterfly(X, Y, vw, vwq, vp, v2p);
    store4(base, _mm256_permute2x128_si256(X, Y, 0x20));
    store4(base + 4, _mm256_permute2x128_si256(X, Y, 0x31));
  }

  // Gap t == 1 (m = n/2): adjacent pairs; unpack de-interleaves 4 pairs into
  // lane order [i, i+2, i+1, i+3], so twiddles get the matching 0xD8 permute.
  m = n / 2;
  for (std::size_t i = 0; i < m; i += 4) {
    u64* base = a + 2 * i;
    const __m256i v0 = load4(base);
    const __m256i v1 = load4(base + 4);
    __m256i X = _mm256_unpacklo_epi64(v0, v1);
    __m256i Y = _mm256_unpackhi_epi64(v0, v1);
    const __m256i vw = _mm256_permute4x64_epi64(load4(w + m + i), 0xD8);
    const __m256i vwq =
        _mm256_permute4x64_epi64(load4(w_shoup + m + i), 0xD8);
    fwd_butterfly(X, Y, vw, vwq, vp, v2p);
    store4(base, _mm256_unpacklo_epi64(X, Y));
    store4(base + 4, _mm256_unpackhi_epi64(X, Y));
  }
}

void fwd_ntt_avx2(u64* a, std::size_t n, const u64* w, const u64* w_shoup,
                  u64 p) {
  if (n < 8) {
    scalar_kernel().fwd_ntt(a, n, w, w_shoup, p);
    return;
  }
  fwd_ntt_lazy_avx2(a, n, w, w_shoup, p);
  // Single correction sweep: [0, 4p) -> [0, p).
  const __m256i vp = bcast(p);
  const __m256i v2p = bcast(2 * p);
  for (std::size_t j = 0; j < n; j += 4) {
    __m256i x = load4(a + j);
    x = csub(x, v2p);
    x = csub(x, vp);
    store4(a + j, x);
  }
}

void inv_ntt_avx2(u64* a, std::size_t n, const u64* w, const u64* w_shoup,
                  u64 n_inv, u64 n_inv_shoup, u64 p) {
  if (n < 8) {
    scalar_kernel().inv_ntt(a, n, w, w_shoup, n_inv, n_inv_shoup, p);
    return;
  }
  const __m256i vp = bcast(p);
  const __m256i v2p = bcast(2 * p);

  // Gap t == 1 (h = n/2): adjacent pairs, same lane plan as the forward
  // t == 1 stage.
  std::size_t h = n / 2;
  for (std::size_t i = 0; i < h; i += 4) {
    u64* base = a + 2 * i;
    const __m256i v0 = load4(base);
    const __m256i v1 = load4(base + 4);
    __m256i X = _mm256_unpacklo_epi64(v0, v1);
    __m256i Y = _mm256_unpackhi_epi64(v0, v1);
    const __m256i vw = _mm256_permute4x64_epi64(load4(w + h + i), 0xD8);
    const __m256i vwq =
        _mm256_permute4x64_epi64(load4(w_shoup + h + i), 0xD8);
    inv_butterfly(X, Y, vw, vwq, vp, v2p);
    store4(base, _mm256_unpacklo_epi64(X, Y));
    store4(base + 4, _mm256_unpackhi_epi64(X, Y));
  }

  // Gap t == 2 (h = n/4): blocks [x0 x1 y0 y1], two per iteration.
  h = n / 4;
  for (std::size_t i = 0; i < h; i += 2) {
    u64* base = a + 4 * i;
    const __m256i v0 = load4(base);
    const __m256i v1 = load4(base + 4);
    __m256i X = _mm256_permute2x128_si256(v0, v1, 0x20);
    __m256i Y = _mm256_permute2x128_si256(v0, v1, 0x31);
    const __m256i vw = spread_pair(w + h + i);
    const __m256i vwq = spread_pair(w_shoup + h + i);
    inv_butterfly(X, Y, vw, vwq, vp, v2p);
    store4(base, _mm256_permute2x128_si256(X, Y, 0x20));
    store4(base + 4, _mm256_permute2x128_si256(X, Y, 0x31));
  }

  // Stages with gap t >= 4.
  std::size_t t = 4;
  for (h = n / 8; h >= 1; h >>= 1, t <<= 1) {
    for (std::size_t i = 0; i < h; ++i) {
      u64* x = a + 2 * i * t;
      u64* y = x + t;
      const __m256i vw = bcast(w[h + i]);
      const __m256i vwq = bcast(w_shoup[h + i]);
      for (std::size_t j = 0; j < t; j += 4) {
        __m256i X = load4(x + j);
        __m256i Y = load4(y + j);
        inv_butterfly(X, Y, vw, vwq, vp, v2p);
        store4(x + j, X);
        store4(y + j, Y);
      }
    }
  }

  // Scale by n^-1 and fully reduce: [0, 2p) -> [0, p).
  const __m256i vninv = bcast(n_inv);
  const __m256i vninvq = bcast(n_inv_shoup);
  for (std::size_t j = 0; j < n; j += 4) {
    __m256i x = shoup_lazy(load4(a + j), vninv, vninvq, vp);
    store4(a + j, csub(x, vp));
  }
}

// Barrett product of 4 lanes, fully reduced.  q keeps only the three
// dominant words of (x*y) * ratio >> 128; see the bounds note at the top.
inline __m256i barrett_mul4(__m256i x, __m256i y, __m256i vp, __m256i v2p,
                            __m256i v4p, __m256i rhi, __m256i rlo) {
  const __m256i lo = mul64_lo(x, y);
  const __m256i hi = mul64_hi(x, y);
  const __m256i q = _mm256_add_epi64(
      mul64_lo(hi, rhi),
      _mm256_add_epi64(mul64_hi(hi, rlo), mul64_hi(lo, rhi)));
  __m256i r = _mm256_sub_epi64(lo, mul64_lo(q, vp));
  r = csub(r, v4p);
  r = csub(r, v2p);
  return csub(r, vp);
}

void add_avx2(u64* out, const u64* a, const u64* b, std::size_t n, u64 p) {
  const __m256i vp = bcast(p);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store4(out + i, csub(_mm256_add_epi64(load4(a + i), load4(b + i)), vp));
  }
  for (; i < n; ++i) out[i] = add_mod(a[i], b[i], p);
}

void sub_avx2(u64* out, const u64* a, const u64* b, std::size_t n, u64 p) {
  const __m256i vp = bcast(p);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d = _mm256_sub_epi64(
        _mm256_add_epi64(load4(a + i), vp), load4(b + i));
    store4(out + i, csub(d, vp));
  }
  for (; i < n; ++i) out[i] = sub_mod(a[i], b[i], p);
}

void neg_avx2(u64* out, const u64* a, std::size_t n, u64 p) {
  const __m256i vp = bcast(p);
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = load4(a + i);
    const __m256i is_zero = _mm256_cmpeq_epi64(x, zero);
    store4(out + i,
           _mm256_andnot_si256(is_zero, _mm256_sub_epi64(vp, x)));
  }
  for (; i < n; ++i) out[i] = neg_mod(a[i], p);
}

void mul_avx2(u64* out, const u64* a, const u64* b, std::size_t n, u64 p,
              u64 ratio_hi, u64 ratio_lo) {
  const __m256i vp = bcast(p);
  const __m256i v2p = bcast(2 * p);
  const __m256i v4p = bcast(4 * p);
  const __m256i rhi = bcast(ratio_hi);
  const __m256i rlo = bcast(ratio_lo);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store4(out + i,
           barrett_mul4(load4(a + i), load4(b + i), vp, v2p, v4p, rhi, rlo));
  }
  for (; i < n; ++i) {
    out[i] = barrett_reduce128(static_cast<u128>(a[i]) * b[i], p, ratio_hi,
                               ratio_lo);
  }
}

void mul_acc_avx2(u64* out, const u64* a, const u64* b, std::size_t n, u64 p,
                  u64 ratio_hi, u64 ratio_lo) {
  const __m256i vp = bcast(p);
  const __m256i v2p = bcast(2 * p);
  const __m256i v4p = bcast(4 * p);
  const __m256i rhi = bcast(ratio_hi);
  const __m256i rlo = bcast(ratio_lo);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i prod =
        barrett_mul4(load4(a + i), load4(b + i), vp, v2p, v4p, rhi, rlo);
    store4(out + i, csub(_mm256_add_epi64(load4(out + i), prod), vp));
  }
  for (; i < n; ++i) {
    const u64 prod = barrett_reduce128(static_cast<u128>(a[i]) * b[i], p,
                                       ratio_hi, ratio_lo);
    out[i] = add_mod(out[i], prod, p);
  }
}

void scalar_mul_avx2(u64* out, const u64* a, std::size_t n, u64 w,
                     u64 w_shoup, u64 p) {
  const __m256i vp = bcast(p);
  const __m256i vw = bcast(w);
  const __m256i vwq = bcast(w_shoup);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store4(out + i, csub(shoup_lazy(load4(a + i), vw, vwq, vp), vp));
  }
  for (; i < n; ++i) {
    const u64 q = static_cast<u64>((static_cast<u128>(a[i]) * w_shoup) >> 64);
    u64 x = w * a[i] - q * p;
    if (x >= p) x -= p;
    out[i] = x;
  }
}

void reduce_span_avx2(u64* out, const u64* a, std::size_t n, u64 p,
                      u64 ratio_hi) {
  // Single-word Barrett quotient: q = hi64(x * ratio_hi) undershoots the
  // true quotient by at most 2, so r = x - q*p < 3p and the 2p / p
  // conditional-subtract chain fully reduces.
  const __m256i vp = bcast(p);
  const __m256i v2p = bcast(2 * p);
  const __m256i rhi = bcast(ratio_hi);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = load4(a + i);
    const __m256i q = mul64_hi(x, rhi);
    __m256i r = _mm256_sub_epi64(x, mul64_lo(q, vp));
    r = csub(r, v2p);
    store4(out + i, csub(r, vp));
  }
  for (; i < n; ++i) {
    const u64 x = a[i];
    const u64 q = static_cast<u64>((static_cast<u128>(x) * ratio_hi) >> 64);
    u64 r = x - q * p;
    while (r >= p) r -= p;
    out[i] = r;
  }
}

void mul_acc_lazy_avx2(u64* lo, u64* hi, const u64* a, const u64* b,
                       std::size_t n) {
  const __m256i sign =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = load4(a + i);
    const __m256i y = load4(b + i);
    const __m256i plo = mul64_lo(x, y);
    const __m256i phi = mul64_hi(x, y);
    const __m256i s = _mm256_add_epi64(load4(lo + i), plo);
    // Unsigned carry: s < plo after the add means the low word wrapped.
    // cmpgt yields all-ones (-1) on carry; subtracting it adds the carry.
    const __m256i carry = _mm256_cmpgt_epi64(_mm256_xor_si256(plo, sign),
                                             _mm256_xor_si256(s, sign));
    store4(lo + i, s);
    store4(hi + i, _mm256_sub_epi64(
                       _mm256_add_epi64(load4(hi + i), phi), carry));
  }
  for (; i < n; ++i) {
    const u128 prod = static_cast<u128>(a[i]) * b[i];
    const u64 plo = static_cast<u64>(prod);
    const u64 s = lo[i] + plo;
    hi[i] += static_cast<u64>(prod >> 64) + (s < plo ? 1 : 0);
    lo[i] = s;
  }
}

void reduce_acc_span_avx2(u64* out, const u64* lo, const u64* hi,
                          std::size_t n, u64 p, u64 ratio_hi, u64 ratio_lo) {
  // Same quotient shape as barrett_mul4 with the product words given
  // directly; requires hi*2^64 + lo < p*2^64 so the quotient fits 64 bits
  // (guaranteed by the mul_acc_lazy accumulation bound k*p < 2^64).
  const __m256i vp = bcast(p);
  const __m256i v2p = bcast(2 * p);
  const __m256i v4p = bcast(4 * p);
  const __m256i rhi = bcast(ratio_hi);
  const __m256i rlo = bcast(ratio_lo);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i l = load4(lo + i);
    const __m256i h = load4(hi + i);
    const __m256i q = _mm256_add_epi64(
        mul64_lo(h, rhi),
        _mm256_add_epi64(mul64_hi(h, rlo), mul64_hi(l, rhi)));
    __m256i r = _mm256_sub_epi64(l, mul64_lo(q, vp));
    r = csub(r, v4p);
    r = csub(r, v2p);
    store4(out + i, csub(r, vp));
  }
  for (; i < n; ++i) {
    const u128 acc = (static_cast<u128>(hi[i]) << 64) | lo[i];
    out[i] = barrett_reduce128(acc, p, ratio_hi, ratio_lo);
  }
}

void shoup_mul_acc_lazy2_avx2(u64* acc0, u64* acc1, const u64* a,
                              const u64* w0, const u64* w0_shoup,
                              const u64* w1, const u64* w1_shoup,
                              std::size_t n, u64 p) {
  const __m256i vp = bcast(p);
  const __m256i v2p = bcast(2 * p);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = load4(a + i);
    const __m256i t0 = shoup_lazy(x, load4(w0 + i), load4(w0_shoup + i),
                                  vp);  // [0, 2p)
    store4(acc0 + i, csub(_mm256_add_epi64(load4(acc0 + i), t0), v2p));
    const __m256i t1 = shoup_lazy(x, load4(w1 + i), load4(w1_shoup + i), vp);
    store4(acc1 + i, csub(_mm256_add_epi64(load4(acc1 + i), t1), v2p));
  }
  const u64 two_p = 2 * p;
  for (; i < n; ++i) {
    const u64 x = a[i];
    const u64 q0 =
        static_cast<u64>((static_cast<u128>(x) * w0_shoup[i]) >> 64);
    u64 s0 = acc0[i] + (w0[i] * x - q0 * p);
    if (s0 >= two_p) s0 -= two_p;
    acc0[i] = s0;
    const u64 q1 =
        static_cast<u64>((static_cast<u128>(x) * w1_shoup[i]) >> 64);
    u64 s1 = acc1[i] + (w1[i] * x - q1 * p);
    if (s1 >= two_p) s1 -= two_p;
    acc1[i] = s1;
  }
}

void add_reduce2p_avx2(u64* out, const u64* a, const u64* b, std::size_t n,
                       u64 p) {
  const __m256i vp = bcast(p);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = csub(load4(b + i), vp);
    store4(out + i, csub(_mm256_add_epi64(load4(a + i), x), vp));
  }
  for (; i < n; ++i) {
    u64 x = b[i];
    if (x >= p) x -= p;
    out[i] = add_mod(a[i], x, p);
  }
}

const NttKernel kAvx2Kernel = {
    .name = "avx2",
    .shoup_shift = 64,
    .fwd_ntt = fwd_ntt_avx2,
    .fwd_ntt_lazy = fwd_ntt_lazy_avx2,
    .inv_ntt = inv_ntt_avx2,
    .add = add_avx2,
    .sub = sub_avx2,
    .neg = neg_avx2,
    .mul = mul_avx2,
    .mul_acc = mul_acc_avx2,
    .scalar_mul = scalar_mul_avx2,
    .reduce_span = reduce_span_avx2,
    .mul_acc_lazy = mul_acc_lazy_avx2,
    .reduce_acc_span = reduce_acc_span_avx2,
    .shoup_mul_acc_lazy2 = shoup_mul_acc_lazy2_avx2,
    .add_reduce2p = add_reduce2p_avx2,
};

}  // namespace

const NttKernel* avx2_kernel() { return &kAvx2Kernel; }

}  // namespace primer

#else  // !__AVX2__

namespace primer {
const NttKernel* avx2_kernel() { return nullptr; }
}  // namespace primer

#endif
