// Generation of NTT-friendly primes: p ≡ 1 (mod 2n) so that the 2n-th root
// of unity needed by the negacyclic NTT exists in Z_p.  Primality is checked
// with deterministic Miller–Rabin (valid for all 64-bit integers with the
// standard 12-witness set).
#pragma once

#include <cstdint>
#include <vector>

#include "ntt/modarith.h"

namespace primer {

bool is_prime_u64(u64 n);

// Returns `count` distinct primes of exactly `bits` bits with p ≡ 1 mod 2n,
// scanning downward from 2^bits.  Throws if the range is exhausted.
std::vector<u64> generate_ntt_primes(int bits, std::size_t poly_degree,
                                     std::size_t count);

// Smallest prime >= floor with p ≡ 1 mod 2n (used for plaintext modulus t).
u64 first_ntt_prime_at_least(u64 floor_value, std::size_t poly_degree);

// A generator of the multiplicative group Z_p^* (p prime).
u64 find_group_generator(u64 p);

// A primitive 2n-th root of unity modulo p (requires p ≡ 1 mod 2n).
u64 find_primitive_root(u64 p, std::size_t two_n);

}  // namespace primer
