#include "ntt/primes.h"

#include <array>
#include <stdexcept>

namespace primer {

namespace {

// Deterministic Miller–Rabin witness set covering all n < 2^64.
constexpr std::array<u64, 12> kWitnesses = {2,  3,  5,  7,  11, 13,
                                            17, 19, 23, 29, 31, 37};

bool miller_rabin(u64 n, u64 a) {
  if (a % n == 0) return true;
  u64 d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  u64 x = pow_mod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 0; i < r - 1; ++i) {
    x = mul_mod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool is_prime_u64(u64 n) {
  if (n < 2) return false;
  for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  for (u64 a : kWitnesses) {
    if (!miller_rabin(n, a)) return false;
  }
  return true;
}

std::vector<u64> generate_ntt_primes(int bits, std::size_t poly_degree,
                                     std::size_t count) {
  if (bits < 20 || bits > 62) {
    throw std::invalid_argument("generate_ntt_primes: bits must be in [20,62]");
  }
  const u64 two_n = 2 * static_cast<u64>(poly_degree);
  std::vector<u64> primes;
  // Start at the largest value < 2^bits that is ≡ 1 mod 2n.
  u64 candidate = (u64{1} << bits) - 1;
  candidate -= (candidate - 1) % two_n;  // now candidate ≡ 1 (mod 2n)
  const u64 lower = u64{1} << (bits - 1);
  while (primes.size() < count && candidate > lower) {
    if (is_prime_u64(candidate)) primes.push_back(candidate);
    if (candidate < two_n) break;
    candidate -= two_n;
  }
  if (primes.size() < count) {
    throw std::runtime_error("generate_ntt_primes: exhausted candidate range");
  }
  return primes;
}

u64 first_ntt_prime_at_least(u64 floor_value, std::size_t poly_degree) {
  const u64 two_n = 2 * static_cast<u64>(poly_degree);
  u64 candidate = floor_value + ((two_n + 1 - (floor_value % two_n)) % two_n);
  if (candidate < floor_value) candidate += two_n;
  // candidate ≡ 1 (mod 2n) and >= floor_value.
  while (!is_prime_u64(candidate)) candidate += two_n;
  return candidate;
}

u64 find_group_generator(u64 p) {
  // Factor p-1 (trial division — fine for our 20–60-bit moduli).
  u64 n = p - 1;
  std::vector<u64> factors;
  for (u64 f = 2; f * f <= n; ++f) {
    if (n % f == 0) {
      factors.push_back(f);
      while (n % f == 0) n /= f;
    }
  }
  if (n > 1) factors.push_back(n);

  for (u64 g = 2; g < p; ++g) {
    bool ok = true;
    for (u64 f : factors) {
      if (pow_mod(g, (p - 1) / f, p) == 1) {
        ok = false;
        break;
      }
    }
    if (ok) return g;
  }
  throw std::runtime_error("find_group_generator: no generator found");
}

u64 find_primitive_root(u64 p, std::size_t two_n) {
  if ((p - 1) % two_n != 0) {
    throw std::invalid_argument("find_primitive_root: p != 1 mod 2n");
  }
  const u64 g = find_group_generator(p);
  const u64 root = pow_mod(g, (p - 1) / two_n, p);
  // root has order exactly 2n because g is a generator.
  return root;
}

}  // namespace primer
