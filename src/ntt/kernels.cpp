// Kernel dispatch: compile-time availability (kernels_avx2.cpp), runtime
// cpuid, the p < 2^61 modulus bound, and the PRIMER_NTT_KERNEL override.
#include "ntt/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace primer {

namespace {

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

void warn_once(bool& flag, const char* msg) {
  if (!flag) {
    flag = true;
    std::fprintf(stderr, "primer: %s\n", msg);
  }
}

// The AVX2 lazy butterflies need 4p < 2^64 and the vector Barrett product
// needs 5p of headroom; p < 2^61 covers both with margin.
constexpr u64 kAvx2ModulusBound = u64{1} << 61;

}  // namespace

bool avx2_available() {
  static const bool ok = avx2_kernel() != nullptr && cpu_has_avx2();
  return ok;
}

const NttKernel& dispatch_kernel(u64 p) {
  static bool warned_unavailable = false;
  static bool warned_unknown = false;
  const bool avx2_ok = avx2_available() && p < kAvx2ModulusBound;
  const char* env = std::getenv("PRIMER_NTT_KERNEL");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return scalar_kernel();
    if (std::strcmp(env, "avx2") == 0) {
      if (avx2_ok) return *avx2_kernel();
      warn_once(warned_unavailable,
                "PRIMER_NTT_KERNEL=avx2 requested but unavailable "
                "(not compiled in, no CPU support, or modulus >= 2^61); "
                "falling back to scalar kernels");
      return scalar_kernel();
    }
    warn_once(warned_unknown,
              "PRIMER_NTT_KERNEL: unknown value (expected scalar|avx2); "
              "using automatic dispatch");
  }
  return avx2_ok ? *avx2_kernel() : scalar_kernel();
}

}  // namespace primer
