// Kernel dispatch: compile-time availability (kernels_avx2.cpp /
// kernels_avx512.cpp), runtime cpuid, the per-tier modulus bounds, and the
// PRIMER_NTT_KERNEL override.
#include "ntt/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace primer {

namespace {

// __builtin_cpu_supports requires a literal argument, hence one probe per
// feature.
#if defined(__x86_64__) || defined(__i386__)
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }
bool cpu_has_avx512dq() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0;
}
bool cpu_has_avx512ifma() {
  return cpu_has_avx512dq() && __builtin_cpu_supports("avx512ifma") != 0;
}
#else
bool cpu_has_avx2() { return false; }
bool cpu_has_avx512dq() { return false; }
bool cpu_has_avx512ifma() { return false; }
#endif

// One-time warning per distinct condition (dispatch may run concurrently
// from parallel Ntt constructions).
void warn_once(std::atomic<bool>& flag, const char* msg) {
  if (!flag.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr, "primer: %s\n", msg);
  }
}

// The AVX2/AVX512-DQ lazy butterflies need 4p < 2^64 and the vector Barrett
// product needs 5p of headroom; p < 2^61 covers both with margin.
constexpr u64 kLazyModulusBound = u64{1} << 61;

// The IFMA butterflies multiply lazy values in [0, 4p) with vpmadd52, whose
// operands must fit 52 bits: 4p < 2^52, i.e. p < 2^50.  Moduli in
// [2^50, 2^52) stay on the DQ tier.
constexpr u64 kIfmaModulusBound = u64{1} << 50;

}  // namespace

bool avx2_available() {
  static const bool ok = avx2_kernel() != nullptr && cpu_has_avx2();
  return ok;
}

bool avx512_available() {
  static const bool ok = avx512_kernel() != nullptr && cpu_has_avx512dq();
  return ok;
}

bool avx512ifma_available() {
  static const bool ok =
      avx512ifma_kernel() != nullptr && cpu_has_avx512ifma();
  return ok;
}

const NttKernel& dispatch_kernel(u64 p) {
  const bool avx2_ok = avx2_available() && p < kLazyModulusBound;
  const bool avx512_ok = avx512_available() && p < kLazyModulusBound;
  const bool ifma_ok = avx512ifma_available() && p < kIfmaModulusBound;
  const char* env = std::getenv("PRIMER_NTT_KERNEL");
  if (env != nullptr && *env != '\0') {
    // The fallback warning fires once per REQUESTED value: a sweep that
    // asks for avx512 and later avx512ifma reports each miss separately.
    static std::atomic<bool> warned_avx2{false};
    static std::atomic<bool> warned_avx512{false};
    static std::atomic<bool> warned_ifma{false};
    if (std::strcmp(env, "scalar") == 0) return scalar_kernel();
    if (std::strcmp(env, "avx2") == 0) {
      if (avx2_ok) return *avx2_kernel();
      warn_once(warned_avx2,
                "PRIMER_NTT_KERNEL=avx2 requested but unavailable "
                "(not compiled in, no CPU support, or modulus >= 2^61); "
                "falling back to scalar kernels");
      return scalar_kernel();
    }
    if (std::strcmp(env, "avx512") == 0) {
      if (avx512_ok) return *avx512_kernel();
      warn_once(warned_avx512,
                "PRIMER_NTT_KERNEL=avx512 requested but unavailable "
                "(not compiled in, no CPU support, or modulus >= 2^61); "
                "falling back to scalar kernels");
      return scalar_kernel();
    }
    if (std::strcmp(env, "avx512ifma") == 0) {
      if (ifma_ok) return *avx512ifma_kernel();
      warn_once(warned_ifma,
                "PRIMER_NTT_KERNEL=avx512ifma requested but unavailable "
                "(not compiled in, no CPU support, or modulus >= 2^50); "
                "falling back to scalar kernels");
      return scalar_kernel();
    }
    throw std::invalid_argument(
        std::string("PRIMER_NTT_KERNEL: unknown value \"") + env +
        "\" (valid: scalar|avx2|avx512|avx512ifma)");
  }
  if (ifma_ok) return *avx512ifma_kernel();
  if (avx512_ok) return *avx512_kernel();
  if (avx2_ok) return *avx2_kernel();
  return scalar_kernel();
}

}  // namespace primer
