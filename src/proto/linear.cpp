#include "proto/linear.h"

#include "common/parallel.h"

namespace primer {

namespace {

// Adds (bias << frac) to every row of a server share, in the ring.
void add_bias_inplace(const ShareRing& ring, MatI& share,
                      const std::vector<std::int64_t>& bias,
                      const FixedPointFormat& fmt) {
  if (bias.empty()) return;
  for (std::size_t i = 0; i < share.rows(); ++i) {
    for (std::size_t j = 0; j < share.cols(); ++j) {
      share(i, j) = ring.reduce(share(i, j) + (bias[j] << fmt.frac_bits));
    }
  }
}

}  // namespace

void HgsLinear::offline(const std::string& step_name, const MatI& rc) {
  pc_.step("offline", step_name, [&] {
    // Client: encrypt the mask, packed per the layer's strategy.
    const auto packed = mm_.encrypt_input(pc_.ring.reduce(rc), pc_.enc);
    pc_.send_cts(Party::kClient, packed);

    // Server: homomorphic Rc * W, then mask with fresh Rs.
    const auto received = pc_.recv_cts(Party::kServer);
    PackedMatmulStats stats;
    auto result = mm_.multiply(received, w_, tokens_, pc_.t(), pc_.gk, &stats);
    rs_ = pc_.ring.random(pc_.server_rng, tokens_, w_.cols());
    // Subtract Rs slotwise: encode Rs in the output layout of the matmul.
    // Rs is sampled above on the calling thread; masking each result
    // ciphertext is pure arithmetic and runs in parallel.
    const std::size_t row = pc_.encoder.row_size();
    const std::size_t fpc = row / tokens_;
    parallel_for(0, result.size(), [&](std::size_t rcname) {
      std::vector<u64> slots(row, 0);
      for (std::size_t b = 0; b < fpc; ++b) {
        const std::size_t o = rcname * fpc + b;
        if (o >= w_.cols()) break;
        for (std::size_t i = 0; i < tokens_; ++i) {
          slots[b * tokens_ + i] = static_cast<u64>(rs_(i, o));
        }
      }
      pc_.eval.sub_plain_inplace(result[rcname], pc_.encoder.encode(slots));
    });
    pc_.send_cts(Party::kServer, result);

    // Client: decrypt Rc*W - Rs.
    const auto back = pc_.recv_cts(Party::kClient);
    client_share_ = mm_.decrypt_result(back, pc_.dec, tokens_, w_.cols());
  });
}

LinearShares HgsLinear::online(const std::string& step_name,
                               const MatI& d) const {
  LinearShares out;
  pc_.step("online", step_name, [&] {
    // Server: (X - Rc) * W + Rs + bias — all unencrypted.
    MatI ss = pc_.ring.mul(pc_.ring.reduce(d), pc_.ring.reduce(w_));
    ss = pc_.ring.add(ss, rs_);
    add_bias_inplace(pc_.ring, ss, bias_, pc_.fmt);
    out.server = std::move(ss);
    out.client = client_share_;
  });
  return out;
}

LinearShares BaseLinear::online(const std::string& step_name, const MatI& xc,
                                const MatI& xs) const {
  LinearShares out;
  pc_.step("online", step_name, [&] {
    // Client encrypts its share and ships it.
    const auto packed = mm_.encrypt_input(pc_.ring.reduce(xc), pc_.enc);
    pc_.send_cts(Party::kClient, packed);

    // Server: Enc(Xc)*W + Xs*W - Rs.
    const auto received = pc_.recv_cts(Party::kServer);
    PackedMatmulStats stats;
    auto result = mm_.multiply(received, w_, tokens_, pc_.t(), pc_.gk, &stats);
    const MatI plain_part =
        pc_.ring.mul(pc_.ring.reduce(xs), pc_.ring.reduce(w_));
    MatI rs = pc_.ring.random(pc_.server_rng, tokens_, w_.cols());
    const std::size_t row = pc_.encoder.row_size();
    const std::size_t fpc = row / tokens_;
    // Per-column share reconstruction: every result ciphertext gains its
    // own slice of Xs*W - Rs, independently of the others.
    parallel_for(0, result.size(), [&](std::size_t rcname) {
      std::vector<u64> plus(row, 0);
      for (std::size_t b = 0; b < fpc; ++b) {
        const std::size_t o = rcname * fpc + b;
        if (o >= w_.cols()) break;
        for (std::size_t i = 0; i < tokens_; ++i) {
          plus[b * tokens_ + i] = static_cast<u64>(
              pc_.ring.reduce(plain_part(i, o) - rs(i, o)));
        }
      }
      pc_.eval.add_plain_inplace(result[rcname], pc_.encoder.encode(plus));
    });
    pc_.send_cts(Party::kServer, result);

    // Client decrypts its share; server keeps Rs (+ bias).
    const auto back = pc_.recv_cts(Party::kClient);
    out.client = mm_.decrypt_result(back, pc_.dec, tokens_, w_.cols());
    add_bias_inplace(pc_.ring, rs, bias_, pc_.fmt);
    out.server = std::move(rs);
  });
  return out;
}

}  // namespace primer
