// Ciphertext packing strategies for encrypted matrix multiplication (paper
// §III-D, Fig. 6): the prior feature-based packing versus Primer's
// tokens-first packing.
//
// Both compute  Enc(X) * W  where the client encrypts X (n tokens x d_in
// features, ring values mod t) and the server holds the plaintext weights W
// (d_in x d_out).  The quantity the paper optimizes is the number of
// homomorphic Rotate operations:
//
//   feature-based : each input ciphertext is rotated through all M slot
//                   alignments  ->  c * M rotations,
//   tokens-first  : feature j of all n tokens shares a slot block, so only
//                   block-granular alignments are needed  ->  c * M/n.
//
// Data occupies the first batching row (M = poly_degree / 2 slots) so that
// Rotate == rotate_rows, matching SEAL semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "he/encoder.h"
#include "he/he.h"

namespace primer {

enum class PackingStrategy { kFeatureBased, kTokensFirst };

struct PackedMatmulStats {
  std::uint64_t input_ciphertexts = 0;
  std::uint64_t output_ciphertexts = 0;
  std::uint64_t rotations = 0;
  std::uint64_t plain_mults = 0;
  std::uint64_t adds = 0;

  PackedMatmulStats& operator+=(const PackedMatmulStats& o) {
    input_ciphertexts += o.input_ciphertexts;
    output_ciphertexts += o.output_ciphertexts;
    rotations += o.rotations;
    plain_mults += o.plain_mults;
    adds += o.adds;
    return *this;
  }
};

// Pure operation-count model (no HE work) — used by the cost model to
// extrapolate to BERT-scale dimensions.
PackedMatmulStats packed_matmul_counts(PackingStrategy strategy,
                                       std::size_t tokens, std::size_t d_in,
                                       std::size_t d_out, std::size_t slots);

// Executes the encrypted matmul live.  X entries are ring values mod t
// (MatI with values in [0, t)); W entries are raw signed fixed-point.
// Returns the decrypted ring-value result (n x d_out) — callers in the
// protocols keep it masked; tests compare against the plain ring product.
class PackedMatmul {
 public:
  PackedMatmul(const HeContext& ctx, const BatchEncoder& encoder,
               const Evaluator& eval, PackingStrategy strategy);

  // Client side: pack and encrypt X.
  std::vector<Ciphertext> encrypt_input(const MatI& x_ring,
                                        const Encryptor& enc) const;

  // Server side: homomorphically compute X * W.  Output ciphertexts pack
  // result column o into slot block (o mod fpc): slot (o*n + i) holds the
  // (token i, output o) ring value.
  std::vector<Ciphertext> multiply(const std::vector<Ciphertext>& packed,
                                   const MatI& w_raw, std::size_t tokens,
                                   std::uint64_t t, const GaloisKeys& gk,
                                   PackedMatmulStats* stats) const;

  // Client side: decrypt the result into an (n x d_out) ring matrix.
  MatI decrypt_result(const std::vector<Ciphertext>& result,
                      const Decryptor& dec, std::size_t tokens,
                      std::size_t d_out) const;

  // Rotation step the strategy uses (the only Galois key it needs).
  int rotation_step(std::size_t tokens) const;

  PackingStrategy strategy() const { return strategy_; }

 private:
  const HeContext& ctx_;
  const BatchEncoder& encoder_;
  const Evaluator& eval_;
  PackingStrategy strategy_;
};

}  // namespace primer
