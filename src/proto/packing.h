// Ciphertext packing strategies for encrypted matrix multiplication (paper
// §III-D, Fig. 6): the prior feature-based packing versus Primer's
// tokens-first packing.
//
// Both compute  Enc(X) * W  where the client encrypts X (n tokens x d_in
// features, ring values mod t) and the server holds the plaintext weights W
// (d_in x d_out).  The quantity the paper optimizes is the number of
// homomorphic Rotate operations:
//
//   feature-based : each input ciphertext is rotated through all M slot
//                   alignments  ->  c * M rotations,
//   tokens-first  : feature j of all n tokens shares a slot block, so only
//                   block-granular alignments are needed  ->  c * M/n.
//
// Data occupies the first batching row (M = poly_degree / 2 slots) so that
// Rotate == rotate_rows, matching SEAL semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "he/encoder.h"
#include "he/he.h"

namespace primer {

enum class PackingStrategy { kFeatureBased, kTokensFirst };

struct PackedMatmulStats {
  std::uint64_t input_ciphertexts = 0;
  std::uint64_t output_ciphertexts = 0;
  std::uint64_t rotations = 0;        // total key-switches (baby + giant)
  std::uint64_t baby_rotations = 0;   // hoisted: share one decomposition
  std::uint64_t giant_rotations = 0;  // full key-switches on partial sums
  // Key-switches the paper's sequential Horner walk would pay (c*(M-1)
  // feature-based, c*(M/n-1) tokens-first) — the schedule Fig. 6 counts.
  // The live BSGS execution pays `rotations` (~n1+n2 per set) instead.
  std::uint64_t naive_rotations = 0;
  std::uint64_t plain_mults = 0;
  std::uint64_t adds = 0;

  PackedMatmulStats& operator+=(const PackedMatmulStats& o) {
    input_ciphertexts += o.input_ciphertexts;
    output_ciphertexts += o.output_ciphertexts;
    rotations += o.rotations;
    baby_rotations += o.baby_rotations;
    giant_rotations += o.giant_rotations;
    naive_rotations += o.naive_rotations;
    plain_mults += o.plain_mults;
    adds += o.adds;
    return *this;
  }
};

// Baby-step/giant-step split of an `iters`-alignment rotation set: returns
// (n1, n2) with n1*n2 >= iters and n1 ~ sqrt(iters), so the set costs
// (n1-1) hoisted baby key-switches plus (n2-1) giant key-switches per
// output chain instead of iters-1 sequential ones.
std::pair<std::size_t, std::size_t> bsgs_split(std::size_t iters);

// Pure operation-count model (no HE work) — used by the cost model to
// extrapolate to BERT-scale dimensions.
PackedMatmulStats packed_matmul_counts(PackingStrategy strategy,
                                       std::size_t tokens, std::size_t d_in,
                                       std::size_t d_out, std::size_t slots);

// Executes the encrypted matmul live.  X entries are ring values mod t
// (MatI with values in [0, t)); W entries are raw signed fixed-point.
// Returns the decrypted ring-value result (n x d_out) — callers in the
// protocols keep it masked; tests compare against the plain ring product.
class PackedMatmul {
 public:
  PackedMatmul(const HeContext& ctx, const BatchEncoder& encoder,
               const Evaluator& eval, PackingStrategy strategy);

  // Client side: pack and encrypt X.
  std::vector<Ciphertext> encrypt_input(const MatI& x_ring,
                                        const Encryptor& enc) const;

  // Server side: homomorphically compute X * W.  Output ciphertexts pack
  // result column o into slot block (o mod fpc): slot (o*n + i) holds the
  // (token i, output o) ring value.
  std::vector<Ciphertext> multiply(const std::vector<Ciphertext>& packed,
                                   const MatI& w_raw, std::size_t tokens,
                                   std::uint64_t t, const GaloisKeys& gk,
                                   PackedMatmulStats* stats) const;

  // Client side: decrypt the result into an (n x d_out) ring matrix.
  MatI decrypt_result(const std::vector<Ciphertext>& result,
                      const Decryptor& dec, std::size_t tokens,
                      std::size_t d_out) const;

  // Rotation step the strategy aligns by (baby steps are its multiples).
  int rotation_step(std::size_t tokens) const;

  // Rotation steps multiply() needs Galois keys for: the BSGS baby steps
  // {g*step : 1 <= g < n1} plus the single giant step n1*step.
  std::vector<int> rotation_steps(std::size_t tokens) const;

  PackingStrategy strategy() const { return strategy_; }

 private:
  const HeContext& ctx_;
  const BatchEncoder& encoder_;
  const Evaluator& eval_;
  PackingStrategy strategy_;
};

}  // namespace primer
