#include "proto/cost_model.h"

#include <cmath>

#include "common/timing.h"
#include "gc/garble.h"
#include "he/encoder.h"
#include "he/he.h"

namespace primer {

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

PrimitiveCosts PrimitiveCosts::measure(HeProfile profile) {
  PrimitiveCosts c;
  const HeContext ctx(make_params(profile));
  Rng rng(42);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Decryptor dec(ctx, keygen.secret_key());
  const Evaluator eval(ctx);
  const auto gk = keygen.make_galois_keys({1, 2, 3, 4});
  const auto rk = keygen.make_relin_key();

  std::vector<u64> vals(encoder.slot_count());
  rng.fill_uniform_mod(vals, ctx.t());
  const Plaintext pt = encoder.encode(vals);

  auto time_n = [](int reps, auto&& fn) {
    Stopwatch sw;
    for (int i = 0; i < reps; ++i) fn();
    return sw.seconds() / reps;
  };

  Ciphertext ct = enc.encrypt(pt);
  const Ciphertext ct2 = enc.encrypt(pt);
  c.encrypt = time_n(4, [&] { (void)enc.encrypt(pt); });
  c.decrypt = time_n(4, [&] { (void)dec.decrypt(ct); });
  c.add = time_n(16, [&] {
    Ciphertext a = ct;
    eval.add_inplace(a, ct2);
  });
  c.plain_mult = time_n(8, [&] {
    Ciphertext a = ct;
    eval.multiply_plain_inplace(a, pt);
  });
  c.rotation = time_n(6, [&] {
    Ciphertext a = ct;
    eval.rotate_rows_inplace(a, 1, gk);
  });
  c.hoisted_rotation = time_n(3, [&] {
    const auto rots = eval.rotate_rows_many(ct, {1, 2, 3, 4}, gk);
    (void)rots;
  }) / 4.0;
  c.ct_mult = time_n(4, [&] {
    Ciphertext a = eval.multiply(ct, ct2);
    eval.relinearize_inplace(a, rk);
  });

  // GC per-AND costs: garble/eval a 64x64 multiplier (~8k ANDs).
  {
    CircuitBuilder b;
    const Bus x = b.add_input_bus(64), y = b.add_input_bus(64);
    b.set_outputs(b.mul(x, y, 64));
    const Circuit circ = b.build();
    const double ands = static_cast<double>(circ.and_count());
    Garbler g(rng);
    GarbledCircuit gc;
    c.gc_garble_and = time_n(3, [&] { gc = g.garble(circ); }) / ands;
    std::vector<Label> in(static_cast<std::size_t>(circ.num_inputs));
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = Garbler::active_input(gc, i, (i & 1) != 0);
    }
    c.gc_eval_and =
        time_n(3, [&] { (void)GcEvaluator::eval(circ, gc.table, in); }) / ands;
  }

  // Plain ring MAC.
  {
    const std::size_t dim = 256;
    std::vector<std::int64_t> a(dim * dim), bmat(dim * dim);
    Rng r2(7);
    for (auto& v : a) v = static_cast<std::int64_t>(r2.uniform(1 << 20));
    for (auto& v : bmat) v = static_cast<std::int64_t>(r2.uniform(1 << 20));
    volatile std::int64_t sink = 0;
    const double secs = time_n(2, [&] {
      std::int64_t acc = 0;
      for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t k = 0; k < dim; ++k) {
          for (std::size_t j = 0; j < 16; ++j) {
            acc += a[i * dim + k] * bmat[k * dim + j];
          }
        }
      }
      sink = acc;
    });
    (void)sink;
    c.plain_mac = secs / (dim * dim * 16);
  }

  c.ciphertext_bytes = static_cast<double>(ctx.params().ciphertext_bytes());
  c.slots = encoder.row_size();
  return c;
}

// ---------------------------------------------------------------------------
// Gate counts from the real circuit builders
// ---------------------------------------------------------------------------

GcGateCounts count_protocol_gates(std::uint64_t t, std::size_t tokens,
                                  std::size_t d) {
  GcGateCounts g;
  {
    ActivationCircuitSpec spec;
    spec.t = t;
    spec.count = 1;
    spec.frac_shift = 8;
    spec.act = Activation::kIdentity;
    g.activation_identity_per_value = make_activation_circuit(spec).and_count();
    spec.act = Activation::kGelu;
    g.activation_gelu_per_value = make_activation_circuit(spec).and_count();
  }
  {
    SoftmaxCircuitSpec spec;
    spec.t = t;
    spec.count = tokens;
    spec.frac_shift = 8;
    g.softmax_row = make_softmax_circuit(spec).and_count();
  }
  {
    LayerNormCircuitSpec spec;
    spec.t = t;
    spec.d = d;
    spec.frac_shift = 8;
    spec.gamma.assign(d, 256);
    spec.beta.assign(d, 0);
    g.layernorm_row = make_layernorm_circuit(spec).and_count();
  }
  return g;
}

// ---------------------------------------------------------------------------
// Estimation
// ---------------------------------------------------------------------------

const char* scheme_name(CostedScheme s) {
  switch (s) {
    case CostedScheme::kTheX: return "THE-X";
    case CostedScheme::kGcFormer: return "GCFormer";
    case CostedScheme::kPrimerBase: return "Primer-base";
    case CostedScheme::kPrimerF: return "Primer-F";
    case CostedScheme::kPrimerFP: return "Primer-FP";
    case CostedScheme::kPrimerFPC: return "Primer-FPC";
  }
  return "?";
}

StepEstimate& StepEstimate::operator+=(const StepEstimate& o) {
  offline_s += o.offline_s;
  online_s += o.online_s;
  offline_bytes += o.offline_bytes;
  online_bytes += o.online_bytes;
  rotations += o.rotations;
  naive_rotations += o.naive_rotations;
  plain_mults += o.plain_mults;
  ct_mults += o.ct_mults;
  gc_ands += o.gc_ands;
  return *this;
}

StepEstimate ModelEstimate::total() const {
  StepEstimate t;
  for (const auto& [name, s] : steps) t += s;
  return t;
}

double ModelEstimate::message_gb() const {
  const auto t = total();
  return static_cast<double>(t.offline_bytes + t.online_bytes) / 1e9;
}

double ModelEstimate::throughput_tokens_per_s() const {
  return static_cast<double>(config.tokens) / online_seconds();
}

namespace {

struct Ctx {
  const BertConfig& cfg;
  const PrimitiveCosts& pc;
  const NetworkModel& net;
  GcGateCounts gates;

  double net_s(std::uint64_t bytes, std::uint64_t rounds) const {
    return static_cast<double>(bytes) / net.bandwidth_bytes_per_s +
           static_cast<double>(rounds) * net.one_way_delay_s;
  }
};

// Rotation cost of a BSGS matmul: baby rotations are hoisted (shared digit
// decomposition), giant rotations pay the full key-switch.
double rotation_cost(const PackedMatmulStats& counts, const PrimitiveCosts& pc) {
  return static_cast<double>(counts.baby_rotations) * pc.hoisted_rotation +
         static_cast<double>(counts.giant_rotations) * pc.rotation;
}

// HE ct-pt matmul cost from the packing count model.
StepEstimate he_matmul(const Ctx& c, PackingStrategy strategy, std::size_t n,
                       std::size_t d_in, std::size_t d_out, bool offline) {
  const auto counts = packed_matmul_counts(strategy, n, d_in, d_out, c.pc.slots);
  StepEstimate e;
  const double compute =
      rotation_cost(counts, c.pc) + counts.plain_mults * c.pc.plain_mult +
      counts.adds * c.pc.add + counts.input_ciphertexts * c.pc.encrypt +
      counts.output_ciphertexts * c.pc.decrypt;
  const auto bytes = static_cast<std::uint64_t>(
      (counts.input_ciphertexts + counts.output_ciphertexts) *
      c.pc.ciphertext_bytes);
  const double total = compute + c.net_s(bytes, 2);
  if (offline) {
    e.offline_s = total;
    e.offline_bytes = bytes;
  } else {
    e.online_s = total;
    e.online_bytes = bytes;
  }
  e.rotations = counts.rotations;
  e.naive_rotations = counts.naive_rotations;
  e.plain_mults = counts.plain_mults;
  return e;
}

// Plaintext server matmul (HGS online path).
StepEstimate plain_matmul(const Ctx& c, std::size_t n, std::size_t d_in,
                          std::size_t d_out) {
  StepEstimate e;
  e.online_s = static_cast<double>(n) * d_in * d_out * c.pc.plain_mac;
  return e;
}

// GC stage: `values` activations with `ands_per_value`, or absolute ANDs.
StepEstimate gc_stage(const Ctx& c, double total_ands, bool garble_offline,
                      std::size_t online_input_bits) {
  StepEstimate e;
  const double garble = total_ands * c.pc.gc_garble_and;
  const double evals = total_ands * c.pc.gc_eval_and;
  const auto table_bytes = static_cast<std::uint64_t>(
      total_ands * c.pc.gc_table_bytes_per_and);
  const auto label_bytes = static_cast<std::uint64_t>(
      online_input_bits * 3.0 * c.pc.label_bytes);  // garbler labels + OT
  if (garble_offline) {
    e.offline_s = garble + c.net_s(table_bytes, 1);
    e.offline_bytes = table_bytes;
    e.online_s = evals + c.net_s(label_bytes, 2);
    e.online_bytes = label_bytes;
  } else {
    e.online_s = garble + evals + c.net_s(table_bytes + label_bytes, 3);
    e.online_bytes = table_bytes + label_bytes;
  }
  e.gc_ands = static_cast<std::uint64_t>(total_ands);
  return e;
}

// FHGS online: two ct-pt matmuls per product.
StepEstimate fhgs_product(const Ctx& c, std::size_t n, std::size_t k,
                          std::size_t m) {
  StepEstimate e;
  // Offline triple: 3 ciphertext groups encrypted + shipped.
  const auto tf = PackingStrategy::kTokensFirst;
  const auto in_a = packed_matmul_counts(tf, n, k, m, c.pc.slots);
  const std::uint64_t triple_cts =
      3 * std::max<std::uint64_t>(1, in_a.input_ciphertexts);
  e.offline_s = triple_cts * c.pc.encrypt +
                c.net_s(static_cast<std::uint64_t>(
                            triple_cts * c.pc.ciphertext_bytes), 1);
  e.offline_bytes =
      static_cast<std::uint64_t>(triple_cts * c.pc.ciphertext_bytes);
  // Online: Enc(Ra)*Db and Enc(Rb^T)*Da^T, plus the plain tmp1.
  StepEstimate m1 = he_matmul(c, tf, n, k, m, /*offline=*/false);
  StepEstimate m2 = he_matmul(c, tf, m, k, n, /*offline=*/false);
  StepEstimate p = plain_matmul(c, n, k, m);
  e += m1;
  e += m2;
  e += p;
  return e;
}

// Primer-base / THE-X ct-ct matmul: n*m dot products of length k, each
// reduced with the BSGS rotate-sum (n1-1 hoisted babies + doubling giants).
StepEstimate ctct_product(const Ctx& c, std::size_t n, std::size_t k,
                          std::size_t m) {
  StepEstimate e;
  const double pairs = static_cast<double>(n) * m;
  std::size_t log_w = 0;
  while ((std::size_t{1} << log_w) < std::max<std::size_t>(2, k)) ++log_w;
  const std::size_t half = (log_w + 1) / 2;
  const double hoisted = static_cast<double>((std::size_t{1} << half) - 1);
  const double full = static_cast<double>(log_w - half);
  e.online_s = pairs * (c.pc.ct_mult + hoisted * c.pc.hoisted_rotation +
                        full * c.pc.rotation);
  e.ct_mults = static_cast<std::uint64_t>(pairs);
  e.rotations = static_cast<std::uint64_t>(pairs * (hoisted + full));
  const auto bytes = static_cast<std::uint64_t>(
      (n + m + pairs) * c.pc.ciphertext_bytes);
  e.online_s += c.net_s(bytes, 2);
  e.online_bytes = bytes;
  return e;
}

void add_step(ModelEstimate& me, const std::string& name,
              const StepEstimate& e) {
  me.steps[name] += e;
}

}  // namespace

ModelEstimate estimate_cost(const BertConfig& cfg, CostedScheme scheme,
                            const PrimitiveCosts& pc, const NetworkModel& net) {
  ModelEstimate me;
  me.scheme = scheme;
  me.config = cfg;
  for (const char* s : {"embed", "qkv", "qk", "softmax", "attnv", "others"}) {
    me.steps[s] = StepEstimate{};
  }
  Ctx c{cfg, pc, net, count_protocol_gates((u64{1} << 40) + 1,  // width proxy
                                           cfg.tokens, cfg.d_model)};

  const std::size_t n = cfg.tokens;
  const std::size_t d = cfg.d_model;
  const std::size_t dh = cfg.head_dim();
  const std::size_t H = cfg.heads;
  const std::size_t N = cfg.blocks;
  const std::size_t dff = cfg.d_ff;
  const std::size_t w = 41;  // share bits at t ~ 2^40

  // ------------------------------------------------------------------ GCFormer
  if (scheme == CostedScheme::kGcFormer) {
    // Entire model as Boolean circuits: 15-bit multipliers (~2*15^2 ANDs)
    // for every MAC, plus the non-linear circuits.
    const double and_per_mac = 2.0 * 15 * 15;
    double macs = static_cast<double>(cfg.vocab) * d * n;  // embedding
    macs += static_cast<double>(N) *
            (4.0 * n * d * d + 2.0 * n * d * dff +  // QKV/WO + FFN
             2.0 * H * n * n * dh);                 // QK + PV
    double ands = macs * and_per_mac;
    ands += static_cast<double>(N) * H * n * c.gates.softmax_row;
    ands += static_cast<double>(N) * 2 * n * c.gates.layernorm_row;
    const double input_bits = static_cast<double>(n) * cfg.vocab * 15;
    add_step(me, "others",
             gc_stage(c, ands, /*garble_offline=*/true,
                      static_cast<std::size_t>(input_bits)));
    return me;
  }

  // ------------------------------------------------------------------ THE-X
  if (scheme == CostedScheme::kTheX) {
    // FHE-only, feature-based packing, everything online; non-linearities
    // replaced by polynomials evaluated homomorphically (ct-ct mults).
    const auto fb = PackingStrategy::kFeatureBased;
    add_step(me, "embed", he_matmul(c, fb, n, cfg.vocab, d, false));
    for (std::size_t b = 0; b < N; ++b) {
      for (int i = 0; i < 3; ++i) {
        add_step(me, "qkv", he_matmul(c, fb, n, d, d, false));
      }
      for (std::size_t h = 0; h < H; ++h) {
        add_step(me, "qk", ctct_product(c, n, dh, n));
        add_step(me, "attnv", ctct_product(c, n, n, dh));
      }
      // Polynomial softmax: ~3 ct-ct mults per score row + masking.
      StepEstimate sm;
      sm.online_s = static_cast<double>(H) * n * 3 * pc.ct_mult;
      sm.ct_mults = H * n * 3;
      add_step(me, "softmax", sm);
      add_step(me, "others", he_matmul(c, fb, n, d, d, false));     // WO
      add_step(me, "others", he_matmul(c, fb, n, d, dff, false));   // FC1
      add_step(me, "others", he_matmul(c, fb, n, dff, d, false));   // FC2
      StepEstimate act;  // quadratic activation + LN approximation
      act.online_s = static_cast<double>(n) * (dff + 2 * d) * pc.ct_mult /
                     static_cast<double>(pc.slots) * 8.0;
      add_step(me, "others", act);
    }
    return me;
  }

  // -------------------------------------------------------- Primer variants
  const bool offload = scheme != CostedScheme::kPrimerBase;
  const bool tokens_first = scheme == CostedScheme::kPrimerFP ||
                            scheme == CostedScheme::kPrimerFPC;
  const bool merged = scheme == CostedScheme::kPrimerFPC;
  const auto pack = tokens_first ? PackingStrategy::kTokensFirst
                                 : PackingStrategy::kFeatureBased;

  auto linear = [&](const std::string& step, std::size_t d_in,
                    std::size_t d_out) {
    add_step(me, step, he_matmul(c, pack, n, d_in, d_out, offload));
    if (offload) add_step(me, step, plain_matmul(c, n, d_in, d_out));
  };
  auto gc = [&](const std::string& step, double ands, std::size_t values) {
    add_step(me, step, gc_stage(c, ands, offload, values * w * 2));
  };

  // Embedding (merged into CHGS under FPC: charged to others/qk).
  linear(merged ? "others" : "embed", cfg.vocab, d);
  gc(merged ? "others" : "embed",
     static_cast<double>(n) * d * c.gates.activation_identity_per_value, n * d);

  for (std::size_t b = 0; b < N; ++b) {
    const bool chgs = merged;
    // QKV projections.
    if (!chgs) {
      linear("qkv", d, d);
      linear("qkv", d, d);
    }
    linear(chgs ? "attnv" : "qkv", d, d);  // V
    gc(chgs ? "attnv" : "qkv",
       static_cast<double>(chgs ? 1 : 3) * n * d *
           c.gates.activation_identity_per_value,
       (chgs ? 1 : 3) * n * d);

    // Scores.
    for (std::size_t h = 0; h < H; ++h) {
      if (chgs) {
        // CHGS with the d-dimensional hoisting: offline computes
        // Enc(G) = Enc(R0)*WE once per model (embedding-shaped, charged at
        // h == 0) and the small term4 rounds per head; online needs two
        // d-dimensional ct-pt matmuls per head plus the plaintext term1 —
        // all within ONE interaction.
        if (h == 0 && b == 0) {
          add_step(me, "qk", he_matmul(c, PackingStrategy::kTokensFirst, n,
                                       cfg.vocab, d, true));
        }
        add_step(me, "qk", he_matmul(c, PackingStrategy::kTokensFirst, n, d, d,
                                     true));
        add_step(me, "qk",
                 he_matmul(c, PackingStrategy::kTokensFirst, n, d, n, true));
        // Online: two d-dimensional ct-pt matmuls per head, with the
        // rotations of Enc(G) HOISTED across all heads and both terms (the
        // rotated copies depend only on Enc(G), not on the head weights).
        StepEstimate on = he_matmul(c, PackingStrategy::kTokensFirst, n, d, n,
                                    false);
        const auto cts = packed_matmul_counts(PackingStrategy::kTokensFirst,
                                              n, d, n, c.pc.slots);
        if (h > 0) {
          on.online_s -= rotation_cost(cts, c.pc);
          on.rotations = 0;
          on.naive_rotations = 0;
        }
        add_step(me, "qk", on);
        StepEstimate on2 = on;
        on2.online_s -= (h == 0) ? rotation_cost(cts, c.pc) : 0.0;
        on2.rotations = 0;
        on2.naive_rotations = 0;
        add_step(me, "qk", on2);
        add_step(me, "qk", plain_matmul(c, n, d, d));
        add_step(me, "qk", plain_matmul(c, n, d, n));
      } else if (offload) {
        add_step(me, "qk", fhgs_product(c, n, dh, n));
      } else {
        add_step(me, "qk", ctct_product(c, n, dh, n));
      }
      // Softmax GC.
      gc("softmax", static_cast<double>(c.gates.softmax_row), n);
      // P x V.
      if (offload) {
        add_step(me, "attnv", fhgs_product(c, n, n, dh));
      } else {
        add_step(me, "attnv", ctct_product(c, n, n, dh));
      }
    }
    gc("attnv",
       static_cast<double>(n) * d * c.gates.activation_identity_per_value,
       n * d);

    // Projection, LayerNorms, FFN.
    linear("others", d, d);  // WO
    gc("others", static_cast<double>(n) * c.gates.layernorm_row, n * d);
    linear("others", d, dff);
    gc("others",
       static_cast<double>(n) * dff * c.gates.activation_gelu_per_value,
       n * dff);
    linear("others", dff, d);
    gc("others", static_cast<double>(n) * c.gates.layernorm_row, n * d);
  }
  // Classifier.
  linear("others", d, cfg.num_classes);
  return me;
}

PaperNumbers paper_table1(CostedScheme s) {
  switch (s) {
    case CostedScheme::kTheX: return {0, 4700, 77.3};
    case CostedScheme::kGcFormer: return {7500, 9800, 85.1};
    case CostedScheme::kPrimerBase: return {0.81, 6553.2, 84.6};
    case CostedScheme::kPrimerF: return {6524.3, 41.2, 84.6};
    case CostedScheme::kPrimerFP: return {405.2, 39.0, 84.6};
    case CostedScheme::kPrimerFPC: return {399.4, 35.4, 84.6};
  }
  return {0, 0, 0};
}

}  // namespace primer
