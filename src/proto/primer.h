// PrimerEngine: live end-to-end private BERT inference between two
// simulated parties, in the paper's four ablation configurations:
//
//   kBase : Primer-base — hybrid HE+GC+SS, everything online (Table II r.1)
//   kF    : + HGS/FHGS offline offload (Table II row 2)
//   kFP   : + tokens-first packing (row 3)
//   kFPC  : + combined FHGS (CHGS) merging Embed/QKV/QxK (row 4)
//
// The engine runs real RLWE HE and real half-gates garbling over the
// byte-accounted channel, and reports per-step offline/online costs with the
// same step names as Table II: embed, qkv, qk, softmax, attnv, others.
//
// Protocol state between steps is the HGS invariant: for every activation X,
// the server holds D = X - R and the client holds the mask R (additive
// shares of X over Z_t).
#pragma once

#include <memory>
#include <vector>

#include "nn/model.h"
#include "proto/attention.h"
#include "proto/linear.h"
#include "proto/runtime.h"

namespace primer {

enum class PrimerVariant { kBase, kF, kFP, kFPC };

const char* variant_name(PrimerVariant v);

struct PrimerRunResult {
  std::vector<std::int64_t> logits;  // raw fixed point, revealed to client
  std::size_t predicted = 0;
  double offline_compute_s = 0;
  double offline_network_s = 0;
  double offline_cpu_s = 0;  // aggregate CPU across pool workers
  double online_compute_s = 0;
  double online_network_s = 0;
  double online_cpu_s = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t rounds = 0;
  // Transport robustness telemetry: frames resent by the retry layer (plus
  // their bytes, charged to total_bytes already) and the smallest estimated
  // noise budget any decryption ran with (+inf if nothing was decrypted).
  std::uint64_t retransmits = 0;
  std::uint64_t retransmit_bytes = 0;
  double min_noise_margin_bits = 0;
  // GC nonlinear-layer totals across all stages of the run: AND gates
  // garbled, garble/eval compute split (wall + aggregate CPU), achieved
  // garbling throughput, and garbled-table traffic (streamed share via
  // kGcTableChunk frames).
  std::uint64_t gc_and_gates = 0;
  double gc_garble_s = 0;
  double gc_garble_cpu_s = 0;
  double gc_eval_s = 0;
  double gc_eval_cpu_s = 0;
  std::uint64_t gc_table_bytes = 0;
  std::uint64_t gc_streamed_table_bytes = 0;
  std::uint64_t gc_table_chunks = 0;
  // Session-resilience telemetry: restarts survived before this result was
  // produced, the checkpoint epoch the final attempt resumed from (0 =
  // fresh), frames/bytes satisfied by zero-cost checkpoint replay instead of
  // the wire, resume-handshake traffic, checkpoints persisted, total frames
  // sent by the final attempt, and wire bytes burned by failed attempts.
  int restarts = 0;
  std::uint32_t resumed_epoch = 0;
  std::uint64_t replayed_frames = 0;
  std::uint64_t replayed_bytes = 0;
  std::uint64_t handshake_bytes = 0;
  std::uint32_t checkpoints = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t prior_attempt_bytes = 0;
  // Durable-storage telemetry from the attached SessionStore (all zero for
  // in-memory stores or storeless runs): checkpoint bytes fsync'd to disk,
  // fsync count, persists that degraded to memory-only (ENOSPC/EIO), whether
  // the store ended the run degraded, and total checkpoint blob bytes held.
  std::uint64_t store_bytes_written = 0;
  std::uint64_t store_fsyncs = 0;
  std::uint64_t store_degradations = 0;
  bool store_degraded = false;
  std::uint64_t checkpoint_blob_bytes = 0;
  CostAccumulator costs;  // per step breakdown (Table II columns)

  double gc_garble_gates_per_s() const {
    return gc_garble_s > 0 ? static_cast<double>(gc_and_gates) / gc_garble_s
                           : 0.0;
  }
  double gc_eval_gates_per_s() const {
    return gc_eval_s > 0 ? static_cast<double>(gc_and_gates) / gc_eval_s : 0.0;
  }

  double offline_total_s() const { return offline_compute_s + offline_network_s; }
  double online_total_s() const { return online_compute_s + online_network_s; }
};

class PrimerEngine {
 public:
  // Weights must use power-of-two tokens/d_model/head_dim (nano/micro
  // configs); kProto2048 is the intended live profile.
  PrimerEngine(BertWeightsI weights, PrimerVariant variant,
               HeProfile profile = HeProfile::kProto2048,
               std::uint64_t seed = 7);

  // One private inference (offline + online, separately accounted).
  PrimerRunResult run(const std::vector<std::size_t>& tokens);

  // One private inference with session resilience: checkpoints are persisted
  // into `store` at phase boundaries, and on a retryable transport failure
  // (peer kill, deadline, retries exhausted, cancellation) the protocol is
  // re-attempted — resuming from the last common checkpoint via the
  // kSessionHello/kSessionResume handshake, with the checkpoint-covered
  // frame prefix replayed at zero wire cost.  Fatal errors and attempts
  // beyond `max_restarts` rethrow; injected kill/stall triggers fire only on
  // the first attempt.  The result is bit-identical to an unfaulted run().
  PrimerRunResult run_resilient(const std::vector<std::size_t>& tokens,
                                SessionStore& store, int max_restarts = 5);

  // One protocol attempt under caller-supplied session options (store,
  // faults, deadline, cancel token, progress heartbeat, drain flag).  No
  // internal retry loop: every failure — including retryable transport
  // errors, OperationCancelled and SessionDrained — propagates to the
  // caller, which owns the attempt/restart policy.  The serving runtime
  // (src/serving/) builds its per-session loop on this.
  PrimerRunResult run_with_options(const std::vector<std::size_t>& tokens,
                                   const SessionOptions& options);

  // Telemetry from the most recent failed attempt (costs accrued before the
  // fault, min noise margin observed); null until a run throws.
  const PrimerRunResult* last_partial() const { return last_partial_.get(); }

  const BertWeightsI& weights() const { return w_; }
  PrimerVariant variant() const { return variant_; }

 private:
  // One protocol attempt under explicit session options.  Fills
  // last_partial_ and rethrows on failure.
  PrimerRunResult run_session(const std::vector<std::size_t>& tokens,
                              const SessionOptions& options);
  // The protocol body proper, over an already-constructed context.
  PrimerRunResult run_protocol(const std::vector<std::size_t>& tokens,
                               ProtocolContext& pc);

  PackingStrategy linear_packing() const {
    return (variant_ == PrimerVariant::kBase || variant_ == PrimerVariant::kF)
               ? PackingStrategy::kFeatureBased
               : PackingStrategy::kTokensFirst;
  }
  bool offline_offload() const { return variant_ != PrimerVariant::kBase; }
  bool merged_qk() const { return variant_ == PrimerVariant::kFPC; }

  BertWeightsI w_;
  PrimerVariant variant_;
  HeProfile profile_;
  std::uint64_t seed_;
  std::unique_ptr<PrimerRunResult> last_partial_;
};

// Reference logits for the kFPC variant, whose merged Q*K^T skips the
// intermediate Q/K truncations (higher precision, slightly different
// rounding than FixedBert).  Tests compare the live kFPC run against this.
std::vector<std::int64_t> fixed_forward_chgs(const BertWeightsI& w,
                                             const std::vector<std::size_t>& tokens);

}  // namespace primer
