// Calibrated operation-count cost model.
//
// Live end-to-end runs are only feasible for the nano/micro models on one
// core; the paper's numbers are for BERT-tiny..large on a two-instance Xeon
// testbed.  This model reproduces the paper's tables by composing EXACT
// operation counts (HE rotations/mults/ct-mults, GC AND gates, bytes,
// rounds) — derived from the same packing/protocol arithmetic the live code
// uses — with per-primitive costs measured on this machine (measure()) at
// the secure kProd8192 parameter set.
//
// Absolute seconds therefore differ from the paper's testbed, but every
// RATIO the paper reports (who wins, the ~160x online reduction from FHGS,
// the ~16x offline reduction from packing+CHGS, the 90.6–97.5% total
// reduction) is determined by the counts and reproduces.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "he/params.h"
#include "net/channel.h"
#include "nn/config.h"
#include "proto/packing.h"
#include "proto/primer.h"

namespace primer {

struct PrimitiveCosts {
  // HE (per operation, seconds).
  double rotation = 0;
  double hoisted_rotation = 0;  // amortized per rotation of a hoisted set
  double plain_mult = 0;
  double ct_mult = 0;     // tensoring + relinearization
  double add = 0;
  double encrypt = 0;
  double decrypt = 0;
  // GC (per AND gate, seconds).
  double gc_garble_and = 0;
  double gc_eval_and = 0;
  // Plaintext server MAC (per multiply-accumulate over Z_t).
  double plain_mac = 0;
  // Sizes (bytes).
  double ciphertext_bytes = 0;
  double gc_table_bytes_per_and = 32;
  double label_bytes = 16;
  std::size_t slots = 4096;  // batching row size of the costed HE profile

  // Microbenchmark calibration on this machine (takes a few seconds).
  static PrimitiveCosts measure(HeProfile profile = HeProfile::kProd8192);
};

enum class CostedScheme {
  kTheX,        // FHE-only baseline, polynomial approximations
  kGcFormer,    // GC-only baseline
  kPrimerBase,  // hybrid, all online
  kPrimerF,     // + FHGS offline offload
  kPrimerFP,    // + tokens-first packing
  kPrimerFPC,   // + CHGS merge
};

const char* scheme_name(CostedScheme s);

struct StepEstimate {
  double offline_s = 0;
  double online_s = 0;
  std::uint64_t offline_bytes = 0;
  std::uint64_t online_bytes = 0;
  std::uint64_t rotations = 0;        // live BSGS key-switch schedule
  std::uint64_t naive_rotations = 0;  // the paper's sequential schedule
  std::uint64_t plain_mults = 0;
  std::uint64_t ct_mults = 0;
  std::uint64_t gc_ands = 0;

  StepEstimate& operator+=(const StepEstimate& o);
};

struct ModelEstimate {
  CostedScheme scheme = CostedScheme::kPrimerFPC;
  BertConfig config;
  // Keyed by the Table II step names: embed, qkv, qk, softmax, attnv, others.
  std::map<std::string, StepEstimate> steps;

  StepEstimate total() const;
  double offline_seconds() const { return total().offline_s; }
  double online_seconds() const { return total().online_s; }
  double total_seconds() const { return offline_seconds() + online_seconds(); }
  double message_gb() const;
  double throughput_tokens_per_s() const;
};

// Builds the estimate for one (config, scheme) pair.
ModelEstimate estimate_cost(const BertConfig& config, CostedScheme scheme,
                            const PrimitiveCosts& costs,
                            const NetworkModel& net = NetworkModel{});

// GC AND-gate counts for the protocol circuits at BERT dimensions, obtained
// by building the actual circuits (cached per shape).
struct GcGateCounts {
  std::size_t activation_identity_per_value = 0;
  std::size_t activation_gelu_per_value = 0;
  std::size_t softmax_row = 0;   // full row of `tokens` values
  std::size_t layernorm_row = 0; // full row of d values
};
GcGateCounts count_protocol_gates(std::uint64_t t, std::size_t tokens,
                                  std::size_t d);

// Paper-reported reference numbers for side-by-side printing.
struct PaperNumbers {
  double offline_s, online_s, accuracy;
};
PaperNumbers paper_table1(CostedScheme s);

}  // namespace primer
