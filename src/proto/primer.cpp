#include "proto/primer.h"

#include <algorithm>
#include <stdexcept>

namespace primer {

namespace {

MatI slice_cols(const MatI& m, std::size_t from, std::size_t count) {
  MatI out(m.rows(), count);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < count; ++j) out(i, j) = m(i, from + j);
  }
  return out;
}

void paste_cols(MatI& dst, const MatI& src, std::size_t from) {
  for (std::size_t i = 0; i < src.rows(); ++i) {
    for (std::size_t j = 0; j < src.cols(); ++j) dst(i, from + j) = src(i, j);
  }
}

MatI row_of(const MatI& m, std::size_t r) {
  MatI out(1, m.cols());
  for (std::size_t j = 0; j < m.cols(); ++j) out(0, j) = m(r, j);
  return out;
}

// One-hot input with INTEGER entries (value 1, not 1<<frac): the embedding
// X*WE + pos is then exactly the raw-domain embedding (FixedBert::embed's
// truncation is lossless), so the embed GC stage uses frac_shift = 0.
MatI one_hot_integer(const std::vector<std::size_t>& tokens,
                     const BertConfig& cfg) {
  if (tokens.size() != cfg.tokens) {
    throw std::invalid_argument("PrimerEngine: wrong token count");
  }
  MatI x(cfg.tokens, cfg.vocab);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] >= cfg.vocab) {
      throw std::invalid_argument("PrimerEngine: token id out of vocabulary");
    }
    x(i, tokens[i]) = 1;
  }
  return x;
}

// Shared activation state: server holds d, client holds r; X = d + r mod t.
struct Shared {
  MatI d;
  MatI r;
};

// Cost-summary tail shared by the success path and the partial-result
// builder on the failure path: everything that can be read off the context
// regardless of how far the protocol got.
void summarize_costs(PrimerRunResult& result, const ProtocolContext& pc) {
  result.costs = pc.costs;
  const PhaseCost off_total = pc.costs.phase_total("offline");
  const PhaseCost on_total = pc.costs.phase_total("online");
  result.offline_compute_s = off_total.compute_seconds;
  result.offline_network_s = off_total.network_seconds;
  result.offline_cpu_s = off_total.cpu_seconds;
  result.online_compute_s = on_total.compute_seconds;
  result.online_network_s = on_total.network_seconds;
  result.online_cpu_s = on_total.cpu_seconds;
  result.total_bytes = pc.channel.total_bytes();
  result.rounds = pc.channel.flights();
  result.retransmits = pc.framed.stats().retransmit_frames;
  result.retransmit_bytes = pc.framed.stats().retransmit_bytes;
  result.replayed_frames = pc.framed.stats().replayed_frames;
  result.replayed_bytes = pc.framed.stats().replayed_bytes;
  result.frames_sent = pc.framed.stats().frames_sent;
  result.resumed_epoch = pc.resumed_epoch();
  result.checkpoints = pc.checkpoints_taken();
  result.handshake_bytes = pc.handshake_bytes();
  if (pc.session.store != nullptr) {
    const SessionStore::Telemetry st = pc.session.store->telemetry();
    result.store_bytes_written = st.bytes_written;
    result.store_fsyncs = st.fsyncs;
    result.store_degradations = st.degradations;
    result.store_degraded = st.degraded;
    result.checkpoint_blob_bytes = pc.session.store->blob_bytes();
  }
  PhaseCost grand = off_total;
  grand += on_total;
  result.min_noise_margin_bits = grand.min_noise_margin_bits;
  result.gc_and_gates = grand.gc_and_gates;
  result.gc_garble_s = grand.gc_garble_seconds;
  result.gc_garble_cpu_s = grand.gc_garble_cpu_seconds;
  result.gc_eval_s = grand.gc_eval_seconds;
  result.gc_eval_cpu_s = grand.gc_eval_cpu_seconds;
  result.gc_table_bytes = grand.gc_table_bytes;
  result.gc_streamed_table_bytes = grand.gc_streamed_table_bytes;
  result.gc_table_chunks = grand.gc_table_chunks;
}

}  // namespace

const char* variant_name(PrimerVariant v) {
  switch (v) {
    case PrimerVariant::kBase: return "Primer-base";
    case PrimerVariant::kF: return "Primer-F";
    case PrimerVariant::kFP: return "Primer-FP";
    case PrimerVariant::kFPC: return "Primer-FPC";
  }
  return "?";
}

PrimerEngine::PrimerEngine(BertWeightsI weights, PrimerVariant variant,
                           HeProfile profile, std::uint64_t seed)
    : w_(std::move(weights)), variant_(variant), profile_(profile),
      seed_(seed) {
  const auto& cfg = w_.config;
  auto pow2 = [](std::size_t v) { return v != 0 && (v & (v - 1)) == 0; };
  if (!pow2(cfg.tokens) || !pow2(cfg.d_model) || !pow2(cfg.head_dim())) {
    throw std::invalid_argument(
        "PrimerEngine: live runs need power-of-two tokens/d_model/head_dim");
  }
  if (variant_ == PrimerVariant::kFPC) {
    for (const auto b : w_.blocks[0].b_q) {
      if (b != 0) throw std::invalid_argument("CHGS requires zero Q/K biases");
    }
  }
}

PrimerRunResult PrimerEngine::run(const std::vector<std::size_t>& tokens) {
  return run_session(tokens, SessionOptions::from_env());
}

PrimerRunResult PrimerEngine::run_with_options(
    const std::vector<std::size_t>& tokens, const SessionOptions& options) {
  return run_session(tokens, options);
}

PrimerRunResult PrimerEngine::run_resilient(
    const std::vector<std::size_t>& tokens, SessionStore& store,
    int max_restarts) {
  SessionOptions opts = SessionOptions::from_env();
  opts.store = &store;
  int restarts = 0;
  std::uint64_t prior_bytes = 0;
  auto note_retryable_failure = [&] {
    if (last_partial_ != nullptr) prior_bytes += last_partial_->total_bytes;
    // Injected kill/stall triggers model a crash of THAT attempt; the
    // restarted process must not trip over the same trigger again.
    opts.faults.kill_after = 0;
    opts.faults.stall_after = 0;
    ++restarts;
  };
  for (;;) {
    try {
      PrimerRunResult result = run_session(tokens, opts);
      result.restarts = restarts;
      result.prior_attempt_bytes = prior_bytes;
      return result;
    } catch (const ProtocolError& e) {
      if (!e.retryable() || restarts >= max_restarts) throw;
      note_retryable_failure();
    } catch (const OperationCancelled&) {
      if (restarts >= max_restarts) throw;
      note_retryable_failure();
    }
  }
}

PrimerRunResult PrimerEngine::run_session(
    const std::vector<std::size_t>& tokens, const SessionOptions& options) {
  const auto& cfg = w_.config;
  const std::size_t n = cfg.tokens;
  const std::size_t dh = cfg.head_dim();

  std::vector<int> steps = {1, static_cast<int>(n)};
  for (std::size_t s = 2; s <= std::max(dh, n); s <<= 1) {
    steps.push_back(static_cast<int>(s));
  }
  ProtocolContext pc(profile_, seed_, steps, options);
  try {
    pc.start_session();
    return run_protocol(tokens, pc);
  } catch (...) {
    // Snapshot what the attempt accrued before the fault so callers (and
    // run_resilient's byte accounting) see partial costs and the smallest
    // noise margin observed.
    auto partial = std::make_unique<PrimerRunResult>();
    summarize_costs(*partial, pc);
    // A throwing step never reaches step()'s cost fold, so pull the
    // decryptor's pending margin telemetry in directly.
    partial->min_noise_margin_bits =
        std::min(partial->min_noise_margin_bits, pc.dec.take_min_margin());
    last_partial_ = std::move(partial);
    throw;
  }
}

PrimerRunResult PrimerEngine::run_protocol(
    const std::vector<std::size_t>& tokens, ProtocolContext& pc) {
  const auto& cfg = w_.config;
  const std::size_t n = cfg.tokens;
  const std::size_t d = cfg.d_model;
  const std::size_t dh = cfg.head_dim();
  const std::size_t heads = cfg.heads;
  const std::size_t frac = static_cast<std::size_t>(w_.fmt.frac_bits);
  const std::uint64_t t = pc.t();
  const ShareRing& ring = pc.ring;

  const std::string off = offline_offload() ? "offline" : "online";
  const PackingStrategy pack = linear_packing();
  // CHGS applies to every block: block 0 merges Embed+QKV(QK)+QxK from the
  // one-hot input; deeper blocks merge their Q/K projections into the
  // adjacent FHGS ("incorporating three HGS modules into the adjacent FHGS
  // module", Fig. 3d) using an identity embedding over the block input.
  auto use_chgs = [&](std::size_t b) { (void)b; return merged_qk(); };

  // --- client masks (sampled offline) ---------------------------------------
  MatI r0 = ring.random(pc.client_rng, n, cfg.vocab);
  MatI r_u = ring.random(pc.client_rng, n, d);
  struct BlockMasks {
    MatI rq, rk, rv, ra, rl1, rg, rl2;
    std::vector<MatI> rp;
  };
  std::vector<BlockMasks> bm(cfg.blocks);
  for (auto& m : bm) {
    m.rq = ring.random(pc.client_rng, n, d);
    m.rk = ring.random(pc.client_rng, n, d);
    m.rv = ring.random(pc.client_rng, n, d);
    m.ra = ring.random(pc.client_rng, n, d);
    m.rl1 = ring.random(pc.client_rng, n, d);
    m.rg = ring.random(pc.client_rng, n, cfg.d_ff);
    m.rl2 = ring.random(pc.client_rng, n, d);
    for (std::size_t h = 0; h < heads; ++h) {
      m.rp.push_back(ring.random(pc.client_rng, n, n));
    }
  }

  // --- protocol objects ------------------------------------------------------
  auto hgs = [&](const MatI& w, const std::vector<std::int64_t>& bias,
                 std::size_t toks) {
    return std::make_unique<HgsLinear>(pc, w, bias, toks, pack);
  };
  auto base_lin = [&](const MatI& w, const std::vector<std::int64_t>& bias,
                      std::size_t toks) {
    return std::make_unique<BaseLinear>(pc, w, bias, toks, pack);
  };

  const std::string embed_step = merged_qk() ? "others" : "embed";
  std::unique_ptr<HgsLinear> embed_hgs;
  std::unique_ptr<BaseLinear> embed_base;
  if (offline_offload()) {
    embed_hgs = hgs(w_.we, {}, n);
  } else {
    embed_base = base_lin(w_.we, {}, n);
  }

  struct BlockProtos {
    std::unique_ptr<HgsLinear> q, k, v, o, f1, f2;
    std::unique_ptr<BaseLinear> qb, kb, vb, ob, f1b, f2b;
    std::vector<std::unique_ptr<FhgsProduct>> qk, pv;
    std::vector<std::unique_ptr<CtCtProduct>> qk_cc, pv_cc;
    std::vector<std::unique_ptr<ChgsScores>> chgs;
  };
  std::vector<BlockProtos> bp(cfg.blocks);
  for (std::size_t b = 0; b < cfg.blocks; ++b) {
    const auto& blk = w_.blocks[b];
    if (offline_offload()) {
      if (!use_chgs(b)) {
        bp[b].q = hgs(blk.wq, blk.b_q, n);
        bp[b].k = hgs(blk.wk, blk.b_k, n);
      }
      bp[b].v = hgs(blk.wv, blk.b_v, n);
      bp[b].o = hgs(blk.wo, blk.b_o, n);
      bp[b].f1 = hgs(blk.w1, blk.b_1, n);
      bp[b].f2 = hgs(blk.w2, blk.b_2, n);
      for (std::size_t h = 0; h < heads; ++h) {
        if (use_chgs(b)) {
          if (b == 0) {
            bp[b].chgs.push_back(std::make_unique<ChgsScores>(
                pc, n, w_.we, w_.pos, slice_cols(blk.wq, h * dh, dh),
                slice_cols(blk.wk, h * dh, dh)));
          } else {
            // Identity "embedding" over the block input (integer 1 entries
            // keep the raw domain).
            MatI ident(d, d);
            for (std::size_t i = 0; i < d; ++i) ident(i, i) = 1;
            bp[b].chgs.push_back(std::make_unique<ChgsScores>(
                pc, n, ident, MatI(n, d), slice_cols(blk.wq, h * dh, dh),
                slice_cols(blk.wk, h * dh, dh)));
          }
        } else {
          bp[b].qk.push_back(std::make_unique<FhgsProduct>(pc, n, dh, n));
        }
        bp[b].pv.push_back(std::make_unique<FhgsProduct>(pc, n, n, dh));
      }
    } else {
      bp[b].qb = base_lin(blk.wq, blk.b_q, n);
      bp[b].kb = base_lin(blk.wk, blk.b_k, n);
      bp[b].vb = base_lin(blk.wv, blk.b_v, n);
      bp[b].ob = base_lin(blk.wo, blk.b_o, n);
      bp[b].f1b = base_lin(blk.w1, blk.b_1, n);
      bp[b].f2b = base_lin(blk.w2, blk.b_2, n);
      for (std::size_t h = 0; h < heads; ++h) {
        bp[b].qk_cc.push_back(std::make_unique<CtCtProduct>(pc, n, dh, n));
        bp[b].pv_cc.push_back(std::make_unique<CtCtProduct>(pc, n, n, dh));
      }
    }
  }
  std::unique_ptr<HgsLinear> cls_hgs;
  std::unique_ptr<BaseLinear> cls_base;
  if (offline_offload()) {
    cls_hgs = hgs(w_.w_cls, w_.b_cls, 1);
  } else {
    cls_base = base_lin(w_.w_cls, w_.b_cls, 1);
  }

  // Every protocol object has registered its rotation steps by now: ship
  // the client's finalized evaluation keys through the accounted wire, then
  // snapshot the first resumable boundary.  Primer-base has no offline
  // phase, so its key transfer is charged online like everything else.
  pc.transfer_keys(off);
  pc.checkpoint("key_transfer");

  // --- GC stages ----------------------------------------------------------
  auto act_circuit = [&](std::size_t count, std::size_t shift, Activation a) {
    ActivationCircuitSpec spec;
    spec.t = t;
    spec.count = count;
    spec.frac_shift = shift;
    spec.act = a;
    spec.fmt = w_.fmt;
    return make_activation_circuit(spec);
  };
  auto softmax_circuit = [&](std::size_t shift) {
    SoftmaxCircuitSpec spec;
    spec.t = t;
    spec.count = n;
    spec.frac_shift = shift;
    spec.fmt = w_.fmt;
    return make_softmax_circuit(spec);
  };
  auto ln_circuit = [&](const std::vector<std::int64_t>& gamma,
                        const std::vector<std::int64_t>& beta) {
    LayerNormCircuitSpec spec;
    spec.t = t;
    spec.d = d;
    spec.frac_shift = frac;
    spec.gamma = gamma;
    spec.beta = beta;
    spec.fmt = w_.fmt;
    return make_layernorm_circuit(spec);
  };

  GcStage gc_embed(pc, act_circuit(n * d, 0, Activation::kIdentity),
                   RevealTo::kGarbler);
  gc_embed.offline(off, embed_step);

  struct BlockStages {
    std::unique_ptr<GcStage> qkv;
    std::vector<std::unique_ptr<GcStage>> softmax;
    std::unique_ptr<GcStage> attnv;
    std::vector<std::unique_ptr<GcStage>> ln1, ln2;
    std::unique_ptr<GcStage> gelu;
  };
  std::vector<BlockStages> bs(cfg.blocks);
  for (std::size_t b = 0; b < cfg.blocks; ++b) {
    const auto& blk = w_.blocks[b];
    const std::size_t qkv_count = use_chgs(b) ? n * d : 3 * n * d;
    bs[b].qkv = std::make_unique<GcStage>(
        pc, act_circuit(qkv_count, frac, Activation::kIdentity),
        RevealTo::kGarbler);
    bs[b].qkv->offline(off, use_chgs(b) ? "attnv" : "qkv");
    const std::size_t score_shift = use_chgs(b) ? 3 * frac : frac;
    for (std::size_t h = 0; h < heads; ++h) {
      for (std::size_t i = 0; i < n; ++i) {
        bs[b].softmax.push_back(std::make_unique<GcStage>(
            pc, softmax_circuit(score_shift), RevealTo::kGarbler));
        bs[b].softmax.back()->offline(off, "softmax");
      }
    }
    bs[b].attnv = std::make_unique<GcStage>(
        pc, act_circuit(n * d, frac, Activation::kIdentity),
        RevealTo::kGarbler);
    bs[b].attnv->offline(off, "attnv");
    for (std::size_t i = 0; i < n; ++i) {
      bs[b].ln1.push_back(std::make_unique<GcStage>(
          pc, ln_circuit(blk.ln1_gamma, blk.ln1_beta), RevealTo::kGarbler));
      bs[b].ln1.back()->offline(off, "others");
      bs[b].ln2.push_back(std::make_unique<GcStage>(
          pc, ln_circuit(blk.ln2_gamma, blk.ln2_beta), RevealTo::kGarbler));
      bs[b].ln2.back()->offline(off, "others");
    }
    bs[b].gelu = std::make_unique<GcStage>(
        pc, act_circuit(n * cfg.d_ff, frac, Activation::kGelu),
        RevealTo::kGarbler);
    bs[b].gelu->offline(off, "others");
  }
  GcStage gc_cls(pc, act_circuit(cfg.num_classes, frac, Activation::kIdentity),
                 RevealTo::kEvaluator);
  gc_cls.offline(off, "others");
  pc.checkpoint("gc_offline");

  // --- HGS/FHGS/CHGS offline -------------------------------------------------
  if (offline_offload()) {
    embed_hgs->offline(embed_step, r0);
    for (std::size_t b = 0; b < cfg.blocks; ++b) {
      const MatI& rin = (b == 0) ? r_u : bm[b - 1].rl2;
      if (!use_chgs(b)) {
        bp[b].q->offline("qkv", rin);
        bp[b].k->offline("qkv", rin);
      }
      bp[b].v->offline(use_chgs(b) ? "attnv" : "qkv", rin);
      bp[b].o->offline("others", bm[b].ra);
      bp[b].f1->offline("others", bm[b].rl1);
      bp[b].f2->offline("others", bm[b].rg);
      for (std::size_t h = 0; h < heads; ++h) {
        if (use_chgs(b)) {
          bp[b].chgs[h]->offline("qk", b == 0 ? r0 : rin);
        } else {
          bp[b].qk[h]->offline("qk", slice_cols(bm[b].rq, h * dh, dh),
                               slice_cols(bm[b].rk, h * dh, dh).transposed());
        }
        bp[b].pv[h]->offline("attnv", bm[b].rp[h],
                             slice_cols(bm[b].rv, h * dh, dh));
      }
    }
    cls_hgs->offline("others", row_of(bm[cfg.blocks - 1].rl2, 0));
  }
  pc.checkpoint("linear_offline");

  // ==========================================================================
  // ONLINE
  // ==========================================================================
  const MatI x = one_hot_integer(tokens, cfg);
  MatI d0;  // server-held X - R0 (HGS variants)

  // Embedding.
  LinearShares acc_u;
  if (offline_offload()) {
    pc.step("online", embed_step, [&] {
      d0 = ring.sub(ring.reduce(x), r0);
      pc.send_ring(Party::kClient, d0);
      d0 = pc.recv_ring(Party::kServer, n, cfg.vocab);
    });
    acc_u = embed_hgs->online(embed_step, d0);
  } else {
    acc_u = embed_base->online("embed", ring.reduce(x), MatI(n, cfg.vocab));
  }
  // Positional bias (public, raw domain — the embedding is raw already).
  pc.step("online", embed_step, [&] {
    acc_u.server = ring.add(acc_u.server, ring.reduce(w_.pos));
  });

  Shared cur;  // current block input (raw domain)
  {
    const auto bits = gc_embed.online(
        "online", embed_step,
        pc.ring_bits(acc_u.server),
        [&] {
          auto e = pc.ring_bits(acc_u.client);
          const auto r = pc.ring_bits(r_u);
          e.insert(e.end(), r.begin(), r.end());
          return e;
        }());
    cur.d = pc.bits_to_ring(bits, n, d);
    cur.r = r_u;
  }
  pc.checkpoint("online_embed");

  for (std::size_t b = 0; b < cfg.blocks; ++b) {
    // --- QKV ---------------------------------------------------------------
    Shared q, k, v;
    {
      LinearShares aq, ak, av;
      if (offline_offload()) {
        if (!use_chgs(b)) {
          aq = bp[b].q->online("qkv", cur.d);
          ak = bp[b].k->online("qkv", cur.d);
        }
        av = bp[b].v->online(use_chgs(b) ? "attnv" : "qkv", cur.d);
      } else {
        aq = bp[b].qb->online("qkv", cur.r, cur.d);
        ak = bp[b].kb->online("qkv", cur.r, cur.d);
        av = bp[b].vb->online("qkv", cur.r, cur.d);
      }
      // One GC stage truncates Q|K|V together (or V alone under CHGS).
      std::vector<bool> gbits, ebits;
      auto append = [&](const LinearShares& s, const MatI& mask) {
        const auto g = pc.ring_bits(s.server);
        gbits.insert(gbits.end(), g.begin(), g.end());
        const auto e = pc.ring_bits(s.client);
        ebits.insert(ebits.end(), e.begin(), e.end());
        (void)mask;
      };
      std::vector<bool> maskbits;
      auto append_mask = [&](const MatI& mask) {
        const auto m = pc.ring_bits(mask);
        maskbits.insert(maskbits.end(), m.begin(), m.end());
      };
      if (use_chgs(b)) {
        append(av, bm[b].rv);
        append_mask(bm[b].rv);
      } else {
        append(aq, bm[b].rq);
        append(ak, bm[b].rk);
        append(av, bm[b].rv);
        append_mask(bm[b].rq);
        append_mask(bm[b].rk);
        append_mask(bm[b].rv);
      }
      ebits.insert(ebits.end(), maskbits.begin(), maskbits.end());
      const auto bits = bs[b].qkv->online(
          "online", use_chgs(b) ? "attnv" : "qkv", gbits, ebits);
      if (use_chgs(b)) {
        v.d = pc.bits_to_ring(bits, n, d);
        v.r = bm[b].rv;
      } else {
        const std::size_t per = n * d * pc.share_bits();
        q.d = pc.bits_to_ring({bits.begin(), bits.begin() + per}, n, d);
        k.d = pc.bits_to_ring({bits.begin() + per, bits.begin() + 2 * per}, n, d);
        v.d = pc.bits_to_ring({bits.begin() + 2 * per, bits.end()}, n, d);
        q.r = bm[b].rq;
        k.r = bm[b].rk;
        v.r = bm[b].rv;
      }
    }

    // --- attention scores + softmax + value ---------------------------------
    LinearShares acc_attn;
    acc_attn.client = MatI(n, d);
    acc_attn.server = MatI(n, d);
    for (std::size_t h = 0; h < heads; ++h) {
      LinearShares score;
      if (use_chgs(b)) {
        score = bp[b].chgs[h]->online("qk", b == 0 ? d0 : cur.d);
      } else if (offline_offload()) {
        score = bp[b].qk[h]->online(
            "qk", slice_cols(q.d, h * dh, dh),
            slice_cols(k.d, h * dh, dh).transposed());
      } else {
        score = bp[b].qk_cc[h]->online(
            "qk", slice_cols(q.r, h * dh, dh), slice_cols(q.d, h * dh, dh),
            slice_cols(k.r, h * dh, dh).transposed(),
            slice_cols(k.d, h * dh, dh).transposed());
      }
      // Softmax row by row.
      Shared p;
      p.d = MatI(n, n);
      p.r = bm[b].rp[h];
      for (std::size_t i = 0; i < n; ++i) {
        auto ebits = pc.ring_bits_row(score.client, i);
        const auto rbits = pc.ring_bits_row(bm[b].rp[h], i);
        ebits.insert(ebits.end(), rbits.begin(), rbits.end());
        const auto bits = bs[b].softmax[h * n + i]->online(
            "online", "softmax", pc.ring_bits_row(score.server, i), ebits);
        const MatI rowm = pc.bits_to_ring(bits, 1, n);
        for (std::size_t j = 0; j < n; ++j) p.d(i, j) = rowm(0, j);
      }
      // P x V.
      LinearShares head_out;
      if (offline_offload()) {
        head_out = bp[b].pv[h]->online("attnv", p.d,
                                       slice_cols(v.d, h * dh, dh));
      } else {
        head_out = bp[b].pv_cc[h]->online(
            "attnv", p.r, p.d, slice_cols(v.r, h * dh, dh),
            slice_cols(v.d, h * dh, dh));
      }
      paste_cols(acc_attn.client, head_out.client, h * dh);
      paste_cols(acc_attn.server, head_out.server, h * dh);
    }

    // Truncate attention output.
    Shared attn;
    {
      auto ebits = pc.ring_bits(acc_attn.client);
      const auto rbits = pc.ring_bits(bm[b].ra);
      ebits.insert(ebits.end(), rbits.begin(), rbits.end());
      const auto bits = bs[b].attnv->online("online", "attnv",
                                            pc.ring_bits(acc_attn.server),
                                            ebits);
      attn.d = pc.bits_to_ring(bits, n, d);
      attn.r = bm[b].ra;
    }

    // --- projection + LN1 ----------------------------------------------------
    LinearShares acc_proj;
    if (offline_offload()) {
      acc_proj = bp[b].o->online("others", attn.d);
    } else {
      acc_proj = bp[b].ob->online("others", attn.r, attn.d);
    }
    Shared l1;
    l1.d = MatI(n, d);
    l1.r = bm[b].rl1;
    for (std::size_t i = 0; i < n; ++i) {
      auto gbits = pc.ring_bits_row(acc_proj.server, i);
      const auto gres = pc.ring_bits_row(cur.d, i);
      gbits.insert(gbits.end(), gres.begin(), gres.end());
      auto ebits = pc.ring_bits_row(acc_proj.client, i);
      const auto eres = pc.ring_bits_row(cur.r, i);
      ebits.insert(ebits.end(), eres.begin(), eres.end());
      const auto rbits = pc.ring_bits_row(bm[b].rl1, i);
      ebits.insert(ebits.end(), rbits.begin(), rbits.end());
      const auto bits =
          bs[b].ln1[i]->online("online", "others", gbits, ebits);
      const MatI rowm = pc.bits_to_ring(bits, 1, d);
      for (std::size_t j = 0; j < d; ++j) l1.d(i, j) = rowm(0, j);
    }

    // --- FFN + LN2 -----------------------------------------------------------
    LinearShares acc_f1;
    if (offline_offload()) {
      acc_f1 = bp[b].f1->online("others", l1.d);
    } else {
      acc_f1 = bp[b].f1b->online("others", l1.r, l1.d);
    }
    Shared g;
    {
      auto ebits = pc.ring_bits(acc_f1.client);
      const auto rbits = pc.ring_bits(bm[b].rg);
      ebits.insert(ebits.end(), rbits.begin(), rbits.end());
      const auto bits = bs[b].gelu->online("online", "others",
                                           pc.ring_bits(acc_f1.server), ebits);
      g.d = pc.bits_to_ring(bits, n, cfg.d_ff);
      g.r = bm[b].rg;
    }
    LinearShares acc_f2;
    if (offline_offload()) {
      acc_f2 = bp[b].f2->online("others", g.d);
    } else {
      acc_f2 = bp[b].f2b->online("others", g.r, g.d);
    }
    Shared l2;
    l2.d = MatI(n, d);
    l2.r = bm[b].rl2;
    for (std::size_t i = 0; i < n; ++i) {
      auto gbits = pc.ring_bits_row(acc_f2.server, i);
      const auto gres = pc.ring_bits_row(l1.d, i);
      gbits.insert(gbits.end(), gres.begin(), gres.end());
      auto ebits = pc.ring_bits_row(acc_f2.client, i);
      const auto eres = pc.ring_bits_row(l1.r, i);
      ebits.insert(ebits.end(), eres.begin(), eres.end());
      const auto rbits = pc.ring_bits_row(bm[b].rl2, i);
      ebits.insert(ebits.end(), rbits.begin(), rbits.end());
      const auto bits =
          bs[b].ln2[i]->online("online", "others", gbits, ebits);
      const MatI rowm = pc.bits_to_ring(bits, 1, d);
      for (std::size_t j = 0; j < d; ++j) l2.d(i, j) = rowm(0, j);
    }

    cur = l2;
    pc.checkpoint("online_block_" + std::to_string(b));
  }

  // --- classifier ------------------------------------------------------------
  LinearShares acc_cls;
  if (offline_offload()) {
    acc_cls = cls_hgs->online("others", row_of(cur.d, 0));
  } else {
    acc_cls = cls_base->online("others", row_of(cur.r, 0), row_of(cur.d, 0));
  }
  PrimerRunResult result;
  {
    auto ebits = pc.ring_bits(acc_cls.client);
    const MatI zero_mask(1, cfg.num_classes);
    const auto rbits = pc.ring_bits(zero_mask);
    ebits.insert(ebits.end(), rbits.begin(), rbits.end());
    const auto bits = gc_cls.online("online", "others",
                                    pc.ring_bits(acc_cls.server), ebits);
    const MatI logits_ring = pc.bits_to_ring(bits, 1, cfg.num_classes);
    result.logits.resize(cfg.num_classes);
    for (std::size_t c = 0; c < cfg.num_classes; ++c) {
      result.logits[c] = ring.center(logits_ring(0, c));
    }
  }
  result.predicted = 0;
  for (std::size_t c = 1; c < cfg.num_classes; ++c) {
    if (result.logits[c] > result.logits[result.predicted]) {
      result.predicted = c;
    }
  }

  // --- cost summary ------------------------------------------------------------
  summarize_costs(result, pc);
  return result;
}

// ---------------------------------------------------------------------------
// kFPC fixed-point reference
// ---------------------------------------------------------------------------

std::vector<std::int64_t> fixed_forward_chgs(
    const BertWeightsI& w, const std::vector<std::size_t>& tokens) {
  const FixedBert model(w);
  const auto& cfg = w.config;
  const auto& fmt = w.fmt;
  const std::size_t dh = cfg.head_dim();
  const std::size_t frac = static_cast<std::size_t>(fmt.frac_bits);

  MatI x = model.embed(tokens);
  for (const auto& blk : w.blocks) {
    // Merged (untruncated) Q*K^T scores in every block: 4*frac domain.
    const MatI v = fixed_truncate(fixed_linear_acc(x, blk.wv, &blk.b_v, fmt),
                                  fmt);
    MatI attn(cfg.tokens, cfg.d_model);
    std::vector<std::int64_t> scores(cfg.tokens);
    for (std::size_t h = 0; h < cfg.heads; ++h) {
      const MatI wq_h(slice_cols(blk.wq, h * dh, dh));
      const MatI wk_h(slice_cols(blk.wk, h * dh, dh));
      const MatI gq = fixed_linear_acc(x, wq_h, nullptr, fmt);
      const MatI gk = fixed_linear_acc(x, wk_h, nullptr, fmt);
      for (std::size_t i = 0; i < cfg.tokens; ++i) {
        for (std::size_t j = 0; j < cfg.tokens; ++j) {
          std::int64_t dot = 0;
          for (std::size_t c = 0; c < dh; ++c) dot += gq(i, c) * gk(j, c);
          scores[j] = dot;
        }
        const auto p = fixed_softmax_reference(scores, 3 * frac, fmt);
        for (std::size_t c = 0; c < dh; ++c) {
          std::int64_t acc = 0;
          for (std::size_t j = 0; j < cfg.tokens; ++j) {
            acc += p[j] * v(j, h * dh + c);
          }
          attn(i, h * dh + c) = fp_truncate(acc, fmt);
        }
      }
    }
    const MatI proj =
        fixed_truncate(fixed_linear_acc(attn, blk.wo, &blk.b_o, fmt), fmt);
    MatI res1(x.rows(), x.cols());
    for (std::size_t i = 0; i < x.size(); ++i) {
      res1.data()[i] = fp_saturate(x.data()[i] + proj.data()[i], fmt);
    }
    const MatI ln1 = fixed_layernorm(res1, blk.ln1_gamma, blk.ln1_beta, fmt);
    const MatI ff_acc = fixed_linear_acc(ln1, blk.w1, &blk.b_1, fmt);
    MatI ff(ff_acc.rows(), ff_acc.cols());
    for (std::size_t i = 0; i < ff_acc.size(); ++i) {
      ff.data()[i] = activation_reference(ff_acc.data()[i], frac,
                                          Activation::kGelu, fmt);
    }
    const MatI ff2 =
        fixed_truncate(fixed_linear_acc(ff, blk.w2, &blk.b_2, fmt), fmt);
    MatI res2(ln1.rows(), ln1.cols());
    for (std::size_t i = 0; i < ln1.size(); ++i) {
      res2.data()[i] = fp_saturate(ln1.data()[i] + ff2.data()[i], fmt);
    }
    x = fixed_layernorm(res2, blk.ln2_gamma, blk.ln2_beta, fmt);
  }
  return model.classify(x);
}

}  // namespace primer
