// Attention product protocols.
//
// FhgsProduct — the paper's Fully-HGS protocol (Fig. 5): Beaver-style
// offline triples (Enc(Ra), Enc(Rb^T), Enc(Ra*Rb)) turn the online
// ciphertext-ciphertext product of two SHARED matrices A (n x k) and
// B (k x m) into plaintext work plus two ciphertext-plaintext matmuls.
//
// CtCtProduct — the Primer-base fallback: genuine online ciphertext-
// ciphertext multiplications (tensoring + relinearization + rotations),
// the cost the paper identifies as prohibitive.
//
// ChgsScores — the combined-FHGS protocol (Fig. 6c): computes shares of the
// attention scores U*Wqk*U^T (U = X*WE + lambda) directly from the one-hot
// input, merging Embed + QKV(QK) + QxK into a single online interaction
// with combined weights prepared offline.
#pragma once

#include <string>

#include "proto/linear.h"
#include "proto/runtime.h"

namespace primer {

// Shares of C = A * B (ring, untruncated accumulation domain).
class FhgsProduct {
 public:
  // Shapes: A is n x k, B is k x m.  The client holds masks Ra, Rb; the
  // server holds Da = A - Ra and Db = B - Rb (all ring matrices).
  FhgsProduct(ProtocolContext& pc, std::size_t n, std::size_t k, std::size_t m)
      : pc_(pc), n_(n), k_(k), m_(m),
        mm_a_(pc.he, pc.encoder, pc.eval, PackingStrategy::kTokensFirst),
        mm_bt_(pc.he, pc.encoder, pc.eval, PackingStrategy::kTokensFirst) {
    pc_.ensure_rotation_steps(mm_a_.rotation_steps(n_));
    pc_.ensure_rotation_steps(mm_bt_.rotation_steps(m_));
  }

  // Offline: client sends the triple Enc(Ra), Enc(Rb^T), Enc(Ra*Rb).
  void offline(const std::string& step_name, const MatI& ra, const MatI& rb);

  // Online: server computes shares of A*B from Da, Db.
  LinearShares online(const std::string& step_name, const MatI& da,
                      const MatI& db);

 private:
  ProtocolContext& pc_;
  std::size_t n_, k_, m_;
  PackedMatmul mm_a_;   // Enc(Ra): n tokens x k features
  PackedMatmul mm_bt_;  // Enc(Rb^T): m tokens x k features
  std::vector<Ciphertext> enc_ra_;     // server-held after offline
  std::vector<Ciphertext> enc_rbt_;
  std::vector<Ciphertext> enc_rarb_;   // packed in the n x m output layout
};

// Primer-base online ciphertext-ciphertext product of shared matrices.
class CtCtProduct {
 public:
  CtCtProduct(ProtocolContext& pc, std::size_t n, std::size_t k, std::size_t m)
      : pc_(pc), n_(n), k_(k), m_(m),
        mm_a_(pc.he, pc.encoder, pc.eval, PackingStrategy::kFeatureBased),
        mm_bt_(pc.he, pc.encoder, pc.eval, PackingStrategy::kFeatureBased) {
    pc_.ensure_rotation_steps(mm_a_.rotation_steps(n_));
    pc_.ensure_rotation_steps(mm_bt_.rotation_steps(m_));
    // The ct-ct dot products reduce over k slots with a BSGS rotate-sum.
    pc_.ensure_rotation_steps(Evaluator::rotate_sum_steps(k_));
  }

  // Everything online: the ct-ct cross term Ac*Bc plus two ct-pt terms and
  // one plaintext term.  Requires relin + power-of-two rotation keys.
  LinearShares online(const std::string& step_name, const MatI& ac,
                      const MatI& as, const MatI& bc, const MatI& bs);

 private:
  ProtocolContext& pc_;
  std::size_t n_, k_, m_;
  PackedMatmul mm_a_;
  PackedMatmul mm_bt_;
};

// Combined FHGS for the attention scores of one head.
class ChgsScores {
 public:
  // we: vocab x d, pos: n x d (lambda), wq/wk: d x d head slices (d x dh).
  // Computes shares of (X*WE + pos) * wq * wk^T * (X*WE + pos)^T, n x n.
  ChgsScores(ProtocolContext& pc, std::size_t tokens, const MatI& we,
             const MatI& pos, const MatI& wq_h, const MatI& wk_h);

  // Offline: combined-weight precomputation + the Rc-dependent triple.
  // `r0` is the client's mask on the one-hot input X.
  void offline(const std::string& step_name, const MatI& r0);

  // Online: server holds d0 = X - R0; one interaction yields score shares.
  LinearShares online(const std::string& step_name, const MatI& d0);

 private:
  ProtocolContext& pc_;
  std::size_t n_;
  MatI we_, pos_, wqk_;       // wqk = wq_h * wk_h^T (raw-domain ring product)
  MatI w_m_;                  // WE * Wqk * WE^T (ring)
  PackedMatmul mm_;
  std::vector<Ciphertext> enc_r0_;
  MatI term4_client_;         // client share of R0*W_M*R0^T (offline)
  MatI term4_server_;         // server share (offline)
};

}  // namespace primer
