// ProtocolContext: everything a live two-party Primer execution needs —
// the HE stack (client-owned keys), the simulated channel, the share ring,
// per-step cost accounting, and the GC stage wrapper.
//
// Both parties run in-process; "client" state and "server" state are kept
// in separate members and only exchanged through the Channel so the traffic
// accounting matches a genuine deployment.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/timing.h"
#include "gc/fixed_circuits.h"
#include "gc/protocol.h"
#include "he/encoder.h"
#include "he/he.h"
#include "net/channel.h"
#include "net/framed_channel.h"
#include "proto/packing.h"
#include "ss/secret_share.h"

namespace primer {

class ProtocolContext {
 public:
  ProtocolContext(HeProfile profile, std::uint64_t seed,
                  std::vector<int> rotation_steps);

  HeContext he;
  BatchEncoder encoder;
  Rng client_rng;
  Rng server_rng;
  KeyGenerator keygen;      // client-owned secret key
  Encryptor enc;            // client symmetric encryptor
  Decryptor dec;            // client decryptor
  Evaluator eval;
  GaloisKeys gk;
  RelinKey rk;
  Channel channel;
  // All protocol traffic (HE, shares, GC, OT) flows through this one framed
  // wrapper: a single pair of per-direction sequence spaces, fault
  // injection configured from PRIMER_FAULT_*, retry policy from
  // PRIMER_RETRY_*.
  FramedChannel framed{channel};
  ShareRing ring;
  CostAccumulator costs;
  FixedPointFormat fmt;

  std::uint64_t t() const { return he.t(); }
  std::size_t share_bits() const { return share_width(he.t()); }

  // Adds Galois keys for any of `steps` not yet present.  Protocol objects
  // call this from their constructors with the BSGS step sets their packed
  // matmuls and rotate-sums need, so key material always matches the
  // rotation schedule regardless of what the engine seeded.
  void ensure_rotation_steps(const std::vector<int>& steps);

  // Runs `fn`, charging its wall-clock time plus the channel traffic it
  // generated to costs[phase][step].
  void step(const std::string& phase, const std::string& step_name,
            const std::function<void()>& fn);

  // Ciphertext transfer through the accounted channel.
  void send_cts(Party from, const std::vector<Ciphertext>& cts);
  std::vector<Ciphertext> recv_cts(Party to);

  // Ring-matrix transfer (unencrypted share traffic).
  void send_ring(Party from, const MatI& m);
  MatI recv_ring(Party to, std::size_t rows, std::size_t cols);

  // Bit marshalling between ring matrices and GC input bit vectors.
  std::vector<bool> ring_bits(const MatI& m) const;
  std::vector<bool> ring_bits_row(const MatI& m, std::size_t row) const;
  MatI bits_to_ring(const std::vector<bool>& bits, std::size_t rows,
                    std::size_t cols) const;
};

// One garbled-circuit protocol stage with offline/online cost attribution.
class GcStage {
 public:
  GcStage(ProtocolContext& pc, Circuit circuit, RevealTo reveal)
      : pc_(pc), session_(pc.framed, pc.server_rng),
        circuit_(std::move(circuit)), reveal_(reveal) {}

  // Garble + transmit tables; charge to costs[phase][step_name].
  void offline(const std::string& phase, const std::string& step_name) {
    const GcStats before = session_.stats();
    pc_.step(phase, step_name, [&] { session_.offline(circuit_, reveal_); });
    charge(phase, step_name, before);
  }

  std::vector<bool> online(const std::string& phase,
                           const std::string& step_name,
                           const std::vector<bool>& garbler_bits,
                           const std::vector<bool>& evaluator_bits) {
    const GcStats before = session_.stats();
    std::vector<bool> out;
    pc_.step(phase, step_name,
             [&] { out = session_.online(garbler_bits, evaluator_bits); });
    charge(phase, step_name, before);
    return out;
  }

  const GcStats& stats() const { return session_.stats(); }
  const Circuit& circuit() const { return circuit_; }

 private:
  // Charges the session-stat delta of one offline/online call into the
  // step's PhaseCost, so GC work (AND gates, garble/eval seconds, table
  // traffic) is visible per-step next to the HE op counters.
  void charge(const std::string& phase, const std::string& step_name,
              const GcStats& before) {
    const GcStats& after = session_.stats();
    PhaseCost& cost = pc_.costs.at(phase, step_name);
    cost.gc_and_gates += after.and_gates - before.and_gates;
    cost.gc_garble_seconds += after.garble_seconds - before.garble_seconds;
    cost.gc_garble_cpu_seconds +=
        after.garble_cpu_seconds - before.garble_cpu_seconds;
    cost.gc_eval_seconds += after.eval_seconds - before.eval_seconds;
    cost.gc_eval_cpu_seconds +=
        after.eval_cpu_seconds - before.eval_cpu_seconds;
    cost.gc_table_bytes += after.table_bytes - before.table_bytes;
    cost.gc_streamed_table_bytes +=
        after.streamed_table_bytes - before.streamed_table_bytes;
    cost.gc_table_chunks += after.table_chunks - before.table_chunks;
  }

  ProtocolContext& pc_;
  GcSession session_;
  Circuit circuit_;
  RevealTo reveal_;
};

}  // namespace primer
