// ProtocolContext: everything a live two-party Primer execution needs —
// the HE stack (client-owned keys), the simulated channel, the share ring,
// per-step cost accounting, and the GC stage wrapper.
//
// Both parties run in-process; "client" state and "server" state are kept
// in separate members and only exchanged through the Channel so the traffic
// accounting matches a genuine deployment.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/timing.h"
#include "gc/fixed_circuits.h"
#include "gc/protocol.h"
#include "he/encoder.h"
#include "he/he.h"
#include "net/channel.h"
#include "net/framed_channel.h"
#include "net/session.h"
#include "proto/packing.h"
#include "ss/secret_share.h"

namespace primer {

// Configuration of one protocol session attempt: the transport's fault and
// retry knobs plus the resilience layer (checkpoint store, deadlines,
// cooperative cancellation).  A null store disables checkpointing, the
// resume handshake and journaling — the pre-session behavior.
struct SessionOptions {
  SessionStore* store = nullptr;
  std::uint64_t session_id = 1;
  FaultSpec faults;
  RetryPolicy retry;
  // Per-phase budget in simulated-network + wall seconds (0 disables);
  // checked at frame and step granularity.  PRIMER_PHASE_DEADLINE_S.
  double phase_deadline_s = 0.0;
  // Optional watchdog-armed token folded into the same deadline checks.
  const CancelToken* cancel = nullptr;
  // Optional liveness heartbeat beaten at step/checkpoint granularity; the
  // serving runtime's eviction policy reads it from observer threads.
  SessionProgress* progress = nullptr;
  // Optional drain flag: when it flips true, the run stops at the *next*
  // checkpoint boundary — the checkpoint is persisted first, then
  // SessionDrained is thrown, so a later request resumes exactly there.
  // Only honored when a store is attached (without one there is nothing to
  // resume from, so the run is allowed to finish).
  const std::atomic<bool>* drain = nullptr;

  // Faults and retry from PRIMER_FAULT_* / PRIMER_RETRY_*, deadline from
  // PRIMER_PHASE_DEADLINE_S; no store or cancellation.  Malformed values
  // throw std::invalid_argument, out-of-range values clamp (common/env.h).
  static SessionOptions from_env();
};

class ProtocolContext {
 public:
  ProtocolContext(HeProfile profile, std::uint64_t seed,
                  std::vector<int> rotation_steps,
                  SessionOptions options = SessionOptions::from_env());
  ~ProtocolContext();
  ProtocolContext(const ProtocolContext&) = delete;
  ProtocolContext& operator=(const ProtocolContext&) = delete;

  HeContext he;
  BatchEncoder encoder;
  Rng client_rng;
  Rng server_rng;
  KeyGenerator keygen;      // client-owned secret key
  Encryptor enc;            // client symmetric encryptor
  Decryptor dec;            // client decryptor
  Evaluator eval;
  GaloisKeys gk;
  RelinKey rk;
  Channel channel;
  SessionOptions session;
  // Deterministic per-phase deadline polled by the framed channel (every
  // frame) and step() (every protocol step).
  SimDeadline deadline;
  // All protocol traffic (HE, shares, GC, OT) flows through this one framed
  // wrapper: a single pair of per-direction sequence spaces, fault
  // injection and retry policy from SessionOptions.
  FramedChannel framed;
  ShareRing ring;
  CostAccumulator costs;
  FixedPointFormat fmt;

  std::uint64_t t() const { return he.t(); }
  std::size_t share_bits() const { return share_width(he.t()); }

  // Adds Galois keys for any of `steps` not yet present.  Protocol objects
  // call this from their constructors with the BSGS step sets their packed
  // matmuls and rotate-sums need, so key material always matches the
  // rotation schedule regardless of what the engine seeded.
  void ensure_rotation_steps(const std::vector<int>& steps);

  // Runs `fn`, charging its wall-clock time plus the channel traffic it
  // generated to costs[phase][step].  Polls the phase deadline on entry.
  void step(const std::string& phase, const std::string& step_name,
            const std::function<void()>& fn);

  // --- session resilience -------------------------------------------------

  // Runs the resume handshake when a SessionStore is attached: client and
  // server exchange kSessionHello / kSessionResume, agree on the highest
  // checkpoint epoch whose digests match on both sides, and the framed
  // channel restarts its sequence spaces with the agreed replay plan
  // installed.  Without a store this is a no-op (no handshake traffic).
  void start_session();

  // Persists a checkpoint at a phase boundary: both parties snapshot the
  // send watermarks, CRC journal, and received-frame inventory under the
  // next epoch.  `completed` labels the phase that just finished; the
  // deadline budget restarts for the following segment.  No-op without a
  // store (the deadline still restarts).
  void checkpoint(const std::string& completed);

  // Ships the client's evaluation keys (Galois + relinearization) through
  // the accounted channel — one kKeyMaterial frame per key — and replaces
  // gk/rk with the wire round-tripped copies, so the server evaluates with
  // keys that genuinely crossed the (fault-injected) transport.  Shoup
  // quotient tables are recomputed receiver-side, never transmitted.
  // Charged to costs[phase]["key_transfer"].
  void transfer_keys(const std::string& phase = "offline");

  // Fingerprint of the negotiated parameters (profile moduli, plaintext
  // modulus, degree, seed) — must match for a resume to be accepted.
  std::uint64_t params_hash() const { return params_hash_; }
  // Epoch the current attempt resumed from (0 = fresh start).
  std::uint32_t resumed_epoch() const { return resumed_epoch_; }
  // Checkpoints taken so far in this attempt.
  std::uint32_t checkpoints_taken() const { return epoch_; }
  // Wire bytes the resume handshake cost this attempt.
  std::uint64_t handshake_bytes() const { return handshake_bytes_; }

  // Ciphertext transfer through the accounted channel.
  void send_cts(Party from, const std::vector<Ciphertext>& cts);
  std::vector<Ciphertext> recv_cts(Party to);

  // Ring-matrix transfer (unencrypted share traffic).
  void send_ring(Party from, const MatI& m);
  MatI recv_ring(Party to, std::size_t rows, std::size_t cols);

  // Bit marshalling between ring matrices and GC input bit vectors.
  std::vector<bool> ring_bits(const MatI& m) const;
  std::vector<bool> ring_bits_row(const MatI& m, std::size_t row) const;
  MatI bits_to_ring(const std::vector<bool>& bits, std::size_t rows,
                    std::size_t cols) const;

 private:
  std::uint64_t params_hash_ = 0;
  std::uint32_t epoch_ = 0;          // checkpoints taken this attempt
  std::uint32_t resumed_epoch_ = 0;  // agreed at the handshake
  std::uint64_t handshake_bytes_ = 0;
};

// One garbled-circuit protocol stage with offline/online cost attribution.
class GcStage {
 public:
  GcStage(ProtocolContext& pc, Circuit circuit, RevealTo reveal)
      : pc_(pc), session_(pc.framed, pc.server_rng),
        circuit_(std::move(circuit)), reveal_(reveal) {}

  // Garble + transmit tables; charge to costs[phase][step_name].
  void offline(const std::string& phase, const std::string& step_name) {
    const GcStats before = session_.stats();
    pc_.step(phase, step_name, [&] { session_.offline(circuit_, reveal_); });
    charge(phase, step_name, before);
  }

  std::vector<bool> online(const std::string& phase,
                           const std::string& step_name,
                           const std::vector<bool>& garbler_bits,
                           const std::vector<bool>& evaluator_bits) {
    const GcStats before = session_.stats();
    std::vector<bool> out;
    pc_.step(phase, step_name,
             [&] { out = session_.online(garbler_bits, evaluator_bits); });
    charge(phase, step_name, before);
    return out;
  }

  const GcStats& stats() const { return session_.stats(); }
  const Circuit& circuit() const { return circuit_; }

 private:
  // Charges the session-stat delta of one offline/online call into the
  // step's PhaseCost, so GC work (AND gates, garble/eval seconds, table
  // traffic) is visible per-step next to the HE op counters.
  void charge(const std::string& phase, const std::string& step_name,
              const GcStats& before) {
    const GcStats& after = session_.stats();
    PhaseCost& cost = pc_.costs.at(phase, step_name);
    cost.gc_and_gates += after.and_gates - before.and_gates;
    cost.gc_garble_seconds += after.garble_seconds - before.garble_seconds;
    cost.gc_garble_cpu_seconds +=
        after.garble_cpu_seconds - before.garble_cpu_seconds;
    cost.gc_eval_seconds += after.eval_seconds - before.eval_seconds;
    cost.gc_eval_cpu_seconds +=
        after.eval_cpu_seconds - before.eval_cpu_seconds;
    cost.gc_table_bytes += after.table_bytes - before.table_bytes;
    cost.gc_streamed_table_bytes +=
        after.streamed_table_bytes - before.streamed_table_bytes;
    cost.gc_table_chunks += after.table_chunks - before.table_chunks;
  }

  ProtocolContext& pc_;
  GcSession session_;
  Circuit circuit_;
  RevealTo reveal_;
};

}  // namespace primer
