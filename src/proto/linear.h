// Linear-layer protocols.
//
// HgsLinear — the paper's HGS protocol (Fig. 4): the heavy encrypted
// matrix multiplication Enc(Rc) * W happens OFFLINE; online the server only
// computes the unencrypted (X - Rc) * W and the parties end up with
// additive shares of X*W (+ bias, in the untruncated accumulation domain).
//
// BaseLinear — the Gazelle-style online protocol used by Primer-base: the
// client encrypts its share online, the server multiplies homomorphically
// and returns a masked result.  Same share interface, all cost online.
#pragma once

#include <optional>
#include <string>

#include "proto/runtime.h"

namespace primer {

struct LinearShares {
  MatI client;  // ring values mod t, accumulation (2*frac) domain
  MatI server;
};

class HgsLinear {
 public:
  // W: d_in x d_out raw fixed-point (server-held); bias optional (d_out).
  HgsLinear(ProtocolContext& pc, MatI w, std::vector<std::int64_t> bias,
            std::size_t tokens, PackingStrategy strategy)
      : pc_(pc), w_(std::move(w)), bias_(std::move(bias)), tokens_(tokens),
        mm_(pc.he, pc.encoder, pc.eval, strategy) {
    pc_.ensure_rotation_steps(mm_.rotation_steps(tokens_));
  }

  // Offline phase.  `rc` is the client's mask for this layer's input (the
  // same mask the preceding GC stage used to re-share its output).
  // Charged to costs[ "offline" ][ step_name ].
  void offline(const std::string& step_name, const MatI& rc);

  // Online phase: the server holds d = X - Rc (ring) and computes its share.
  // The client share was fixed offline.  Returns both (client share is the
  // locally stored offline value; no traffic needed online).
  LinearShares online(const std::string& step_name, const MatI& d) const;

  const MatI& weights() const { return w_; }

 private:
  ProtocolContext& pc_;
  MatI w_;
  std::vector<std::int64_t> bias_;
  std::size_t tokens_;
  PackedMatmul mm_;
  MatI client_share_;  // Rc*W - Rs (client side, produced offline)
  MatI rs_;            // server mask (server side)
};

class BaseLinear {
 public:
  BaseLinear(ProtocolContext& pc, MatI w, std::vector<std::int64_t> bias,
             std::size_t tokens, PackingStrategy strategy)
      : pc_(pc), w_(std::move(w)), bias_(std::move(bias)), tokens_(tokens),
        mm_(pc.he, pc.encoder, pc.eval, strategy) {
    pc_.ensure_rotation_steps(mm_.rotation_steps(tokens_));
  }

  // Fully-online: input is shared (Xc at client, Xs at server); output is
  // shares of X*W + bias.  Charged to costs["online"][step_name].
  LinearShares online(const std::string& step_name, const MatI& xc,
                      const MatI& xs) const;

 private:
  ProtocolContext& pc_;
  MatI w_;
  std::vector<std::int64_t> bias_;
  std::size_t tokens_;
  PackedMatmul mm_;
};

}  // namespace primer
