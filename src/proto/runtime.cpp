#include "proto/runtime.h"

#include "common/parallel.h"

namespace primer {

ProtocolContext::ProtocolContext(HeProfile profile, std::uint64_t seed,
                                 std::vector<int> rotation_steps)
    : he(make_params(profile)),
      encoder(he),
      client_rng(seed),
      server_rng(seed ^ 0x5deece66dULL),
      keygen(he, client_rng),
      enc(he, keygen.secret_key(), client_rng),
      dec(he, keygen.secret_key()),
      eval(he),
      gk(keygen.make_galois_keys(rotation_steps)),
      rk(keygen.make_relin_key()),
      ring(he.t()) {}

void ProtocolContext::ensure_rotation_steps(const std::vector<int>& steps) {
  for (const int s : steps) {
    keygen.add_galois_key(gk, he.galois_elt_from_step(s));
  }
}

void ProtocolContext::step(const std::string& phase,
                           const std::string& step_name,
                           const std::function<void()>& fn) {
  const auto net_before = channel.snapshot();
  const HeOpCounters he_before = eval.counters();
  const FramedChannel::Stats framed_before = framed.stats();
  dec.take_min_margin();  // reset so the step sees only its own margins
  CpuWallTimer timer;
  fn();
  const double secs = timer.wall_seconds();
  const double cpu = timer.cpu_seconds();
  const auto net_delta = channel.delta_since(net_before);
  PhaseCost& cost = costs.at(phase, step_name);
  cost.compute_seconds += secs;
  cost.cpu_seconds += cpu;
  cost.network_seconds += net_delta.seconds;
  cost.bytes_sent += net_delta.bytes;
  cost.rounds += net_delta.flights;
  const HeOpCounters& now = eval.counters();
  cost.he_mults += now.plain_mults - he_before.plain_mults;
  cost.he_ct_mults += now.ct_mults - he_before.ct_mults;
  cost.he_rotations += now.rotations - he_before.rotations;
  cost.he_adds += now.adds - he_before.adds;
  const FramedChannel::Stats& fr = framed.stats();
  cost.retransmits += fr.retransmit_frames - framed_before.retransmit_frames;
  cost.retransmit_bytes += fr.retransmit_bytes - framed_before.retransmit_bytes;
  cost.min_noise_margin_bits =
      std::min(cost.min_noise_margin_bits, dec.take_min_margin());
}

void ProtocolContext::send_cts(Party from, const std::vector<Ciphertext>& cts) {
  // Each ciphertext is framed with its byte length so the receiver can
  // split the message and decode slices in parallel; encoding itself is
  // likewise parallel (one writer per ciphertext, concatenated in order).
  std::vector<ByteWriter> writers(cts.size());
  parallel_for(0, cts.size(),
               [&](std::size_t i) { eval.serialize(cts[i], writers[i]); });
  std::size_t total = 4;
  for (const auto& wr : writers) total += 4 + wr.size();
  ByteWriter w;
  w.reserve(total);
  w.u32(static_cast<std::uint32_t>(cts.size()));
  for (const auto& wr : writers) {
    w.u32(static_cast<std::uint32_t>(wr.size()));
    w.bytes(wr.data().data(), wr.size());
  }
  framed.send(from, MessageKind::kCiphertexts, w.take());
}

std::vector<Ciphertext> ProtocolContext::recv_cts(Party to) {
  const auto bytes = framed.recv_expect(to, MessageKind::kCiphertexts);
  try {
    ByteReader r(bytes);
    const auto count = r.u32();
    // Each ciphertext costs at least a 4-byte length prefix, so any count
    // beyond remaining/4 is a lie — reject before sizing the vectors.
    if (count > r.remaining() / 4) {
      throw std::out_of_range("recv_cts: ciphertext count " +
                              std::to_string(count) + " exceeds payload");
    }
    // Scan the frame lengths, then decode every slice independently.
    std::vector<std::size_t> begin(count), end(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto len = r.u32();
      begin[i] = r.position();
      end[i] = begin[i] + len;
      r.skip(len);
    }
    std::vector<Ciphertext> cts(count);
    parallel_for(0, count, [&](std::size_t i) {
      ByteReader slice(bytes, begin[i], end[i]);
      cts[i] = eval.deserialize(slice);
    });
    return cts;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    // The frame passed its checksum, so this is a structurally invalid
    // payload (hostile sender or framing bug), not wire noise.
    throw ProtocolError(ProtocolErrorKind::kMalformed,
                        std::string(party_name(to)) +
                            ": ciphertext payload rejected: " + e.what());
  }
}

void ProtocolContext::send_ring(Party from, const MatI& m) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(m.rows()));
  w.u32(static_cast<std::uint32_t>(m.cols()));
  // Ring values fit in share_bits() bits; ship them packed 5 bytes per
  // value for t < 2^40 (the live profiles) to keep traffic realistic.
  const std::size_t bytes_per = (share_bits() + 7) / 8;
  for (const auto v : m.data()) {
    w.bytes(&v, bytes_per);
  }
  framed.send(from, MessageKind::kRingMatrix, w.take());
}

MatI ProtocolContext::recv_ring(Party to, std::size_t rows, std::size_t cols) {
  const auto bytes = framed.recv_expect(to, MessageKind::kRingMatrix);
  try {
    ByteReader r(bytes);
    const auto rr = r.u32();
    const auto cc = r.u32();
    if (rr != rows || cc != cols) {
      throw std::runtime_error("recv_ring: shape " + std::to_string(rr) + "x" +
                               std::to_string(cc) + ", expected " +
                               std::to_string(rows) + "x" +
                               std::to_string(cols));
    }
    MatI m(rows, cols);
    const std::size_t bytes_per = (share_bits() + 7) / 8;
    for (auto& v : m.data()) {
      std::int64_t x = 0;
      r.bytes(&x, bytes_per);
      v = x;
    }
    return m;
  } catch (const std::exception& e) {
    throw ProtocolError(ProtocolErrorKind::kMalformed,
                        std::string(party_name(to)) +
                            ": ring-matrix payload rejected: " + e.what());
  }
}

std::vector<bool> ProtocolContext::ring_bits(const MatI& m) const {
  const std::size_t w = share_bits();
  std::vector<bool> bits;
  bits.reserve(m.size() * w);
  for (const auto v : m.data()) {
    for (std::size_t b = 0; b < w; ++b) {
      bits.push_back((static_cast<std::uint64_t>(v) >> b) & 1);
    }
  }
  return bits;
}

std::vector<bool> ProtocolContext::ring_bits_row(const MatI& m,
                                                 std::size_t row) const {
  const std::size_t w = share_bits();
  std::vector<bool> bits;
  bits.reserve(m.cols() * w);
  for (std::size_t c = 0; c < m.cols(); ++c) {
    const auto v = static_cast<std::uint64_t>(m(row, c));
    for (std::size_t b = 0; b < w; ++b) bits.push_back((v >> b) & 1);
  }
  return bits;
}

MatI ProtocolContext::bits_to_ring(const std::vector<bool>& bits,
                                   std::size_t rows, std::size_t cols) const {
  const std::size_t w = share_bits();
  MatI m(rows, cols);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < w; ++b) {
      if (bits[i * w + b]) v |= std::uint64_t{1} << b;
    }
    m.data()[i] = static_cast<std::int64_t>(v);
  }
  return m;
}

}  // namespace primer
