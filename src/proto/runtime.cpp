#include "proto/runtime.h"

#include "common/env.h"
#include "common/parallel.h"
#include "net/crc32c.h"

namespace primer {

namespace {

constexpr std::size_t kMaxGaloisKeys = 4096;

}  // namespace

SessionOptions SessionOptions::from_env() {
  SessionOptions o;
  o.faults = FaultSpec::from_env();
  o.retry = RetryPolicy::from_env();
  o.phase_deadline_s =
      env_double("PRIMER_PHASE_DEADLINE_S", 0.0, 0.0, 86400.0);
  return o;
}

ProtocolContext::ProtocolContext(HeProfile profile, std::uint64_t seed,
                                 std::vector<int> rotation_steps,
                                 SessionOptions options)
    : he(make_params(profile)),
      encoder(he),
      client_rng(seed),
      server_rng(seed ^ 0x5deece66dULL),
      keygen(he, client_rng),
      enc(he, keygen.secret_key(), client_rng),
      dec(he, keygen.secret_key()),
      eval(he),
      gk(keygen.make_galois_keys(rotation_steps)),
      rk(keygen.make_relin_key()),
      session(std::move(options)),
      framed(channel, session.faults, session.retry),
      ring(he.t()) {
  // Parameter fingerprint for the resume handshake: a peer with a
  // different profile, modulus chain or seed is a different session.
  ByteWriter w;
  w.u64(seed);
  w.u64(he.t());
  w.u64(he.degree());
  for (std::size_t j = 0; j < he.rns_size(); ++j) w.u64(he.q(j));
  params_hash_ = crc32c(w.data().data(), w.size());
  deadline.configure(&channel, session.phase_deadline_s, session.cancel);
  framed.set_deadline(&deadline);
  if (session.cancel != nullptr) set_parallel_cancel_token(session.cancel);
}

ProtocolContext::~ProtocolContext() {
  if (session.cancel != nullptr) set_parallel_cancel_token(nullptr);
}

void ProtocolContext::ensure_rotation_steps(const std::vector<int>& steps) {
  for (const int s : steps) {
    keygen.add_galois_key(gk, he.galois_elt_from_step(s));
  }
}

void ProtocolContext::step(const std::string& phase,
                           const std::string& step_name,
                           const std::function<void()>& fn) {
  if (deadline.enabled()) {
    deadline.check("step " + phase + "/" + step_name);
  }
  if (session.progress != nullptr) {
    session.progress->beat(phase.c_str());
    session.progress->on_step();
  }
  const auto net_before = channel.snapshot();
  const HeOpCounters he_before = eval.counters();
  const FramedChannel::Stats framed_before = framed.stats();
  dec.take_min_margin();  // reset so the step sees only its own margins
  CpuWallTimer timer;
  fn();
  const double secs = timer.wall_seconds();
  const double cpu = timer.cpu_seconds();
  const auto net_delta = channel.delta_since(net_before);
  PhaseCost& cost = costs.at(phase, step_name);
  cost.compute_seconds += secs;
  cost.cpu_seconds += cpu;
  cost.network_seconds += net_delta.seconds;
  cost.bytes_sent += net_delta.bytes;
  cost.rounds += net_delta.flights;
  const HeOpCounters& now = eval.counters();
  cost.he_mults += now.plain_mults - he_before.plain_mults;
  cost.he_ct_mults += now.ct_mults - he_before.ct_mults;
  cost.he_rotations += now.rotations - he_before.rotations;
  cost.he_adds += now.adds - he_before.adds;
  const FramedChannel::Stats& fr = framed.stats();
  cost.retransmits += fr.retransmit_frames - framed_before.retransmit_frames;
  cost.retransmit_bytes += fr.retransmit_bytes - framed_before.retransmit_bytes;
  cost.min_noise_margin_bits =
      std::min(cost.min_noise_margin_bits, dec.take_min_margin());
}

void ProtocolContext::start_session() {
  deadline.start_phase("handshake");
  if (session.store == nullptr) return;
  SessionStore& store = *session.store;
  const auto before = channel.snapshot();

  // Client opens with its checkpoint inventory...
  SessionHello hello;
  hello.session_id = session.session_id;
  hello.params_hash = params_hash_;
  hello.epochs = store.digests(Party::kClient);
  framed.send(Party::kClient, MessageKind::kSessionHello, hello.serialize());

  // ...the server validates identity/parameters and picks the resume epoch.
  const auto hb = framed.recv_expect(Party::kServer, MessageKind::kSessionHello);
  const SessionHello peer =
      SessionHello::deserialize(hb, "server parsing session hello");
  const std::uint32_t agreed = negotiate_resume_epoch(
      peer, session.session_id, params_hash_, store, Party::kServer);
  SessionResume resume;
  resume.agreed_epoch = agreed;
  if (agreed != 0) {
    resume.digest = store.load(Party::kServer, agreed)->digest();
  }
  framed.send(Party::kServer, MessageKind::kSessionResume, resume.serialize());

  // Client cross-checks the server's choice against its own store and both
  // sides install the replay plan.
  const auto rb = framed.recv_expect(Party::kClient, MessageKind::kSessionResume);
  const SessionResume r =
      SessionResume::deserialize(rb, "client parsing session resume");
  FramedChannel::ReplayPlan plan;
  if (r.agreed_epoch != 0) {
    const auto cp = store.load(Party::kClient, r.agreed_epoch);
    if (!cp.has_value() || cp->digest() != r.digest) {
      throw ProtocolError(
          ProtocolErrorKind::kResumeDiverged,
          "client: server selected checkpoint epoch " +
              std::to_string(r.agreed_epoch) +
              " but the local copy is missing or its digest disagrees");
    }
    for (int d = 0; d < 2; ++d) {
      plan.virtual_until[d] = cp->send_watermark[d];
      plan.journal_base[d] = cp->journal_base[d];
      plan.expect_crc[d] = cp->frame_crc[d];
    }
  }
  resumed_epoch_ = r.agreed_epoch;
  epoch_ = r.agreed_epoch;
  framed.begin_session(session.session_id, r.agreed_epoch, plan);
  handshake_bytes_ = channel.delta_since(before).bytes;
  deadline.start_phase("protocol");
}

void ProtocolContext::checkpoint(const std::string& completed) {
  if (session.store != nullptr) {
    SessionCheckpoint cp;
    cp.session_id = session.session_id;
    cp.epoch = ++epoch_;
    cp.phase = completed;
    cp.params_hash = params_hash_;
    for (int d = 0; d < 2; ++d) {
      const Party p = static_cast<Party>(d);
      cp.send_watermark[d] = framed.sent_count(p);
      cp.journal_base[d] = framed.journal_base(p);
      cp.frame_crc[d] = framed.journal(p);
      for (std::size_t k = 0; k < kMessageKindCount; ++k) {
        cp.kind_counts[d][k] = framed.kind_count(p, static_cast<MessageKind>(k));
      }
    }
    cp.wire_bytes = channel.total_bytes();
    // Both parties persist the (identical) snapshot; on a resumed attempt
    // re-saving an epoch below the agreed one rewrites the same blob and
    // heals snapshots one side had lost.
    session.store->save(Party::kClient, cp);
    session.store->save(Party::kServer, cp);
    framed.set_epoch(epoch_);
    if (session.progress != nullptr) session.progress->on_checkpoint(epoch_);
    // Drain catches the run at the boundary *after* the snapshot is
    // persisted: the next request for this client resumes from here.
    if (session.drain != nullptr &&
        session.drain->load(std::memory_order_acquire)) {
      throw SessionDrained(epoch_, completed);
    }
  }
  deadline.start_phase("after_" + completed);
}

namespace {

void write_poly(ByteWriter& w, const RnsPoly& p) {
  w.u8(p.ntt_form ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(p.rns_size()));
  w.u64(p.degree());
  w.bytes(p.limb(0), p.rns_size() * p.degree() * sizeof(u64));
}

RnsPoly read_poly(ByteReader& r, const HeContext& he) {
  const std::uint8_t ntt = r.u8();
  const std::uint32_t k = r.u32();
  const std::uint64_t n = r.u64();
  if (ntt != 1 || k != he.rns_size() || n != he.degree()) {
    throw std::runtime_error("key polynomial shape " + std::to_string(k) +
                             "x" + std::to_string(n) + " (ntt=" +
                             std::to_string(ntt) + ") does not match the " +
                             "negotiated context");
  }
  RnsPoly p(k, n, /*ntt=*/true);
  r.bytes(p.limb(0), static_cast<std::size_t>(k) * n * sizeof(u64));
  return p;
}

void write_kswitch(ByteWriter& w, const KSwitchKey& key) {
  w.u32(key.decomp_bits);
  w.u32(static_cast<std::uint32_t>(key.digits()));
  for (std::size_t i = 0; i < key.digits(); ++i) {
    write_poly(w, key.b[i]);
    write_poly(w, key.a[i]);
  }
}

// Shoup quotient tables are never transmitted: they are deterministic in
// the public modulus chain, so the receiver rebuilds them locally.
KSwitchKey read_kswitch(const std::vector<std::uint8_t>& payload,
                        const HeContext& he) {
  ByteReader r(payload);
  KSwitchKey key;
  key.decomp_bits = r.u32();
  if (key.decomp_bits > 63) {
    throw std::runtime_error("decomp_bits " + std::to_string(key.decomp_bits) +
                             " out of range");
  }
  const std::uint32_t digits = r.u32();
  const std::size_t expected = he.decomp_layout(key.decomp_bits).size();
  if (digits != expected) {
    throw std::runtime_error("key has " + std::to_string(digits) +
                             " gadget digits, layout expects " +
                             std::to_string(expected));
  }
  key.b.reserve(digits);
  key.a.reserve(digits);
  key.b_shoup.reserve(digits);
  key.a_shoup.reserve(digits);
  for (std::uint32_t i = 0; i < digits; ++i) {
    RnsPoly b = read_poly(r, he);
    RnsPoly a = read_poly(r, he);
    key.b_shoup.push_back(compute_shoup_table(he, b));
    key.a_shoup.push_back(compute_shoup_table(he, a));
    key.b.push_back(std::move(b));
    key.a.push_back(std::move(a));
  }
  if (!r.done()) throw std::runtime_error("trailing bytes after key digits");
  return key;
}

}  // namespace

void ProtocolContext::transfer_keys(const std::string& phase) {
  step(phase, "key_transfer", [&] {
    // Client side: manifest (which Galois elements follow), then one frame
    // per Galois key, then the relinearization key.  Per-key frames give
    // the chaos harness kill points *inside* the multi-MB transfer — the
    // phase the checkpoint layer exists to amortize.
    ByteWriter mw;
    mw.u32(static_cast<std::uint32_t>(gk.keys.size()));
    for (const auto& [elt, key] : gk.keys) mw.u64(elt);
    framed.send(Party::kClient, MessageKind::kKeyMaterial, mw.take());
    for (const auto& [elt, key] : gk.keys) {
      ByteWriter w;
      write_kswitch(w, key);
      framed.send(Party::kClient, MessageKind::kKeyMaterial, w.take());
    }
    {
      ByteWriter w;
      write_kswitch(w, rk.key);
      framed.send(Party::kClient, MessageKind::kKeyMaterial, w.take());
    }

    // Server side: the deserialized copies *replace* gk/rk, so evaluation
    // runs on keys that genuinely crossed the fault-injected wire.
    const auto mb = framed.recv_expect(Party::kServer, MessageKind::kKeyMaterial);
    std::vector<u64> elts;
    try {
      ByteReader r(mb);
      const std::uint32_t count = r.u32();
      if (count > kMaxGaloisKeys) {
        throw std::runtime_error("manifest lists " + std::to_string(count) +
                                 " Galois keys (cap " +
                                 std::to_string(kMaxGaloisKeys) + ")");
      }
      elts.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) elts.push_back(r.u64());
      if (!r.done()) throw std::runtime_error("trailing bytes after manifest");
    } catch (const std::exception& e) {
      throw ProtocolError(ProtocolErrorKind::kMalformed,
                          "server: key manifest rejected: " + std::string(e.what()));
    }
    GaloisKeys ngk;
    for (const u64 elt : elts) {
      const auto kb = framed.recv_expect(Party::kServer, MessageKind::kKeyMaterial);
      try {
        ngk.keys[elt] = read_kswitch(kb, he);
      } catch (const std::exception& e) {
        throw ProtocolError(ProtocolErrorKind::kMalformed,
                            "server: Galois key for element " +
                                std::to_string(elt) +
                                " rejected: " + e.what());
      }
    }
    RelinKey nrk;
    {
      const auto kb = framed.recv_expect(Party::kServer, MessageKind::kKeyMaterial);
      try {
        nrk.key = read_kswitch(kb, he);
      } catch (const std::exception& e) {
        throw ProtocolError(ProtocolErrorKind::kMalformed,
                            "server: relinearization key rejected: " +
                                std::string(e.what()));
      }
    }
    gk = std::move(ngk);
    rk = std::move(nrk);
  });
}

void ProtocolContext::send_cts(Party from, const std::vector<Ciphertext>& cts) {
  // Each ciphertext is framed with its byte length so the receiver can
  // split the message and decode slices in parallel; encoding itself is
  // likewise parallel (one writer per ciphertext, concatenated in order).
  std::vector<ByteWriter> writers(cts.size());
  parallel_for(0, cts.size(),
               [&](std::size_t i) { eval.serialize(cts[i], writers[i]); });
  std::size_t total = 4;
  for (const auto& wr : writers) total += 4 + wr.size();
  ByteWriter w;
  w.reserve(total);
  w.u32(static_cast<std::uint32_t>(cts.size()));
  for (const auto& wr : writers) {
    w.u32(static_cast<std::uint32_t>(wr.size()));
    w.bytes(wr.data().data(), wr.size());
  }
  framed.send(from, MessageKind::kCiphertexts, w.take());
}

std::vector<Ciphertext> ProtocolContext::recv_cts(Party to) {
  const auto bytes = framed.recv_expect(to, MessageKind::kCiphertexts);
  try {
    ByteReader r(bytes);
    const auto count = r.u32();
    // Each ciphertext costs at least a 4-byte length prefix, so any count
    // beyond remaining/4 is a lie — reject before sizing the vectors.
    if (count > r.remaining() / 4) {
      throw std::out_of_range("recv_cts: ciphertext count " +
                              std::to_string(count) + " exceeds payload");
    }
    // Scan the frame lengths, then decode every slice independently.
    std::vector<std::size_t> begin(count), end(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto len = r.u32();
      begin[i] = r.position();
      end[i] = begin[i] + len;
      r.skip(len);
    }
    std::vector<Ciphertext> cts(count);
    parallel_for(0, count, [&](std::size_t i) {
      ByteReader slice(bytes, begin[i], end[i]);
      cts[i] = eval.deserialize(slice);
    });
    return cts;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    // The frame passed its checksum, so this is a structurally invalid
    // payload (hostile sender or framing bug), not wire noise.
    throw ProtocolError(ProtocolErrorKind::kMalformed,
                        std::string(party_name(to)) +
                            ": ciphertext payload rejected: " + e.what());
  }
}

void ProtocolContext::send_ring(Party from, const MatI& m) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(m.rows()));
  w.u32(static_cast<std::uint32_t>(m.cols()));
  // Ring values fit in share_bits() bits; ship them packed 5 bytes per
  // value for t < 2^40 (the live profiles) to keep traffic realistic.
  const std::size_t bytes_per = (share_bits() + 7) / 8;
  for (const auto v : m.data()) {
    w.bytes(&v, bytes_per);
  }
  framed.send(from, MessageKind::kRingMatrix, w.take());
}

MatI ProtocolContext::recv_ring(Party to, std::size_t rows, std::size_t cols) {
  const auto bytes = framed.recv_expect(to, MessageKind::kRingMatrix);
  try {
    ByteReader r(bytes);
    const auto rr = r.u32();
    const auto cc = r.u32();
    if (rr != rows || cc != cols) {
      throw std::runtime_error("recv_ring: shape " + std::to_string(rr) + "x" +
                               std::to_string(cc) + ", expected " +
                               std::to_string(rows) + "x" +
                               std::to_string(cols));
    }
    MatI m(rows, cols);
    const std::size_t bytes_per = (share_bits() + 7) / 8;
    for (auto& v : m.data()) {
      std::int64_t x = 0;
      r.bytes(&x, bytes_per);
      v = x;
    }
    return m;
  } catch (const std::exception& e) {
    throw ProtocolError(ProtocolErrorKind::kMalformed,
                        std::string(party_name(to)) +
                            ": ring-matrix payload rejected: " + e.what());
  }
}

std::vector<bool> ProtocolContext::ring_bits(const MatI& m) const {
  const std::size_t w = share_bits();
  std::vector<bool> bits;
  bits.reserve(m.size() * w);
  for (const auto v : m.data()) {
    for (std::size_t b = 0; b < w; ++b) {
      bits.push_back((static_cast<std::uint64_t>(v) >> b) & 1);
    }
  }
  return bits;
}

std::vector<bool> ProtocolContext::ring_bits_row(const MatI& m,
                                                 std::size_t row) const {
  const std::size_t w = share_bits();
  std::vector<bool> bits;
  bits.reserve(m.cols() * w);
  for (std::size_t c = 0; c < m.cols(); ++c) {
    const auto v = static_cast<std::uint64_t>(m(row, c));
    for (std::size_t b = 0; b < w; ++b) bits.push_back((v >> b) & 1);
  }
  return bits;
}

MatI ProtocolContext::bits_to_ring(const std::vector<bool>& bits,
                                   std::size_t rows, std::size_t cols) const {
  const std::size_t w = share_bits();
  MatI m(rows, cols);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < w; ++b) {
      if (bits[i * w + b]) v |= std::uint64_t{1} << b;
    }
    m.data()[i] = static_cast<std::int64_t>(v);
  }
  return m;
}

}  // namespace primer
