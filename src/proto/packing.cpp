#include "proto/packing.h"

#include <stdexcept>

#include "common/fixed_point.h"
#include "common/parallel.h"

namespace primer {

namespace {

// The Horner-style accumulation
//     S = rot(S, step) + in * P'_k
// performs every plaintext multiplication on the *fresh* input ciphertext
// (bounded noise) while executing exactly the K-1 Rotate operations the
// paper's Fig. 6 loops count — one alignment per feature block
// (tokens-first) or per slot (feature-based).  P'_k is the alignment mask
// pre-rotated (a free plaintext operation on the server).
std::vector<u64> rotate_right_plain(const std::vector<u64>& v,
                                    std::size_t amount, std::size_t row) {
  std::vector<u64> out(v.size(), 0);
  for (std::size_t s = 0; s < row; ++s) {
    out[(s + amount) % row] = v[s];
  }
  return out;
}

bool all_zero(const std::vector<u64>& v) {
  for (const u64 x : v) {
    if (x != 0) return false;
  }
  return true;
}

}  // namespace

PackedMatmulStats packed_matmul_counts(PackingStrategy strategy,
                                       std::size_t tokens, std::size_t d_in,
                                       std::size_t d_out, std::size_t slots) {
  // Rotation accounting follows the paper's Fig. 6 loops: each rotated copy
  // of an input ciphertext is REUSED across outputs (line 11 hoists the
  // Rotate out of the g-loop), so rotations scale with input ciphertexts
  // times alignments, while plaintext multiplications additionally scale
  // with the number of output ciphertexts.
  PackedMatmulStats s;
  const std::size_t m = slots;
  if (strategy == PackingStrategy::kTokensFirst) {
    const std::size_t fpc = std::max<std::size_t>(1, m / tokens);
    const std::size_t cts = (d_in + fpc - 1) / fpc;
    const std::size_t k = std::min(fpc, d_in);
    s.input_ciphertexts = cts;
    s.output_ciphertexts = (tokens * d_out + m - 1) / m;
    s.rotations = cts * (k - 1);
    s.plain_mults = cts * k * s.output_ciphertexts;
    s.adds = s.plain_mults;
  } else {
    const std::size_t cts = (tokens * d_in + m - 1) / m;
    s.input_ciphertexts = cts;
    s.output_ciphertexts = (tokens * d_out + m - 1) / m;
    s.rotations = cts * (m - 1);
    s.plain_mults = cts * m * s.output_ciphertexts;
    s.adds = s.plain_mults;
  }
  return s;
}

PackedMatmul::PackedMatmul(const HeContext& ctx, const BatchEncoder& encoder,
                           const Evaluator& eval, PackingStrategy strategy)
    : ctx_(ctx), encoder_(encoder), eval_(eval), strategy_(strategy) {}

int PackedMatmul::rotation_step(std::size_t tokens) const {
  return strategy_ == PackingStrategy::kTokensFirst ? static_cast<int>(tokens)
                                                    : 1;
}

std::vector<Ciphertext> PackedMatmul::encrypt_input(
    const MatI& x_ring, const Encryptor& enc) const {
  const std::size_t row = encoder_.row_size();
  const std::size_t n = x_ring.rows();
  const std::size_t d_in = x_ring.cols();
  std::vector<Ciphertext> out;

  if (strategy_ == PackingStrategy::kTokensFirst) {
    const std::size_t fpc = row / n;
    if (fpc == 0) {
      throw std::invalid_argument("tokens-first: tokens exceed slot row");
    }
    const std::size_t cts = (d_in + fpc - 1) / fpc;
    for (std::size_t ci = 0; ci < cts; ++ci) {
      std::vector<u64> slots(row, 0);
      for (std::size_t b = 0; b < fpc; ++b) {
        const std::size_t j = ci * fpc + b;
        if (j >= d_in) break;
        for (std::size_t i = 0; i < n; ++i) {
          slots[b * n + i] = static_cast<u64>(x_ring(i, j));
        }
      }
      out.push_back(enc.encrypt(encoder_.encode(slots)));
    }
  } else {
    const std::size_t total = n * d_in;
    const std::size_t cts = (total + row - 1) / row;
    for (std::size_t ci = 0; ci < cts; ++ci) {
      std::vector<u64> slots(row, 0);
      for (std::size_t s = 0; s < row; ++s) {
        const std::size_t l = ci * row + s;  // row-major (token, feature)
        if (l >= total) break;
        slots[s] = static_cast<u64>(x_ring(l / d_in, l % d_in));
      }
      out.push_back(enc.encrypt(encoder_.encode(slots)));
    }
  }
  return out;
}

std::vector<Ciphertext> PackedMatmul::multiply(
    const std::vector<Ciphertext>& packed, const MatI& w_raw,
    std::size_t tokens, std::uint64_t t, const GaloisKeys& gk,
    PackedMatmulStats* stats) const {
  const std::size_t row = encoder_.row_size();
  const std::size_t n = tokens;
  const std::size_t d_in = w_raw.rows();
  const std::size_t d_out = w_raw.cols();
  const std::size_t fpc = row / n;  // blocks per ciphertext
  if (fpc == 0) throw std::invalid_argument("PackedMatmul: tokens > row");

  // Ring-encoded weights (centered fixed point lifted into Z_t).
  std::vector<std::vector<u64>> w_ring(d_in, std::vector<u64>(d_out));
  for (std::size_t j = 0; j < d_in; ++j) {
    for (std::size_t o = 0; o < d_out; ++o) {
      w_ring[j][o] = fp_to_ring(w_raw(j, o), t);
    }
  }

  PackedMatmulStats local;
  local.input_ciphertexts = packed.size();
  const std::size_t out_cts = (d_out + fpc - 1) / fpc;
  local.output_ciphertexts = out_cts;

  const std::size_t iters =
      strategy_ == PackingStrategy::kTokensFirst ? fpc : row;
  const int step = rotation_step(n);

  std::vector<Ciphertext> result(out_cts);

  // Each output ciphertext is an independent Horner chain over the (const)
  // input ciphertexts — the HGS offline heavy path.  Parallelize across
  // output ciphertexts; per-oc stats are merged in order afterwards so the
  // tallies match the serial loop exactly.
  std::vector<PackedMatmulStats> oc_stats(out_cts);
  parallel_for(0, out_cts, [&](std::size_t oc) {
    bool result_set = false;
    for (std::size_t ci = 0; ci < packed.size(); ++ci) {
      // Build the Horner chain for (input ci, output ct oc).
      Ciphertext acc;
      bool acc_set = false;
      for (std::size_t down = 0; down < iters; ++down) {
        const std::size_t k = iters - 1 - down;
        // Mask P_k: target slot layout is block b <-> output o = oc*fpc + b,
        // slot b*n + i <-> token i.
        std::vector<u64> mask(row, 0);
        if (strategy_ == PackingStrategy::kTokensFirst) {
          for (std::size_t b = 0; b < fpc; ++b) {
            const std::size_t o = oc * fpc + b;
            if (o >= d_out) break;
            const std::size_t j = ci * fpc + ((b + k) % fpc);
            if (j >= d_in || j >= (ci + 1) * fpc) continue;
            for (std::size_t i = 0; i < n; ++i) {
              mask[b * n + i] = w_ring[j][o];
            }
          }
        } else {
          for (std::size_t tl = 0; tl < row; ++tl) {
            const std::size_t i = tl % n;
            const std::size_t o = oc * fpc + tl / n;
            if (o >= d_out) continue;
            const std::size_t src = (tl + k) % row;
            const std::size_t l = ci * row + src;
            if (l >= n * d_in) continue;
            if (l / d_in != i) continue;
            mask[tl] = w_ring[l % d_in][o];
          }
        }

        if (acc_set) {
          eval_.rotate_rows_inplace(acc, step, gk);
          ++oc_stats[oc].rotations;
        }
        if (!all_zero(mask)) {
          const auto pre = rotate_right_plain(
              mask, (k * static_cast<std::size_t>(step)) % row, row);
          const Plaintext mask_pt = encoder_.encode(pre);
          if (acc_set) {
            // Fused acc += ct * pt: no ciphertext copy, one limb pass.
            eval_.multiply_plain_accumulate(acc, packed[ci], mask_pt);
            ++oc_stats[oc].plain_mults;
            ++oc_stats[oc].adds;
          } else {
            Ciphertext term = packed[ci];
            eval_.multiply_plain_inplace(term, mask_pt);
            ++oc_stats[oc].plain_mults;
            acc = std::move(term);
            acc_set = true;
          }
        } else if (!acc_set) {
          // Nothing accumulated yet and nothing to add: the chain has not
          // started, so no rotation is pending either.
          continue;
        }
      }
      if (!acc_set) continue;
      if (result_set) {
        eval_.add_inplace(result[oc], acc);
        ++oc_stats[oc].adds;
      } else {
        result[oc] = std::move(acc);
        result_set = true;
      }
    }
    if (!result_set) {
      throw std::runtime_error("PackedMatmul: empty output ciphertext");
    }
  });

  for (const auto& s : oc_stats) {
    local.rotations += s.rotations;
    local.plain_mults += s.plain_mults;
    local.adds += s.adds;
  }
  if (stats != nullptr) *stats += local;
  return result;
}

MatI PackedMatmul::decrypt_result(const std::vector<Ciphertext>& result,
                                  const Decryptor& dec, std::size_t tokens,
                                  std::size_t d_out) const {
  const std::size_t row = encoder_.row_size();
  MatI out(tokens, d_out);
  const std::size_t per_ct = row / tokens;  // output blocks per ciphertext
  // Each result ciphertext decrypts into its own disjoint column block.
  parallel_for(0, result.size(), [&](std::size_t rc) {
    const auto slots = encoder_.decode(dec.decrypt(result[rc]));
    for (std::size_t b = 0; b < per_ct; ++b) {
      const std::size_t o = rc * per_ct + b;
      if (o >= d_out) break;
      for (std::size_t i = 0; i < tokens; ++i) {
        out(i, o) = static_cast<std::int64_t>(slots[b * tokens + i]);
      }
    }
  });
  return out;
}

}  // namespace primer
