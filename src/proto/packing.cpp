#include "proto/packing.h"

#include <stdexcept>

#include "common/fixed_point.h"
#include "common/parallel.h"

namespace primer {

namespace {

// The Horner-style accumulation
//     S = rot(S, step) + in * P'_k
// performs every plaintext multiplication on the *fresh* input ciphertext
// (bounded noise) while executing exactly the K-1 Rotate operations the
// paper's Fig. 6 loops count — one alignment per feature block
// (tokens-first) or per slot (feature-based).  P'_k is the alignment mask
// pre-rotated (a free plaintext operation on the server).
std::vector<u64> rotate_right_plain(const std::vector<u64>& v,
                                    std::size_t amount, std::size_t row) {
  std::vector<u64> out(v.size(), 0);
  for (std::size_t s = 0; s < row; ++s) {
    out[(s + amount) % row] = v[s];
  }
  return out;
}

bool all_zero(const std::vector<u64>& v) {
  for (const u64 x : v) {
    if (x != 0) return false;
  }
  return true;
}

}  // namespace

std::pair<std::size_t, std::size_t> bsgs_split(std::size_t iters) {
  if (iters <= 1) return {1, 1};
  std::size_t n1 = 1;
  while (n1 * n1 < iters) ++n1;
  const std::size_t n2 = (iters + n1 - 1) / n1;
  return {n1, n2};
}

PackedMatmulStats packed_matmul_counts(PackingStrategy strategy,
                                       std::size_t tokens, std::size_t d_in,
                                       std::size_t d_out, std::size_t slots) {
  // Key-switch accounting follows the BSGS execution: per input ciphertext,
  // n1-1 hoisted baby rotations shared by every output chain, plus n2-1
  // giant rotations per (input, output) chain — n1+n2 key-switches per
  // rotation set instead of the n1*n2 of the sequential walk.  Plaintext
  // multiplications still scale with alignments times output ciphertexts.
  PackedMatmulStats s;
  const std::size_t m = slots;
  std::size_t cts, iters, k;
  if (strategy == PackingStrategy::kTokensFirst) {
    const std::size_t fpc = std::max<std::size_t>(1, m / tokens);
    cts = (d_in + fpc - 1) / fpc;
    iters = fpc;
    k = std::min(fpc, d_in);
  } else {
    cts = (tokens * d_in + m - 1) / m;
    iters = m;
    k = m;
  }
  s.input_ciphertexts = cts;
  s.output_ciphertexts = (tokens * d_out + m - 1) / m;
  const auto [n1, n2] = bsgs_split(iters);
  s.baby_rotations = cts * (n1 - 1);
  s.giant_rotations = cts * s.output_ciphertexts * (n2 - 1);
  s.rotations = s.baby_rotations + s.giant_rotations;
  s.naive_rotations = cts * (iters - 1);
  s.plain_mults = cts * k * s.output_ciphertexts;
  s.adds = s.plain_mults;
  return s;
}

PackedMatmul::PackedMatmul(const HeContext& ctx, const BatchEncoder& encoder,
                           const Evaluator& eval, PackingStrategy strategy)
    : ctx_(ctx), encoder_(encoder), eval_(eval), strategy_(strategy) {}

int PackedMatmul::rotation_step(std::size_t tokens) const {
  return strategy_ == PackingStrategy::kTokensFirst ? static_cast<int>(tokens)
                                                    : 1;
}

std::vector<int> PackedMatmul::rotation_steps(std::size_t tokens) const {
  const std::size_t row = encoder_.row_size();
  const std::size_t iters =
      strategy_ == PackingStrategy::kTokensFirst ? row / tokens : row;
  const auto [n1, n2] = bsgs_split(iters);
  const int step = rotation_step(tokens);
  std::vector<int> steps;
  for (std::size_t g = 1; g < n1; ++g) {
    steps.push_back(static_cast<int>(g) * step);
  }
  if (n2 > 1) steps.push_back(static_cast<int>(n1) * step);
  if (steps.empty()) steps.push_back(step);  // degenerate single-alignment
  return steps;
}

std::vector<Ciphertext> PackedMatmul::encrypt_input(
    const MatI& x_ring, const Encryptor& enc) const {
  const std::size_t row = encoder_.row_size();
  const std::size_t n = x_ring.rows();
  const std::size_t d_in = x_ring.cols();
  std::vector<Ciphertext> out;

  if (strategy_ == PackingStrategy::kTokensFirst) {
    const std::size_t fpc = row / n;
    if (fpc == 0) {
      throw std::invalid_argument("tokens-first: tokens exceed slot row");
    }
    const std::size_t cts = (d_in + fpc - 1) / fpc;
    for (std::size_t ci = 0; ci < cts; ++ci) {
      std::vector<u64> slots(row, 0);
      for (std::size_t b = 0; b < fpc; ++b) {
        const std::size_t j = ci * fpc + b;
        if (j >= d_in) break;
        for (std::size_t i = 0; i < n; ++i) {
          slots[b * n + i] = static_cast<u64>(x_ring(i, j));
        }
      }
      out.push_back(enc.encrypt(encoder_.encode(slots)));
    }
  } else {
    const std::size_t total = n * d_in;
    const std::size_t cts = (total + row - 1) / row;
    for (std::size_t ci = 0; ci < cts; ++ci) {
      std::vector<u64> slots(row, 0);
      for (std::size_t s = 0; s < row; ++s) {
        const std::size_t l = ci * row + s;  // row-major (token, feature)
        if (l >= total) break;
        slots[s] = static_cast<u64>(x_ring(l / d_in, l % d_in));
      }
      out.push_back(enc.encrypt(encoder_.encode(slots)));
    }
  }
  return out;
}

std::vector<Ciphertext> PackedMatmul::multiply(
    const std::vector<Ciphertext>& packed, const MatI& w_raw,
    std::size_t tokens, std::uint64_t t, const GaloisKeys& gk,
    PackedMatmulStats* stats) const {
  const std::size_t row = encoder_.row_size();
  const std::size_t n = tokens;
  const std::size_t d_in = w_raw.rows();
  const std::size_t d_out = w_raw.cols();
  const std::size_t fpc = row / n;  // blocks per ciphertext
  if (fpc == 0) throw std::invalid_argument("PackedMatmul: tokens > row");

  // Ring-encoded weights (centered fixed point lifted into Z_t).
  std::vector<std::vector<u64>> w_ring(d_in, std::vector<u64>(d_out));
  for (std::size_t j = 0; j < d_in; ++j) {
    for (std::size_t o = 0; o < d_out; ++o) {
      w_ring[j][o] = fp_to_ring(w_raw(j, o), t);
    }
  }

  PackedMatmulStats local;
  local.input_ciphertexts = packed.size();
  const std::size_t out_cts = (d_out + fpc - 1) / fpc;
  local.output_ciphertexts = out_cts;

  const std::size_t iters =
      strategy_ == PackingStrategy::kTokensFirst ? fpc : row;
  const int step = rotation_step(n);
  const auto [n1, n2] = bsgs_split(iters);

  // Baby-step/giant-step over the alignment index a = h*n1 + g:
  //   result = sum_a rot_{a*step}(in) * P_a
  //          = sum_h rot_{h*n1*step}( sum_g rot_{g*step}(in) * Q_{h,g} )
  // with Q_{h,g} = P_{h*n1+g} pre-rotated right by h*n1*step.  The n1 baby
  // rotations of each input ciphertext are HOISTED (one digit decomposition
  // for the whole set) and shared by every output chain; each chain then
  // pays n2-1 giant rotations of its partial sums — n1+n2 key-switches per
  // input ciphertext instead of the n1*n2 of the sequential Horner walk.
  // The summands are exact ring values, so the decrypted output is
  // identical to the sequential order's.
  std::vector<Ciphertext> result(out_cts);
  std::vector<std::uint8_t> result_set(out_cts, 0);
  std::vector<PackedMatmulStats> oc_stats(out_cts);

  for (std::size_t ci = 0; ci < packed.size(); ++ci) {
    // What the sequential Horner walk would have paid for this ciphertext.
    local.naive_rotations += iters - 1;
    // Baby rotations rot_{g*step}(in) for g = 0..n1-1, hoisted.
    std::vector<Ciphertext> rots;
    rots.reserve(n1);
    rots.push_back(packed[ci]);
    if (n1 > 1) {
      std::vector<int> baby_steps;
      for (std::size_t g = 1; g < n1; ++g) {
        baby_steps.push_back(static_cast<int>(g) * step);
      }
      auto baby = eval_.rotate_rows_many(packed[ci], baby_steps, gk);
      for (auto& r : baby) rots.push_back(std::move(r));
      local.rotations += n1 - 1;
      local.baby_rotations += n1 - 1;
    }

    // Each output ciphertext accumulates an independent giant-step chain
    // over the shared baby rotations; per-oc stats merge in order below so
    // tallies match the serial loop exactly.
    parallel_for(0, out_cts, [&](std::size_t oc) {
      Ciphertext acc;
      bool acc_set = false;
      for (std::size_t down = 0; down < n2; ++down) {
        const std::size_t h = n2 - 1 - down;
        if (acc_set) {
          // Align the previously accumulated giant blocks.
          eval_.rotate_rows_inplace(acc, static_cast<int>(n1) * step, gk);
          ++oc_stats[oc].rotations;
          ++oc_stats[oc].giant_rotations;
        }
        const std::size_t pre_rot =
            h * n1 * static_cast<std::size_t>(step) % row;
        for (std::size_t g = 0; g < n1; ++g) {
          const std::size_t k = h * n1 + g;
          if (k >= iters) break;
          // Mask P_k: target slot layout is block b <-> output
          // o = oc*fpc + b, slot b*n + i <-> token i.
          std::vector<u64> mask(row, 0);
          if (strategy_ == PackingStrategy::kTokensFirst) {
            for (std::size_t b = 0; b < fpc; ++b) {
              const std::size_t o = oc * fpc + b;
              if (o >= d_out) break;
              const std::size_t j = ci * fpc + ((b + k) % fpc);
              if (j >= d_in || j >= (ci + 1) * fpc) continue;
              for (std::size_t i = 0; i < n; ++i) {
                mask[b * n + i] = w_ring[j][o];
              }
            }
          } else {
            for (std::size_t tl = 0; tl < row; ++tl) {
              const std::size_t i = tl % n;
              const std::size_t o = oc * fpc + tl / n;
              if (o >= d_out) continue;
              const std::size_t src = (tl + k) % row;
              const std::size_t l = ci * row + src;
              if (l >= n * d_in) continue;
              if (l / d_in != i) continue;
              mask[tl] = w_ring[l % d_in][o];
            }
          }
          if (all_zero(mask)) continue;
          const auto pre = rotate_right_plain(mask, pre_rot, row);
          const Plaintext mask_pt = encoder_.encode(pre);
          if (acc_set) {
            // Fused acc += ct * pt: no ciphertext copy, one limb pass.
            eval_.multiply_plain_accumulate(acc, rots[g], mask_pt);
            ++oc_stats[oc].plain_mults;
            ++oc_stats[oc].adds;
          } else {
            Ciphertext term = rots[g];
            eval_.multiply_plain_inplace(term, mask_pt);
            ++oc_stats[oc].plain_mults;
            acc = std::move(term);
            acc_set = true;
          }
        }
      }
      if (!acc_set) return;
      if (result_set[oc] != 0) {
        eval_.add_inplace(result[oc], acc);
        ++oc_stats[oc].adds;
      } else {
        result[oc] = std::move(acc);
        result_set[oc] = 1;
      }
    });
  }
  for (const auto set : result_set) {
    if (set == 0) {
      throw std::runtime_error("PackedMatmul: empty output ciphertext");
    }
  }

  for (const auto& s : oc_stats) {
    local.rotations += s.rotations;
    local.giant_rotations += s.giant_rotations;
    local.plain_mults += s.plain_mults;
    local.adds += s.adds;
  }
  if (stats != nullptr) *stats += local;
  return result;
}

MatI PackedMatmul::decrypt_result(const std::vector<Ciphertext>& result,
                                  const Decryptor& dec, std::size_t tokens,
                                  std::size_t d_out) const {
  const std::size_t row = encoder_.row_size();
  MatI out(tokens, d_out);
  const std::size_t per_ct = row / tokens;  // output blocks per ciphertext
  // Each result ciphertext decrypts into its own disjoint column block.
  parallel_for(0, result.size(), [&](std::size_t rc) {
    const auto slots = encoder_.decode(dec.decrypt(result[rc]));
    for (std::size_t b = 0; b < per_ct; ++b) {
      const std::size_t o = rc * per_ct + b;
      if (o >= d_out) break;
      for (std::size_t i = 0; i < tokens; ++i) {
        out(i, o) = static_cast<std::int64_t>(slots[b * tokens + i]);
      }
    }
  });
  return out;
}

}  // namespace primer
