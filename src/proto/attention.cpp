#include "proto/attention.h"

#include <stdexcept>

namespace primer {

namespace {

// Packs an (n x m) ring matrix into the PackedMatmul output layout:
// ciphertext rc, block b <-> column o = rc*fpc + b, slot b*n + i <-> row i.
std::vector<std::vector<u64>> output_layout_slots(const BatchEncoder& encoder,
                                                  const MatI& val) {
  const std::size_t row = encoder.row_size();
  const std::size_t n = val.rows();
  const std::size_t m = val.cols();
  const std::size_t fpc = row / n;
  const std::size_t cts = (m + fpc - 1) / fpc;
  std::vector<std::vector<u64>> out(cts, std::vector<u64>(row, 0));
  for (std::size_t o = 0; o < m; ++o) {
    const std::size_t rc = o / fpc;
    const std::size_t b = o % fpc;
    for (std::size_t i = 0; i < n; ++i) {
      out[rc][b * n + i] = static_cast<u64>(val(i, o));
    }
  }
  return out;
}

// Subtracts a ring matrix (in output layout) from a ciphertext vector.
void sub_layout_plain(ProtocolContext& pc, std::vector<Ciphertext>& cts,
                      const MatI& val) {
  const auto slots = output_layout_slots(pc.encoder, val);
  for (std::size_t i = 0; i < cts.size(); ++i) {
    pc.eval.sub_plain_inplace(cts[i], pc.encoder.encode(slots[i]));
  }
}

MatI transpose_ring(const MatI& m) { return m.transposed(); }

}  // namespace

// ---------------------------------------------------------------------------
// FhgsProduct
// ---------------------------------------------------------------------------

void FhgsProduct::offline(const std::string& step_name, const MatI& ra,
                          const MatI& rb) {
  pc_.step("offline", step_name, [&] {
    // Client: the FHGS triple.
    const MatI ra_red = pc_.ring.reduce(ra);
    const MatI rb_red = pc_.ring.reduce(rb);
    auto enc_ra = mm_a_.encrypt_input(ra_red, pc_.enc);
    auto enc_rbt = mm_bt_.encrypt_input(transpose_ring(rb_red), pc_.enc);
    const MatI rarb = pc_.ring.mul(ra_red, rb_red);
    const auto rarb_slots = output_layout_slots(pc_.encoder, rarb);
    std::vector<Ciphertext> enc_rarb;
    for (const auto& s : rarb_slots) {
      enc_rarb.push_back(pc_.enc.encrypt(pc_.encoder.encode(s)));
    }
    pc_.send_cts(Party::kClient, enc_ra);
    pc_.send_cts(Party::kClient, enc_rbt);
    pc_.send_cts(Party::kClient, enc_rarb);
    // Server stores the triple.
    enc_ra_ = pc_.recv_cts(Party::kServer);
    enc_rbt_ = pc_.recv_cts(Party::kServer);
    enc_rarb_ = pc_.recv_cts(Party::kServer);
  });
}

LinearShares FhgsProduct::online(const std::string& step_name, const MatI& da,
                                 const MatI& db) {
  LinearShares out;
  pc_.step("online", step_name, [&] {
    const MatI da_red = pc_.ring.reduce(da);
    const MatI db_red = pc_.ring.reduce(db);

    // Server: tmp1 = Da*Db (plaintext).
    const MatI tmp1 = pc_.ring.mul(da_red, db_red);

    // S1 = Enc(Ra)*Db + Enc(Ra*Rb) - Rs1.
    PackedMatmulStats stats;
    auto s1 = mm_a_.multiply(enc_ra_, db_red, n_, pc_.t(), pc_.gk, &stats);
    for (std::size_t i = 0; i < s1.size(); ++i) {
      pc_.eval.add_inplace(s1[i], enc_rarb_[i]);
    }
    const MatI rs1 = pc_.ring.random(pc_.server_rng, n_, m_);
    sub_layout_plain(pc_, s1, rs1);

    // S2 = Enc(Rb^T)*Da^T - Rs2  (= (Da*Rb)^T - Rs2).
    auto s2 = mm_bt_.multiply(enc_rbt_, transpose_ring(da_red), m_, pc_.t(),
                              pc_.gk, &stats);
    const MatI rs2 = pc_.ring.random(pc_.server_rng, m_, n_);
    sub_layout_plain(pc_, s2, rs2);

    pc_.send_cts(Party::kServer, s1);
    pc_.send_cts(Party::kServer, s2);

    // Client: decrypt, transpose the second term, assemble its share.
    const auto c1 = pc_.recv_cts(Party::kClient);
    const auto c2 = pc_.recv_cts(Party::kClient);
    PackedMatmul helper(pc_.he, pc_.encoder, pc_.eval,
                        PackingStrategy::kTokensFirst);
    const MatI p1 = helper.decrypt_result(c1, pc_.dec, n_, m_);
    const MatI p2 = helper.decrypt_result(c2, pc_.dec, m_, n_);
    out.client = pc_.ring.add(p1, transpose_ring(p2));

    // Server share.
    out.server = pc_.ring.add(tmp1, pc_.ring.add(rs1, transpose_ring(rs2)));
  });
  return out;
}

// ---------------------------------------------------------------------------
// CtCtProduct (Primer-base)
// ---------------------------------------------------------------------------

LinearShares CtCtProduct::online(const std::string& step_name, const MatI& ac,
                                 const MatI& as, const MatI& bc,
                                 const MatI& bs) {
  LinearShares out;
  pc_.step("online", step_name, [&] {
    const MatI ac_red = pc_.ring.reduce(ac);
    const MatI as_red = pc_.ring.reduce(as);
    const MatI bc_red = pc_.ring.reduce(bc);
    const MatI bs_red = pc_.ring.reduce(bs);

    // --- ct-pt terms ------------------------------------------------------
    // Ac*Bs: client encrypts Ac, server multiplies by Bs.
    auto enc_ac = mm_a_.encrypt_input(ac_red, pc_.enc);
    // As*Bc = (Bc^T * As^T)^T: client encrypts Bc^T.
    auto enc_bct = mm_bt_.encrypt_input(transpose_ring(bc_red), pc_.enc);
    // Ac*Bc ct-ct term: client packs rows of Ac and columns of Bc as
    // individual ciphertexts (k slots each).
    std::vector<Ciphertext> row_cts, col_cts;
    for (std::size_t i = 0; i < n_; ++i) {
      std::vector<u64> slots(k_);
      for (std::size_t j = 0; j < k_; ++j) {
        slots[j] = static_cast<u64>(ac_red(i, j));
      }
      row_cts.push_back(pc_.enc.encrypt(pc_.encoder.encode(slots)));
    }
    for (std::size_t o = 0; o < m_; ++o) {
      std::vector<u64> slots(k_);
      for (std::size_t j = 0; j < k_; ++j) {
        slots[j] = static_cast<u64>(bc_red(j, o));
      }
      col_cts.push_back(pc_.enc.encrypt(pc_.encoder.encode(slots)));
    }
    pc_.send_cts(Party::kClient, enc_ac);
    pc_.send_cts(Party::kClient, enc_bct);
    pc_.send_cts(Party::kClient, row_cts);
    pc_.send_cts(Party::kClient, col_cts);

    // --- server side ------------------------------------------------------
    const auto srv_ac = pc_.recv_cts(Party::kServer);
    const auto srv_bct = pc_.recv_cts(Party::kServer);
    const auto srv_rows = pc_.recv_cts(Party::kServer);
    const auto srv_cols = pc_.recv_cts(Party::kServer);

    PackedMatmulStats stats;
    auto s1 = mm_a_.multiply(srv_ac, bs_red, n_, pc_.t(), pc_.gk, &stats);
    const MatI rs1 = pc_.ring.random(pc_.server_rng, n_, m_);
    sub_layout_plain(pc_, s1, rs1);

    auto s2 = mm_bt_.multiply(srv_bct, transpose_ring(as_red), m_, pc_.t(),
                              pc_.gk, &stats);
    const MatI rs2 = pc_.ring.random(pc_.server_rng, m_, n_);
    sub_layout_plain(pc_, s2, rs2);

    // Genuine ct-ct multiplications; each dot product reduces its k_ slots
    // with the BSGS rotate-sum (hoisted baby rotations + doubling giants)
    // instead of log2(k_) full key-switches.
    const MatI rs3 = pc_.ring.random(pc_.server_rng, n_, m_);
    std::vector<Ciphertext> dots;
    dots.reserve(n_ * m_);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t o = 0; o < m_; ++o) {
        Ciphertext prod = pc_.eval.multiply(srv_rows[i], srv_cols[o]);
        pc_.eval.relinearize_inplace(prod, pc_.rk);
        pc_.eval.rotate_sum_inplace(prod, k_, pc_.gk);
        std::vector<u64> mask(1, static_cast<u64>(rs3(i, o)));
        pc_.eval.sub_plain_inplace(prod, pc_.encoder.encode(mask));
        dots.push_back(std::move(prod));
      }
    }
    pc_.send_cts(Party::kServer, s1);
    pc_.send_cts(Party::kServer, s2);
    pc_.send_cts(Party::kServer, dots);

    // --- client assembles its share ----------------------------------------
    const auto c1 = pc_.recv_cts(Party::kClient);
    const auto c2 = pc_.recv_cts(Party::kClient);
    const auto cdots = pc_.recv_cts(Party::kClient);
    PackedMatmul helper(pc_.he, pc_.encoder, pc_.eval,
                        PackingStrategy::kTokensFirst);
    const MatI p1 = helper.decrypt_result(c1, pc_.dec, n_, m_);
    const MatI p2 = helper.decrypt_result(c2, pc_.dec, m_, n_);
    MatI p3(n_, m_);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t o = 0; o < m_; ++o) {
        const auto slots =
            pc_.encoder.decode(pc_.dec.decrypt(cdots[i * m_ + o]));
        p3(i, o) = static_cast<std::int64_t>(slots[0]);
      }
    }
    out.client =
        pc_.ring.add(pc_.ring.add(p1, transpose_ring(p2)), p3);

    // Server share: As*Bs + all masks.
    const MatI tmp1 = pc_.ring.mul(as_red, bs_red);
    out.server = pc_.ring.add(
        tmp1,
        pc_.ring.add(rs1, pc_.ring.add(transpose_ring(rs2), rs3)));
  });
  return out;
}

// ---------------------------------------------------------------------------
// ChgsScores
// ---------------------------------------------------------------------------

ChgsScores::ChgsScores(ProtocolContext& pc, std::size_t tokens, const MatI& we,
                       const MatI& pos, const MatI& wq_h, const MatI& wk_h)
    : pc_(pc), n_(tokens), we_(pc.ring.reduce(we)),
      pos_(pc.ring.reduce(pos)),
      mm_(pc.he, pc.encoder, pc.eval, PackingStrategy::kTokensFirst) {
  pc_.ensure_rotation_steps(mm_.rotation_steps(n_));
  // Wqk = wq_h * wk_h^T in the ring (2*frac domain).
  wqk_ = pc_.ring.mul(pc_.ring.reduce(wq_h),
                      transpose_ring(pc_.ring.reduce(wk_h)));
  // W_M = WE * Wqk * WE^T.
  w_m_ = pc_.ring.mul(pc_.ring.mul(we_, wqk_), transpose_ring(we_));
}

void ChgsScores::offline(const std::string& step_name, const MatI& r0) {
  pc_.step("offline", step_name, [&] {
    const MatI r0_red = pc_.ring.reduce(r0);
    // Client sends Enc(R0).
    auto enc_r0 = mm_.encrypt_input(r0_red, pc_.enc);
    pc_.send_cts(Party::kClient, enc_r0);
    enc_r0_ = pc_.recv_cts(Party::kServer);

    // (a) Server: Enc(R0*W_M) + S  -> client.
    PackedMatmulStats stats;
    auto g = mm_.multiply(enc_r0_, w_m_, n_, pc_.t(), pc_.gk, &stats);
    const MatI s_mask =
        pc_.ring.random(pc_.server_rng, n_, w_m_.cols());
    {
      const auto slots = output_layout_slots(pc_.encoder, s_mask);
      for (std::size_t i = 0; i < g.size(); ++i) {
        pc_.eval.add_plain_inplace(g[i], pc_.encoder.encode(slots[i]));
      }
    }
    pc_.send_cts(Party::kServer, g);

    // (b) Client: T_c = (R0*W_M + S) * R0^T.
    const auto cg = pc_.recv_cts(Party::kClient);
    const MatI gmat = mm_.decrypt_result(cg, pc_.dec, n_, w_m_.cols());
    const MatI t_c = pc_.ring.mul(gmat, transpose_ring(r0_red));

    // (c) Server: Enc(R0)*S^T - Rs_b -> client.
    auto h = mm_.multiply(enc_r0_, transpose_ring(s_mask), n_, pc_.t(), pc_.gk,
                          &stats);
    const MatI rs_b = pc_.ring.random(pc_.server_rng, n_, n_);
    sub_layout_plain(pc_, h, rs_b);
    pc_.send_cts(Party::kServer, h);

    // (d) Shares of term4 = R0*W_M*R0^T.
    const auto ch = pc_.recv_cts(Party::kClient);
    const MatI hmat = mm_.decrypt_result(ch, pc_.dec, n_, n_);
    term4_client_ = pc_.ring.sub(t_c, transpose_ring(hmat));
    term4_server_ = pc_.ring.sub(MatI(n_, n_), transpose_ring(rs_b));
  });
}

LinearShares ChgsScores::online(const std::string& step_name, const MatI& d0) {
  LinearShares out;
  pc_.step("online", step_name, [&] {
    const MatI d0_red = pc_.ring.reduce(d0);
    // Server: U~ = D0*WE + lambda (positions are public, raw domain).
    const MatI u_srv = pc_.ring.add(pc_.ring.mul(d0_red, we_), pos_);
    // term1 = U~ * Wqk * U~^T.
    const MatI uwqk = pc_.ring.mul(u_srv, wqk_);
    const MatI term1 = pc_.ring.mul(uwqk, transpose_ring(u_srv));

    // term3 = R0 * (WE * Wqk * U~^T): ct-pt with Enc(R0).
    PackedMatmulStats stats;
    const MatI w3 = pc_.ring.mul(we_, pc_.ring.mul(wqk_, transpose_ring(u_srv)));
    auto s_a = mm_.multiply(enc_r0_, w3, n_, pc_.t(), pc_.gk, &stats);
    const MatI rs1 = pc_.ring.random(pc_.server_rng, n_, n_);
    sub_layout_plain(pc_, s_a, rs1);

    // term2 = U~ * Wqk^T... computed transposed: R0 * (WE*Wqk^T*U~^T), then
    // the client transposes after decryption.
    const MatI w2 = pc_.ring.mul(
        we_, pc_.ring.mul(transpose_ring(wqk_), transpose_ring(u_srv)));
    auto s_b = mm_.multiply(enc_r0_, w2, n_, pc_.t(), pc_.gk, &stats);
    const MatI rs2 = pc_.ring.random(pc_.server_rng, n_, n_);
    sub_layout_plain(pc_, s_b, rs2);

    pc_.send_cts(Party::kServer, s_a);
    pc_.send_cts(Party::kServer, s_b);

    // Client: one interaction, assemble share.
    const auto ca = pc_.recv_cts(Party::kClient);
    const auto cb = pc_.recv_cts(Party::kClient);
    const MatI pa = mm_.decrypt_result(ca, pc_.dec, n_, n_);
    const MatI pb = mm_.decrypt_result(cb, pc_.dec, n_, n_);
    out.client = pc_.ring.add(pc_.ring.add(pa, transpose_ring(pb)),
                              term4_client_);

    // Server share.
    out.server = pc_.ring.add(
        term1,
        pc_.ring.add(rs1, pc_.ring.add(transpose_ring(rs2), term4_server_)));
  });
  return out;
}

}  // namespace primer
