// Public API of the Primer library.
//
// Quickstart:
//
//   #include "core/primer_api.h"
//
//   primer::Rng rng(1);
//   auto session = primer::PrivateInferenceSession::create_random_model(
//       primer::bert_nano(), primer::PrimerVariant::kFPC, rng);
//   auto result = session.infer({3, 17, 9, 28});
//   // result.predicted, result.logits, result.report().
//
// A session pairs a (quantized) BERT model held by the "server" with a
// client input, and runs the selected Primer protocol variant end-to-end
// with real homomorphic encryption and real garbled circuits over a
// byte-accounted simulated channel.  See DESIGN.md for the architecture.
#pragma once

#include <string>
#include <vector>

#include "nn/config.h"
#include "nn/model.h"
#include "nn/thex.h"
#include "nn/train.h"
#include "proto/cost_model.h"
#include "proto/primer.h"
#include "serving/server.h"

namespace primer {

struct InferenceResult {
  std::vector<std::int64_t> logits;  // raw 15-bit fixed point
  std::vector<double> logits_real;   // decoded
  std::size_t predicted = 0;
  PrimerRunResult run;               // timings, traffic, per-step costs

  // Human-readable latency/traffic summary.
  std::string report() const;
};

class PrivateInferenceSession {
 public:
  PrivateInferenceSession(BertWeightsI weights, PrimerVariant variant,
                          HeProfile profile = HeProfile::kProto2048,
                          std::uint64_t seed = 7);

  // Convenience: a session around a freshly initialized random model.
  static PrivateInferenceSession create_random_model(const BertConfig& config,
                                                     PrimerVariant variant,
                                                     Rng& rng);

  InferenceResult infer(const std::vector<std::size_t>& tokens);

  // Like infer(), but checkpointing into `store` and surviving retryable
  // transport failures (injected kills, stalls, exhausted retries) by
  // resuming from the last common checkpoint — up to `max_restarts` times.
  // The output is bit-identical to an unfaulted infer().
  InferenceResult infer_resilient(const std::vector<std::size_t>& tokens,
                                  SessionStore& store, int max_restarts = 5);

  // Like infer_resilient(), but checkpointing into a DurableSessionStore
  // rooted at `store_dir` — so the session survives real process death, not
  // just in-process faults.  A re-run over the same directory resumes from
  // the highest valid on-disk checkpoint (cached key material replayed at
  // zero wire cost); torn or corrupt blobs are quarantined by the recovery
  // scan, and a full disk degrades to memory-only operation (telemetry in
  // run.store_degradations) instead of failing the inference.
  InferenceResult infer_durable(const std::vector<std::size_t>& tokens,
                                const std::string& store_dir,
                                int max_restarts = 5);

  // The plaintext fixed-point reference the protocol must match bit-exactly
  // (variants kBase/kF/kFP) or track closely (kFPC).
  std::vector<std::int64_t> reference_logits(
      const std::vector<std::size_t>& tokens) const;

  const BertWeightsI& weights() const { return engine_.weights(); }
  PrimerVariant variant() const { return engine_.variant(); }

 private:
  PrimerEngine engine_;
};

// Client-side handle onto a shared PrimerServer: binds a client identity to
// the server so repeat requests reuse the same cached key material and
// checkpoint history (SessionManager).  This is the multi-tenant entry
// point; PrivateInferenceSession remains the single-tenant one.
//
//   primer::PrimerServer server({{weights, primer::PrimerVariant::kFP}});
//   primer::ServerHandle alice(server, /*client_id=*/1);
//   auto result = alice.infer({3, 17, 9, 28});
//
// infer() throws ServerOverloaded (typed, retryable) when admission sheds
// the request and std::runtime_error when the session resolves to a
// non-completed outcome; infer_outcome() returns the typed outcome instead
// of throwing.
class ServerHandle {
 public:
  ServerHandle(PrimerServer& server, std::uint64_t client_id)
      : server_(&server), client_id_(client_id) {}

  InferenceResult infer(std::vector<std::size_t> tokens,
                        std::size_t model = 0);
  SessionOutcome infer_outcome(std::vector<std::size_t> tokens,
                               std::size_t model = 0);

  std::uint64_t client_id() const { return client_id_; }

 private:
  PrimerServer* server_;
  std::uint64_t client_id_;
};

}  // namespace primer
