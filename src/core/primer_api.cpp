#include "core/primer_api.h"

#include <sstream>

namespace primer {

std::string InferenceResult::report() const {
  std::ostringstream os;
  os << "prediction: class " << predicted << "\n";
  os << "logits:";
  for (const double v : logits_real) os << " " << v;
  os << "\n";
  os << "offline: " << run.offline_compute_s << " s compute + "
     << run.offline_network_s << " s network\n";
  os << "online : " << run.online_compute_s << " s compute + "
     << run.online_network_s << " s network\n";
  os << "traffic: " << static_cast<double>(run.total_bytes) / 1e6 << " MB, "
     << run.rounds << " message flights\n";
  os << "per-step (offline_s / online_s):\n";
  for (const char* step : {"embed", "qkv", "qk", "softmax", "attnv", "others"}) {
    const auto& all = run.costs.all();
    double off = 0, on = 0;
    if (auto it = all.find("offline"); it != all.end()) {
      if (auto jt = it->second.find(step); jt != it->second.end()) {
        off = jt->second.total_seconds();
      }
    }
    if (auto it = all.find("online"); it != all.end()) {
      if (auto jt = it->second.find(step); jt != it->second.end()) {
        on = jt->second.total_seconds();
      }
    }
    os << "  " << step << ": " << off << " / " << on << "\n";
  }
  return os.str();
}

PrivateInferenceSession::PrivateInferenceSession(BertWeightsI weights,
                                                 PrimerVariant variant,
                                                 HeProfile profile,
                                                 std::uint64_t seed)
    : engine_(std::move(weights), variant, profile, seed) {}

PrivateInferenceSession PrivateInferenceSession::create_random_model(
    const BertConfig& config, PrimerVariant variant, Rng& rng) {
  return PrivateInferenceSession(quantize(BertWeightsD::random(config, rng)),
                                 variant);
}

InferenceResult PrivateInferenceSession::infer(
    const std::vector<std::size_t>& tokens) {
  InferenceResult r;
  r.run = engine_.run(tokens);
  r.logits = r.run.logits;
  r.predicted = r.run.predicted;
  for (const auto v : r.logits) r.logits_real.push_back(fp_decode(v));
  return r;
}

InferenceResult PrivateInferenceSession::infer_resilient(
    const std::vector<std::size_t>& tokens, SessionStore& store,
    int max_restarts) {
  InferenceResult r;
  r.run = engine_.run_resilient(tokens, store, max_restarts);
  r.logits = r.run.logits;
  r.predicted = r.run.predicted;
  for (const auto v : r.logits) r.logits_real.push_back(fp_decode(v));
  return r;
}

InferenceResult PrivateInferenceSession::infer_durable(
    const std::vector<std::size_t>& tokens, const std::string& store_dir,
    int max_restarts) {
  DurableSessionStore store(store_dir);
  return infer_resilient(tokens, store, max_restarts);
}

SessionOutcome ServerHandle::infer_outcome(std::vector<std::size_t> tokens,
                                           std::size_t model) {
  InferenceRequest req;
  req.client_id = client_id_;
  req.model = model;
  req.tokens = std::move(tokens);
  return server_->infer(std::move(req));
}

InferenceResult ServerHandle::infer(std::vector<std::size_t> tokens,
                                    std::size_t model) {
  SessionOutcome out = infer_outcome(std::move(tokens), model);
  if (out.status != SessionStatus::kCompleted) {
    throw std::runtime_error("ServerHandle::infer: session resolved to '" +
                             std::string(session_status_name(out.status)) +
                             "': " + out.error);
  }
  InferenceResult r;
  r.run = std::move(out.result);
  r.logits = r.run.logits;
  r.predicted = r.run.predicted;
  for (const auto v : r.logits) r.logits_real.push_back(fp_decode(v));
  return r;
}

std::vector<std::int64_t> PrivateInferenceSession::reference_logits(
    const std::vector<std::size_t>& tokens) const {
  if (engine_.variant() == PrimerVariant::kFPC) {
    return fixed_forward_chgs(engine_.weights(), tokens);
  }
  return FixedBert(engine_.weights()).forward(tokens);
}

}  // namespace primer
