// CRT batching (SIMD slot) encoder.
//
// With plaintext modulus t ≡ 1 (mod 2n), the ring Z_t[x]/(x^n+1) splits
// into n copies of Z_t.  Values are laid out SEAL-style as a 2 x (n/2)
// matrix: Galois element 3^k rotates each row by k, element 2n-1 swaps the
// rows.  This is the packing substrate that the paper's feature-based vs
// tokens-first packing strategies (Fig. 6) build on.
#pragma once

#include <cstdint>
#include <vector>

#include "he/context.h"
#include "he/rns_poly.h"

namespace primer {

class BatchEncoder {
 public:
  explicit BatchEncoder(const HeContext& ctx);

  std::size_t slot_count() const { return slots_; }
  std::size_t row_size() const { return slots_ / 2; }

  // values.size() <= slot_count(); missing slots are zero.  Values must be
  // reduced mod t.
  Plaintext encode(const std::vector<u64>& values) const;
  std::vector<u64> decode(const Plaintext& pt) const;

  // Signed convenience wrappers (centered lift mod t).
  Plaintext encode_signed(const std::vector<i64>& values) const;
  std::vector<i64> decode_signed(const Plaintext& pt) const;

 private:
  const HeContext& ctx_;
  std::size_t slots_;
  std::vector<std::size_t> index_map_;  // slot -> NTT array position
};

}  // namespace primer
