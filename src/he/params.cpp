#include "he/params.h"

#include <cmath>
#include <stdexcept>

#include "ntt/primes.h"

namespace primer {

double HeParams::log2_q() const {
  double s = 0;
  for (auto p : q) s += std::log2(static_cast<double>(p));
  return s;
}

HeParams make_params(HeProfile profile) {
  HeParams p;
  switch (profile) {
    case HeProfile::kTest2048: {
      p.poly_degree = 2048;
      p.q = generate_ntt_primes(40, p.poly_degree, 2);
      p.t = first_ntt_prime_at_least(u64{1} << 20, p.poly_degree);
      p.secure_128 = false;  // q too small vs n for the standard table row
      p.name = "test-2048";
      break;
    }
    case HeProfile::kLight4096: {
      p.poly_degree = 4096;
      p.q = generate_ntt_primes(50, p.poly_degree, 2);
      p.t = first_ntt_prime_at_least(u64{1} << 20, p.poly_degree);
      p.secure_128 = true;  // ~100 bits <= 109
      p.name = "light-4096";
      break;
    }
    case HeProfile::kProd8192: {
      p.poly_degree = 8192;
      p.q = generate_ntt_primes(50, p.poly_degree, 3);
      p.t = first_ntt_prime_at_least(u64{1} << 40, p.poly_degree);
      p.secure_128 = true;  // ~150 bits <= 218
      p.name = "prod-8192";
      break;
    }
    case HeProfile::kProto2048: {
      p.poly_degree = 2048;
      p.q = generate_ntt_primes(45, p.poly_degree, 3);
      p.t = first_ntt_prime_at_least(u64{1} << 38, p.poly_degree);
      p.secure_128 = false;  // live-test profile; see header comment
      p.name = "proto-2048";
      break;
    }
    default:
      throw std::invalid_argument("make_params: unknown profile");
  }
  return p;
}

}  // namespace primer
