#include "he/context.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.h"
#include "common/rng.h"

namespace primer {

HeContext::HeContext(HeParams params) : params_(std::move(params)) {
  const std::size_t n = params_.poly_degree;
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("HeContext: poly_degree must be power of two");
  }
  for (u64 p : params_.q) {
    ntts_.push_back(std::make_unique<Ntt>(n, p));
    barretts_.emplace_back(p);
  }
  plain_ntt_ = std::make_unique<Ntt>(n, params_.t);

  // CRT composition constants.
  q_total_ = U256::from_u64(1);
  for (u64 p : params_.q) q_total_ = q_total_.mul_u64(p);
  q_half_ = q_total_;
  // q/2 via halving (q is odd, floor is fine for the centering test).
  {
    U256 half;
    unsigned __int128 rem = 0;
    for (int i = 3; i >= 0; --i) {
      const unsigned __int128 cur = (rem << 64) | q_total_.limb[i];
      half.limb[i] = static_cast<u64>(cur >> 1);
      rem = cur & 1;
    }
    q_half_ = half;
  }

  for (std::size_t i = 0; i < params_.q.size(); ++i) {
    U256 hat = U256::from_u64(1);
    for (std::size_t j = 0; j < params_.q.size(); ++j) {
      if (j != i) hat = hat.mul_u64(params_.q[j]);
    }
    q_hat_.push_back(hat);
    inv_q_hat_.push_back(inv_mod(hat.mod_u64(params_.q[i]), params_.q[i]));
    q_mod_t_partial_.push_back(hat.mod_u64(params_.t));
  }
  q_mod_t_ = q_total_.mod_u64(params_.t);
}

void HeContext::to_ntt(RnsPoly& p) const {
  if (p.ntt_form) return;
  if (p.degree() != degree() || p.rns_size() > rns_size()) {
    throw std::invalid_argument("HeContext::to_ntt: shape");
  }
  // RNS limbs are independent transforms over distinct primes.  Cost hint:
  // ~n log n butterflies of a couple of ops each per limb.
  parallel_for(0, p.rns_size(), degree() * 32,
               [&](std::size_t i) { ntts_[i]->forward(p.limb(i)); });
  p.ntt_form = true;
}

void HeContext::to_coeff(RnsPoly& p) const {
  if (!p.ntt_form) return;
  if (p.degree() != degree() || p.rns_size() > rns_size()) {
    throw std::invalid_argument("HeContext::to_coeff: shape");
  }
  parallel_for(0, p.rns_size(), degree() * 32,
               [&](std::size_t i) { ntts_[i]->inverse(p.limb(i)); });
  p.ntt_form = false;
}

void HeContext::add_inplace(RnsPoly& a, const RnsPoly& b) const {
  if (!a.same_shape(b) || a.ntt_form != b.ntt_form) {
    throw std::invalid_argument("HeContext::add_inplace: shape/domain");
  }
  parallel_for(0, a.rns_size(), degree(), [&](std::size_t i) {
    kernels(i).add(a.limb(i), a.limb(i), b.limb(i), degree(), params_.q[i]);
  });
}

void HeContext::sub_inplace(RnsPoly& a, const RnsPoly& b) const {
  if (!a.same_shape(b) || a.ntt_form != b.ntt_form) {
    throw std::invalid_argument("HeContext::sub_inplace: shape/domain");
  }
  parallel_for(0, a.rns_size(), degree(), [&](std::size_t i) {
    kernels(i).sub(a.limb(i), a.limb(i), b.limb(i), degree(), params_.q[i]);
  });
}

void HeContext::negate_inplace(RnsPoly& a) const {
  for (std::size_t i = 0; i < a.rns_size(); ++i) {
    kernels(i).neg(a.limb(i), a.limb(i), degree(), params_.q[i]);
  }
}

RnsPoly HeContext::multiply(const RnsPoly& a, const RnsPoly& b) const {
  RnsPoly out = a;
  multiply_inplace(out, b);
  return out;
}

void HeContext::multiply_inplace(RnsPoly& a, const RnsPoly& b) const {
  if (!a.ntt_form || !b.ntt_form) {
    throw std::invalid_argument("HeContext::multiply: operands must be NTT");
  }
  // Barrett products are several multiplies per element — an order of
  // magnitude costlier than an add.
  parallel_for(0, a.rns_size(), degree() * 16, [&](std::size_t i) {
    ntts_[i]->pointwise(a.limb(i), b.limb(i), a.limb(i));
  });
}

void HeContext::multiply_accumulate(RnsPoly& acc, const RnsPoly& a,
                                    const RnsPoly& b) const {
  if (!acc.ntt_form || !a.ntt_form || !b.ntt_form) {
    throw std::invalid_argument(
        "HeContext::multiply_accumulate: operands must be NTT");
  }
  if (!acc.same_shape(a) || !acc.same_shape(b)) {
    throw std::invalid_argument("HeContext::multiply_accumulate: shape");
  }
  parallel_for(0, acc.rns_size(), degree() * 16, [&](std::size_t i) {
    ntts_[i]->pointwise_accumulate(a.limb(i), b.limb(i), acc.limb(i));
  });
}

void HeContext::scalar_multiply_inplace(RnsPoly& a, u64 scalar) const {
  for (std::size_t i = 0; i < a.rns_size(); ++i) {
    const u64 p = params_.q[i];
    // Quotient scale must match the consuming kernel set's convention.
    const ShoupMul s(scalar % p, p, kernels(i).shoup_shift);
    kernels(i).scalar_mul(a.limb(i), a.limb(i), degree(), s.operand,
                          s.quotient, p);
  }
}

RnsPoly HeContext::sample_uniform(Rng& rng) const {
  RnsPoly out(rns_size(), degree(), false);
  for (std::size_t i = 0; i < rns_size(); ++i) {
    rng.fill_uniform_mod(out.limb(i), degree(), params_.q[i]);
  }
  return out;
}

RnsPoly HeContext::sample_error(Rng& rng) const {
  std::vector<i64> e(degree());
  for (auto& v : e) v = rng.cbd(params_.noise_eta);
  return lift_signed(e);
}

RnsPoly HeContext::sample_ternary(Rng& rng) const {
  std::vector<i64> s(degree());
  for (auto& v : s) v = rng.uniform_int(-1, 1);
  return lift_signed(s);
}

RnsPoly HeContext::lift_signed(const std::vector<i64>& v) const {
  if (v.size() != degree()) {
    throw std::invalid_argument("lift_signed: wrong degree");
  }
  RnsPoly out(rns_size(), degree(), false);
  for (std::size_t i = 0; i < rns_size(); ++i) {
    const u64 p = params_.q[i];
    u64* limb = out.limb(i);
    for (std::size_t j = 0; j < v.size(); ++j) {
      const i64 x = v[j];
      limb[j] = x >= 0 ? static_cast<u64>(x) % p
                       : p - (static_cast<u64>(-x) % p);
    }
  }
  return out;
}

RnsPoly HeContext::lift_plaintext(const Plaintext& pt) const {
  if (pt.coeffs.size() != degree()) {
    throw std::invalid_argument("lift_plaintext: wrong degree");
  }
  RnsPoly out(rns_size(), degree(), false);
  for (std::size_t i = 0; i < rns_size(); ++i) {
    const u64 p = params_.q[i];
    u64* limb = out.limb(i);
    for (std::size_t j = 0; j < pt.coeffs.size(); ++j) {
      limb[j] = pt.coeffs[j] % p;  // coeffs < t << q_i
    }
  }
  return out;
}

u64 HeContext::compose_center_mod_t(const std::vector<u64>& residues) const {
  // x = sum_i ([residue_i * inv_q_hat_i]_{q_i}) * q_hat_i, then reduce into
  // [0, q).  The sum is < k*q so at most (k-1) subtractions are needed.
  U256 x;
  for (std::size_t i = 0; i < residues.size(); ++i) {
    const u64 s = mul_mod(residues[i], inv_q_hat_[i], params_.q[i]);
    x += q_hat_[i].mul_u64(s);
  }
  while (x >= q_total_) x -= q_total_;
  // Centered representative: if x > q/2, the signed value is x - q.
  const u64 t = params_.t;
  if (x >= q_half_) {
    // (x - q) mod t == (x mod t + t - q mod t) mod t
    const u64 xm = x.mod_u64(t);
    return (xm + t - q_mod_t_ % t) % t;
  }
  return x.mod_u64(t);
}

double HeContext::compose_center_log2(const std::vector<u64>& residues) const {
  U256 x;
  for (std::size_t i = 0; i < residues.size(); ++i) {
    const u64 s = mul_mod(residues[i], inv_q_hat_[i], params_.q[i]);
    x += q_hat_[i].mul_u64(s);
  }
  while (x >= q_total_) x -= q_total_;
  U256 mag = x;
  if (x >= q_half_) mag = q_total_ - x;
  // log2 of a U256.
  double val = 0.0;
  for (int i = 3; i >= 0; --i) {
    val = val * 18446744073709551616.0 + static_cast<double>(mag.limb[i]);
  }
  return val > 0 ? std::log2(val) : 0.0;
}

void HeContext::apply_galois_coeff(const RnsPoly& in, u64 elt,
                                   RnsPoly& out) const {
  if (in.ntt_form) {
    throw std::invalid_argument("apply_galois_coeff: coefficient form only");
  }
  const std::size_t n = degree();
  out = RnsPoly(in.rns_size(), n, false);
  for (std::size_t i = 0; i < in.rns_size(); ++i) {
    apply_galois_plain(in.limb(i), elt, out.limb(i), params_.q[i]);
  }
}

void HeContext::apply_galois_plain(const u64* in, u64 elt, u64* out,
                                   u64 modulus) const {
  const std::size_t n = degree();
  // x^j -> x^{j*elt mod 2n}; if the exponent lands in [n, 2n), negate
  // (since x^n = -1).  Every output index is written exactly once (the map
  // is a permutation), so no pre-zeroing is needed.
  for (std::size_t j = 0; j < n; ++j) {
    const u64 idx = (static_cast<u64>(j) * elt) % (2 * n);
    const u64 v = in[j];
    if (idx < n) {
      out[idx] = v;
    } else {
      out[idx - n] = neg_mod(v, modulus);
    }
  }
}

void HeContext::apply_galois_plain(const std::vector<u64>& in, u64 elt,
                                   std::vector<u64>& out, u64 modulus) const {
  out.resize(degree());
  apply_galois_plain(in.data(), elt, out.data(), modulus);
}

const std::vector<std::uint32_t>& HeContext::galois_ntt_table(u64 elt) const {
  std::lock_guard<std::mutex> lock(galois_ntt_mu_);
  const auto it = galois_ntt_tables_.find(elt);
  if (it != galois_ntt_tables_.end()) return it->second;

  const std::size_t n = degree();
  int log_n = 0;
  while ((std::size_t{1} << log_n) < n) ++log_n;
  const u64 m = 2 * n;
  std::vector<std::uint32_t> table(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Slot i evaluates at psi^(2*brv(i)+1); the automorphed polynomial's
    // value there is the input's value at psi^((2*brv(i)+1)*elt mod 2n),
    // which lives in the slot bit-reversing that (odd) exponent.
    const u64 point = (2 * bit_reverse(i, log_n) + 1) * elt % m;
    table[i] = static_cast<std::uint32_t>(bit_reverse((point - 1) / 2, log_n));
  }
  return galois_ntt_tables_.emplace(elt, std::move(table)).first->second;
}

void HeContext::apply_galois_ntt(const RnsPoly& in, u64 elt,
                                 RnsPoly& out) const {
  if (!in.ntt_form) {
    throw std::invalid_argument("apply_galois_ntt: NTT form only");
  }
  const std::size_t n = degree();
  const auto& table = galois_ntt_table(elt);
  out = RnsPoly(in.rns_size(), n, true);
  for (std::size_t i = 0; i < in.rns_size(); ++i) {
    const u64* src = in.limb(i);
    u64* dst = out.limb(i);
    for (std::size_t j = 0; j < n; ++j) dst[j] = src[table[j]];
  }
}

std::vector<HeContext::GadgetDigit> HeContext::decomp_layout(
    std::uint32_t decomp_bits) const {
  std::vector<GadgetDigit> layout;
  for (std::size_t i = 0; i < rns_size(); ++i) {
    if (decomp_bits == 0) {
      layout.push_back({static_cast<std::uint32_t>(i), 0});
      continue;
    }
    std::uint32_t bits = 0;
    while ((params_.q[i] >> bits) != 0) ++bits;
    for (std::uint32_t shift = 0; shift < bits; shift += decomp_bits) {
      layout.push_back({static_cast<std::uint32_t>(i), shift});
    }
  }
  return layout;
}

std::uint32_t HeContext::galois_decomp_bits() const {
  std::uint32_t max_bits = 0;
  for (const u64 p : params_.q) {
    std::uint32_t bits = 0;
    while ((p >> bits) != 0) ++bits;
    max_bits = std::max(max_bits, bits);
  }
  return (max_bits + 1) / 2;
}

double HeContext::kswitch_noise_log2(std::uint32_t decomp_bits) const {
  double digit_bits = 0.0;
  if (decomp_bits != 0) {
    digit_bits = static_cast<double>(decomp_bits);
  } else {
    for (const u64 p : params_.q) {
      digit_bits = std::max(digit_bits, std::log2(static_cast<double>(p)));
    }
  }
  const double digits =
      static_cast<double>(decomp_layout(decomp_bits).size());
  return std::log2(digits) + std::log2(static_cast<double>(degree())) +
         digit_bits + std::log2(static_cast<double>(params_.t)) + 2.0;
}

u64 HeContext::galois_elt_from_step(int step) const {
  const std::size_t n = degree();
  const u64 m = 2 * n;
  const std::size_t row = n / 2;
  // Normalize step into [0, row).
  long long s = step % static_cast<long long>(row);
  if (s < 0) s += static_cast<long long>(row);
  // Left-rotation by `step` corresponds to the element 3^step mod 2n:
  // the automorphism x -> x^3 moves the value in slot i+1 into slot i.
  u64 elt = 1;
  const u64 gen = 3;
  for (long long i = 0; i < s; ++i) {
    elt = (elt * gen) % m;
  }
  return elt;
}

}  // namespace primer
