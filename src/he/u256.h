// Minimal fixed-width 256-bit unsigned integer.
//
// Used only on the narrow decryption path: CRT-composing the RNS residues
// of c0 + c1*s into the single integer representative mod q (q up to ~160
// bits), centering it, and reducing mod the plaintext modulus t.  Only the
// operations that path needs are provided.
#pragma once

#include <array>
#include <cstdint>

namespace primer {

struct U256 {
  // Little-endian limbs: v = limb[0] + limb[1]*2^64 + ...
  std::array<std::uint64_t, 4> limb{0, 0, 0, 0};

  static U256 from_u64(std::uint64_t x) {
    U256 r;
    r.limb[0] = x;
    return r;
  }

  static U256 from_u128(unsigned __int128 x) {
    U256 r;
    r.limb[0] = static_cast<std::uint64_t>(x);
    r.limb[1] = static_cast<std::uint64_t>(x >> 64);
    return r;
  }

  bool is_zero() const {
    return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
  }

  int compare(const U256& o) const {
    for (int i = 3; i >= 0; --i) {
      if (limb[i] != o.limb[i]) return limb[i] < o.limb[i] ? -1 : 1;
    }
    return 0;
  }

  bool operator<(const U256& o) const { return compare(o) < 0; }
  bool operator>=(const U256& o) const { return compare(o) >= 0; }
  bool operator==(const U256& o) const { return compare(o) == 0; }

  U256& operator+=(const U256& o) {
    unsigned __int128 carry = 0;
    for (int i = 0; i < 4; ++i) {
      const unsigned __int128 s =
          static_cast<unsigned __int128>(limb[i]) + o.limb[i] + carry;
      limb[i] = static_cast<std::uint64_t>(s);
      carry = s >> 64;
    }
    return *this;
  }

  U256& operator-=(const U256& o) {
    unsigned __int128 borrow = 0;
    for (int i = 0; i < 4; ++i) {
      const unsigned __int128 d = static_cast<unsigned __int128>(limb[i]) -
                                  o.limb[i] - borrow;
      limb[i] = static_cast<std::uint64_t>(d);
      borrow = (d >> 64) & 1;
    }
    return *this;
  }

  U256 operator+(const U256& o) const {
    U256 r = *this;
    r += o;
    return r;
  }

  U256 operator-(const U256& o) const {
    U256 r = *this;
    r -= o;
    return r;
  }

  // Multiply by a 64-bit scalar (result truncated to 256 bits; callers
  // guarantee no overflow: operands stay below 2^200).
  U256 mul_u64(std::uint64_t x) const {
    U256 r;
    unsigned __int128 carry = 0;
    for (int i = 0; i < 4; ++i) {
      const unsigned __int128 p =
          static_cast<unsigned __int128>(limb[i]) * x + carry;
      r.limb[i] = static_cast<std::uint64_t>(p);
      carry = p >> 64;
    }
    return r;
  }

  // Remainder modulo a 64-bit value.
  std::uint64_t mod_u64(std::uint64_t m) const {
    unsigned __int128 rem = 0;
    for (int i = 3; i >= 0; --i) {
      rem = ((rem << 64) | limb[i]) % m;
    }
    return static_cast<std::uint64_t>(rem);
  }

  // Doubles the value (used for the centered-representative test 2x >= q).
  U256 doubled() const {
    U256 r;
    std::uint64_t carry = 0;
    for (int i = 0; i < 4; ++i) {
      r.limb[i] = (limb[i] << 1) | carry;
      carry = limb[i] >> 63;
    }
    return r;
  }
};

}  // namespace primer
