// Polynomial in R_q represented in the residue number system.  Residues are
// stored as ONE contiguous 64-byte-aligned buffer of rns_size * degree
// words — limb i (the residue vector modulo q_i) is the slice
// [i*degree, (i+1)*degree), reachable through limb(i) — so NTT and limb-op
// kernels stream cache-aligned memory instead of chasing per-limb
// allocations.  Polynomials are tagged with their domain (coefficient vs
// NTT/evaluation form); the evaluator converts as needed.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "ntt/kernels.h"
#include "ntt/modarith.h"

namespace primer {

class HeContext;  // defined in he/context.h

struct RnsPoly {
  bool ntt_form = false;

  RnsPoly() = default;
  RnsPoly(std::size_t rns_size, std::size_t degree, bool ntt = false)
      : ntt_form(ntt),
        data_(rns_size * degree, 0),
        rns_size_(rns_size),
        degree_(degree) {}

  std::size_t rns_size() const { return rns_size_; }
  std::size_t degree() const { return degree_; }

  // Residue vector modulo q_i: limb(i)[j] = j-th coefficient (or NTT slot).
  u64* limb(std::size_t i) { return data_.data() + i * degree_; }
  const u64* limb(std::size_t i) const { return data_.data() + i * degree_; }
  std::span<u64> limb_span(std::size_t i) { return {limb(i), degree_}; }
  std::span<const u64> limb_span(std::size_t i) const {
    return {limb(i), degree_};
  }

  // The whole rns_size*degree buffer, limb-major (bulk serialization).
  u64* data() { return data_.data(); }
  const u64* data() const { return data_.data(); }
  std::size_t word_count() const { return data_.size(); }

  bool same_shape(const RnsPoly& o) const {
    return rns_size_ == o.rns_size_ && degree_ == o.degree_;
  }

 private:
  AlignedU64 data_;
  std::size_t rns_size_ = 0;
  std::size_t degree_ = 0;
};

// A ciphertext is a vector of polynomials (size 2 normally, 3 after a
// ciphertext-ciphertext multiplication until relinearized).  Decryption of
// (c0, c1, c2, ...) computes c0 + c1*s + c2*s^2 + ...
struct Ciphertext {
  std::vector<RnsPoly> parts;
  // Heuristic upper bound on log2 of the noise coefficient; maintained by
  // the evaluator so callers can check remaining budget.
  double noise_log2 = 0.0;

  std::size_t size() const { return parts.size(); }
  bool empty() const { return parts.empty(); }
};

// Plaintext polynomial with coefficients mod t.  `ntt_form` distinguishes a
// slot-encoded value (coefficient domain, ready for enc/add) from the
// pre-transformed operand cached for repeated plaintext multiplication.
struct Plaintext {
  std::vector<u64> coeffs;  // mod t, coefficient domain
  std::size_t degree() const { return coeffs.size(); }
};

}  // namespace primer
