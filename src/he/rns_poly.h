// Polynomial in R_q represented in the residue number system: one length-n
// residue vector per RNS prime.  Polynomials are tagged with their domain
// (coefficient vs NTT/evaluation form); the evaluator converts as needed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ntt/modarith.h"

namespace primer {

class HeContext;  // defined in he/context.h

struct RnsPoly {
  // comp[i][j] = j-th coefficient (or NTT slot) modulo q_i.
  std::vector<std::vector<u64>> comp;
  bool ntt_form = false;

  RnsPoly() = default;
  RnsPoly(std::size_t rns_size, std::size_t degree, bool ntt = false)
      : comp(rns_size, std::vector<u64>(degree, 0)), ntt_form(ntt) {}

  std::size_t rns_size() const { return comp.size(); }
  std::size_t degree() const { return comp.empty() ? 0 : comp[0].size(); }

  bool same_shape(const RnsPoly& o) const {
    return comp.size() == o.comp.size() && degree() == o.degree();
  }
};

// A ciphertext is a vector of polynomials (size 2 normally, 3 after a
// ciphertext-ciphertext multiplication until relinearized).  Decryption of
// (c0, c1, c2, ...) computes c0 + c1*s + c2*s^2 + ...
struct Ciphertext {
  std::vector<RnsPoly> parts;
  // Heuristic upper bound on log2 of the noise coefficient; maintained by
  // the evaluator so callers can check remaining budget.
  double noise_log2 = 0.0;

  std::size_t size() const { return parts.size(); }
  bool empty() const { return parts.empty(); }
};

// Plaintext polynomial with coefficients mod t.  `ntt_form` distinguishes a
// slot-encoded value (coefficient domain, ready for enc/add) from the
// pre-transformed operand cached for repeated plaintext multiplication.
struct Plaintext {
  std::vector<u64> coeffs;  // mod t, coefficient domain
  std::size_t degree() const { return coeffs.size(); }
};

}  // namespace primer
