// Key material for the RLWE scheme.
//
// Key switching uses the RNS-digit gadget (the same construction SEAL calls
// "key switching keys"): for a source key s_src and RNS basis {q_i}, the
// switching key holds, for every digit i,
//     K_i = ( -(a_i * s + t*e_i) + P_i * s_src ,  a_i )
// where P_i = (q/q_i) * [(q/q_i)^{-1}]_{q_i} is the CRT unit (1 mod q_i,
// 0 mod q_j).  Summing d_i (*) K_i over the RNS digits d_i of a polynomial c
// yields an encryption of c * s_src under s.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "he/rns_poly.h"

namespace primer {

struct SecretKey {
  RnsPoly s;  // NTT form
};

struct PublicKey {
  RnsPoly b;  // -(a*s + t*e), NTT form
  RnsPoly a;  // uniform, NTT form
};

struct KSwitchKey {
  // One (b_i, a_i) pair per RNS digit, all NTT form.
  std::vector<RnsPoly> b;
  std::vector<RnsPoly> a;

  bool empty() const { return b.empty(); }
};

struct RelinKey {
  KSwitchKey key;  // switches s^2 -> s
};

struct GaloisKeys {
  // Galois element -> key switching s(x^elt) -> s(x).
  std::map<u64, KSwitchKey> keys;

  bool has(u64 elt) const { return keys.count(elt) != 0; }
};

}  // namespace primer
