// Key material for the RLWE scheme.
//
// Key switching uses the RNS-digit gadget (the same construction SEAL calls
// "key switching keys"): for a source key s_src and RNS basis {q_i}, the
// switching key holds, for every digit (i, d),
//     K_{i,d} = ( -(a * s + t*e) + 2^{d*w} * P_i * s_src ,  a )
// where P_i = (q/q_i) * [(q/q_i)^{-1}]_{q_i} is the CRT unit (1 mod q_i,
// 0 mod q_j) and w = decomp_bits splits each residue into base-2^w
// sub-digits.  Summing digit_{i,d} (*) K_{i,d} over the decomposition of a
// polynomial c yields an encryption of c * s_src under s.
//
// decomp_bits == 0 means one full-width digit per RNS prime (d = 0 only) —
// the cheapest layout, used for relinearization where the incoming
// multiplication noise dominates anyway.  Galois keys use finer sub-digits
// (HeContext::galois_decomp_bits, half the modulus width): the key-switch
// noise scales with the digit magnitude, and rotations must leave room for
// the plaintext multiplications BSGS matmuls apply AFTER rotating.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "he/rns_poly.h"

namespace primer {

struct SecretKey {
  RnsPoly s;  // NTT form
};

struct PublicKey {
  RnsPoly b;  // -(a*s + t*e), NTT form
  RnsPoly a;  // uniform, NTT form
};

struct KSwitchKey {
  // One (b, a) pair per gadget digit, all NTT form, flattened in the order
  // HeContext::decomp_layout(decomp_bits) enumerates: limb-major, then
  // sub-digit (shift) within the limb.
  std::vector<RnsPoly> b;
  std::vector<RnsPoly> a;
  // Elementwise Shoup quotients floor(elem * 2^shift / q_j) of b / a, where
  // shift is the consuming kernel set's shoup_shift (64 for scalar/avx2/
  // avx512, 52 for avx512ifma) — the key limbs are the fixed operand of
  // every key-switch product, so the quotients are precomputed once at
  // keygen and the hot loop accumulates division-free products in [0, 2p)
  // (kernel shoup_mul_acc_lazy2).
  std::vector<RnsPoly> b_shoup;
  std::vector<RnsPoly> a_shoup;
  // Sub-digit width this key was generated for (0 = one digit per limb).
  std::uint32_t decomp_bits = 0;

  bool empty() const { return b.empty(); }
  std::size_t digits() const { return b.size(); }
  bool has_shoup() const { return b_shoup.size() == b.size() && !b.empty(); }
};

struct RelinKey {
  KSwitchKey key;  // switches s^2 -> s
};

struct GaloisKeys {
  // Galois element -> key switching s(x^elt) -> s(x).
  std::map<u64, KSwitchKey> keys;

  bool has(u64 elt) const { return keys.count(elt) != 0; }
};

}  // namespace primer
