#include "he/encoder.h"

#include <stdexcept>

#include "common/fixed_point.h"

namespace primer {

namespace {

std::size_t reverse_bits(std::size_t v, int bits) {
  std::size_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

int ilog2(std::size_t n) {
  int l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

}  // namespace

BatchEncoder::BatchEncoder(const HeContext& ctx)
    : ctx_(ctx), slots_(ctx.degree()) {
  const std::size_t n = ctx.degree();
  const int logn = ilog2(n);
  const u64 m = 2 * n;
  const std::size_t row = n / 2;
  index_map_.resize(n);
  u64 pos = 1;
  const u64 gen = 3;
  for (std::size_t i = 0; i < row; ++i) {
    const std::size_t idx1 = static_cast<std::size_t>((pos - 1) >> 1);
    const std::size_t idx2 = static_cast<std::size_t>((m - pos - 1) >> 1);
    index_map_[i] = reverse_bits(idx1, logn);
    index_map_[row + i] = reverse_bits(idx2, logn);
    pos = (pos * gen) % m;
  }
}

Plaintext BatchEncoder::encode(const std::vector<u64>& values) const {
  if (values.size() > slots_) {
    throw std::invalid_argument("BatchEncoder::encode: too many values");
  }
  const u64 t = ctx_.t();
  std::vector<u64> buf(slots_, 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= t) {
      throw std::invalid_argument("BatchEncoder::encode: value >= t");
    }
    buf[index_map_[i]] = values[i];
  }
  ctx_.plain_ntt().inverse(buf);
  Plaintext pt;
  pt.coeffs = std::move(buf);
  return pt;
}

std::vector<u64> BatchEncoder::decode(const Plaintext& pt) const {
  if (pt.coeffs.size() != slots_) {
    throw std::invalid_argument("BatchEncoder::decode: wrong degree");
  }
  std::vector<u64> buf = pt.coeffs;
  ctx_.plain_ntt().forward(buf);
  std::vector<u64> out(slots_);
  for (std::size_t i = 0; i < slots_; ++i) out[i] = buf[index_map_[i]];
  return out;
}

Plaintext BatchEncoder::encode_signed(const std::vector<i64>& values) const {
  const u64 t = ctx_.t();
  std::vector<u64> ring(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ring[i] = fp_to_ring(values[i], t);
  }
  return encode(ring);
}

std::vector<i64> BatchEncoder::decode_signed(const Plaintext& pt) const {
  const u64 t = ctx_.t();
  const auto ring = decode(pt);
  std::vector<i64> out(ring.size());
  for (std::size_t i = 0; i < ring.size(); ++i) {
    out[i] = fp_from_ring(ring[i], t);
  }
  return out;
}

}  // namespace primer
