// Encryption parameter sets for the Primer HE substrate.
//
// The scheme is a BGV-flavoured RLWE cryptosystem over R_q = Z_q[x]/(x^n+1)
// with an RNS (residue number system) coefficient modulus q = q_0*...*q_{k-1}
// and a prime plaintext modulus t with t = 1 (mod 2n) so the CRT batching
// (SIMD slot) encoder exists.  This mirrors the paper's use of SEAL as a
// "PAHE" (packed additive HE): Primer itself only performs additions,
// plaintext multiplications and rotations; ciphertext-ciphertext
// multiplication (+ relinearization) is provided for the THE-X and
// Primer-base baselines.
//
// Security follows the homomorphic-encryption.org standard table for
// ternary secrets at 128-bit classical security:
//     n = 4096  -> log2(q) <= 109
//     n = 8192  -> log2(q) <= 218
//     n = 16384 -> log2(q) <= 438
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace primer {

enum class HeProfile {
  // n = 2048, one 54-bit prime, t ~ 2^20.  NOT SECURE — unit tests only.
  kTest2048,
  // n = 4096, two 50-bit primes (q ~ 100 bits <= 109 -> 128-bit secure),
  // t ~ 2^20.  Additive workloads with small plaintext moduli; microbenches.
  kLight4096,
  // n = 8192, three 50-bit primes (q ~ 150 bits <= 218 -> 128-bit secure),
  // t ~ 2^40.  The production profile used by all Primer protocols: holds
  // the 15-bit fixed-point MAC accumulations of BERT-sized layers and
  // supports depth-1 ciphertext-ciphertext multiplication on fresh
  // ciphertexts (attention Q x K^T in the baselines).
  kProd8192,
  // n = 2048, three 45-bit primes, t ~ 2^38.  NOT SECURE (q too large for
  // n=2048) — used for fast LIVE end-to-end protocol runs on the nano/micro
  // models in tests and examples; the code paths are identical to kProd8192.
  kProto2048,
};

struct HeParams {
  std::size_t poly_degree = 0;       // n, power of two
  std::vector<std::uint64_t> q;      // RNS coefficient-modulus primes
  std::uint64_t t = 0;               // plaintext modulus, prime, 1 mod 2n
  int noise_eta = 2;                 // CBD parameter for error sampling
  bool secure_128 = false;           // true iff the HE-standard bound holds
  std::string name;

  std::size_t rns_size() const { return q.size(); }
  std::size_t slot_count() const { return poly_degree; }

  double log2_q() const;

  // Bytes of one freshly serialized ciphertext (2 polynomials, RNS form).
  std::size_t ciphertext_bytes() const {
    return 2 * q.size() * poly_degree * sizeof(std::uint64_t);
  }
};

HeParams make_params(HeProfile profile);

}  // namespace primer
