// KeyGenerator / Encryptor / Decryptor / Evaluator — the public face of the
// HE substrate.  The Evaluator tracks an OpCounters record so protocols and
// benchmarks can report HE operation counts (the quantities Primer's
// techniques reduce).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "he/context.h"
#include "he/keys.h"
#include "he/rns_poly.h"

namespace primer {

// Copyable relaxed atomic counter: evaluator ops may be issued from pool
// workers (e.g. the packed matmul parallelizes per output ciphertext), so
// the shared counters must tolerate concurrent increments.  Counts are pure
// tallies — relaxed ordering is sufficient — and snapshot copies (the
// step-accounting before/after pattern) stay cheap.
class OpCount {
 public:
  OpCount() = default;
  OpCount(std::uint64_t v) : v_(v) {}
  OpCount(const OpCount& o) : v_(o.get()) {}
  OpCount& operator=(const OpCount& o) {
    v_.store(o.get(), std::memory_order_relaxed);
    return *this;
  }
  OpCount& operator=(std::uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  OpCount& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  OpCount& operator+=(std::uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  operator std::uint64_t() const { return get(); }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

struct HeOpCounters {
  OpCount encryptions;
  OpCount decryptions;
  OpCount adds;
  OpCount plain_mults;
  OpCount ct_mults;
  OpCount rotations;          // all Galois key-switches (hoisted included)
  OpCount hoisted_rotations;  // subset served from a shared decomposition
  OpCount relins;

  void clear() { *this = HeOpCounters{}; }
};

class KeyGenerator {
 public:
  KeyGenerator(const HeContext& ctx, Rng& rng);

  const SecretKey& secret_key() const { return sk_; }
  PublicKey make_public_key();
  RelinKey make_relin_key();
  // Keys for the given rotation steps (plus the row swap if requested).
  GaloisKeys make_galois_keys(const std::vector<int>& steps,
                              bool include_row_swap = false);
  // Key for one explicit Galois element.
  void add_galois_key(GaloisKeys& keys, u64 elt);

 private:
  // Switching key for `target_ntt` under base-2^decomp_bits sub-digits
  // (0 = one full-width digit per RNS limb; see keys.h).
  KSwitchKey make_kswitch_key(const RnsPoly& target_ntt,
                              std::uint32_t decomp_bits);
  // Elementwise Shoup quotients of a key polynomial (per-limb modulus).
  RnsPoly shoup_table(const RnsPoly& key_part) const;

  const HeContext& ctx_;
  Rng& rng_;
  SecretKey sk_;
};

// Elementwise Shoup quotients floor(elem << shoup_shift / q_j) of a key
// polynomial.  Depends only on the public modulus chain, so key material
// shipped over the wire (see ProtocolContext::transfer_keys) carries just
// the (b, a) pairs and the receiver recomputes its quotient tables with
// this — bit-identical to the generator's, since it is the same code.
RnsPoly compute_shoup_table(const HeContext& ctx, const RnsPoly& key_part);

class Encryptor {
 public:
  // Symmetric-key encryptor (the client, who owns sk).  Fresh symmetric
  // ciphertexts carry the least noise, which is what the protocol analysis
  // assumes for re-encrypted shares.
  Encryptor(const HeContext& ctx, const SecretKey& sk, Rng& rng);
  // Public-key encryptor (any party).
  Encryptor(const HeContext& ctx, const PublicKey& pk, Rng& rng);

  Ciphertext encrypt(const Plaintext& pt) const;
  Ciphertext encrypt_zero() const;

  HeOpCounters& counters() const { return counters_; }

 private:
  const HeContext& ctx_;
  const SecretKey* sk_ = nullptr;
  const PublicKey* pk_ = nullptr;
  Rng& rng_;
  mutable HeOpCounters counters_;
};

// Thrown instead of returning silently-garbled plaintext when a ciphertext's
// tracked noise estimate says the budget is spent.  Carries the numbers so
// callers can report how far past the cliff the computation went.
class NoiseBudgetExhausted : public std::runtime_error {
 public:
  NoiseBudgetExhausted(double estimated_budget_bits, double noise_log2_bits)
      : std::runtime_error(
            "NoiseBudgetExhausted: estimated noise budget " +
            std::to_string(estimated_budget_bits) +
            " bits (tracked noise ~2^" + std::to_string(noise_log2_bits) +
            ") — decryption would be garbage"),
        budget_(estimated_budget_bits),
        noise_log2_(noise_log2_bits) {}

  double estimated_budget_bits() const { return budget_; }
  double noise_log2_bits() const { return noise_log2_; }

 private:
  double budget_;
  double noise_log2_;
};

class Decryptor {
 public:
  Decryptor(const HeContext& ctx, const SecretKey& sk);

  // Decrypts after validating the ciphertext's tracked noise estimate;
  // throws NoiseBudgetExhausted when the estimated budget is gone rather
  // than returning garbage.  Successful decryptions fold their margin into
  // the min-margin telemetry (take_min_margin).
  Plaintext decrypt(const Ciphertext& ct) const;

  // Remaining noise budget in bits measured from the actual decryption
  // noise: log2(q) - 1 - log2|t*e|.  Negative budget means decryption is
  // no longer guaranteed correct.
  double noise_budget(const Ciphertext& ct) const;

  // Budget predicted from the per-op noise estimate the Evaluator
  // maintains (ct.noise_log2) — conservative, no secret key math.
  double estimated_budget(const Ciphertext& ct) const;

  // Smallest estimated budget seen across decryptions since the last call;
  // +inf when nothing was decrypted.  Thread-safe (decrypt runs under the
  // thread pool) — this is the per-step noise margin the runtime reports.
  double take_min_margin() const;

  // Operational floor (bits) below which decryption refuses even when the
  // measured budget is technically positive — a deployment guard-band set
  // with PRIMER_NOISE_FLOOR_BITS (default 0: only true exhaustion throws).
  double noise_floor_bits() const { return floor_bits_; }

 private:
  Plaintext decrypt_unchecked(const Ciphertext& ct) const;
  RnsPoly dot_with_key_powers(const Ciphertext& ct) const;
  void record_margin(double bits) const;

  const HeContext& ctx_;
  const SecretKey& sk_;
  double floor_bits_ = 0.0;
  mutable std::atomic<double> min_margin_{
      std::numeric_limits<double>::infinity()};
};

// Hoisted key-switching — the standard trick fast HE libraries use to
// amortize rotation sets: decompose + NTT the input polynomial ONCE, then
// key-switch it against any number of Galois elements.  Per element the
// work is a slot permutation of the cached digits (automorphisms act on NTT
// form as pure permutations) plus one lazily-accumulated pointwise pass per
// key digit — no NTTs at all — so a rotation set of size r costs one
// decomposition instead of r.
//
// Digit convention: permuting cached digits negates wrapped coefficients
// modulo each q_j instead of modulo the digit's source prime q_i.  The
// permuted digits still satisfy the gadget identity — congruent to the
// automorphed polynomial modulo q_i, centered magnitude unchanged — so
// correctness and noise match the decompose-after-automorphism order; only
// the (equivalent) ciphertext bits differ.  Every rotation path in this
// library routes through this class, so rotations stay deterministic across
// thread counts, kernels, and hoisted-vs-single-call usage.
class HoistedKeySwitch {
 public:
  // Decomposes c into gadget digits and transforms all digits x rns_size
  // digit limbs to NTT form.  decomp_bits must match the switching keys
  // apply() will be given (KSwitchKey::decomp_bits).
  //
  // decomp_bits == 0 (CRT digits): the digit for limb i is c mod q_i,
  // re-reduced into every other modulus with the kernel reduce_span.
  // NTT-form input (the ciphertext-resident shape) reuses its limbs as the
  // digit diagonal, so only k*(k-1) forward transforms are paid.
  //
  // decomp_bits == w > 0 (sub-digits): each residue splits into base-2^w
  // digits whose values are < 2^w < q_j for every modulus — already reduced
  // everywhere, no re-reduction pass at all; each digit row pays one
  // forward transform per modulus.
  //
  // Digit storage comes from the calling thread's PolyArena.
  HoistedKeySwitch(const HeContext& ctx, const RnsPoly& c,
                   std::uint32_t decomp_bits);

  // Accumulates the key-switch of galois_elt(c) into (acc0, acc1), both
  // NTT form.  elt == 1 is the identity (plain key switch of c).
  void apply(u64 elt, const KSwitchKey& key, RnsPoly& acc0,
             RnsPoly& acc1) const;

 private:
  const u64* digit(std::size_t f, std::size_t j) const {
    return digits_.data() + (f * k_ + j) * n_;
  }

  const HeContext& ctx_;
  std::size_t k_ = 0;  // RNS limb count
  std::size_t n_ = 0;
  std::uint32_t decomp_bits_ = 0;
  std::size_t digit_count_ = 0;
  // Digit limbs are transformed with the lazy-output forward NTT and live
  // in the redundant range [0, 4p) (congruent to the canonical transform;
  // the decomp_bits == 0 diagonal reuses canonical ciphertext limbs) — the
  // Shoup-lazy accumulation consumes them directly, saving one full
  // correction pass per digit limb.  The 128-bit fallback path reduces
  // them on the fly (see apply()).
  PolyArena::Scratch digits_;  // digit_count_ x k limbs, digit-major, NTT
};

class Evaluator {
 public:
  explicit Evaluator(const HeContext& ctx);

  void add_inplace(Ciphertext& a, const Ciphertext& b) const;
  void sub_inplace(Ciphertext& a, const Ciphertext& b) const;
  void negate_inplace(Ciphertext& a) const;
  void add_plain_inplace(Ciphertext& a, const Plaintext& pt) const;
  void sub_plain_inplace(Ciphertext& a, const Plaintext& pt) const;

  // Ciphertext x plaintext multiplication (SIMD slot-wise).
  void multiply_plain_inplace(Ciphertext& a, const Plaintext& pt) const;

  // acc += a * pt, fused through the kernel layer's pointwise-accumulate —
  // no temporary ciphertext, one pass over the limbs.  Counts one plain
  // mult and one add.
  void multiply_plain_accumulate(Ciphertext& acc, const Ciphertext& a,
                                 const Plaintext& pt) const;

  // Ciphertext x ciphertext multiplication; result has 3 parts until
  // relinearize() is called.
  Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const;
  void relinearize_inplace(Ciphertext& a, const RelinKey& rk) const;

  // Rotates batched rows left by `step` (negative = right).
  void rotate_rows_inplace(Ciphertext& a, int step, const GaloisKeys& gk) const;
  // Swaps the two batched rows.
  void rotate_columns_inplace(Ciphertext& a, const GaloisKeys& gk) const;
  void apply_galois_inplace(Ciphertext& a, u64 elt, const GaloisKeys& gk) const;

  // All rotations of `a` by the given steps, hoisted: one digit
  // decomposition of a's c1 shared by the whole set (step 0 returns a
  // copy).  Bit-identical to rotating one step at a time.
  std::vector<Ciphertext> rotate_rows_many(const Ciphertext& a,
                                           const std::vector<int>& steps,
                                           const GaloisKeys& gk) const;

  // a <- sum of rot_j(a) for j in [0, width) (width a power of two): every
  // slot group of `width` ends up holding the group total in slot 0.
  // Baby-step/giant-step: hoisted baby rotations 1..n1-1 plus log2(width/n1)
  // doubling rotations, instead of log2(width) full key-switches.
  void rotate_sum_inplace(Ciphertext& a, std::size_t width,
                          const GaloisKeys& gk) const;
  // Galois-key steps rotate_sum_inplace(width) needs.
  static std::vector<int> rotate_sum_steps(std::size_t width);

  // Serialization (for channel byte accounting).
  void serialize(const Ciphertext& ct, ByteWriter& w) const;
  Ciphertext deserialize(ByteReader& r) const;

  // Key-switches polynomial c (either domain; NTT form is cheaper — see
  // HoistedKeySwitch) w.r.t. key, accumulating the result (NTT form) into
  // (acc0, acc1).  Public so benches and hoisting-aware callers can reach
  // the primitive directly.
  void key_switch(const RnsPoly& c, const KSwitchKey& key, RnsPoly& acc0,
                  RnsPoly& acc1) const;

  HeOpCounters& counters() const { return counters_; }

 private:
  const HeContext& ctx_;
  mutable HeOpCounters counters_;
};

}  // namespace primer
