// KeyGenerator / Encryptor / Decryptor / Evaluator — the public face of the
// HE substrate.  The Evaluator tracks an OpCounters record so protocols and
// benchmarks can report HE operation counts (the quantities Primer's
// techniques reduce).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "he/context.h"
#include "he/keys.h"
#include "he/rns_poly.h"

namespace primer {

// Copyable relaxed atomic counter: evaluator ops may be issued from pool
// workers (e.g. the packed matmul parallelizes per output ciphertext), so
// the shared counters must tolerate concurrent increments.  Counts are pure
// tallies — relaxed ordering is sufficient — and snapshot copies (the
// step-accounting before/after pattern) stay cheap.
class OpCount {
 public:
  OpCount() = default;
  OpCount(std::uint64_t v) : v_(v) {}
  OpCount(const OpCount& o) : v_(o.get()) {}
  OpCount& operator=(const OpCount& o) {
    v_.store(o.get(), std::memory_order_relaxed);
    return *this;
  }
  OpCount& operator=(std::uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  OpCount& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  OpCount& operator+=(std::uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  operator std::uint64_t() const { return get(); }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

struct HeOpCounters {
  OpCount encryptions;
  OpCount decryptions;
  OpCount adds;
  OpCount plain_mults;
  OpCount ct_mults;
  OpCount rotations;
  OpCount relins;

  void clear() { *this = HeOpCounters{}; }
};

class KeyGenerator {
 public:
  KeyGenerator(const HeContext& ctx, Rng& rng);

  const SecretKey& secret_key() const { return sk_; }
  PublicKey make_public_key();
  RelinKey make_relin_key();
  // Keys for the given rotation steps (plus the row swap if requested).
  GaloisKeys make_galois_keys(const std::vector<int>& steps,
                              bool include_row_swap = false);
  // Key for one explicit Galois element.
  void add_galois_key(GaloisKeys& keys, u64 elt);

 private:
  KSwitchKey make_kswitch_key(const RnsPoly& target_ntt);

  const HeContext& ctx_;
  Rng& rng_;
  SecretKey sk_;
};

class Encryptor {
 public:
  // Symmetric-key encryptor (the client, who owns sk).  Fresh symmetric
  // ciphertexts carry the least noise, which is what the protocol analysis
  // assumes for re-encrypted shares.
  Encryptor(const HeContext& ctx, const SecretKey& sk, Rng& rng);
  // Public-key encryptor (any party).
  Encryptor(const HeContext& ctx, const PublicKey& pk, Rng& rng);

  Ciphertext encrypt(const Plaintext& pt) const;
  Ciphertext encrypt_zero() const;

  HeOpCounters& counters() const { return counters_; }

 private:
  const HeContext& ctx_;
  const SecretKey* sk_ = nullptr;
  const PublicKey* pk_ = nullptr;
  Rng& rng_;
  mutable HeOpCounters counters_;
};

class Decryptor {
 public:
  Decryptor(const HeContext& ctx, const SecretKey& sk);

  Plaintext decrypt(const Ciphertext& ct) const;

  // Remaining noise budget in bits: log2(q) - 1 - log2|t*e|.  Negative
  // budget means decryption is no longer guaranteed correct.
  double noise_budget(const Ciphertext& ct) const;

 private:
  RnsPoly dot_with_key_powers(const Ciphertext& ct) const;

  const HeContext& ctx_;
  const SecretKey& sk_;
};

class Evaluator {
 public:
  explicit Evaluator(const HeContext& ctx);

  void add_inplace(Ciphertext& a, const Ciphertext& b) const;
  void sub_inplace(Ciphertext& a, const Ciphertext& b) const;
  void negate_inplace(Ciphertext& a) const;
  void add_plain_inplace(Ciphertext& a, const Plaintext& pt) const;
  void sub_plain_inplace(Ciphertext& a, const Plaintext& pt) const;

  // Ciphertext x plaintext multiplication (SIMD slot-wise).
  void multiply_plain_inplace(Ciphertext& a, const Plaintext& pt) const;

  // acc += a * pt, fused through the kernel layer's pointwise-accumulate —
  // no temporary ciphertext, one pass over the limbs.  Counts one plain
  // mult and one add.
  void multiply_plain_accumulate(Ciphertext& acc, const Ciphertext& a,
                                 const Plaintext& pt) const;

  // Ciphertext x ciphertext multiplication; result has 3 parts until
  // relinearize() is called.
  Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const;
  void relinearize_inplace(Ciphertext& a, const RelinKey& rk) const;

  // Rotates batched rows left by `step` (negative = right).
  void rotate_rows_inplace(Ciphertext& a, int step, const GaloisKeys& gk) const;
  // Swaps the two batched rows.
  void rotate_columns_inplace(Ciphertext& a, const GaloisKeys& gk) const;
  void apply_galois_inplace(Ciphertext& a, u64 elt, const GaloisKeys& gk) const;

  // Serialization (for channel byte accounting).
  void serialize(const Ciphertext& ct, ByteWriter& w) const;
  Ciphertext deserialize(ByteReader& r) const;

  HeOpCounters& counters() const { return counters_; }

 private:
  // Key-switches coefficient-form polynomial c w.r.t. key, accumulating the
  // result (NTT form) into (acc0, acc1).
  void key_switch(const RnsPoly& c_coeff, const KSwitchKey& key,
                  RnsPoly& acc0, RnsPoly& acc1) const;

  const HeContext& ctx_;
  mutable HeOpCounters counters_;
};

}  // namespace primer
