#include "he/he.h"

#include <cmath>
#include <stdexcept>

#include "common/parallel.h"

namespace primer {

// ---------------------------------------------------------------------------
// KeyGenerator
// ---------------------------------------------------------------------------

KeyGenerator::KeyGenerator(const HeContext& ctx, Rng& rng)
    : ctx_(ctx), rng_(rng) {
  RnsPoly s = ctx_.sample_ternary(rng_);
  ctx_.to_ntt(s);
  sk_.s = std::move(s);
}

PublicKey KeyGenerator::make_public_key() {
  PublicKey pk;
  RnsPoly a = ctx_.sample_uniform(rng_);
  ctx_.to_ntt(a);
  RnsPoly e = ctx_.sample_error(rng_);
  ctx_.to_ntt(e);
  ctx_.scalar_multiply_inplace(e, ctx_.t());
  // b = -(a*s + t*e)
  RnsPoly b = ctx_.multiply(a, sk_.s);
  ctx_.add_inplace(b, e);
  ctx_.negate_inplace(b);
  pk.a = std::move(a);
  pk.b = std::move(b);
  return pk;
}

KSwitchKey KeyGenerator::make_kswitch_key(const RnsPoly& target_ntt) {
  // One digit per RNS prime: b_i = -(a_i*s + t*e_i) + P_i * target, where
  // P_i is 1 mod q_i and 0 mod q_j — so the "+ P_i * target" term touches
  // only RNS component i.
  KSwitchKey key;
  const std::size_t k = ctx_.rns_size();
  for (std::size_t i = 0; i < k; ++i) {
    RnsPoly a = ctx_.sample_uniform(rng_);
    ctx_.to_ntt(a);
    RnsPoly e = ctx_.sample_error(rng_);
    ctx_.to_ntt(e);
    ctx_.scalar_multiply_inplace(e, ctx_.t());
    RnsPoly b = ctx_.multiply(a, sk_.s);
    ctx_.add_inplace(b, e);
    ctx_.negate_inplace(b);
    // Component i gains target's limb i.
    const u64 qi = ctx_.q(i);
    u64* bl = b.limb(i);
    const u64* tl = target_ntt.limb(i);
    for (std::size_t j = 0; j < ctx_.degree(); ++j) {
      bl[j] = add_mod(bl[j], tl[j], qi);
    }
    key.a.push_back(std::move(a));
    key.b.push_back(std::move(b));
  }
  return key;
}

RelinKey KeyGenerator::make_relin_key() {
  RelinKey rk;
  const RnsPoly s2 = ctx_.multiply(sk_.s, sk_.s);
  rk.key = make_kswitch_key(s2);
  return rk;
}

void KeyGenerator::add_galois_key(GaloisKeys& keys, u64 elt) {
  if (keys.has(elt)) return;
  // Target key is s(x^elt).
  RnsPoly s_coeff = sk_.s;
  ctx_.to_coeff(s_coeff);
  RnsPoly s_gal;
  ctx_.apply_galois_coeff(s_coeff, elt, s_gal);
  ctx_.to_ntt(s_gal);
  keys.keys.emplace(elt, make_kswitch_key(s_gal));
}

GaloisKeys KeyGenerator::make_galois_keys(const std::vector<int>& steps,
                                          bool include_row_swap) {
  GaloisKeys gk;
  for (int s : steps) add_galois_key(gk, ctx_.galois_elt_from_step(s));
  if (include_row_swap) add_galois_key(gk, ctx_.galois_elt_row_swap());
  return gk;
}

// ---------------------------------------------------------------------------
// Encryptor
// ---------------------------------------------------------------------------

Encryptor::Encryptor(const HeContext& ctx, const SecretKey& sk, Rng& rng)
    : ctx_(ctx), sk_(&sk), rng_(rng) {}

Encryptor::Encryptor(const HeContext& ctx, const PublicKey& pk, Rng& rng)
    : ctx_(ctx), pk_(&pk), rng_(rng) {}

Ciphertext Encryptor::encrypt_zero() const {
  Plaintext zero;
  zero.coeffs.assign(ctx_.degree(), 0);
  return encrypt(zero);
}

Ciphertext Encryptor::encrypt(const Plaintext& pt) const {
  ++counters_.encryptions;
  RnsPoly m = ctx_.lift_plaintext(pt);
  ctx_.to_ntt(m);

  Ciphertext ct;
  if (sk_ != nullptr) {
    // Symmetric: c1 = a (uniform), c0 = -(a*s) + t*e + m.
    RnsPoly a = ctx_.sample_uniform(rng_);
    ctx_.to_ntt(a);
    RnsPoly e = ctx_.sample_error(rng_);
    ctx_.to_ntt(e);
    ctx_.scalar_multiply_inplace(e, ctx_.t());
    RnsPoly c0 = ctx_.multiply(a, sk_->s);
    ctx_.negate_inplace(c0);
    ctx_.add_inplace(c0, e);
    ctx_.add_inplace(c0, m);
    ct.parts.push_back(std::move(c0));
    ct.parts.push_back(std::move(a));
    // |t*e| <= t * eta
    ct.noise_log2 =
        std::log2(static_cast<double>(ctx_.t())) + std::log2(4.0);
  } else {
    // Asymmetric: u ternary; c0 = b*u + t*e0 + m, c1 = a*u + t*e1.
    RnsPoly u = ctx_.sample_ternary(rng_);
    ctx_.to_ntt(u);
    RnsPoly e0 = ctx_.sample_error(rng_);
    ctx_.to_ntt(e0);
    ctx_.scalar_multiply_inplace(e0, ctx_.t());
    RnsPoly e1 = ctx_.sample_error(rng_);
    ctx_.to_ntt(e1);
    ctx_.scalar_multiply_inplace(e1, ctx_.t());

    RnsPoly c0 = ctx_.multiply(pk_->b, u);
    ctx_.add_inplace(c0, e0);
    ctx_.add_inplace(c0, m);
    RnsPoly c1 = ctx_.multiply(pk_->a, u);
    ctx_.add_inplace(c1, e1);
    ct.parts.push_back(std::move(c0));
    ct.parts.push_back(std::move(c1));
    // |t*(e_pk*u + e0 + e1*s)| ~ t * 2n * eta
    ct.noise_log2 = std::log2(static_cast<double>(ctx_.t())) +
                    std::log2(4.0 * static_cast<double>(ctx_.degree()));
  }
  return ct;
}

// ---------------------------------------------------------------------------
// Decryptor
// ---------------------------------------------------------------------------

Decryptor::Decryptor(const HeContext& ctx, const SecretKey& sk)
    : ctx_(ctx), sk_(sk) {}

RnsPoly Decryptor::dot_with_key_powers(const Ciphertext& ct) const {
  if (ct.empty()) throw std::invalid_argument("decrypt: empty ciphertext");
  RnsPoly acc = ct.parts[0];
  if (!acc.ntt_form) ctx_.to_ntt(acc);
  RnsPoly s_power = sk_.s;
  for (std::size_t i = 1; i < ct.parts.size(); ++i) {
    RnsPoly part = ct.parts[i];
    if (!part.ntt_form) ctx_.to_ntt(part);
    ctx_.multiply_inplace(part, s_power);
    ctx_.add_inplace(acc, part);
    if (i + 1 < ct.parts.size()) {
      s_power = ctx_.multiply(s_power, sk_.s);
    }
  }
  ctx_.to_coeff(acc);
  return acc;
}

Plaintext Decryptor::decrypt(const Ciphertext& ct) const {
  RnsPoly acc = dot_with_key_powers(ct);
  const std::size_t n = ctx_.degree();
  const std::size_t k = ctx_.rns_size();
  Plaintext pt;
  pt.coeffs.resize(n);
  // Per-coefficient CRT composition is independent pure arithmetic.
  parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi) {
    std::vector<u64> residues(k);
    for (std::size_t j = lo; j < hi; ++j) {
      for (std::size_t i = 0; i < k; ++i) residues[i] = acc.limb(i)[j];
      pt.coeffs[j] = ctx_.compose_center_mod_t(residues);
    }
  });
  return pt;
}

double Decryptor::noise_budget(const Ciphertext& ct) const {
  RnsPoly acc = dot_with_key_powers(ct);
  const Plaintext pt = decrypt(ct);
  // noise = centered(acc) - m over the integers; since m < t << q, we can
  // subtract the lifted message per RNS component and measure the result.
  RnsPoly m = ctx_.lift_plaintext(pt);
  const std::size_t n = ctx_.degree();
  const std::size_t k = ctx_.rns_size();
  double max_log = 0.0;
  std::vector<u64> residues(k);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < k; ++i) {
      residues[i] = sub_mod(acc.limb(i)[j], m.limb(i)[j], ctx_.q(i));
    }
    max_log = std::max(max_log, ctx_.compose_center_log2(residues));
  }
  const double budget = ctx_.params().log2_q() - 1.0 - max_log;
  return budget;
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

Evaluator::Evaluator(const HeContext& ctx) : ctx_(ctx) {}

void Evaluator::add_inplace(Ciphertext& a, const Ciphertext& b) const {
  ++counters_.adds;
  while (a.parts.size() < b.parts.size()) {
    a.parts.emplace_back(ctx_.rns_size(), ctx_.degree(), true);
  }
  for (std::size_t i = 0; i < b.parts.size(); ++i) {
    ctx_.add_inplace(a.parts[i], b.parts[i]);
  }
  a.noise_log2 = std::max(a.noise_log2, b.noise_log2) + 1.0;
}

void Evaluator::sub_inplace(Ciphertext& a, const Ciphertext& b) const {
  ++counters_.adds;
  while (a.parts.size() < b.parts.size()) {
    a.parts.emplace_back(ctx_.rns_size(), ctx_.degree(), true);
  }
  for (std::size_t i = 0; i < b.parts.size(); ++i) {
    ctx_.sub_inplace(a.parts[i], b.parts[i]);
  }
  a.noise_log2 = std::max(a.noise_log2, b.noise_log2) + 1.0;
}

void Evaluator::negate_inplace(Ciphertext& a) const {
  for (auto& p : a.parts) ctx_.negate_inplace(p);
}

void Evaluator::add_plain_inplace(Ciphertext& a, const Plaintext& pt) const {
  ++counters_.adds;
  RnsPoly m = ctx_.lift_plaintext(pt);
  ctx_.to_ntt(m);
  ctx_.add_inplace(a.parts[0], m);
}

void Evaluator::sub_plain_inplace(Ciphertext& a, const Plaintext& pt) const {
  ++counters_.adds;
  RnsPoly m = ctx_.lift_plaintext(pt);
  ctx_.to_ntt(m);
  ctx_.sub_inplace(a.parts[0], m);
}

void Evaluator::multiply_plain_inplace(Ciphertext& a,
                                       const Plaintext& pt) const {
  ++counters_.plain_mults;
  RnsPoly m = ctx_.lift_plaintext(pt);
  ctx_.to_ntt(m);
  for (auto& part : a.parts) ctx_.multiply_inplace(part, m);
  a.noise_log2 += std::log2(static_cast<double>(ctx_.degree())) +
                  std::log2(static_cast<double>(ctx_.t()));
}

void Evaluator::multiply_plain_accumulate(Ciphertext& acc, const Ciphertext& a,
                                          const Plaintext& pt) const {
  // acc += a * pt, fused: the limb product streams straight into acc with
  // no temporary ciphertext copy and no second add pass — the inner loop of
  // the packed matmul's Horner chains.
  ++counters_.plain_mults;
  ++counters_.adds;
  RnsPoly m = ctx_.lift_plaintext(pt);
  ctx_.to_ntt(m);
  while (acc.parts.size() < a.parts.size()) {
    acc.parts.emplace_back(ctx_.rns_size(), ctx_.degree(), true);
  }
  for (std::size_t i = 0; i < a.parts.size(); ++i) {
    ctx_.multiply_accumulate(acc.parts[i], a.parts[i], m);
  }
  const double term_noise = a.noise_log2 +
                            std::log2(static_cast<double>(ctx_.degree())) +
                            std::log2(static_cast<double>(ctx_.t()));
  acc.noise_log2 = std::max(acc.noise_log2, term_noise) + 1.0;
}

Ciphertext Evaluator::multiply(const Ciphertext& a, const Ciphertext& b) const {
  ++counters_.ct_mults;
  if (a.size() != 2 || b.size() != 2) {
    throw std::invalid_argument("Evaluator::multiply: need size-2 operands");
  }
  Ciphertext out;
  // (a0, a1) x (b0, b1) -> (a0 b0, a0 b1 + a1 b0, a1 b1)
  out.parts.push_back(ctx_.multiply(a.parts[0], b.parts[0]));
  RnsPoly mid = ctx_.multiply(a.parts[0], b.parts[1]);
  RnsPoly mid2 = ctx_.multiply(a.parts[1], b.parts[0]);
  ctx_.add_inplace(mid, mid2);
  out.parts.push_back(std::move(mid));
  out.parts.push_back(ctx_.multiply(a.parts[1], b.parts[1]));
  out.noise_log2 = a.noise_log2 + b.noise_log2 +
                   std::log2(static_cast<double>(ctx_.degree()));
  return out;
}

void Evaluator::key_switch(const RnsPoly& c_coeff, const KSwitchKey& key,
                           RnsPoly& acc0, RnsPoly& acc1) const {
  if (c_coeff.ntt_form) {
    throw std::invalid_argument("key_switch: input must be coefficient form");
  }
  const std::size_t k = ctx_.rns_size();
  const std::size_t n = ctx_.degree();
  // The k digit products are independent; compute them in parallel and
  // accumulate serially in digit order.  Modular addition is exact, so the
  // result is identical to the serial path either way.
  std::vector<RnsPoly> digit_b(k), digit_a(k);
  parallel_for(0, k, [&](std::size_t i) {
    // RNS digit i: the residue vector mod q_i, re-reduced modulo every q_j.
    RnsPoly digit(k, n, false);
    const u64* src = c_coeff.limb(i);
    for (std::size_t j = 0; j < k; ++j) {
      const Barrett& br = ctx_.barrett(j);
      u64* dst = digit.limb(j);
      for (std::size_t c = 0; c < n; ++c) {
        dst[c] = br.reduce(src[c]);
      }
    }
    ctx_.to_ntt(digit);
    digit_b[i] = ctx_.multiply(digit, key.b[i]);
    ctx_.multiply_inplace(digit, key.a[i]);
    digit_a[i] = std::move(digit);
  });
  for (std::size_t i = 0; i < k; ++i) {
    ctx_.add_inplace(acc0, digit_b[i]);
    ctx_.add_inplace(acc1, digit_a[i]);
  }
}

void Evaluator::relinearize_inplace(Ciphertext& a, const RelinKey& rk) const {
  ++counters_.relins;
  if (a.size() != 3) {
    throw std::invalid_argument("relinearize: expected 3-part ciphertext");
  }
  RnsPoly c2 = a.parts[2];
  ctx_.to_coeff(c2);
  key_switch(c2, rk.key, a.parts[0], a.parts[1]);
  a.parts.pop_back();
  // Key-switch noise: ~ k * n * eta * max(q_i) * t ... dominated by digits.
  a.noise_log2 = std::max(
      a.noise_log2,
      std::log2(static_cast<double>(ctx_.rns_size())) +
          std::log2(static_cast<double>(ctx_.degree())) + 55.0);
}

void Evaluator::apply_galois_inplace(Ciphertext& a, u64 elt,
                                     const GaloisKeys& gk) const {
  ++counters_.rotations;
  if (!gk.has(elt)) {
    throw std::invalid_argument("apply_galois: missing key for element " +
                                std::to_string(elt));
  }
  if (a.size() != 2) {
    throw std::invalid_argument("apply_galois: relinearize first");
  }
  RnsPoly c0 = a.parts[0];
  RnsPoly c1 = a.parts[1];
  ctx_.to_coeff(c0);
  ctx_.to_coeff(c1);
  RnsPoly c0g, c1g;
  ctx_.apply_galois_coeff(c0, elt, c0g);
  ctx_.apply_galois_coeff(c1, elt, c1g);
  ctx_.to_ntt(c0g);
  RnsPoly acc0 = std::move(c0g);
  RnsPoly acc1(ctx_.rns_size(), ctx_.degree(), true);
  key_switch(c1g, gk.keys.at(elt), acc0, acc1);
  a.parts[0] = std::move(acc0);
  a.parts[1] = std::move(acc1);
  a.noise_log2 = std::max(
      a.noise_log2,
      std::log2(static_cast<double>(ctx_.rns_size())) +
          std::log2(static_cast<double>(ctx_.degree())) + 55.0);
}

void Evaluator::rotate_rows_inplace(Ciphertext& a, int step,
                                    const GaloisKeys& gk) const {
  if (step == 0) return;
  apply_galois_inplace(a, ctx_.galois_elt_from_step(step), gk);
}

void Evaluator::rotate_columns_inplace(Ciphertext& a,
                                       const GaloisKeys& gk) const {
  apply_galois_inplace(a, ctx_.galois_elt_row_swap(), gk);
}

void Evaluator::serialize(const Ciphertext& ct, ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(ct.parts.size()));
  for (const auto& part : ct.parts) {
    w.u8(part.ntt_form ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(part.rns_size()));
    w.u64(part.degree());
    // Limbs are one contiguous buffer — a single memcpy-sized append.
    w.bytes(part.data(), part.word_count() * sizeof(u64));
  }
  w.f64(ct.noise_log2);
}

Ciphertext Evaluator::deserialize(ByteReader& r) const {
  Ciphertext ct;
  const auto parts = r.u32();
  for (std::uint32_t p = 0; p < parts; ++p) {
    const bool ntt_form = r.u8() != 0;
    const auto k = r.u32();
    const auto n = r.u64();
    // Exact-shape check: downstream kernels stream ctx-degree words through
    // unchecked pointers, so an undersized polynomial from a hostile or
    // corrupted stream must be rejected here, not discovered as an
    // out-of-bounds write later.
    if (k != ctx_.rns_size() || n != ctx_.degree()) {
      throw std::out_of_range("deserialize: polynomial shape mismatch");
    }
    RnsPoly poly(k, static_cast<std::size_t>(n), ntt_form);
    r.bytes(poly.data(), poly.word_count() * sizeof(u64));
    ct.parts.push_back(std::move(poly));
  }
  ct.noise_log2 = r.f64();
  return ct;
}

}  // namespace primer
